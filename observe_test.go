package morphstore

// Acceptance tests of the observability layer: a stats collector attached to
// Prepared.Execute returns a per-node QueryStats tree whose morsel timings,
// cardinalities, formats and budget lease history are populated for every
// SSB query; collection never changes the produced columns; failed
// executions carry a coherent partial tree on the *QueryError; and the
// detached bookkeeping stays within the overhead budget.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"morphstore/internal/faultpoint"
	"morphstore/internal/metrics"
	"morphstore/internal/ssb"
	"morphstore/internal/vector"
)

// observeSSB builds a small SSB instance and one prepared plan per query on
// a 4-worker engine.
func observeSSB(t *testing.T) (*Engine, map[ssb.Query]*Prepared) {
	t.Helper()
	data, err := ssb.Generate(0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(data.DB, WithParallelism(4), WithStyle(vector.Vec512))
	prs := make(map[ssb.Query]*Prepared, len(ssb.Queries))
	for _, q := range ssb.Queries {
		p, err := ssb.BuildPlan(q, data.Dicts)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		pr, err := eng.Prepare(p, WithUniformFormat(DynBP))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		prs[q] = pr
	}
	return eng, prs
}

// sameResultCols fails the test unless the two results carry byte-identical
// columns.
func sameResultCols(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: %d result columns, want %d", label, len(got.Cols), len(want.Cols))
	}
	for name, w := range want.Cols {
		g := got.Cols[name]
		if g == nil {
			t.Fatalf("%s: column %q missing", label, name)
		}
		if g.N() != w.N() || len(g.Words()) != len(w.Words()) {
			t.Fatalf("%s: column %q shape mismatch", label, name)
		}
		for k, ww := range w.Words() {
			if g.Words()[k] != ww {
				t.Fatalf("%s: column %q word %d differs", label, name, k)
			}
		}
	}
}

// checkStatsTree asserts the per-node invariants of a successful execution's
// stats tree.
func checkStatsTree(t *testing.T, label string, qs *QueryStats) {
	t.Helper()
	if qs.Failed || qs.Err != "" {
		t.Fatalf("%s: successful execution marked failed: %q", label, qs.Err)
	}
	if qs.Wall <= 0 {
		t.Fatalf("%s: wall time not stamped", label)
	}
	if len(qs.Nodes) < 3 {
		t.Fatalf("%s: implausibly small stats tree (%d nodes)", label, len(qs.Nodes))
	}
	var morsels, kernels int64
	allFellBack := true
	for i, ns := range qs.Nodes {
		if ns.Node != i {
			t.Fatalf("%s: node %d indexed as %d", label, i, ns.Node)
		}
		if ns.Name == "" || ns.Op == "" {
			t.Fatalf("%s: node %d missing identity (%q %q)", label, i, ns.Op, ns.Name)
		}
		if !ns.Started || !ns.Done || ns.Err != "" {
			t.Fatalf("%s: node %d (%s %q) not completed: started=%v done=%v err=%q",
				label, i, ns.Op, ns.Name, ns.Started, ns.Done, ns.Err)
		}
		if len(ns.Formats) == 0 {
			t.Fatalf("%s: node %d (%s %q) has no output formats", label, i, ns.Op, ns.Name)
		}
		for _, in := range ns.Inputs {
			if in < 0 || in >= i {
				t.Fatalf("%s: node %d references input %d outside topological order", label, i, in)
			}
		}
		if ns.Op == "scan" {
			if ns.OutValues == 0 {
				t.Fatalf("%s: scan node %d produced no values", label, i)
			}
			continue
		}
		if len(ns.Inputs) == 0 {
			t.Fatalf("%s: non-scan node %d (%s %q) has no inputs", label, i, ns.Op, ns.Name)
		}
		// Every non-scan operator leased budget: the observer records at
		// least the initial grant.
		if len(ns.LeaseLimits) == 0 {
			t.Fatalf("%s: node %d (%s %q) has no lease history", label, i, ns.Op, ns.Name)
		}
		// Every non-scan operator either ran morsels/tasks through the
		// drivers or took a recorded sequential fallback.
		if ns.Morsels == 0 && !ns.SeqFallback {
			t.Fatalf("%s: node %d (%s %q) ran neither morsels nor a recorded fallback", label, i, ns.Op, ns.Name)
		}
		if !ns.SeqFallback {
			allFellBack = false
		}
		morsels += ns.Morsels
		kernels += int64(ns.Kernel)
	}
	// At par=1 every driver takes the recorded sequential fallback and no
	// morsel loop runs; in any other case the tree must carry morsel counts
	// and kernel time.
	if allFellBack {
		return
	}
	if morsels == 0 {
		t.Fatalf("%s: no morsels recorded anywhere in the tree", label)
	}
	if kernels == 0 {
		t.Fatalf("%s: no kernel time recorded anywhere in the tree", label)
	}
}

// TestQueryStatsSSB runs every SSB query with and without a collector:
// stats must be fully populated at par=1 and par=4 alike, and the produced
// columns byte-identical across all three runs.
func TestQueryStatsSSB(t *testing.T) {
	eng, prs := observeSSB(t)
	execs := 0
	for _, q := range ssb.Queries {
		pr := prs[q]
		ref, err := pr.Execute(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var qs QueryStats
		res, err := pr.Execute(context.Background(), WithExecStats(&qs))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sameResultCols(t, string(q), ref, res)
		checkStatsTree(t, string(q), &qs)

		var seq QueryStats
		resSeq, err := pr.Execute(context.Background(), WithParallelism(1), WithExecStats(&seq))
		if err != nil {
			t.Fatalf("%s seq: %v", q, err)
		}
		sameResultCols(t, string(q)+" seq", ref, resSeq)
		checkStatsTree(t, string(q)+" seq", &seq)
		execs += 3
	}
	st := eng.Stats()
	if st.QueriesStarted != int64(execs) || st.QueriesSucceeded != int64(execs) {
		t.Fatalf("engine counters: started=%d succeeded=%d, want %d", st.QueriesStarted, st.QueriesSucceeded, execs)
	}
	if st.LeaseGrants == 0 || st.LeaseGrants != st.LeaseReleases {
		t.Fatalf("lease counters unbalanced on idle engine: grants=%d releases=%d", st.LeaseGrants, st.LeaseReleases)
	}
	if st.BudgetLeases != 0 || st.BudgetInUse != 0 {
		t.Fatalf("idle engine reports leases=%d inUse=%d", st.BudgetLeases, st.BudgetInUse)
	}
}

// TestQueryStatsTracer runs one SSB query with a JSONL tracer attached and
// checks the span stream is complete and well-formed.
func TestQueryStatsTracer(t *testing.T) {
	_, prs := observeSSB(t)
	pr := prs[ssb.Queries[0]]
	var buf traceCountingWriter
	tr := NewJSONLTracer(&buf)
	var qs QueryStats
	if _, err := pr.Execute(context.Background(), WithTracer(tr), WithExecStats(&qs)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	// One begin and one end line per node, plus at least one lease event per
	// non-scan node.
	scans := 0
	for _, ns := range qs.Nodes {
		if ns.Op == "scan" {
			scans++
		}
	}
	minLines := 2*len(qs.Nodes) + (len(qs.Nodes) - scans)
	if buf.lines < minLines {
		t.Fatalf("trace has %d lines, want at least %d for %d nodes", buf.lines, minLines, len(qs.Nodes))
	}
}

// traceCountingWriter counts JSONL lines without retaining them.
type traceCountingWriter struct{ lines int }

func (w *traceCountingWriter) Write(p []byte) (int, error) {
	for _, c := range p {
		if c == '\n' {
			w.lines++
		}
	}
	return len(p), nil
}

// TestQueryStatsOnFailure arms a kernel fault point and asserts that the
// failed execution still hands back a coherent partial tree — through the
// WithExecStats destination and attached to the *QueryError.
func TestQueryStatsOnFailure(t *testing.T) {
	defer faultpoint.DisarmAll()
	eng, prs := observeSSB(t)
	pr := prs[ssb.Queries[0]]
	faultpoint.KernelBody.Arm(func() error { panic("observability test panic") })
	var qs QueryStats
	_, err := pr.Execute(context.Background(), WithExecStats(&qs))
	faultpoint.DisarmAll()
	if err == nil {
		t.Fatal("armed kernel panic did not fail the execution")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("expected *QueryError, got %T: %v", err, err)
	}
	if qe.Stats == nil {
		t.Fatal("failed execution did not attach stats to the QueryError")
	}
	for _, qsTree := range []*QueryStats{&qs, qe.Stats} {
		if !qsTree.Failed || qsTree.Err == "" {
			t.Fatalf("failed execution's tree not marked failed (failed=%v err=%q)", qsTree.Failed, qsTree.Err)
		}
		failing := 0
		for _, ns := range qsTree.Nodes {
			if ns.Done && ns.Err != "" {
				t.Fatalf("node %d both done and failed", ns.Node)
			}
			if ns.Err != "" {
				failing++
			}
		}
		if failing == 0 {
			t.Fatal("no node carries the failure in the partial tree")
		}
	}
	if st := eng.Stats(); st.QueriesPanicked == 0 {
		t.Fatalf("engine counters did not classify the panic: %+v", st)
	}
	if st := eng.Stats(); st.BudgetLeases != 0 || st.BudgetInUse != 0 {
		t.Fatalf("failed execution leaked budget: %+v", st)
	}
	// The engine and plan stay usable, and a fresh collected run matches an
	// uncollected reference again.
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var after QueryStats
	res, err := pr.Execute(context.Background(), WithExecStats(&after))
	if err != nil {
		t.Fatal(err)
	}
	sameResultCols(t, "post-failure", ref, res)
	checkStatsTree(t, "post-failure", &after)
}

// TestEngineStatsOutcomeClasses drives one execution into each outcome class
// and checks the counters partition correctly.
func TestEngineStatsOutcomeClasses(t *testing.T) {
	eng, prs := observeSSB(t)
	pr := prs[ssb.Queries[0]]
	base := eng.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.Execute(ctx); err == nil {
		t.Fatal("cancelled execution succeeded")
	}
	tctx, tcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer tcancel()
	if _, err := pr.Execute(tctx); err == nil {
		t.Fatal("timed-out execution succeeded")
	}
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if got := st.QueriesCanceled - base.QueriesCanceled; got != 1 {
		t.Fatalf("canceled counter moved by %d, want 1", got)
	}
	if got := st.QueriesTimedOut - base.QueriesTimedOut; got != 1 {
		t.Fatalf("timed-out counter moved by %d, want 1", got)
	}
	if got := st.QueriesSucceeded - base.QueriesSucceeded; got != 1 {
		t.Fatalf("succeeded counter moved by %d, want 1", got)
	}
	if got := st.QueriesStarted - base.QueriesStarted; got != 3 {
		t.Fatalf("started counter moved by %d, want 3", got)
	}
}

// TestDetachedBookkeepingCheap bounds the per-event cost of the detached
// (nil-collector) bookkeeping — the only work a collector-free execution
// pays. The bound is deliberately loose (the budget is single-digit
// nanoseconds, the same class as a disarmed fault point); it exists to catch
// someone accidentally putting an allocation, lock, or clock read on the
// detached path.
func TestDetachedBookkeepingCheap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ncs := [2]*metrics.NodeCollector{}
	const calls = 1 << 22
	start := time.Now()
	for i := 0; i < calls; i++ {
		if ncs[i&1].Shards(0) != nil {
			t.Fatal("nil collector returned shards")
		}
	}
	perCall := float64(time.Since(start).Nanoseconds()) / calls
	if perCall > 100 {
		t.Fatalf("detached bookkeeping costs %.1f ns/call, budget is single-digit ns", perCall)
	}
	t.Logf("detached bookkeeping: %.2f ns/call", perCall)
}

// ExampleQueryStats demonstrates reading a stats tree (compiled, not run:
// output depends on timings).
func ExampleQueryStats() {
	var eng *Engine
	var plan *Plan
	pr, err := eng.Prepare(plan)
	if err != nil {
		panic(err)
	}
	var qs QueryStats
	if _, err := pr.Execute(context.Background(), WithExecStats(&qs)); err != nil {
		panic(err)
	}
	for _, n := range qs.Nodes {
		fmt.Printf("%s %q: %d morsels, %v kernel, %d -> %d values\n",
			n.Op, n.Name, n.Morsels, n.Kernel, n.InValues, n.OutValues)
	}
}
