package morphstore_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	ms "morphstore"
)

// tableValues extracts every column of a table as plain values.
func tableValues(t *testing.T, db *ms.DB, table string) map[string][]uint64 {
	t.Helper()
	tab, ok := db.Tables[table]
	if !ok {
		t.Fatalf("table %q missing", table)
	}
	out := make(map[string][]uint64, len(tab.Cols))
	for cn, col := range tab.Cols {
		vals, err := ms.Decompress(col)
		if err != nil {
			t.Fatalf("%s.%s: %v", table, cn, err)
		}
		out[cn] = vals
	}
	return out
}

// addTables builds a DB from per-table value maps.
func addTables(t *testing.T, tables map[string]map[string][]uint64) *ms.DB {
	t.Helper()
	db := ms.NewDB()
	for name, cols := range tables {
		if err := db.AddTable(name, cols); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// sameResultCols byte-compares two results column by column.
func sameResultCols(want, got *ms.Result) error {
	if len(got.Cols) != len(want.Cols) {
		return fmt.Errorf("%d result columns, want %d", len(got.Cols), len(want.Cols))
	}
	for name, w := range want.Cols {
		g := got.Cols[name]
		if g == nil {
			return fmt.Errorf("column %q missing", name)
		}
		if g.N() != w.N() || g.MainElems() != w.MainElems() || len(g.Words()) != len(w.Words()) {
			return fmt.Errorf("column %q shape mismatch", name)
		}
		gw, ww := g.Words(), w.Words()
		for k := range ww {
			if gw[k] != ww[k] {
				return fmt.Errorf("column %q word %d differs", name, k)
			}
		}
	}
	return nil
}

// TestWritableSSBEquivalence is the write-path equivalence proof: an SSB
// database grown through a randomized interleaving of Engine.Append,
// Engine.Delete, and remorph folds (explicit and background) must answer
// all 13 SSB queries byte-identically to a freshly loaded read-only
// database holding the same final rows, across intermediate formats and
// parallelism levels.
func TestWritableSSBEquivalence(t *testing.T) {
	data, err := ms.GenerateSSB(0.002, 11)
	if err != nil {
		t.Fatal(err)
	}
	full := tableValues(t, data.DB, "lineorder")
	var total int
	for _, vals := range full {
		total = len(vals)
		break
	}

	// The mutated engine starts from a lineorder prefix; the rest arrives
	// through Append, interleaved with deletes and remorphs. The model
	// mirrors every mutation with plain slice surgery.
	p0 := total * 3 / 5
	tables := map[string]map[string][]uint64{}
	for name := range data.DB.Tables {
		if name == "lineorder" {
			continue
		}
		tables[name] = tableValues(t, data.DB, name)
	}
	prefix := make(map[string][]uint64, len(full))
	model := make(map[string][]uint64, len(full))
	for cn, vals := range full {
		prefix[cn] = vals[:p0:p0]
		model[cn] = append([]uint64(nil), vals[:p0]...)
	}
	tables["lineorder"] = prefix
	dbA := addTables(t, tables)

	engA := ms.NewEngine(dbA, ms.WithParallelism(4),
		ms.WithRemorph(0.08, time.Millisecond)) // background folds race the storm
	defer engA.Close(context.Background())
	ctx := context.Background()

	rng := rand.New(rand.NewSource(99))
	next := p0
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(5); {
		case op <= 2 && next < total: // append a random-size chunk
			k := 1 + rng.Intn(total-next)
			if k > 700 {
				k = 700
			}
			rows := make(map[string][]uint64, len(full))
			for cn, vals := range full {
				rows[cn] = vals[next : next+k]
			}
			if err := engA.Append(ctx, "lineorder", rows); err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			for cn := range model {
				model[cn] = append(model[cn], full[cn][next:next+k]...)
			}
			next += k
		case op == 3: // delete a few distinct live rows
			live := len(model["lo_quantity"])
			seen := map[uint64]bool{}
			var pos []uint64
			for len(pos) < 1+rng.Intn(8) {
				p := uint64(rng.Intn(live))
				if !seen[p] {
					seen[p] = true
					pos = append(pos, p)
				}
			}
			if err := engA.Delete(ctx, "lineorder", pos); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			for cn, vals := range model {
				out := vals[:0]
				for i, v := range vals {
					if !seen[uint64(i)] {
						out = append(out, v)
					}
				}
				model[cn] = out
			}
		default: // fold
			if err := engA.Remorph(ctx, "lineorder"); err != nil {
				t.Fatalf("step %d remorph: %v", step, err)
			}
		}
	}
	if n, ok := engA.Snapshot().Rows("lineorder"); !ok || n != len(model["lo_quantity"]) {
		t.Fatalf("mutated engine has %d live rows, model has %d", n, len(model["lo_quantity"]))
	}

	// The reference engine loads the final rows read-only.
	tables["lineorder"] = model
	dbB := addTables(t, tables)
	engB := ms.NewEngine(dbB, ms.WithParallelism(4))
	defer engB.Close(context.Background())

	descs := map[string]ms.FormatDesc{
		"uncompr": ms.Uncompressed, "dyn_bp": ms.DynBP, "for_bp": ms.ForBP, "rle": ms.RLE,
	}
	for _, q := range ms.SSBQueries {
		plan, err := ms.BuildSSBPlan(q, data)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for dn, desc := range descs {
			for _, par := range []int{1, 4} {
				opts := []ms.Option{ms.WithUniformFormat(desc), ms.WithParallelism(par), ms.WithAutoMorph(true)}
				prA, err := engA.Prepare(plan, opts...)
				if err != nil {
					t.Fatalf("%s/%s/par%d prepare mutated: %v", q, dn, par, err)
				}
				prB, err := engB.Prepare(plan, opts...)
				if err != nil {
					t.Fatalf("%s/%s/par%d prepare fresh: %v", q, dn, par, err)
				}
				resA, err := prA.Execute(ctx)
				if err != nil {
					t.Fatalf("%s/%s/par%d mutated: %v", q, dn, par, err)
				}
				resB, err := prB.Execute(ctx)
				if err != nil {
					t.Fatalf("%s/%s/par%d fresh: %v", q, dn, par, err)
				}
				if err := sameResultCols(resB, resA); err != nil {
					t.Fatalf("%s/%s/par%d: mutated diverges from fresh reload: %v", q, dn, par, err)
				}
			}
		}
	}
}
