package morphstore

import (
	"context"
	"io"

	"morphstore/internal/dict"
	"morphstore/internal/ingest"
)

// This file is the facade over the string-column layer: per-column
// dictionaries (internal/dict) that encode a string column as a compressed
// uint64 ID column, and the ingest package (internal/ingest) that loads CSV
// or JSON-lines data into the engine through them.
//
// A string column is created with DB.AddStringColumn (or implicitly by
// Ingest when the table does not exist yet), appended to with
// Engine.AppendStrings, and queried with the plan builder's string
// predicates (SelectStrEq, SelectStrIn, SelectStrPrefix), which are
// translated to dictionary-ID space at Prepare time and executed by the
// existing compressed morsel-parallel select kernels.

// Dict is a per-column string dictionary: an append-only string→ID
// translator behind an atomic snapshot. IDs are assigned in
// first-occurrence order; the background remorph renumbers them into sorted
// order, making prefix predicates contiguous ID ranges.
type Dict = dict.Dict

// DictSnap is an immutable dictionary snapshot: use Snapshot.Dict to pin
// one consistent with a query's rows and translate result IDs back to
// strings.
type DictSnap = dict.Snap

// ReplayDict rebuilds a dictionary from a journal returned by Dict.Journal;
// hostile bytes fail with ErrCorruptData and never panic.
func ReplayDict(journal []byte) (*Dict, error) { return dict.Replay(journal) }

// IngestSource decodes an input stream into typed column batches; see
// NewCSVSource and NewJSONLinesSource.
type IngestSource = ingest.Source

// IngestColumn is one sniffed source column (name and kind).
type IngestColumn = ingest.Column

// IngestBatch is one decoded batch of rows, split into numeric and string
// columns.
type IngestBatch = ingest.Batch

// IngestOption configures Ingest.
type IngestOption = ingest.Option

// WithBatchRows sets the row count Ingest requests per source batch
// (default 4096); each batch is one governor reservation and one delta
// append.
func WithBatchRows(n int) IngestOption { return ingest.WithBatchRows(n) }

// NewCSVSource returns a source reading CSV from r: the first record is the
// header, and each column is sniffed numeric (every value a decimal uint64)
// or string over the first batch. Syntax defects fail with ErrCorruptData,
// schema defects (ragged rows, duplicate headers, type flips) with
// ErrInvalidSchema.
func NewCSVSource(r io.Reader) IngestSource { return ingest.NewCSV(r) }

// NewJSONLinesSource returns a source reading JSON lines from r: one object
// per line, schema fixed by the first object, under the same typed-error
// taxonomy as NewCSVSource.
func NewJSONLinesSource(r io.Reader) IngestSource { return ingest.NewJSONLines(r) }

// Ingest streams src into the named table of e, creating the table from the
// sniffed schema when it does not exist: string columns are translated
// through their dictionaries and every batch appends under the engine's
// admission, memory-governor, and Close semantics. It returns the number of
// rows appended; on error, already appended batches remain.
func Ingest(ctx context.Context, e *Engine, table string, src IngestSource, opts ...IngestOption) (int, error) {
	return ingest.Load(ctx, e, table, src, opts...)
}
