package morphstore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// The overload acceptance test: the public API's overload-protection and
// lifecycle surface — WithMaxConcurrentQueries + WithAdmissionQueue,
// WithMemoryBudget, WithRetry, IsRetryable, Engine.Close — exercised
// end-to-end through the morphstore package.

// overloadDB builds a small two-column database and a select-project-sum
// plan against it.
func overloadDB(t *testing.T) (*DB, *Plan) {
	t.Helper()
	n := 8*512 + 300
	a := make([]uint64, n)
	bvals := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i % 1000)
		bvals[i] = uint64(i % 97)
	}
	db := NewDB()
	db.AddTable("t", map[string][]uint64{"a": a, "b": bvals})

	pb := NewPlanBuilder()
	ca := pb.Scan("t", "a")
	cb := pb.Scan("t", "b")
	sel := pb.Select("sel", ca, CmpLt, 800)
	proj := pb.Project("proj", cb, sel)
	pb.Result(pb.SumWhole("total", proj))
	plan, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db, plan
}

// TestOverloadAdmissionAndRetry: under 4x over-admission against one slot
// and a bounded queue, some executions are shed with the retryable
// ErrAdmissionRejected; the same storm under WithRetry completes fully,
// with every result identical.
func TestOverloadAdmissionAndRetry(t *testing.T) {
	db, plan := overloadDB(t)
	e := NewEngine(db, WithParallelism(2),
		WithMaxConcurrentQueries(1),
		WithAdmissionQueue(1, 200*time.Microsecond))
	pr, err := e.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Cols["total"].Words()[0]

	const clients, iters = 4, 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, ok int
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := pr.Execute(context.Background())
				mu.Lock()
				switch {
				case err == nil:
					ok++
					if res.Cols["total"].Words()[0] != want {
						t.Errorf("result under overload differs")
					}
				case errors.Is(err, ErrAdmissionRejected):
					if !IsRetryable(err) {
						t.Errorf("admission shed not retryable: %v", err)
					}
					if errors.Is(err, ErrQueryTimeout) || errors.Is(err, ErrQueryCanceled) {
						t.Errorf("admission shed classified mid-flight: %v", err)
					}
					shed++
				default:
					t.Errorf("unexpected overload error: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no execution succeeded under overload")
	}
	st := e.Stats()
	if st.QueriesRejected != int64(shed) {
		t.Fatalf("QueriesRejected = %d, observed %d sheds", st.QueriesRejected, shed)
	}

	// The same storm with retries enabled: every client eventually gets
	// through.
	retry := WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: 100 * time.Microsecond, Jitter: 0.5})
	var rwg sync.WaitGroup
	errCh := make(chan error, clients*iters)
	for c := 0; c < clients; c++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < iters; i++ {
				res, err := pr.Execute(context.Background(), retry)
				if err != nil {
					errCh <- err
					return
				}
				if res.Cols["total"].Words()[0] != want {
					errCh <- errors.New("retried result differs")
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("retried storm: %v", err)
	}
	if shed > 0 && e.Stats().QueriesRetried == 0 {
		t.Fatal("retry storm recorded no retries despite earlier sheds")
	}
}

// TestOverloadMemoryBudget: WithMemoryBudget threads estimate and measured
// peak through QueryStats and Engine.Stats at the public surface.
func TestOverloadMemoryBudget(t *testing.T) {
	db, plan := overloadDB(t)
	e := NewEngine(db, WithParallelism(2), WithMemoryBudget(1<<30))
	pr, err := e.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	var qs QueryStats
	if _, err := pr.Execute(context.Background(), WithExecStats(&qs)); err != nil {
		t.Fatal(err)
	}
	if qs.MemEstimate <= 0 || qs.MemPeak <= 0 || qs.MemDegraded {
		t.Fatalf("memory stats: estimate=%d peak=%d degraded=%v", qs.MemEstimate, qs.MemPeak, qs.MemDegraded)
	}
	st := e.Stats()
	if st.MemBudget != 1<<30 || st.MemReserved != 0 || st.MemPeakReserved < qs.MemEstimate {
		t.Fatalf("engine memory stats: budget=%d reserved=%d peak=%d",
			st.MemBudget, st.MemReserved, st.MemPeakReserved)
	}

	// A budget below the plan's estimate rejects with the non-retryable
	// sentinel.
	strict := NewEngine(db, WithParallelism(2), WithMemoryBudget(int64(pr.MemoryEstimate()-1)))
	spr, err := strict.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spr.Execute(context.Background()); !errors.Is(err, ErrMemoryLimit) || IsRetryable(err) {
		t.Fatalf("over-budget execution: %v, want non-retryable ErrMemoryLimit", err)
	}
}

// TestOverloadEngineClose: Close through the public API — graceful drain,
// fail-fast afterwards for Execute and one-off operators, idempotence.
func TestOverloadEngineClose(t *testing.T) {
	db, plan := overloadDB(t)
	e := NewEngine(db, WithParallelism(2))
	pr, err := e.Prepare(plan, WithUniformFormat(DynBP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := pr.Execute(context.Background()); !errors.Is(err, ErrEngineClosed) || IsRetryable(err) {
		t.Fatalf("execute after close: %v, want non-retryable ErrEngineClosed", err)
	}
	col, err := db.Column("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sum(context.Background(), col); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("operator after close: %v, want ErrEngineClosed", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if st := e.Stats(); !st.EngineClosed {
		t.Fatal("Stats does not report the engine closed")
	}
}
