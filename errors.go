// Typed error taxonomy: every failure mode of a query execution maps onto
// exactly one sentinel of this file, so callers can dispatch with errors.Is
// regardless of which layer of the engine produced the failure:
//
//	res, err := q.Execute(ctx)
//	switch {
//	case errors.Is(err, morphstore.ErrCorruptData):
//		// structurally invalid compressed data — quarantine the column
//	case errors.Is(err, morphstore.ErrQueryTimeout):
//		// the deadline (or WithQueryTimeout) fired — maybe retry smaller
//	case errors.Is(err, morphstore.ErrQueryCanceled):
//		// the caller's context was cancelled
//	case errors.Is(err, morphstore.ErrAdmissionRejected):
//		// shed under overload before it started — safe to retry
//	case errors.Is(err, morphstore.ErrEngineClosed):
//		// the engine was shut down — do not retry here
//	}
//
// A panic inside an operator kernel or worker goroutine is recovered and
// isolated to the failing query — the engine, its prepared plans, and
// concurrent queries stay fully usable — and surfaces as a *QueryError
// recording the operator, the morsel index, the panic value, and the stack.
package morphstore

import (
	"time"

	"morphstore/internal/core"
	"morphstore/internal/qerr"
)

// The sentinel errors of the taxonomy. Concrete failures wrap them with
// contextual detail (column sizes, block offsets, limits); compare with
// errors.Is.
var (
	// ErrCorruptData reports structurally invalid compressed data: an
	// out-of-range bit width, a truncated block, an overflowing run length.
	// Every corruption detected anywhere in the engine — decompression,
	// sequential readers, random access, compressed concatenation — matches
	// this sentinel.
	ErrCorruptData = qerr.ErrCorruptData
	// ErrInvalidSchema reports malformed base data handed to the engine:
	// ragged column lengths at DB.AddTable, a duplicate table registration,
	// or an Engine.Append whose rows do not match the table's column set.
	// The failed call changed nothing; fix the data and retry.
	ErrInvalidSchema = qerr.ErrInvalidSchema
	// ErrQueryCanceled reports an execution stopped by context cancellation.
	ErrQueryCanceled = qerr.ErrQueryCanceled
	// ErrQueryTimeout reports an execution stopped by a context deadline,
	// including one set with WithQueryTimeout.
	ErrQueryTimeout = qerr.ErrQueryTimeout
	// ErrMemoryLimit reports a plan whose prepare-time memory estimate
	// exceeds the configured WithMemoryEstimateLimit.
	ErrMemoryLimit = qerr.ErrMemoryLimit
	// ErrAdmissionRejected reports a query the engine shed before it started:
	// the admission queue overflowed its WithAdmissionQueue depth, the
	// query's context or the queue's maxWait fired while it was parked, or
	// its memory reservation could not be granted in time under
	// WithMemoryBudget. The query did no work, so the rejection is retryable
	// (IsRetryable reports true) and is never classified as ErrQueryCanceled
	// or ErrQueryTimeout — those are reserved for mid-flight stops.
	ErrAdmissionRejected = qerr.ErrAdmissionRejected
	// ErrEngineClosed reports a call against an engine shut down with
	// Engine.Close: an Execute or operator call after Close, a query shed
	// from the admission queue by Close, or an in-flight execution cancelled
	// when Close abandoned its graceful drain. Never retryable.
	ErrEngineClosed = qerr.ErrEngineClosed
	// ErrTransient marks a failure as transient (safe to retry); the fault
	// injection used by the robustness tests tags injected failures with it.
	ErrTransient = qerr.ErrTransient
)

// IsRetryable reports whether err is safe to retry from scratch: the engine
// guarantees the failed call did no observable work. Admission sheds
// (ErrAdmissionRejected) and transient failures (ErrTransient) are
// retryable; corrupt data, a closed engine, and mid-flight cancellations or
// timeouts are not. WithRetry uses the same classification.
func IsRetryable(err error) bool { return qerr.IsRetryable(err) }

// QueryError is a panic recovered inside a query execution, converted into
// an error so one failing operator cannot take down the process or its
// sibling queries. It records the operator, the morsel or task index inside
// the operator (-1 when the panic was not morsel-scoped), the original panic
// value, and the goroutine stack at recovery time. Retrieve it with
// errors.As; when the panic value is itself an error, errors.Is sees through
// to it.
type QueryError = qerr.QueryError

// WithQueryTimeout bounds one execution's wall-clock time: Execute derives a
// deadline context, running morsel loops stop within one morsel when it
// fires, and the returned error matches ErrQueryTimeout. The timeout covers
// the admission wait. 0 means no deadline. Applies to NewEngine (default for
// every execution), Prepare, and Execute.
func WithQueryTimeout(d time.Duration) Option { return core.WithQueryTimeout(d) }

// WithMemoryEstimateLimit bounds the conservative prepare-time estimate of
// the intermediate bytes one execution can materialize (see
// Prepared.MemoryEstimate). An over-limit plan fails Prepare with an error
// matching ErrMemoryLimit — or, with WithMemoryLimitDegrade, prepares
// degraded instead. 0 means unlimited. Applies to NewEngine and Prepare.
func WithMemoryEstimateLimit(bytes int) Option { return core.WithMemoryEstimateLimit(bytes) }

// WithMemoryLimitDegrade selects graceful degradation for plans over the
// memory-estimate limit: instead of rejecting the plan, Prepare pins its
// executions to sequential operator-at-a-time processing — the mode with the
// smallest transient footprint. Prepared.Degraded reports the decision.
// Applies to NewEngine and Prepare.
func WithMemoryLimitDegrade(on bool) Option { return core.WithMemoryLimitDegrade(on) }
