package morphstore_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	ms "morphstore"
)

// TestFacadeEngineOneOff: the engine's option-based operator calls agree
// with the deprecated positional free functions.
func TestFacadeEngineOneOff(t *testing.T) {
	n := 8 * 512
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 301)
	}
	col, err := ms.Compress(vals, ms.DynBP)
	if err != nil {
		t.Fatal(err)
	}
	eng := ms.NewEngine(nil, ms.WithStyle(ms.Vec512), ms.WithParallelism(2))
	ctx := context.Background()

	want, err := ms.Select(col, ms.CmpLt, 100, ms.DeltaBP, ms.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Select(ctx, col, ms.CmpLt, 100, ms.WithOutput(ms.DeltaBP))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() {
		t.Fatalf("select: %d positions, want %d", got.N(), want.N())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("select: %d words, want %d", len(gw), len(ww))
	}
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("select: word %d differs", i)
		}
	}

	wantSum, err := ms.Sum(col, ms.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := eng.Sum(ctx, col)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum {
		t.Fatalf("sum = %d, want %d", gotSum, wantSum)
	}
}

// TestFacadeEngineSSB: an SSB query prepared once executes concurrently
// from several goroutines with results matching the row-wise reference.
func TestFacadeEngineSSB(t *testing.T) {
	data, err := ms.GenerateSSB(0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ms.BuildSSBPlan("1.1", data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ms.SSBReference("1.1", data)
	if err != nil {
		t.Fatal(err)
	}
	eng := ms.NewEngine(data.DB, ms.WithStyle(ms.Vec512), ms.WithParallelism(3))
	q, err := eng.Prepare(plan, ms.WithUniformFormat(ms.DeltaBP))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := q.Execute(context.Background())
			if err != nil {
				errCh <- err
				return
			}
			rows, err := ms.ExtractSSBResult("1.1", res)
			if err != nil {
				errCh <- err
				return
			}
			if len(rows) != len(want) || rows[0].Sum != want[0].Sum {
				errCh <- errors.New("engine SSB result disagrees with reference")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestFacadeEngineCancelled: a cancelled context surfaces through the
// facade as ctx.Err().
func TestFacadeEngineCancelled(t *testing.T) {
	db := ms.NewDB()
	db.AddTable("t", map[string][]uint64{"x": {1, 2, 3}})
	b := ms.NewPlanBuilder()
	x := b.Scan("t", "x")
	b.Result(b.SumWhole("total", x))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ms.NewEngine(db).Prepare(plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
