// Advisor: a compression-format advisor built on the gray-box cost model.
// It analyzes columns with very different data characteristics, asks the
// model for a format recommendation, verifies the recommendation against
// the actual compressed sizes of every format, and proves the recommended
// column is directly queryable by aggregating it through the engine in its
// compressed form.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	ms "morphstore"
)

type workload struct {
	name string
	vals []uint64
}

type entry struct {
	desc   ms.FormatDesc
	actual int
	est    int
}

func makeWorkloads() []workload {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 20

	small := make([]uint64, n)
	for i := range small {
		small[i] = uint64(rng.Intn(100))
	}

	outliers := make([]uint64, n)
	for i := range outliers {
		if rng.Float64() < 0.0005 {
			outliers[i] = 1<<62 + uint64(rng.Intn(1000))
		} else {
			outliers[i] = uint64(rng.Intn(100))
		}
	}

	hugeNarrow := make([]uint64, n)
	for i := range hugeNarrow {
		hugeNarrow[i] = 1<<55 + uint64(rng.Intn(4096))
	}

	sortedIDs := make([]uint64, n)
	acc := uint64(1_000_000_000)
	for i := range sortedIDs {
		acc += uint64(1 + rng.Intn(50))
		sortedIDs[i] = acc
	}

	status := make([]uint64, n)
	cur := uint64(0)
	for i := range status {
		if rng.Float64() < 0.001 {
			cur = uint64(rng.Intn(5))
		}
		status[i] = cur
	}

	return []workload{
		{"small values (dictionary codes)", small},
		{"small values with rare outliers", outliers},
		{"huge values, narrow range (pointers)", hugeNarrow},
		{"sorted identifiers (positions)", sortedIDs},
		{"long runs (status flags)", status},
	}
}

func main() {
	// One engine runs the verification queries; specialized kernels work
	// directly on the compressed representation where the format has one.
	eng := ms.NewEngine(nil, ms.WithStyle(ms.Vec512), ms.WithSpecialized(true))
	ctx := context.Background()
	for _, w := range makeWorkloads() {
		prof := ms.Analyze(w.vals)
		rec, err := ms.SuggestFormat(prof, ms.AllFormats())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", w.name)
		fmt.Printf("   n=%d  maxbits=%d  sorted=%v  runs=%d  distinct>=%d\n",
			prof.N, prof.MaxBits, prof.Sorted, prof.Runs, prof.Distinct)

		var entries []entry
		for _, d := range ms.AllFormats() {
			col, err := ms.Compress(w.vals, d)
			if err != nil {
				log.Fatal(err)
			}
			est, err := ms.EstimateBytes(prof, d)
			if err != nil {
				log.Fatal(err)
			}
			entries = append(entries, entry{d, col.PhysicalBytes(), est})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].actual < entries[j].actual })

		for rank, e := range entries {
			marker := "  "
			if e.desc == rec {
				marker = "=>"
			}
			fmt.Printf(" %s #%d %-12v actual %9d B   estimated %9d B\n",
				marker, rank+1, e.desc, e.actual, e.est)
		}
		if entries[0].desc == rec {
			fmt.Println("   advisor picked the true optimum")
		} else {
			loss := float64(findActual(entries, rec))/float64(entries[0].actual) - 1
			fmt.Printf("   advisor within %.1f%% of the true optimum\n", 100*loss)
		}

		// The recommended column is directly queryable: sum it through the
		// engine in compressed form and compare with the raw values.
		recCol, err := ms.Compress(w.vals, rec)
		if err != nil {
			log.Fatal(err)
		}
		got, err := eng.Sum(ctx, recCol)
		if err != nil {
			log.Fatal(err)
		}
		var want uint64
		for _, v := range w.vals {
			want += v
		}
		fmt.Printf("   engine sum over %v column agrees with raw data: %v\n", rec, got == want)
		fmt.Println()
	}
}

func findActual(entries []entry, d ms.FormatDesc) int {
	for _, e := range entries {
		if e.desc == d {
			return e.actual
		}
	}
	return 0
}
