// Ingest: the write path end to end — streaming appends into a compressed
// table, retention deletes, snapshot-consistent reads, and remorph.
//
// A log-events table (sorted timestamps, run-heavy severity levels,
// low-cardinality payload sizes) is loaded frozen, then grown through
// Engine.Append in batches while a fixed analytical query — "sum of bytes
// shipped by error-level events" — runs between batches. Deletes trim the
// oldest rows like a retention job. Every mutation lands in the table's
// uncompressed delta; Engine.Remorph folds it back into a freshly
// compressed main (formats re-picked by the cost model) without blocking
// readers, and Engine.Stats shows the delta draining.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	ms "morphstore"
)

// eventRows synthesizes n log events starting at timestamp t0.
func eventRows(rng *rand.Rand, t0 uint64, n int) (map[string][]uint64, uint64) {
	ts := make([]uint64, n)
	level := make([]uint64, n)
	bytes := make([]uint64, n)
	cur := uint64(0)
	for i := range ts {
		t0 += uint64(rng.Intn(8))
		ts[i] = t0
		if rng.Float64() < 0.002 {
			cur = uint64(rng.Intn(4)) // 0 debug .. 3 error
		}
		level[i] = cur
		bytes[i] = 64 + uint64(rng.Intn(1400))
	}
	return map[string][]uint64{"ts": ts, "level": level, "bytes": bytes}, t0
}

func main() {
	const base = 400_000
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	rows, t0 := eventRows(rng, 1_700_000_000, base)
	db := ms.NewDB()
	if err := db.AddTable("events", rows); err != nil {
		log.Fatal(err)
	}

	// The background worker folds once the delta reaches 25% of the main;
	// this run also folds explicitly so the output is deterministic.
	eng := ms.NewEngine(db,
		ms.WithParallelism(4),
		ms.WithRemorph(0.25, 50*time.Millisecond))
	defer eng.Close(ctx)

	b := ms.NewPlanBuilder()
	lv := b.Scan("events", "level")
	by := b.Scan("events", "bytes")
	errs := b.Select("errs", lv, ms.CmpEq, 3)
	b.Result(b.SumWhole("total", b.Project("err_bytes", by, errs)))
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Prepare(plan, ms.WithCostBasedFormats(), ms.WithAutoMorph(true))
	if err != nil {
		log.Fatal(err)
	}
	query := func() uint64 {
		res, err := q.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}
		vals, err := ms.Decompress(res.Cols["total"])
		if err != nil {
			log.Fatal(err)
		}
		return vals[0]
	}

	fmt.Println("== streaming appends, retention deletes, snapshot reads ==")
	for batch := 1; batch <= 4; batch++ {
		var chunk map[string][]uint64
		chunk, t0 = eventRows(rng, t0, 30_000)
		if err := eng.Append(ctx, "events", chunk); err != nil {
			log.Fatal(err)
		}
		// Retention: drop the 5000 oldest live rows (positions 0..4999).
		old := make([]uint64, 5000)
		for i := range old {
			old[i] = uint64(i)
		}
		if err := eng.Delete(ctx, "events", old); err != nil {
			log.Fatal(err)
		}
		snap := eng.Snapshot()
		n, _ := snap.Rows("events")
		fmt.Printf("  batch %d: epoch %3d, %7d live rows, err_bytes = %d\n",
			batch, snap.Epoch("events"), n, query())
	}

	st := eng.Stats()
	fmt.Printf("\n== delta before the fold ==\n")
	fmt.Printf("  appends %d (%d rows), deletes %d (%d rows); delta holds %d rows, %d pending deletions, %d B\n",
		st.Appends, st.AppendedRows, st.Deletes, st.DeletedRows,
		st.DeltaRows, st.DeltaDeleted, st.DeltaBytes)

	// Fold now: rescan live rows, re-pick formats, swap. Readers admitted
	// before the swap finish on their pinned snapshots.
	before := query()
	if err := eng.Remorph(ctx, "events"); err != nil {
		log.Fatal(err)
	}
	st = eng.Stats()
	n, _ := eng.Snapshot().Rows("events")
	fmt.Printf("\n== after remorph ==\n")
	fmt.Printf("  remorphs %d (failures %d, %d rows written across folds), main now %d rows; delta holds %d rows, %d B\n",
		st.Remorphs, st.RemorphFailures, st.RemorphRows, n, st.DeltaRows, st.DeltaBytes)
	fmt.Printf("  err_bytes before fold = %d, after = %d, agree: %v\n",
		before, query(), before == query())
}
