// Csvload: string columns end to end — a CSV document with a string column
// is ingested through the per-column dictionary (types sniffed, strings
// translated to uint64 IDs, batches reserved from the memory governor), a
// JSON-lines tail is appended to the same table, and string predicates
// (equality, IN, prefix) run as ordinary compressed integer selects. A
// remorph fold then rebuilds the dictionary in sorted order — renumbering
// every ID — and the same queries answer identically.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	ms "morphstore"
)

// The kind of file a warehouse job drops: a header line, then rows whose
// first column is a low-cardinality string.
const salesCSV = `nation,revenue
FRANCE,2100
GERMANY,3400
FRANCE,1200
JAPAN,900
GERMANY,800
FRANCE,4700
EGYPT,1500
JAPAN,2200
`

// A late-arriving tail in JSON-lines form, ingested into the same table.
const salesJSONL = `{"nation": "EGYPT", "revenue": 600}
{"nation": "FRANCE", "revenue": 300}
{"nation": "ETHIOPIA", "revenue": 1100}
`

// revenueWhere builds: sum of revenue over the rows whose nation matches
// the string predicate.
func revenueWhere(pred func(b *ms.PlanBuilder, nation ms.ColRef) ms.ColRef) *ms.Plan {
	b := ms.NewPlanBuilder()
	nation := b.Scan("sales", "nation")
	rev := b.Scan("sales", "revenue")
	b.Result(b.SumWhole("total", b.Project("rev", rev, pred(b, nation))))
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func run(ctx context.Context, eng *ms.Engine, name string, plan *ms.Plan) uint64 {
	q, err := eng.Prepare(plan, ms.WithCostBasedFormats())
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res, err := q.Execute(ctx)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	total, err := ms.Decompress(res.Cols["total"])
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return total[0]
}

func main() {
	ctx := context.Background()
	db := ms.NewDB()
	eng := ms.NewEngine(db, ms.WithParallelism(4))
	defer eng.Close(ctx)

	// Load creates the table from the CSV header, sniffing "nation" as a
	// string column (dictionary + ID column) and "revenue" as numeric.
	n, err := ms.Ingest(ctx, eng, "sales", ms.NewCSVSource(strings.NewReader(salesCSV)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("csv ingest: %d rows\n", n)

	// The JSON-lines tail appends through the same dictionary.
	n, err = ms.Ingest(ctx, eng, "sales", ms.NewJSONLinesSource(strings.NewReader(salesJSONL)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jsonl ingest: %d rows\n", n)

	plans := []struct {
		name string
		plan *ms.Plan
	}{
		{"revenue[nation = FRANCE]", revenueWhere(func(b *ms.PlanBuilder, nation ms.ColRef) ms.ColRef {
			return b.SelectStrEq("pos", nation, "FRANCE")
		})},
		{"revenue[nation IN (GERMANY, JAPAN)]", revenueWhere(func(b *ms.PlanBuilder, nation ms.ColRef) ms.ColRef {
			return b.SelectStrIn("pos", nation, "GERMANY", "JAPAN")
		})},
		{"revenue[nation LIKE E%]", revenueWhere(func(b *ms.PlanBuilder, nation ms.ColRef) ms.ColRef {
			return b.SelectStrPrefix("pos", nation, "E")
		})},
	}
	before := make([]uint64, len(plans))
	for i, p := range plans {
		before[i] = run(ctx, eng, p.name, p.plan)
		fmt.Printf("%-38s = %d\n", p.name, before[i])
	}

	// Fold the delta: the dictionary is rebuilt in sorted order and every
	// stored ID renumbered — invisible to queries, so the same prepared
	// shapes must answer identically.
	if err := eng.Remorph(ctx, "sales"); err != nil {
		log.Fatal(err)
	}
	ds := eng.Snapshot().Dict("sales", "nation")
	fmt.Printf("after remorph: dict %d strings, sorted=%v\n", ds.Len(), ds.Sorted())
	for i, p := range plans {
		after := run(ctx, eng, p.name, p.plan)
		if after != before[i] {
			log.Fatalf("%s: %d after remorph, want %d", p.name, after, before[i])
		}
	}
	fmt.Println("all string predicates stable across the sorted rebuild")
}
