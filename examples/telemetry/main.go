// Telemetry: an IoT-style analytical scenario over sensor readings.
//
// A fleet of sensors produces (timestamp, sensor_id, status, reading) rows.
// The analytical question — "sum of readings of healthy sensors within a
// time window" — runs as an operator-at-a-time plan whose intermediates are
// kept compressed throughout, showing how the format of each intermediate
// follows its own data characteristics: sorted timestamps like DELTA+BP,
// runs of status codes like RLE, position lists like DELTA+BP.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ms "morphstore"
)

func main() {
	const n = 2_000_000
	rng := rand.New(rand.NewSource(99))

	// Event-time column: monotonically increasing (sorted).
	ts := make([]uint64, n)
	t := uint64(1_700_000_000_000) // epoch millis
	for i := range ts {
		t += uint64(rng.Intn(20))
		ts[i] = t
	}
	// Status: long runs (sensors stay healthy/unhealthy for a while).
	status := make([]uint64, n)
	cur := uint64(0)
	for i := range status {
		if rng.Float64() < 0.0005 {
			cur = uint64(rng.Intn(3)) // 0 healthy, 1 degraded, 2 down
		}
		status[i] = cur
	}
	// Reading: 12-bit ADC values with a large fixed offset.
	reading := make([]uint64, n)
	for i := range reading {
		reading[i] = 1<<40 + uint64(rng.Intn(4096))
	}

	// Let the cost model pick base formats.
	fmt.Println("== base column formats chosen by the cost model ==")
	cols := map[string][]uint64{"ts": ts, "status": status, "reading": reading}
	for name, vals := range cols {
		rec, err := ms.SuggestFormat(ms.Analyze(vals), ms.AllFormats())
		if err != nil {
			log.Fatal(err)
		}
		col, err := ms.Compress(vals, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s -> %-12v %9d B (%.1f%% of raw)\n", name, rec,
			col.PhysicalBytes(), 100*float64(col.PhysicalBytes())/float64(8*n))
	}

	// The query as a plan: ts window AND status == healthy, sum readings.
	db := ms.NewDB()
	db.AddTable("telemetry", cols)

	b := ms.NewPlanBuilder()
	tsCol := b.Scan("telemetry", "ts")
	stCol := b.Scan("telemetry", "status")
	rdCol := b.Scan("telemetry", "reading")
	lo, hi := ts[n/4], ts[3*n/4]
	inWindow := b.Between("in_window", tsCol, lo, hi)
	healthy := b.Select("healthy", stCol, ms.CmpEq, 0)
	pos := b.Intersect("pos", inWindow, healthy)
	vals := b.Project("vals", rdCol, pos)
	b.Result(b.SumWhole("total", vals))
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Run uncompressed vs. cost-model-selected continuous compression,
	// pinned to sequential execution (WithParallelism(1)) so the printed
	// runtime comparison is the per-operator measurement on any host.
	ctx := context.Background()
	qU, err := ms.NewEngine(db, ms.WithStyle(ms.Vec512), ms.WithParallelism(1)).Prepare(plan)
	if err != nil {
		log.Fatal(err)
	}
	resU, err := qU.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}
	assign, err := ms.CostBasedAssignment(plan, db)
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := db.Encode(assign.Base)
	if err != nil {
		log.Fatal(err)
	}
	qC, err := ms.NewEngine(encoded, ms.WithStyle(ms.Vec512), ms.WithParallelism(1)).
		Prepare(plan, ms.WithFormats(assign.Inter), ms.WithSpecialized(true))
	if err != nil {
		log.Fatal(err)
	}
	resC, err := qC.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}

	sumU, _ := resU.Cols["total"].Values()
	sumC, _ := resC.Cols["total"].Values()
	fmt.Println("\n== query: SUM(reading) WHERE ts IN window AND status = healthy ==")
	fmt.Printf("  uncompressed: %8.2f ms, %7.2f MB footprint\n",
		float64(resU.Meas.Runtime.Microseconds())/1000,
		float64(resU.Meas.Footprint())/(1<<20))
	fmt.Printf("  compressed:   %8.2f ms, %7.2f MB footprint\n",
		float64(resC.Meas.Runtime.Microseconds())/1000,
		float64(resC.Meas.Footprint())/(1<<20))
	fmt.Printf("  results agree: %v (sum = %d)\n", sumU[0] == sumC[0], sumC[0])

	fmt.Println("\n== formats chosen per intermediate ==")
	for name, desc := range assign.Inter {
		fmt.Printf("  %-12s -> %v\n", name, desc)
	}
}
