// Observe: execute one query with a stats collector and a JSONL tracer
// attached, print the per-operator stats tree, and read the engine-wide
// counters — the observability layer end to end. See docs/OBSERVABILITY.md
// for the full model.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	ms "morphstore"
)

func main() {
	// A small star-schema-ish workload: one fact column filtered and
	// aggregated, so the plan has a scan → select → project → sum spine.
	rng := rand.New(rand.NewSource(7))
	price := make([]uint64, 512*1024)
	for i := range price {
		price[i] = uint64(rng.Intn(10_000))
	}
	db := ms.NewDB()
	db.AddTable("lineorder", map[string][]uint64{"price": price})

	b := ms.NewPlanBuilder()
	p := b.Scan("lineorder", "price")
	cheap := b.Select("cheap", p, ms.CmpLt, 100)
	b.Result(b.SumWhole("revenue", b.Project("matched", p, cheap)))
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	eng := ms.NewEngine(db, ms.WithParallelism(4))
	q, err := eng.Prepare(plan, ms.WithUniformFormat(ms.DynBP))
	if err != nil {
		log.Fatal(err)
	}

	// One collected + traced execution: the stats tree lands in qs, the
	// trace streams to stderr as JSON lines.
	var qs ms.QueryStats
	res, err := q.Execute(context.Background(),
		ms.WithExecStats(&qs), ms.WithTracer(ms.NewJSONLTracer(os.Stderr)))
	if err != nil {
		log.Fatal(err)
	}
	total, err := ms.Decompress(res.Cols["revenue"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue = %d\n\n", total[0])

	// The stats tree mirrors the plan: one NodeStats per operator, indexed
	// by plan node id, linked through Inputs.
	fmt.Printf("query %d: %v wall, %d operators\n", qs.Query, qs.Wall, len(qs.Nodes))
	fmt.Printf("%-4s %-8s %-16s %-7s %8s %12s %15s %8s  %s\n",
		"node", "op", "name", "inputs", "morsels", "kernel", "in→out", "workers", "formats")
	for _, n := range qs.Nodes {
		mode := fmt.Sprintf("%d", n.Workers)
		if n.SeqFallback {
			mode = "seq"
		}
		fmt.Printf("%-4d %-8s %-16s %-7s %8d %12v %7d→%-7d %8s  %v  leases %v\n",
			n.Node, n.Op, n.Name, fmt.Sprint(n.Inputs), n.Morsels, n.Kernel,
			n.InValues, n.OutValues, mode, n.Formats, n.LeaseLimits)
	}

	// Engine-wide counters: queries by outcome class, budget utilization.
	st := eng.Stats()
	fmt.Printf("\nengine: %d started, %d succeeded; %d lease grants, %d releases, budget %d/%d in use\n",
		st.QueriesStarted, st.QueriesSucceeded,
		st.LeaseGrants, st.LeaseReleases, st.BudgetInUse, st.BudgetTotal)
}
