// SSB: run the 13 Star Schema Benchmark queries under different format
// configurations and compare runtime and memory footprint — the experiment
// at the heart of the MorphStore paper, as an example program.
//
// Usage: go run ./examples/ssb [-sf 0.01]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	ms "morphstore"
)

func main() {
	sf := flag.Float64("sf", 0.01, "SSB scale factor (1.0 = 6M lineorder rows)")
	flag.Parse()

	fmt.Printf("generating SSB data at SF %g ...\n", *sf)
	data, err := ms.GenerateSSB(*sf, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d lineorder rows, %d customers, %d suppliers, %d parts, %d dates\n\n",
		data.Lineorder, data.Customers, data.Suppliers, data.Parts, data.Dates)

	fmt.Printf("%-6s %14s %14s %14s %12s %12s\n",
		"query", "uncompr [ms]", "compr [ms]", "speedup", "uncompr [MB]", "compr [MB]")

	// Both engines pin the worker budget to 1 so the printed per-operator
	// runtime comparison stays the sequential operator-at-a-time
	// measurement on any host.
	ctx := context.Background()
	engU := ms.NewEngine(data.DB, ms.WithStyle(ms.Vec512), ms.WithParallelism(1))

	var totU, totC float64
	for _, q := range ms.SSBQueries {
		plan, err := ms.BuildSSBPlan(q, data)
		if err != nil {
			log.Fatal(err)
		}

		// Uncompressed, vectorized.
		qU, err := engU.Prepare(plan)
		if err != nil {
			log.Fatal(err)
		}
		resU, err := qU.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}

		// Continuous compression: cost-model-selected formats for base
		// columns and all intermediates.
		assign, err := ms.CostBasedAssignment(plan, data.DB)
		if err != nil {
			log.Fatal(err)
		}
		encoded, err := data.DB.Encode(assign.Base)
		if err != nil {
			log.Fatal(err)
		}
		engC := ms.NewEngine(encoded, ms.WithStyle(ms.Vec512), ms.WithParallelism(1))
		qC, err := engC.Prepare(plan, ms.WithFormats(assign.Inter), ms.WithSpecialized(true))
		if err != nil {
			log.Fatal(err)
		}
		resC, err := qC.Execute(ctx)
		if err != nil {
			log.Fatal(err)
		}

		// Both must agree with the row-wise reference.
		want, err := ms.SSBReference(q, data)
		if err != nil {
			log.Fatal(err)
		}
		gotU, err := ms.ExtractSSBResult(q, resU)
		if err != nil {
			log.Fatal(err)
		}
		gotC, err := ms.ExtractSSBResult(q, resC)
		if err != nil {
			log.Fatal(err)
		}
		if !rowsEqual(gotU, want) || !rowsEqual(gotC, want) {
			log.Fatalf("query %s: engines disagree with reference", q)
		}

		u := float64(resU.Meas.Runtime.Microseconds()) / 1000
		c := float64(resC.Meas.Runtime.Microseconds()) / 1000
		totU += u
		totC += c
		fmt.Printf("%-6s %14.2f %14.2f %13.2fx %12.2f %12.2f\n",
			q, u, c, u/c,
			float64(resU.Meas.Footprint())/(1<<20),
			float64(resC.Meas.Footprint())/(1<<20))
	}
	fmt.Printf("\naverage runtime: uncompressed %.2f ms, compressed %.2f ms (%.2fx)\n",
		totU/13, totC/13, totU/totC)
}

func rowsEqual(a, b []ms.SSBRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sum != b[i].Sum {
			return false
		}
		for k := range a[i].Keys {
			if a[i].Keys[k] != b[i].Keys[k] {
				return false
			}
		}
	}
	return true
}
