// Quickstart: compress a column, compare formats, morph between them, and
// run compression-enabled operators — the smallest end-to-end tour of the
// MorphStore-Go public API.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ms "morphstore"
)

func main() {
	// A column of one million small integers with a few huge outliers:
	// the data shape where block-adaptive compression shines.
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1_000_000)
	for i := range vals {
		if i%5000 == 0 {
			vals[i] = 1 << 60
		} else {
			vals[i] = uint64(rng.Intn(1000))
		}
	}

	fmt.Println("== Compressing one column in every format ==")
	uncompressedBytes := 0
	for _, desc := range ms.AllFormats() {
		col, err := ms.Compress(vals, desc)
		if err != nil {
			log.Fatal(err)
		}
		if desc == ms.Uncompressed {
			uncompressedBytes = col.PhysicalBytes()
		}
		fmt.Printf("  %-12v %10d B  (%.1f%% of uncompressed)\n",
			desc, col.PhysicalBytes(),
			100*float64(col.PhysicalBytes())/float64(uncompressedBytes))
	}

	fmt.Println("\n== Asking the cost model which format to use ==")
	prof := ms.Analyze(vals)
	suggested, err := ms.SuggestFormat(prof, ms.Formats())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  data: n=%d, max %d bits, sorted=%v, %.1f avg run length\n",
		prof.N, prof.MaxBits, prof.Sorted, prof.AvgRunLength())
	fmt.Printf("  suggested format: %v\n", suggested)

	col, err := ms.Compress(vals, suggested)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Morphing between formats (no uncompressed detour) ==")
	asStatic, err := ms.Morph(col, ms.StaticBP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v (%d B)  ->  %v (%d B)\n",
		col.Desc(), col.PhysicalBytes(), asStatic.Desc(), asStatic.PhysicalBytes())

	fmt.Println("\n== Compression-enabled operators through the engine ==")
	// One engine owns the worker budget; every one-off operator call runs
	// under it. Select directly produces a *compressed* sorted position
	// list: positions are sorted, so DELTA+BP is the natural choice.
	ctx := context.Background()
	eng := ms.NewEngine(nil, ms.WithStyle(ms.Vec512))
	pos, err := eng.Select(ctx, col, ms.CmpLt, 100, ms.WithOutput(ms.DeltaBP))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  select(v < 100): %d matches, positions stored as %v in %d B\n",
		pos.N(), pos.Desc(), pos.PhysicalBytes())

	// Project gathers the matching values (random access needs StaticBP).
	vcol, err := eng.Project(ctx, asStatic, pos, ms.WithOutput(ms.DynBP))
	if err != nil {
		log.Fatal(err)
	}
	total, err := eng.Sum(ctx, vcol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sum(project(v, positions)) = %d\n", total)

	// The same pipeline fully uncompressed gives the same answer.
	ucol := ms.FromValues(vals)
	upos, err := eng.Select(ctx, ucol, ms.CmpLt, 100, ms.WithStyle(ms.Scalar))
	if err != nil {
		log.Fatal(err)
	}
	uvals, err := eng.Project(ctx, ucol, upos, ms.WithStyle(ms.Scalar))
	if err != nil {
		log.Fatal(err)
	}
	utotal, err := eng.Sum(ctx, uvals, ms.WithStyle(ms.Scalar))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  uncompressed pipeline agrees: %v\n", total == utotal)
}
