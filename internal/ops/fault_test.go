package ops

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// faultTestColumn is large enough to split into many morsels at par 4.
func faultTestColumn(t testing.TB) *columns.Column {
	t.Helper()
	vals := make([]uint64, 16*formats.MinMorsel)
	for i := range vals {
		vals[i] = uint64(i % 1000)
	}
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// assertBudgetIdle asserts every lease was closed and every worker slot
// released — the invariant each failure mode must restore.
func assertBudgetIdle(t *testing.T, b *Budget, mode string) {
	t.Helper()
	if n := b.Leases(); n != 0 {
		t.Fatalf("%s: %d leases leaked", mode, n)
	}
	if n := b.InUse(); n != 0 {
		t.Fatalf("%s: %d worker slots leaked", mode, n)
	}
}

// runSelect runs one budget-leased parallel select and returns its error.
func runSelect(ctx context.Context, b *Budget, col *columns.Column) error {
	lease := b.Lease(4)
	defer lease.Close()
	rt := RT(ctx, lease, 4)
	_, err := rt.Select(col, bitutil.CmpLt, 500, columns.DeltaBPDesc, vector.Scalar)
	return err
}

// TestRunPartsPanicIsolation injects a panic into the kernel body and checks
// it surfaces as a typed *qerr.QueryError with the morsel index, the budget
// returns to idle, and the same runtime produces correct results afterwards.
func TestRunPartsPanicIsolation(t *testing.T) {
	defer faultpoint.DisarmAll()
	col := faultTestColumn(t)
	b := NewBudget(4)

	faultpoint.KernelBody.Arm(func() error { panic("injected kernel panic") })
	err := runSelect(context.Background(), b, col)
	var qe *qerr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("panic did not surface as QueryError: %v", err)
	}
	if qe.Morsel < 0 {
		t.Fatalf("QueryError lost its morsel index: %+v", qe)
	}
	if qe.Panic != "injected kernel panic" {
		t.Fatalf("QueryError lost the panic value: %+v", qe)
	}
	if len(qe.Stack) == 0 {
		t.Fatal("QueryError lost the stack")
	}
	assertBudgetIdle(t, b, "kernel panic")

	// The runtime and budget must be fully usable after the failure.
	faultpoint.DisarmAll()
	if err := runSelect(context.Background(), b, col); err != nil {
		t.Fatalf("select after recovered panic: %v", err)
	}
	assertBudgetIdle(t, b, "after recovery")
}

// TestBudgetIdleAfterFailureModes drives a budget-leased parallel driver
// through every failure mode and asserts the budget is idle after each one.
func TestBudgetIdleAfterFailureModes(t *testing.T) {
	defer faultpoint.DisarmAll()
	col := faultTestColumn(t)
	injected := fmt.Errorf("injected: %w", formats.ErrCorrupt)

	modes := []struct {
		name string
		run  func(t *testing.T, b *Budget)
	}{
		{"success", func(t *testing.T, b *Budget) {
			if err := runSelect(context.Background(), b, col); err != nil {
				t.Fatal(err)
			}
		}},
		{"cancellation", func(t *testing.T, b *Budget) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := runSelect(ctx, b, col); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run: %v", err)
			}
		}},
		{"morsel claim error", func(t *testing.T, b *Budget) {
			faultpoint.MorselClaim.Arm(func() error { return injected })
			defer faultpoint.MorselClaim.Disarm()
			if err := runSelect(context.Background(), b, col); !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("morsel-claim error not typed: %v", err)
			}
		}},
		{"kernel error", func(t *testing.T, b *Budget) {
			faultpoint.KernelBody.Arm(func() error { return injected })
			defer faultpoint.KernelBody.Disarm()
			if err := runSelect(context.Background(), b, col); !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("kernel error not typed: %v", err)
			}
		}},
		{"kernel panic", func(t *testing.T, b *Budget) {
			faultpoint.KernelBody.Arm(func() error { panic(injected) })
			defer faultpoint.KernelBody.Disarm()
			err := runSelect(context.Background(), b, col)
			if !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("panic with corrupt error must match the sentinel: %v", err)
			}
		}},
		{"stitch seam error", func(t *testing.T, b *Budget) {
			faultpoint.StitchSeam.Arm(func() error { return injected })
			defer faultpoint.StitchSeam.Disarm()
			if err := runSelect(context.Background(), b, col); !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("stitch-seam error not typed: %v", err)
			}
		}},
		{"concat fixup error", func(t *testing.T, b *Budget) {
			faultpoint.ConcatFixup.Arm(func() error { return injected })
			defer faultpoint.ConcatFixup.Disarm()
			if err := runSelect(context.Background(), b, col); !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("concat-fixup error not typed: %v", err)
			}
		}},
	}
	for _, m := range modes {
		b := NewBudget(4)
		t.Run(m.name, func(t *testing.T) {
			m.run(t, b)
			assertBudgetIdle(t, b, m.name)
		})
	}
}

// TestBudgetRedivideFaultLeaksNoLease checks the fault point at the budget
// seam fires before the lease registers: a panicking Lease call must leave
// the budget empty, not holding a lease nobody can close.
func TestBudgetRedivideFaultLeaksNoLease(t *testing.T) {
	defer faultpoint.DisarmAll()
	b := NewBudget(4)
	faultpoint.BudgetRedivide.Arm(func() error { return errors.New("injected") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Lease did not escalate the injected error")
			}
		}()
		b.Lease(2)
	}()
	assertBudgetIdle(t, b, "budget-redivide panic")
	faultpoint.DisarmAll()
	l := b.Lease(2)
	l.Close()
	assertBudgetIdle(t, b, "after redivide recovery")
}

// TestGroupMergeFaultPanics checks the merge-phase fault point escalates to a
// panic (the grouping drivers have no error path there; the engine layer
// recovers it — see the core chaos test).
func TestGroupMergeFaultPanics(t *testing.T) {
	defer faultpoint.DisarmAll()
	col := faultTestColumn(t)
	faultpoint.GroupMerge.Arm(func() error { return errors.New("injected") })
	defer func() {
		if recover() == nil {
			t.Fatal("group merge did not escalate the injected error")
		}
	}()
	_, _, _ = ParGroupFirst(col, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar, 4)
}

// TestRunPartsNoGoroutineLeak runs many failing executions and checks the
// worker goroutines all exited.
func TestRunPartsNoGoroutineLeak(t *testing.T) {
	defer faultpoint.DisarmAll()
	col := faultTestColumn(t)
	b := NewBudget(4)
	before := runtime.NumGoroutine()
	faultpoint.KernelBody.Arm(func() error { panic("injected") })
	for i := 0; i < 50; i++ {
		_ = runSelect(context.Background(), b, col)
	}
	faultpoint.DisarmAll()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestRunPartsStopsSiblingsAfterFailure checks workers stop claiming morsels
// once one fails: with a fault firing on the first claim, the completed work
// should stay far below the partition count.
func TestRunPartsStopsSiblingsAfterFailure(t *testing.T) {
	defer faultpoint.DisarmAll()
	var fired bool
	faultpoint.MorselClaim.Arm(func() error {
		if !fired {
			fired = true
			return errors.New("injected first-claim failure")
		}
		return nil
	})
	ran := 0
	rt := FixedRT(1) // one worker: deterministic claim order
	err := rt.runTasks(100, func(_, _ int) error { ran++; return nil })
	if err == nil {
		t.Fatal("injected failure did not surface")
	}
	if ran != 0 {
		t.Fatalf("workers kept claiming after failure: %d tasks ran", ran)
	}
}
