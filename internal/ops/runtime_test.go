package ops

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

func limits(ls ...*Lease) []int {
	out := make([]int, len(ls))
	for i, l := range ls {
		out[i] = l.Limit()
	}
	return out
}

func TestBudgetDivisionDeterministic(t *testing.T) {
	b := NewBudget(8)
	if b.Total() != 8 {
		t.Fatalf("total = %d, want 8", b.Total())
	}
	l1 := b.Lease(8)
	if got := limits(l1); got[0] != 8 {
		t.Fatalf("lone lease limit = %v, want [8]", got)
	}
	l2 := b.Lease(8)
	if got := limits(l1, l2); got[0] != 4 || got[1] != 4 {
		t.Fatalf("two leases = %v, want [4 4]", got)
	}
	l3 := b.Lease(8)
	// Ceil division serves the earliest lease first: 3+3+2.
	if got := limits(l1, l2, l3); got[0]+got[1]+got[2] != 8 || got[0] < got[2] {
		t.Fatalf("three leases = %v, want a deterministic 3/3/2 split", got)
	}
	l2.Close()
	if got := limits(l1, l3); got[0] != 4 || got[1] != 4 {
		t.Fatalf("after close = %v, want [4 4]", got)
	}
	l1.Close()
	if got := limits(l3); got[0] != 8 {
		t.Fatalf("survivor = %v, want [8]", got)
	}
	l3.Close()
}

// TestBudgetCappedLeases: a sequential operator (cap 1) must not strand its
// unusable share — the surplus flows to the parallel siblings.
func TestBudgetCappedLeases(t *testing.T) {
	b := NewBudget(8)
	seq := b.Lease(1)
	par := b.Lease(8)
	if got := limits(seq, par); got[0] != 1 || got[1] != 7 {
		t.Fatalf("capped division = %v, want [1 7]", got)
	}
	seq.Close()
	par.Close()
}

// TestBudgetShrink: an operator that falls back to sequential execution
// shrinks its lease to one worker and the freed share flows to siblings
// immediately (the seqFallback path of the parallel drivers).
func TestBudgetShrink(t *testing.T) {
	b := NewBudget(8)
	fallback := b.Lease(8)
	par := b.Lease(8)
	if got := limits(fallback, par); got[0] != 4 || got[1] != 4 {
		t.Fatalf("pre-shrink = %v, want [4 4]", got)
	}
	fallback.Shrink(1)
	if got := limits(fallback, par); got[0] != 1 || got[1] != 7 {
		t.Fatalf("post-shrink = %v, want [1 7]", got)
	}
	fallback.Shrink(5) // shrink never raises the cap
	if got := limits(fallback, par); got[0] != 1 || got[1] != 7 {
		t.Fatalf("raise attempt = %v, want [1 7]", got)
	}
	fallback.Close()
	par.Close()
}

// TestBudgetMinimumOne: more operators than slots still make progress.
func TestBudgetMinimumOne(t *testing.T) {
	b := NewBudget(2)
	var ls []*Lease
	for i := 0; i < 5; i++ {
		ls = append(ls, b.Lease(4))
	}
	for i, l := range ls {
		if l.Limit() < 1 {
			t.Fatalf("lease %d limit %d, want >= 1", i, l.Limit())
		}
	}
	for _, l := range ls {
		l.Close()
	}
}

// TestBudgetRedividesOnClose is the regression test for the documented
// overshoot wart: a worker blocked on its operator's exhausted share must be
// released the moment a sibling operator finishes, instead of the survivor
// keeping its initial share.
func TestBudgetRedividesOnClose(t *testing.T) {
	b := NewBudget(2)
	survivor := b.Lease(2)
	sibling := b.Lease(2)
	if survivor.Limit() != 1 {
		t.Fatalf("survivor limit = %d, want 1 while sibling runs", survivor.Limit())
	}
	if !survivor.acquire(context.Background()) {
		t.Fatal("first acquire should not block")
	}
	second := make(chan struct{})
	go func() {
		survivor.acquire(context.Background()) // blocks: limit 1, inUse 1
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("second acquire succeeded before the sibling finished")
	case <-time.After(20 * time.Millisecond):
	}
	sibling.Close() // survivor's share grows to 2 and wakes the waiter
	select {
	case <-second:
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire not woken by the sibling's release")
	}
	survivor.release()
	survivor.release()
	survivor.Close()
}

// TestBudgetAcquireCancelled: a waiter blocked on an exhausted lease returns
// false once the context is cancelled and a slot release wakes it.
func TestBudgetAcquireCancelled(t *testing.T) {
	b := NewBudget(1)
	l := b.Lease(2)
	if !l.acquire(context.Background()) {
		t.Fatal("first acquire should succeed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan bool, 1)
	go func() { got <- l.acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	l.release() // wakes the waiter, which must observe the cancellation
	select {
	case ok := <-got:
		if ok {
			t.Fatal("acquire returned true after cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	l.Close()
}

// TestRunPartsCancellation: cancelling mid-run stops workers within one
// morsel and surfaces ctx.Err().
func TestRunPartsCancellation(t *testing.T) {
	parts := make([]formats.Partition, 64)
	for i := range parts {
		parts[i] = formats.Partition{Start: i * 512, Count: 512}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	err := RT(ctx, nil, 2).runParts(parts, func(_, _ int, _ formats.Partition) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= int64(len(parts)) {
		t.Fatalf("all %d morsels ran despite cancellation", n)
	}
}

// TestRunPartsCompletedBeforeCancel: when every partition completes, the run
// succeeds even if the context is cancelled immediately afterwards.
func TestRunPartsComplete(t *testing.T) {
	parts := make([]formats.Partition, 8)
	for i := range parts {
		parts[i] = formats.Partition{Start: i, Count: 1}
	}
	var ran atomic.Int64
	if err := RT(context.Background(), nil, 4).runParts(parts, func(_, _ int, _ formats.Partition) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != int64(len(parts)) {
		t.Fatalf("ran %d of %d partitions", ran.Load(), len(parts))
	}
}

// TestRuntimeOpsUnderBudget: the runtime operator methods produce columns
// byte-identical to the legacy positional drivers while gated by a shared
// budget lease.
func TestRuntimeOpsUnderBudget(t *testing.T) {
	n := 6 * 512
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 97)
	}
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParSelect(col, bitutil.CmpLt, 40, columns.DeltaBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(3)
	lease := b.Lease(3)
	defer lease.Close()
	got, err := RT(context.Background(), lease, 3).Select(col, bitutil.CmpLt, 40, columns.DeltaBPDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || len(got.Words()) != len(want.Words()) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.N(), len(got.Words()), want.N(), len(want.Words()))
	}
	for i, w := range want.Words() {
		if got.Words()[i] != w {
			t.Fatalf("word %d differs", i)
		}
	}
}

// TestRuntimeCancelledSelect: a runtime operator on a cancelled context
// fails with the context error instead of producing a partial column.
func TestRuntimeCancelledSelect(t *testing.T) {
	n := 6 * 512
	vals := make([]uint64, n)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RT(ctx, nil, 2).Select(col, bitutil.CmpEq, 0, columns.DeltaBPDesc, vector.Scalar)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
