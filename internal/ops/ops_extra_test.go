package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// TestPositionWidthHint verifies that selections with an auto-width static
// BP output derive the width from the input length (positions < n) and that
// the resulting column still decodes correctly.
func TestPositionWidthHint(t *testing.T) {
	vals := genVals(100000, 10, 41)
	in := mkCol(t, vals, columns.UncomprDesc)
	got, err := Select(in, bitutil.CmpLt, 5, columns.StaticBPDesc(0), vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc().Kind != columns.StaticBP {
		t.Fatalf("kind = %v", got.Desc())
	}
	// 100000 positions need 17 bits.
	if got.Desc().Bits != 17 {
		t.Fatalf("bits = %d, want 17", got.Desc().Bits)
	}
	if !equalU64(decode(t, got), refSelect(vals, bitutil.CmpLt, 5)) {
		t.Fatal("wrong positions")
	}
}

// TestPositionWidthHintJoin checks both join outputs get their own domain.
func TestPositionWidthHintJoin(t *testing.T) {
	probe := genVals(70000, 50, 43)
	build := make([]uint64, 50)
	for i := range build {
		build[i] = uint64(i)
	}
	pc := mkCol(t, probe, columns.UncomprDesc)
	bc := mkCol(t, build, columns.UncomprDesc)
	pp, bp, err := JoinN1(pc, bc, columns.StaticBPDesc(0), columns.StaticBPDesc(0), vector.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Desc().Bits != 17 { // probe positions < 70000
		t.Errorf("probe bits = %d, want 17", pp.Desc().Bits)
	}
	if bp.Desc().Bits != 6 { // build positions < 50
		t.Errorf("build bits = %d, want 6", bp.Desc().Bits)
	}
}

// Property: Select agrees across every (style, input format) pair for
// arbitrary data and operators.
func TestSelectEquivalenceProperty(t *testing.T) {
	descs := formats.AllDescs()
	f := func(raw []uint64, pred uint64, opRaw, descRaw uint8) bool {
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = v % 1000
		}
		pred %= 1000
		op := allOps[int(opRaw)%len(allOps)]
		desc := descs[int(descRaw)%len(descs)]
		in, err := formats.Compress(vals, desc)
		if err != nil {
			return false
		}
		want := refSelect(vals, op, pred)
		for _, style := range vector.Styles {
			got, err := Select(in, op, pred, columns.DeltaBPDesc, style)
			if err != nil {
				return false
			}
			dec, err := formats.Decompress(got)
			if err != nil {
				return false
			}
			if !equalU64(dec, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect(a, b) == Intersect(b, a), is sorted, and contains
// exactly the common positions.
func TestIntersectProperty(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := sortedUnique(rawA)
		b := sortedUnique(rawB)
		ca := mkColQuick(a)
		cb := mkColQuick(b)
		ab, err := IntersectSorted(ca, cb, columns.DeltaBPDesc)
		if err != nil {
			return false
		}
		ba, err := IntersectSorted(cb, ca, columns.DynBPDesc)
		if err != nil {
			return false
		}
		x, err := formats.Decompress(ab)
		if err != nil {
			return false
		}
		y, err := formats.Decompress(ba)
		if err != nil {
			return false
		}
		if !equalU64(x, y) {
			return false
		}
		inB := map[uint64]bool{}
		for _, v := range b {
			inB[v] = true
		}
		var want []uint64
		for _, v := range a {
			if inB[v] {
				want = append(want, v)
			}
		}
		return equalU64(x, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is the sorted union without duplicates.
func TestMergeProperty(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := sortedUnique(rawA)
		b := sortedUnique(rawB)
		m, err := MergeSorted(mkColQuick(a), mkColQuick(b), columns.UncomprDesc)
		if err != nil {
			return false
		}
		got, _ := m.Values()
		seen := map[uint64]bool{}
		for _, v := range append(append([]uint64{}, a...), b...) {
			seen[v] = true
		}
		if len(got) != len(seen) {
			return false
		}
		for i, v := range got {
			if !seen[v] {
				return false
			}
			if i > 0 && got[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: group ids are dense, extents point at first occurrences, and
// grouped sums add up to the whole-column sum.
func TestGroupSumProperty(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []uint16) bool {
		n := len(rawKeys)
		if len(rawVals) < n {
			n = len(rawVals)
		}
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		var total uint64
		for i := 0; i < n; i++ {
			keys[i] = uint64(rawKeys[i] % 17)
			vals[i] = uint64(rawVals[i])
			total += vals[i]
		}
		gids, extents, err := GroupFirst(mkColQuick(keys), columns.DynBPDesc, columns.UncomprDesc, vector.Scalar)
		if err != nil {
			return false
		}
		sums, err := SumGrouped(gids, mkColQuick(vals), extents.N(), vector.Scalar)
		if err != nil {
			return false
		}
		sv, _ := sums.Values()
		var got uint64
		for _, s := range sv {
			got += s
		}
		if got != total {
			return false
		}
		// Extents must be positions of first occurrences in ascending order
		// of group id; decoding keys at extents must yield distinct values.
		ev, err := formats.Decompress(extents)
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, e := range ev {
			k := keys[e]
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: project(identity positions) is the identity.
func TestProjectIdentityProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		pos := make([]uint64, len(raw))
		for i := range pos {
			pos[i] = uint64(i)
		}
		data := mkColQuick(raw)
		out, err := Project(data, mkColQuick(pos), columns.UncomprDesc, vector.Vec512)
		if err != nil {
			return false
		}
		got, _ := out.Values()
		return equalU64(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReadersAfterPartialConsumption exercises operators over inputs whose
// readers return short blocks (remainder boundaries).
func TestRemainderBoundaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{511, 512, 513, 1023, 1025, 2047, 2049} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(100))
		}
		for _, desc := range []columns.FormatDesc{columns.DynBPDesc, columns.DeltaBPDesc, columns.ForBPDesc} {
			in := mkCol(t, vals, desc)
			got, err := Select(in, bitutil.CmpLt, 50, columns.DynBPDesc, vector.Vec512)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, desc, err)
			}
			if !equalU64(decode(t, got), refSelect(vals, bitutil.CmpLt, 50)) {
				t.Fatalf("n=%d %v: wrong result at remainder boundary", n, desc)
			}
			s, _, err := SumWhole(in, vector.Vec512)
			if err != nil {
				t.Fatal(err)
			}
			var want uint64
			for _, v := range vals {
				want += v
			}
			if s != want {
				t.Fatalf("n=%d %v: sum %d != %d", n, desc, s, want)
			}
		}
	}
}

func sortedUnique(raw []uint16) []uint64 {
	seen := map[uint64]bool{}
	for _, v := range raw {
		seen[uint64(v)] = true
	}
	out := make([]uint64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func mkColQuick(vals []uint64) *columns.Column {
	c := make([]uint64, len(vals))
	copy(c, vals)
	return columns.FromValues(c)
}
