package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// TestSelectDirectMatchesGeneric verifies the SWAR select on static BP
// agrees with the generic operator for every comparison and SWAR width.
func TestSelectDirectMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bits := range []uint{1, 2, 4, 8, 16, 32} {
		n := 3000
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & bitutil.Mask(bits)
		}
		in := mkCol(t, vals, columns.StaticBPDesc(bits))
		if !CanSelectDirect(in) {
			t.Fatalf("bits=%d should support direct select", bits)
		}
		for _, op := range allOps {
			for _, val := range []uint64{0, 1, bitutil.Mask(bits) / 2, bitutil.Mask(bits), bitutil.Mask(bits) + 1, ^uint64(0)} {
				got, err := SelectStaticBPDirect(in, op, val, columns.DeltaBPDesc)
				if err != nil {
					t.Fatalf("bits=%d %v val=%d: %v", bits, op, val, err)
				}
				want, err := Select(in, op, val, columns.DeltaBPDesc, vector.Scalar)
				if err != nil {
					t.Fatal(err)
				}
				if !equalU64(decode(t, got), decode(t, want)) {
					t.Fatalf("bits=%d %v val=%d: direct and generic disagree", bits, op, val)
				}
			}
		}
	}
}

func TestSelectDirectAllZeroColumn(t *testing.T) {
	vals := make([]uint64, 100)
	in := mkCol(t, vals, columns.StaticBPDesc(0))
	if in.Desc().Bits != 0 {
		t.Fatalf("all-zero column should pack at width 0, got %d", in.Desc().Bits)
	}
	got, err := SelectStaticBPDirect(in, bitutil.CmpEq, 0, columns.UncomprDesc)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 100 {
		t.Fatalf("all positions should match, got %d", got.N())
	}
	none, err := SelectStaticBPDirect(in, bitutil.CmpGt, 0, columns.UncomprDesc)
	if err != nil {
		t.Fatal(err)
	}
	if none.N() != 0 {
		t.Fatalf("no position should match, got %d", none.N())
	}
}

func TestSelectBetweenDirectMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, bits := range []uint{2, 8, 16} {
		vals := make([]uint64, 2500)
		for i := range vals {
			vals[i] = rng.Uint64() & bitutil.Mask(bits)
		}
		in := mkCol(t, vals, columns.StaticBPDesc(bits))
		bounds := [][2]uint64{
			{0, 0}, {1, 3}, {0, bitutil.Mask(bits)},
			{bitutil.Mask(bits), ^uint64(0)}, {bitutil.Mask(bits) + 1, ^uint64(0)},
		}
		for _, b := range bounds {
			got, err := SelectBetweenStaticBPDirect(in, b[0], b[1], columns.DeltaBPDesc)
			if err != nil {
				t.Fatalf("bits=%d [%d,%d]: %v", bits, b[0], b[1], err)
			}
			want, err := SelectBetween(in, b[0], b[1], columns.DeltaBPDesc, vector.Scalar)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU64(decode(t, got), decode(t, want)) {
				t.Fatalf("bits=%d [%d,%d]: disagree", bits, b[0], b[1])
			}
		}
	}
}

func TestSumDirectVariants(t *testing.T) {
	vals := genVals(9000, 1<<14, 19)
	var want uint64
	for _, v := range vals {
		want += v
	}

	sbp := mkCol(t, vals, columns.StaticBPDesc(0))
	if got, err := SumStaticBPDirect(sbp); err != nil || got != want {
		t.Errorf("static BP direct sum = %d (%v), want %d", got, err, want)
	}

	dbp := mkCol(t, vals, columns.DynBPDesc)
	if got, err := SumDynBPDirect(dbp); err != nil || got != want {
		t.Errorf("dyn BP direct sum = %d (%v), want %d", got, err, want)
	}

	rle := mkCol(t, vals, columns.RLEDesc)
	if got, err := SumRLEDirect(rle); err != nil || got != want {
		t.Errorf("RLE direct sum = %d (%v), want %d", got, err, want)
	}

	// Wrong-format dispatch must fail.
	if _, err := SumStaticBPDirect(dbp); err == nil {
		t.Error("static BP direct sum on DynBP must fail")
	}
	if _, err := SumDynBPDirect(sbp); err == nil {
		t.Error("dyn BP direct sum on static BP must fail")
	}
	if _, err := SumRLEDirect(sbp); err == nil {
		t.Error("RLE direct sum on static BP must fail")
	}
}

func TestSelectRLEDirect(t *testing.T) {
	vals := []uint64{5, 5, 5, 2, 2, 9, 5, 5}
	in := mkCol(t, vals, columns.RLEDesc)
	got, err := SelectRLEDirect(in, bitutil.CmpEq, 5, columns.UncomprDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64(decode(t, got), []uint64{0, 1, 2, 6, 7}) {
		t.Fatalf("positions = %v", decode(t, got))
	}
}

func TestAutoDispatch(t *testing.T) {
	vals := genVals(5000, 256, 23)
	var want uint64
	for _, v := range vals {
		want += v
	}
	for _, desc := range formats.AllDescs() {
		c := mkCol(t, vals, desc)
		for _, specialized := range []bool{false, true} {
			got, _, err := SumAuto(c, vector.Vec512, specialized)
			if err != nil {
				t.Fatalf("%v specialized=%v: %v", desc, specialized, err)
			}
			if got != want {
				t.Fatalf("%v specialized=%v: sum = %d, want %d", desc, specialized, got, want)
			}
			sel, err := SelectAuto(c, bitutil.CmpLt, 100, columns.DeltaBPDesc, vector.Vec512, specialized)
			if err != nil {
				t.Fatalf("%v specialized=%v: %v", desc, specialized, err)
			}
			if !equalU64(decode(t, sel), refSelect(vals, bitutil.CmpLt, 100)) {
				t.Fatalf("%v specialized=%v: wrong select", desc, specialized)
			}
			bet, err := SelectBetweenAuto(c, 10, 90, columns.DeltaBPDesc, vector.Vec512, specialized)
			if err != nil {
				t.Fatalf("%v specialized=%v: %v", desc, specialized, err)
			}
			var wantBet []uint64
			for i, v := range vals {
				if v >= 10 && v <= 90 {
					wantBet = append(wantBet, uint64(i))
				}
			}
			if !equalU64(decode(t, bet), wantBet) {
				t.Fatalf("%v specialized=%v: wrong between", desc, specialized)
			}
		}
	}
}

// Property: direct SWAR select equals scalar reference on arbitrary widths
// and predicates.
func TestSelectDirectProperty(t *testing.T) {
	f := func(raw []uint64, predRaw uint64, opRaw uint8, bitsIdx uint8) bool {
		widths := []uint{1, 2, 4, 8, 16, 32}
		bits := widths[int(bitsIdx)%len(widths)]
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = v & bitutil.Mask(bits)
		}
		op := allOps[int(opRaw)%len(allOps)]
		pred := predRaw & bitutil.Mask(bits+1) // sometimes out of field range
		in, err := formats.Compress(vals, columns.StaticBPDesc(bits))
		if err != nil {
			return false
		}
		got, err := SelectStaticBPDirect(in, op, pred, columns.UncomprDesc)
		if err != nil {
			return false
		}
		g, err := formats.Decompress(got)
		if err != nil {
			return false
		}
		return equalU64(g, refSelect(vals, op, pred))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestU64Map(t *testing.T) {
	m := newU64Map(4)
	for i := uint64(0); i < 1000; i++ {
		m.put(i*7, i)
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := m.get(i * 7)
		if !ok || v != i {
			t.Fatalf("get(%d) = %d,%v", i*7, v, ok)
		}
	}
	if _, ok := m.get(3); ok {
		t.Error("missing key found")
	}
	// Zero key works.
	m.put(0, 42)
	if v, ok := m.get(0); !ok || v != 42 {
		t.Error("zero key")
	}
	// Overwrite.
	m.put(7, 99)
	if v, _ := m.get(7); v != 99 {
		t.Error("overwrite failed")
	}
	// getOrPut.
	if v, ins := m.getOrPut(7, 1); ins || v != 99 {
		t.Error("getOrPut existing")
	}
	if v, ins := m.getOrPut(123456789, 5); !ins || v != 5 {
		t.Error("getOrPut new")
	}
}

func TestPairMap(t *testing.T) {
	m := newPairMap(4)
	n := uint64(0)
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 20; b++ {
			if v, ins := m.getOrPut(a, b, n); !ins || v != n {
				t.Fatalf("insert (%d,%d)", a, b)
			}
			n++
		}
	}
	n = 0
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 20; b++ {
			if v, ins := m.getOrPut(a, b, 9999); ins || v != n {
				t.Fatalf("lookup (%d,%d) = %d, want %d", a, b, v, n)
			}
			n++
		}
	}
}
