package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// Project gathers data[pos[i]] for every position in pos, producing a column
// of the same length as pos in the requested output format. The positions
// are read sequentially (they are a selection result); the data column is
// read with random access and must therefore be uncompressed or static BP
// (§4.2) — the engine inserts an on-the-fly morph otherwise.
func Project(data, pos *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(data, pos); err != nil {
		return nil, err
	}
	ra, err := formats.RandomAccess(data)
	if err != nil {
		return nil, fmt.Errorf("ops: project: %w", err)
	}
	r, err := formats.NewReader(pos)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(out, pos.N())
	if err != nil {
		return nil, err
	}

	stage := make([]uint64, blockBuf)

	// Vec512 gather fast path over an uncompressed data column.
	vals, direct := data.Values()
	useVecGather := direct && style == vector.Vec512

	buf := make([]uint64, blockBuf)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("ops: project: %w", err)
		}
		if k == 0 {
			break
		}
		if err := checkPositions(buf[:k], data.N()); err != nil {
			return nil, err
		}
		if useVecGather {
			gatherKernelVec(vals, buf[:k], stage)
		} else {
			ra.Gather(stage[:k], buf[:k])
		}
		if err := w.Write(stage[:k]); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// checkPositions validates that all positions address the data column.
func checkPositions(pos []uint64, n int) error {
	var acc uint64
	for _, p := range pos {
		acc |= p
	}
	if acc >= uint64(n) {
		for _, p := range pos {
			if p >= uint64(n) {
				return fmt.Errorf("ops: project: position %d out of range [0,%d)", p, n)
			}
		}
	}
	return nil
}

// gatherKernelVec gathers eight positions per step.
func gatherKernelVec(vals []uint64, pos []uint64, stage []uint64) {
	i := 0
	for ; i+vector.Lanes <= len(pos); i += vector.Lanes {
		idx := vector.Load(pos[i:])
		vector.Gather(vals, idx).Store(stage[i:])
	}
	for ; i < len(pos); i++ {
		stage[i] = vals[pos[i]]
	}
}
