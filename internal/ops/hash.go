package ops

import "math/bits"

// u64Map is a minimal open-addressing hash map from uint64 keys to uint64
// values, tuned for the join/group operators: linear probing, power-of-two
// capacity, multiply-shift hashing. The zero key is handled via an explicit
// occupancy slice, avoiding sentinel restrictions on the key domain.
type u64Map struct {
	keys  []uint64
	vals  []uint64
	used  []bool
	mask  uint64
	shift uint
	size  int
}

const hashMul = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

// newU64Map creates a map sized for about n entries.
func newU64Map(n int) *u64Map {
	cap := 16
	for cap < n*2 {
		cap <<= 1
	}
	return &u64Map{
		keys:  make([]uint64, cap),
		vals:  make([]uint64, cap),
		used:  make([]bool, cap),
		mask:  uint64(cap - 1),
		shift: 64 - uint(bits.TrailingZeros64(uint64(cap))),
	}
}

func (m *u64Map) slot(k uint64) uint64 {
	return (k * hashMul) >> m.shift
}

// put inserts or overwrites the value for key k.
func (m *u64Map) put(k, v uint64) {
	if m.size*2 >= len(m.keys) {
		m.grow()
	}
	i := m.slot(k)
	for m.used[i] {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i], m.used[i] = k, v, true
	m.size++
}

// getOrPut returns the existing value for k, or inserts def and returns it
// with inserted=true.
func (m *u64Map) getOrPut(k, def uint64) (v uint64, inserted bool) {
	if m.size*2 >= len(m.keys) {
		m.grow()
	}
	i := m.slot(k)
	for m.used[i] {
		if m.keys[i] == k {
			return m.vals[i], false
		}
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i], m.used[i] = k, def, true
	m.size++
	return def, true
}

// get looks up k.
func (m *u64Map) get(k uint64) (uint64, bool) {
	i := m.slot(k)
	for m.used[i] {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

func (m *u64Map) grow() {
	old := *m
	cap := len(old.keys) * 2
	m.keys = make([]uint64, cap)
	m.vals = make([]uint64, cap)
	m.used = make([]bool, cap)
	m.mask = uint64(cap - 1)
	m.shift = 64 - uint(bits.TrailingZeros64(uint64(cap)))
	m.size = 0
	for i, u := range old.used {
		if u {
			m.put(old.keys[i], old.vals[i])
		}
	}
}

// pairMap maps a pair of uint64 keys to a uint64 value; it backs the
// iterative group-by refinement (group id, next key) -> new group id.
type pairMap struct {
	k1, k2 []uint64
	vals   []uint64
	used   []bool
	mask   uint64
	size   int
}

func newPairMap(n int) *pairMap {
	cap := 16
	for cap < n*2 {
		cap <<= 1
	}
	return &pairMap{
		k1:   make([]uint64, cap),
		k2:   make([]uint64, cap),
		vals: make([]uint64, cap),
		used: make([]bool, cap),
		mask: uint64(cap - 1),
	}
}

func pairHash(a, b uint64) uint64 {
	h := a*hashMul ^ b
	h *= hashMul
	return h
}

func (m *pairMap) getOrPut(a, b, def uint64) (v uint64, inserted bool) {
	return m.getOrPutMixed(a*hashMul, a, b, def)
}

// getOrPutMixed is getOrPut with the first key's hash contribution
// (a*hashMul) precomputed by the caller. The grouping loops process runs of
// equal first keys, so hoisting the multiply out of the per-row call is a
// small but measurable win; pairHash(a, b) == (mixA ^ b) * hashMul keeps the
// slots identical to getOrPut's.
func (m *pairMap) getOrPutMixed(mixA, a, b, def uint64) (v uint64, inserted bool) {
	if m.size*2 >= len(m.k1) {
		m.grow()
	}
	i := ((mixA ^ b) * hashMul) & m.mask
	for m.used[i] {
		if m.k1[i] == a && m.k2[i] == b {
			return m.vals[i], false
		}
		i = (i + 1) & m.mask
	}
	m.k1[i], m.k2[i], m.vals[i], m.used[i] = a, b, def, true
	m.size++
	return def, true
}

func (m *pairMap) grow() {
	old := *m
	cap := len(old.k1) * 2
	m.k1 = make([]uint64, cap)
	m.k2 = make([]uint64, cap)
	m.vals = make([]uint64, cap)
	m.used = make([]bool, cap)
	m.mask = uint64(cap - 1)
	m.size = 0
	for i, u := range old.used {
		if u {
			// re-insert
			j := pairHash(old.k1[i], old.k2[i]) & m.mask
			for m.used[j] {
				j = (j + 1) & m.mask
			}
			m.k1[j], m.k2[j], m.vals[j], m.used[j] = old.k1[i], old.k2[i], old.vals[i], true
			m.size++
		}
	}
}
