package ops

import (
	"context"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/vector"
)

// TestLeaseObserved: the per-lease observer fires on the initial grant and on
// every re-division that changes the limit — and only on changes.
func TestLeaseObserved(t *testing.T) {
	b := NewBudget(8)
	var history []int
	l1 := b.LeaseObserved(8, func(limit int) { history = append(history, limit) })
	if len(history) != 1 || history[0] != 8 {
		t.Fatalf("after grant, history = %v, want [8]", history)
	}
	l2 := b.Lease(8) // halves l1's share: observer fires with 4
	if len(history) != 2 || history[1] != 4 {
		t.Fatalf("after sibling grant, history = %v, want [8 4]", history)
	}
	l2.Shrink(1) // frees the surplus: observer fires with 7
	if len(history) != 3 || history[2] != 7 {
		t.Fatalf("after sibling shrink, history = %v, want [8 4 7]", history)
	}
	l2.Close() // lone lease again: observer fires with 8
	if len(history) != 4 || history[3] != 8 {
		t.Fatalf("after sibling close, history = %v, want [8 4 7 8]", history)
	}
	l1.Close() // closing the observed lease itself does not fire the observer
	if len(history) != 4 {
		t.Fatalf("close of the observed lease fired its observer: %v", history)
	}
}

// TestBudgetTelemetry: the telemetry sink receives one typed event per lease
// grant, effective shrink, and release; a no-op Shrink emits nothing; nil
// detaches the sink.
func TestBudgetTelemetry(t *testing.T) {
	b := NewBudget(4)
	var events []BudgetEvent
	b.SetTelemetry(func(ev BudgetEvent) { events = append(events, ev) })

	l := b.Lease(4)
	l.Shrink(2)
	l.Shrink(3) // not a shrink (3 > current cap 2): no event
	l.Close()

	want := []struct {
		kind   BudgetEventKind
		cap    int
		limit  int
		leases int
	}{
		{BudgetGrant, 4, 4, 1},
		{BudgetShrink, 2, 2, 1},
		{BudgetRelease, 0, 0, 0},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(want))
	}
	for i, w := range want {
		ev := events[i]
		if ev.Kind != w.kind || ev.Cap != w.cap || ev.Limit != w.limit || ev.Leases != w.leases {
			t.Fatalf("event %d = %+v, want kind=%v cap=%d limit=%d leases=%d",
				i, ev, w.kind, w.cap, w.limit, w.leases)
		}
		if ev.Lease != events[0].Lease {
			t.Fatalf("event %d carries lease id %d, want %d", i, ev.Lease, events[0].Lease)
		}
	}

	b.SetTelemetry(nil)
	b.Lease(2).Close()
	if len(events) != len(want) {
		t.Fatalf("detached sink still received events: %+v", events[len(want):])
	}
}

// TestBudgetEventKindString covers the telemetry kind names.
func TestBudgetEventKindString(t *testing.T) {
	for kind, want := range map[BudgetEventKind]string{
		BudgetGrant:         "grant",
		BudgetShrink:        "shrink",
		BudgetRelease:       "release",
		BudgetEventKind(99): "unknown",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("BudgetEventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

// TestRunPartsRecordsShards: with a collector attached, runParts books every
// claimed morsel with a positive kernel timing into the worker's shard.
func TestRunPartsRecordsShards(t *testing.T) {
	c := metrics.NewCollector(1, nil)
	c.Define(0, "v", "select", nil)
	nc := c.Node(0)
	nc.Begin(0)

	parts := make([]formats.Partition, 16)
	for i := range parts {
		parts[i] = formats.Partition{Start: i * 512, Count: 512}
	}
	rt := RT(context.Background(), nil, 4).WithCollector(nc)
	if err := rt.runParts(parts, func(_, _ int, _ formats.Partition) error { return nil }); err != nil {
		t.Fatal(err)
	}
	nc.Finish(0, nil, nil)

	ns := c.Finish(nil).Nodes[0]
	if ns.Morsels != int64(len(parts)) {
		t.Fatalf("recorded %d morsels, want %d", ns.Morsels, len(parts))
	}
	if ns.Kernel <= 0 {
		t.Fatalf("kernel time %v not positive", ns.Kernel)
	}
	if ns.Workers < 1 || ns.Workers > 4 {
		t.Fatalf("workers = %d, want within [1,4]", ns.Workers)
	}
}

// TestSeqFallbackRecorded: a driver forced onto its sequential path (par=1)
// reports the fallback through the attached collector.
func TestSeqFallbackRecorded(t *testing.T) {
	vals := make([]uint64, 4*512)
	for i := range vals {
		vals[i] = uint64(i % 53)
	}
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	c := metrics.NewCollector(1, nil)
	c.Define(0, "v", "select", nil)
	nc := c.Node(0)
	nc.Begin(int64(col.N()))
	if _, err := RT(context.Background(), nil, 1).WithCollector(nc).
		Select(col, bitutil.CmpLt, 13, columns.DynBPDesc, vector.Scalar); err != nil {
		t.Fatal(err)
	}
	nc.Finish(0, nil, nil)
	ns := c.Finish(nil).Nodes[0]
	if !ns.SeqFallback {
		t.Fatal("sequential driver path did not record SeqFallback")
	}
	if ns.Morsels != 0 {
		t.Fatalf("sequential path recorded %d morsels, want 0", ns.Morsels)
	}
}

// TestCollectedSelectByteIdentical: an operator run with a collector attached
// produces a column byte-identical to the same run detached — collection is
// observation only.
func TestCollectedSelectByteIdentical(t *testing.T) {
	n := 8 * 512
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64((i * 31) % 211)
	}
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RT(context.Background(), nil, 4).
		Select(col, bitutil.CmpLt, 100, columns.DeltaBPDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	c := metrics.NewCollector(1, nil)
	c.Define(0, "v", "select", nil)
	nc := c.Node(0)
	nc.Begin(int64(col.N()))
	collected, err := RT(context.Background(), nil, 4).WithCollector(nc).
		Select(col, bitutil.CmpLt, 100, columns.DeltaBPDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	nc.Finish(int64(collected.N()), nil, nil)
	if collected.N() != plain.N() || len(collected.Words()) != len(plain.Words()) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			collected.N(), len(collected.Words()), plain.N(), len(plain.Words()))
	}
	for i, w := range plain.Words() {
		if collected.Words()[i] != w {
			t.Fatalf("word %d differs between collected and detached runs", i)
		}
	}
	if ns := c.Finish(nil).Nodes[0]; ns.Morsels == 0 {
		t.Fatal("parallel collected run recorded no morsels")
	}
}
