package ops

import (
	"math/rand"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

var allOps = []bitutil.CmpKind{bitutil.CmpEq, bitutil.CmpNe, bitutil.CmpLt, bitutil.CmpLe, bitutil.CmpGt, bitutil.CmpGe}

func mkCol(t *testing.T, vals []uint64, desc columns.FormatDesc) *columns.Column {
	t.Helper()
	c, err := formats.Compress(vals, desc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func decode(t *testing.T, c *columns.Column) []uint64 {
	t.Helper()
	v, err := formats.Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func refSelect(vals []uint64, op bitutil.CmpKind, val uint64) []uint64 {
	var out []uint64
	for i, v := range vals {
		if op.Eval(v, val) {
			out = append(out, uint64(i))
		}
	}
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func genVals(n int, mod uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % mod
	}
	return vals
}

// TestSelectAllFormatsStyles runs the select operator over every in/out
// format pair and both processing styles against a scalar reference —
// the correctness backbone of the Figure 5 experiment.
func TestSelectAllFormatsStyles(t *testing.T) {
	vals := genVals(3000, 50, 1)
	descs := formats.AllDescs()
	for _, inDesc := range descs {
		in := mkCol(t, vals, inDesc)
		for _, outDesc := range descs {
			for _, style := range vector.Styles {
				for _, op := range allOps {
					got, err := Select(in, op, 25, outDesc, style)
					if err != nil {
						t.Fatalf("%v->%v %v %v: %v", inDesc, outDesc, style, op, err)
					}
					if got.Desc().Kind != outDesc.Kind {
						t.Fatalf("%v->%v: output kind %v", inDesc, outDesc, got.Desc())
					}
					want := refSelect(vals, op, 25)
					if !equalU64(decode(t, got), want) {
						t.Fatalf("%v->%v %v %v: wrong positions", inDesc, outDesc, style, op)
					}
				}
			}
		}
	}
}

func TestSelectBetween(t *testing.T) {
	vals := genVals(5000, 100, 2)
	for _, inDesc := range formats.AllDescs() {
		in := mkCol(t, vals, inDesc)
		for _, style := range vector.Styles {
			got, err := SelectBetween(in, 10, 30, columns.DeltaBPDesc, style)
			if err != nil {
				t.Fatalf("%v %v: %v", inDesc, style, err)
			}
			var want []uint64
			for i, v := range vals {
				if v >= 10 && v <= 30 {
					want = append(want, uint64(i))
				}
			}
			if !equalU64(decode(t, got), want) {
				t.Fatalf("%v %v: wrong positions", inDesc, style)
			}
		}
	}
}

func TestSelectBetweenFullRange(t *testing.T) {
	vals := genVals(1000, 1<<63, 3)
	in := mkCol(t, vals, columns.UncomprDesc)
	got, err := SelectBetween(in, 0, ^uint64(0), columns.UncomprDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != len(vals) {
		t.Fatalf("full range should match everything: %d of %d", got.N(), len(vals))
	}
}

func TestProject(t *testing.T) {
	data := genVals(4000, 1<<40, 4)
	posVals := []uint64{0, 5, 5, 17, 3999, 2048, 1}
	for _, dataDesc := range formats.RandomAccessDescs() {
		d := mkCol(t, data, dataDesc)
		for _, posDesc := range formats.AllDescs() {
			p := mkCol(t, posVals, posDesc)
			for _, style := range vector.Styles {
				got, err := Project(d, p, columns.UncomprDesc, style)
				if err != nil {
					t.Fatalf("%v/%v %v: %v", dataDesc, posDesc, style, err)
				}
				want := make([]uint64, len(posVals))
				for i, ix := range posVals {
					want[i] = data[ix]
				}
				if !equalU64(decode(t, got), want) {
					t.Fatalf("%v/%v %v: wrong projection", dataDesc, posDesc, style)
				}
			}
		}
	}
}

func TestProjectRejectsNonRandomAccessData(t *testing.T) {
	data := mkCol(t, genVals(2000, 100, 5), columns.DynBPDesc)
	pos := mkCol(t, []uint64{1, 2}, columns.UncomprDesc)
	if _, err := Project(data, pos, columns.UncomprDesc, vector.Scalar); err == nil {
		t.Error("project on DynBP data must fail (random access unsupported)")
	}
}

func TestProjectRejectsOutOfRangePositions(t *testing.T) {
	data := mkCol(t, genVals(100, 100, 6), columns.UncomprDesc)
	pos := mkCol(t, []uint64{5, 200}, columns.UncomprDesc)
	if _, err := Project(data, pos, columns.UncomprDesc, vector.Scalar); err == nil {
		t.Error("out-of-range position must fail")
	}
}

func TestJoinN1(t *testing.T) {
	// Build side: unique keys 100..149. Probe: values 80..170.
	build := make([]uint64, 50)
	for i := range build {
		build[i] = uint64(100 + i)
	}
	probe := genVals(4000, 91, 7)
	for i := range probe {
		probe[i] += 80
	}
	for _, probeDesc := range formats.PaperDescs() {
		pc := mkCol(t, probe, probeDesc)
		bc := mkCol(t, build, columns.UncomprDesc)
		for _, style := range vector.Styles {
			pp, bp, err := JoinN1(pc, bc, columns.DeltaBPDesc, columns.DynBPDesc, style)
			if err != nil {
				t.Fatalf("%v %v: %v", probeDesc, style, err)
			}
			gotP, gotB := decode(t, pp), decode(t, bp)
			var wantP, wantB []uint64
			for i, v := range probe {
				if v >= 100 && v < 150 {
					wantP = append(wantP, uint64(i))
					wantB = append(wantB, v-100)
				}
			}
			if !equalU64(gotP, wantP) || !equalU64(gotB, wantB) {
				t.Fatalf("%v %v: wrong join result", probeDesc, style)
			}
		}
	}
}

func TestSemiJoin(t *testing.T) {
	build := []uint64{3, 9, 27}
	probe := genVals(3000, 30, 8)
	for _, probeDesc := range formats.PaperDescs() {
		pc := mkCol(t, probe, probeDesc)
		bc := mkCol(t, build, columns.StaticBPDesc(0))
		got, err := SemiJoin(pc, bc, columns.DeltaBPDesc, vector.Vec512)
		if err != nil {
			t.Fatalf("%v: %v", probeDesc, err)
		}
		var want []uint64
		for i, v := range probe {
			if v == 3 || v == 9 || v == 27 {
				want = append(want, uint64(i))
			}
		}
		if !equalU64(decode(t, got), want) {
			t.Fatalf("%v: wrong semijoin", probeDesc)
		}
	}
}

func TestGroupFirst(t *testing.T) {
	keys := []uint64{7, 3, 7, 7, 9, 3}
	for _, desc := range formats.PaperDescs() {
		kc := mkCol(t, keys, desc)
		gids, extents, err := GroupFirst(kc, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		if !equalU64(decode(t, gids), []uint64{0, 1, 0, 0, 2, 1}) {
			t.Fatalf("%v: gids = %v", desc, decode(t, gids))
		}
		if !equalU64(decode(t, extents), []uint64{0, 1, 4}) {
			t.Fatalf("%v: extents = %v", desc, decode(t, extents))
		}
	}
}

func TestGroupNext(t *testing.T) {
	// Rows: (a=1,b=1),(1,2),(2,1),(1,1),(2,1)
	a := []uint64{1, 1, 2, 1, 2}
	b := []uint64{1, 2, 1, 1, 1}
	ac := mkCol(t, a, columns.UncomprDesc)
	gids1, _, err := GroupFirst(ac, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	bc := mkCol(t, b, columns.StaticBPDesc(0))
	gids2, ext2, err := GroupNext(gids1, bc, columns.DynBPDesc, columns.UncomprDesc, vector.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64(decode(t, gids2), []uint64{0, 1, 2, 0, 2}) {
		t.Fatalf("gids2 = %v", decode(t, gids2))
	}
	if !equalU64(decode(t, ext2), []uint64{0, 1, 2}) {
		t.Fatalf("ext2 = %v", decode(t, ext2))
	}
}

func TestGroupNextLengthMismatch(t *testing.T) {
	a := mkCol(t, []uint64{1, 2}, columns.UncomprDesc)
	b := mkCol(t, []uint64{1, 2, 3}, columns.UncomprDesc)
	if _, _, err := GroupNext(a, b, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestSumWhole(t *testing.T) {
	vals := genVals(10000, 1000, 9)
	var want uint64
	for _, v := range vals {
		want += v
	}
	for _, desc := range formats.AllDescs() {
		c := mkCol(t, vals, desc)
		for _, style := range vector.Styles {
			got, col, err := SumWhole(c, style)
			if err != nil {
				t.Fatalf("%v %v: %v", desc, style, err)
			}
			if got != want {
				t.Fatalf("%v %v: sum = %d, want %d", desc, style, got, want)
			}
			if col.N() != 1 {
				t.Fatalf("%v: result column length %d", desc, col.N())
			}
		}
	}
}

func TestSumGrouped(t *testing.T) {
	gids := []uint64{0, 1, 0, 2, 1, 0}
	vals := []uint64{10, 20, 30, 40, 50, 60}
	for _, gDesc := range formats.PaperDescs() {
		for _, vDesc := range formats.PaperDescs() {
			gc := mkCol(t, gids, gDesc)
			vc := mkCol(t, vals, vDesc)
			got, err := SumGrouped(gc, vc, 3, vector.Scalar)
			if err != nil {
				t.Fatalf("%v/%v: %v", gDesc, vDesc, err)
			}
			if !equalU64(decode(t, got), []uint64{100, 70, 40}) {
				t.Fatalf("%v/%v: sums = %v", gDesc, vDesc, decode(t, got))
			}
		}
	}
}

func TestSumGroupedBadGid(t *testing.T) {
	gc := mkCol(t, []uint64{0, 5}, columns.UncomprDesc)
	vc := mkCol(t, []uint64{1, 2}, columns.UncomprDesc)
	if _, err := SumGrouped(gc, vc, 2, vector.Scalar); err == nil {
		t.Error("out-of-range gid must fail")
	}
}

func TestCalcBinary(t *testing.T) {
	a := genVals(3000, 1000, 10)
	b := genVals(3000, 1000, 11)
	cases := []struct {
		op CalcKind
		f  func(x, y uint64) uint64
	}{
		{CalcAdd, func(x, y uint64) uint64 { return x + y }},
		{CalcSub, func(x, y uint64) uint64 { return x - y }},
		{CalcMul, func(x, y uint64) uint64 { return x * y }},
	}
	for _, aDesc := range formats.PaperDescs() {
		ac := mkCol(t, a, aDesc)
		bc := mkCol(t, b, columns.DynBPDesc)
		for _, cse := range cases {
			for _, style := range vector.Styles {
				got, err := CalcBinary(cse.op, ac, bc, columns.DynBPDesc, style)
				if err != nil {
					t.Fatalf("%v %v %v: %v", aDesc, cse.op, style, err)
				}
				dec := decode(t, got)
				for i := range a {
					if dec[i] != cse.f(a[i], b[i]) {
						t.Fatalf("%v %v %v: elem %d", aDesc, cse.op, style, i)
					}
				}
			}
		}
	}
}

func TestCalcLengthMismatch(t *testing.T) {
	a := mkCol(t, []uint64{1}, columns.UncomprDesc)
	b := mkCol(t, []uint64{1, 2}, columns.UncomprDesc)
	if _, err := CalcBinary(CalcAdd, a, b, columns.UncomprDesc, vector.Scalar); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []uint64{1, 3, 5, 7, 9, 500, 1000, 2500}
	b := []uint64{2, 3, 4, 7, 500, 2500, 2600}
	want := []uint64{3, 7, 500, 2500}
	for _, aDesc := range formats.PaperDescs() {
		for _, bDesc := range formats.PaperDescs() {
			ac := mkCol(t, a, aDesc)
			bc := mkCol(t, b, bDesc)
			got, err := IntersectSorted(ac, bc, columns.DeltaBPDesc)
			if err != nil {
				t.Fatalf("%v/%v: %v", aDesc, bDesc, err)
			}
			if !equalU64(decode(t, got), want) {
				t.Fatalf("%v/%v: intersect = %v", aDesc, bDesc, decode(t, got))
			}
		}
	}
}

func TestIntersectLarge(t *testing.T) {
	a := make([]uint64, 10000)
	bvals := make([]uint64, 5000)
	for i := range a {
		a[i] = uint64(2 * i)
	}
	for i := range bvals {
		bvals[i] = uint64(3 * i)
	}
	var want []uint64
	for i := 0; i < 15000; i += 6 {
		want = append(want, uint64(i))
	}
	ac := mkCol(t, a, columns.DeltaBPDesc)
	bc := mkCol(t, bvals, columns.DeltaBPDesc)
	got, err := IntersectSorted(ac, bc, columns.DeltaBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	dec := decode(t, got)
	if len(dec) != len(want) {
		t.Fatalf("len = %d, want %d", len(dec), len(want))
	}
	if !equalU64(dec, want) {
		t.Fatal("wrong intersection")
	}
}

func TestMergeSorted(t *testing.T) {
	a := []uint64{1, 3, 5, 100}
	b := []uint64{2, 3, 6, 100, 200}
	want := []uint64{1, 2, 3, 5, 6, 100, 200}
	for _, desc := range formats.PaperDescs() {
		ac := mkCol(t, a, desc)
		bc := mkCol(t, b, columns.UncomprDesc)
		got, err := MergeSorted(ac, bc, columns.DeltaBPDesc)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		if !equalU64(decode(t, got), want) {
			t.Fatalf("%v: merge = %v", desc, decode(t, got))
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := mkCol(t, nil, columns.UncomprDesc)
	if got, err := Select(empty, bitutil.CmpEq, 1, columns.DynBPDesc, vector.Vec512); err != nil || got.N() != 0 {
		t.Errorf("select on empty: %v, n=%v", err, got.N())
	}
	s, _, err := SumWhole(empty, vector.Scalar)
	if err != nil || s != 0 {
		t.Errorf("sum on empty: %v %d", err, s)
	}
	i2, err := IntersectSorted(empty, empty, columns.UncomprDesc)
	if err != nil || i2.N() != 0 {
		t.Errorf("intersect on empty: %v", err)
	}
	g, e, err := GroupFirst(empty, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar)
	if err != nil || g.N() != 0 || e.N() != 0 {
		t.Errorf("group on empty: %v", err)
	}
}

func TestNilColumn(t *testing.T) {
	if _, err := Select(nil, bitutil.CmpEq, 1, columns.UncomprDesc, vector.Scalar); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := IntersectSorted(nil, nil, columns.UncomprDesc); err == nil {
		t.Error("nil input must fail")
	}
}
