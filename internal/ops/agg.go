package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// SumWhole computes the sum of all elements (modulo 2^64) and returns it
// both as a scalar and as a single-element column. Query result columns are
// always uncompressed (§3.3), so no output format is taken.
func SumWhole(in *columns.Column, style vector.Style) (uint64, *columns.Column, error) {
	if err := checkCols(in); err != nil {
		return 0, nil, err
	}
	r, err := formats.NewReader(in)
	if err != nil {
		return 0, nil, err
	}
	var total uint64
	process := func(vals []uint64, _ uint64) error {
		if style == vector.Vec512 {
			total += sumKernelVec(vals)
		} else {
			for _, v := range vals {
				total += v
			}
		}
		return nil
	}
	if err := streamBlocks(r, process); err != nil {
		return 0, nil, fmt.Errorf("ops: sum: %w", err)
	}
	return total, columns.FromValues([]uint64{total}), nil
}

// sumKernelVec accumulates eight lanes at a time.
func sumKernelVec(vals []uint64) uint64 {
	var acc vector.Vec
	i := 0
	for ; i+vector.Lanes <= len(vals); i += vector.Lanes {
		acc = vector.Add(acc, vector.Load(vals[i:]))
	}
	total := acc.HSum()
	for ; i < len(vals); i++ {
		total += vals[i]
	}
	return total
}

// SumGrouped aggregates vals per group id: result[g] = sum of vals[i] where
// gids[i] == g, for g in [0, nGroups). The two inputs stream in lockstep;
// the result involves random writes and is therefore an uncompressed column
// (§4.2: random write access targets the query's result columns, which stay
// uncompressed anyway).
func SumGrouped(gids, vals *columns.Column, nGroups int, style vector.Style) (*columns.Column, error) {
	if err := checkCols(gids, vals); err != nil {
		return nil, err
	}
	if gids.N() != vals.N() {
		return nil, fmt.Errorf("ops: grouped sum: gids has %d elements, vals %d", gids.N(), vals.N())
	}
	if nGroups < 0 {
		return nil, fmt.Errorf("ops: grouped sum: negative group count %d", nGroups)
	}
	rg, err := formats.NewReader(gids)
	if err != nil {
		return nil, err
	}
	rv, err := formats.NewReader(vals)
	if err != nil {
		return nil, err
	}
	sums := make([]uint64, nGroups)
	err = streamPaired(rg, rv, 0, func(gs, vs []uint64, _ uint64) error {
		return sumGroupedChunk(sums, gs, vs, nGroups)
	})
	if err != nil {
		return nil, fmt.Errorf("ops: grouped sum: %w", err)
	}
	return columns.FromValues(sums), nil
}

// sumGroupedChunk accumulates one aligned chunk pair into sums, range
// checking every group id; shared by the sequential operator and the
// parallel per-worker accumulation.
func sumGroupedChunk(sums, gs, vs []uint64, nGroups int) error {
	for i, g := range gs {
		if g >= uint64(nGroups) {
			return fmt.Errorf("group id %d out of range [0,%d)", g, nGroups)
		}
		sums[g] += vs[i]
	}
	return nil
}
