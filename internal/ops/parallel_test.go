package ops

import (
	"math/rand"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// parLevels are the parallelism degrees every operator is checked at; the
// sequential operator (degree 1 by definition) is the reference.
var parLevels = []int{1, 2, 3, 8}

// parTestN is deliberately not a multiple of the 512-element block, so every
// column has an uncompressed remainder and the last partition is ragged.
const parTestN = 11*formats.BlockLen + 437

func parTestValues(n int) []uint64 {
	rng := rand.New(rand.NewSource(99))
	vals := make([]uint64, n)
	for i := range vals {
		if i%101 == 0 {
			vals[i] = uint64(rng.Intn(1 << 28)) // outliers for DynBP width variety
		} else {
			vals[i] = uint64(rng.Intn(500))
		}
	}
	return vals
}

// assertSameColumn fails unless got is byte-identical to want: same format,
// same extents, same physical words.
func assertSameColumn(t *testing.T, ctx string, want, got *columns.Column) {
	t.Helper()
	if got.Desc() != want.Desc() {
		t.Fatalf("%s: desc %v, want %v", ctx, got.Desc(), want.Desc())
	}
	if got.N() != want.N() || got.MainElems() != want.MainElems() {
		t.Fatalf("%s: extents n=%d/main=%d, want n=%d/main=%d",
			ctx, got.N(), got.MainElems(), want.N(), want.MainElems())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("%s: %d words, want %d", ctx, len(gw), len(ww))
	}
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("%s: word %d = %#x, want %#x", ctx, i, gw[i], ww[i])
		}
	}
}

// TestParallelOperatorEquivalence is the cross-product equivalence check:
// every parallel operator, at every parallelism degree, over every input
// format x output format x processing style, must produce a column
// byte-identical to the sequential path.
func TestParallelOperatorEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	inputs := make(map[columns.Kind]*columns.Column)
	for _, d := range formats.AllDescs() {
		col, err := formats.Compress(vals, d)
		if err != nil {
			t.Fatal(err)
		}
		inputs[d.Kind] = col
	}

	for _, inDesc := range formats.AllDescs() {
		in := inputs[inDesc.Kind]
		for _, outDesc := range formats.AllDescs() {
			for _, style := range vector.Styles {
				ctx := inDesc.String() + "->" + outDesc.String() + "/" + style.String()

				seqSel, err := Select(in, bitutil.CmpLt, 250, outDesc, style)
				if err != nil {
					t.Fatalf("select %s: %v", ctx, err)
				}
				seqBet, err := SelectBetween(in, 100, 400, outDesc, style)
				if err != nil {
					t.Fatalf("between %s: %v", ctx, err)
				}
				for _, par := range parLevels {
					got, err := ParSelect(in, bitutil.CmpLt, 250, outDesc, style, par)
					if err != nil {
						t.Fatalf("par select %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "select "+ctx, seqSel, got)
					got, err = ParSelectBetween(in, 100, 400, outDesc, style, par)
					if err != nil {
						t.Fatalf("par between %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "between "+ctx, seqBet, got)
				}
			}
		}
	}
}

func TestParallelSumEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	for _, inDesc := range formats.AllDescs() {
		in, err := formats.Compress(vals, inDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, style := range vector.Styles {
			want, wantCol, err := SumWhole(in, style)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range parLevels {
				got, gotCol, err := ParSum(in, style, par)
				if err != nil {
					t.Fatalf("par sum %v/%v p=%d: %v", inDesc, style, par, err)
				}
				if got != want {
					t.Fatalf("par sum %v/%v p=%d: %d, want %d", inDesc, style, par, got, want)
				}
				assertSameColumn(t, "sum", wantCol, gotCol)
			}
		}
	}
}

func TestParallelProjectEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	// Sorted positions touching every third element, non-block-aligned count.
	posVals := make([]uint64, 0, parTestN/3)
	for i := 0; i < parTestN; i += 3 {
		posVals = append(posVals, uint64(i))
	}
	for _, dataDesc := range formats.RandomAccessDescs() {
		data, err := formats.Compress(vals, dataDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, posDesc := range formats.AllDescs() {
			pos, err := formats.Compress(posVals, posDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					want, err := Project(data, pos, outDesc, style)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range parLevels {
						got, err := ParProject(data, pos, outDesc, style, par)
						if err != nil {
							t.Fatalf("par project %v/%v/%v/%v p=%d: %v",
								dataDesc, posDesc, outDesc, style, par, err)
						}
						assertSameColumn(t, "project", want, got)
					}
				}
			}
		}
	}
}

func TestParallelSemiJoinEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	buildVals := []uint64{1, 7, 42, 99, 123, 250, 444}
	for _, probeDesc := range formats.AllDescs() {
		probe, err := formats.Compress(vals, probeDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, buildDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc} {
			build, err := formats.Compress(buildVals, buildDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					want, err := SemiJoin(probe, build, outDesc, style)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range parLevels {
						got, err := ParSemiJoin(probe, build, outDesc, style, par)
						if err != nil {
							t.Fatalf("par semijoin %v/%v/%v p=%d: %v",
								probeDesc, outDesc, style, par, err)
						}
						assertSameColumn(t, "semijoin", want, got)
					}
				}
			}
		}
	}
}

// TestParallelAutoMatchesSpecialized checks that the auto dispatchers stay
// byte-identical to the sequential auto path even when the sequential side
// picks a specialized direct kernel (static BP SWAR, RLE run-level).
func TestParallelAutoMatchesSpecialized(t *testing.T) {
	vals := make([]uint64, parTestN)
	for i := range vals {
		vals[i] = uint64(i % 200)
	}
	for _, inDesc := range []columns.FormatDesc{columns.StaticBPDesc(8), columns.RLEDesc} {
		in, err := formats.Compress(vals, inDesc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelectAuto(in, bitutil.CmpLt, 50, columns.DeltaBPDesc, vector.Vec512, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels {
			got, err := ParSelectAuto(in, bitutil.CmpLt, 50, columns.DeltaBPDesc, vector.Vec512, true, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", inDesc, par, err)
			}
			assertSameColumn(t, "auto select "+inDesc.String(), want, got)
		}
		wantSum, _, err := SumAuto(in, vector.Vec512, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels {
			gotSum, _, err := ParSumAuto(in, vector.Vec512, true, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", inDesc, par, err)
			}
			if gotSum != wantSum {
				t.Fatalf("auto sum %v p=%d: %d, want %d", inDesc, par, gotSum, wantSum)
			}
		}
	}
}
