package ops

import (
	"math/rand"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// parTestN is deliberately not a multiple of the 512-element block, so every
// column has an uncompressed remainder and the last partition is ragged.
const parTestN = 11*formats.BlockLen + 437

// parTestBlocks is the block count of a parTestN column; requesting more
// workers than blocks exercises the degenerate-partition clamping (the split
// caps partitions at the aligned minimum-morsel granularity).
const parTestBlocks = (parTestN + formats.BlockLen - 1) / formats.BlockLen

// parLevels are the parallelism degrees every operator is checked at; the
// sequential operator (degree 1 by definition) is the reference, and
// parTestBlocks+1 over-subscribes the column.
var parLevels = []int{1, 2, 3, 8, parTestBlocks + 1}

func parTestValues(n int) []uint64 {
	rng := rand.New(rand.NewSource(99))
	vals := make([]uint64, n)
	for i := range vals {
		if i%101 == 0 {
			vals[i] = uint64(rng.Intn(1 << 28)) // outliers for DynBP width variety
		} else {
			vals[i] = uint64(rng.Intn(500))
		}
	}
	return vals
}

// assertSameColumn fails unless got is byte-identical to want: same format,
// same extents, same physical words.
func assertSameColumn(t *testing.T, ctx string, want, got *columns.Column) {
	t.Helper()
	if got.Desc() != want.Desc() {
		t.Fatalf("%s: desc %v, want %v", ctx, got.Desc(), want.Desc())
	}
	if got.N() != want.N() || got.MainElems() != want.MainElems() {
		t.Fatalf("%s: extents n=%d/main=%d, want n=%d/main=%d",
			ctx, got.N(), got.MainElems(), want.N(), want.MainElems())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("%s: %d words, want %d", ctx, len(gw), len(ww))
	}
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("%s: word %d = %#x, want %#x", ctx, i, gw[i], ww[i])
		}
	}
}

// TestParallelOperatorEquivalence is the cross-product equivalence check:
// every parallel operator, at every parallelism degree, over every input
// format x output format x processing style, must produce a column
// byte-identical to the sequential path.
func TestParallelOperatorEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	inputs := make(map[columns.Kind]*columns.Column)
	for _, d := range formats.AllDescs() {
		col, err := formats.Compress(vals, d)
		if err != nil {
			t.Fatal(err)
		}
		inputs[d.Kind] = col
	}

	for _, inDesc := range formats.AllDescs() {
		in := inputs[inDesc.Kind]
		for _, outDesc := range formats.AllDescs() {
			for _, style := range vector.Styles {
				ctx := inDesc.String() + "->" + outDesc.String() + "/" + style.String()

				seqSel, err := Select(in, bitutil.CmpLt, 250, outDesc, style)
				if err != nil {
					t.Fatalf("select %s: %v", ctx, err)
				}
				seqBet, err := SelectBetween(in, 100, 400, outDesc, style)
				if err != nil {
					t.Fatalf("between %s: %v", ctx, err)
				}
				for _, par := range parLevels {
					got, err := ParSelect(in, bitutil.CmpLt, 250, outDesc, style, par)
					if err != nil {
						t.Fatalf("par select %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "select "+ctx, seqSel, got)
					got, err = ParSelectBetween(in, 100, 400, outDesc, style, par)
					if err != nil {
						t.Fatalf("par between %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "between "+ctx, seqBet, got)
				}
			}
		}
	}
}

func TestParallelSumEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	for _, inDesc := range formats.AllDescs() {
		in, err := formats.Compress(vals, inDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, style := range vector.Styles {
			want, wantCol, err := SumWhole(in, style)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range parLevels {
				got, gotCol, err := ParSum(in, style, par)
				if err != nil {
					t.Fatalf("par sum %v/%v p=%d: %v", inDesc, style, par, err)
				}
				if got != want {
					t.Fatalf("par sum %v/%v p=%d: %d, want %d", inDesc, style, par, got, want)
				}
				assertSameColumn(t, "sum", wantCol, gotCol)
			}
		}
	}
}

func TestParallelProjectEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	// Sorted positions touching every third element, non-block-aligned count.
	posVals := make([]uint64, 0, parTestN/3)
	for i := 0; i < parTestN; i += 3 {
		posVals = append(posVals, uint64(i))
	}
	for _, dataDesc := range formats.RandomAccessDescs() {
		data, err := formats.Compress(vals, dataDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, posDesc := range formats.AllDescs() {
			pos, err := formats.Compress(posVals, posDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					want, err := Project(data, pos, outDesc, style)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range parLevels {
						got, err := ParProject(data, pos, outDesc, style, par)
						if err != nil {
							t.Fatalf("par project %v/%v/%v/%v p=%d: %v",
								dataDesc, posDesc, outDesc, style, par, err)
						}
						assertSameColumn(t, "project", want, got)
					}
				}
			}
		}
	}
}

func TestParallelSemiJoinEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	buildVals := []uint64{1, 7, 42, 99, 123, 250, 444}
	for _, probeDesc := range formats.AllDescs() {
		probe, err := formats.Compress(vals, probeDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, buildDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc} {
			build, err := formats.Compress(buildVals, buildDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					want, err := SemiJoin(probe, build, outDesc, style)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range parLevels {
						got, err := ParSemiJoin(probe, build, outDesc, style, par)
						if err != nil {
							t.Fatalf("par semijoin %v/%v/%v p=%d: %v",
								probeDesc, outDesc, style, par, err)
						}
						assertSameColumn(t, "semijoin", want, got)
					}
				}
			}
		}
	}
}

// TestParallelJoinN1Equivalence checks the dual-output N:1 join: for every
// probe format x output format x style x parallelism degree, both stitched
// position lists must be byte-identical to the sequential join's.
func TestParallelJoinN1Equivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	// Unique build keys covering about half of the probe value domain.
	buildVals := make([]uint64, 250)
	for i := range buildVals {
		buildVals[i] = uint64(2 * i)
	}
	for _, probeDesc := range formats.AllDescs() {
		probe, err := formats.Compress(vals, probeDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, buildDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc} {
			build, err := formats.Compress(buildVals, buildDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					ctx := probeDesc.String() + "->" + outDesc.String() + "/" + style.String()
					wantP, wantB, err := JoinN1(probe, build, outDesc, outDesc, style)
					if err != nil {
						t.Fatalf("join %s: %v", ctx, err)
					}
					for _, par := range parLevels {
						gotP, gotB, err := ParJoinN1(probe, build, outDesc, outDesc, style, par)
						if err != nil {
							t.Fatalf("par join %s p=%d: %v", ctx, par, err)
						}
						assertSameColumn(t, "join probe pos "+ctx, wantP, gotP)
						assertSameColumn(t, "join build pos "+ctx, wantB, gotB)
					}
				}
			}
		}
	}
}

// TestParallelJoinN1Skewed pins the stitch ordering of the join's dual
// outputs under extreme selectivity skew: one half of the probe column
// matches everything and the other half matches nothing, in both orders, so
// whole partitions produce either their full length or zero rows.
func TestParallelJoinN1Skewed(t *testing.T) {
	buildVals := make([]uint64, 300)
	for i := range buildVals {
		buildVals[i] = uint64(i)
	}
	mkProbe := func(matchFirstHalf bool) []uint64 {
		probe := make([]uint64, parTestN)
		for i := range probe {
			inFirst := i < parTestN/2
			if inFirst == matchFirstHalf {
				probe[i] = uint64(i % len(buildVals)) // hits the build side
			} else {
				probe[i] = uint64(1_000_000 + i) // misses
			}
		}
		return probe
	}
	for _, skew := range []struct {
		name       string
		matchFirst bool
	}{{"all_match_then_none", true}, {"none_then_all_match", false}} {
		probeVals := mkProbe(skew.matchFirst)
		for _, probeDesc := range formats.AllDescs() {
			probe, err := formats.Compress(probeVals, probeDesc)
			if err != nil {
				t.Fatal(err)
			}
			build := columns.FromValues(buildVals)
			for _, outDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.StaticBPDesc(0), columns.DeltaBPDesc} {
				ctx := skew.name + "/" + probeDesc.String() + "->" + outDesc.String()
				wantP, wantB, err := JoinN1(probe, build, outDesc, outDesc, vector.Vec512)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				for _, par := range parLevels {
					gotP, gotB, err := ParJoinN1(probe, build, outDesc, outDesc, vector.Vec512, par)
					if err != nil {
						t.Fatalf("%s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "skew join probe pos "+ctx, wantP, gotP)
					assertSameColumn(t, "skew join build pos "+ctx, wantB, gotB)
				}
			}
		}
	}
}

// TestParallelCalcEquivalence checks the lockstep dual-input calc: both
// inputs are split at shared boundaries even when their formats align
// differently (e.g. uncompressed x DynBP).
func TestParallelCalcEquivalence(t *testing.T) {
	aVals := parTestValues(parTestN)
	bVals := make([]uint64, parTestN)
	for i := range bVals {
		bVals[i] = uint64(i%977 + 1)
	}
	for _, aDesc := range formats.AllDescs() {
		a, err := formats.Compress(aVals, aDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, bDesc := range formats.AllDescs() {
			bcol, err := formats.Compress(bVals, bDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				for _, style := range vector.Styles {
					for _, op := range []CalcKind{CalcAdd, CalcSub, CalcMul} {
						ctx := aDesc.String() + op.String() + bDesc.String() + "->" + outDesc.String() + "/" + style.String()
						want, err := CalcBinary(op, a, bcol, outDesc, style)
						if err != nil {
							t.Fatalf("calc %s: %v", ctx, err)
						}
						for _, par := range parLevels {
							got, err := ParCalcBinary(op, a, bcol, outDesc, style, par)
							if err != nil {
								t.Fatalf("par calc %s p=%d: %v", ctx, par, err)
							}
							assertSameColumn(t, "calc "+ctx, want, got)
						}
					}
				}
			}
		}
	}
}

// TestParallelSumGroupedEquivalence checks the partial-group-sum merge: for
// every gid format x value format x style x degree the merged sums must equal
// the sequential single-array accumulation bit for bit.
func TestParallelSumGroupedEquivalence(t *testing.T) {
	const nGroups = 37
	gidVals := make([]uint64, parTestN)
	vVals := parTestValues(parTestN)
	rng := rand.New(rand.NewSource(5))
	for i := range gidVals {
		gidVals[i] = uint64(rng.Intn(nGroups))
	}
	for _, gDesc := range formats.AllDescs() {
		gids, err := formats.Compress(gidVals, gDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, vDesc := range formats.AllDescs() {
			vals, err := formats.Compress(vVals, vDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, style := range vector.Styles {
				ctx := gDesc.String() + "+" + vDesc.String() + "/" + style.String()
				want, err := SumGrouped(gids, vals, nGroups, style)
				if err != nil {
					t.Fatalf("grouped sum %s: %v", ctx, err)
				}
				for _, par := range parLevels {
					got, err := ParSumGrouped(gids, vals, nGroups, style, par)
					if err != nil {
						t.Fatalf("par grouped sum %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "grouped sum "+ctx, want, got)
				}
			}
		}
	}
}

// TestParallelSumGroupedRejectsOutOfRange checks that an out-of-range group
// id fails the parallel path just like the sequential one.
func TestParallelSumGroupedRejectsOutOfRange(t *testing.T) {
	gidVals := make([]uint64, parTestN)
	gidVals[parTestN-1] = 99 // beyond nGroups below
	gids := columns.FromValues(gidVals)
	vals := columns.FromValues(parTestValues(parTestN))
	for _, par := range parLevels {
		if _, err := ParSumGrouped(gids, vals, 10, vector.Scalar, par); err == nil {
			t.Fatalf("p=%d: out-of-range group id must fail", par)
		}
	}
}

// TestParallelAutoMatchesSpecialized checks that the auto dispatchers stay
// byte-identical to the sequential auto path whether the specialized kernel
// runs per partition (static BP SWAR select/sum and per-block DynBP sum on
// splittable inputs) or the sequential side picks a specialized direct
// kernel on inputs that cannot split (RLE run-level).
func TestParallelAutoMatchesSpecialized(t *testing.T) {
	vals := make([]uint64, parTestN)
	for i := range vals {
		vals[i] = uint64(i % 200)
	}
	for _, inDesc := range []columns.FormatDesc{columns.StaticBPDesc(8), columns.DynBPDesc, columns.RLEDesc} {
		in, err := formats.Compress(vals, inDesc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelectAuto(in, bitutil.CmpLt, 50, columns.DeltaBPDesc, vector.Vec512, true)
		if err != nil {
			t.Fatal(err)
		}
		wantBet, err := SelectBetweenAuto(in, 20, 120, columns.DeltaBPDesc, vector.Vec512, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels {
			got, err := ParSelectAuto(in, bitutil.CmpLt, 50, columns.DeltaBPDesc, vector.Vec512, true, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", inDesc, par, err)
			}
			assertSameColumn(t, "auto select "+inDesc.String(), want, got)
			got, err = ParSelectBetweenAuto(in, 20, 120, columns.DeltaBPDesc, vector.Vec512, true, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", inDesc, par, err)
			}
			assertSameColumn(t, "auto between "+inDesc.String(), wantBet, got)
		}
		wantSum, _, err := SumAuto(in, vector.Vec512, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels {
			gotSum, _, err := ParSumAuto(in, vector.Vec512, true, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", inDesc, par, err)
			}
			if gotSum != wantSum {
				t.Fatalf("auto sum %v p=%d: %d, want %d", inDesc, par, gotSum, wantSum)
			}
		}
	}
}

// TestParallelAutoSpecializedEdgeCases pins the dispatch edges of the
// per-partition SWAR kernels: predicate constants beyond the packed field
// range and range predicates straddling it must match the sequential auto
// operator (which rewrites or clamps them) bit for bit.
func TestParallelAutoSpecializedEdgeCases(t *testing.T) {
	vals := make([]uint64, parTestN)
	for i := range vals {
		vals[i] = uint64(i % 200)
	}
	in, err := formats.Compress(vals, columns.StaticBPDesc(8))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		op     bitutil.CmpKind
		val    uint64
		lo, hi uint64
		rng    bool
	}{
		{name: "eq_beyond_width", op: bitutil.CmpEq, val: 1 << 30},
		{name: "lt_beyond_width", op: bitutil.CmpLt, val: 1 << 30},
		{name: "between_hi_beyond_width", lo: 100, hi: 1 << 30, rng: true},
		{name: "between_lo_beyond_width", lo: 1 << 30, hi: 1 << 31, rng: true},
	}
	for _, tc := range cases {
		var want *columns.Column
		if tc.rng {
			want, err = SelectBetweenAuto(in, tc.lo, tc.hi, columns.DynBPDesc, vector.Scalar, true)
		} else {
			want, err = SelectAuto(in, tc.op, tc.val, columns.DynBPDesc, vector.Scalar, true)
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, par := range parLevels {
			var got *columns.Column
			if tc.rng {
				got, err = ParSelectBetweenAuto(in, tc.lo, tc.hi, columns.DynBPDesc, vector.Scalar, true, par)
			} else {
				got, err = ParSelectAuto(in, tc.op, tc.val, columns.DynBPDesc, vector.Scalar, true, par)
			}
			if err != nil {
				t.Fatalf("%s p=%d: %v", tc.name, par, err)
			}
			assertSameColumn(t, tc.name, want, got)
		}
	}
}

// TestStitchCompressedMatchesSerialWriter checks the parallel compressed
// stitch in isolation: for every output format and parallelism degree, the
// sectioned compress-and-concatenate path must produce the bytes of a single
// sequential writer consuming the same chunks.
func TestStitchCompressedMatchesSerialWriter(t *testing.T) {
	vals := parTestValues(parTestN)
	// Ragged chunks mimicking skewed per-morsel outputs, including empties.
	cuts := []int{0, 17, 17, 2048, 2500, 4096, parTestN}
	chunks := make([][]uint64, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		chunks = append(chunks, vals[cuts[i-1]:cuts[i]])
	}
	for _, desc := range append(formats.AllDescs(), columns.StaticBPDesc(36)) {
		want, err := StitchCompressed(desc, parTestN, chunks, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels[1:] {
			got, err := StitchCompressed(desc, parTestN, chunks, par)
			if err != nil {
				t.Fatalf("%v p=%d: %v", desc, par, err)
			}
			assertSameColumn(t, "stitch "+desc.String(), want, got)
		}
	}
	// Position-list shaped stream (sorted): the DeltaBP sweet spot.
	pos := make([]uint64, parTestN)
	for i := range pos {
		pos[i] = uint64(3 * i)
	}
	posChunks := [][]uint64{pos[:100], pos[100:4096], pos[4096:]}
	for _, desc := range formats.AllDescs() {
		want, err := StitchCompressed(desc, parTestN, posChunks, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := StitchCompressed(desc, parTestN, posChunks, 4)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		assertSameColumn(t, "stitch pos "+desc.String(), want, got)
	}
}

// TestStitchZeroAllocConcat extends the cross-product with the allocation
// contract of the stitch's serial tail: once the per-worker sections exist,
// splicing them at full-block boundaries costs a constant number of
// allocations (the result buffer and column), never per-block work.
func TestStitchZeroAllocConcat(t *testing.T) {
	// A position-list shaped stream: every value < parTestN, so the preset
	// static BP position width holds every section at one shared width.
	vals := make([]uint64, parTestN)
	for i := range vals {
		vals[i] = uint64(i)
	}
	for _, desc := range formats.AllDescs() {
		d := positionDesc(desc, parTestN) // as the parallel drivers request it
		ranges := formats.SplitRange(parTestN, 4, formats.ConcatAlign(d.Kind))
		if ranges == nil {
			t.Fatalf("%v: range did not split", d)
		}
		parts := make([]*columns.Column, len(ranges))
		for i, pt := range ranges {
			var prev uint64
			if pt.Start > 0 {
				prev = vals[pt.Start-1]
			}
			w, err := formats.NewSectionWriter(d, pt.Count, prev, pt.Start > 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(vals[pt.Start : pt.Start+pt.Count]); err != nil {
				t.Fatal(err)
			}
			if parts[i], err = w.Close(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := formats.ConcatCompressed(parts[0].Desc(), parts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 8 {
			t.Errorf("%v: aligned concat did %.0f allocations, want <= 8", d, allocs)
		}
	}
}
