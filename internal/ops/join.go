package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// JoinN1 performs an N:1 equi-join between a probe-side key column (e.g. a
// fact-table foreign key) and a build-side key column with unique values
// (e.g. a filtered dimension primary key). It returns two position lists of
// equal length: the matching probe positions and, aligned with them, the
// build position each probe row joined with. The probe side streams through
// the usual de/re-compression wrapper; the build side is decompressed once
// into the hash table — matching the encoded hash-join of Lee et al. [39]:
// compressed (dictionary-key) values are inserted and probed directly.
func JoinN1(probeKeys, buildKeys *columns.Column, outProbe, outBuild columns.FormatDesc, style vector.Style) (probePos, buildPos *columns.Column, err error) {
	if err := checkCols(probeKeys, buildKeys); err != nil {
		return nil, nil, err
	}
	ht, err := buildJoinTable(buildKeys)
	if err != nil {
		return nil, nil, err
	}

	wp, err := formats.NewWriter(positionDesc(outProbe, probeKeys.N()), probeKeys.N())
	if err != nil {
		return nil, nil, err
	}
	wb, err := formats.NewWriter(positionDesc(outBuild, buildKeys.N()), probeKeys.N())
	if err != nil {
		return nil, nil, err
	}
	r, err := formats.NewReader(probeKeys)
	if err != nil {
		return nil, nil, err
	}

	stageP := make([]uint64, blockBuf)
	stageB := make([]uint64, blockBuf)
	emit := func(vals []uint64, base uint64) error {
		k := 0
		for i, v := range vals {
			if b, ok := ht.get(v); ok {
				stageP[k] = base + uint64(i)
				stageB[k] = b
				k++
			}
		}
		if err := wp.Write(stageP[:k]); err != nil {
			return err
		}
		return wb.Write(stageB[:k])
	}

	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			for off := 0; off < len(vals); off += blockBuf {
				end := off + blockBuf
				if end > len(vals) {
					end = len(vals)
				}
				if err := emit(vals[off:end], uint64(off)); err != nil {
					return nil, nil, err
				}
			}
			probePos, err = wp.Close()
			if err != nil {
				return nil, nil, err
			}
			buildPos, err = wb.Close()
			return probePos, buildPos, err
		}
	}

	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("ops: join probe: %w", err)
		}
		if k == 0 {
			break
		}
		if err := emit(buf[:k], base); err != nil {
			return nil, nil, err
		}
		base += uint64(k)
	}
	probePos, err = wp.Close()
	if err != nil {
		return nil, nil, err
	}
	buildPos, err = wb.Close()
	return probePos, buildPos, err
}

// buildJoinTable decompresses the unique build-side keys into a hash table
// mapping key -> build position; shared by the sequential and parallel N:1
// joins.
func buildJoinTable(buildKeys *columns.Column) (*u64Map, error) {
	build, err := readAll(buildKeys)
	if err != nil {
		return nil, fmt.Errorf("ops: join build side: %w", err)
	}
	ht := newU64Map(len(build))
	for i, k := range build {
		ht.put(k, uint64(i))
	}
	return ht, nil
}

// buildMembershipTable decompresses the build-side keys into a hash table
// for existence probes; shared by the sequential and parallel semijoins.
func buildMembershipTable(buildKeys *columns.Column) (*u64Map, error) {
	build, err := readAll(buildKeys)
	if err != nil {
		return nil, fmt.Errorf("ops: semijoin build side: %w", err)
	}
	ht := newU64Map(len(build))
	for _, k := range build {
		ht.put(k, 1)
	}
	return ht, nil
}

// SemiJoin returns the probe positions whose key occurs in the build-side
// key column (used when only the existence of a dimension match matters,
// e.g. the date-filter joins of SSB Q1.x).
func SemiJoin(probeKeys, buildKeys *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(probeKeys, buildKeys); err != nil {
		return nil, err
	}
	ht, err := buildMembershipTable(buildKeys)
	if err != nil {
		return nil, err
	}

	w, err := formats.NewWriter(positionDesc(out, probeKeys.N()), probeKeys.N())
	if err != nil {
		return nil, err
	}
	r, err := formats.NewReader(probeKeys)
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)
	emit := func(vals []uint64, base uint64) error {
		k := 0
		for i, v := range vals {
			if _, ok := ht.get(v); ok {
				stage[k] = base + uint64(i)
				k++
			}
		}
		return w.Write(stage[:k])
	}

	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			for off := 0; off < len(vals); off += blockBuf {
				end := off + blockBuf
				if end > len(vals) {
					end = len(vals)
				}
				if err := emit(vals[off:end], uint64(off)); err != nil {
					return nil, err
				}
			}
			return w.Close()
		}
	}

	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("ops: semijoin probe: %w", err)
		}
		if k == 0 {
			break
		}
		if err := emit(buf[:k], base); err != nil {
			return nil, err
		}
		base += uint64(k)
	}
	return w.Close()
}
