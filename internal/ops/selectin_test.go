package ops

import (
	"errors"
	"sort"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// selectInReference computes the expected positions with plain Go.
func selectInReference(vals []uint64, set []uint64) []uint64 {
	member := make(map[uint64]bool, len(set))
	for _, s := range set {
		member[s] = true
	}
	var out []uint64
	for i, v := range vals {
		if member[v] {
			out = append(out, uint64(i))
		}
	}
	return out
}

// TestSelectInEquivalence checks the membership kernel over every input
// format x output format x style x parallelism against both the plain-Go
// reference and byte-identity with the sequential operator, for set sizes on
// both sides of the linear-probe cutoff plus the empty set.
func TestSelectInEquivalence(t *testing.T) {
	vals := parTestValues(parTestN)
	sets := [][]uint64{
		{},
		{131},
		{3, 77, 250, 444},
		{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 499},
	}
	inputs := make(map[columns.Kind]*columns.Column)
	for _, d := range formats.AllDescs() {
		col, err := formats.Compress(vals, d)
		if err != nil {
			t.Fatal(err)
		}
		inputs[d.Kind] = col
	}
	for _, inDesc := range formats.AllDescs() {
		in := inputs[inDesc.Kind]
		for _, outDesc := range formats.AllDescs() {
			for _, style := range vector.Styles {
				for si, set := range sets {
					ctx := inDesc.String() + "->" + outDesc.String() + "/" + style.String()
					seq, err := SelectIn(in, set, outDesc, style)
					if err != nil {
						t.Fatalf("select in %s set=%d: %v", ctx, si, err)
					}
					wantPos := selectInReference(vals, set)
					gotPos, err := formats.Decompress(seq)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotPos) != len(wantPos) {
						t.Fatalf("select in %s set=%d: %d positions, want %d", ctx, si, len(gotPos), len(wantPos))
					}
					for i := range wantPos {
						if gotPos[i] != wantPos[i] {
							t.Fatalf("select in %s set=%d: pos[%d]=%d, want %d", ctx, si, i, gotPos[i], wantPos[i])
						}
					}
					for _, par := range parLevels {
						got, err := ParSelectIn(in, set, outDesc, style, par)
						if err != nil {
							t.Fatalf("par select in %s set=%d p=%d: %v", ctx, si, par, err)
						}
						assertSameColumn(t, "select in "+ctx, seq, got)
					}
				}
			}
		}
	}
}

// TestSelectInMatchesSelect checks the cross-kernel identity the string
// layer relies on: a one-element set produces the same bytes as an equality
// select, and a contiguous set the same bytes as a range select.
func TestSelectInMatchesSelect(t *testing.T) {
	vals := parTestValues(parTestN)
	in := columns.FromValues(vals)
	for _, outDesc := range formats.PaperDescs() {
		eq, err := Select(in, bitutil.CmpEq, 131, outDesc, vector.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectIn(in, []uint64{131}, outDesc, vector.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		assertSameColumn(t, "eq "+outDesc.String(), eq, got)

		bet, err := SelectBetween(in, 100, 120, outDesc, vector.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		contig := make([]uint64, 0, 21)
		for v := uint64(100); v <= 120; v++ {
			contig = append(contig, v)
		}
		got, err = SelectIn(in, contig, outDesc, vector.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		assertSameColumn(t, "range "+outDesc.String(), bet, got)
	}
}

func TestSelectInRejectsUnsortedSet(t *testing.T) {
	in := columns.FromValues([]uint64{1, 2, 3})
	for _, set := range [][]uint64{{5, 3}, {3, 3}} {
		if _, err := SelectIn(in, set, columns.UncomprDesc, vector.Scalar); !errors.Is(err, qerr.ErrInvalidSchema) {
			t.Fatalf("set %v: err = %v, want ErrInvalidSchema", set, err)
		}
		if _, err := ParSelectIn(in, set, columns.UncomprDesc, vector.Scalar, 2); !errors.Is(err, qerr.ErrInvalidSchema) {
			t.Fatalf("par set %v: err = %v, want ErrInvalidSchema", set, err)
		}
	}
}

func TestSelectInKernelBinarySearch(t *testing.T) {
	// A set larger than the linear cutoff exercises the binary-search arm.
	set := make([]uint64, 0, 40)
	for v := uint64(0); v < 400; v += 10 {
		set = append(set, v)
	}
	vals := parTestValues(4096)
	want := selectInReference(vals, set)
	stage := make([]uint64, len(vals))
	n := selectInKernel(vals, 0, set, stage)
	got := stage[:n]
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("kernel output not sorted")
	}
	if len(got) != len(want) {
		t.Fatalf("%d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
