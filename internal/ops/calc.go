package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// CalcKind enumerates the element-wise arithmetic operators.
type CalcKind uint8

const (
	// CalcAdd computes a + b per element.
	CalcAdd CalcKind = iota
	// CalcSub computes a - b per element (modulo 2^64).
	CalcSub
	// CalcMul computes a * b per element (low 64 bits).
	CalcMul
)

func (c CalcKind) String() string {
	switch c {
	case CalcAdd:
		return "+"
	case CalcSub:
		return "-"
	case CalcMul:
		return "*"
	default:
		return "?"
	}
}

// Eval applies the operator to a pair of scalars.
func (c CalcKind) Eval(x, y uint64) uint64 {
	switch c {
	case CalcAdd:
		return x + y
	case CalcSub:
		return x - y
	case CalcMul:
		return x * y
	default:
		return 0
	}
}

// CalcBinary computes the element-wise combination of two equal-length
// columns (e.g. lo_extendedprice * lo_discount for SSB Q1.x, or
// lo_revenue - lo_supplycost for Q4.x), streaming both inputs in lockstep
// through the de/re-compression wrapper.
func CalcBinary(op CalcKind, a, b *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	if a.N() != b.N() {
		return nil, fmt.Errorf("ops: calc: inputs have %d and %d elements", a.N(), b.N())
	}
	ra, err := formats.NewReader(a)
	if err != nil {
		return nil, err
	}
	rb, err := formats.NewReader(b)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(out, a.N())
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)
	err = streamPaired(ra, rb, 0, func(va, vb []uint64, _ uint64) error {
		if style == vector.Vec512 {
			calcKernelVec(op, va, vb, stage)
		} else {
			calcKernelScalar(op, va, vb, stage)
		}
		return w.Write(stage[:len(va)])
	})
	if err != nil {
		return nil, fmt.Errorf("ops: calc: %w", err)
	}
	return w.Close()
}

func calcKernelScalar(op CalcKind, a, b, stage []uint64) {
	switch op {
	case CalcAdd:
		for i := range a {
			stage[i] = a[i] + b[i]
		}
	case CalcSub:
		for i := range a {
			stage[i] = a[i] - b[i]
		}
	case CalcMul:
		for i := range a {
			stage[i] = a[i] * b[i]
		}
	}
}

func calcKernelVec(op CalcKind, a, b, stage []uint64) {
	i := 0
	for ; i+vector.Lanes <= len(a); i += vector.Lanes {
		va, vb := vector.Load(a[i:]), vector.Load(b[i:])
		var vr vector.Vec
		switch op {
		case CalcAdd:
			vr = vector.Add(va, vb)
		case CalcSub:
			vr = vector.Sub(va, vb)
		case CalcMul:
			vr = vector.Mul(va, vb)
		}
		vr.Store(stage[i:])
	}
	for ; i < len(a); i++ {
		stage[i] = op.Eval(a[i], b[i])
	}
}
