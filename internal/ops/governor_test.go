package ops

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"morphstore/internal/qerr"
)

// TestMemGovernorAccounting: reservations add up, releases return bytes
// exactly once, and the peak high-water mark tracks the maximum.
func TestMemGovernorAccounting(t *testing.T) {
	g := NewMemGovernor(1000)
	if g.Total() != 1000 || g.Reserved() != 0 {
		t.Fatalf("fresh governor: total %d reserved %d", g.Total(), g.Reserved())
	}
	r1, err := g.Reserve(context.Background(), 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Reserve(context.Background(), 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Reserved(); got != 1000 {
		t.Fatalf("reserved = %d, want 1000", got)
	}
	if c := g.Counters(); c.PeakReserved != 1000 {
		t.Fatalf("peak = %d, want 1000", c.PeakReserved)
	}
	r1.Release()
	r1.Release() // idempotent: releasing twice must not free foreign bytes
	if got := g.Reserved(); got != 600 {
		t.Fatalf("after release: reserved = %d, want 600", got)
	}
	r2.Release()
	if got := g.Reserved(); got != 0 {
		t.Fatalf("idle governor holds %d bytes", got)
	}
}

// TestMemGovernorOverBudget: an estimate larger than the whole budget can
// never be granted and is rejected immediately with ErrMemoryLimit — the
// caller decides between shedding and degrading.
func TestMemGovernorOverBudget(t *testing.T) {
	g := NewMemGovernor(100)
	if _, err := g.Reserve(context.Background(), 101, nil); !errors.Is(err, qerr.ErrMemoryLimit) {
		t.Fatalf("over-budget reserve: %v, want ErrMemoryLimit", err)
	}
	if errors.Is(func() error { _, err := g.Reserve(context.Background(), 101, nil); return err }(), qerr.ErrAdmissionRejected) {
		t.Fatal("over-budget reserve must not be a retryable admission shed")
	}
	if g.Reserved() != 0 {
		t.Fatalf("failed reserve leaked %d bytes", g.Reserved())
	}
}

// TestMemGovernorWaitAndWake: a reservation that does not fit parks until a
// running query releases; the wait is counted and measured.
func TestMemGovernorWaitAndWake(t *testing.T) {
	g := NewMemGovernor(100)
	r1, err := g.Reserve(context.Background(), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var waitNS int64
	go func() {
		defer wg.Done()
		r2, err := g.Reserve(context.Background(), 50, &waitNS)
		if err != nil {
			t.Error(err)
			return
		}
		r2.Release()
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	r1.Release()
	wg.Wait()
	if g.Reserved() != 0 {
		t.Fatalf("idle governor holds %d bytes", g.Reserved())
	}
	c := g.Counters()
	if c.Waits != 1 || c.WaitNS <= 0 || waitNS <= 0 {
		t.Fatalf("wait accounting: %+v, caller waitNS %d", c, waitNS)
	}
}

// TestMemGovernorWaitExpiry: a context expiring during the memory wait sheds
// the query with ErrAdmissionRejected — never ErrQueryCanceled, the query
// did no work — for both expiry flavours.
func TestMemGovernorWaitExpiry(t *testing.T) {
	g := NewMemGovernor(100)
	hold, err := g.Reserve(context.Background(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err = g.Reserve(ctx, 10, nil)
	if !errors.Is(err, qerr.ErrAdmissionRejected) || errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("cancel during memory wait: %v, want ErrAdmissionRejected without ErrQueryCanceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	_, err = g.Reserve(dctx, 10, nil)
	if !errors.Is(err, qerr.ErrAdmissionRejected) || errors.Is(err, qerr.ErrQueryTimeout) {
		t.Fatalf("deadline during memory wait: %v, want ErrAdmissionRejected without ErrQueryTimeout", err)
	}
	if c := g.Counters(); c.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", c.Rejected)
	}
}

// TestMemReservationCharge: runtime charges accumulate on the reservation —
// including on a tracking-only reservation without a governor — and the
// nil-receiver paths are no-ops.
func TestMemReservationCharge(t *testing.T) {
	g := NewMemGovernor(1 << 20)
	r, err := g.Reserve(context.Background(), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	rt := RT(context.Background(), nil, 2).WithMemReservation(r)
	rt.ChargeMem(100)
	rt.ChargeMem(28)
	rt.ChargeMem(0)
	rt.ChargeMem(-5)
	if got := r.Charged(); got != 128 {
		t.Fatalf("charged = %d, want 128", got)
	}
	if r.Reserved() != 1024 {
		t.Fatalf("reserved = %d, want 1024", r.Reserved())
	}

	// Tracking-only: nil governor still accounts charges, Release no-ops.
	var nilGov *MemGovernor
	tr, err := nilGov.Reserve(context.Background(), 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Charge(77)
	tr.Release()
	if tr.Charged() != 77 {
		t.Fatalf("tracking-only charged = %d, want 77", tr.Charged())
	}

	// Nil reservation: every method is a safe no-op.
	var nr *MemReservation
	nr.Charge(10)
	nr.Release()
	if nr.Charged() != 0 || nr.Reserved() != 0 {
		t.Fatal("nil reservation must report zero")
	}
	if nilGov.Total() != 0 || nilGov.Reserved() != 0 || (nilGov.Counters() != MemCounters{}) {
		t.Fatal("nil governor must report zero")
	}
}

// TestMemGovernorConcurrentChurn: many goroutines reserving and releasing
// random-ish sizes never push Reserved over Total and leave it at zero.
func TestMemGovernorConcurrentChurn(t *testing.T) {
	const total = 1000
	g := NewMemGovernor(total)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				size := int64(100 + (w*31+i*17)%300)
				r, err := g.Reserve(context.Background(), size, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if res := g.Reserved(); res > total {
					t.Errorf("reserved %d exceeds total %d", res, total)
				}
				r.Charge(int(size))
				r.Release()
			}
		}(w)
	}
	wg.Wait()
	if g.Reserved() != 0 {
		t.Fatalf("idle governor holds %d bytes", g.Reserved())
	}
}
