package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// IntersectSorted merges two sorted position lists into their intersection
// (the conjunction of two selections on the same table, e.g. the discount
// and quantity predicates of SSB Q1.x). Inputs stream block-wise; the output
// is recompressed in the requested format.
func IntersectSorted(a, b *columns.Column, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	pa, err := newPullReader(a)
	if err != nil {
		return nil, err
	}
	pb, err := newPullReader(b)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(out, min(a.N(), b.N()))
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)
	k := 0
	flush := func() error {
		err := w.Write(stage[:k])
		k = 0
		return err
	}
	va, oka := pa.peek()
	vb, okb := pb.peek()
	for oka && okb {
		switch {
		case va < vb:
			pa.advance()
			va, oka = pa.peek()
		case vb < va:
			pb.advance()
			vb, okb = pb.peek()
		default:
			stage[k] = va
			k++
			if k == len(stage) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			pa.advance()
			pb.advance()
			va, oka = pa.peek()
			vb, okb = pb.peek()
		}
	}
	if pa.err != nil {
		return nil, fmt.Errorf("ops: intersect: %w", pa.err)
	}
	if pb.err != nil {
		return nil, fmt.Errorf("ops: intersect: %w", pb.err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return w.Close()
}

// MergeSorted merges two sorted position lists into their union without
// duplicates (the disjunction of two selections, e.g. the two-city IN
// predicates of SSB Q3.3/Q3.4).
func MergeSorted(a, b *columns.Column, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	pa, err := newPullReader(a)
	if err != nil {
		return nil, err
	}
	pb, err := newPullReader(b)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(out, a.N()+b.N())
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)
	k := 0
	emit := func(v uint64) error {
		stage[k] = v
		k++
		if k == len(stage) {
			err := w.Write(stage[:k])
			k = 0
			return err
		}
		return nil
	}
	va, oka := pa.peek()
	vb, okb := pb.peek()
	for oka || okb {
		switch {
		case oka && (!okb || va < vb):
			if err := emit(va); err != nil {
				return nil, err
			}
			pa.advance()
			va, oka = pa.peek()
		case okb && (!oka || vb < va):
			if err := emit(vb); err != nil {
				return nil, err
			}
			pb.advance()
			vb, okb = pb.peek()
		default: // equal
			if err := emit(va); err != nil {
				return nil, err
			}
			pa.advance()
			pb.advance()
			va, oka = pa.peek()
			vb, okb = pb.peek()
		}
	}
	if pa.err != nil {
		return nil, fmt.Errorf("ops: merge: %w", pa.err)
	}
	if pb.err != nil {
		return nil, fmt.Errorf("ops: merge: %w", pb.err)
	}
	if err := w.Write(stage[:k]); err != nil {
		return nil, err
	}
	return w.Close()
}
