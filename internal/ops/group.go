package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// GroupFirst assigns a dense group id (in order of first occurrence) to
// every element of keys. It returns two columns, MonetDB-style:
//
//   - gids: one group id per input element (length keys.N()),
//   - extents: for each group, the position of its first occurrence
//     (length = number of groups); projecting the key column with extents
//     yields the per-group key values.
func GroupFirst(keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style) (gids, extents *columns.Column, err error) {
	if err := checkCols(keys); err != nil {
		return nil, nil, err
	}
	wg, err := formats.NewWriter(outGids, keys.N())
	if err != nil {
		return nil, nil, err
	}
	we, err := formats.NewWriter(outExtents, 0)
	if err != nil {
		return nil, nil, err
	}
	r, err := formats.NewReader(keys)
	if err != nil {
		return nil, nil, err
	}

	ht := newU64Map(1024)
	nGroups := uint64(0)
	stage := make([]uint64, blockBuf)
	ext := make([]uint64, 0, 256)

	process := func(vals []uint64, base uint64) error {
		for i, v := range vals {
			gid, inserted := ht.getOrPut(v, nGroups)
			if inserted {
				ext = append(ext, base+uint64(i))
				nGroups++
			}
			stage[i] = gid
		}
		return wg.Write(stage[:len(vals)])
	}
	if err := streamBlocks(r, process); err != nil {
		return nil, nil, fmt.Errorf("ops: group: %w", err)
	}
	if err := we.Write(ext); err != nil {
		return nil, nil, err
	}
	gids, err = wg.Close()
	if err != nil {
		return nil, nil, err
	}
	extents, err = we.Close()
	return gids, extents, err
}

// GroupNext refines an existing grouping with an additional key column: rows
// fall into the same output group iff they had the same previous group id
// and the same new key (the iterative multi-column grouping of MonetDB's
// group.subgroup). Outputs follow the GroupFirst conventions.
func GroupNext(prevGids, keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style) (gids, extents *columns.Column, err error) {
	if err := checkCols(prevGids, keys); err != nil {
		return nil, nil, err
	}
	if prevGids.N() != keys.N() {
		return nil, nil, fmt.Errorf("ops: group: gid column has %d elements, keys %d", prevGids.N(), keys.N())
	}
	wg, err := formats.NewWriter(outGids, keys.N())
	if err != nil {
		return nil, nil, err
	}
	we, err := formats.NewWriter(outExtents, 0)
	if err != nil {
		return nil, nil, err
	}
	rg, err := formats.NewReader(prevGids)
	if err != nil {
		return nil, nil, err
	}
	rk, err := formats.NewReader(keys)
	if err != nil {
		return nil, nil, err
	}

	ht := newPairMap(1024)
	nGroups := uint64(0)
	stage := make([]uint64, blockBuf)
	ext := make([]uint64, 0, 256)

	bufG := make([]uint64, blockBuf)
	bufK := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		ng, err := readFull(rg, bufG)
		if err != nil {
			return nil, nil, fmt.Errorf("ops: group: %w", err)
		}
		nk, err := readFull(rk, bufK[:min(len(bufK), ng)])
		if err != nil {
			return nil, nil, fmt.Errorf("ops: group: %w", err)
		}
		if ng == 0 && nk == 0 {
			break
		}
		if ng != nk {
			return nil, nil, fmt.Errorf("ops: group: input columns diverge (%d vs %d elements)", ng, nk)
		}
		// The parent gid arrives in runs (refinement keeps prior group
		// order), so its hash mix is hoisted out of the per-row probe and
		// recomputed only when the run changes; the zero initialization is
		// consistent because 0*hashMul == 0.
		var lastG, lastMix uint64
		for i := 0; i < ng; i++ {
			if bufG[i] != lastG {
				lastG, lastMix = bufG[i], bufG[i]*hashMul
			}
			gid, inserted := ht.getOrPutMixed(lastMix, bufG[i], bufK[i], nGroups)
			if inserted {
				ext = append(ext, base+uint64(i))
				nGroups++
			}
			stage[i] = gid
		}
		if err := wg.Write(stage[:ng]); err != nil {
			return nil, nil, err
		}
		base += uint64(ng)
	}
	if err := we.Write(ext); err != nil {
		return nil, nil, err
	}
	gids, err = wg.Close()
	if err != nil {
		return nil, nil, err
	}
	extents, err = we.Close()
	return gids, extents, err
}

// streamBlocks pulls blocks from r and hands them to process together with
// the running element offset.
func streamBlocks(r formats.Reader, process func(vals []uint64, base uint64) error) error {
	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			for off := 0; off < len(vals); off += blockBuf {
				end := off + blockBuf
				if end > len(vals) {
					end = len(vals)
				}
				if err := process(vals[off:end], uint64(off)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return err
		}
		if k == 0 {
			return nil
		}
		if err := process(buf[:k], base); err != nil {
			return err
		}
		base += uint64(k)
	}
}

// readFull reads from r until dst is full or the column is exhausted.
func readFull(r formats.Reader, dst []uint64) (int, error) {
	n := 0
	for n < len(dst) {
		k, err := r.Read(dst[n:])
		if err != nil {
			return n, err
		}
		if k == 0 {
			break
		}
		n += k
	}
	return n, nil
}
