package ops

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/qerr"
)

// This file implements the execution runtime threaded through the
// morsel-parallel drivers: a cancellation context checked between morsels
// and a shared worker Budget that divides one engine-wide goroutine
// allowance among every operator running at any moment — across concurrent
// operators of one plan and across concurrently executing queries alike.
//
// The budget replaces the old static division (an operator received
// par/inflight workers when it started and kept that share until it
// finished, so finishing siblings stranded their workers). Each running
// operator holds a Lease; the Budget re-divides the allowance deterministically
// whenever a lease opens or closes, and workers blocked on a shrunken lease
// pick up the freed slots the moment a sibling operator completes.

// Budget is a dynamic worker-goroutine allowance shared by every operator
// of one engine. It is safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	cond   *sync.Cond
	total  int
	nextID uint64
	leases []*Lease
	telem  atomic.Pointer[func(BudgetEvent)]
}

// BudgetEventKind classifies a BudgetEvent.
type BudgetEventKind uint8

// The budget telemetry event kinds.
const (
	// BudgetGrant is a new lease registration.
	BudgetGrant BudgetEventKind = iota
	// BudgetShrink is a lease lowering its own cap (sequential fallback).
	BudgetShrink
	// BudgetRelease is a lease closing.
	BudgetRelease
)

// String names the event kind.
func (k BudgetEventKind) String() string {
	switch k {
	case BudgetGrant:
		return "grant"
	case BudgetShrink:
		return "shrink"
	case BudgetRelease:
		return "release"
	}
	return "unknown"
}

// BudgetEvent is one entry of the budget telemetry stream: a lease was
// granted, shrunk, or released, and the allowance re-divided.
type BudgetEvent struct {
	// Kind is the event class.
	Kind BudgetEventKind
	// Lease is the affected lease's budget-unique id.
	Lease uint64
	// Cap is the lease's worker cap after the event (0 for a release).
	Cap int
	// Limit is the lease's re-divided worker limit after the event (0 for
	// a release).
	Limit int
	// Leases is the open-lease count after the event.
	Leases int
}

// SetTelemetry installs fn as the budget's telemetry sink, called on every
// lease grant, shrink, and release; nil detaches it. The sink runs with the
// budget mutex held, so it must be fast and must not call back into the
// budget — the engine attaches an atomic-counter sink. Detached cost is one
// atomic pointer load per event, and events are per operator, not per
// morsel.
func (b *Budget) SetTelemetry(fn func(BudgetEvent)) {
	if fn == nil {
		b.telem.Store(nil)
		return
	}
	b.telem.Store(&fn)
}

// emit forwards one telemetry event; called with b.mu held.
func (b *Budget) emit(ev BudgetEvent) {
	if fn := b.telem.Load(); fn != nil {
		(*fn)(ev)
	}
}

// NewBudget returns a budget of total worker slots; total <= 0 means
// GOMAXPROCS.
func NewBudget(total int) *Budget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	b := &Budget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the budget's worker allowance.
func (b *Budget) Total() int { return b.total }

// Lease is one operator's registration with a Budget: it holds the
// operator's current worker limit, re-divided as sibling leases come and go.
type Lease struct {
	b     *Budget
	id    uint64
	cap   int // most workers this operator can ever use
	limit int // current allowance, set by redivide
	inUse int
	obs   func(limit int) // per-lease limit observer, may be nil
}

// Lease registers an operator that can use at most cap concurrent workers
// and returns its lease. Every open lease is guaranteed a limit of at least
// one worker (progress), so the combined limit can exceed the total only
// when more operators run than the budget has slots.
func (b *Budget) Lease(cap int) *Lease { return b.LeaseObserved(cap, nil) }

// LeaseObserved is Lease with a per-lease observer: obs is called with the
// lease's new worker limit whenever a re-division changes it, including the
// initial grant. Like the telemetry sink, obs runs with the budget mutex
// held and must not call back into the budget; the engine attaches the
// node's stats collector here. obs may be nil.
func (b *Budget) LeaseObserved(cap int, obs func(limit int)) *Lease {
	if cap < 1 {
		cap = 1
	}
	// The fault point fires before the lease is registered so that an
	// injected panic cannot leave behind a lease the caller never saw and
	// can never Close.
	faultpoint.BudgetRedivide.MustHit()
	b.mu.Lock()
	defer b.mu.Unlock()
	l := &Lease{b: b, id: b.nextID, cap: cap, obs: obs}
	b.nextID++
	b.leases = append(b.leases, l)
	b.redivide()
	b.emit(BudgetEvent{Kind: BudgetGrant, Lease: l.id, Cap: l.cap, Limit: l.limit, Leases: len(b.leases)})
	return l
}

// redivide deterministically splits the total allowance among the open
// leases: capped leases (e.g. inherently sequential operators, cap 1) are
// served first so their unusable share flows to the others, ties broken by
// registration order, and every lease keeps a floor of one worker. Called
// with b.mu held; wakes workers whose lease limit grew.
func (b *Budget) redivide() {
	k := len(b.leases)
	if k == 0 {
		return
	}
	order := make([]*Lease, k)
	copy(order, b.leases)
	sort.Slice(order, func(i, j int) bool {
		if order[i].cap != order[j].cap {
			return order[i].cap < order[j].cap
		}
		return order[i].id < order[j].id
	})
	remaining := b.total
	for left := k; left > 0; left-- {
		l := order[k-left]
		share := (remaining + left - 1) / left // ceil: earlier leases absorb the remainder
		lim := min(share, l.cap)
		if lim < 1 {
			lim = 1
		}
		if lim != l.limit {
			l.limit = lim
			if l.obs != nil {
				l.obs(lim)
			}
		}
		remaining -= lim
		if remaining < 0 {
			remaining = 0
		}
	}
	b.cond.Broadcast()
}

// Close unregisters the lease and re-divides the freed allowance among the
// surviving leases, waking their blocked workers.
func (l *Lease) Close() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.leases {
		if x == l {
			b.leases = append(b.leases[:i], b.leases[i+1:]...)
			break
		}
	}
	b.redivide()
	b.emit(BudgetEvent{Kind: BudgetRelease, Lease: l.id, Leases: len(b.leases)})
}

// Shrink lowers the lease's worker cap (never below one, never raising it)
// and re-divides the budget, so an operator that turns out to run
// sequentially — an input that cannot be split — hands its unusable share
// to concurrently running siblings immediately instead of stranding it for
// the operator's whole runtime.
func (l *Lease) Shrink(cap int) {
	if cap < 1 {
		cap = 1
	}
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if cap >= l.cap {
		return
	}
	l.cap = cap
	b.redivide()
	b.emit(BudgetEvent{Kind: BudgetShrink, Lease: l.id, Cap: l.cap, Limit: l.limit, Leases: len(b.leases)})
}

// acquire blocks until the lease has a free worker slot; it returns false
// when ctx is cancelled. A waiter re-checks ctx on every slot release and on
// every re-division, so cancellation is noticed within one morsel.
func (l *Lease) acquire(ctx context.Context) bool {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for l.inUse >= l.limit {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		b.cond.Wait()
	}
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	l.inUse++
	return true
}

// release returns a worker slot and wakes waiters (of this lease or, after a
// re-division, of a sibling whose limit grew).
func (l *Lease) release() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	l.inUse--
	b.cond.Broadcast()
}

// Limit returns the lease's current worker allowance (for tests and
// introspection; the value may change concurrently).
func (l *Lease) Limit() int {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return l.limit
}

// Leases returns the number of open leases. An idle budget — no operator
// running — reports zero; the leak tests of the fault-tolerance suite assert
// this after every failure mode.
func (b *Budget) Leases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.leases)
}

// InUse returns the worker slots currently acquired across all open leases.
// An idle budget reports zero.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, l := range b.leases {
		n += l.inUse
	}
	return n
}

// Runtime carries the execution environment of one operator invocation:
// the cancellation context, the operator's budget lease (nil outside an
// engine), the morsel-parallelism cap, the operator's stats collector (nil
// when detached), and the query's memory reservation (nil without a memory
// budget). The zero value behaves like the legacy fixed par=1 sequential
// execution.
type Runtime struct {
	ctx   context.Context
	lease *Lease
	par   int
	coll  *metrics.NodeCollector
	mres  *MemReservation
}

// FixedRT returns a runtime with a fixed worker count and no budget sharing
// or cancellation — the behavior of the legacy positional operator API.
func FixedRT(par int) Runtime { return Runtime{par: par} }

// RT returns a runtime for one operator run: ctx is checked between morsels,
// and lease (which may be nil) gates the concurrently running workers.
func RT(ctx context.Context, lease *Lease, par int) Runtime {
	return Runtime{ctx: ctx, lease: lease, par: par}
}

// WithCollector returns a copy of the runtime reporting morsel counts,
// kernel timings, and fallback events to nc. A nil nc (or never calling
// WithCollector) is the detached mode: the morsel loop pays one nil check
// per claim and zero allocations.
func (rt Runtime) WithCollector(nc *metrics.NodeCollector) Runtime {
	rt.coll = nc
	return rt
}

// WithMemReservation returns a copy of the runtime charging intermediate
// allocations against r (the query's memory-governor reservation). A nil r
// (or never calling WithMemReservation) is the untracked mode: ChargeMem is
// one nil check.
func (rt Runtime) WithMemReservation(r *MemReservation) Runtime {
	rt.mres = r
	return rt
}

// ChargeMem books bytes of intermediate-buffer allocation against the
// query's memory reservation; a no-op without one. Charge sites are
// per-section/per-column, never per-element, so the accounting stays off the
// kernel hot path.
func (rt Runtime) ChargeMem(bytes int) { rt.mres.Charge(bytes) }

// Par returns the runtime's morsel-parallelism cap (at least 1).
func (rt Runtime) Par() int {
	if rt.par < 1 {
		return 1
	}
	return rt.par
}

// Err returns the runtime's cancellation status.
func (rt Runtime) Err() error {
	if rt.ctx == nil {
		return nil
	}
	return rt.ctx.Err()
}

// workers bounds the worker-goroutine count for a task list.
func (rt Runtime) workers(tasks int) int { return workerCount(rt.Par(), tasks) }

// seqFallback records that the operator runs sequentially from here on
// (unsplittable input): the budget lease, if any, shrinks to one worker so
// the surplus flows to sibling operators. The drivers call it on every
// sequential-fallback path.
func (rt Runtime) seqFallback() {
	if rt.lease != nil {
		rt.lease.Shrink(1)
	}
	rt.coll.SeqFallback()
}

// guarded runs fn for morsel i and converts a panic — in the kernel, in a
// stitch seam, or injected through a fault point — into a typed
// *qerr.QueryError carrying the panic value, the morsel index and the stack.
// The recover boundary sits per morsel rather than per worker so the worker
// loop keeps running its bookkeeping (completion count, lease release) on the
// normal path and sibling morsels on the same worker are unaffected.
func guarded(i int, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = qerr.Recovered(v, i)
		}
	}()
	if err := faultpoint.KernelBody.Hit(); err != nil {
		return err
	}
	return fn()
}

// runParts executes fn for every partition, claimed in index order from an
// atomic work-queue cursor by at most rt.Par() worker goroutines. fn receives
// the claiming worker's index (for reusing per-worker scratch: one worker
// index is never active on two goroutines) and the partition's index (for
// depositing results in deterministic partition order). Workers check the
// runtime's context and acquire a budget slot before every claim, so both
// cancellation and budget re-division take effect within one morsel.
//
// Each morsel runs under a recover guard: a panicking kernel is reported as a
// *qerr.QueryError instead of crashing the process, and the remaining workers
// stop claiming morsels as soon as any morsel fails. The first error in
// partition order is returned after all claimed work finishes; a cancelled
// run returns the context's error.
func (rt Runtime) runParts(parts []formats.Partition, fn func(worker, i int, pt formats.Partition) error) error {
	workers := rt.workers(len(parts))
	// shards is nil when no collector is attached — the detached morsel loop
	// pays exactly one nil check per claim, no clock reads, no allocations.
	shards := rt.coll.Shards(workers)
	errs := make([]error, len(parts))
	var next, completed atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if rt.Err() != nil || failed.Load() {
					return
				}
				if rt.lease != nil && !rt.lease.acquire(rt.ctx) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					if rt.lease != nil {
						rt.lease.release()
					}
					return
				}
				if err := faultpoint.MorselClaim.Hit(); err != nil {
					errs[i] = err
				} else if shards == nil {
					errs[i] = guarded(i, func() error { return fn(w, i, parts[i]) })
				} else {
					t0 := time.Now()
					errs[i] = guarded(i, func() error { return fn(w, i, parts[i]) })
					shards[w].Record(time.Since(t0))
				}
				if errs[i] != nil {
					failed.Store(true)
				}
				completed.Add(1)
				if rt.lease != nil {
					rt.lease.release()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if int(completed.Load()) < len(parts) {
		// Only cancellation leaves tasks unclaimed without an error.
		return rt.Err()
	}
	return nil
}

// runTasks is the task-index form of runParts for work lists that are not
// column partitions (sorted-set range pairs, remap passes): tasks 0..n-1 are
// claimed in index order from the atomic work-queue cursor under the same
// budget and cancellation rules. Because claims are monotonically increasing,
// one worker always processes its tasks in ascending index order — the
// parallel grouping relies on this to record per-worker first occurrences.
// It wraps runParts over placeholder partitions (task lists are small, a few
// entries per worker) rather than the other way around: runParts is on the
// hot path of every morsel driver, and keeping its frame exactly as the
// callers compiled against measurably matters to the sequential fallbacks.
func (rt Runtime) runTasks(n int, fn func(worker, i int) error) error {
	return rt.runParts(make([]formats.Partition, n), func(w, i int, _ formats.Partition) error {
		return fn(w, i)
	})
}
