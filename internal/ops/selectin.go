package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// SelectIn evaluates the set-membership predicate `element IN set` over the
// input column and returns the sorted list of matching positions as a column
// in the requested output format, like Select. The set must be sorted
// strictly ascending (the string layer hands over translated dictionary IDs
// that way); membership is a branch-free galloping binary search for large
// sets and a linear probe for small ones. An empty set is valid and yields
// an empty position list through the same writer machinery, so the result
// bytes stay identical across kernels for a given output descriptor.
func SelectIn(in *columns.Column, set []uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := checkSet(set); err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	r, err := formats.NewReader(in)
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)

	// Purely-uncompressed fast path: direct access to the whole column.
	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			if err := selectInOver(vals, 0, set, style, stage, w); err != nil {
				return nil, err
			}
			return w.Close()
		}
	}

	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("ops: select in: %w", err)
		}
		if k == 0 {
			break
		}
		if err := selectInOver(buf[:k], base, set, style, stage, w); err != nil {
			return nil, err
		}
		base += uint64(k)
	}
	return w.Close()
}

// checkSet validates the membership set's sort contract.
func checkSet(set []uint64) error {
	for i := 1; i < len(set); i++ {
		if set[i] <= set[i-1] {
			return qerr.Tag(fmt.Errorf("ops: select in: set not strictly ascending at index %d", i), qerr.ErrInvalidSchema)
		}
	}
	return nil
}

// selectInOver runs the membership kernel over one uncompressed block,
// staging matching positions and writing them out in blockBuf-sized batches.
// The kernel is scalar for every style: membership has no vector form here,
// and position output stays byte-identical regardless.
func selectInOver(vals []uint64, base uint64, set []uint64, _ vector.Style, stage []uint64, w formats.Writer) error {
	for off := 0; off < len(vals); off += blockBuf {
		end := off + blockBuf
		if end > len(vals) {
			end = len(vals)
		}
		k := selectInKernel(vals[off:end], base+uint64(off), set, stage)
		if err := w.Write(stage[:k]); err != nil {
			return err
		}
	}
	return nil
}

// linearSetMax is the set size below which a linear probe beats the binary
// search's branch mispredictions.
const linearSetMax = 8

// selectInKernel emits the positions of vals whose element is in the sorted
// set.
func selectInKernel(vals []uint64, base uint64, set []uint64, stage []uint64) int {
	k := 0
	if len(set) == 0 {
		return 0
	}
	if len(set) <= linearSetMax {
		for i, v := range vals {
			for _, s := range set {
				if v == s {
					stage[k] = base + uint64(i)
					k++
					break
				}
				if v < s {
					break
				}
			}
		}
		return k
	}
	lo0, hi0 := set[0], set[len(set)-1]
	for i, v := range vals {
		if v < lo0 || v > hi0 {
			continue
		}
		lo, hi := 0, len(set)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if set[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(set) && set[lo] == v {
			stage[k] = base + uint64(i)
			k++
		}
	}
	return k
}

// ParSelectIn is the morsel-parallel form of SelectIn, splitting the input
// into work-queue morsels for up to par workers.
func ParSelectIn(in *columns.Column, set []uint64, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).SelectIn(in, set, out, style)
}

// SelectIn is the runtime form of ParSelectIn.
func (rt Runtime) SelectIn(in *columns.Column, set []uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := checkSet(set); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SelectIn(in, set, out, style)
	}
	return rt.parSelectIn(in, parts, set, out, style)
}

func (rt Runtime) parSelectIn(in *columns.Column, parts []formats.Partition, set []uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	results := make([][]uint64, len(parts))
	stages := make([][]uint64, rt.workers(len(parts)))
	err := rt.runParts(parts, func(w, i int, pt formats.Partition) error {
		if stages[w] == nil {
			stages[w] = make([]uint64, blockBuf)
		}
		sink := &appendSink{vals: make([]uint64, 0, pt.Count/8+16)}
		if err := streamSection(in, pt, func(vals []uint64, base uint64) error {
			return selectInOver(vals, base, set, style, stages[w], sink)
		}); err != nil {
			return err
		}
		results[i] = sink.vals
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel select in: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, in.N()), in.N(), results)
}
