package ops

import (
	"fmt"
	"sync"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// This file implements morsel-parallel drivers around the streaming operator
// kernels: the input column is split into contiguous, block-aligned
// partitions (formats.SplitColumn), the existing format-oblivious kernels run
// per partition on worker goroutines, and the per-partition outputs are
// stitched back together in partition order through a single output writer.
//
// Because partitions are contiguous and processed with their global element
// offset as the position base, position lists stay globally sorted, and the
// final writer consumes exactly the same element stream as the sequential
// operator — so the stitched column is byte-identical to the sequential
// result for every output format (all writers are deterministic functions of
// their input stream). Columns whose format cannot be sliced (RLE), columns
// too small to split, and par <= 1 all fall back to the sequential operator.

// runParts executes fn for every partition on its own goroutine and returns
// the first error. Workers communicate only through their own index slot.
func runParts(parts []formats.Partition, fn func(i int, pt formats.Partition) error) error {
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, pt := range parts {
		wg.Add(1)
		go func(i int, pt formats.Partition) {
			defer wg.Done()
			errs[i] = fn(i, pt)
		}(i, pt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// streamSection feeds the elements of one column partition through process in
// cache-resident chunks; base carries the global element offset so selective
// kernels emit globally correct positions.
func streamSection(col *columns.Column, pt formats.Partition, process func(vals []uint64, base uint64) error) error {
	r, err := formats.NewSectionReader(col, pt.Start, pt.Count)
	if err != nil {
		return err
	}
	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			return process(vals, uint64(pt.Start))
		}
	}
	buf := make([]uint64, blockBuf)
	base := uint64(pt.Start)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return err
		}
		if k == 0 {
			return nil
		}
		if err := process(buf[:k], base); err != nil {
			return err
		}
		base += uint64(k)
	}
}

// appendSink adapts a per-worker value buffer to the formats.Writer
// interface so the sequential kernel helpers can stage into it unchanged.
type appendSink struct{ vals []uint64 }

func (s *appendSink) Write(v []uint64) error {
	s.vals = append(s.vals, v...)
	return nil
}

func (s *appendSink) Close() (*columns.Column, error) {
	return columns.FromValues(s.vals), nil
}

// stitch writes the per-partition outputs in partition order through one
// writer, which therefore sees the same element stream as the sequential
// operator and produces a byte-identical column.
func stitch(desc columns.FormatDesc, sizeHint int, chunks [][]uint64) (*columns.Column, error) {
	w, err := formats.NewWriter(desc, sizeHint)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := w.Write(c); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// ParSelect is the morsel-parallel form of Select, splitting the input into
// at most par partitions. It falls back to the sequential operator when the
// input cannot or need not be split.
func ParSelect(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return Select(in, op, val, out, style)
	}
	return parSelect(in, parts, op, val, out, style)
}

// ParSelectAuto is the morsel-parallel form of SelectAuto: it parallelizes
// with the generic kernels when the input splits, and otherwise dispatches
// to the sequential auto operator (which may pick a specialized kernel).
func ParSelectAuto(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, specialized bool, par int) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return SelectAuto(in, op, val, out, style, specialized)
	}
	return parSelect(in, parts, op, val, out, style)
}

func parSelect(in *columns.Column, parts []formats.Partition, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	results := make([][]uint64, len(parts))
	err := runParts(parts, func(i int, pt formats.Partition) error {
		stage := make([]uint64, blockBuf)
		sink := &appendSink{vals: make([]uint64, 0, pt.Count/8+16)}
		if err := streamSection(in, pt, func(vals []uint64, base uint64) error {
			return selectOver(vals, base, op, val, style, stage, sink)
		}); err != nil {
			return err
		}
		results[i] = sink.vals
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel select: %w", err)
	}
	return stitch(positionDesc(out, in.N()), in.N(), results)
}

// ParSelectBetween is the morsel-parallel form of SelectBetween.
func ParSelectBetween(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return SelectBetween(in, lo, hi, out, style)
	}
	return parSelectBetween(in, parts, lo, hi, out, style)
}

// ParSelectBetweenAuto is the morsel-parallel form of SelectBetweenAuto.
func ParSelectBetweenAuto(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, specialized bool, par int) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return SelectBetweenAuto(in, lo, hi, out, style, specialized)
	}
	return parSelectBetween(in, parts, lo, hi, out, style)
}

func parSelectBetween(in *columns.Column, parts []formats.Partition, lo, hi uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	results := make([][]uint64, len(parts))
	err := runParts(parts, func(i int, pt formats.Partition) error {
		stage := make([]uint64, blockBuf)
		sink := &appendSink{vals: make([]uint64, 0, pt.Count/8+16)}
		if err := streamSection(in, pt, func(vals []uint64, base uint64) error {
			return betweenOver(vals, base, lo, hi, style, stage, sink)
		}); err != nil {
			return err
		}
		results[i] = sink.vals
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel select between: %w", err)
	}
	return stitch(positionDesc(out, in.N()), in.N(), results)
}

// ParProject is the morsel-parallel form of Project: the position list is
// partitioned and every worker gathers into its own disjoint range of one
// shared destination buffer (output offsets are known a priori because
// project emits exactly one value per position).
func ParProject(data, pos *columns.Column, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	if err := checkCols(data, pos); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(pos, par)
	if parts == nil {
		return Project(data, pos, out, style)
	}
	dst := make([]uint64, pos.N())
	vals, direct := data.Values()
	useVecGather := direct && style == vector.Vec512
	err := runParts(parts, func(_ int, pt formats.Partition) error {
		// Each worker gets its own accessor: the static BP accessor caches
		// the most recently decoded group and must not be shared. The vec
		// gather fast path reads the value slice directly instead.
		var ra formats.RandomAccessor
		if !useVecGather {
			var err error
			ra, err = formats.RandomAccess(data)
			if err != nil {
				return err
			}
		}
		off := pt.Start
		return streamSection(pos, pt, func(ps []uint64, _ uint64) error {
			for len(ps) > 0 {
				chunk := ps
				if len(chunk) > blockBuf {
					chunk = chunk[:blockBuf]
				}
				if err := checkPositions(chunk, data.N()); err != nil {
					return err
				}
				if useVecGather {
					gatherKernelVec(vals, chunk, dst[off:])
				} else {
					ra.Gather(dst[off:off+len(chunk)], chunk)
				}
				off += len(chunk)
				ps = ps[len(chunk):]
			}
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel project: %w", err)
	}
	return stitch(out, pos.N(), [][]uint64{dst})
}

// ParSemiJoin is the morsel-parallel form of SemiJoin: the build-side hash
// table is constructed once and probed read-only by all workers over
// partitions of the probe column.
func ParSemiJoin(probe, build *columns.Column, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	if err := checkCols(probe, build); err != nil {
		return nil, err
	}
	parts := formats.SplitColumn(probe, par)
	if parts == nil {
		return SemiJoin(probe, build, out, style)
	}
	ht, err := buildMembershipTable(build)
	if err != nil {
		return nil, err
	}
	results := make([][]uint64, len(parts))
	err = runParts(parts, func(i int, pt formats.Partition) error {
		local := make([]uint64, 0, pt.Count/8+16)
		if err := streamSection(probe, pt, func(vals []uint64, base uint64) error {
			for j, v := range vals {
				if _, ok := ht.get(v); ok {
					local = append(local, base+uint64(j))
				}
			}
			return nil
		}); err != nil {
			return err
		}
		results[i] = local
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel semijoin: %w", err)
	}
	return stitch(positionDesc(out, probe.N()), probe.N(), results)
}

// ParSum is the morsel-parallel form of SumWhole: per-partition partial sums
// combine by modular addition, which is order-independent, so the total is
// identical to the sequential result.
func ParSum(in *columns.Column, style vector.Style, par int) (uint64, *columns.Column, error) {
	if err := checkCols(in); err != nil {
		return 0, nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return SumWhole(in, style)
	}
	return parSum(in, parts, style)
}

// ParSumAuto is the morsel-parallel form of SumAuto.
func ParSumAuto(in *columns.Column, style vector.Style, specialized bool, par int) (uint64, *columns.Column, error) {
	if err := checkCols(in); err != nil {
		return 0, nil, err
	}
	parts := formats.SplitColumn(in, par)
	if parts == nil {
		return SumAuto(in, style, specialized)
	}
	return parSum(in, parts, style)
}

func parSum(in *columns.Column, parts []formats.Partition, style vector.Style) (uint64, *columns.Column, error) {
	partials := make([]uint64, len(parts))
	err := runParts(parts, func(i int, pt formats.Partition) error {
		var t uint64
		if err := streamSection(in, pt, func(vals []uint64, _ uint64) error {
			if style == vector.Vec512 {
				t += sumKernelVec(vals)
			} else {
				for _, v := range vals {
					t += v
				}
			}
			return nil
		}); err != nil {
			return err
		}
		partials[i] = t
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("ops: parallel sum: %w", err)
	}
	var total uint64
	for _, t := range partials {
		total += t
	}
	return total, columns.FromValues([]uint64{total}), nil
}
