package ops

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// This file implements morsel-parallel drivers around the streaming operator
// kernels: the input column is split into contiguous, block-aligned morsels
// (formats.SplitColumnMorsels), worker goroutines claim morsels dynamically
// from an atomic chunk-index work queue (so skewed selectivity cannot strand
// a worker on one expensive morsel while others idle), the existing
// format-oblivious kernels run per morsel, and the per-morsel outputs are
// stitched back together in morsel order through the parallel compressed
// stitch (StitchCompressed): block-aligned sections of the output stream are
// recompressed by the workers and concatenated block-granularly.
//
// Because morsels are contiguous and processed with their global element
// offset as the position base, position lists stay globally sorted, and the
// stitched column holds exactly the same element stream as the sequential
// operator — StitchCompressed guarantees the bytes match the sequential
// writer's, so the result is byte-identical to the sequential result for
// every output format at every parallelism degree. Columns whose format
// cannot be sliced (RLE), columns too small to split, and par <= 1 all fall
// back to the sequential operator.
//
// Every driver exists in two forms: a Runtime method (cancellation context +
// engine budget lease threaded through the morsel loop — the path the engine
// executes) and a legacy positional function wrapping FixedRT(par).

// workerCount bounds the worker-goroutine count for a task list.
func workerCount(par, tasks int) int {
	w := min(par, tasks)
	if w < 1 {
		w = 1
	}
	return w
}

// streamSection feeds the elements of one column partition through process in
// cache-resident chunks; base carries the global element offset so selective
// kernels emit globally correct positions.
func streamSection(col *columns.Column, pt formats.Partition, process func(vals []uint64, base uint64) error) error {
	r, err := formats.NewSectionReader(col, pt.Start, pt.Count)
	if err != nil {
		return err
	}
	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			return process(vals, uint64(pt.Start))
		}
	}
	buf := make([]uint64, blockBuf)
	base := uint64(pt.Start)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return err
		}
		if k == 0 {
			return nil
		}
		if err := process(buf[:k], base); err != nil {
			return err
		}
		base += uint64(k)
	}
}

// streamSections feeds one partition of two equally long columns through
// process in lockstep chunks (both sections cover the same element range
// [pt.Start, pt.Start+pt.Count), so chunk k of one column pairs with chunk k
// of the other); base carries the global element offset of each chunk.
func streamSections(a, b *columns.Column, pt formats.Partition, process func(va, vb []uint64, base uint64) error) error {
	ra, err := formats.NewSectionReader(a, pt.Start, pt.Count)
	if err != nil {
		return err
	}
	rb, err := formats.NewSectionReader(b, pt.Start, pt.Count)
	if err != nil {
		return err
	}
	return streamPaired(ra, rb, uint64(pt.Start), process)
}

// appendSink adapts a per-worker value buffer to the formats.Writer
// interface so the sequential kernel helpers can stage into it unchanged.
type appendSink struct{ vals []uint64 }

func (s *appendSink) Write(v []uint64) error {
	s.vals = append(s.vals, v...)
	return nil
}

func (s *appendSink) Close() (*columns.Column, error) {
	return columns.FromValues(s.vals), nil
}

// ParSelect is the morsel-parallel form of Select, splitting the input into
// work-queue morsels for up to par workers. It falls back to the sequential
// operator when the input cannot or need not be split.
func ParSelect(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).Select(in, op, val, out, style)
}

// Select is the runtime form of ParSelect.
func (rt Runtime) Select(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return Select(in, op, val, out, style)
	}
	return rt.parSelect(in, parts, op, val, out, style)
}

// ParSelectAuto is the morsel-parallel form of SelectAuto: when the input
// splits, it parallelizes with the specialized per-partition kernel if one
// covers the input (static BP SWAR select on packed word ranges) and the
// generic morsel kernels otherwise; unsplittable inputs dispatch to the
// sequential auto operator (which may itself pick a specialized kernel).
func ParSelectAuto(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, specialized bool, par int) (*columns.Column, error) {
	return FixedRT(par).SelectAuto(in, op, val, out, style, specialized)
}

// SelectAuto is the runtime form of ParSelectAuto.
func (rt Runtime) SelectAuto(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, specialized bool) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SelectAuto(in, op, val, out, style, specialized)
	}
	if specialized && parSwarOK(in, val) {
		return rt.parSelectSwar(in, parts, op, val, out)
	}
	return rt.parSelect(in, parts, op, val, out, style)
}

func (rt Runtime) parSelect(in *columns.Column, parts []formats.Partition, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	results := make([][]uint64, len(parts))
	stages := make([][]uint64, rt.workers(len(parts)))
	err := rt.runParts(parts, func(w, i int, pt formats.Partition) error {
		if stages[w] == nil {
			stages[w] = make([]uint64, blockBuf)
		}
		sink := &appendSink{vals: make([]uint64, 0, pt.Count/8+16)}
		if err := streamSection(in, pt, func(vals []uint64, base uint64) error {
			return selectOver(vals, base, op, val, style, stages[w], sink)
		}); err != nil {
			return err
		}
		results[i] = sink.vals
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel select: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, in.N()), in.N(), results)
}

// ParSelectBetween is the morsel-parallel form of SelectBetween.
func ParSelectBetween(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).SelectBetween(in, lo, hi, out, style)
}

// SelectBetween is the runtime form of ParSelectBetween.
func (rt Runtime) SelectBetween(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SelectBetween(in, lo, hi, out, style)
	}
	return rt.parSelectBetween(in, parts, lo, hi, out, style)
}

// ParSelectBetweenAuto is the morsel-parallel form of SelectBetweenAuto,
// honouring the specialized SWAR range kernel inside each partition when the
// input format admits it.
func ParSelectBetweenAuto(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, specialized bool, par int) (*columns.Column, error) {
	return FixedRT(par).SelectBetweenAuto(in, lo, hi, out, style, specialized)
}

// SelectBetweenAuto is the runtime form of ParSelectBetweenAuto.
func (rt Runtime) SelectBetweenAuto(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, specialized bool) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SelectBetweenAuto(in, lo, hi, out, style, specialized)
	}
	if specialized && parSwarOK(in, lo) {
		return rt.parSelectBetweenSwar(in, parts, lo, hi, out)
	}
	return rt.parSelectBetween(in, parts, lo, hi, out, style)
}

func (rt Runtime) parSelectBetween(in *columns.Column, parts []formats.Partition, lo, hi uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	results := make([][]uint64, len(parts))
	stages := make([][]uint64, rt.workers(len(parts)))
	err := rt.runParts(parts, func(w, i int, pt formats.Partition) error {
		if stages[w] == nil {
			stages[w] = make([]uint64, blockBuf)
		}
		sink := &appendSink{vals: make([]uint64, 0, pt.Count/8+16)}
		if err := streamSection(in, pt, func(vals []uint64, base uint64) error {
			return betweenOver(vals, base, lo, hi, style, stages[w], sink)
		}); err != nil {
			return err
		}
		results[i] = sink.vals
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel select between: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, in.N()), in.N(), results)
}

// ParProject is the morsel-parallel form of Project: the position list is
// partitioned and every worker gathers into its own disjoint range of one
// shared destination buffer (output offsets are known a priori because
// project emits exactly one value per position), which the parallel
// compressed stitch then recompresses section-wise.
func ParProject(data, pos *columns.Column, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).Project(data, pos, out, style)
}

// Project is the runtime form of ParProject.
func (rt Runtime) Project(data, pos *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(data, pos); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(pos, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return Project(data, pos, out, style)
	}
	dst := make([]uint64, pos.N())
	vals, direct := data.Values()
	useVecGather := direct && style == vector.Vec512
	// Each worker gets its own accessor, reused across the morsels it
	// claims: the static BP accessor caches the most recently decoded group
	// and must not be shared between goroutines. The vec gather fast path
	// reads the value slice directly instead.
	ras := make([]formats.RandomAccessor, rt.workers(len(parts)))
	err := rt.runParts(parts, func(w, _ int, pt formats.Partition) error {
		if !useVecGather && ras[w] == nil {
			var err error
			ras[w], err = formats.RandomAccess(data)
			if err != nil {
				return err
			}
		}
		off := pt.Start
		return streamSection(pos, pt, func(ps []uint64, _ uint64) error {
			for len(ps) > 0 {
				chunk := ps
				if len(chunk) > blockBuf {
					chunk = chunk[:blockBuf]
				}
				if err := checkPositions(chunk, data.N()); err != nil {
					return err
				}
				if useVecGather {
					gatherKernelVec(vals, chunk, dst[off:])
				} else {
					ras[w].Gather(dst[off:off+len(chunk)], chunk)
				}
				off += len(chunk)
				ps = ps[len(chunk):]
			}
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel project: %w", err)
	}
	return rt.stitchCompressed(out, pos.N(), [][]uint64{dst})
}

// ParSemiJoin is the morsel-parallel form of SemiJoin: the build-side hash
// table is constructed once and probed read-only by all workers over
// partitions of the probe column.
func ParSemiJoin(probe, build *columns.Column, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).SemiJoin(probe, build, out, style)
}

// SemiJoin is the runtime form of ParSemiJoin.
func (rt Runtime) SemiJoin(probe, build *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(probe, build); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	parts := formats.SplitColumnMorsels(probe, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SemiJoin(probe, build, out, style)
	}
	ht, err := buildMembershipTable(build)
	if err != nil {
		return nil, err
	}
	results := make([][]uint64, len(parts))
	err = rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		local := make([]uint64, 0, pt.Count/8+16)
		if err := streamSection(probe, pt, func(vals []uint64, base uint64) error {
			for j, v := range vals {
				if _, ok := ht.get(v); ok {
					local = append(local, base+uint64(j))
				}
			}
			return nil
		}); err != nil {
			return err
		}
		results[i] = local
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel semijoin: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, probe.N()), probe.N(), results)
}

// ParSum is the morsel-parallel form of SumWhole: per-partition partial sums
// combine by modular addition, which is order-independent, so the total is
// identical to the sequential result.
func ParSum(in *columns.Column, style vector.Style, par int) (uint64, *columns.Column, error) {
	return FixedRT(par).Sum(in, style)
}

// Sum is the runtime form of ParSum.
func (rt Runtime) Sum(in *columns.Column, style vector.Style) (uint64, *columns.Column, error) {
	if err := checkCols(in); err != nil {
		return 0, nil, err
	}
	if err := rt.Err(); err != nil {
		return 0, nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SumWhole(in, style)
	}
	return rt.parSum(in, parts, style)
}

// ParSumAuto is the morsel-parallel form of SumAuto: when the input splits
// and specialized operators are enabled, each partition sums directly on the
// compressed representation (SWAR over static BP word ranges, per-block
// accumulation over DynBP block ranges); the generic morsel kernels handle
// the rest.
func ParSumAuto(in *columns.Column, style vector.Style, specialized bool, par int) (uint64, *columns.Column, error) {
	return FixedRT(par).SumAuto(in, style, specialized)
}

// SumAuto is the runtime form of ParSumAuto.
func (rt Runtime) SumAuto(in *columns.Column, style vector.Style, specialized bool) (uint64, *columns.Column, error) {
	if err := checkCols(in); err != nil {
		return 0, nil, err
	}
	if err := rt.Err(); err != nil {
		return 0, nil, err
	}
	parts := formats.SplitColumnMorsels(in, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return SumAuto(in, style, specialized)
	}
	if specialized {
		switch in.Desc().Kind {
		case columns.StaticBP:
			if in.Desc().Bits > 0 {
				return rt.parSumStaticBPDirect(in, parts)
			}
		case columns.DynBP:
			return rt.parSumDynBPDirect(in, parts)
		}
	}
	return rt.parSum(in, parts, style)
}

// ParJoinN1 is the morsel-parallel form of JoinN1: the build-side hash table
// (key -> build position) is constructed once and probed read-only by all
// workers over partitions of the probe column. Each worker stages its two
// aligned position outputs (probe position, joined build position) in local
// buffers; both are stitched in partition order, so the dual outputs stay
// aligned row for row and byte-identical to the sequential join.
func ParJoinN1(probeKeys, buildKeys *columns.Column, outProbe, outBuild columns.FormatDesc, style vector.Style, par int) (probePos, buildPos *columns.Column, err error) {
	return FixedRT(par).JoinN1(probeKeys, buildKeys, outProbe, outBuild, style)
}

// JoinN1 is the runtime form of ParJoinN1.
func (rt Runtime) JoinN1(probeKeys, buildKeys *columns.Column, outProbe, outBuild columns.FormatDesc, style vector.Style) (probePos, buildPos *columns.Column, err error) {
	if err := checkCols(probeKeys, buildKeys); err != nil {
		return nil, nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, nil, err
	}
	parts := formats.SplitColumnMorsels(probeKeys, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return JoinN1(probeKeys, buildKeys, outProbe, outBuild, style)
	}
	ht, err := buildJoinTable(buildKeys)
	if err != nil {
		return nil, nil, err
	}
	resP := make([][]uint64, len(parts))
	resB := make([][]uint64, len(parts))
	err = rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		localP := make([]uint64, 0, pt.Count/8+16)
		localB := make([]uint64, 0, pt.Count/8+16)
		if err := streamSection(probeKeys, pt, func(vals []uint64, base uint64) error {
			for j, v := range vals {
				if b, ok := ht.get(v); ok {
					localP = append(localP, base+uint64(j))
					localB = append(localB, b)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		resP[i], resB[i] = localP, localB
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ops: parallel join: %w", err)
	}
	probePos, err = rt.stitchCompressed(positionDesc(outProbe, probeKeys.N()), probeKeys.N(), resP)
	if err != nil {
		return nil, nil, err
	}
	buildPos, err = rt.stitchCompressed(positionDesc(outBuild, buildKeys.N()), probeKeys.N(), resB)
	return probePos, buildPos, err
}

// ParCalcBinary is the morsel-parallel form of CalcBinary: both inputs are
// split at one set of shared block-aligned boundaries and streamed in
// lockstep per partition. Calc emits exactly one value per element, so every
// worker writes into its own disjoint range of one shared destination buffer,
// which the parallel compressed stitch recompresses section-wise.
func ParCalcBinary(op CalcKind, a, b *columns.Column, out columns.FormatDesc, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).CalcBinary(op, a, b, out, style)
}

// CalcBinary is the runtime form of ParCalcBinary.
func (rt Runtime) CalcBinary(op CalcKind, a, b *columns.Column, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	if a.N() != b.N() {
		return nil, fmt.Errorf("ops: calc: inputs have %d and %d elements", a.N(), b.N())
	}
	parts := formats.SplitColumnsAlignedMorsels(a, b, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return CalcBinary(op, a, b, out, style)
	}
	dst := make([]uint64, a.N())
	err := rt.runParts(parts, func(_, _ int, pt formats.Partition) error {
		return streamSections(a, b, pt, func(va, vb []uint64, base uint64) error {
			if style == vector.Vec512 {
				calcKernelVec(op, va, vb, dst[base:])
			} else {
				calcKernelScalar(op, va, vb, dst[base:])
			}
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel calc: %w", err)
	}
	return rt.stitchCompressed(out, a.N(), [][]uint64{dst})
}

// ParSumGrouped is the morsel-parallel form of SumGrouped: group ids and
// values are split at shared boundaries, every worker accumulates the
// morsels it claims into its own partial group-sum array of length nGroups,
// and one reducer merges the partials. Per-group addition modulo 2^64 is
// commutative and associative, so the merged sums equal the sequential ones
// exactly no matter which worker claimed which morsel, and the result column
// (always uncompressed) is byte-identical. Groupings with more groups than
// elements per worker fall back to the sequential operator (the per-worker
// arrays and the merge would dominate).
func ParSumGrouped(gids, vals *columns.Column, nGroups int, style vector.Style, par int) (*columns.Column, error) {
	return FixedRT(par).SumGrouped(gids, vals, nGroups, style)
}

// SumGrouped is the runtime form of ParSumGrouped.
func (rt Runtime) SumGrouped(gids, vals *columns.Column, nGroups int, style vector.Style) (*columns.Column, error) {
	if err := checkCols(gids, vals); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	if gids.N() != vals.N() {
		return nil, fmt.Errorf("ops: grouped sum: gids has %d elements, vals %d", gids.N(), vals.N())
	}
	if nGroups < 0 {
		return nil, fmt.Errorf("ops: grouped sum: negative group count %d", nGroups)
	}
	parts := formats.SplitColumnsAlignedMorsels(gids, vals, rt.Par())
	// Each worker zeroes and the reducer re-adds an nGroups-length array;
	// when groups are numerous relative to a worker's share of the elements
	// that overhead outweighs the parallelized scan, so high-cardinality
	// groupings run sequentially.
	workers := rt.workers(len(parts))
	if parts == nil || nGroups > gids.N()/workers {
		rt.seqFallback()
		return SumGrouped(gids, vals, nGroups, style)
	}
	partials := make([][]uint64, workers)
	err := rt.runParts(parts, func(w, _ int, pt formats.Partition) error {
		if partials[w] == nil {
			partials[w] = make([]uint64, nGroups)
		}
		return streamSections(gids, vals, pt, func(gs, vs []uint64, _ uint64) error {
			return sumGroupedChunk(partials[w], gs, vs, nGroups)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel grouped sum: %w", err)
	}
	sums := make([]uint64, nGroups)
	for _, local := range partials {
		for g, s := range local {
			sums[g] += s
		}
	}
	return columns.FromValues(sums), nil
}

func (rt Runtime) parSum(in *columns.Column, parts []formats.Partition, style vector.Style) (uint64, *columns.Column, error) {
	partials := make([]uint64, len(parts))
	err := rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		var t uint64
		if err := streamSection(in, pt, func(vals []uint64, _ uint64) error {
			if style == vector.Vec512 {
				t += sumKernelVec(vals)
			} else {
				for _, v := range vals {
					t += v
				}
			}
			return nil
		}); err != nil {
			return err
		}
		partials[i] = t
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("ops: parallel sum: %w", err)
	}
	var total uint64
	for _, t := range partials {
		total += t
	}
	return total, columns.FromValues([]uint64{total}), nil
}
