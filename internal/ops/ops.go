// Package ops implements MorphStore-Go's physical query operators with the
// paper's four degrees of compression integration (§3.2, Fig. 2):
//
//   - purely uncompressed: kernels run directly over uncompressed columns
//     (the zero-copy ValueViewer fast path),
//   - on-the-fly de/re-compression: the default; the paper's three-layer
//     architecture (Fig. 4) with a column layer (the exported operator
//     functions), a buffer layer (format Readers/Writers working at
//     Lx-cache-resident-block granularity), and a vector-register layer
//     (format-oblivious kernels, specialized per processing Style),
//   - specialized operators: direct processing of compressed data
//     (SWAR select/sum on static BP, per-block sums on DynBP, run-level
//     select/sum on RLE), in specialized.go,
//   - on-the-fly morphing: adapting a column's format before/after an
//     operator via internal/morph (driven by the engine in internal/core).
//
// The operator set follows MonetDB's headless-BAT style: every operator
// consumes and produces plain columns of unsigned 64-bit integers; selection
// results are sorted position lists, which are themselves ordinary columns
// and therefore compressible like any other intermediate (DP1).
package ops

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// blockBuf is the element capacity of the cache-resident working buffers:
// 2048 elements = 16 KiB, half of a typical 32 KiB L1 data cache, matching
// the paper's evaluation setup (§5).
const blockBuf = formats.BufferLen

// positionDesc refines a requested output format for a position list whose
// values are known a priori to be < n: an auto-width static BP output can
// then be packed streamingly at width bits(n-1) instead of buffering the
// whole column to find the maximum.
func positionDesc(out columns.FormatDesc, n int) columns.FormatDesc {
	if out.Kind == columns.StaticBP && out.Bits == 0 && n > 0 {
		out.Bits = uint8(bitutil.EffectiveBits(uint64(n - 1)))
	}
	return out
}

// errNilColumn guards the exported operators against nil inputs.
func checkCols(cs ...*columns.Column) error {
	for _, c := range cs {
		if c == nil {
			return fmt.Errorf("ops: nil input column")
		}
	}
	return nil
}

// pullReader adapts a block Reader for streaming consumers that need
// element-at-a-time access with lookahead (merge-style operators).
type pullReader struct {
	r   formats.Reader
	buf []uint64
	pos int
	n   int
	err error
}

func newPullReader(col *columns.Column) (*pullReader, error) {
	r, err := formats.NewReader(col)
	if err != nil {
		return nil, err
	}
	return &pullReader{r: r, buf: make([]uint64, blockBuf)}, nil
}

// fill loads the next block; it reports whether data is available.
func (p *pullReader) fill() bool {
	if p.err != nil {
		return false
	}
	p.n, p.err = p.r.Read(p.buf)
	p.pos = 0
	return p.n > 0 && p.err == nil
}

// peek returns the current element; ok is false at end of input or error.
func (p *pullReader) peek() (uint64, bool) {
	if p.pos >= p.n && !p.fill() {
		return 0, false
	}
	return p.buf[p.pos], true
}

// advance moves past the current element.
func (p *pullReader) advance() { p.pos++ }

// streamPaired drains two equal-length element streams in lockstep chunks
// and hands each aligned chunk pair to process; base carries the global
// element offset of the first chunk. It is shared by the sequential
// dual-input operators (calc, grouped sum) and the parallel section drivers,
// so the chunk pairing and its divergence check cannot drift between paths
// that must stay byte-identical.
func streamPaired(ra, rb formats.Reader, base uint64, process func(va, vb []uint64, base uint64) error) error {
	bufA := make([]uint64, blockBuf)
	bufB := make([]uint64, blockBuf)
	for {
		na, err := readFull(ra, bufA)
		if err != nil {
			return err
		}
		nb, err := readFull(rb, bufB[:min(len(bufB), max(na, 1))])
		if err != nil {
			return err
		}
		if na == 0 && nb == 0 {
			return nil
		}
		if na != nb {
			return fmt.Errorf("input columns diverge (%d vs %d elements)", na, nb)
		}
		if err := process(bufA[:na], bufB[:nb], base); err != nil {
			return err
		}
		base += uint64(na)
	}
}

// readAll fully decompresses a column (used for small build sides).
func readAll(col *columns.Column) ([]uint64, error) {
	if vals, ok := col.Values(); ok {
		return vals, nil
	}
	return formats.Decompress(col)
}
