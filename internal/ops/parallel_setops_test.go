package ops

import (
	"math/rand"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// sortedTestLists builds two sorted position-list-like inputs with partial
// overlap: a touches every 2nd position, b every 3rd, with a random jitter
// region so runs of misses alternate with dense matches.
func sortedTestLists(n int, seed int64) (a, b []uint64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if i%2 == 0 || rng.Intn(17) == 0 {
			a = append(a, uint64(i))
		}
		if i%3 == 0 || rng.Intn(13) == 0 {
			b = append(b, uint64(i))
		}
	}
	return a, b
}

// TestParallelSetOpsEquivalence is the cross-product equivalence check for
// the value-range-parallel sorted-set operators: every input format pair x
// output format x parallelism degree must reproduce the sequential
// intersection/union byte for byte.
func TestParallelSetOpsEquivalence(t *testing.T) {
	aVals, bVals := sortedTestLists(3*parTestN, 31)
	for _, aDesc := range formats.AllDescs() {
		ac, err := formats.Compress(aVals, aDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, bDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.DeltaBPDesc, columns.RLEDesc} {
			bc, err := formats.Compress(bVals, bDesc)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range formats.AllDescs() {
				ctx := aDesc.String() + "x" + bDesc.String() + "->" + outDesc.String()
				wantI, err := IntersectSorted(ac, bc, outDesc)
				if err != nil {
					t.Fatalf("intersect %s: %v", ctx, err)
				}
				wantM, err := MergeSorted(ac, bc, outDesc)
				if err != nil {
					t.Fatalf("merge %s: %v", ctx, err)
				}
				for _, par := range parLevels {
					gotI, err := ParIntersect(ac, bc, outDesc, par)
					if err != nil {
						t.Fatalf("par intersect %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "intersect "+ctx, wantI, gotI)
					gotM, err := ParMerge(ac, bc, outDesc, par)
					if err != nil {
						t.Fatalf("par merge %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "merge "+ctx, wantM, gotM)
				}
			}
		}
	}
}

// TestParallelSetOpsEdgeShapes pins the value-range split on the degenerate
// input shapes: empty sides, disjoint ranges (all of a below all of b),
// full overlap (a == b), duplicate-heavy runs crossing boundaries, and a
// second input much longer than the boundary-defining first input.
func TestParallelSetOpsEdgeShapes(t *testing.T) {
	n := 3 * parTestN
	asc := make([]uint64, n)
	for i := range asc {
		asc[i] = uint64(i)
	}
	shifted := make([]uint64, n)
	for i := range shifted {
		shifted[i] = uint64(i + n) // strictly above asc
	}
	dupes := make([]uint64, n)
	for i := range dupes {
		dupes[i] = uint64(i / 97) // runs of 97 equal values
	}
	dupesB := make([]uint64, n/2)
	for i := range dupesB {
		dupesB[i] = uint64(i / 13)
	}
	long := make([]uint64, 4*n)
	for i := range long {
		long[i] = uint64(i)
	}
	cases := []struct {
		name string
		a, b []uint64
	}{
		{"empty_b", asc, nil},
		{"empty_a", nil, asc},
		{"disjoint_below", asc, shifted},
		{"disjoint_above", shifted, asc},
		{"full_overlap", asc, asc},
		{"duplicate_runs", dupes, dupesB},
		{"dup_vs_self", dupes, dupes},
		{"short_a_long_b", asc[:2*formats.MinMorsel+5], long},
		{"long_a_short_b", long, asc[:3]},
	}
	for _, tc := range cases {
		ac := columns.FromValues(tc.a)
		bc := columns.FromValues(tc.b)
		for _, outDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.DeltaBPDesc, columns.RLEDesc} {
			wantI, err := IntersectSorted(ac, bc, outDesc)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			wantM, err := MergeSorted(ac, bc, outDesc)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			for _, par := range parLevels {
				gotI, err := ParIntersect(ac, bc, outDesc, par)
				if err != nil {
					t.Fatalf("%s p=%d: %v", tc.name, par, err)
				}
				assertSameColumn(t, tc.name+" intersect", wantI, gotI)
				gotM, err := ParMerge(ac, bc, outDesc, par)
				if err != nil {
					t.Fatalf("%s p=%d: %v", tc.name, par, err)
				}
				assertSameColumn(t, tc.name+" merge", wantM, gotM)
			}
		}
	}
}

// TestParallelSetOpsNilInput checks the nil-column guard on the parallel
// paths.
func TestParallelSetOpsNilInput(t *testing.T) {
	if _, err := ParIntersect(nil, nil, columns.UncomprDesc, 4); err == nil {
		t.Error("nil inputs must fail")
	}
	if _, err := ParMerge(nil, nil, columns.UncomprDesc, 4); err == nil {
		t.Error("nil inputs must fail")
	}
}
