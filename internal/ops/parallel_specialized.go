package ops

import (
	"fmt"
	"math/bits"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// This file wires the specialized direct operators (specialized.go) into the
// morsel-parallel drivers: the static BP SWAR kernels partition naturally at
// the 64-value packing-group granularity (any SWAR width divides 64, so a
// partition boundary is always a packed-word boundary), and the per-block
// DynBP sum partitions at block granularity. Each worker runs the direct
// kernel over the packed words of its own partition — no decompression —
// and the outputs merge exactly like the generic drivers': position lists
// stitch in partition order, partial sums add modulo 2^64.

// parSwarOK reports whether the per-partition SWAR select kernels cover the
// input column and predicate constant: a static BP column with a preset
// word-parallel width whose constant fits the packed fields. The degenerate
// cases the sequential direct operator rewrites (width 0, constant beyond
// the field range) produce the same position stream as the generic kernels,
// so the parallel dispatcher routes them to the generic morsel path instead.
func parSwarOK(in *columns.Column, val uint64) bool {
	b := uint(in.Desc().Bits)
	return in.Desc().Kind == columns.StaticBP && b > 0 &&
		bitutil.SwarWidthOK(b) && val <= bitutil.Mask(b)
}

// parSelectSwar evaluates the comparison predicate directly on the packed
// words of each partition of a static BP column (SelectStaticBPDirect per
// morsel) and stitches the per-partition position lists.
func (rt Runtime) parSelectSwar(in *columns.Column, parts []formats.Partition, op bitutil.CmpKind, val uint64, out columns.FormatDesc) (*columns.Column, error) {
	b := uint(in.Desc().Bits)
	yb := bitutil.Broadcast(val, b)
	results := make([][]uint64, len(parts))
	err := rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		results[i] = swarSelectSection(in, pt, func(word uint64) uint64 {
			return bitutil.CmpPackedWord(word, yb, b, op)
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel swar select: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, in.N()), in.N(), results)
}

// parSelectBetweenSwar is the range form of parSelectSwar, combining two
// SWAR comparison masks per packed word.
func (rt Runtime) parSelectBetweenSwar(in *columns.Column, parts []formats.Partition, lo, hi uint64, out columns.FormatDesc) (*columns.Column, error) {
	b := uint(in.Desc().Bits)
	// Values above the packable range can never match a width-b field.
	if hi > bitutil.Mask(b) {
		hi = bitutil.Mask(b)
	}
	ylo := bitutil.Broadcast(lo, b)
	yhi := bitutil.Broadcast(hi, b)
	results := make([][]uint64, len(parts))
	err := rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		results[i] = swarSelectSection(in, pt, func(word uint64) uint64 {
			return bitutil.CmpPackedWord(word, ylo, b, bitutil.CmpGe) &
				bitutil.CmpPackedWord(word, yhi, b, bitutil.CmpLe)
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel swar select between: %w", err)
	}
	return rt.stitchCompressed(positionDesc(out, in.N()), in.N(), results)
}

// swarSelectSection collects the positions whose field matches mask over the
// packed words covering one partition. Partition starts are multiples of 64
// elements, so they always coincide with a packed-word boundary.
func swarSelectSection(in *columns.Column, pt formats.Partition, mask func(word uint64) uint64) []uint64 {
	b := uint(in.Desc().Bits)
	per := int(64 / b)
	words := in.MainWords()
	end := pt.Start + pt.Count
	local := make([]uint64, 0, pt.Count/8+16)
	for wi := pt.Start / per; wi*per < end; wi++ {
		base := wi * per
		valid := end - base
		m := mask(words[wi])
		if valid < per {
			m &= (uint64(1) << uint(valid)) - 1
		}
		for ; m != 0; m &= m - 1 {
			local = append(local, uint64(base+bits.TrailingZeros64(m)))
		}
	}
	return local
}

// parSumStaticBPDirect sums each partition directly on its packed word range
// via the window-parallel SWAR accumulation (SumStaticBPDirect per morsel).
func (rt Runtime) parSumStaticBPDirect(in *columns.Column, parts []formats.Partition) (uint64, *columns.Column, error) {
	b := uint(in.Desc().Bits)
	words := in.MainWords()
	partials := make([]uint64, len(parts))
	err := rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		// pt.Start is a multiple of 64 elements, so the section's packed
		// words begin word-aligned at Start*b/64 and span exactly the words
		// holding its Count fields (the accumulation consumes whole words).
		startW := pt.Start * int(b) / 64
		endW := startW + bitutil.PackedWords(pt.Count, b)
		partials[i] = bitutil.SumPackedWords(words[startW:endW], pt.Count, b)
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("ops: parallel swar sum: %w", err)
	}
	var total uint64
	for _, t := range partials {
		total += t
	}
	return total, columns.FromValues([]uint64{total}), nil
}

// parSumDynBPDirect sums each partition of a DynBP column block by block
// directly on the packed payload words (SumDynBPDirect per morsel), plus the
// uncompressed remainder for the tail partition.
func (rt Runtime) parSumDynBPDirect(in *columns.Column, parts []formats.Partition) (uint64, *columns.Column, error) {
	words := in.MainWords()
	// One serial header walk (no payload is touched) positions every
	// partition's word cursor up front; partitions are block-aligned, so a
	// partition start never lands inside a block.
	offsets := make([]int, len(parts))
	w, e := 0, 0
	for i, pt := range parts {
		for ; e < pt.Start; e += formats.BlockLen {
			bw, err := dynBPHeaderWidth(words, w)
			if err != nil {
				return 0, nil, err
			}
			w += 1 + int(bw)*(formats.BlockLen/64)
		}
		offsets[i] = w
	}
	partials := make([]uint64, len(parts))
	err := rt.runParts(parts, func(_, i int, pt formats.Partition) error {
		w := offsets[i]
		var t uint64
		end := min(pt.Start+pt.Count, in.MainElems())
		for e := pt.Start; e < end; e += formats.BlockLen {
			bw, err := dynBPHeaderWidth(words, w)
			if err != nil {
				return err
			}
			w++
			pw := int(bw) * (formats.BlockLen / 64)
			if w+pw > len(words) {
				return fmt.Errorf("ops: %w: dyn BP payload beyond buffer", formats.ErrCorrupt)
			}
			t += bitutil.SumPackedWords(words[w:w+pw], formats.BlockLen, bw)
			w += pw
		}
		// The tail partition also covers the uncompressed remainder.
		if pt.Start+pt.Count > in.MainElems() {
			for _, v := range in.Remainder() {
				t += v
			}
		}
		partials[i] = t
		return nil
	})
	if err != nil {
		return 0, nil, fmt.Errorf("ops: parallel dyn BP sum: %w", err)
	}
	var total uint64
	for _, t := range partials {
		total += t
	}
	return total, columns.FromValues([]uint64{total}), nil
}

// dynBPHeaderWidth reads and validates the block width header at words[w].
func dynBPHeaderWidth(words []uint64, w int) (uint, error) {
	if w >= len(words) {
		return 0, fmt.Errorf("ops: %w: dyn BP header beyond buffer", formats.ErrCorrupt)
	}
	b := uint(words[w])
	if b > 64 {
		return 0, fmt.Errorf("ops: %w: dyn BP width %d", formats.ErrCorrupt, b)
	}
	return b, nil
}
