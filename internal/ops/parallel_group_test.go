package ops

import (
	"math/rand"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// groupTestKeys builds a key column with heavy repetition (realistic group
// cardinality), long runs (dictionary-coded dimension values arrive in runs)
// and a few late first occurrences, so canonical id assignment order and the
// per-worker first-occurrence minima are both exercised.
func groupTestKeys(n, card int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	i := 0
	for i < n {
		run := 1 + rng.Intn(7)
		v := uint64(rng.Intn(card))
		if rng.Intn(503) == 0 {
			v = uint64(card + rng.Intn(1<<20)) // rare late-first-occurrence key
		}
		for j := 0; j < run && i < n; j++ {
			keys[i] = v
			i++
		}
	}
	return keys
}

// TestParallelGroupFirstEquivalence is the cross-product equivalence check
// for the parallel grouping: every key format x gid output format x style x
// parallelism degree must reproduce both sequential output columns byte for
// byte (canonical first-occurrence id order included).
func TestParallelGroupFirstEquivalence(t *testing.T) {
	keyVals := groupTestKeys(parTestN, 300, 11)
	for _, keyDesc := range formats.AllDescs() {
		keys, err := formats.Compress(keyVals, keyDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, outDesc := range formats.AllDescs() {
			for _, style := range vector.Styles {
				ctx := keyDesc.String() + "->" + outDesc.String() + "/" + style.String()
				wantG, wantE, err := GroupFirst(keys, outDesc, columns.UncomprDesc, style)
				if err != nil {
					t.Fatalf("group %s: %v", ctx, err)
				}
				for _, par := range parLevels {
					gotG, gotE, err := ParGroupFirst(keys, outDesc, columns.UncomprDesc, style, par)
					if err != nil {
						t.Fatalf("par group %s p=%d: %v", ctx, par, err)
					}
					assertSameColumn(t, "group gids "+ctx, wantG, gotG)
					assertSameColumn(t, "group extents "+ctx, wantE, gotE)
				}
			}
		}
	}
}

// TestParallelGroupNextEquivalence checks the grouping refinement: for every
// previous-gid format x key format x output format x degree, the pair-keyed
// parallel refinement must match the sequential one byte for byte.
func TestParallelGroupNextEquivalence(t *testing.T) {
	keyVals1 := groupTestKeys(parTestN, 40, 21)
	keyVals2 := groupTestKeys(parTestN, 25, 22)
	keys1 := columns.FromValues(keyVals1)
	for _, keyDesc := range formats.AllDescs() {
		keys2, err := formats.Compress(keyVals2, keyDesc)
		if err != nil {
			t.Fatal(err)
		}
		for _, prevDesc := range formats.AllDescs() {
			// The previous gids come from a real first grouping so the
			// refinement sees the dense id distribution it gets in plans.
			gids1Ref, _, err := GroupFirst(keys1, prevDesc, columns.UncomprDesc, vector.Scalar)
			if err != nil {
				t.Fatal(err)
			}
			for _, outDesc := range []columns.FormatDesc{columns.UncomprDesc, columns.StaticBPDesc(0), columns.DynBPDesc, columns.RLEDesc} {
				for _, style := range vector.Styles {
					ctx := prevDesc.String() + "+" + keyDesc.String() + "->" + outDesc.String() + "/" + style.String()
					wantG, wantE, err := GroupNext(gids1Ref, keys2, outDesc, columns.DeltaBPDesc, style)
					if err != nil {
						t.Fatalf("group next %s: %v", ctx, err)
					}
					for _, par := range parLevels {
						gotG, gotE, err := ParGroupNext(gids1Ref, keys2, outDesc, columns.DeltaBPDesc, style, par)
						if err != nil {
							t.Fatalf("par group next %s p=%d: %v", ctx, par, err)
						}
						assertSameColumn(t, "group next gids "+ctx, wantG, gotG)
						assertSameColumn(t, "group next extents "+ctx, wantE, gotE)
					}
				}
			}
		}
	}
}

// TestParallelGroupFirstSkewed pins the deterministic merge under extreme
// key skew: a single giant group, all-distinct keys, and a column whose
// second half introduces only new keys (every worker's table differs).
func TestParallelGroupFirstSkewed(t *testing.T) {
	cases := map[string][]uint64{}
	constant := make([]uint64, parTestN)
	distinct := make([]uint64, parTestN)
	split := make([]uint64, parTestN)
	for i := range distinct {
		distinct[i] = uint64(parTestN - i) // distinct, descending first occurrences
		split[i] = uint64(i / (parTestN / 4))
	}
	cases["one_group"] = constant
	cases["all_distinct"] = distinct
	cases["quartile_blocks"] = split
	for name, vals := range cases {
		in := columns.FromValues(vals)
		wantG, wantE, err := GroupFirst(in, columns.DynBPDesc, columns.DeltaBPDesc, vector.Vec512)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, par := range parLevels {
			gotG, gotE, err := ParGroupFirst(in, columns.DynBPDesc, columns.DeltaBPDesc, vector.Vec512, par)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, par, err)
			}
			assertSameColumn(t, name+" gids", wantG, gotG)
			assertSameColumn(t, name+" extents", wantE, gotE)
		}
	}
}

// TestParallelGroupNextLengthMismatch checks that the parallel refinement
// rejects diverging inputs like the sequential one.
func TestParallelGroupNextLengthMismatch(t *testing.T) {
	a := columns.FromValues(make([]uint64, parTestN))
	b := columns.FromValues(make([]uint64, parTestN-1))
	for _, par := range parLevels {
		if _, _, err := ParGroupNext(a, b, columns.UncomprDesc, columns.UncomprDesc, vector.Scalar, par); err == nil {
			t.Fatalf("p=%d: diverging inputs must fail", par)
		}
	}
}
