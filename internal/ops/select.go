package ops

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// Select evaluates the predicate `element <op> val` over the input column and
// returns the sorted list of matching positions as a column in the requested
// output format. It is the on-the-fly de/re-compression operator of Fig. 4:
// the input is decompressed block-wise into a cache-resident buffer, the
// vector-register-layer kernel emits qualifying positions, and the output
// writer recompresses them block-wise.
func Select(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	r, err := formats.NewReader(in)
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)

	// Purely-uncompressed fast path: direct access to the whole column.
	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			if err := selectOver(vals, 0, op, val, style, stage, w); err != nil {
				return nil, err
			}
			return w.Close()
		}
	}

	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("ops: select: %w", err)
		}
		if k == 0 {
			break
		}
		if err := selectOver(buf[:k], base, op, val, style, stage, w); err != nil {
			return nil, err
		}
		base += uint64(k)
	}
	return w.Close()
}

// selectOver runs the select kernel over one uncompressed block, staging
// matching positions and writing them out in blockBuf-sized batches.
func selectOver(vals []uint64, base uint64, op bitutil.CmpKind, val uint64, style vector.Style, stage []uint64, w formats.Writer) error {
	for off := 0; off < len(vals); off += blockBuf {
		end := off + blockBuf
		if end > len(vals) {
			end = len(vals)
		}
		var k int
		if style == vector.Vec512 {
			k = selectKernelVec(vals[off:end], base+uint64(off), op, val, stage)
		} else {
			k = selectKernelScalar(vals[off:end], base+uint64(off), op, val, stage)
		}
		if err := w.Write(stage[:k]); err != nil {
			return err
		}
	}
	return nil
}

// selectKernelScalar is the scalar specialization of the select core.
func selectKernelScalar(vals []uint64, base uint64, op bitutil.CmpKind, val uint64, stage []uint64) int {
	k := 0
	switch op {
	case bitutil.CmpEq:
		for i, v := range vals {
			if v == val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	case bitutil.CmpNe:
		for i, v := range vals {
			if v != val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	case bitutil.CmpLt:
		for i, v := range vals {
			if v < val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	case bitutil.CmpLe:
		for i, v := range vals {
			if v <= val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	case bitutil.CmpGt:
		for i, v := range vals {
			if v > val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	case bitutil.CmpGe:
		for i, v := range vals {
			if v >= val {
				stage[k] = base + uint64(i)
				k++
			}
		}
	}
	return k
}

// vecCmp applies the comparison to two registers, producing a lane mask.
func vecCmp(a, b vector.Vec, op bitutil.CmpKind) vector.Mask {
	switch op {
	case bitutil.CmpEq:
		return vector.CmpEq(a, b)
	case bitutil.CmpNe:
		return vector.CmpNe(a, b)
	case bitutil.CmpLt:
		return vector.CmpLt(a, b)
	case bitutil.CmpLe:
		return vector.CmpLe(a, b)
	case bitutil.CmpGt:
		return vector.CmpGt(a, b)
	case bitutil.CmpGe:
		return vector.CmpGe(a, b)
	default:
		return 0
	}
}

// selectKernelVec is the Vec512 specialization: compare eight lanes at a
// time and compress-store the qualifying positions.
func selectKernelVec(vals []uint64, base uint64, op bitutil.CmpKind, val uint64, stage []uint64) int {
	bcast := vector.Set1(val)
	k := 0
	i := 0
	for ; i+vector.Lanes <= len(vals); i += vector.Lanes {
		v := vector.Load(vals[i:])
		m := vecCmp(v, bcast, op)
		if m != 0 {
			k += vector.CompressStore(stage[k:], m, vector.SeqFrom(base+uint64(i)))
		}
	}
	for ; i < len(vals); i++ {
		if op.Eval(vals[i], val) {
			stage[k] = base + uint64(i)
			k++
		}
	}
	return k
}

// SelectBetween evaluates the conjunctive range predicate
// lo <= element <= hi, returning matching positions like Select.
func SelectBetween(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	r, err := formats.NewReader(in)
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)

	if vv, ok := r.(formats.ValueViewer); ok {
		if vals, viewable := vv.View(); viewable {
			if err := betweenOver(vals, 0, lo, hi, style, stage, w); err != nil {
				return nil, err
			}
			return w.Close()
		}
	}

	buf := make([]uint64, blockBuf)
	base := uint64(0)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("ops: select between: %w", err)
		}
		if k == 0 {
			break
		}
		if err := betweenOver(buf[:k], base, lo, hi, style, stage, w); err != nil {
			return nil, err
		}
		base += uint64(k)
	}
	return w.Close()
}

func betweenOver(vals []uint64, base uint64, lo, hi uint64, style vector.Style, stage []uint64, w formats.Writer) error {
	for off := 0; off < len(vals); off += blockBuf {
		end := off + blockBuf
		if end > len(vals) {
			end = len(vals)
		}
		var k int
		if style == vector.Vec512 {
			k = betweenKernelVec(vals[off:end], base+uint64(off), lo, hi, stage)
		} else {
			k = betweenKernelScalar(vals[off:end], base+uint64(off), lo, hi, stage)
		}
		if err := w.Write(stage[:k]); err != nil {
			return err
		}
	}
	return nil
}

func betweenKernelScalar(vals []uint64, base uint64, lo, hi uint64, stage []uint64) int {
	k := 0
	// v-lo <= hi-lo is a single unsigned comparison for lo <= v <= hi.
	span := hi - lo
	for i, v := range vals {
		if v-lo <= span {
			stage[k] = base + uint64(i)
			k++
		}
	}
	return k
}

func betweenKernelVec(vals []uint64, base uint64, lo, hi uint64, stage []uint64) int {
	vlo := vector.Set1(lo)
	vspan := vector.Set1(hi - lo)
	k := 0
	i := 0
	for ; i+vector.Lanes <= len(vals); i += vector.Lanes {
		v := vector.Load(vals[i:])
		m := vector.CmpLe(vector.Sub(v, vlo), vspan)
		if m != 0 {
			k += vector.CompressStore(stage[k:], m, vector.SeqFrom(base+uint64(i)))
		}
	}
	span := hi - lo
	for ; i < len(vals); i++ {
		if vals[i]-lo <= span {
			stage[k] = base + uint64(i)
			k++
		}
	}
	return k
}
