package ops

import (
	"fmt"
	"math/bits"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// This file implements the "specialized operator" integration degree
// (Fig. 2c): operators that process compressed data directly, without
// decompressing into any buffer. They are format-specific by design and the
// engine employs them selectively (§3.2), falling back to the on-the-fly
// de/re-compression operators everywhere else.

// CanSelectDirect reports whether SelectStaticBPDirect supports the column:
// a static BP column whose width admits the word-parallel SWAR kernels.
func CanSelectDirect(in *columns.Column) bool {
	return in.Desc().Kind == columns.StaticBP &&
		(bitutil.SwarWidthOK(uint(in.Desc().Bits)) || in.Desc().Bits == 0)
}

// SelectStaticBPDirect evaluates a comparison predicate directly on the
// packed words of a static BP column using the SWAR kernels: 64/b fields
// are tested per word-level instruction sequence, in the spirit of
// BitWeaving/SIMD-Scan. The output positions are recompressed as usual.
func SelectStaticBPDirect(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if !CanSelectDirect(in) {
		return nil, fmt.Errorf("ops: direct select unsupported for %v", in.Desc())
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	b := uint(in.Desc().Bits)
	n := in.N()
	stage := make([]uint64, blockBuf+64)

	if b == 0 { // all-zero column: every element is 0
		if op.Eval(0, val) {
			k := 0
			for i := 0; i < n; i++ {
				stage[k] = uint64(i)
				k++
				if k == blockBuf {
					if err := w.Write(stage[:k]); err != nil {
						return nil, err
					}
					k = 0
				}
			}
			if err := w.Write(stage[:k]); err != nil {
				return nil, err
			}
		}
		return w.Close()
	}

	// A predicate constant wider than the packed width decides the result
	// for every field: fields are < 2^b <= val.
	if val > bitutil.Mask(b) {
		switch op {
		case bitutil.CmpLt, bitutil.CmpLe, bitutil.CmpNe:
			return Select(in, bitutil.CmpLe, bitutil.Mask(b), out, vector.Scalar) // all match
		default: // Eq, Gt, Ge: nothing matches
			return w.Close()
		}
	}

	per := int(64 / b)
	yb := bitutil.Broadcast(val, b)
	words := in.MainWords()
	k := 0
	for wi, word := range words {
		base := wi * per
		valid := n - base
		if valid <= 0 {
			break
		}
		m := bitutil.CmpPackedWord(word, yb, b, op)
		if valid < per {
			m &= (uint64(1) << uint(valid)) - 1
		}
		for ; m != 0; m &= m - 1 {
			stage[k] = uint64(base + bits.TrailingZeros64(m))
			k++
		}
		if k >= blockBuf {
			if err := w.Write(stage[:k]); err != nil {
				return nil, err
			}
			k = 0
		}
	}
	if err := w.Write(stage[:k]); err != nil {
		return nil, err
	}
	return w.Close()
}

// SelectBetweenStaticBPDirect evaluates lo <= element <= hi directly on the
// packed words by combining two SWAR comparison masks.
func SelectBetweenStaticBPDirect(in *columns.Column, lo, hi uint64, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	if !CanSelectDirect(in) {
		return nil, fmt.Errorf("ops: direct select unsupported for %v", in.Desc())
	}
	b := uint(in.Desc().Bits)
	if b == 0 {
		if lo == 0 { // all-zero column within [lo, hi] iff lo == 0
			return SelectBetween(in, lo, hi, out, vector.Scalar)
		}
		w, err := formats.NewWriter(out, 0)
		if err != nil {
			return nil, err
		}
		return w.Close()
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	n := in.N()
	per := int(64 / b)
	// Values above the packable range can never match a width-b field.
	maxv := bitutil.Mask(b)
	if lo > maxv {
		return w.Close()
	}
	if hi > maxv {
		hi = maxv
	}
	ylo := bitutil.Broadcast(lo, b)
	yhi := bitutil.Broadcast(hi, b)
	words := in.MainWords()
	stage := make([]uint64, blockBuf+64)
	k := 0
	for wi, word := range words {
		base := wi * per
		valid := n - base
		if valid <= 0 {
			break
		}
		m := bitutil.CmpPackedWord(word, ylo, b, bitutil.CmpGe) &
			bitutil.CmpPackedWord(word, yhi, b, bitutil.CmpLe)
		if valid < per {
			m &= (uint64(1) << uint(valid)) - 1
		}
		for ; m != 0; m &= m - 1 {
			stage[k] = uint64(base + bits.TrailingZeros64(m))
			k++
		}
		if k >= blockBuf {
			if err := w.Write(stage[:k]); err != nil {
				return nil, err
			}
			k = 0
		}
	}
	if err := w.Write(stage[:k]); err != nil {
		return nil, err
	}
	return w.Close()
}

// SumStaticBPDirect sums a static BP column directly on the packed words via
// window-parallel SWAR accumulation (the bit-parallel aggregation of Feng &
// Lo [25]).
func SumStaticBPDirect(in *columns.Column) (uint64, error) {
	if err := checkCols(in); err != nil {
		return 0, err
	}
	if in.Desc().Kind != columns.StaticBP {
		return 0, fmt.Errorf("ops: direct sum unsupported for %v", in.Desc())
	}
	return bitutil.SumPackedWords(in.MainWords(), in.N(), uint(in.Desc().Bits)), nil
}

// SumDynBPDirect sums a DynBP column block by block directly on the packed
// payload words, plus the uncompressed remainder.
func SumDynBPDirect(in *columns.Column) (uint64, error) {
	if err := checkCols(in); err != nil {
		return 0, err
	}
	if in.Desc().Kind != columns.DynBP {
		return 0, fmt.Errorf("ops: direct sum unsupported for %v", in.Desc())
	}
	words := in.MainWords()
	var total uint64
	w := 0
	for e := 0; e < in.MainElems(); e += formats.BlockLen {
		b, err := dynBPHeaderWidth(words, w)
		if err != nil {
			return 0, err
		}
		w++
		pw := int(b) * (formats.BlockLen / 64)
		if w+pw > len(words) {
			return 0, fmt.Errorf("ops: %w: dyn BP payload beyond buffer", formats.ErrCorrupt)
		}
		total += bitutil.SumPackedWords(words[w:w+pw], formats.BlockLen, b)
		w += pw
	}
	for _, v := range in.Remainder() {
		total += v
	}
	return total, nil
}

// SumRLEDirect sums an RLE column as the dot product of run values and run
// lengths, never touching individual elements (Abadi et al. [2]).
func SumRLEDirect(in *columns.Column) (uint64, error) {
	if err := checkCols(in); err != nil {
		return 0, err
	}
	runs, err := formats.RLERuns(in)
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, r := range runs {
		total += r.Value * r.Length
	}
	return total, nil
}

// SelectRLEDirect evaluates a comparison predicate run by run: a matching
// run of length l contributes l consecutive positions at once.
func SelectRLEDirect(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(in); err != nil {
		return nil, err
	}
	runs, err := formats.RLERuns(in)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(positionDesc(out, in.N()), in.N())
	if err != nil {
		return nil, err
	}
	stage := make([]uint64, blockBuf)
	k := 0
	pos := uint64(0)
	for _, r := range runs {
		if op.Eval(r.Value, val) {
			for i := uint64(0); i < r.Length; i++ {
				stage[k] = pos + i
				k++
				if k == blockBuf {
					if err := w.Write(stage[:k]); err != nil {
						return nil, err
					}
					k = 0
				}
			}
		}
		pos += r.Length
	}
	if err := w.Write(stage[:k]); err != nil {
		return nil, err
	}
	return w.Close()
}

// SumAuto dispatches a whole-column sum to the best available integration
// degree: a specialized direct operator when the input format has one (and
// specialized operators are enabled), the generic de/re-compression operator
// otherwise. This is the selective-employment policy of §3.3.
func SumAuto(in *columns.Column, style vector.Style, specialized bool) (uint64, *columns.Column, error) {
	if specialized {
		switch in.Desc().Kind {
		case columns.StaticBP:
			s, err := SumStaticBPDirect(in)
			if err != nil {
				return 0, nil, err
			}
			return s, columns.FromValues([]uint64{s}), nil
		case columns.DynBP:
			s, err := SumDynBPDirect(in)
			if err != nil {
				return 0, nil, err
			}
			return s, columns.FromValues([]uint64{s}), nil
		case columns.RLE:
			s, err := SumRLEDirect(in)
			if err != nil {
				return 0, nil, err
			}
			return s, columns.FromValues([]uint64{s}), nil
		}
	}
	return SumWhole(in, style)
}

// SelectAuto dispatches a comparison select like SumAuto: the SWAR direct
// operator for suitable static BP columns, run-level select for RLE, and the
// generic operator otherwise.
func SelectAuto(in *columns.Column, op bitutil.CmpKind, val uint64, out columns.FormatDesc, style vector.Style, specialized bool) (*columns.Column, error) {
	if specialized {
		switch {
		case CanSelectDirect(in):
			return SelectStaticBPDirect(in, op, val, out)
		case in.Desc().Kind == columns.RLE:
			return SelectRLEDirect(in, op, val, out)
		}
	}
	return Select(in, op, val, out, style)
}

// SelectBetweenAuto dispatches a range select to the SWAR direct operator
// when available.
func SelectBetweenAuto(in *columns.Column, lo, hi uint64, out columns.FormatDesc, style vector.Style, specialized bool) (*columns.Column, error) {
	if specialized && CanSelectDirect(in) {
		return SelectBetweenStaticBPDirect(in, lo, hi, out)
	}
	return SelectBetween(in, lo, hi, out, style)
}
