package ops

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"morphstore/internal/qerr"
)

// This file implements the runtime memory governor: an engine-wide byte
// budget that queries reserve against at admission (using their prepare-time
// estimate) and that intermediate-buffer allocation sites charge against at
// runtime. The governor turns memory pressure into back-pressure at the
// engine boundary — a query whose estimate does not fit waits for running
// queries to release their reservations, degrades to sequential execution,
// or is shed with a typed error — instead of letting concurrent queries
// over-allocate and OOM the process.
//
// Reservations are acquired once, before any query work starts, and released
// once, after the last intermediate is dropped; because no query ever waits
// for memory while holding memory, the governor cannot deadlock. Runtime
// charges (MemReservation.Charge) are pure accounting against the
// reservation: they record the actual bytes materialized so the
// estimate-vs-actual drift is observable per query (QueryStats.MemPeakBytes)
// and per engine, without adding a blocking point to the morsel hot path.

// MemGovernor is an engine-wide byte budget shared by every concurrently
// executing query. It is safe for concurrent use. A nil governor means no
// memory budget: every method no-ops and Reserve grants immediately.
type MemGovernor struct {
	mu       sync.Mutex
	cond     *sync.Cond
	total    int64
	reserved int64
	// lifetime counters, guarded by mu (snapshot via Counters)
	waits     int64
	waitNS    int64
	rejected  int64
	peakResvd int64
}

// NewMemGovernor returns a governor over a budget of total bytes; total <= 0
// returns nil (no budget), which every method accepts.
func NewMemGovernor(total int64) *MemGovernor {
	if total <= 0 {
		return nil
	}
	g := &MemGovernor{total: total}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Total returns the governor's byte budget (0 for a nil governor).
func (g *MemGovernor) Total() int64 {
	if g == nil {
		return 0
	}
	return g.total
}

// Reserved returns the bytes currently reserved by running queries. An idle
// governor reports zero; the leak checks of the chaos suite assert this.
func (g *MemGovernor) Reserved() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reserved
}

// MemCounters is a snapshot of a governor's lifetime accounting, folded into
// Engine.Stats.
type MemCounters struct {
	// Waits counts reservations that had to wait for bytes to free up.
	Waits int64
	// WaitNS is the summed wait time of those reservations in nanoseconds.
	WaitNS int64
	// Rejected counts reservations shed (wait expired or estimate over the
	// whole budget without degrade).
	Rejected int64
	// PeakReserved is the high-water mark of concurrently reserved bytes.
	PeakReserved int64
}

// Counters returns the governor's lifetime counters (zero for nil).
func (g *MemGovernor) Counters() MemCounters {
	if g == nil {
		return MemCounters{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return MemCounters{Waits: g.waits, WaitNS: g.waitNS, Rejected: g.rejected, PeakReserved: g.peakResvd}
}

// Reserve blocks until bytes can be reserved against the budget, or until
// ctx fires — then the reservation is shed with an error matching
// qerr.ErrAdmissionRejected (never qerr.ErrQueryCanceled: the query did no
// work). bytes larger than the whole budget can never be granted and is
// rejected immediately with qerr.ErrMemoryLimit; the caller chooses between
// shedding and degrading (see core's WithMemoryLimitDegrade path). A nil
// governor, or bytes <= 0, grants a tracking-only reservation immediately.
// waitNS, when non-nil, receives the nanoseconds spent waiting.
func (g *MemGovernor) Reserve(ctx context.Context, bytes int64, waitNS *int64) (*MemReservation, error) {
	if g == nil || bytes <= 0 {
		return &MemReservation{g: g}, nil
	}
	if bytes > g.total {
		g.mu.Lock()
		g.rejected++
		g.mu.Unlock()
		return nil, qerr.Tag(
			fmt.Errorf("ops: memory governor: estimate %d bytes exceeds the %d-byte engine budget", bytes, g.total),
			qerr.ErrMemoryLimit)
	}
	// A context expiry must wake the cond wait; AfterFunc broadcasts under
	// the governor mutex so the waiter re-checks ctx.Err.
	var stop func() bool
	if ctx != nil {
		stop = context.AfterFunc(ctx, func() {
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		defer stop()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	waited := false
	var start time.Time
	for g.reserved+bytes > g.total {
		if ctx != nil && ctx.Err() != nil {
			g.rejected++
			return nil, qerr.Tag(
				fmt.Errorf("ops: memory governor: wait for %d bytes expired: %w", bytes, ctx.Err()),
				qerr.ErrAdmissionRejected)
		}
		if !waited {
			waited = true
			g.waits++
			start = time.Now()
		}
		g.cond.Wait()
	}
	if waited {
		d := time.Since(start).Nanoseconds()
		g.waitNS += d
		if waitNS != nil {
			*waitNS = d
		}
	}
	g.reserved += bytes
	if g.reserved > g.peakResvd {
		g.peakResvd = g.reserved
	}
	return &MemReservation{g: g, bytes: bytes}, nil
}

// release returns a reservation's bytes to the budget and wakes waiters.
func (g *MemGovernor) release(bytes int64) {
	g.mu.Lock()
	g.reserved -= bytes
	g.cond.Broadcast()
	g.mu.Unlock()
}

// MemReservation is one query's registration with a MemGovernor: the
// estimate-sized byte reservation held for the query's lifetime, plus the
// running total of bytes actually charged by allocation sites. All methods
// are nil-receiver-safe no-ops, so execution paths call them unconditionally
// — an engine without a memory budget pays one nil check per charge site.
// A reservation with a nil governor (tracking-only) still accounts charges,
// so estimate-vs-actual drift stays observable without a budget.
type MemReservation struct {
	g        *MemGovernor
	bytes    int64
	charged  atomic.Int64
	released atomic.Bool
}

// Charge books bytes of intermediate-buffer allocation against the
// reservation. It never blocks: the reservation was sized at admission from
// the plan's conservative estimate, so runtime charges exceeding it indicate
// estimate drift (observable via Charged), not a budget violation to enforce
// mid-query — blocking inside the morsel loops could deadlock siblings.
func (r *MemReservation) Charge(bytes int) {
	if r == nil || bytes <= 0 {
		return
	}
	r.charged.Add(int64(bytes))
}

// Charged returns the bytes charged so far (the query's actual intermediate
// footprint; compare against the estimate for drift). Nil-safe.
func (r *MemReservation) Charged() int64 {
	if r == nil {
		return 0
	}
	return r.charged.Load()
}

// Reserved returns the reservation's size in bytes (0 when tracking-only).
func (r *MemReservation) Reserved() int64 {
	if r == nil {
		return 0
	}
	return r.bytes
}

// Release returns the reservation to the governor's budget and wakes
// queries waiting for memory. Idempotent and nil-safe; the execution layer
// defers it so every exit path — success, failure, panic — releases exactly
// once.
func (r *MemReservation) Release() {
	if r == nil || r.g == nil || r.bytes == 0 {
		return
	}
	if r.released.CompareAndSwap(false, true) {
		r.g.release(r.bytes)
	}
}
