package ops

import (
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// This file implements the value-range-parallel drivers of the sorted-set
// operators. Intersect/merge carry no state across elements other than the
// two cursors, so cutting BOTH inputs at one shared set of boundary values
// (formats.SplitSortedAligned: boundary values sampled from the first input,
// cut points located by galloping lower-bound searches) yields range pairs
// that can be processed independently: concatenating the per-range results
// in range order reproduces the sequential two-pointer merge exactly,
// duplicates included. The per-range outputs are finished through the
// parallel compressed stitch, so the result column is byte-identical to the
// sequential operator's at every parallelism level.
//
// Unlike the morsel drivers, the range cuts are value positions, not
// block-aligned element positions, so both inputs are materialized as value
// slices first (zero-copy for uncompressed inputs). That also makes the
// parallel path total over formats — RLE inputs, which cannot be
// morsel-split, still partition by value range.

// splitSortedInputs materializes both sorted inputs and cuts them at shared
// value boundaries; a nil pair list sends the caller to the sequential
// operator (par <= 1, or the first input too small to be worth splitting).
// The two decompressions run as concurrent budget-slot tasks (they are real
// work, so they count against the engine allowance, and decompressing them
// in parallel halves the serial tail ahead of the range kernels); the
// coarsest cancellation window of the sorted-set drivers is therefore one
// full-column decompress rather than one morsel.
func (rt Runtime) splitSortedInputs(a, b *columns.Column) ([]formats.RangePair, []uint64, []uint64, error) {
	// Intersection and union are symmetric in their operands, so the larger
	// input goes first: it drives the boundary sampling and the size gate,
	// and a tiny first operand cannot force a huge second one sequential.
	if a.N() < b.N() {
		a, b = b, a
	}
	if rt.Par() <= 1 || a.N() < 2*formats.MinMorsel {
		return nil, nil, nil, nil
	}
	cols := [2]*columns.Column{a, b}
	var vals [2][]uint64
	if err := rt.runTasks(2, func(_, i int) error {
		v, err := readAll(cols[i])
		vals[i] = v
		return err
	}); err != nil {
		return nil, nil, nil, err
	}
	return formats.SplitSortedAligned(vals[0], vals[1], rt.Par()), vals[0], vals[1], nil
}

// ParIntersect is the value-range-parallel form of IntersectSorted: both
// sorted inputs are split at shared value boundaries and the per-range
// intersections are concatenated in range order. The result is
// byte-identical to IntersectSorted at every par.
func ParIntersect(a, b *columns.Column, out columns.FormatDesc, par int) (*columns.Column, error) {
	return FixedRT(par).Intersect(a, b, out)
}

// Intersect is the runtime form of ParIntersect.
func (rt Runtime) Intersect(a, b *columns.Column, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	pairs, avals, bvals, err := rt.splitSortedInputs(a, b)
	if err != nil {
		return nil, err
	}
	if pairs == nil {
		if avals == nil {
			rt.seqFallback()
			return IntersectSorted(a, b, out)
		}
		// The inputs are already materialized but admit no value boundary
		// (e.g. one giant duplicate run); run the slice kernel whole rather
		// than decompressing a second time through the streamed operator.
		// The kernel is one serial pass, so the lease shrinks like every
		// other sequential fallback (the stitch of its output serializes
		// behind the shrunken lease, a minor loss next to the serial scan).
		rt.seqFallback()
		return rt.stitchCompressed(out, min(a.N(), b.N()), [][]uint64{intersectValues(avals, bvals)})
	}
	results := make([][]uint64, len(pairs))
	err = rt.runTasks(len(pairs), func(_, i int) error {
		p := pairs[i]
		results[i] = intersectValues(
			avals[p.A.Start:p.A.Start+p.A.Count],
			bvals[p.B.Start:p.B.Start+p.B.Count])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel intersect: %w", err)
	}
	return rt.stitchCompressed(out, min(a.N(), b.N()), results)
}

// ParMerge is the value-range-parallel form of MergeSorted.
func ParMerge(a, b *columns.Column, out columns.FormatDesc, par int) (*columns.Column, error) {
	return FixedRT(par).Merge(a, b, out)
}

// Merge is the runtime form of ParMerge.
func (rt Runtime) Merge(a, b *columns.Column, out columns.FormatDesc) (*columns.Column, error) {
	if err := checkCols(a, b); err != nil {
		return nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	pairs, avals, bvals, err := rt.splitSortedInputs(a, b)
	if err != nil {
		return nil, err
	}
	if pairs == nil {
		if avals == nil {
			rt.seqFallback()
			return MergeSorted(a, b, out)
		}
		rt.seqFallback()
		return rt.stitchCompressed(out, a.N()+b.N(), [][]uint64{mergeValues(avals, bvals)})
	}
	results := make([][]uint64, len(pairs))
	err = rt.runTasks(len(pairs), func(_, i int) error {
		p := pairs[i]
		results[i] = mergeValues(
			avals[p.A.Start:p.A.Start+p.A.Count],
			bvals[p.B.Start:p.B.Start+p.B.Count])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ops: parallel merge: %w", err)
	}
	return rt.stitchCompressed(out, a.N()+b.N(), results)
}

// intersectValues is the slice form of the IntersectSorted kernel; it must
// mirror the streamed operator element for element (including duplicate
// handling) so the concatenated ranges stay byte-identical.
func intersectValues(a, b []uint64) []uint64 {
	dst := make([]uint64, 0, min(len(a), len(b))/4+16)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// mergeValues is the slice form of the MergeSorted kernel (sorted union;
// an element present in both inputs is emitted once).
func mergeValues(a, b []uint64) []uint64 {
	dst := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i < len(a) && (j >= len(b) || a[i] < b[j]):
			dst = append(dst, a[i])
			i++
		case j < len(b) && (i >= len(a) || b[j] < a[i]):
			dst = append(dst, b[j])
			j++
		default: // equal
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
