package ops

import (
	"fmt"
	"sort"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// This file implements the morsel-parallel grouping drivers. Grouping is
// order-dependent — group ids are assigned in order of first key occurrence —
// so the drivers run in three phases:
//
//  1. Build (parallel): workers claim morsels from the atomic work queue and
//     hash every key into a per-worker group table, staging worker-local
//     group ids per morsel. Because the queue hands out morsels in ascending
//     index order, a worker meets its keys in ascending global position
//     order, so the first position it records per local group is the minimum
//     over all morsels that worker claimed.
//  2. Merge (sequential, deterministic): the per-worker tables are folded
//     into one global table keeping the minimum first-occurrence position per
//     distinct key — the minimum over the per-worker minima is the global
//     first occurrence, independent of which worker claimed which morsel.
//     Sorting the distinct keys by that position yields exactly the
//     sequential operator's id order and extents column.
//  3. Remap + stitch (parallel): each morsel's staged local ids are rewritten
//     through its worker's local-to-canonical map, and the rewritten id
//     stream is finished through the parallel compressed stitch — the result
//     columns are byte-identical to the sequential operator's at every
//     parallelism level.

// groupBuild accumulates one worker's grouping state: a hash table from key
// to worker-local group id plus, per local id, the key and its first global
// position seen by this worker.
type groupBuild struct {
	ht       *u64Map
	keys     []uint64
	firstPos []uint64
}

// pairBuild is the two-key (previous gid, key) form of groupBuild backing
// the GroupNext refinement.
type pairBuild struct {
	ht       *pairMap
	k1s, k2s []uint64
	firstPos []uint64
}

// mergeBuilds is the shared sequential merge phase of both grouping drivers:
// it folds the per-worker first-occurrence tables into canonical global ids.
// nLocal reports worker w's local-id count (0 for a worker that claimed
// nothing); firstPos returns the first position worker w recorded for local
// id lid; probe getOrPuts worker w's local id lid into the caller's global
// hash table with the given default entry index, returning the entry index
// and whether it was new. The global first occurrence of a key is the
// minimum over the per-worker minima — independent of which worker claimed
// which morsel — and sorting the entries by that position yields exactly the
// sequential operator's id order. Returns the extents (first-occurrence
// positions in canonical order) and, per worker, the local-id -> canonical
// global id remap table.
func mergeBuilds(workers int, nLocal func(w int) int, firstPos func(w, lid int) uint64, probe func(w, lid int, def uint64) (uint64, bool)) (ext []uint64, remaps [][]uint64) {
	// The merge has no error path of its own, so the fault point escalates
	// injected errors to panics; the engine's per-node recover guard reports
	// them as typed query errors.
	faultpoint.GroupMerge.MustHit()
	var pos []uint64 // minimum first-occurrence position per entry index
	remaps = make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		n := nLocal(w)
		if n == 0 {
			continue
		}
		remap := make([]uint64, n)
		for lid := 0; lid < n; lid++ {
			p := firstPos(w, lid)
			ei, inserted := probe(w, lid, uint64(len(pos)))
			if inserted {
				pos = append(pos, p)
			} else if p < pos[ei] {
				pos[ei] = p
			}
			remap[lid] = ei
		}
		remaps[w] = remap
	}
	// Canonical order: ascending first-occurrence position (positions are
	// unique, so the sort is a strict total order).
	perm := make([]int, len(pos))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return pos[perm[i]] < pos[perm[j]] })
	ext = make([]uint64, len(perm))
	rankOf := make([]uint64, len(perm))
	for r, ei := range perm {
		ext[r] = pos[ei]
		rankOf[ei] = uint64(r)
	}
	for _, remap := range remaps {
		for lid, ei := range remap {
			remap[lid] = rankOf[ei]
		}
	}
	return ext, remaps
}

// ParGroupFirst is the morsel-parallel form of GroupFirst: per-worker hash
// group tables, a deterministic merge assigning canonical global ids in
// first-occurrence order, and a remap pass rewriting the staged local ids.
// Both outputs are byte-identical to GroupFirst at every par.
func ParGroupFirst(keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style, par int) (gids, extents *columns.Column, err error) {
	return FixedRT(par).GroupFirst(keys, outGids, outExtents, style)
}

// GroupFirst is the runtime form of ParGroupFirst.
func (rt Runtime) GroupFirst(keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style) (gids, extents *columns.Column, err error) {
	if err := checkCols(keys); err != nil {
		return nil, nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, nil, err
	}
	parts := formats.SplitColumnMorsels(keys, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return GroupFirst(keys, outGids, outExtents, style)
	}

	// Phase 1: per-worker hash build over work-queue morsels.
	workers := rt.workers(len(parts))
	builds := make([]*groupBuild, workers)
	chunks := make([][]uint64, len(parts))
	morselWorker := make([]int, len(parts))
	err = rt.runParts(parts, func(w, i int, pt formats.Partition) error {
		b := builds[w]
		if b == nil {
			b = &groupBuild{ht: newU64Map(1024)}
			builds[w] = b
		}
		local := make([]uint64, 0, pt.Count)
		if err := streamSection(keys, pt, func(vals []uint64, base uint64) error {
			for j, v := range vals {
				lid, inserted := b.ht.getOrPut(v, uint64(len(b.keys)))
				if inserted {
					b.keys = append(b.keys, v)
					b.firstPos = append(b.firstPos, base+uint64(j))
				}
				local = append(local, lid)
			}
			return nil
		}); err != nil {
			return err
		}
		chunks[i] = local
		morselWorker[i] = w
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ops: parallel group: %w", err)
	}

	// Phase 2: deterministic merge into canonical first-occurrence order.
	gt := newU64Map(1024)
	ext, remaps := mergeBuilds(workers,
		func(w int) int {
			if builds[w] == nil {
				return 0
			}
			return len(builds[w].keys)
		},
		func(w, lid int) uint64 { return builds[w].firstPos[lid] },
		func(w, lid int, def uint64) (uint64, bool) { return gt.getOrPut(builds[w].keys[lid], def) })

	// Phase 3: rewrite the staged local ids and stitch.
	return rt.finishGroup(chunks, morselWorker, remaps, ext, keys.N(), outGids, outExtents)
}

// ParGroupNext is the morsel-parallel form of GroupNext, refining an
// existing grouping with an additional key column under the same
// build/merge/remap scheme keyed on (previous gid, key) pairs.
func ParGroupNext(prevGids, keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style, par int) (gids, extents *columns.Column, err error) {
	return FixedRT(par).GroupNext(prevGids, keys, outGids, outExtents, style)
}

// GroupNext is the runtime form of ParGroupNext.
func (rt Runtime) GroupNext(prevGids, keys *columns.Column, outGids, outExtents columns.FormatDesc, style vector.Style) (gids, extents *columns.Column, err error) {
	if err := checkCols(prevGids, keys); err != nil {
		return nil, nil, err
	}
	if err := rt.Err(); err != nil {
		return nil, nil, err
	}
	if prevGids.N() != keys.N() {
		return nil, nil, fmt.Errorf("ops: group: gid column has %d elements, keys %d", prevGids.N(), keys.N())
	}
	parts := formats.SplitColumnsAlignedMorsels(prevGids, keys, rt.Par())
	if parts == nil {
		rt.seqFallback()
		return GroupNext(prevGids, keys, outGids, outExtents, style)
	}

	workers := rt.workers(len(parts))
	builds := make([]*pairBuild, workers)
	chunks := make([][]uint64, len(parts))
	morselWorker := make([]int, len(parts))
	err = rt.runParts(parts, func(w, i int, pt formats.Partition) error {
		b := builds[w]
		if b == nil {
			b = &pairBuild{ht: newPairMap(1024)}
			builds[w] = b
		}
		local := make([]uint64, 0, pt.Count)
		if err := streamSections(prevGids, keys, pt, func(gs, ks []uint64, base uint64) error {
			// The parent-key mix is hoisted per run of equal parent gids;
			// the zero initialization is consistent (0*hashMul == 0).
			var lastG, lastMix uint64
			for j, g := range gs {
				if g != lastG {
					lastG, lastMix = g, g*hashMul
				}
				lid, inserted := b.ht.getOrPutMixed(lastMix, g, ks[j], uint64(len(b.k1s)))
				if inserted {
					b.k1s = append(b.k1s, g)
					b.k2s = append(b.k2s, ks[j])
					b.firstPos = append(b.firstPos, base+uint64(j))
				}
				local = append(local, lid)
			}
			return nil
		}); err != nil {
			return err
		}
		chunks[i] = local
		morselWorker[i] = w
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ops: parallel group: %w", err)
	}

	gt := newPairMap(1024)
	ext, remaps := mergeBuilds(workers,
		func(w int) int {
			if builds[w] == nil {
				return 0
			}
			return len(builds[w].k1s)
		},
		func(w, lid int) uint64 { return builds[w].firstPos[lid] },
		func(w, lid int, def uint64) (uint64, bool) {
			return gt.getOrPut(builds[w].k1s[lid], builds[w].k2s[lid], def)
		})

	return rt.finishGroup(chunks, morselWorker, remaps, ext, keys.N(), outGids, outExtents)
}

// finishGroup runs the remap pass (parallel, one task per staged morsel
// chunk) and materializes the canonical gid stream and extents in their
// output formats, matching the sequential writers byte for byte.
func (rt Runtime) finishGroup(chunks [][]uint64, morselWorker []int, remaps [][]uint64, ext []uint64, n int, outGids, outExtents columns.FormatDesc) (gids, extents *columns.Column, err error) {
	err = rt.runTasks(len(chunks), func(_, i int) error {
		remap := remaps[morselWorker[i]]
		chunk := chunks[i]
		for j, lid := range chunk {
			chunk[j] = remap[lid]
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ops: parallel group: %w", err)
	}
	gids, err = rt.stitchCompressed(outGids, n, chunks)
	if err != nil {
		return nil, nil, err
	}
	we, err := formats.NewWriter(outExtents, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := we.Write(ext); err != nil {
		return nil, nil, err
	}
	extents, err = we.Close()
	return gids, extents, err
}
