package ops

import (
	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
)

// This file implements the compressed stitch: materializing the logical
// concatenation of per-morsel output chunks as one column in the requested
// format. The old stitch pushed every element through one sequential writer —
// an Amdahl bottleneck that grew with selectivity and worker count. Now the
// output stream is cut at block boundaries of the target format, each section
// is compressed by a worker goroutine into a partial column (DeltaBP sections
// are seeded with their preceding stream element so their block bases match
// the monolithic encoding), and formats.ConcatCompressed splices the partial
// columns by whole-block copies. The only remaining sequential work is the
// final block-granular memcpy, so the stitched column stays byte-identical to
// the sequential operator's at a fraction of the serial cost.

// StitchCompressed compresses the logical concatenation of chunks into a
// column of the requested format, using up to par section-compression
// workers. It produces exactly the bytes a single formats.Writer consuming
// the chunks in order would (the sequential operators' output contract), and
// falls back to that single writer when the output is too small to cut, the
// format gains nothing from sectioning (uncompressed output is a single
// copy already), or par <= 1.
func StitchCompressed(desc columns.FormatDesc, sizeHint int, chunks [][]uint64, par int) (*columns.Column, error) {
	return FixedRT(par).stitchCompressed(desc, sizeHint, chunks)
}

// stitchCompressed is the runtime form of StitchCompressed, sharing the
// operator's budget lease and cancellation context with the section workers.
func (rt Runtime) stitchCompressed(desc columns.FormatDesc, sizeHint int, chunks [][]uint64) (*columns.Column, error) {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if rt.Par() > 1 && total >= 2*formats.MinMorsel && desc.Kind != columns.Uncompressed {
		col, done, err := rt.stitchParallel(desc, chunks, total)
		if done || err != nil {
			return col, err
		}
	}
	w, err := formats.NewWriter(desc, sizeHint)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := w.Write(c); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// stitchParallel is the sectioned path of stitchCompressed; done reports
// whether it applied (false sends the caller to the serial writer).
func (rt Runtime) stitchParallel(desc columns.FormatDesc, chunks [][]uint64, total int) (col *columns.Column, done bool, err error) {
	d := desc
	if d.Kind == columns.StaticBP && d.Bits == 0 {
		// The monolithic auto-width writer buffers the whole stream to derive
		// one global width; deriving it up front lets every section pack
		// streamingly at that width and concatenate by pure bit-copies.
		b, err := rt.maxBitsChunks(chunks)
		if err != nil {
			return nil, true, err
		}
		if b == 0 {
			return nil, false, nil // all-zero stream: zero-width column, serial is trivial
		}
		d.Bits = uint8(b)
	}
	align := formats.ConcatAlign(d.Kind)
	if align == 0 {
		return nil, false, nil
	}
	ranges := formats.SplitRange(total, rt.Par(), align)
	if ranges == nil {
		return nil, false, nil
	}
	parts := make([]*columns.Column, len(ranges))
	err = rt.runParts(ranges, func(_, i int, pt formats.Partition) error {
		if err := faultpoint.StitchSeam.Hit(); err != nil {
			return err
		}
		var prev uint64
		hasPrev := pt.Start > 0
		if hasPrev && d.Kind == columns.DeltaBP {
			prev = chunkElem(chunks, pt.Start-1)
		}
		w, err := formats.NewSectionWriter(d, pt.Count, prev, hasPrev)
		if err != nil {
			return err
		}
		if err := feedChunks(chunks, pt.Start, pt.Count, w.Write); err != nil {
			return err
		}
		c, err := w.Close()
		if err != nil {
			return err
		}
		// The section's compressed buffer is a transient intermediate beyond
		// the final column: charge it against the query's memory reservation
		// so the governor sees the stitch's real peak, not just the concat.
		rt.ChargeMem(c.PhysicalBytes())
		parts[i] = c
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	col, err = formats.ConcatCompressed(d, parts)
	return col, true, err
}

// maxBitsChunks returns the effective bit width of the widest element across
// all chunks, scanning concurrently. Large chunks are subdivided so the scan
// parallelizes even for the single-chunk streams ParProject and
// ParCalcBinary hand to the stitch. The scan runs under the runtime's guarded
// task loop: a cancelled or fault-injected scan reports its error instead of
// handing the section writers a silently underestimated width.
func (rt Runtime) maxBitsChunks(chunks [][]uint64) (uint, error) {
	var pieces [][]uint64
	for _, c := range chunks {
		for len(c) > 0 {
			k := min(len(c), formats.MinMorsel*morselScanFactor)
			pieces = append(pieces, c[:k])
			c = c[k:]
		}
	}
	maxes := make([]uint, len(pieces))
	err := rt.runTasks(len(pieces), func(_, i int) error {
		maxes[i] = bitutil.MaxBits(pieces[i])
		return nil
	})
	if err != nil {
		return 0, err
	}
	b := uint(0)
	for _, m := range maxes {
		b = max(b, m)
	}
	return b, nil
}

// morselScanFactor sizes the width-scan pieces: the scan touches one word
// per element (much cheaper than compression), so coarser pieces than the
// compression morsels keep the goroutine count low.
const morselScanFactor = 16

// chunkElem returns element i of the logical concatenation of chunks.
func chunkElem(chunks [][]uint64, i int) uint64 {
	for _, c := range chunks {
		if i < len(c) {
			return c[i]
		}
		i -= len(c)
	}
	panic("ops: chunk element index out of range")
}

// feedChunks passes the element range [start, start+count) of the logical
// concatenation of chunks to write as zero-copy sub-slices.
func feedChunks(chunks [][]uint64, start, count int, write func([]uint64) error) error {
	for _, c := range chunks {
		if count == 0 {
			return nil
		}
		if start >= len(c) {
			start -= len(c)
			continue
		}
		k := min(len(c)-start, count)
		if err := write(c[start : start+k]); err != nil {
			return err
		}
		start = 0
		count -= k
	}
	return nil
}
