// Package faultpoint provides named fault-injection sites for the chaos and
// robustness tests: fixed points on the engine's execution paths where a test
// can inject panics, errors, or delays without touching production logic.
//
// A disarmed point costs one atomic pointer load and a predictable branch —
// cheap enough to sit on the morsel hot path (msbench records the measured
// cost as the informational faultpoint/overhead metric). Arming installs a
// handler that runs at every hit; the handler may return an error (taken by
// paths with error plumbing), panic (exercising the panic-isolation layer),
// or sleep (widening race windows). Sites without an error path convert an
// injected error into a panic, which the runtime guards convert back into a
// typed *qerr.QueryError — so every injection surfaces as a typed failure.
//
// The package is intentionally dependency-free so any layer (formats, ops,
// core) can host a point without import cycles.
package faultpoint

import "sync/atomic"

// Point is one named injection site. Points are created at package init and
// live for the process lifetime; arming and hitting are safe for concurrent
// use.
type Point struct {
	name string
	fn   atomic.Pointer[func() error]
}

// The engine's injection sites, one per seam the fault-tolerance layer
// guards.
var (
	// MorselClaim fires when a worker claims a morsel/task from the
	// work-queue cursor, before the kernel runs.
	MorselClaim = newPoint("morsel-claim")
	// KernelBody fires inside the per-morsel kernel invocation.
	KernelBody = newPoint("kernel-body")
	// StitchSeam fires in each section worker of the parallel compressed
	// stitch, before the section is compressed.
	StitchSeam = newPoint("stitch-seam")
	// ConcatFixup fires at the head of ConcatCompressed, before the
	// per-format seam fixups splice the parts.
	ConcatFixup = newPoint("concat-fixup")
	// BudgetRedivide fires when an operator registers with the worker
	// budget, triggering a re-division of the allowance.
	BudgetRedivide = newPoint("budget-redivide")
	// GroupMerge fires in the sequential merge phase of the parallel
	// grouping operators, between the worker builds and the remap pass.
	GroupMerge = newPoint("group-merge")
	// AdmissionEnqueue fires when a query is about to park in the engine's
	// bounded admission queue (after the fast-path grant was unavailable,
	// before the waiter is enqueued).
	AdmissionEnqueue = newPoint("admission-enqueue")
	// CloseDrain fires at the head of Engine.Close, after admission stops
	// accepting new work and before the drain wait begins.
	CloseDrain = newPoint("close-drain")
	// AppendLog fires in a writable table's mutation path (Append/Delete),
	// after validation and before the journal record and delta state are
	// written — a failing hit leaves the table unchanged.
	AppendLog = newPoint("append-log")
	// DeltaMerge fires when a snapshot materializes the merged main+delta
	// view of one column (the first read of that column at that epoch).
	DeltaMerge = newPoint("delta-merge")
	// RemorphSwap fires after a background remorph rebuilt a table's columns
	// and before the new main is atomically published — a failing hit aborts
	// the swap and leaves the old state in place.
	RemorphSwap = newPoint("remorph-swap")
	// DictPersist fires in Dict.Add after translation and before the fresh
	// strings are journaled and the new snapshot is published — a failing hit
	// leaves the dictionary unchanged.
	DictPersist = newPoint("dict-persist")
	// DictLookupMiss fires on the slow path of Dict.Add: the first occurrence
	// of a string not yet in the dictionary, before an ID is assigned.
	DictLookupMiss = newPoint("dict-lookup-miss")
	// IngestBatch fires in ingest.Load once per decoded source batch, before
	// the batch is appended to the engine.
	IngestBatch = newPoint("ingest-batch")
)

var points = []*Point{MorselClaim, KernelBody, StitchSeam, ConcatFixup, BudgetRedivide, GroupMerge, AdmissionEnqueue, CloseDrain, AppendLog, DeltaMerge, RemorphSwap, DictPersist, DictLookupMiss, IngestBatch}

func newPoint(name string) *Point { return &Point{name: name} }

// Name returns the point's name.
func (p *Point) Name() string { return p.name }

// Hit runs the point's armed handler and returns its error; a disarmed point
// returns nil after a single atomic load.
func (p *Point) Hit() error {
	if fn := p.fn.Load(); fn != nil {
		return (*fn)()
	}
	return nil
}

// MustHit is Hit for call sites without an error path: an injected error is
// escalated to a panic (the runtime guards recover it into a typed error).
func (p *Point) MustHit() {
	if fn := p.fn.Load(); fn != nil {
		if err := (*fn)(); err != nil {
			panic(err)
		}
	}
}

// Armed reports whether a handler is installed.
func (p *Point) Armed() bool { return p.fn.Load() != nil }

// Arm installs fn to run at every hit of the point until Disarm. fn may be
// called from many goroutines at once and must be safe for concurrent use.
func (p *Point) Arm(fn func() error) { p.fn.Store(&fn) }

// Disarm removes the point's handler, restoring the zero-cost path.
func (p *Point) Disarm() { p.fn.Store(nil) }

// Points returns every injection site (for harnesses that arm all of them).
func Points() []*Point { return points }

// DisarmAll disarms every point; tests call it in cleanup so one harness
// cannot leak injections into the next.
func DisarmAll() {
	for _, p := range points {
		p.Disarm()
	}
}
