package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedPointIsFree(t *testing.T) {
	p := newPoint("test")
	if p.Armed() {
		t.Fatal("fresh point armed")
	}
	if err := p.Hit(); err != nil {
		t.Fatalf("disarmed Hit: %v", err)
	}
	p.MustHit() // must not panic
}

func TestArmDisarm(t *testing.T) {
	p := newPoint("test")
	want := errors.New("injected")
	p.Arm(func() error { return want })
	if !p.Armed() {
		t.Fatal("point not armed")
	}
	if err := p.Hit(); !errors.Is(err, want) {
		t.Fatalf("Hit: %v", err)
	}
	p.Disarm()
	if p.Armed() || p.Hit() != nil {
		t.Fatal("point still armed after Disarm")
	}
}

func TestMustHitEscalatesToPanic(t *testing.T) {
	p := newPoint("test")
	want := errors.New("injected")
	p.Arm(func() error { return want })
	defer func() {
		v := recover()
		if err, ok := v.(error); !ok || !errors.Is(err, want) {
			t.Fatalf("recovered %v", v)
		}
	}()
	p.MustHit()
	t.Fatal("MustHit did not panic")
}

func TestPointsAndDisarmAll(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Points() {
		names[p.Name()] = true
		p.Arm(func() error { return errors.New("x") })
	}
	for _, want := range []string{"morsel-claim", "kernel-body", "stitch-seam",
		"concat-fixup", "budget-redivide", "group-merge",
		"admission-enqueue", "close-drain"} {
		if !names[want] {
			t.Fatalf("missing point %q", want)
		}
	}
	DisarmAll()
	for _, p := range Points() {
		if p.Armed() {
			t.Fatalf("point %q armed after DisarmAll", p.Name())
		}
	}
}

func TestConcurrentArmHit(t *testing.T) {
	p := newPoint("test")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Arm(func() error { return nil })
				_ = p.Hit()
				p.Disarm()
			}
		}()
	}
	wg.Wait()
}
