// Package morph implements format morphing: changing the representation of a
// column from one lightweight compressed format to another (paper §3.2,
// "on-the-fly morphing", and Damme et al., "Direct transformation techniques
// for compressed data", ADBIS 2015).
//
// Morphing never materializes the whole column uncompressed in main memory.
// The generic path streams the column through a format Reader into a format
// Writer at Lx-cache-resident-block granularity; direct morph algorithms
// registered for specific format pairs shortcut even that, exploiting the
// source layout (e.g. reading only the block headers of DynBP to derive the
// static BP width).
package morph

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

// directMorph transforms col into the destination format, exploiting the
// concrete source and destination layouts.
type directMorph func(col *columns.Column, dst columns.FormatDesc) (*columns.Column, error)

type kindPair struct{ src, dst columns.Kind }

var direct = map[kindPair]directMorph{}

func registerDirect(src, dst columns.Kind, f directMorph) {
	direct[kindPair{src, dst}] = f
}

func init() {
	registerDirect(columns.DynBP, columns.StaticBP, morphDynBPToStaticBP)
	registerDirect(columns.RLE, columns.Uncompressed, morphRLEToUncompressed)
	registerDirect(columns.StaticBP, columns.DynBP, morphStaticBPToDynBP)
}

// Morph returns a column with the same logical content as col represented in
// the requested format. If the column already is in that format it is
// returned unchanged. A registered direct morph algorithm is preferred; the
// generic fallback streams block-wise through the format reader and writer.
func Morph(col *columns.Column, dst columns.FormatDesc) (*columns.Column, error) {
	src := col.Desc()
	if src.Kind == dst.Kind {
		if src.Kind != columns.StaticBP || dst.Bits == 0 || src.Bits == dst.Bits {
			return col, nil
		}
	}
	if f, ok := direct[kindPair{src.Kind, dst.Kind}]; ok {
		return f(col, dst)
	}
	return Generic(col, dst)
}

// Generic is the block-granular fallback morph: decompress through a Reader
// into a cache-resident buffer, recompress through a Writer. Exposed for the
// ablation benchmarks comparing it against the direct algorithms.
func Generic(col *columns.Column, dst columns.FormatDesc) (*columns.Column, error) {
	r, err := formats.NewReader(col)
	if err != nil {
		return nil, err
	}
	w, err := formats.NewWriter(dst, col.N())
	if err != nil {
		return nil, err
	}
	buf := make([]uint64, formats.BufferLen)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("morph %v -> %v: %w", col.Desc(), dst, err)
		}
		if k == 0 {
			break
		}
		if err := w.Write(buf[:k]); err != nil {
			return nil, fmt.Errorf("morph %v -> %v: %w", col.Desc(), dst, err)
		}
	}
	out, err := w.Close()
	if err != nil {
		return nil, fmt.Errorf("morph %v -> %v: %w", col.Desc(), dst, err)
	}
	return out, nil
}

// HasDirect reports whether a direct morph algorithm is registered for the
// ordered format pair.
func HasDirect(src, dst columns.Kind) bool {
	_, ok := direct[kindPair{src, dst}]
	return ok
}

// morphDynBPToStaticBP derives the global bit width from the DynBP block
// headers and the remainder without unpacking any payload, then repacks
// block by block.
func morphDynBPToStaticBP(col *columns.Column, dst columns.FormatDesc) (*columns.Column, error) {
	bits := uint(dst.Bits)
	if bits == 0 {
		words := col.MainWords()
		w := 0
		for e := 0; e < col.MainElems(); e += formats.BlockLen {
			if w >= len(words) {
				return nil, fmt.Errorf("morph: %w: dyn BP header beyond buffer", formats.ErrCorrupt)
			}
			b := uint(words[w])
			if b > 64 {
				return nil, fmt.Errorf("morph: %w: dyn BP width %d", formats.ErrCorrupt, b)
			}
			if b > bits {
				bits = b
			}
			w += 1 + int(b)*(formats.BlockLen/64)
		}
		if b := bitutil.MaxBits(col.Remainder()); b > bits {
			bits = b
		}
	}
	w, err := formats.NewWriter(columns.StaticBPDesc(bits), col.N())
	if err != nil {
		return nil, err
	}
	return pump(col, w)
}

// morphStaticBPToDynBP repacks 512-element groups; the source width bounds
// every block width, so the writer path is used directly (the gain over
// Generic is the absence of the remainder/alignment bookkeeping only;
// registered mainly to exercise the direct-morph machinery symmetrically).
func morphStaticBPToDynBP(col *columns.Column, _ columns.FormatDesc) (*columns.Column, error) {
	w, err := formats.NewWriter(columns.DynBPDesc, col.N())
	if err != nil {
		return nil, err
	}
	return pump(col, w)
}

// morphRLEToUncompressed expands runs straight into the output buffer.
func morphRLEToUncompressed(col *columns.Column, _ columns.FormatDesc) (*columns.Column, error) {
	runs, err := formats.RLERuns(col)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, col.N())
	for _, r := range runs {
		for i := uint64(0); i < r.Length; i++ {
			out = append(out, r.Value)
		}
	}
	if len(out) != col.N() {
		return nil, fmt.Errorf("morph: %w: RLE runs cover %d of %d elements", formats.ErrCorrupt, len(out), col.N())
	}
	return columns.FromValues(out), nil
}

// pump streams col through a prepared writer at block granularity.
func pump(col *columns.Column, w formats.Writer) (*columns.Column, error) {
	r, err := formats.NewReader(col)
	if err != nil {
		return nil, err
	}
	buf := make([]uint64, formats.BufferLen)
	for {
		k, err := r.Read(buf)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			break
		}
		if err := w.Write(buf[:k]); err != nil {
			return nil, err
		}
	}
	return w.Close()
}
