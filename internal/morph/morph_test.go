package morph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
)

func genData(kind string, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	switch kind {
	case "small":
		for i := range vals {
			vals[i] = uint64(rng.Intn(64))
		}
	case "sorted":
		acc := uint64(0)
		for i := range vals {
			acc += uint64(rng.Intn(100))
			vals[i] = acc
		}
	case "runs":
		v := uint64(3)
		for i := range vals {
			if rng.Float64() < 0.05 {
				v = uint64(rng.Intn(1000))
			}
			vals[i] = v
		}
	case "wide":
		for i := range vals {
			vals[i] = rng.Uint64()
		}
	}
	return vals
}

// TestMorphAllPairs checks every ordered pair of formats preserves content.
func TestMorphAllPairs(t *testing.T) {
	descs := formats.AllDescs()
	for _, n := range []int{0, 1, 511, 512, 1500, 4096} {
		for _, kind := range []string{"small", "sorted", "runs", "wide"} {
			vals := genData(kind, n, int64(n))
			for _, srcDesc := range descs {
				src, err := formats.Compress(vals, srcDesc)
				if err != nil {
					t.Fatal(err)
				}
				for _, dstDesc := range descs {
					got, err := Morph(src, dstDesc)
					if err != nil {
						t.Fatalf("%s n=%d %v->%v: %v", kind, n, srcDesc, dstDesc, err)
					}
					if got.Desc().Kind != dstDesc.Kind {
						t.Fatalf("%s n=%d %v->%v: result kind %v", kind, n, srcDesc, dstDesc, got.Desc())
					}
					dec, err := formats.Decompress(got)
					if err != nil {
						t.Fatalf("%s n=%d %v->%v: %v", kind, n, srcDesc, dstDesc, err)
					}
					for i := range vals {
						if dec[i] != vals[i] {
							t.Fatalf("%s n=%d %v->%v: elem %d = %d, want %d",
								kind, n, srcDesc, dstDesc, i, dec[i], vals[i])
						}
					}
				}
			}
		}
	}
}

// TestMorphIdentity verifies same-format morphs return the column unchanged.
func TestMorphIdentity(t *testing.T) {
	vals := genData("small", 1000, 9)
	for _, desc := range formats.AllDescs() {
		col, err := formats.Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Morph(col, desc)
		if err != nil {
			t.Fatal(err)
		}
		if got != col {
			t.Errorf("%v: identity morph should return the same column", desc)
		}
	}
}

// TestMorphStaticBPRewidth verifies a static BP column can be morphed to a
// different explicit width.
func TestMorphStaticBPRewidth(t *testing.T) {
	vals := genData("small", 1000, 10)
	col, err := formats.Compress(vals, columns.StaticBPDesc(0))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Morph(col, columns.StaticBPDesc(32))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Desc().Bits != 32 {
		t.Fatalf("bits = %d, want 32", wide.Desc().Bits)
	}
	dec, err := formats.Decompress(wide)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("elem %d mismatch", i)
		}
	}
}

// TestDirectEqualsGeneric verifies direct morph algorithms produce columns
// with identical logical content and physical size as the generic path.
func TestDirectEqualsGeneric(t *testing.T) {
	pairs := []struct {
		src, dst columns.FormatDesc
		data     string
	}{
		{columns.DynBPDesc, columns.StaticBPDesc(0), "small"},
		{columns.DynBPDesc, columns.StaticBPDesc(0), "wide"},
		{columns.StaticBPDesc(0), columns.DynBPDesc, "small"},
		{columns.RLEDesc, columns.UncomprDesc, "runs"},
	}
	for _, p := range pairs {
		if !HasDirect(p.src.Kind, p.dst.Kind) {
			t.Errorf("no direct morph registered for %v->%v", p.src, p.dst)
			continue
		}
		vals := genData(p.data, 3000, 42)
		src, err := formats.Compress(vals, p.src)
		if err != nil {
			t.Fatal(err)
		}
		viaDirect, err := Morph(src, p.dst)
		if err != nil {
			t.Fatal(err)
		}
		viaGeneric, err := Generic(src, p.dst)
		if err != nil {
			t.Fatal(err)
		}
		if viaDirect.PhysicalBytes() != viaGeneric.PhysicalBytes() {
			t.Errorf("%v->%v: direct %d B != generic %d B",
				p.src, p.dst, viaDirect.PhysicalBytes(), viaGeneric.PhysicalBytes())
		}
		a, _ := formats.Decompress(viaDirect)
		b, _ := formats.Decompress(viaGeneric)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v->%v: direct/generic diverge at %d", p.src, p.dst, i)
			}
		}
	}
}

// Property: morphing through a random chain of formats preserves content.
func TestMorphChainProperty(t *testing.T) {
	descs := formats.AllDescs()
	f := func(raw []uint64, hops []uint8) bool {
		if len(hops) > 6 {
			hops = hops[:6]
		}
		col, err := formats.Compress(raw, columns.UncomprDesc)
		if err != nil {
			return false
		}
		for _, h := range hops {
			col, err = Morph(col, descs[int(h)%len(descs)])
			if err != nil {
				return false
			}
		}
		dec, err := formats.Decompress(col)
		if err != nil {
			return false
		}
		for i := range raw {
			if dec[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMorphCorruptSource(t *testing.T) {
	vals := genData("small", 1024, 3)
	col, err := formats.Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	col.Words()[0] = 9999 // destroy the first block width
	if _, err := Morph(col, columns.StaticBPDesc(0)); err == nil {
		t.Error("morphing a corrupt column should fail")
	}
	if _, err := Morph(col, columns.UncomprDesc); err == nil {
		t.Error("generic morph of a corrupt column should fail")
	}
}
