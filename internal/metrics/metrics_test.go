package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// TestNilSafety exercises every NodeCollector method and Collector.Node on
// nil receivers: the detached mode the execution layers rely on.
func TestNilSafety(t *testing.T) {
	var c *Collector
	nc := c.Node(7)
	if nc != nil {
		t.Fatalf("nil collector Node returned %v, want nil", nc)
	}
	nc.Begin(42)
	if s := nc.Shards(4); s != nil {
		t.Fatalf("nil NodeCollector Shards returned %v, want nil", s)
	}
	nc.SeqFallback()
	nc.LeaseLimit(3)
	nc.Finish(10, []string{"uncompr"}, errors.New("ignored"))
}

// TestShardPadding pins the Shard layout at 64 bytes so two workers' slots
// never share a cache line.
func TestShardPadding(t *testing.T) {
	if sz := unsafe.Sizeof(Shard{}); sz != 64 {
		t.Fatalf("Shard is %d bytes, want 64 (cache-line padded)", sz)
	}
}

// TestCollectorLifecycle walks a two-node plan through the full collection
// protocol and checks the assembled tree.
func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector(2, nil)
	c.Define(0, "lo_price", "scan", nil)
	c.Define(1, "rev", "sum", []int{0})

	n0 := c.Node(0)
	n0.Begin(0)
	n0.Finish(1000, []string{"uncompr"}, nil)

	n1 := c.Node(1)
	n1.Begin(1000)
	n1.LeaseLimit(4)
	sh := n1.Shards(2)
	if len(sh) != 2 {
		t.Fatalf("Shards(2) returned %d slots", len(sh))
	}
	sh[0].Record(3 * time.Millisecond)
	sh[0].Record(2 * time.Millisecond)
	sh[1].Record(5 * time.Millisecond)
	n1.LeaseLimit(2)
	n1.Finish(1, []string{"uncompr"}, nil)

	qs := c.Finish(nil)
	if qs.Failed || qs.Err != "" {
		t.Fatalf("successful execution marked failed: %+v", qs)
	}
	if qs.Query == 0 {
		t.Fatalf("query id not assigned")
	}
	if qs.Wall <= 0 {
		t.Fatalf("wall time %v not positive", qs.Wall)
	}
	if len(qs.Nodes) != 2 {
		t.Fatalf("tree has %d nodes, want 2", len(qs.Nodes))
	}
	scan := qs.Nodes[0]
	if scan.Node != 0 || scan.Name != "lo_price" || scan.Op != "scan" {
		t.Fatalf("scan identity wrong: %+v", scan)
	}
	if !scan.Started || !scan.Done || scan.OutValues != 1000 {
		t.Fatalf("scan outcome wrong: %+v", scan)
	}
	agg := qs.Nodes[1]
	if agg.InValues != 1000 || agg.OutValues != 1 {
		t.Fatalf("agg cardinalities wrong: %+v", agg)
	}
	if agg.Morsels != 3 || agg.Kernel != 10*time.Millisecond {
		t.Fatalf("agg shard merge wrong: morsels=%d kernel=%v", agg.Morsels, agg.Kernel)
	}
	if agg.Workers != 2 {
		t.Fatalf("agg workers = %d, want 2", agg.Workers)
	}
	if len(agg.Inputs) != 1 || agg.Inputs[0] != 0 {
		t.Fatalf("agg inputs wrong: %v", agg.Inputs)
	}
	if want := []int{4, 2}; len(agg.LeaseLimits) != 2 || agg.LeaseLimits[0] != want[0] || agg.LeaseLimits[1] != want[1] {
		t.Fatalf("agg lease history = %v, want %v", agg.LeaseLimits, want)
	}
}

// TestShardsGrowAndAccumulate checks that successive morsel loops of one
// operator (kernel pass, then stitch) reuse and grow the shard slice and
// that Finish re-merges rather than double-counts.
func TestShardsGrowAndAccumulate(t *testing.T) {
	c := NewCollector(1, nil)
	c.Define(0, "v", "select", nil)
	nc := c.Node(0)
	nc.Begin(10)

	first := nc.Shards(2)
	first[0].Record(time.Millisecond)
	first[1].Record(time.Millisecond)

	second := nc.Shards(4) // wider second loop grows the slice
	if len(second) != 4 {
		t.Fatalf("Shards(4) returned %d slots", len(second))
	}
	if second[0].Morsels != 1 || second[1].Morsels != 1 {
		t.Fatalf("growth dropped the first loop's counts: %+v", second[:2])
	}
	second[3].Record(2 * time.Millisecond)

	if again := nc.Shards(1); len(again) != 4 {
		t.Fatalf("narrower loop shrank the shard slice to %d", len(again))
	}

	nc.Finish(5, nil, nil)
	qs := c.Finish(nil)
	ns := qs.Nodes[0]
	if ns.Morsels != 3 || ns.Kernel != 4*time.Millisecond {
		t.Fatalf("accumulated morsels=%d kernel=%v, want 3 and 4ms", ns.Morsels, ns.Kernel)
	}
	if ns.Workers != 4 {
		t.Fatalf("workers = %d, want the widest loop (4)", ns.Workers)
	}
}

// TestPartialTreeOnFailure checks the failure shape: the failing node keeps
// its error and loses Done, never-started nodes stay unstarted but labelled.
func TestPartialTreeOnFailure(t *testing.T) {
	c := NewCollector(3, nil)
	c.Define(0, "a", "scan", nil)
	c.Define(1, "b", "select", []int{0})
	c.Define(2, "c", "sum", []int{1})

	c.Node(0).Begin(0)
	c.Node(0).Finish(100, []string{"uncompr"}, nil)
	c.Node(1).Begin(100)
	c.Node(1).Finish(0, nil, errors.New("kernel exploded"))
	// node 2 never dispatched

	qs := c.Finish(errors.New("query failed: kernel exploded"))
	if !qs.Failed || !strings.Contains(qs.Err, "kernel exploded") {
		t.Fatalf("failure not recorded: %+v", qs)
	}
	if !qs.Nodes[0].Done {
		t.Fatalf("completed upstream node lost its Done flag")
	}
	bad := qs.Nodes[1]
	if !bad.Started || bad.Done || bad.Err != "kernel exploded" {
		t.Fatalf("failing node shape wrong: %+v", bad)
	}
	never := qs.Nodes[2]
	if never.Started || never.Done || never.Err != "" {
		t.Fatalf("never-started node shape wrong: %+v", never)
	}
	if never.Name != "c" || never.Op != "sum" {
		t.Fatalf("never-started node lost its Define labels: %+v", never)
	}
}

// TestQueryIDsDistinct checks executions draw distinct process-wide ids.
func TestQueryIDsDistinct(t *testing.T) {
	a := NewCollector(1, nil).Finish(nil)
	b := NewCollector(1, nil).Finish(nil)
	if a.Query == b.Query {
		t.Fatalf("two executions shared query id %d", a.Query)
	}
}

// TestJSONLTracer decodes every line the tracer writes for a traced node and
// checks types, ordering, monotonic offsets, and payloads.
func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	c := NewCollector(1, tr)
	c.Define(0, "v", "select", nil)
	nc := c.Node(0)
	nc.Begin(10)
	nc.LeaseLimit(2)
	nc.SeqFallback()
	nc.Finish(4, []string{"rle"}, nil)
	c.Finish(nil)
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	type line struct {
		T    string `json:"t"`
		AtNS int64  `json:"at_ns"`
		Span
		Event *Event     `json:"event"`
		Stats *NodeStats `json:"stats"`
	}
	var lines []line
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	wantT := []string{"begin", "event", "event", "end"}
	if len(lines) != len(wantT) {
		t.Fatalf("got %d lines, want %d", len(lines), len(wantT))
	}
	prev := int64(-1)
	for i, l := range lines {
		if l.T != wantT[i] {
			t.Fatalf("line %d type %q, want %q", i, l.T, wantT[i])
		}
		if l.Name != "v" || l.Op != "select" || l.Node != 0 {
			t.Fatalf("line %d span wrong: %+v", i, l.Span)
		}
		if l.AtNS < prev {
			t.Fatalf("line %d at_ns %d went backwards (prev %d)", i, l.AtNS, prev)
		}
		prev = l.AtNS
	}
	if ev := lines[1].Event; ev == nil || ev.Kind != EvLease || ev.Value != 2 {
		t.Fatalf("lease event wrong: %+v", lines[1].Event)
	}
	if ev := lines[2].Event; ev == nil || ev.Kind != EvSeqFallback {
		t.Fatalf("fallback event wrong: %+v", lines[2].Event)
	}
	st := lines[3].Stats
	if st == nil || !st.Done || st.OutValues != 4 || len(st.Formats) != 1 || st.Formats[0] != "rle" {
		t.Fatalf("end stats wrong: %+v", st)
	}
	if !st.SeqFallback || len(st.LeaseLimits) != 1 || st.LeaseLimits[0] != 2 {
		t.Fatalf("end stats lost fallback/lease history: %+v", st)
	}
}

// TestJSONLTracerErrRetained checks the first write error is kept.
func TestJSONLTracerErrRetained(t *testing.T) {
	tr := NewJSONLTracer(failWriter{})
	tr.Begin(Span{Query: 1}, time.Now())
	tr.Event(Span{Query: 1}, time.Now(), Event{Kind: EvLease, Value: 1})
	if err := tr.Err(); err == nil || err.Error() != "sink full" {
		t.Fatalf("Err() = %v, want the first write failure", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink full") }

// TestJSONLTracerConcurrent hammers one tracer from several goroutines under
// the race detector; output must stay one valid JSON object per line.
func TestJSONLTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	safe := &lockedBuffer{buf: &buf}
	tr := NewJSONLTracer(safe)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := Span{Query: uint64(g), Node: g, Name: "n", Op: "select"}
			for i := 0; i < 50; i++ {
				tr.Begin(s, time.Now())
				tr.Event(s, time.Now(), Event{Kind: EvLease, Value: int64(i)})
				tr.End(s, time.Now(), NodeStats{Node: g, Done: true})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("interleaved/corrupt line %d: %v", n, err)
		}
		n++
	}
	if want := 4 * 50 * 3; n != want {
		t.Fatalf("got %d lines, want %d", n, want)
	}
}

// lockedBuffer makes bytes.Buffer safe for the concurrent tracer test; the
// tracer serializes writes itself, but the race detector should prove that,
// not the sink. A plain buffer would make a tracer locking bug look like a
// sink bug, so the sink locks independently.
type lockedBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
