// Package metrics implements the query observability layer: a low-overhead
// per-execution stats collector (per-operator morsel timings, cardinalities,
// formats, budget lease history, assembled into a QueryStats tree mirroring
// the plan DAG) and the pluggable Tracer interface with a ready-made
// JSON-lines implementation.
//
// The design splits responsibilities by write frequency so the morsel hot
// path stays allocation- and lock-free:
//
//   - per morsel (hottest): a worker records one timing into its own Shard
//     of the operator's NodeCollector — plain stores into a cache-line
//     padded slot indexed by worker id, no locks or atomics;
//   - per operator: the execution layer Begins/Finishes one NodeCollector
//     per plan node on the node's own goroutine, merging the shards exactly
//     once at finish;
//   - per budget re-division: the lease observer appends the new limit under
//     the budget mutex, which already serializes re-divisions.
//
// Every NodeCollector method is safe on a nil receiver and returns
// immediately, so the execution layers call them unconditionally: a
// collector-detached execution pays only nil checks (the overhead budget is
// the same as a disarmed internal/faultpoint site, low single-digit
// nanoseconds; msbench records it in the "metrics" section and the
// regression gate bounds the attached cost as metrics_overhead).
//
// The package sits below internal/ops and internal/core, imports only the
// standard library, and is also imported by internal/qerr so a failed
// execution can attach its partial stats tree to the *qerr.QueryError.
package metrics

import (
	"sync/atomic"
	"time"
)

// QueryStats is the observed behavior of one Prepared.Execute call: a tree
// of per-operator NodeStats mirroring the plan DAG (indexed by plan node id,
// linked by NodeStats.Inputs), plus the execution's wall time and outcome.
// A failed or cancelled execution yields a coherent partial tree: every node
// is present, nodes that never ran have Started == false, the failing node
// carries Err.
type QueryStats struct {
	// Query is the engine-process-wide execution sequence number, shared
	// with every Span the same execution sent to its Tracer.
	Query uint64
	// Wall is the end-to-end execution time (admission wait excluded).
	Wall time.Duration
	// Failed reports whether the execution returned an error.
	Failed bool
	// Err is the execution's error text ("" on success).
	Err string
	// AdmissionWait is the time the execution spent parked in the engine's
	// admission queue and memory-governor wait before it started (0 on the
	// uncontended fast path).
	AdmissionWait time.Duration
	// MemEstimate is the intermediate-memory byte estimate the execution
	// reserved from the engine's memory governor (the prepare-time estimate,
	// clamped to the budget when the execution degraded; 0 without a
	// governor).
	MemEstimate int64
	// MemPeak is the peak intermediate bytes the execution actually
	// materialized, summed from the runtime charges of the operator and
	// stitch buffers.
	MemPeak int64
	// MemDegraded reports that the execution was pinned to sequential
	// processing because its estimate exceeded the engine's memory budget
	// (the WithMemoryBudget + WithMemoryLimitDegrade runtime path).
	MemDegraded bool
	// Nodes holds one entry per plan node, indexed by plan node id (the
	// plan's topological order).
	Nodes []NodeStats
}

// NodeStats is the observed behavior of one plan operator within one
// execution.
type NodeStats struct {
	// Node is the plan node id (the index of this entry in QueryStats.Nodes).
	Node int `json:"node"`
	// Name is the node's first output column name.
	Name string `json:"name"`
	// Op is the operator kind ("select", "join", "sum", ...).
	Op string `json:"op"`
	// Inputs lists the plan node ids this node consumed (its parents in the
	// stats tree); deduplicated, in input order.
	Inputs []int `json:"inputs,omitempty"`
	// Started reports whether the operator began running; a node of a failed
	// execution that was never dispatched has Started == false.
	Started bool `json:"started"`
	// Done reports whether the operator finished without error.
	Done bool `json:"done"`
	// Err is the operator's error text ("" unless this node failed).
	Err string `json:"err,omitempty"`
	// Wall is the operator's start-to-finish time on its own goroutine.
	Wall time.Duration `json:"wall_ns"`
	// Kernel is the time spent inside claimed morsels/tasks, summed over all
	// workers; under parallelism it exceeds the share of Wall spent in the
	// morsel loops.
	Kernel time.Duration `json:"kernel_ns"`
	// Morsels counts the morsels/tasks claimed from the operator's work
	// queues (kernel morsels and stitch/merge tasks alike).
	Morsels int64 `json:"morsels"`
	// Workers is the widest worker-goroutine count the operator ran with.
	Workers int `json:"workers"`
	// InValues is the total element count of the operator's inputs.
	InValues int64 `json:"in_values"`
	// OutValues is the total element count of the operator's outputs.
	OutValues int64 `json:"out_values"`
	// Formats names the format each output column materialized in.
	Formats []string `json:"formats,omitempty"`
	// SeqFallback reports that the operator fell back to sequential
	// execution (unsplittable input) and shrank its budget lease to one.
	SeqFallback bool `json:"seq_fallback,omitempty"`
	// LeaseLimits is the operator's budget lease history: the worker limit
	// after each re-division while the lease was open, in event order. The
	// first entry is the initial grant.
	LeaseLimits []int `json:"lease_limits,omitempty"`
}

// Shard is one worker's private morsel accounting slot. Shards are handed
// out by NodeCollector.Shards indexed by worker id, so recording needs no
// synchronization; the padding keeps two workers' slots off one cache line.
type Shard struct {
	// Morsels counts the morsels/tasks this worker completed.
	Morsels int64
	// KernelNS is the summed in-morsel time in nanoseconds.
	KernelNS int64
	_        [6]int64 // pad to 64 bytes against false sharing
}

// Record books one completed morsel/task of duration d.
func (s *Shard) Record(d time.Duration) {
	s.Morsels++
	s.KernelNS += int64(d)
}

// queryID numbers executions process-wide so trace spans of concurrent
// queries interleaved in one sink stay attributable.
var queryID atomic.Uint64

// ReserveQueryID draws the next process-wide execution number without
// building a collector. The execution layer reserves the id before admission
// so admission-wait and shed events trace under the same query number the
// collector later uses; pass it to NewCollectorFor.
func ReserveQueryID() uint64 { return queryID.Add(1) }

// Collector gathers one execution's QueryStats tree and forwards span
// events to the execution's Tracer. The zero collector count (a nil
// *Collector) is the detached mode: Node returns nil and every downstream
// call is a no-op.
type Collector struct {
	query  uint64
	tracer Tracer
	start  time.Time
	nodes  []NodeCollector
}

// NewCollector returns a collector for an execution of a plan with the given
// node count; tracer may be nil (stats only).
func NewCollector(nodes int, tracer Tracer) *Collector {
	return NewCollectorFor(ReserveQueryID(), nodes, tracer)
}

// NewCollectorFor is NewCollector under a query id the caller already
// reserved with ReserveQueryID (so pre-admission trace events and the
// collected stats share one number).
func NewCollectorFor(query uint64, nodes int, tracer Tracer) *Collector {
	c := &Collector{query: query, tracer: tracer, start: time.Now(), nodes: make([]NodeCollector, nodes)}
	for i := range c.nodes {
		c.nodes[i].c = c
		c.nodes[i].ns.Node = i
	}
	return c
}

// Define records a node's static identity (name, operator kind, input node
// ids) so even never-started nodes appear fully labelled in the tree.
func (c *Collector) Define(id int, name, op string, inputs []int) {
	ns := &c.nodes[id].ns
	ns.Name, ns.Op, ns.Inputs = name, op, inputs
	c.nodes[id].span = Span{Query: c.query, Node: id, Name: name, Op: op}
}

// Node returns the collector of one plan node; a nil collector returns nil,
// which every NodeCollector method accepts.
func (c *Collector) Node(id int) *NodeCollector {
	if c == nil {
		return nil
	}
	return &c.nodes[id]
}

// Finish assembles the execution's QueryStats snapshot. err is the
// execution's outcome (nil on success). It must be called after every node
// goroutine has returned.
func (c *Collector) Finish(err error) *QueryStats {
	qs := &QueryStats{Query: c.query, Wall: time.Since(c.start), Nodes: make([]NodeStats, len(c.nodes))}
	if err != nil {
		qs.Failed = true
		qs.Err = err.Error()
	}
	for i := range c.nodes {
		qs.Nodes[i] = c.nodes[i].ns
	}
	return qs
}

// NodeCollector gathers one operator's NodeStats within one execution. The
// execution layer calls Begin/Finish on the node's goroutine; the morsel
// runtime records into per-worker Shards between them; the budget calls
// LeaseLimit under its own mutex, which also orders those appends before
// Finish (the lease closes, under the same mutex, first). All methods are
// nil-receiver-safe no-ops so detached execution needs no branches at the
// call sites beyond the receiver nil check they compile to.
type NodeCollector struct {
	c      *Collector
	span   Span
	start  time.Time
	shards []Shard
	ns     NodeStats
}

// Begin marks the operator started, records its input cardinality, and
// emits the tracer span begin.
func (nc *NodeCollector) Begin(inValues int64) {
	if nc == nil {
		return
	}
	nc.start = time.Now()
	nc.ns.Started = true
	nc.ns.InValues = inValues
	if t := nc.c.tracer; t != nil {
		t.Begin(nc.span, nc.start)
	}
}

// Shards returns at least n per-worker accounting slots for a morsel loop
// about to run with n workers. Successive loops of the same operator (a
// driver's kernel pass, then its stitch) reuse the same slots, so the
// node's counts accumulate. Must be called before the workers start (it may
// grow the slice); a nil receiver returns nil, the detached marker the
// runtime checks per morsel.
func (nc *NodeCollector) Shards(n int) []Shard {
	if nc == nil {
		return nil
	}
	for len(nc.shards) < n {
		nc.shards = append(nc.shards, Shard{})
	}
	if n > nc.ns.Workers {
		nc.ns.Workers = n
	}
	return nc.shards
}

// SeqFallback records that the operator fell back to sequential execution
// and emits a tracer event.
func (nc *NodeCollector) SeqFallback() {
	if nc == nil {
		return
	}
	nc.ns.SeqFallback = true
	nc.event(Event{Kind: EvSeqFallback, Value: 1})
}

// LeaseLimit appends one budget re-division outcome to the node's lease
// history and emits a tracer event. The budget calls it with its mutex
// held, so implementations attached as tracers must not call back into the
// budget.
func (nc *NodeCollector) LeaseLimit(limit int) {
	if nc == nil {
		return
	}
	nc.ns.LeaseLimits = append(nc.ns.LeaseLimits, limit)
	nc.event(Event{Kind: EvLease, Value: int64(limit)})
}

// Finish merges the per-worker shards, stamps the outputs and outcome, and
// emits the tracer span end. It runs on the node's goroutine after the
// morsel loops returned and the lease closed, on success and failure alike
// — a panicking node still leaves a coherent partial entry.
func (nc *NodeCollector) Finish(outValues int64, formats []string, err error) {
	if nc == nil {
		return
	}
	nc.ns.Wall = time.Since(nc.start)
	nc.ns.Morsels, nc.ns.Kernel = 0, 0
	for i := range nc.shards {
		nc.ns.Morsels += nc.shards[i].Morsels
		nc.ns.Kernel += time.Duration(nc.shards[i].KernelNS)
	}
	if err != nil {
		nc.ns.Err = err.Error()
	} else {
		nc.ns.Done = true
		nc.ns.OutValues = outValues
		nc.ns.Formats = formats
	}
	if t := nc.c.tracer; t != nil {
		t.End(nc.span, time.Now(), nc.ns)
	}
}

// event forwards one node-scoped event to the tracer.
func (nc *NodeCollector) event(ev Event) {
	if t := nc.c.tracer; t != nil {
		t.Event(nc.span, time.Now(), ev)
	}
}
