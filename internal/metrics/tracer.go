package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted through Tracer.Event.
const (
	// EvLease is a budget re-division outcome; Value is the node's new
	// worker limit.
	EvLease = "lease"
	// EvSeqFallback marks a fallback to sequential execution; Value is 1.
	EvSeqFallback = "seq_fallback"
	// EvAdmissionWait reports a query that parked at the engine's admission
	// layer (bounded queue or memory governor) and was eventually admitted;
	// Value is the wait in nanoseconds. Emitted on the query-level span
	// (Node == -1, Op == "admission").
	EvAdmissionWait = "admission_wait"
	// EvAdmissionShed reports a query rejected by the admission layer
	// (queue overflow, wait expiry, or closed engine) before it started;
	// Value is the wait in nanoseconds (0 for immediate sheds). Emitted on
	// the query-level span.
	EvAdmissionShed = "admission_shed"
	// EvMemReserve reports the bytes a query reserved from the engine's
	// memory governor at admission; Value is the reservation size. Emitted
	// on the query-level span.
	EvMemReserve = "mem_reserve"
	// EvRemorphSwap reports a completed background remorph: a writable
	// table's delta was folded into a freshly compressed main and atomically
	// swapped in; Value is the folded row count (tail rows + deletions).
	// Emitted on a table-level pseudo-span (Node == -1, Op == "remorph",
	// Name == the table).
	EvRemorphSwap = "remorph_swap"
)

// Span identifies one operator of one execution in a trace stream. The
// engine's admission layer emits query-level events under a pseudo-span with
// Node == -1 and Op == "admission" — those events precede every operator
// span of the same Query.
type Span struct {
	// Query is the execution sequence number (QueryStats.Query).
	Query uint64 `json:"query"`
	// Node is the plan node id.
	Node int `json:"node"`
	// Name is the node's first output column name.
	Name string `json:"name"`
	// Op is the operator kind.
	Op string `json:"op"`
}

// Event is a point-in-time occurrence within a span (see the Ev* kinds).
type Event struct {
	// Kind names the event (EvLease, EvSeqFallback, EvAdmissionWait,
	// EvAdmissionShed, EvMemReserve, EvRemorphSwap).
	Kind string `json:"kind"`
	// Value is the event's payload (e.g. the new lease limit).
	Value int64 `json:"value"`
}

// Tracer receives live span and event callbacks during execution.
// Implementations must be safe for concurrent use: operators of one query
// run in parallel, and one tracer may serve many queries at once. Callbacks
// sit on the per-operator (not per-morsel) path, but a slow tracer still
// slows queries down; Event may be called with the budget mutex held, so
// tracers must never call back into the engine or budget.
type Tracer interface {
	// Begin opens a span: the operator started at time at.
	Begin(s Span, at time.Time)
	// End closes a span with the operator's final stats snapshot.
	End(s Span, at time.Time, ns NodeStats)
	// Event reports a point event within an open span.
	Event(s Span, at time.Time, ev Event)
}

// JSONLTracer is a Tracer that appends one JSON object per callback to a
// writer — the format cmd/msbench -trace writes and docs/OBSERVABILITY.md
// documents. Lines carry a monotonic at_ns offset from tracer creation, so
// spans from concurrent queries in one file order and diff cleanly. A mutex
// serializes writes; it is safe for concurrent use.
type JSONLTracer struct {
	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
	err   error
}

// traceLine is the JSONL wire format: a record type tag, the monotonic
// offset, the span, and — depending on the type — the event or the final
// node stats.
type traceLine struct {
	T    string `json:"t"` // "begin" | "end" | "event"
	AtNS int64  `json:"at_ns"`
	Span
	Event *Event     `json:"event,omitempty"`
	Stats *NodeStats `json:"stats,omitempty"`
}

// NewJSONLTracer returns a JSONL tracer writing to w. The caller owns w and
// closes it after the last traced execution finished; Err reports the first
// write failure.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w), epoch: time.Now()}
}

// Begin writes a span-begin line.
func (t *JSONLTracer) Begin(s Span, at time.Time) {
	t.write(traceLine{T: "begin", AtNS: int64(at.Sub(t.epoch)), Span: s})
}

// End writes a span-end line carrying the operator's final stats.
func (t *JSONLTracer) End(s Span, at time.Time, ns NodeStats) {
	t.write(traceLine{T: "end", AtNS: int64(at.Sub(t.epoch)), Span: s, Stats: &ns})
}

// Event writes a point-event line.
func (t *JSONLTracer) Event(s Span, at time.Time, ev Event) {
	t.write(traceLine{T: "event", AtNS: int64(at.Sub(t.epoch)), Span: s, Event: &ev})
}

// Err returns the first write error, or nil.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// write encodes one line under the tracer mutex, retaining the first error.
func (t *JSONLTracer) write(l traceLine) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(l); err != nil && t.err == nil {
		t.err = err
	}
}
