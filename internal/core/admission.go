package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// This file implements the engine's admission layer: a bounded, deadline-
// aware FIFO in front of the executor that replaces the old unbounded
// channel gate. Under overload the queue sheds — overflow beyond the
// configured depth and waiters whose deadline fires are rejected with a
// typed qerr.ErrAdmissionRejected instead of piling up without bound — and
// the same structure tracks every in-flight query and one-off operator call
// so Engine.Close can stop admission, drain the engine, and fail later
// calls fast with qerr.ErrEngineClosed.
//
// Classification contract (the PR 6 ambiguity fix): a context that expires
// while a query is parked in the admission queue — cancelled or timed out,
// in either order relative to the park — always surfaces as
// ErrAdmissionRejected and never as ErrQueryCanceled/ErrQueryTimeout. The
// query did no work; rejection is retryable, mid-flight cancellation is not.
// The underlying context sentinel stays in the wrap chain for callers that
// care which flavour of expiry it was.

// admWaiter is one parked query. The granter sends nil on ready (buffered,
// so grants never block under the admission mutex); sheds send the typed
// rejection.
type admWaiter struct {
	ready chan error
}

// admission is the engine's admission state: the concurrency slots, the
// bounded FIFO of parked queries, the in-flight tracking Close drains, and
// the overload counters behind Engine.Stats. All fields are guarded by mu;
// cond signals in-flight departures to the drain wait.
type admission struct {
	mu       sync.Mutex
	cond     *sync.Cond
	slots    int           // max concurrently admitted queries; 0 = unlimited
	depth    int           // max parked queries; 0 = unbounded queue
	maxWait  time.Duration // park deadline; 0 = bounded only by the query ctx
	running  int           // queries currently holding a slot
	inflight int           // running queries + one-off operator calls
	queue    []*admWaiter  // parked queries, FIFO
	closed   bool
	// lifetime counters (snapshot via counters)
	waits        int64
	waitNS       int64
	shedOverflow int64
	shedExpired  int64
	shedClosed   int64
}

// newAdmission returns the admission state for an engine: slots concurrent
// queries (0 = unlimited), a parked-query bound of depth (0 = unbounded),
// and a park deadline of maxWait (0 = none).
func newAdmission(slots, depth int, maxWait time.Duration) *admission {
	a := &admission{slots: slots, depth: depth, maxWait: maxWait}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// errClosed returns the typed failure of a call against a closed engine.
func errClosed(what string) error {
	return qerr.Tag(fmt.Errorf("core: %s: engine closed", what), qerr.ErrEngineClosed)
}

// enter registers a one-off operator call for the Close drain (no slot
// accounting — only Prepared.Execute competes for admission slots). It fails
// fast on a closed engine; the returned exit must be deferred.
func (a *admission) enter() (exit func(), err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, errClosed("operator call")
	}
	a.inflight++
	return a.leave, nil
}

// leave retires one in-flight registration and wakes the drain wait.
func (a *admission) leave() {
	a.mu.Lock()
	a.inflight--
	a.cond.Broadcast()
	a.mu.Unlock()
}

// admit gates one query execution. It returns a release to defer, the time
// spent parked in the queue (0 on the fast path), and the typed admission
// error: ErrEngineClosed on a closed engine, ErrAdmissionRejected when the
// queue overflowed or the wait expired (the query's ctx fired or maxWait
// elapsed) — never ErrQueryCanceled/ErrQueryTimeout, per the classification
// contract above.
func (a *admission) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	a.mu.Lock()
	if a.closed {
		a.shedClosed++
		a.mu.Unlock()
		return nil, 0, errClosed("execute")
	}
	if a.slots <= 0 {
		// Unlimited concurrency: admission only tracks the in-flight count
		// for the Close drain.
		a.inflight++
		a.mu.Unlock()
		return a.leave, 0, nil
	}
	// A context that expired before admission is a deterministic rejection:
	// the old select-based gate raced an expired ctx against a free slot and
	// could classify the same call either way.
	if ctx != nil && ctx.Err() != nil {
		a.shedExpired++
		a.mu.Unlock()
		return nil, 0, qerr.Tag(
			fmt.Errorf("core: admission: context expired before admission: %w", ctx.Err()),
			qerr.ErrAdmissionRejected)
	}
	if a.running < a.slots && len(a.queue) == 0 {
		a.running++
		a.inflight++
		a.mu.Unlock()
		return a.releaseSlot, 0, nil
	}
	if a.depth > 0 && len(a.queue) >= a.depth {
		a.shedOverflow++
		a.mu.Unlock()
		return nil, 0, qerr.Tag(
			fmt.Errorf("core: admission: queue full (%d queries waiting, %d running)", a.depth, a.slots),
			qerr.ErrAdmissionRejected)
	}
	// The fault point sits just before the park so the chaos suite can fail
	// the enqueue path; its guard converts an injected panic into a typed
	// error (the site runs outside every morsel recover boundary).
	if err := hitGuarded(faultpoint.AdmissionEnqueue); err != nil {
		a.mu.Unlock()
		return nil, 0, qerr.Tag(err, qerr.ErrAdmissionRejected)
	}
	w := &admWaiter{ready: make(chan error, 1)}
	a.queue = append(a.queue, w)
	a.waits++
	a.mu.Unlock()

	start := time.Now()
	var timeout <-chan time.Time
	if a.maxWait > 0 {
		timer := time.NewTimer(a.maxWait)
		defer timer.Stop()
		timeout = timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	expired := func(cause error) (func(), time.Duration, error) {
		wait := time.Since(start)
		a.recordWait(wait)
		if a.abandon(w) {
			return nil, wait, qerr.Tag(
				fmt.Errorf("core: admission: wait expired after %v: %w", wait.Round(time.Microsecond), cause),
				qerr.ErrAdmissionRejected)
		}
		// The grant raced the expiry and won: the slot is ours, give it back
		// before rejecting so it flows to the next waiter.
		if shed := <-w.ready; shed == nil {
			a.releaseSlot()
		}
		return nil, wait, qerr.Tag(
			fmt.Errorf("core: admission: wait expired after %v: %w", wait.Round(time.Microsecond), cause),
			qerr.ErrAdmissionRejected)
	}
	select {
	case shed := <-w.ready:
		wait := time.Since(start)
		a.recordWait(wait)
		if shed != nil {
			return nil, wait, shed
		}
		return a.releaseSlot, wait, nil
	case <-done:
		return expired(ctx.Err())
	case <-timeout:
		return expired(fmt.Errorf("admission queue wait limit %v exceeded", a.maxWait))
	}
}

// hitGuarded runs a fault point's handler under a recover guard: the
// admission and close paths sit outside every morsel recover boundary, so an
// injected panic is converted into a typed *qerr.QueryError here instead of
// escaping through Execute or Close.
func hitGuarded(p *faultpoint.Point) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = qerr.Recovered(v, -1)
		}
	}()
	return p.Hit()
}

// recordWait books one finished queue wait into the counters.
func (a *admission) recordWait(d time.Duration) {
	a.mu.Lock()
	a.waitNS += d.Nanoseconds()
	a.mu.Unlock()
}

// abandon removes w from the queue if it is still parked, counting the shed;
// it reports false when w was already granted (or shed by close).
func (a *admission) abandon(w *admWaiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, x := range a.queue {
		if x == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.shedExpired++
			return true
		}
	}
	return false
}

// releaseSlot retires an admitted query: the slot moves to the queue head
// (FIFO) when one is parked, and the drain wait wakes.
func (a *admission) releaseSlot() {
	a.mu.Lock()
	a.running--
	a.inflight--
	for a.running < a.slots && len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.running++
		a.inflight++
		w.ready <- nil
	}
	a.cond.Broadcast()
	a.mu.Unlock()
}

// close stops admission: later enter/admit calls fail fast, and every parked
// query is shed with ErrEngineClosed. In-flight work is untouched — Close
// drains it separately.
func (a *admission) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, w := range a.queue {
		a.shedClosed++
		w.ready <- errClosed("queued execute")
	}
	a.queue = nil
	a.cond.Broadcast()
}

// drain blocks until no query or operator call is in flight; it reports
// false when ctx fired first. Callers stop admission beforehand, so the
// in-flight count is monotonically non-increasing.
func (a *admission) drain(ctx context.Context) bool {
	var stop func() bool
	if ctx != nil {
		stop = context.AfterFunc(ctx, func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})
		defer stop()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inflight > 0 {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		a.cond.Wait()
	}
	return true
}

// admCounters is a snapshot of the admission layer's state and lifetime
// counters, folded into Engine.Stats.
type admCounters struct {
	queued       int // queries currently parked
	running      int // queries currently admitted
	inflight     int // queries + one-off calls currently in flight
	waits        int64
	waitNS       int64
	shedOverflow int64
	shedExpired  int64
	shedClosed   int64
	closed       bool
}

// counters snapshots the admission state.
func (a *admission) counters() admCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	return admCounters{
		queued:       len(a.queue),
		running:      a.running,
		inflight:     a.inflight,
		waits:        a.waits,
		waitNS:       a.waitNS,
		shedOverflow: a.shedOverflow,
		shedExpired:  a.shedExpired,
		shedClosed:   a.shedClosed,
		closed:       a.closed,
	}
}
