package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/ops"
	"morphstore/internal/vector"
)

// TestEnginePreparedMatchesLegacy: engine.Prepare + Execute(ctx) must
// produce columns byte-identical to the legacy core.Execute path at every
// parallelism level, for uncompressed and compressed configurations.
func TestEnginePreparedMatchesLegacy(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	base := map[string]columns.FormatDesc{
		"fact.fk":  columns.StaticBPDesc(0),
		"fact.qty": columns.StaticBPDesc(0),
		"dim.id":   columns.StaticBPDesc(0),
		"dim.attr": columns.DynBPDesc,
	}
	enc, err := db.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, desc := range []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc, columns.DeltaBPDesc} {
		cfg := UniformConfig(plan, desc, vector.Vec512)
		cfg.Parallelism = 1
		want, err := Execute(plan, enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 3, 8} {
			e := NewEngine(enc, WithParallelism(par), WithStyle(vector.Vec512))
			pr, err := e.Prepare(plan, WithUniformFormat(desc))
			if err != nil {
				t.Fatal(err)
			}
			got, err := pr.Execute(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ctx := fmt.Sprintf("engine desc=%v par=%d", desc, par)
			if len(got.Cols) != len(want.Cols) {
				t.Fatalf("%s: %d result columns, want %d", ctx, len(got.Cols), len(want.Cols))
			}
			for name, w := range want.Cols {
				sameColumns(t, ctx+" "+name, w, got.Cols[name])
			}
			if got.Meas.BaseBytes != want.Meas.BaseBytes || got.Meas.InterBytes != want.Meas.InterBytes {
				t.Fatalf("%s: accounting %d/%d, want %d/%d", ctx,
					got.Meas.BaseBytes, got.Meas.InterBytes, want.Meas.BaseBytes, want.Meas.InterBytes)
			}
		}
	}
}

// TestEngineConcurrentExecutes: many goroutines executing a mix of prepared
// queries on one engine with a small shared budget must each get columns
// byte-identical to the sequential reference.
func TestEngineConcurrentExecutes(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	seqRef, err := Execute(plan, db, &Config{Inter: map[string]columns.FormatDesc{}, Style: vector.Vec512, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, WithParallelism(3), WithStyle(vector.Vec512))
	// M prepared queries (distinct format bindings), N goroutines each.
	prs := make([]*Prepared, 0, 3)
	for _, desc := range []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc, columns.DeltaBPDesc} {
		pr, err := e.Prepare(plan, WithUniformFormat(desc))
		if err != nil {
			t.Fatal(err)
		}
		prs = append(prs, pr)
	}
	const goroutines, iters = 6, 2
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pr := prs[(g+i)%len(prs)]
				res, err := pr.Execute(context.Background())
				if err != nil {
					errCh <- err
					return
				}
				for name, w := range seqRef.Cols {
					got := res.Cols[name]
					if got == nil || got.N() != w.N() || len(got.Words()) != len(w.Words()) {
						errCh <- fmt.Errorf("goroutine %d: column %q shape mismatch", g, name)
						return
					}
					for k, ww := range w.Words() {
						if got.Words()[k] != ww {
							errCh <- fmt.Errorf("goroutine %d: column %q word %d differs", g, name, k)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// bigCancelDB builds a database large enough that a query takes many
// milliseconds, so a mid-flight cancellation deterministically lands while
// operators are running.
func bigCancelDB(t *testing.T) (*DB, *Plan) {
	t.Helper()
	const n = 512 * 3000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 1009)
	}
	db := NewDB()
	db.AddTable("t", map[string][]uint64{"a": vals, "b": vals})
	b := NewBuilder()
	a := b.Scan("t", "a")
	bb := b.Scan("t", "b")
	s1 := b.Select("s1", a, bitutil.CmpLt, 900)
	s2 := b.Between("s2", bb, 10, 950)
	pos := b.Intersect("pos", s1, s2)
	pv := b.Project("pv", a, pos)
	b.Result(b.SumWhole("total", pv))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db, p
}

// TestEngineCancellation: a mid-query cancellation returns promptly with
// ctx.Err() and leaks no goroutines.
func TestEngineCancellation(t *testing.T) {
	db, plan := bigCancelDB(t)
	e := NewEngine(db, WithParallelism(4))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline timing to pick a cancellation point inside the run.
	start := time.Now()
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	before := runtime.NumGoroutine()
	cancelled := 0
	for i := 0; i < 20 && cancelled == 0; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), full/4+time.Duration(i)*full/20)
		res, err := pr.Execute(ctx)
		cancel()
		switch {
		case err == nil:
			if res == nil || res.Cols["total"] == nil {
				t.Fatal("successful execution without result")
			}
		case errors.Is(err, context.DeadlineExceeded):
			cancelled++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if cancelled == 0 {
		t.Skip("query too fast to cancel mid-flight on this host")
	}
	// No goroutines may outlive the cancelled executions.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak after cancellation: %d -> %d", before, after)
	}
}

// TestEnginePreCancelled: an already-cancelled context never starts running.
func TestEnginePreCancelled(t *testing.T) {
	db, plan := bigCancelDB(t)
	e := NewEngine(db, WithParallelism(2))
	pr, err := e.Prepare(plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEngineAdmissionGate: with WithMaxConcurrentQueries(1) a second query
// waits for the first and a waiter's cancellation is honoured.
func TestEngineAdmissionGate(t *testing.T) {
	db, plan := bigCancelDB(t)
	e := NewEngine(db, WithParallelism(2), WithMaxConcurrentQueries(1))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := pr.Execute(context.Background())
		<-release // hold the result goroutine, not the gate
		done <- err
	}()
	// A waiter with a short deadline must give up with ctx.Err() whether it
	// is parked at the gate or cancelled mid-run.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := pr.Execute(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want deadline exceeded or success", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The gate drains: a fresh query succeeds.
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineOptionScopes: options passed at the wrong layer fail loudly.
func TestEngineOptionScopes(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db)
	if _, err := e.Prepare(plan, WithOutput(columns.DynBPDesc)); err == nil ||
		!strings.Contains(err.Error(), "WithOutput") {
		t.Fatalf("WithOutput at Prepare = %v, want scope error", err)
	}
	pr, err := e.Prepare(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Execute(context.Background(), WithFormat("x", columns.RLEDesc)); err == nil ||
		!strings.Contains(err.Error(), "WithFormat") {
		t.Fatalf("WithFormat at Execute = %v, want scope error", err)
	}
	// A misplaced engine option surfaces on first use.
	bad := NewEngine(db, WithOutput(columns.DynBPDesc))
	if _, err := bad.Prepare(plan); err == nil {
		t.Fatal("misplaced NewEngine option must fail Prepare")
	}
	if _, err := bad.Select(context.Background(), columns.FromValues([]uint64{1}), bitutil.CmpEq, 1); err == nil {
		t.Fatal("misplaced NewEngine option must fail operator calls")
	}
}

// TestEngineAccessorsAndOptions covers the remaining option constructors
// and engine accessors.
func TestEngineAccessorsAndOptions(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(5), WithSpecialized(true))
	if e.DB() != db {
		t.Fatal("DB accessor lost the database")
	}
	if e.Budget() != 5 {
		t.Fatalf("budget = %d, want 5", e.Budget())
	}
	pr, err := e.Prepare(plan,
		WithFormats(map[string]columns.FormatDesc{"q_sel": columns.DeltaBPDesc}),
		WithKeep(true))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Plan() != plan {
		t.Fatal("Plan accessor lost the plan")
	}
	if pr.Formats()["q_sel"] != columns.DeltaBPDesc {
		t.Fatalf("WithFormats binding lost: %v", pr.Formats()["q_sel"])
	}
	res, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Inter == nil || res.Inter["q_sel"] == nil {
		t.Fatal("WithKeep did not retain intermediates")
	}
	if res.Inter["q_sel"].Desc() != columns.DeltaBPDesc {
		t.Fatalf("kept intermediate in %v, want delta+bp", res.Inter["q_sel"].Desc())
	}
	// WithOutputs drives dual-output formats; a single WithOutput covers
	// both outputs of JoinN1.
	keys := make([]uint64, 3*512)
	for i := range keys {
		keys[i] = uint64(i % 64)
	}
	build := make([]uint64, 64)
	for i := range build {
		build[i] = uint64(i)
	}
	jp, jb, err := e.JoinN1(context.Background(), columns.FromValues(keys), columns.FromValues(build),
		WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	if jp.Desc() != columns.DeltaBPDesc || jb.Desc() != columns.DeltaBPDesc {
		t.Fatalf("WithOutput on dual outputs: %v/%v, want delta+bp for both", jp.Desc(), jb.Desc())
	}
}

// randomAccessPlan builds a plan in which the intermediate "pv" is consumed
// via random access (data input of a second project).
func randomAccessPlan(t *testing.T) (*DB, *Plan) {
	t.Helper()
	n := 4 * 512
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 997)
	}
	db := NewDB()
	db.AddTable("r", map[string][]uint64{"x": vals})
	b := NewBuilder()
	x := b.Scan("r", "x")
	s := b.Select("s", x, bitutil.CmpLt, 700)
	pv := b.Project("pv", x, s)
	s2 := b.Select("s2", pv, bitutil.CmpLt, 300)
	pv2 := b.Project("pv2", pv, s2)
	b.Result(b.SumWhole("total", pv2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db, p
}

// TestEnginePrepareValidation: configuration errors surface at prepare time.
func TestEnginePrepareValidation(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db)
	// Compressed result column.
	if _, err := e.Prepare(plan, WithFormat("rev_total", columns.DynBPDesc)); err == nil ||
		!strings.Contains(err.Error(), "uncompressed") {
		t.Fatalf("compressed result column = %v, want error", err)
	}
	// Random-access consumer of a non-random-access format without AutoMorph:
	// pv is the data input of a second project.
	rdb, rplan := randomAccessPlan(t)
	re := NewEngine(rdb)
	if _, err := re.Prepare(rplan, WithFormat("pv", columns.DeltaBPDesc)); err == nil ||
		!strings.Contains(err.Error(), "random access") {
		t.Fatalf("random access violation = %v, want error", err)
	}
	// ... and AutoMorph turns the same binding into an on-the-fly morph.
	pr, err := re.Prepare(rplan, WithFormat("pv", columns.DeltaBPDesc), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}
	want, err := re.Prepare(rplan)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := want.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gres, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "automorph total", wres.Cols["total"], gres.Cols["total"])
	// Unknown base columns fail Prepare, not Execute.
	b := NewBuilder()
	bad := b.Scan("nope", "x")
	b.Result(b.SumWhole("t", bad))
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(p2); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table = %v, want prepare error", err)
	}
}

// TestEngineFormatResolution: uniform/cost-based/explicit resolution, with
// explicit entries overriding the automatic choice.
func TestEngineFormatResolution(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db)
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DeltaBPDesc), WithFormat("q_sel", columns.RLEDesc))
	if err != nil {
		t.Fatal(err)
	}
	got := pr.Formats()
	if got["q_sel"] != columns.RLEDesc {
		t.Fatalf("explicit override lost: q_sel = %v", got["q_sel"])
	}
	if got["lo_pos"] != columns.DeltaBPDesc {
		t.Fatalf("uniform binding lost: lo_pos = %v", got["lo_pos"])
	}
	// Randomly accessed intermediates fall back to static BP under uniform.
	rdb, rplan := randomAccessPlan(t)
	rpr, err := NewEngine(rdb).Prepare(rplan, WithUniformFormat(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	if d := rpr.Formats()["pv"]; d.Kind != columns.StaticBP {
		t.Fatalf("randomly accessed pv bound to %v, want static BP", d)
	}
	// Cost-based resolution binds every intermediate and executes correctly.
	prc, err := e.Prepare(plan, WithCostBasedFormats())
	if err != nil {
		t.Fatal(err)
	}
	if len(prc.Formats()) == 0 {
		t.Fatal("cost-based preparation bound no formats")
	}
	want, err := Execute(plan, db, &Config{Inter: map[string]columns.FormatDesc{}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prc.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want.Cols {
		sameColumns(t, "cost-based "+name, w, res.Cols[name])
	}
}

// TestEngineOneOffOps: the engine's ad-hoc operator calls match the legacy
// positional free functions byte for byte.
func TestEngineOneOffOps(t *testing.T) {
	n := 20*512 + 71
	a := make([]uint64, n)
	bvals := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i % 251)
		bvals[i] = uint64((i * 7) % 509)
	}
	colA := columns.FromValues(a)
	colB := columns.FromValues(bvals)
	dynA, err := formats.Compress(a, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	build := make([]uint64, 128)
	for i := range build {
		build[i] = uint64(i)
	}
	colBuild := columns.FromValues(build)
	e := NewEngine(nil, WithParallelism(3), WithStyle(vector.Vec512))
	ctx := context.Background()

	wantSel, err := ops.ParSelect(dynA, bitutil.CmpLt, 100, columns.DeltaBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotSel, err := e.Select(ctx, dynA, bitutil.CmpLt, 100, WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "select", wantSel, gotSel)

	wantBet, err := ops.ParSelectBetween(dynA, 10, 90, columns.DeltaBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotBet, err := e.SelectBetween(ctx, dynA, 10, 90, WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "between", wantBet, gotBet)

	wantProj, err := ops.ParProject(colA, wantSel, columns.DynBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotProj, err := e.Project(ctx, colA, gotSel, WithOutput(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "project", wantProj, gotProj)

	wantSum, _, err := ops.ParSum(dynA, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := e.Sum(ctx, dynA)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum {
		t.Fatalf("sum = %d, want %d", gotSum, wantSum)
	}

	wantSemi, err := ops.ParSemiJoin(colA, colBuild, columns.DeltaBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotSemi, err := e.SemiJoin(ctx, colA, colBuild, WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "semijoin", wantSemi, gotSemi)

	wantJP, wantJB, err := ops.ParJoinN1(colA, colBuild, columns.DeltaBPDesc, columns.DynBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotJP, gotJB, err := e.JoinN1(ctx, colA, colBuild, WithOutputs(columns.DeltaBPDesc, columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "join probe", wantJP, gotJP)
	sameColumns(t, "join build", wantJB, gotJB)

	wantCalc, err := ops.ParCalcBinary(ops.CalcMul, colA, colB, columns.DynBPDesc, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotCalc, err := e.Calc(ctx, ops.CalcMul, colA, colB, WithOutput(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "calc", wantCalc, gotCalc)

	gids := make([]uint64, n)
	for i := range gids {
		gids[i] = uint64(i % 16)
	}
	colG := columns.FromValues(gids)
	wantGS, err := ops.ParSumGrouped(colG, colA, 16, vector.Vec512, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotGS, err := e.SumGrouped(ctx, colG, colA, 16)
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "sum grouped", wantGS, gotGS)

	wantI, err := ops.IntersectSorted(wantSel, wantBet, columns.DeltaBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	gotI, err := e.Intersect(ctx, gotSel, gotBet, WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "intersect", wantI, gotI)

	wantU, err := ops.MergeSorted(wantSel, wantBet, columns.DeltaBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := e.Union(ctx, gotSel, gotBet, WithOutput(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "union", wantU, gotU)

	wantGF, wantGFE, err := ops.GroupFirst(colG, columns.DynBPDesc, columns.DeltaBPDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gotGF, gotGFE, err := e.GroupFirst(ctx, colG, WithOutputs(columns.DynBPDesc, columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "group first gids", wantGF, gotGF)
	sameColumns(t, "group first extents", wantGFE, gotGFE)

	wantGN, wantGNE, err := ops.GroupNext(wantGF, colB, columns.DynBPDesc, columns.UncomprDesc, vector.Vec512)
	if err != nil {
		t.Fatal(err)
	}
	gotGN, gotGNE, err := e.GroupNext(ctx, gotGF, colB, WithOutputs(columns.DynBPDesc, columns.UncomprDesc))
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "group next gids", wantGN, gotGN)
	sameColumns(t, "group next extents", wantGNE, gotGNE)
}
