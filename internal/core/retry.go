package core

import (
	"math/rand"
	"time"
)

// RetryPolicy configures the bounded retry loop WithRetry attaches to
// Prepared.Execute: how many attempts to make and how the exponential
// backoff between them grows. The zero policy disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts including the
	// first; values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. 0 retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (before jitter); 0 means no cap.
	MaxDelay time.Duration
	// Jitter randomizes each backoff by up to the given fraction of itself
	// (delay × [1, 1+Jitter]), de-synchronizing retry storms from many
	// callers shed at once. Negative or zero means no jitter.
	Jitter float64
}

// attempts returns the effective attempt bound (at least one).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the sleep before the retry following attempt (1-based),
// jittered.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.backoffBase(attempt)
	if d > 0 && p.Jitter > 0 {
		d += time.Duration(p.Jitter * rand.Float64() * float64(d))
	}
	return d
}

// backoffBase is the deterministic part of backoff: BaseDelay doubled per
// completed attempt, capped by MaxDelay (overflow-safe).
func (p RetryPolicy) backoffBase(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		if d > p.BaseDelay<<20 { // far past any sane MaxDelay; stop doubling
			break
		}
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// WithRetry retries an execution whose failure is retryable (IsRetryable:
// admission sheds and transient injected faults — never mid-flight
// cancellations, corrupt data, or a closed engine) up to the policy's
// attempt bound, sleeping the policy's jittered exponential backoff between
// attempts. The caller's context covers all attempts and the sleeps
// between them; WithQueryTimeout applies per attempt. Every attempt counts
// in the engine's Stats outcome counters, and retries additionally in
// QueriesRetried. Applies to NewEngine, Prepare, and Execute.
func WithRetry(p RetryPolicy) Option {
	return Option{name: "WithRetry", scope: scopeEngine | scopePrepare | scopeExec,
		apply: func(o *options) { o.retry = p }}
}
