package core

import (
	"sort"

	"morphstore/internal/dict"
)

// This file implements the prepare-time half of string predicates: an
// OpSelectStr node's strings are resolved against a dictionary snapshot into
// the cheapest equivalent integer predicate, which the existing select
// kernels then execute over the compressed ID column — a single-ID equality
// for `=` (and degenerate IN/prefix), a contiguous ID range for a prefix on
// a sorted dictionary (or an accidentally contiguous IN set), and a sorted
// membership set otherwise. Strings not in the dictionary simply drop out:
// no row can carry their ID.

// strPredMode is the integer shape a translated string predicate executes
// as.
type strPredMode uint8

const (
	// strPredEq is a single-ID equality select.
	strPredEq strPredMode = iota
	// strPredRange is a contiguous inclusive ID range select.
	strPredRange
	// strPredSet is a sorted-set membership select; an empty set (no
	// predicate string is in the dictionary) matches nothing.
	strPredSet
)

// strPred is one translated predicate, valid for the snapshot it was
// translated against (and for any snapshot with the same generation and
// length — appends and renumbering both change one of the two).
type strPred struct {
	mode   strPredMode
	id     uint64   // strPredEq
	lo, hi uint64   // strPredRange, inclusive
	set    []uint64 // strPredSet, strictly ascending
}

// translateStrPred resolves a string predicate to ID space against one
// dictionary snapshot.
func translateStrPred(s *dict.Snap, kind StrPredKind, val string, vals []string) strPred {
	switch kind {
	case StrEq:
		if id, ok := s.ID(val); ok {
			return strPred{mode: strPredEq, id: id}
		}
		return strPred{mode: strPredSet}
	case StrPrefix:
		if lo, hi, ok := s.PrefixRange(val); ok {
			return strPred{mode: strPredRange, lo: lo, hi: hi}
		}
		return collapseIDSet(s.PrefixIDs(val))
	default: // StrIn
		ids := make([]uint64, 0, len(vals))
		for _, v := range vals {
			if id, ok := s.ID(v); ok {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		// Dedup: the same string may be listed twice.
		k := 0
		for i, id := range ids {
			if i == 0 || id != ids[k-1] {
				ids[k] = id
				k++
			}
		}
		return collapseIDSet(ids[:k])
	}
}

// collapseIDSet picks the cheapest kernel for a sorted unique ID set: a
// single equality, a contiguous range, or the general membership set.
func collapseIDSet(ids []uint64) strPred {
	switch {
	case len(ids) == 1:
		return strPred{mode: strPredEq, id: ids[0]}
	case len(ids) > 1 && ids[len(ids)-1]-ids[0] == uint64(len(ids)-1):
		return strPred{mode: strPredRange, lo: ids[0], hi: ids[len(ids)-1]}
	default:
		return strPred{mode: strPredSet, set: ids}
	}
}
