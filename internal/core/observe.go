package core

import (
	"errors"
	"sync/atomic"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/metrics"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
)

// This file wires the observability layer (internal/metrics) through the
// engine: the WithExecStats/WithTracer execution options, the per-execution
// collector construction, the engine-wide query/budget counters behind
// Engine.Stats, and the cardinality/format extraction the metrics package —
// a std-only leaf — cannot do itself.

// WithExecStats attaches a stats collector to one execution: when Execute
// returns, *dst holds the execution's QueryStats tree (per-operator morsel
// timings, cardinalities, formats, budget lease history), on success and
// failure alike. The collected columns are byte-identical to an uncollected
// run. Applies to Execute.
func WithExecStats(dst *metrics.QueryStats) Option {
	return Option{name: "WithExecStats", scope: scopeExec,
		apply: func(o *options) { o.stats = dst }}
}

// WithTracer streams live span begin/end and re-division events of every
// execution it applies to into t (see metrics.Tracer). At NewEngine or
// Prepare it covers every execution of the engine or plan; at Execute just
// that call. Attaching a tracer implies collection, so WithExecStats is not
// required to trace. Applies to NewEngine, Prepare, and Execute.
func WithTracer(t metrics.Tracer) Option {
	return Option{name: "WithTracer", scope: scopeEngine | scopePrepare | scopeExec,
		apply: func(o *options) { o.tracer = t }}
}

// engineCounters is the engine-wide observability state: monotonically
// increasing atomic counters, updated on every Execute outcome and every
// budget telemetry event. It is the only mutable state an Engine carries.
type engineCounters struct {
	started       atomic.Int64
	succeeded     atomic.Int64
	rejected      atomic.Int64
	closed        atomic.Int64
	canceled      atomic.Int64
	timedOut      atomic.Int64
	corrupt       atomic.Int64
	panicked      atomic.Int64
	failedOther   atomic.Int64
	retried       atomic.Int64
	memShed       atomic.Int64
	leaseGrants   atomic.Int64
	leaseShrinks  atomic.Int64
	leaseReleases atomic.Int64

	// Write-path counters (Engine.Append/Delete and the remorph worker).
	appends       atomic.Int64
	appendedRows  atomic.Int64
	deletes       atomic.Int64
	deletedRows   atomic.Int64
	remorphs      atomic.Int64
	remorphFailed atomic.Int64
	remorphRows   atomic.Int64
}

// query books one Execute outcome into exactly one outcome counter, chosen
// by qerr taxonomy class.
func (c *engineCounters) query(err error) {
	c.started.Add(1)
	var qe *qerr.QueryError
	switch {
	case err == nil:
		c.succeeded.Add(1)
	case errors.Is(err, qerr.ErrEngineClosed):
		c.closed.Add(1)
	case errors.Is(err, qerr.ErrAdmissionRejected):
		c.rejected.Add(1)
	case errors.Is(err, qerr.ErrQueryTimeout):
		c.timedOut.Add(1)
	case errors.Is(err, qerr.ErrQueryCanceled):
		c.canceled.Add(1)
	case errors.Is(err, qerr.ErrCorruptData):
		c.corrupt.Add(1)
	case errors.As(err, &qe):
		c.panicked.Add(1)
	default:
		c.failedOther.Add(1)
	}
}

// budget books one budget telemetry event. It runs under the budget mutex
// (see ops.Budget.SetTelemetry), hence plain atomic adds only.
func (c *engineCounters) budget(ev ops.BudgetEvent) {
	switch ev.Kind {
	case ops.BudgetGrant:
		c.leaseGrants.Add(1)
	case ops.BudgetShrink:
		c.leaseShrinks.Add(1)
	case ops.BudgetRelease:
		c.leaseReleases.Add(1)
	}
}

// EngineStats is a point-in-time snapshot of an engine's lifetime counters,
// current budget utilization, and overload-protection state, returned by
// Engine.Stats. The outcome counters partition QueriesStarted: each finished
// Execute attempt lands in exactly one of them (classification order:
// closed, rejected, timeout, canceled, corrupt, panic, other), so Succeeded
// + the failure counters equals Started minus the executions still in
// flight. With WithRetry, every attempt counts.
type EngineStats struct {
	// QueriesStarted counts Execute attempts that entered the engine.
	QueriesStarted int64
	// QueriesSucceeded counts executions that returned a result.
	QueriesSucceeded int64
	// QueriesRejected counts executions shed by the admission layer —
	// queue overflow, wait expiry, or memory pressure — before they
	// started.
	QueriesRejected int64
	// QueriesClosed counts executions failed because the engine closed:
	// fast-failed after Close, shed from the queue by Close, or cancelled
	// when Close gave up on the graceful drain.
	QueriesClosed int64
	// QueriesCanceled counts executions stopped mid-flight by context
	// cancellation.
	QueriesCanceled int64
	// QueriesTimedOut counts executions stopped mid-flight by a deadline.
	QueriesTimedOut int64
	// QueriesCorrupt counts executions failed on corrupt compressed data.
	QueriesCorrupt int64
	// QueriesPanicked counts executions failed by a recovered operator
	// panic not classified as one of the above.
	QueriesPanicked int64
	// QueriesFailedOther counts the remaining failures (e.g. misplaced
	// options).
	QueriesFailedOther int64
	// QueriesRetried counts the WithRetry re-attempts (each also counts in
	// QueriesStarted and an outcome counter).
	QueriesRetried int64
	// AdmissionQueued is the number of queries currently parked in the
	// admission queue.
	AdmissionQueued int
	// AdmissionWaits counts queries that parked in the admission queue
	// (engine-lifetime).
	AdmissionWaits int64
	// AdmissionWaitTotal is the summed queue wait time of all finished
	// parks (admitted and shed alike).
	AdmissionWaitTotal time.Duration
	// AdmissionShedOverflow counts queries shed on arrival because the
	// queue was at its WithAdmissionQueue depth.
	AdmissionShedOverflow int64
	// AdmissionShedExpired counts parked queries shed because their
	// context or the WithAdmissionQueue maxWait fired first.
	AdmissionShedExpired int64
	// AdmissionShedClosed counts queries shed because the engine closed
	// (fast-fails and queue sheds by Close).
	AdmissionShedClosed int64
	// EngineClosed reports that Close stopped admission.
	EngineClosed bool
	// MemBudget is the WithMemoryBudget governor size (0 = no governor).
	MemBudget int64
	// MemReserved is the governor bytes currently reserved by running
	// queries.
	MemReserved int64
	// MemPeakReserved is the high-water mark of MemReserved.
	MemPeakReserved int64
	// MemWaits counts queries that waited at the governor for running
	// queries to release memory.
	MemWaits int64
	// MemWaitTotal is the summed governor wait time.
	MemWaitTotal time.Duration
	// MemSheds counts queries shed because their governor wait expired.
	MemSheds int64
	// MemOverBudget counts executions rejected (ErrMemoryLimit) because
	// their estimate exceeded the whole budget and degradation was off.
	MemOverBudget int64
	// BudgetTotal is the engine's worker allowance.
	BudgetTotal int
	// BudgetLeases is the number of operators currently holding a lease.
	BudgetLeases int
	// BudgetInUse is the number of worker slots currently acquired.
	BudgetInUse int
	// LeaseGrants counts budget lease registrations (one per non-scan
	// operator run, engine-lifetime).
	LeaseGrants int64
	// LeaseShrinks counts sequential-fallback cap reductions.
	LeaseShrinks int64
	// LeaseReleases counts lease closes; it catches up with LeaseGrants
	// whenever the engine is idle.
	LeaseReleases int64
	// Appends counts successful Engine.Append calls (including zero-row
	// no-ops).
	Appends int64
	// AppendedRows is the total row count over all successful appends.
	AppendedRows int64
	// Deletes counts successful Engine.Delete calls.
	Deletes int64
	// DeletedRows is the total row count over all successful deletes.
	DeletedRows int64
	// Remorphs counts completed remorph swaps (explicit Engine.Remorph calls
	// and background-worker sweeps alike).
	Remorphs int64
	// RemorphFailures counts remorph attempts that failed or were canceled
	// before their swap.
	RemorphFailures int64
	// RemorphRows is the total post-swap main row count over all completed
	// swaps — a measure of rebuild work done.
	RemorphRows int64
	// DeltaTables is the number of tables with write state (touched by
	// Append/Delete at least once).
	DeltaTables int
	// DeltaRows is the current total uncompressed delta-tail row count over
	// all writable tables.
	DeltaRows int
	// DeltaDeleted is the current total pending (unfolded) deletion count
	// over all writable tables.
	DeltaDeleted int
	// DeltaBytes is the current total delta footprint (tail backing,
	// deletion sets, journals) in bytes.
	DeltaBytes int64
}

// Stats returns a snapshot of the engine's lifetime query counters, current
// budget utilization, and admission/governor state. Counters cover
// Prepared.Execute calls (the deprecated one-off operator methods lease
// budget — visible in the lease counters — but are not counted as queries).
// Safe for concurrent use; the counter groups are snapshotted individually,
// so a snapshot taken while queries run is approximate across groups but
// each field is exact.
func (e *Engine) Stats() EngineStats {
	adm := e.adm.counters()
	mem := e.gov.Counters()
	var dTables, dRows, dDel int
	var dBytes int64
	e.wmu.Lock()
	for _, wt := range e.wtabs {
		st := wt.dt.State()
		dTables++
		dRows += st.TailRows()
		dDel += st.DeletedRows()
		dBytes += wt.dt.DeltaBytes()
	}
	e.wmu.Unlock()
	return EngineStats{
		QueriesStarted:        e.counters.started.Load(),
		QueriesSucceeded:      e.counters.succeeded.Load(),
		QueriesRejected:       e.counters.rejected.Load(),
		QueriesClosed:         e.counters.closed.Load(),
		QueriesCanceled:       e.counters.canceled.Load(),
		QueriesTimedOut:       e.counters.timedOut.Load(),
		QueriesCorrupt:        e.counters.corrupt.Load(),
		QueriesPanicked:       e.counters.panicked.Load(),
		QueriesFailedOther:    e.counters.failedOther.Load(),
		QueriesRetried:        e.counters.retried.Load(),
		AdmissionQueued:       adm.queued,
		AdmissionWaits:        adm.waits,
		AdmissionWaitTotal:    time.Duration(adm.waitNS),
		AdmissionShedOverflow: adm.shedOverflow,
		AdmissionShedExpired:  adm.shedExpired,
		AdmissionShedClosed:   adm.shedClosed,
		EngineClosed:          adm.closed,
		MemBudget:             e.gov.Total(),
		MemReserved:           e.gov.Reserved(),
		MemPeakReserved:       mem.PeakReserved,
		MemWaits:              mem.Waits,
		MemWaitTotal:          time.Duration(mem.WaitNS),
		MemSheds:              mem.Rejected,
		MemOverBudget:         e.counters.memShed.Load(),
		BudgetTotal:           e.budget.Total(),
		BudgetLeases:          e.budget.Leases(),
		BudgetInUse:           e.budget.InUse(),
		LeaseGrants:           e.counters.leaseGrants.Load(),
		LeaseShrinks:          e.counters.leaseShrinks.Load(),
		LeaseReleases:         e.counters.leaseReleases.Load(),
		Appends:               e.counters.appends.Load(),
		AppendedRows:          e.counters.appendedRows.Load(),
		Deletes:               e.counters.deletes.Load(),
		DeletedRows:           e.counters.deletedRows.Load(),
		Remorphs:              e.counters.remorphs.Load(),
		RemorphFailures:       e.counters.remorphFailed.Load(),
		RemorphRows:           e.counters.remorphRows.Load(),
		DeltaTables:           dTables,
		DeltaRows:             dRows,
		DeltaDeleted:          dDel,
		DeltaBytes:            dBytes,
	}
}

// execObs is the per-attempt admission observability state: the query id
// reserved before admission, and the wait/memory figures stamped into the
// QueryStats tree at finish. Its event emitters trace the admission
// pseudo-span (Node == -1) when a tracer is attached.
type execObs struct {
	query         uint64
	admissionWait time.Duration
	memEstimate   int64
	memPeak       int64
	memDegraded   bool
}

// span is the query-level admission pseudo-span of this execution.
func (ob *execObs) span() metrics.Span {
	return metrics.Span{Query: ob.query, Node: -1, Op: "admission"}
}

// shed traces an admission rejection (queue overflow, wait expiry, memory
// pressure, or closed engine) after a total wait of wait.
func (ob *execObs) shed(opt *options, wait time.Duration) {
	if opt.tracer != nil {
		opt.tracer.Event(ob.span(), time.Now(),
			metrics.Event{Kind: metrics.EvAdmissionShed, Value: wait.Nanoseconds()})
	}
}

// admitted traces a completed admission: the accumulated wait (when any) and
// the governor reservation (when a governor is configured).
func (ob *execObs) admitted(opt *options, gov *ops.MemGovernor) {
	if opt.tracer == nil {
		return
	}
	if ob.admissionWait > 0 {
		opt.tracer.Event(ob.span(), time.Now(),
			metrics.Event{Kind: metrics.EvAdmissionWait, Value: ob.admissionWait.Nanoseconds()})
	}
	if gov.Total() > 0 {
		opt.tracer.Event(ob.span(), time.Now(),
			metrics.Event{Kind: metrics.EvMemReserve, Value: ob.memEstimate})
	}
}

// newCollector builds the execution's collector when stats or tracing were
// requested, pre-defining every plan node so even a failed execution's tree
// is fully labelled. Detached executions (the common case) return nil. The
// query id was reserved before admission (execObs) so admission events and
// operator spans share one number.
func (pr *Prepared) newCollector(opt *options, query uint64) *metrics.Collector {
	if opt.stats == nil && opt.tracer == nil {
		return nil
	}
	coll := metrics.NewCollectorFor(query, len(pr.p.nodes), opt.tracer)
	for _, n := range pr.p.nodes {
		var inputs []int
		seen := make(map[int]bool, len(n.inputs))
		for _, ref := range n.inputs {
			if id := ref.node.id; !seen[id] {
				seen[id] = true
				inputs = append(inputs, id)
			}
		}
		coll.Define(n.id, n.outNames[0], n.op.String(), inputs)
	}
	return coll
}

// finishCollector assembles the execution's stats tree, stamps the
// admission/memory figures, copies it into the WithExecStats destination,
// and attaches it to a *QueryError failure.
func finishCollector(coll *metrics.Collector, opt *options, err error, ob *execObs) {
	if coll == nil {
		return
	}
	qs := coll.Finish(err)
	qs.AdmissionWait = ob.admissionWait
	qs.MemEstimate = ob.memEstimate
	qs.MemPeak = ob.memPeak
	qs.MemDegraded = ob.memDegraded
	if opt.stats != nil {
		*opt.stats = *qs
	}
	var qe *qerr.QueryError
	if errors.As(err, &qe) {
		qe.Stats = qs
	}
}

// inputValues sums the element counts of a node's bound inputs; each
// consumed column reference counts (a project's data and positions inputs
// both do).
func inputValues(es *execState, n *Node) int64 {
	var total int64
	for _, ref := range n.inputs {
		total += int64(es.in(ref).N())
	}
	return total
}

// outputValues sums the element counts of a node's produced columns.
func outputValues(produced []*columns.Column) int64 {
	var total int64
	for _, col := range produced {
		total += int64(col.N())
	}
	return total
}

// outputFormats names the format kind each produced column materialized in.
func outputFormats(produced []*columns.Column) []string {
	if len(produced) == 0 {
		return nil
	}
	fs := make([]string, len(produced))
	for i, col := range produced {
		fs[i] = col.Desc().Kind.String()
	}
	return fs
}
