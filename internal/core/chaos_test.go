package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// The chaos test drives many concurrent prepared executions while a
// background goroutine keeps re-arming the engine's fault points with random
// behaviours — typed errors, panics, delays. The contract under test is the
// full fault-tolerance story at once: no deadlock, no goroutine leak, no
// leaked budget lease, every failure a taxonomy error, every success (and
// every post-chaos execution) byte-identical to the pre-chaos reference.

// chaosTyped reports whether err is accounted for by the error taxonomy: a
// sentinel match or a recovered-panic *qerr.QueryError.
func chaosTyped(err error) bool {
	var qe *qerr.QueryError
	return errors.Is(err, qerr.ErrCorruptData) ||
		errors.Is(err, qerr.ErrQueryTimeout) ||
		errors.Is(err, qerr.ErrQueryCanceled) ||
		errors.Is(err, qerr.ErrAdmissionRejected) ||
		errors.Is(err, qerr.ErrEngineClosed) ||
		errors.Is(err, qerr.ErrMemoryLimit) ||
		errors.As(err, &qe)
}

// sameResult compares a result against its reference word-for-word. It is
// the goroutine-safe form of sameColumns: it returns instead of t.Fatal-ing.
func sameResult(want, got *Result) error {
	if len(got.Cols) != len(want.Cols) {
		return fmt.Errorf("%d result columns, want %d", len(got.Cols), len(want.Cols))
	}
	for name, w := range want.Cols {
		g := got.Cols[name]
		if g == nil {
			return fmt.Errorf("column %q missing", name)
		}
		if g.N() != w.N() || g.MainElems() != w.MainElems() || len(g.Words()) != len(w.Words()) {
			return fmt.Errorf("column %q shape mismatch", name)
		}
		for k, ww := range w.Words() {
			if g.Words()[k] != ww {
				return fmt.Errorf("column %q word %d differs", name, k)
			}
		}
	}
	return nil
}

// chaosArm arms point p with a randomly selected behaviour. The morsel-claim
// site sits on the worker's claim path outside the per-morsel recover guard
// (a claim that fails has not started any kernel), so its handlers stay on
// the error path; every other site may panic.
func chaosArm(p *faultpoint.Point, kind int) {
	injected := fmt.Errorf("chaos injected: %w", formats.ErrCorrupt)
	switch kind {
	case 0:
		p.Disarm()
	case 1:
		p.Arm(func() error { return injected })
	case 2:
		if p.Name() == "morsel-claim" {
			p.Arm(func() error { return injected })
		} else {
			p.Arm(func() error { panic(injected) })
		}
	case 3:
		if p.Name() == "morsel-claim" {
			p.Arm(func() error { return injected })
		} else {
			p.Arm(func() error { panic("chaos string panic") })
		}
	default:
		p.Arm(func() error { time.Sleep(20 * time.Microsecond); return nil })
	}
}

func TestChaosConcurrentExecution(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	enc, err := db.Encode(map[string]columns.FormatDesc{
		"fact.fk":  columns.StaticBPDesc(0),
		"fact.qty": columns.StaticBPDesc(0),
		"dim.id":   columns.StaticBPDesc(0),
		"dim.attr": columns.DynBPDesc,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(enc, WithParallelism(4), WithStyle(vector.Vec512))
	descs := []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc, columns.DeltaBPDesc}
	prs := make([]*Prepared, len(descs))
	refs := make([]*Result, len(descs))
	for i, desc := range descs {
		pr, err := e.Prepare(plan, WithUniformFormat(desc))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := pr.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		prs[i], refs[i] = pr, ref
	}
	baseline := runtime.NumGoroutine()

	// Background chaos: keep flipping random fault points between disarmed,
	// erroring, panicking and delaying states for the whole run.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(7))
		points := faultpoint.Points()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(4) == 0 {
				faultpoint.DisarmAll() // windows of clean execution
			} else {
				chaosArm(points[rng.Intn(len(points))], rng.Intn(6))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const goroutines, iters = 8, 30 // 240 executions, well over the 200 floor
	var failed, succeeded atomic.Int64
	errCh := make(chan error, goroutines)
	var execWG sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		execWG.Add(1)
		go func(g int) {
			defer execWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				k := (g + i) % len(prs)
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(8) == 0 { // sprinkle deadline pressure into the mix
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(400))*time.Microsecond)
				}
				res, err := prs[k].Execute(ctx)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					failed.Add(1)
					if !chaosTyped(err) {
						errCh <- fmt.Errorf("goroutine %d iter %d: untyped chaos error: %v", g, i, err)
						return
					}
					continue
				}
				succeeded.Add(1)
				if err := sameResult(refs[k], res); err != nil {
					errCh <- fmt.Errorf("goroutine %d iter %d: successful execution under chaos diverged: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	execWG.Wait()
	close(stop)
	chaosWG.Wait()
	faultpoint.DisarmAll()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	t.Logf("chaos: %d executions, %d failed, %d succeeded", goroutines*iters, failed.Load(), succeeded.Load())
	if succeeded.Load() == 0 {
		t.Fatal("no execution succeeded under chaos")
	}

	// Invariants after the storm: no leaked lease or worker slot, worker
	// goroutines gone, and the same prepared plans produce byte-identical
	// columns again.
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked", n)
	}
	if n := e.budget.InUse(); n != 0 {
		t.Fatalf("%d budget worker slots leaked", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Fatalf("goroutines leaked: %d before chaos, %d after", baseline, now)
	}
	for i, pr := range prs {
		res, err := pr.Execute(context.Background())
		if err != nil {
			t.Fatalf("execution after chaos: %v", err)
		}
		if err := sameResult(refs[i], res); err != nil {
			t.Fatalf("execution after chaos diverged: %v", err)
		}
	}
}
