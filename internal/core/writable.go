package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/costmodel"
	"morphstore/internal/delta"
	"morphstore/internal/dict"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
	"morphstore/internal/stats"
)

// This file implements the engine's writable-table layer on top of
// internal/delta: Append/Delete mutate a per-table delta store, Snapshot
// pins the consistent main+delta view every execution reads (execute() pins
// one at admission), and Remorph — called directly or by the background
// worker WithRemorph starts — folds a table's delta into a freshly
// compressed main chosen by the cost model, atomically swapped in while
// in-flight queries finish on the states they pinned.

// WithRemorph starts the engine's background remorph worker: every interval
// it scans the writable tables and rebuilds any whose delta (tail rows plus
// pending deletions) has reached threshold times the main row count
// (threshold <= 0 means any non-empty delta). Each rebuild rescans main plus
// delta off the hot path, re-picks every column's format with the cost model,
// compresses, and atomically swaps the new main in; queries already running
// finish on their pinned snapshots. The worker registers its rebuilds with
// the admission layer, so Engine.Close drains them like queries. Applies to
// NewEngine.
func WithRemorph(threshold float64, interval time.Duration) Option {
	return Option{name: "WithRemorph", scope: scopeEngine, apply: func(o *options) {
		o.remorphRatio, o.remorphEvery = threshold, interval
	}}
}

// Snapshot is a consistent read view over the engine's tables: each writable
// table is pinned at one delta state (epoch), and mutations or remorph swaps
// that happen later are invisible through it. Executions pin a snapshot at
// admission, so every operator of one query reads the same view. Tables
// never written through Append/Delete are served from base storage
// unchanged. A Snapshot is immutable and safe for concurrent use.
type Snapshot struct {
	states map[string]*delta.State
	// dicts pins, per writable table, the dictionary snapshot of each
	// dictionary-encoded column. Pinned after the table's state (and with
	// renumbering excluded by the engine's writable-set lock), each dict
	// snapshot covers every ID its state contains.
	dicts map[string]map[string]*dict.Snap
}

// Epoch returns the pinned delta epoch of a table (0 for tables without a
// delta store). Every Append, Delete, and remorph swap increments a table's
// epoch.
func (s *Snapshot) Epoch(table string) uint64 {
	if s == nil {
		return 0
	}
	if st, ok := s.states[table]; ok {
		return st.Epoch()
	}
	return 0
}

// Rows returns the live row count of a writable table at this snapshot; ok
// is false for tables without a delta store.
func (s *Snapshot) Rows(table string) (n int, ok bool) {
	if s == nil {
		return 0, false
	}
	st, found := s.states[table]
	if !found {
		return 0, false
	}
	return st.Rows(), true
}

// Dict returns the pinned dictionary snapshot of a dictionary-encoded
// column, or nil when the table is not writable at this snapshot (callers
// then read the live dictionary, which is equivalent for read-only tables).
// Use it to translate a query's result IDs back to strings consistently
// with the rows the same snapshot serves.
func (s *Snapshot) Dict(table, column string) *dict.Snap {
	if s == nil {
		return nil
	}
	return s.dicts[table][column]
}

// columnOr resolves a scan through the snapshot: writable tables serve the
// pinned merged main+delta view, everything else the prepare-bound column.
func (s *Snapshot) columnOr(fallback *columns.Column, table, column string) (*columns.Column, error) {
	if s == nil {
		return fallback, nil
	}
	st, ok := s.states[table]
	if !ok {
		return fallback, nil
	}
	return st.Column(column)
}

// writableTable pairs a table's delta store with the engine-side governor
// bookkeeping: one reservation per append batch, tagged with the tail length
// it ends at, released when a remorph folds the batch into the main. The
// mutex guards only resv (the delta store locks itself).
type writableTable struct {
	dt    *delta.Table
	dicts map[string]*dict.Dict // the table's string-column dictionaries

	mu   sync.Mutex
	resv []tailResv

	// ingestMu makes each AppendStrings batch's dictionary translation and
	// row append atomic with respect to a sorted-rebuild renumbering: the
	// remorph completion takes it, so no batch can append IDs of the old
	// numbering after the swap rewrote the tail.
	ingestMu sync.Mutex
}

// tailResv is one append batch's governor reservation.
type tailResv struct {
	tailEnd int // the table's tail length after the batch
	r       *ops.MemReservation
}

// writable returns (creating on first use) the delta store of a table. The
// first Append or Delete against a table makes it writable: from then on
// every execution resolves the table's scans through its pinned snapshot.
func (e *Engine) writable(name string) (*writableTable, error) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if wt, ok := e.wtabs[name]; ok {
		return wt, nil
	}
	t, ok := e.db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	dt, err := delta.NewTable(name, t.Cols)
	if err != nil {
		return nil, err
	}
	wt := &writableTable{dt: dt, dicts: t.Dicts}
	e.wtabs[name] = wt
	return wt, nil
}

// snapshotOrNil pins the current state of every writable table, or returns
// nil when the engine has none (the read-only fast path: executions then
// skip snapshot resolution entirely).
func (e *Engine) snapshotOrNil() *Snapshot {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if len(e.wtabs) == 0 {
		return nil
	}
	m := make(map[string]*delta.State, len(e.wtabs))
	for n, wt := range e.wtabs {
		m[n] = wt.dt.State()
	}
	// Dictionary snapshots are pinned after every table state: appends run
	// dict.Add before delta.Append, so a dict snapshot read later is a
	// superset of the IDs its state contains; renumbering swaps publish both
	// sides under e.wmu, which this holds.
	var dicts map[string]map[string]*dict.Snap
	for n, wt := range e.wtabs {
		if len(wt.dicts) == 0 {
			continue
		}
		if dicts == nil {
			dicts = make(map[string]map[string]*dict.Snap)
		}
		ds := make(map[string]*dict.Snap, len(wt.dicts))
		for cn, d := range wt.dicts {
			ds[cn] = d.Snap()
		}
		dicts[n] = ds
	}
	return &Snapshot{states: m, dicts: dicts}
}

// Snapshot pins the engine's current read view: each writable table at its
// current delta epoch. The snapshot stays consistent forever — concurrent
// Append/Delete calls and remorph swaps publish new states and never mutate
// pinned ones. Executions pin their own snapshot at admission; Snapshot is
// for callers that want to inspect epochs and row counts.
func (e *Engine) Snapshot() *Snapshot {
	if s := e.snapshotOrNil(); s != nil {
		return s
	}
	return &Snapshot{}
}

// Append appends rows to a table's delta store: rows maps every column of
// the table to equally long value slices (an error matching ErrInvalidSchema
// otherwise; the table is unchanged). The rows are visible to every
// execution admitted after Append returns; running executions keep their
// pinned snapshots. Appends are serialized per table, cheap (no
// re-compression — the remorph worker folds the delta in the background),
// and their bytes are reserved from the engine's memory governor
// (WithMemoryBudget): an append blocks under memory pressure until running
// queries release or a remorph folds earlier batches, honouring ctx. After
// Engine.Close, Append fails fast with ErrEngineClosed.
func (e *Engine) Append(ctx context.Context, table string, rows map[string][]uint64) (err error) {
	defer e.opGuard("append", &err)
	if e.err != nil {
		return e.err
	}
	exit, err := e.adm.enter()
	if err != nil {
		return err
	}
	defer exit()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopKill := context.AfterFunc(e.killCtx, cancel)
	defer stopKill()
	wt, err := e.writable(table)
	if err != nil {
		return err
	}
	var nrows int
	for _, vals := range rows {
		nrows = len(vals)
		break
	}
	mres, err := e.gov.Reserve(ctx, int64(nrows)*8*int64(len(rows)), nil)
	if err != nil {
		return err
	}
	st, n, err := wt.dt.Append(rows)
	if err != nil || n == 0 {
		mres.Release()
		return err
	}
	wt.mu.Lock()
	wt.resv = append(wt.resv, tailResv{tailEnd: st.TailRows(), r: mres})
	wt.mu.Unlock()
	e.counters.appends.Add(1)
	e.counters.appendedRows.Add(int64(n))
	return nil
}

// AppendStrings appends rows that mix plain uint64 columns (nums) and
// string columns (strs): every string column must be dictionary-encoded
// (AddStringColumn), its values are translated through the table's
// dictionary — new strings get fresh IDs in first-occurrence order — and the
// resulting ID rows append through the same delta path as Append, under the
// same admission, memory-governor, and Close semantics. nums and strs
// together must cover exactly the table's columns with equally long slices
// (ErrInvalidSchema otherwise; the rows are not appended, though novel
// strings of a failed batch may remain in the dictionary — harmless, they
// simply match no row). This is the supported append path for tables with
// string columns: it keeps translation atomic with the row append, so a
// concurrent remorph sorted-rebuild can never renumber IDs out from under a
// batch.
func (e *Engine) AppendStrings(ctx context.Context, table string, nums map[string][]uint64, strs map[string][]string) (err error) {
	defer e.opGuard("append_strings", &err)
	if e.err != nil {
		return e.err
	}
	exit, err := e.adm.enter()
	if err != nil {
		return err
	}
	defer exit()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopKill := context.AfterFunc(e.killCtx, cancel)
	defer stopKill()
	wt, err := e.writable(table)
	if err != nil {
		return err
	}
	for cn := range strs {
		if wt.dicts[cn] == nil {
			return qerr.Tag(fmt.Errorf("core: append to %q: %q is not a dictionary-encoded string column", table, cn), qerr.ErrInvalidSchema)
		}
	}
	nrows := 0
	for _, vals := range nums {
		nrows = len(vals)
		break
	}
	for _, vals := range strs {
		nrows = len(vals)
		break
	}
	if nrows == 0 && len(nums) == 0 && len(strs) == 0 {
		return nil
	}
	// Reserve before taking ingestMu: the reservation may block under memory
	// pressure and must not hold up a remorph swap while it waits.
	mres, err := e.gov.Reserve(ctx, int64(nrows)*8*int64(len(nums)+len(strs)), nil)
	if err != nil {
		return err
	}
	wt.ingestMu.Lock()
	rows := make(map[string][]uint64, len(nums)+len(strs))
	for cn, vals := range nums {
		rows[cn] = vals
	}
	for cn, vals := range strs {
		ids, derr := wt.dicts[cn].Add(vals)
		if derr != nil {
			wt.ingestMu.Unlock()
			mres.Release()
			return derr
		}
		if ids == nil {
			ids = []uint64{}
		}
		rows[cn] = ids
	}
	st, n, err := wt.dt.Append(rows)
	wt.ingestMu.Unlock()
	if err != nil || n == 0 {
		mres.Release()
		return err
	}
	wt.mu.Lock()
	wt.resv = append(wt.resv, tailResv{tailEnd: st.TailRows(), r: mres})
	wt.mu.Unlock()
	e.counters.appends.Add(1)
	e.counters.appendedRows.Add(int64(n))
	return nil
}

// Delete removes rows from a table by their current live position (0-based
// row numbers as a fresh query would see them). Duplicates are deleted once;
// an out-of-range position is an error and nothing is deleted. Deletions are
// applied as a mask at read time and folded into the main by the next
// remorph. Executions admitted after Delete returns see the rows gone;
// running executions keep their pinned snapshots. After Engine.Close, Delete
// fails fast with ErrEngineClosed.
func (e *Engine) Delete(ctx context.Context, table string, positions []uint64) (err error) {
	defer e.opGuard("delete", &err)
	if e.err != nil {
		return e.err
	}
	exit, err := e.adm.enter()
	if err != nil {
		return err
	}
	defer exit()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopKill := context.AfterFunc(e.killCtx, cancel)
	defer stopKill()
	if err := ctx.Err(); err != nil {
		return err
	}
	wt, err := e.writable(table)
	if err != nil {
		return err
	}
	_, n, err := wt.dt.Delete(positions)
	if err != nil {
		return err
	}
	e.counters.deletes.Add(1)
	e.counters.deletedRows.Add(int64(n))
	return nil
}

// Remorph folds a table's delta into a freshly compressed main immediately
// (the background worker runs the same pass on its own schedule): the live
// rows are rescanned at a pinned state, each column's format is re-picked by
// the cost model over the paper's formats, and the new main is atomically
// swapped in. Queries already running finish on their pinned snapshots — the
// swap never blocks them — and mutations that arrive during the rebuild
// survive it as the new delta. A table with an empty delta, or one whose
// rebuild is already running, is a no-op. After Engine.Close, Remorph fails
// fast with ErrEngineClosed.
func (e *Engine) Remorph(ctx context.Context, table string) (err error) {
	defer e.opGuard("remorph", &err)
	if e.err != nil {
		return e.err
	}
	exit, err := e.adm.enter()
	if err != nil {
		return err
	}
	defer exit()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopKill := context.AfterFunc(e.killCtx, cancel)
	defer stopKill()
	wt, err := e.writable(table)
	if err != nil {
		return err
	}
	return e.remorphTable(ctx, wt)
}

// remorphTable runs one rebuild+swap attempt against a writable table. The
// caller holds an admission registration; remorphTable claims the table's
// rebuild slot (no-op when taken or the delta is empty), rebuilds every
// column off the hot path, and completes the swap under the table mutex. A
// failure — cancellation, a compression error, an injected RemorphSwap
// fault — aborts the attempt with the old state intact; the worker retries
// on its next tick.
func (e *Engine) remorphTable(ctx context.Context, wt *writableTable) (err error) {
	s0, ok := wt.dt.BeginRebuild()
	if !ok {
		return nil
	}
	defer wt.dt.EndRebuild()
	start := time.Now()
	var span metrics.Span
	tr := e.defs.tracer
	if tr != nil {
		span = metrics.Span{Query: metrics.ReserveQueryID(), Node: -1, Name: wt.dt.Name(), Op: "remorph"}
		tr.Begin(span, start)
		defer func() {
			ns := metrics.NodeStats{Node: -1, Name: wt.dt.Name(), Op: "remorph",
				Started: true, Done: err == nil, Wall: time.Since(start)}
			if err != nil {
				ns.Err = err.Error()
			}
			tr.End(span, time.Now(), ns)
		}()
	}
	defer func() {
		if err != nil {
			e.counters.remorphFailed.Add(1)
		}
	}()
	// Dictionary columns piggyback a sorted rebuild on the fold: the live ID
	// values are renumbered into lexicographic order (so prefix predicates
	// become contiguous ID ranges) before compression, and the renumbered
	// dictionaries publish atomically with the swap below. Each rebuild is
	// pinned against a dictionary snapshot taken after s0, which therefore
	// covers every ID s0 contains.
	var rebuilds map[string]*dict.Rebuild
	for cn, d := range wt.dicts {
		if r := d.BeginSorted(); r != nil {
			if rebuilds == nil {
				rebuilds = make(map[string]*dict.Rebuild)
			}
			rebuilds[cn] = r
		}
	}
	newMain := make(map[string]*columns.Column, len(wt.dt.Columns()))
	for _, cn := range wt.dt.Columns() {
		if err := ctx.Err(); err != nil {
			return err
		}
		vals, err := s0.LiveValues(cn)
		if err != nil {
			return err
		}
		if r := rebuilds[cn]; r != nil {
			r.RemapAll(vals)
		}
		desc := columns.UncomprDesc
		if len(vals) > 0 {
			if d, err := costmodel.ChooseBySize(stats.Collect(vals), formats.PaperDescs()); err == nil {
				desc = d
			}
		}
		col, err := formats.Compress(vals, desc)
		if err != nil {
			return fmt.Errorf("core: remorph %q.%q: %w", wt.dt.Name(), cn, err)
		}
		newMain[cn] = col
	}
	if err := hitGuarded(faultpoint.RemorphSwap); err != nil {
		return err
	}
	var res delta.SwapResult
	if len(rebuilds) == 0 {
		res, err = wt.dt.CompleteRebuild(s0, newMain)
	} else {
		// A renumbering swap publishes state and dictionaries atomically:
		// ingestMu excludes in-flight translate+append batches, e.wmu excludes
		// snapshot pinning, and the onSwap callback runs under the delta
		// table's mutex right before the new state is stored.
		remaps := make(map[string][]uint64, len(rebuilds))
		for cn, r := range rebuilds {
			remaps[cn] = r.RemapTable()
		}
		wt.ingestMu.Lock()
		e.wmu.Lock()
		res, err = wt.dt.CompleteRebuildRemap(s0, newMain, remaps, func() {
			for cn, r := range rebuilds {
				wt.dicts[cn].CompleteSorted(r)
			}
		})
		e.wmu.Unlock()
		wt.ingestMu.Unlock()
	}
	if err != nil {
		return err
	}
	wt.releaseFolded(res.FoldedTail)
	e.counters.remorphs.Add(1)
	e.counters.remorphRows.Add(int64(res.State.MainRows()))
	if tr != nil {
		tr.Event(span, time.Now(),
			metrics.Event{Kind: metrics.EvRemorphSwap, Value: int64(res.FoldedTail + res.FoldedDeletes)})
	}
	return nil
}

// releaseFolded returns the governor reservations of append batches the swap
// folded into the main (batch boundaries align with fold boundaries: both
// are published tail lengths) and rebases the survivors onto the new tail
// numbering.
func (wt *writableTable) releaseFolded(folded int) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	keep := wt.resv[:0]
	for _, r := range wt.resv {
		if r.tailEnd <= folded {
			r.r.Release()
		} else {
			r.tailEnd -= folded
			keep = append(keep, r)
		}
	}
	wt.resv = keep
}

// releaseDeltaReservations returns every writable table's outstanding
// governor reservations; Close calls it after the drain so a closed engine
// holds no reservations.
func (e *Engine) releaseDeltaReservations() {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	for _, wt := range e.wtabs {
		wt.mu.Lock()
		for _, r := range wt.resv {
			r.r.Release()
		}
		wt.resv = nil
		wt.mu.Unlock()
	}
}

// remorphLoop is the background worker WithRemorph starts: on every tick it
// sweeps the writable tables and rebuilds the over-threshold ones. It exits
// when Close signals remorphStop.
func (e *Engine) remorphLoop() {
	defer close(e.remorphDone)
	t := time.NewTicker(e.remorphEvery)
	defer t.Stop()
	for {
		select {
		case <-e.remorphStop:
			return
		case <-t.C:
			e.remorphSweep()
		}
	}
}

// remorphSweep runs one worker pass: every writable table whose delta
// crossed the threshold is rebuilt, each rebuild registered with the
// admission layer (so Close drains it) and cancelled through killCtx when
// Close abandons the graceful drain. Errors are counted (remorphFailed) and
// retried on the next tick.
func (e *Engine) remorphSweep() {
	e.wmu.Lock()
	wts := make([]*writableTable, 0, len(e.wtabs))
	for _, wt := range e.wtabs {
		wts = append(wts, wt)
	}
	e.wmu.Unlock()
	for _, wt := range wts {
		if !remorphDue(wt.dt.State(), e.remorphRatio) {
			continue
		}
		exit, err := e.adm.enter()
		if err != nil {
			return // engine closed
		}
		func() {
			defer exit()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stopKill := context.AfterFunc(e.killCtx, cancel)
			defer stopKill()
			var rerr error
			defer e.opGuard("remorph", &rerr)
			rerr = e.remorphTable(ctx, wt)
		}()
	}
}

// remorphDue reports whether a table's delta has crossed the rebuild
// threshold: tail rows plus pending deletions at ratio times the main rows
// (ratio <= 0: any non-empty delta; an empty main folds on any delta).
func remorphDue(st *delta.State, ratio float64) bool {
	pending := st.TailRows() + st.DeletedRows()
	if pending == 0 {
		return false
	}
	if ratio <= 0 || st.MainRows() == 0 {
		return true
	}
	return float64(pending) >= ratio*float64(st.MainRows())
}
