package core

import (
	"context"
	"sync"
	"time"
)

// This file implements the concurrent plan execution: a dependency-counting
// DAG scheduler that runs independent plan operators on a small pool of
// worker goroutines. Independent branches — e.g. the dimension-table selects
// of the SSB Q4.x plans — proceed concurrently, while every node still sees
// fully materialized inputs (operator-at-a-time semantics are preserved, so
// the produced columns are byte-identical to the sequential execution).
//
// Worker-budget sharing is no longer the scheduler's job: every running
// operator holds a lease on the engine-wide ops.Budget (see runNode), which
// re-divides the allowance whenever an operator — of this query or of any
// concurrently executing query — starts or finishes. A lone operator ramps
// up to the whole budget the moment its siblings complete instead of
// keeping its initial share.
//
// Synchronization model: a node's outputs (execState.outs) are written by
// the worker that ran it and published under the scheduler mutex when its
// dependents' counters are decremented; a dependent is only popped from the
// ready queue under the same mutex, which establishes the happens-before
// edge for the outputs it reads. Result accounting happens under the mutex
// too, keeping the Measure maps race-free.
//
// Cancellation: a watcher goroutine flips the scheduler to done when the
// context fires, so idle workers return immediately; workers running an
// operator notice the cancellation inside the morsel loops (within one
// morsel) and surface ctx.Err() through the node result.

// sched is the mutable scheduler state, guarded by mu. cancel is set once
// before the workers start and never mutated, so workers read it unlocked.
type sched struct {
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []int   // node ids ready to run
	deps       []int   // open dependency count per node
	dependents [][]int // node ids waiting on each node
	completed  int
	total      int
	err        error
	done       bool
	cancel     context.CancelFunc // cancels the plan-internal context
}

// runConcurrent executes the plan DAG on min(par, nodes) workers. The plan
// runs under its own cancellable context derived from ctx: the first failing
// node cancels it, so the morsel loops of concurrently running sibling
// operators stop within one morsel instead of completing work whose result
// the failed execution can never use.
func (pr *Prepared) runConcurrent(ctx context.Context, es *execState, res *Result, keep bool, par int) error {
	ctx, cancelPlan := context.WithCancel(ctx)
	defer cancelPlan()
	total := len(pr.p.nodes)
	s := &sched{
		deps:       make([]int, total),
		dependents: make([][]int, total),
		total:      total,
		cancel:     cancelPlan,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, n := range pr.p.nodes {
		seen := make(map[int]bool, len(n.inputs))
		for _, in := range n.inputs {
			id := in.node.id
			if !seen[id] {
				seen[id] = true
				s.deps[n.id]++
				s.dependents[id] = append(s.dependents[id], n.id)
			}
		}
	}
	for id := 0; id < total; id++ {
		if s.deps[id] == 0 {
			s.queue = append(s.queue, id)
		}
	}

	// The watcher turns a context cancellation into a scheduler wake-up so
	// workers parked on the condition variable return promptly.
	watchDone := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		defer close(watchDone)
		s.mu.Lock()
		if s.err == nil && !s.done {
			s.err = ctx.Err()
			s.done = true
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	})
	defer func() {
		if !stop() {
			<-watchDone // the watcher ran; wait so it cannot outlive Execute
		}
	}()

	workers := min(par, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr.schedWorker(ctx, s, es, res, keep, par)
		}()
	}
	wg.Wait()
	return s.err
}

// schedWorker pulls ready nodes until the plan completes or fails.
func (pr *Prepared) schedWorker(ctx context.Context, s *sched, es *execState, res *Result, keep bool, par int) {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.done {
			s.cond.Wait()
		}
		if s.done || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		id := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.mu.Unlock()

		bn := &pr.bound[id]
		start := time.Now()
		produced, err := pr.runNode(ctx, es, bn, par)
		elapsed := time.Since(start)

		s.mu.Lock()
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			s.done = true
			// Recorded under the mutex first, cancelled after: the watcher
			// checks done before overwriting err, so the node's error — not
			// the derived context's — is what Execute reports.
			s.cancel()
		} else if s.err == nil {
			es.outs[id] = produced
			pr.account(res, bn.n, produced, elapsed, keep)
			for _, d := range s.dependents[id] {
				s.deps[d]--
				if s.deps[d] == 0 {
					s.queue = append(s.queue, d)
				}
			}
		}
		s.completed++
		if s.completed == s.total {
			s.done = true
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
