package core

import (
	"sync"
	"time"
)

// This file implements the concurrent plan execution: a dependency-counting
// DAG scheduler that runs independent plan operators on a small pool of
// worker goroutines. Independent branches — e.g. the dimension-table selects
// of the SSB Q4.x plans — proceed concurrently, while every node still sees
// fully materialized inputs (operator-at-a-time semantics are preserved, so
// the produced columns are byte-identical to the sequential execution).
//
// Synchronization model: a node's outputs (executor.outs) are written by the
// worker that ran it and published under the scheduler mutex when its
// dependents' counters are decremented; a dependent is only popped from the
// ready queue under the same mutex, which establishes the happens-before
// edge for the outputs it reads. Result accounting happens under the mutex
// too, keeping the Measure maps race-free.

// sched is the mutable scheduler state, guarded by mu.
type sched struct {
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []int   // node ids ready to run
	deps       []int   // open dependency count per node
	dependents [][]int // node ids waiting on each node
	inflight   int     // nodes currently executing
	completed  int
	total      int
	err        error
	done       bool
}

// runConcurrent executes the plan DAG on min(par, nodes) workers.
func (e *executor) runConcurrent() error {
	total := len(e.p.nodes)
	s := &sched{
		deps:       make([]int, total),
		dependents: make([][]int, total),
		total:      total,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, n := range e.p.nodes {
		seen := make(map[int]bool, len(n.inputs))
		for _, in := range n.inputs {
			id := in.node.id
			if !seen[id] {
				seen[id] = true
				s.deps[n.id]++
				s.dependents[id] = append(s.dependents[id], n.id)
			}
		}
	}
	for id := 0; id < total; id++ {
		if s.deps[id] == 0 {
			s.queue = append(s.queue, id)
		}
	}
	workers := e.par
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.schedWorker(s)
		}()
	}
	wg.Wait()
	return s.err
}

// schedWorker pulls ready nodes until the plan completes or fails.
func (e *executor) schedWorker(s *sched) {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.done {
			s.cond.Wait()
		}
		if s.done || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		id := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inflight++
		// Share the morsel budget among the operators running right now: a
		// lone operator (linear plan segment) gets the whole budget, while
		// concurrent independent branches split it, keeping the total number
		// of kernel workers near e.par instead of multiplying.
		par := e.par / s.inflight
		if par < 1 {
			par = 1
		}
		s.mu.Unlock()

		n := e.p.nodes[id]
		start := time.Now()
		produced, err := e.runNode(n, par)
		elapsed := time.Since(start)

		s.mu.Lock()
		s.inflight--
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			s.done = true
		} else if s.err == nil {
			e.outs[id] = produced
			e.account(n, produced, elapsed)
			for _, d := range s.dependents[id] {
				s.deps[d]--
				if s.deps[d] == 0 {
					s.queue = append(s.queue, d)
				}
			}
		}
		s.completed++
		if s.completed == s.total {
			s.done = true
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
