package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
)

// TestAddTableValidation checks the typed schema errors of DB.AddTable:
// ragged columns and duplicate registrations are rejected, the database
// unchanged.
func TestAddTableValidation(t *testing.T) {
	db := NewDB()
	if err := db.AddTable("t", map[string][]uint64{"a": {1, 2, 3}, "b": {4, 5}}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("ragged AddTable: err = %v, want ErrInvalidSchema", err)
	}
	if len(db.Tables) != 0 {
		t.Fatal("failed AddTable must not register the table")
	}
	if err := db.AddTable("t", map[string][]uint64{"a": {1, 2}, "b": {3, 4}}); err != nil {
		t.Fatalf("valid AddTable: %v", err)
	}
	if err := db.AddTable("t", map[string][]uint64{"a": {9}}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("duplicate AddTable: err = %v, want ErrInvalidSchema", err)
	}
	if col, err := db.Column("t", "a"); err != nil || col.N() != 2 {
		t.Fatalf("duplicate AddTable clobbered the table: col=%v err=%v", col, err)
	}
}

// scanAllPlan reads every live value of t.v: positions of v >= 0 projected
// back onto v.
func scanAllPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	v := b.Scan("t", "v")
	pos := b.Select("pos", v, bitutil.CmpGe, 0)
	b.Result(b.Project("vals", v, pos))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func resultValues(t *testing.T, res *Result, name string) []uint64 {
	t.Helper()
	col := res.Cols[name]
	if col == nil {
		t.Fatalf("result column %q missing", name)
	}
	vals, err := formats.Decompress(col)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestWritableVisibility walks the write path end to end: appends and
// deletes become visible to executions admitted after them, a remorph folds
// the delta without changing query results, and the counters and snapshot
// epochs track every step.
func TestWritableVisibility(t *testing.T) {
	base := make([]uint64, 700)
	for i := range base {
		base[i] = uint64(i)
	}
	db := NewDB()
	if err := db.AddTable("t", map[string][]uint64{"v": base}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, WithParallelism(2))
	defer e.Close(context.Background())
	pr, err := e.Prepare(scanAllPlan(t), WithUniformFormat(columns.DynBPDesc), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	model := append([]uint64(nil), base...)
	check := func(stage string) {
		t.Helper()
		res, err := pr.Execute(ctx)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		got := resultValues(t, res, "vals")
		if len(got) != len(model) {
			t.Fatalf("%s: %d rows, want %d", stage, len(got), len(model))
		}
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("%s: row %d = %d, want %d", stage, i, got[i], model[i])
			}
		}
	}
	check("read-only")

	if err := e.Append(ctx, "t", map[string][]uint64{"v": {700, 701, 702, 703, 704}}); err != nil {
		t.Fatal(err)
	}
	model = append(model, 700, 701, 702, 703, 704)
	check("after append")

	if err := e.Delete(ctx, "t", []uint64{0, 1, 700}); err != nil {
		t.Fatal(err)
	}
	model = append(model[2:700:700], model[701:]...)
	check("after delete")

	epochBefore := e.Snapshot().Epoch("t")
	if err := e.Remorph(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	check("after remorph")
	if ep := e.Snapshot().Epoch("t"); ep <= epochBefore {
		t.Fatalf("remorph did not bump the epoch: %d -> %d", epochBefore, ep)
	}
	if n, ok := e.Snapshot().Rows("t"); !ok || n != len(model) {
		t.Fatalf("Snapshot.Rows = %d,%v, want %d,true", n, ok, len(model))
	}

	st := e.Stats()
	if st.Appends != 1 || st.AppendedRows != 5 || st.Deletes != 1 || st.DeletedRows != 3 {
		t.Fatalf("write counters: %+v", st)
	}
	if st.Remorphs != 1 || st.RemorphFailures != 0 || st.RemorphRows != int64(len(model)) {
		t.Fatalf("remorph counters: remorphs=%d failures=%d rows=%d", st.Remorphs, st.RemorphFailures, st.RemorphRows)
	}
	if st.DeltaTables != 1 || st.DeltaRows != 0 || st.DeltaDeleted != 0 {
		t.Fatalf("delta gauges after fold: %+v", st)
	}

	// Appending to an unknown table and bad schema fail typed, engine intact.
	if err := e.Append(ctx, "nope", map[string][]uint64{"v": {1}}); err == nil {
		t.Fatal("append to unknown table must fail")
	}
	if err := e.Append(ctx, "t", map[string][]uint64{"wrong": {1}}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("bad-schema append: err = %v, want ErrInvalidSchema", err)
	}
	check("after failed appends")
}

// TestWritableBackgroundRemorph checks the WithRemorph worker folds a
// crossed-threshold delta on its own and Close stops it cleanly.
func TestWritableBackgroundRemorph(t *testing.T) {
	base := make([]uint64, 512)
	for i := range base {
		base[i] = uint64(i * 3)
	}
	db := NewDB()
	if err := db.AddTable("t", map[string][]uint64{"v": base}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, WithParallelism(2), WithRemorph(0.01, time.Millisecond))
	ctx := context.Background()
	if err := e.Append(ctx, "t", map[string][]uint64{"v": {1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Remorphs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := e.Stats(); st.Remorphs == 0 {
		t.Fatal("background worker never folded the delta")
	}
	if st := e.Snapshot(); st.Epoch("t") == 0 {
		t.Fatal("worker fold did not publish a new epoch")
	}
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(ctx, "t", map[string][]uint64{"v": {9}}); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("append after close: err = %v, want ErrEngineClosed", err)
	}
	if err := e.Remorph(ctx, "t"); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("remorph after close: err = %v, want ErrEngineClosed", err)
	}
}

// TestSnapshotPinnedAcrossSwap proves a remorph swap never blocks an
// in-flight query: a query is stalled inside a kernel, a full rebuild+swap
// completes while it is stalled, and the released query still finishes on
// its pinned snapshot with the correct result.
func TestSnapshotPinnedAcrossSwap(t *testing.T) {
	defer faultpoint.DisarmAll()
	// Big enough that the select driver splits into several morsels — the
	// kernel-body fault point only fires in the parallel morsel loop.
	base := make([]uint64, 6000)
	for i := range base {
		base[i] = uint64(i)
	}
	db := NewDB()
	if err := db.AddTable("t", map[string][]uint64{"v": base}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, WithParallelism(2))
	defer e.Close(context.Background())
	pr, err := e.Prepare(scanAllPlan(t), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Append(ctx, "t", map[string][]uint64{"v": {6000, 6001, 6002}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ctx, "t", []uint64{10}); err != nil {
		t.Fatal(err)
	}
	pinnedEpoch := e.Snapshot().Epoch("t")

	// Stall every kernel of the next execution until released.
	var enterOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	faultpoint.KernelBody.Arm(func() error {
		enterOnce.Do(func() { close(entered) })
		<-release
		return nil
	})

	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := pr.Execute(ctx)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()
	select {
	case <-entered:
	case err := <-errCh:
		t.Fatalf("stalled query failed early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached a kernel")
	}

	// The swap must complete while the query is still stalled mid-kernel.
	swapDone := make(chan error, 1)
	go func() { swapDone <- e.Remorph(ctx, "t") }()
	select {
	case err := <-swapDone:
		if err != nil {
			t.Fatalf("remorph with a pinned in-flight query: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remorph blocked on an in-flight query")
	}
	if ep := e.Snapshot().Epoch("t"); ep <= pinnedEpoch {
		t.Fatalf("swap did not publish: epoch %d after %d", ep, pinnedEpoch)
	}

	faultpoint.KernelBody.Disarm()
	close(release)
	var res *Result
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatalf("pinned query failed after swap: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("pinned query never finished")
	}
	got := resultValues(t, res, "vals")
	want := append(append(append([]uint64(nil), base[:10]...), base[11:]...), 6000, 6001, 6002)
	if len(got) != len(want) {
		t.Fatalf("pinned query saw %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pinned query row %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestChaosWritableClose races Engine.Close against concurrent appends,
// deletes, explicit remorphs, the background remorph worker, and executing
// queries while random fault points — including the write-path points
// append-log, delta-merge, and remorph-swap — inject errors, panics, and
// delays. Every failure must be a taxonomy error and Close must leak no
// goroutine, budget lease, or memory reservation.
func TestChaosWritableClose(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	baseline := runtime.NumGoroutine()

	e := NewEngine(db, WithParallelism(4),
		WithMaxConcurrentQueries(4),
		WithAdmissionQueue(8, 2*time.Millisecond),
		WithMemoryBudget(1<<30),
		WithRemorph(0, time.Millisecond))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(31))
		points := faultpoint.Points()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(4) == 0 {
				faultpoint.DisarmAll()
			} else {
				chaosArm(points[rng.Intn(len(points))], rng.Intn(6))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const goroutines, iters = 8, 16
	var closed atomic.Bool
	var mutOK, mutFail atomic.Int64
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < iters; i++ {
				var err error
				switch g % 4 {
				case 0: // appender
					n := 1 + rng.Intn(16)
					rows := map[string][]uint64{"fk": make([]uint64, n), "qty": make([]uint64, n), "price": make([]uint64, n)}
					for k := 0; k < n; k++ {
						rows["fk"][k] = uint64(rng.Intn(400))
						rows["qty"][k] = uint64(rng.Intn(50))
						rows["price"][k] = uint64(100 + rng.Intn(900))
					}
					err = e.Append(ctx, "fact", rows)
				case 1: // deleter: positions stay far below the live row floor
					err = e.Delete(ctx, "fact", []uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256))})
				case 2: // remorpher
					err = e.Remorph(ctx, "fact")
				default: // querier
					_, err = pr.Execute(ctx)
				}
				if err != nil {
					mutFail.Add(1)
					if !chaosTyped(err) && !errors.Is(err, qerr.ErrInvalidSchema) {
						errCh <- fmt.Errorf("goroutine %d iter %d: untyped chaos error: %v", g, i, err)
						return
					}
					if closed.Load() && errors.Is(err, qerr.ErrEngineClosed) {
						return
					}
					continue
				}
				mutOK.Add(1)
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	closed.Store(true)
	cctx, ccancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := e.Close(cctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && !chaosTyped(err) {
		t.Errorf("close under chaos: %v", err)
	}
	ccancel()

	wg.Wait()
	close(stop)
	chaosWG.Wait()
	faultpoint.DisarmAll()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	t.Logf("chaos writable close: %d ok, %d failed before/through close", mutOK.Load(), mutFail.Load())

	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close after chaos: %v", err)
	}
	for name, err := range map[string]error{
		"append":  e.Append(ctx, "fact", map[string][]uint64{"fk": {1}, "qty": {1}, "price": {1}}),
		"delete":  e.Delete(ctx, "fact", []uint64{0}),
		"remorph": e.Remorph(ctx, "fact"),
	} {
		if !errors.Is(err, qerr.ErrEngineClosed) {
			t.Fatalf("%s after close: err = %v, want ErrEngineClosed", name, err)
		}
	}

	if c := e.adm.counters(); c.inflight != 0 || c.queued != 0 {
		t.Fatalf("admission not drained: inflight=%d queued=%d", c.inflight, c.queued)
	}
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked", n)
	}
	if n := e.gov.Reserved(); n != 0 {
		t.Fatalf("%d bytes of memory reservation leaked (delta reservations must be released by Close)", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Fatalf("goroutines leaked: %d before chaos, %d after", baseline, now)
	}
}
