package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// TestEngineQueryTimeout: WithQueryTimeout must stop a running query and the
// error must match ErrQueryTimeout; the engine stays usable afterwards.
func TestEngineQueryTimeout(t *testing.T) {
	db, plan := bigCancelDB(t)
	e := NewEngine(db, WithParallelism(2))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Execute(context.Background(), WithQueryTimeout(time.Millisecond)); !errors.Is(err, qerr.ErrQueryTimeout) {
		t.Fatalf("timed-out execution: %v, want ErrQueryTimeout", err)
	}
	// The timeout is per execution, not sticky state on the prepared plan.
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatalf("execution after timeout: %v", err)
	}
	// A pre-cancelled caller context classifies as a cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.Execute(ctx); !errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("pre-cancelled execution: %v, want ErrQueryCanceled", err)
	}
}

// TestEngineMemoryEstimateLimit: an over-limit plan must fail Prepare with
// ErrMemoryLimit, and with degradation enabled it must instead prepare
// pinned to sequential execution with byte-identical results.
func TestEngineMemoryEstimateLimit(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(4), WithStyle(vector.Vec512))

	free, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	est := free.MemoryEstimate()
	if est <= 0 {
		t.Fatalf("memory estimate = %d, want > 0", est)
	}
	if free.Degraded() {
		t.Fatal("unlimited prepare marked degraded")
	}
	ref, err := free.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Under the limit: accepted unchanged.
	ok, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc), WithMemoryEstimateLimit(est))
	if err != nil {
		t.Fatalf("prepare at exactly the estimate: %v", err)
	}
	if ok.Degraded() {
		t.Fatal("plan at the limit marked degraded")
	}

	// Over the limit: rejected with the typed sentinel.
	_, err = e.Prepare(plan, WithUniformFormat(columns.DynBPDesc), WithMemoryEstimateLimit(est-1))
	if !errors.Is(err, qerr.ErrMemoryLimit) {
		t.Fatalf("over-limit prepare: %v, want ErrMemoryLimit", err)
	}

	// Over the limit with degradation: accepted, pinned sequential, same bytes.
	deg, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc),
		WithMemoryEstimateLimit(est-1), WithMemoryLimitDegrade(true))
	if err != nil {
		t.Fatalf("degraded prepare: %v", err)
	}
	if !deg.Degraded() {
		t.Fatal("over-limit degradable plan not marked degraded")
	}
	if deg.MemoryEstimate() != est {
		t.Fatalf("degraded estimate = %d, want %d", deg.MemoryEstimate(), est)
	}
	res, err := deg.Execute(context.Background())
	if err != nil {
		t.Fatalf("degraded execution: %v", err)
	}
	if err := sameResult(ref, res); err != nil {
		t.Fatalf("degraded execution diverged: %v", err)
	}
}

// TestEngineAdmissionRejectedTyped: a query whose context fires while parked
// in the admission queue classifies as ErrAdmissionRejected — never as the
// mid-flight sentinels ErrQueryTimeout/ErrQueryCanceled — for both expiry
// flavours and in both orderings (context already expired before the admit
// call, and expiring while parked). The raw context sentinel stays in the
// wrap chain. This is the regression test for the old gate's classification
// ambiguity (a select racing an expired ctx against a free slot).
func TestEngineAdmissionRejectedTyped(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2), WithMaxConcurrentQueries(1))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.UncomprDesc))
	if err != nil {
		t.Fatal(err)
	}
	release, _, err := e.adm.admit(context.Background()) // occupy the slot deterministically
	if err != nil {
		t.Fatal(err)
	}

	// Deadline flavour, expiry while parked.
	_, err = pr.Execute(context.Background(), WithQueryTimeout(time.Millisecond))
	if !errors.Is(err, qerr.ErrAdmissionRejected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out waiter: %v, want ErrAdmissionRejected wrapping DeadlineExceeded", err)
	}
	if errors.Is(err, qerr.ErrQueryTimeout) {
		t.Fatalf("timed-out waiter classified mid-flight: %v", err)
	}

	// Cancel flavour, expiry while parked.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(time.Millisecond); cancel() }()
	_, err = pr.Execute(ctx)
	if !errors.Is(err, qerr.ErrAdmissionRejected) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v, want ErrAdmissionRejected wrapping Canceled", err)
	}
	if errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("cancelled waiter classified mid-flight: %v", err)
	}

	// Opposite ordering: the context is already expired when Execute is
	// called (the racy case of the old gate). Both flavours must still
	// reject, deterministically.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if _, err := pr.Execute(done); !errors.Is(err, qerr.ErrAdmissionRejected) || errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("pre-cancelled execute: %v, want ErrAdmissionRejected without ErrQueryCanceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := pr.Execute(dctx); !errors.Is(err, qerr.ErrAdmissionRejected) || errors.Is(err, qerr.ErrQueryTimeout) {
		t.Fatalf("pre-expired execute: %v, want ErrAdmissionRejected without ErrQueryTimeout", err)
	}

	// All four sheds are retryable: the queries never started.
	if !qerr.IsRetryable(err) {
		t.Fatalf("admission rejection not retryable: %v", err)
	}

	release()
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatalf("execution after slot released: %v", err)
	}
	st := e.Stats()
	if st.AdmissionShedExpired != 4 || st.QueriesRejected != 4 {
		t.Fatalf("shed accounting: expired=%d rejected=%d, want 4/4", st.AdmissionShedExpired, st.QueriesRejected)
	}
}

// TestPreparedExecuteAfterFailure: a failed execution — recovered panic or
// cancellation — must leave the Prepared fully usable, with subsequent
// executions byte-identical to an untroubled run.
func TestPreparedExecuteAfterFailure(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(4), WithStyle(vector.Vec512))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DeltaBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faultpoint.KernelBody.Arm(func() error { panic("injected kernel panic") })
	_, err = pr.Execute(context.Background())
	var qe *qerr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("kernel panic did not surface as QueryError: %v", err)
	}
	if qe.Op == "" {
		t.Fatalf("QueryError lost its operator: %+v", qe)
	}
	faultpoint.DisarmAll()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.Execute(ctx); !errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("cancelled execution: %v", err)
	}

	for i := 0; i < 3; i++ {
		res, err := pr.Execute(context.Background())
		if err != nil {
			t.Fatalf("execution %d after failures: %v", i, err)
		}
		if err := sameResult(ref, res); err != nil {
			t.Fatalf("execution %d after failures diverged: %v", i, err)
		}
	}
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked", n)
	}
}
