package core

import (
	"morphstore/internal/bitutil"
	"morphstore/internal/ops"
)

// InputRef addresses one output of one node by position.
type InputRef struct {
	// Node is the producing node's id; Out the output index.
	Node, Out int
}

// NodeInfo is a read-only view of one plan operator. It exists so that
// alternative engines — the MonetDB-style baseline in internal/monetsim —
// can interpret exactly the same query execution plans, which is how the
// paper ensures a fair comparison (same plan shape, same join order).
type NodeInfo struct {
	ID       int
	Op       OpKind
	Cmp      bitutil.CmpKind
	Calc     ops.CalcKind
	Val      uint64
	Val2     uint64
	Table    string
	Column   string
	StrKind  StrPredKind // OpSelectStr: the predicate flavor
	StrVal   string      // OpSelectStr: the eq/prefix value
	StrVals  []string    // OpSelectStr: the IN values
	Inputs   []InputRef
	OutNames []string
}

// Nodes returns the plan's operators in topological order.
func (p *Plan) Nodes() []NodeInfo {
	out := make([]NodeInfo, len(p.nodes))
	for i, n := range p.nodes {
		ins := make([]InputRef, len(n.inputs))
		for j, r := range n.inputs {
			ins[j] = InputRef{Node: r.node.id, Out: r.out}
		}
		out[i] = NodeInfo{
			ID: n.id, Op: n.op, Cmp: n.cmp, Calc: n.calc,
			Val: n.val, Val2: n.val2, Table: n.table, Column: n.column,
			StrKind: n.strKind, StrVal: n.strVal,
			StrVals: append([]string(nil), n.strVals...),
			Inputs:  ins, OutNames: append([]string(nil), n.outNames...),
		}
	}
	return out
}

// Sinks returns the result columns as (node, output) references.
func (p *Plan) Sinks() []InputRef {
	out := make([]InputRef, len(p.sinks))
	for i, r := range p.sinks {
		out[i] = InputRef{Node: r.node.id, Out: r.out}
	}
	return out
}

// SinkNames returns the result column names in sink order.
func (p *Plan) SinkNames() []string {
	out := make([]string, len(p.sinks))
	for i, r := range p.sinks {
		out[i] = r.Name()
	}
	return out
}
