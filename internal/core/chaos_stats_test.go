package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/metrics"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// coherentStatsTree checks the invariants every collected execution must
// satisfy regardless of outcome: a fully-labelled tree of the plan's size
// where node state is consistent (never Done with an error, never finished
// without starting) and, on failure, the failure is recorded. It returns
// instead of t.Fatal-ing so chaos worker goroutines can use it.
func coherentStatsTree(qs *metrics.QueryStats, nodes int, execErr error) error {
	if len(qs.Nodes) != nodes {
		return fmt.Errorf("tree has %d nodes, want %d", len(qs.Nodes), nodes)
	}
	if (execErr != nil) != qs.Failed {
		return fmt.Errorf("Failed = %v with execution error %v", qs.Failed, execErr)
	}
	if qs.Failed && qs.Err == "" {
		return fmt.Errorf("failed execution with empty Err")
	}
	for i, ns := range qs.Nodes {
		if ns.Node != i {
			return fmt.Errorf("node %d labelled %d", i, ns.Node)
		}
		if ns.Name == "" || ns.Op == "" {
			return fmt.Errorf("node %d missing identity: %+v", i, ns)
		}
		if ns.Done && ns.Err != "" {
			return fmt.Errorf("node %d both Done and erred %q", i, ns.Err)
		}
		if !ns.Started && (ns.Done || ns.Err != "" || ns.Morsels != 0) {
			return fmt.Errorf("node %d never started but carries outcomes: %+v", i, ns)
		}
		if execErr == nil && !ns.Done {
			return fmt.Errorf("node %d not Done after a successful execution", i)
		}
		for _, in := range ns.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("node %d input %d out of topological range", i, in)
			}
		}
	}
	return nil
}

// TestChaosStatsTree reruns the concurrent chaos storm with a stats
// collector attached to every execution and a shared JSONL tracer on part of
// them: every outcome — success, injected error, panic, timeout — must leave
// a coherent (possibly partial) stats tree, panics must attach the tree to
// their *qerr.QueryError, and the storm must leak no lease, worker slot, or
// goroutine. Runs under -race -cpu 1,2,4 in the CI chaos job.
func TestChaosStatsTree(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	enc, err := db.Encode(map[string]columns.FormatDesc{
		"fact.fk":  columns.StaticBPDesc(0),
		"fact.qty": columns.StaticBPDesc(0),
		"dim.id":   columns.StaticBPDesc(0),
		"dim.attr": columns.DynBPDesc,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(enc, WithParallelism(4), WithStyle(vector.Vec512))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nodes := len(pr.p.nodes)
	baseline := runtime.NumGoroutine()
	tracer := metrics.NewJSONLTracer(io.Discard)

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(23))
		points := faultpoint.Points()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(4) == 0 {
				faultpoint.DisarmAll()
			} else {
				chaosArm(points[rng.Intn(len(points))], rng.Intn(6))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const goroutines, iters = 8, 25
	var failed, succeeded, panicked atomic.Int64
	errCh := make(chan error, goroutines)
	var execWG sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		execWG.Add(1)
		go func(g int) {
			defer execWG.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(8) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(400))*time.Microsecond)
				}
				var qs metrics.QueryStats
				opts := []Option{WithExecStats(&qs)}
				if i%4 == 0 {
					opts = append(opts, WithTracer(tracer))
				}
				res, err := pr.Execute(ctx, opts...)
				if cancel != nil {
					cancel()
				}
				if terr := coherentStatsTree(&qs, nodes, err); terr != nil {
					errCh <- fmt.Errorf("goroutine %d iter %d: incoherent stats tree: %v", g, i, terr)
					return
				}
				if err != nil {
					failed.Add(1)
					if !chaosTyped(err) {
						errCh <- fmt.Errorf("goroutine %d iter %d: untyped chaos error: %v", g, i, err)
						return
					}
					var qe *qerr.QueryError
					if errors.As(err, &qe) {
						panicked.Add(1)
						if qe.Stats == nil {
							errCh <- fmt.Errorf("goroutine %d iter %d: panic QueryError without attached stats", g, i)
							return
						}
						if terr := coherentStatsTree(qe.Stats, nodes, err); terr != nil {
							errCh <- fmt.Errorf("goroutine %d iter %d: incoherent QueryError stats: %v", g, i, terr)
							return
						}
					}
					continue
				}
				succeeded.Add(1)
				if serr := sameResult(ref, res); serr != nil {
					errCh <- fmt.Errorf("goroutine %d iter %d: collected execution under chaos diverged: %v", g, i, serr)
					return
				}
			}
		}(g)
	}
	execWG.Wait()
	close(stop)
	chaosWG.Wait()
	faultpoint.DisarmAll()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	t.Logf("chaos+stats: %d executions, %d failed (%d panics), %d succeeded",
		goroutines*iters, failed.Load(), panicked.Load(), succeeded.Load())
	if succeeded.Load() == 0 {
		t.Fatal("no execution succeeded under chaos")
	}
	if err := tracer.Err(); err != nil {
		t.Fatalf("tracer write error under chaos: %v", err)
	}

	// Post-storm invariants: nothing leaked, counters partition the outcomes,
	// and a fresh collected execution is byte-identical with a complete tree.
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked", n)
	}
	if n := e.budget.InUse(); n != 0 {
		t.Fatalf("%d budget worker slots leaked", n)
	}
	st := e.Stats()
	finished := st.QueriesSucceeded + st.QueriesRejected + st.QueriesCanceled +
		st.QueriesTimedOut + st.QueriesCorrupt + st.QueriesPanicked + st.QueriesFailedOther
	if st.QueriesStarted != finished {
		t.Fatalf("outcome counters do not partition: started %d, summed %d (%+v)",
			st.QueriesStarted, finished, st)
	}
	if st.LeaseGrants != st.LeaseReleases {
		t.Fatalf("lease grants %d != releases %d on an idle engine", st.LeaseGrants, st.LeaseReleases)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Fatalf("goroutines leaked: %d before chaos, %d after", baseline, now)
	}
	var qs metrics.QueryStats
	res, err := pr.Execute(context.Background(), WithExecStats(&qs))
	if err != nil {
		t.Fatalf("collected execution after chaos: %v", err)
	}
	if err := sameResult(ref, res); err != nil {
		t.Fatalf("collected execution after chaos diverged: %v", err)
	}
	if err := coherentStatsTree(&qs, nodes, nil); err != nil {
		t.Fatalf("stats tree after chaos: %v", err)
	}
}
