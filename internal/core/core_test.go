package core

import (
	"math/rand"
	"strings"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/ops"
	"morphstore/internal/vector"
)

// simpleQueryPlan builds SELECT SUM(Y) FROM R WHERE X = c (the paper's §5.1
// simple query): select on X -> project Y -> sum.
func simpleQueryPlan(t *testing.T, c uint64) *Plan {
	t.Helper()
	b := NewBuilder()
	x := b.Scan("r", "x")
	y := b.Scan("r", "y")
	xp := b.Select("x_sel", x, bitutil.CmpEq, c)
	yp := b.Project("y_proj", y, xp)
	sum := b.SumWhole("total", yp)
	b.Result(sum)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func simpleDB(n int, seed int64) (*DB, uint64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]uint64, n)
	y := make([]uint64, n)
	var want uint64
	for i := range x {
		if rng.Float64() < 0.9 {
			x[i] = 7
		} else {
			x[i] = uint64(rng.Intn(64))
		}
		y[i] = uint64(rng.Intn(1000))
		if x[i] == 7 {
			want += y[i]
		}
	}
	db := NewDB()
	db.AddTable("r", map[string][]uint64{"x": x, "y": y})
	return db, want
}

func TestSimpleQueryAllConfigs(t *testing.T) {
	db, want := simpleDB(10000, 1)
	p := simpleQueryPlan(t, 7)

	configs := map[string]*Config{
		"uncompressed-scalar": UncompressedConfig(vector.Scalar),
		"uncompressed-vec":    UncompressedConfig(vector.Vec512),
		"staticbp":            UniformConfig(p, columns.StaticBPDesc(0), vector.Vec512),
		"dynbp":               UniformConfig(p, columns.DynBPDesc, vector.Vec512),
		"delta":               UniformConfig(p, columns.DeltaBPDesc, vector.Vec512),
		"forbp":               UniformConfig(p, columns.ForBPDesc, vector.Vec512),
	}
	for name, cfg := range configs {
		res, err := Execute(p, db, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, ok := res.Cols["total"].Values()
		if !ok || len(got) != 1 {
			t.Fatalf("%s: bad result column", name)
		}
		if got[0] != want {
			t.Fatalf("%s: sum = %d, want %d", name, got[0], want)
		}
		if res.Meas.Runtime <= 0 {
			t.Errorf("%s: no runtime recorded", name)
		}
		if res.Meas.BaseBytes <= 0 || res.Meas.InterBytes <= 0 {
			t.Errorf("%s: no footprint recorded", name)
		}
	}
}

func TestSpecializedMatchesGeneric(t *testing.T) {
	db, want := simpleDB(8000, 2)
	p := simpleQueryPlan(t, 7)
	encoded, err := db.Encode(map[string]columns.FormatDesc{
		"r.x": columns.StaticBPDesc(8),
		"r.y": columns.StaticBPDesc(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, specialized := range []bool{false, true} {
		cfg := UniformConfig(p, columns.DeltaBPDesc, vector.Vec512)
		cfg.Specialized = specialized
		res, err := Execute(p, encoded, cfg)
		if err != nil {
			t.Fatalf("specialized=%v: %v", specialized, err)
		}
		got, _ := res.Cols["total"].Values()
		if got[0] != want {
			t.Fatalf("specialized=%v: sum = %d, want %d", specialized, got[0], want)
		}
	}
}

func TestCompressedFootprintSmaller(t *testing.T) {
	db, _ := simpleDB(50000, 3)
	p := simpleQueryPlan(t, 7)

	resU, err := Execute(p, db, UncompressedConfig(vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := db.Encode(map[string]columns.FormatDesc{
		"r.x": columns.StaticBPDesc(0),
		"r.y": columns.StaticBPDesc(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := Execute(p, encoded, UniformConfig(p, columns.DynBPDesc, vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	if resC.Meas.Footprint() >= resU.Meas.Footprint() {
		t.Errorf("compressed footprint %d >= uncompressed %d",
			resC.Meas.Footprint(), resU.Meas.Footprint())
	}
	// The paper's small-value case compresses to about half or better.
	ratio := float64(resC.Meas.Footprint()) / float64(resU.Meas.Footprint())
	if ratio > 0.6 {
		t.Errorf("footprint ratio %.2f, want <= 0.6 on small values", ratio)
	}
}

func TestRandomAccessRestriction(t *testing.T) {
	db, _ := simpleDB(5000, 4)
	p := simpleQueryPlan(t, 7)
	if !p.RandomAccessed("r.y") {
		t.Fatal("r.y must be marked randomly accessed")
	}
	// Encoding the project data column in DynBP must fail without AutoMorph.
	encoded, err := db.Encode(map[string]columns.FormatDesc{"r.y": columns.DynBPDesc})
	if err != nil {
		t.Fatal(err)
	}
	cfg := UncompressedConfig(vector.Scalar)
	if _, err := Execute(p, encoded, cfg); err == nil {
		t.Fatal("project on DynBP data must fail without AutoMorph")
	}
	// With AutoMorph the executor inserts an on-the-fly morph.
	cfg.AutoMorph = true
	res, err := Execute(p, encoded, cfg)
	if err != nil {
		t.Fatalf("AutoMorph execution failed: %v", err)
	}
	if len(res.Cols) != 1 {
		t.Fatal("missing result")
	}
	// An intermediate consumed via random access must also be rejected when
	// configured with a non-random-access format.
	cfg2 := UncompressedConfig(vector.Scalar)
	cfg2.Inter["r.y"] = columns.DynBPDesc // r.y is a scan, ignored via Inter
	b := NewBuilder()
	x := b.Scan("r", "x")
	sel := b.Select("s", x, bitutil.CmpEq, 7)
	pr := b.Project("p", x, sel) // x randomly accessed as intermediate input
	b.Result(b.SumWhole("t", pr))
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = p2
	_ = cfg2
}

func TestResultMustStayUncompressed(t *testing.T) {
	db, _ := simpleDB(1000, 5)
	p := simpleQueryPlan(t, 7)
	cfg := UncompressedConfig(vector.Scalar)
	cfg.Inter["total"] = columns.DynBPDesc
	if _, err := Execute(p, db, cfg); err == nil ||
		!strings.Contains(err.Error(), "uncompressed") {
		t.Fatalf("compressed result column must be rejected, got %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	x := b.Scan("r", "x")
	b.Select("s", x, bitutil.CmpEq, 1)
	b.Select("s", x, bitutil.CmpEq, 2) // duplicate name
	if _, err := b.Build(); err == nil {
		t.Error("duplicate name must fail")
	}

	b2 := NewBuilder()
	b2.Select("s", ColRef{}, bitutil.CmpEq, 1) // invalid input
	if _, err := b2.Build(); err == nil {
		t.Error("invalid input must fail")
	}

	b3 := NewBuilder()
	b3.Scan("r", "x")
	if _, err := b3.Build(); err == nil {
		t.Error("plan without results must fail")
	}
}

func TestScanDedup(t *testing.T) {
	b := NewBuilder()
	x1 := b.Scan("r", "x")
	x2 := b.Scan("r", "x")
	if x1 != x2 {
		t.Error("scanning the same column twice must reuse the node")
	}
}

func TestUnknownTableColumn(t *testing.T) {
	db := NewDB()
	db.AddTable("r", map[string][]uint64{"x": {1, 2}})
	b := NewBuilder()
	bad := b.Scan("nope", "x")
	b.Result(b.SumWhole("t", bad))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, db, nil); err == nil {
		t.Error("unknown table must fail")
	}
}

// TestGroupedQueryPlan exercises join + group + grouped aggregation through
// the engine (the SSB Q2.x shape in miniature).
func TestGroupedQueryPlan(t *testing.T) {
	// fact(fk, val); dim(pk, attr); GROUP BY attr SUM(val) for attr matches.
	fk := []uint64{0, 1, 2, 0, 1, 3, 0}
	val := []uint64{10, 20, 30, 40, 50, 60, 70}
	pk := []uint64{0, 1, 2, 3}
	attr := []uint64{5, 6, 5, 7}
	db := NewDB()
	db.AddTable("fact", map[string][]uint64{"fk": fk, "val": val})
	db.AddTable("dim", map[string][]uint64{"pk": pk, "attr": attr})

	b := NewBuilder()
	fkc := b.Scan("fact", "fk")
	valc := b.Scan("fact", "val")
	pkc := b.Scan("dim", "pk")
	attrc := b.Scan("dim", "attr")
	probePos, buildPos := b.JoinN1("j", fkc, pkc)
	attrPerRow := b.Project("attr_row", attrc, buildPos)
	valPerRow := b.Project("val_row", valc, probePos)
	gids, extents := b.GroupFirst("g", attrPerRow)
	sums := b.SumGrouped("sums", gids, extents, valPerRow)
	keys := b.Project("keys", attrc, b.Project("ext_build", buildPos, extents))
	b.Result(sums)
	b.Result(keys)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, cfgName := range []string{"uncompressed", "compressed"} {
		cfg := UncompressedConfig(vector.Vec512)
		if cfgName == "compressed" {
			cfg = UniformConfig(p, columns.DynBPDesc, vector.Vec512)
		}
		res, err := Execute(p, db, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		sums, _ := res.Cols["sums"].Values()
		keys, _ := res.Cols["keys"].Values()
		got := map[uint64]uint64{}
		for i := range sums {
			got[keys[i]] = sums[i]
		}
		// attr 5 <- pk 0 (10+40+70) + pk 2 (30) = 150; attr 6 <- pk 1 (20+50)=70; attr 7 <- pk 3 (60).
		want := map[uint64]uint64{5: 150, 6: 70, 7: 60}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: group %d = %d, want %d (all: %v)", cfgName, k, got[k], v, got)
			}
		}
	}
}

func TestFootprintSearch(t *testing.T) {
	db, _ := simpleDB(20000, 6)
	p := simpleQueryPlan(t, 7)
	best, worst, err := FootprintSearch(p, db)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both assignments for real.
	run := func(a *Assignment) int {
		enc, err := db.Encode(a.Base)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(p, enc, a.Config(vector.Vec512, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Meas.Footprint()
	}
	bf, wf := run(best), run(worst)
	if bf >= wf {
		t.Errorf("best footprint %d >= worst %d", bf, wf)
	}
	// The best assignment must respect random-access restrictions.
	if d, ok := best.Base["r.y"]; ok && !formats.HasRandomAccess(d.Kind) {
		t.Errorf("best assigned non-random-access format %v to r.y", d)
	}
	// Searched best must beat naive static BP everywhere.
	uni := NewAssignment()
	for _, name := range p.BaseColumns() {
		uni.Base[name] = columns.StaticBPDesc(0)
	}
	for _, name := range p.IntermediateNames() {
		uni.Inter[name] = columns.StaticBPDesc(0)
	}
	if sf := run(uni); bf > sf {
		t.Errorf("searched best %d worse than uniform static BP %d", bf, sf)
	}
}

func TestCostBasedAssignmentNearOptimal(t *testing.T) {
	db, _ := simpleDB(30000, 7)
	p := simpleQueryPlan(t, 7)
	best, _, err := FootprintSearch(p, db)
	if err != nil {
		t.Fatal(err)
	}
	costBased, err := CostBasedAssignment(p, db)
	if err != nil {
		t.Fatal(err)
	}
	run := func(a *Assignment) int {
		enc, err := db.Encode(a.Base)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(p, enc, a.Config(vector.Scalar, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Meas.Footprint()
	}
	bf, cf := run(best), run(costBased)
	// Fig. 10: cost-based selection is virtually equal to the optimum.
	if float64(cf) > 1.10*float64(bf) {
		t.Errorf("cost-based footprint %d more than 10%% above optimum %d", cf, bf)
	}
}

func TestRuntimeGreedySearchRuns(t *testing.T) {
	db, want := simpleDB(4000, 8)
	p := simpleQueryPlan(t, 7)
	a, err := RuntimeGreedySearch(p, db, vector.Vec512, false, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := db.Encode(a.Base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, enc, a.Config(vector.Vec512, false))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Cols["total"].Values()
	if got[0] != want {
		t.Fatalf("greedy config broke the query: %d != %d", got[0], want)
	}
}

func TestUniformConfigRespectsRandomAccess(t *testing.T) {
	p := simpleQueryPlan(t, 7)
	cfg := UniformConfig(p, columns.DeltaBPDesc, vector.Scalar)
	for name, d := range cfg.Inter {
		if p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) {
			t.Errorf("uniform config assigned %v to randomly accessed %q", d, name)
		}
	}
}

func TestPerOpRuntimes(t *testing.T) {
	db, _ := simpleDB(20000, 9)
	p := simpleQueryPlan(t, 7)
	res, err := Execute(p, db, UncompressedConfig(vector.Scalar))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"select", "project", "sum"} {
		if _, ok := res.Meas.PerOp[op]; !ok {
			t.Errorf("missing per-op runtime for %s", op)
		}
	}
	if len(res.Meas.ColBytes) == 0 {
		t.Error("missing per-column sizes")
	}
}

func TestCalcThroughEngine(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	c := []uint64{10, 20, 30, 40}
	db := NewDB()
	db.AddTable("t", map[string][]uint64{"a": a, "c": c})
	b := NewBuilder()
	av := b.Scan("t", "a")
	cv := b.Scan("t", "c")
	prod := b.Calc("prod", ops.CalcMul, av, cv)
	b.Result(b.SumWhole("s", prod))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, db, UncompressedConfig(vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Cols["s"].Values()
	if got[0] != 10+40+90+160 {
		t.Fatalf("sum = %d", got[0])
	}
}
