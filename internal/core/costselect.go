package core

import (
	"morphstore/internal/costmodel"
	"morphstore/internal/stats"
)

// CostBasedAssignment selects a format for every base column and
// intermediate of the plan using the gray-box cost model with the
// compression-rate (memory footprint) objective — the compression-aware
// optimization step evaluated in Fig. 10.
//
// The plan is executed once uncompressed to obtain the data characteristics
// of all intermediates (the paper assumes these are known to the optimizer);
// the cost model then picks each column's format from its compact profile
// without inspecting the data again.
func CostBasedAssignment(p *Plan, db *DB) (*Assignment, error) {
	cols, err := materializedColumns(p, db)
	if err != nil {
		return nil, err
	}
	a := NewAssignment()
	baseSet := make(map[string]bool)
	for _, name := range p.BaseColumns() {
		baseSet[name] = true
	}
	names := append(p.BaseColumns(), p.IntermediateNames()...)
	for _, name := range names {
		prof := stats.Collect(cols[name])
		desc, err := costmodel.ChooseBySize(prof, Candidates(p, name))
		if err != nil {
			return nil, err
		}
		if baseSet[name] {
			a.Base[name] = desc
		} else {
			a.Inter[name] = desc
		}
	}
	return a, nil
}
