package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// This file implements the engine API around the holistic processing model:
// an Engine owns the base data, an engine-wide worker budget and an
// admission gate; Prepare compiles a plan once — per-column formats
// resolved explicitly, uniformly, or cost-based, morphs inserted,
// specialized-kernel dispatch fixed (physop.go) — into a Prepared query; and
// Prepared.Execute runs it under a context, with cancellation threaded
// through the DAG scheduler and the morsel loops, and with concurrent
// Execute calls sharing the engine's parallelism budget deterministically.

// scope classifies where a functional option applies.
type scope uint8

const (
	scopeEngine scope = 1 << iota
	scopePrepare
	scopeExec
	scopeOp
)

func (s scope) String() string {
	switch s {
	case scopeEngine:
		return "NewEngine"
	case scopePrepare:
		return "Prepare"
	case scopeExec:
		return "Execute"
	case scopeOp:
		return "operator calls"
	}
	return "option"
}

// options is the resolved option set of one engine, preparation, execution,
// or one-off operator call. Layers merge: engine defaults, then Prepare
// overrides, then Execute overrides.
type options struct {
	style       vector.Style
	specialized bool
	autoMorph   bool
	keep        bool
	par         int           // 0 = engine budget / GOMAXPROCS
	maxQueries  int           // 0 = unlimited
	admitDepth  int           // admission queue bound; 0 = unbounded
	admitWait   time.Duration // admission queue wait bound; 0 = none
	timeout     time.Duration // 0 = no per-execution deadline
	memLimit    int           // 0 = no prepare-time memory-estimate limit
	memBudget   int64         // engine-wide runtime memory budget; 0 = none
	memDegrade  bool          // over-limit plans degrade to par=1 instead of failing
	retry       RetryPolicy   // zero value = no retries
	// Background remorph (WithRemorph): delta-to-main ratio that triggers a
	// rebuild (<= 0 = any non-empty delta) and the worker's sweep interval
	// (0 = no worker).
	remorphRatio float64
	remorphEvery time.Duration
	// Format resolution (Prepare): explicit per-column formats, a uniform
	// format for every intermediate, or cost-based selection. Explicit
	// entries take precedence over uniform/cost-based choices.
	inter     map[string]columns.FormatDesc
	explicit  map[string]columns.FormatDesc
	uniform   *columns.FormatDesc
	costBased bool
	// Output formats of one-off operator calls (one entry applies to every
	// output; two entries address dual-output operators positionally).
	output []columns.FormatDesc
	// Observability (observe.go): the WithExecStats destination of one
	// execution and the tracer receiving its span/event stream. Both nil on
	// the common detached path.
	stats  *metrics.QueryStats
	tracer metrics.Tracer
}

// Option is a functional option for NewEngine, Engine.Prepare,
// Prepared.Execute, and the engine's one-off operator methods. Each option
// documents where it applies; passing it elsewhere is reported as an error
// by the receiving call.
type Option struct {
	name  string
	scope scope
	apply func(*options)
}

// apply merges opts into base, rejecting options that do not apply at sc.
func (base options) merged(sc scope, opts []Option) (options, error) {
	o := base
	// The format maps are layered: overrides copy-on-write so a Prepared's
	// resolved options never alias the engine defaults.
	for _, op := range opts {
		if op.scope&sc == 0 {
			return o, fmt.Errorf("core: option %s does not apply to %s", op.name, sc)
		}
		op.apply(&o)
	}
	return o, nil
}

// WithStyle selects the processing-style specialization of all kernels
// (scalar or 8-lane 512-bit vector). Applies to NewEngine (default),
// Prepare, and one-off operator calls.
func WithStyle(s vector.Style) Option {
	return Option{name: "WithStyle", scope: scopeEngine | scopePrepare | scopeOp,
		apply: func(o *options) { o.style = s }}
}

// WithSpecialized enables the specialized-operator integration degree for
// formats that have one (§3.3: employ them selectively). Applies to
// NewEngine, Prepare, and one-off operator calls.
func WithSpecialized(on bool) Option {
	return Option{name: "WithSpecialized", scope: scopeEngine | scopePrepare | scopeOp,
		apply: func(o *options) { o.specialized = on }}
}

// WithAutoMorph permits on-the-fly morphs when an operator needs random
// access to a column whose format does not support it; without it such
// plans fail to prepare (strict consistency, §3.3). Applies to NewEngine
// and Prepare.
func WithAutoMorph(on bool) Option {
	return Option{name: "WithAutoMorph", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.autoMorph = on }}
}

// WithKeep retains all intermediate columns in the result (used by the
// format-search and cost-model tooling). Applies to Prepare and Execute.
func WithKeep(on bool) Option {
	return Option{name: "WithKeep", scope: scopePrepare | scopeExec,
		apply: func(o *options) { o.keep = on }}
}

// WithParallelism sets the worker-goroutine budget: at NewEngine the
// engine-wide budget shared by all concurrent queries, at Prepare/Execute
// and one-off operator calls the cap of that one query or operator.
// 0 means the engine budget (GOMAXPROCS for a fresh engine); 1 reproduces
// the sequential operator-at-a-time execution exactly. Results are
// byte-identical at every level.
func WithParallelism(n int) Option {
	return Option{name: "WithParallelism", scope: scopeEngine | scopePrepare | scopeExec | scopeOp,
		apply: func(o *options) { o.par = n }}
}

// WithMaxConcurrentQueries bounds how many Execute calls run at once; the
// surplus parks in the engine's admission queue (honouring ctx and the
// WithAdmissionQueue bounds) and is admitted FIFO. 0 means unlimited.
// Applies to NewEngine.
func WithMaxConcurrentQueries(n int) Option {
	return Option{name: "WithMaxConcurrentQueries", scope: scopeEngine,
		apply: func(o *options) { o.maxQueries = n }}
}

// WithAdmissionQueue bounds the engine's admission queue (the FIFO of
// Execute calls waiting behind WithMaxConcurrentQueries): at most depth
// queries park at once, and no query parks longer than maxWait. A query
// arriving at a full queue, or parked past maxWait or its own context's
// expiry, is shed with an error matching ErrAdmissionRejected — it never
// started, so the rejection is retryable (IsRetryable) and is never
// classified as ErrQueryCanceled or ErrQueryTimeout. depth 0 means an
// unbounded queue, maxWait 0 no wait bound; the option has no effect
// without WithMaxConcurrentQueries. Applies to NewEngine.
func WithAdmissionQueue(depth int, maxWait time.Duration) Option {
	return Option{name: "WithAdmissionQueue", scope: scopeEngine,
		apply: func(o *options) { o.admitDepth, o.admitWait = depth, maxWait }}
}

// WithMemoryBudget gives the engine a runtime memory governor: an
// engine-wide budget, in bytes, for the intermediate columns of all
// concurrently executing queries. Each execution reserves its plan's
// conservative estimate (Prepared.MemoryEstimate) at admission and returns
// it when it finishes; a query that does not fit waits for running queries
// to release, sheds with ErrAdmissionRejected when its wait expires (the
// query's ctx or the WithAdmissionQueue maxWait), and fails with
// ErrMemoryLimit when its estimate exceeds the whole budget — unless
// WithMemoryLimitDegrade is set, in which case it degrades to sequential
// execution under a clamped reservation instead. The bytes actually
// materialized are charged at the allocation sites and reported as
// QueryStats.MemPeak. 0 means no governor. Applies to NewEngine.
func WithMemoryBudget(bytes int64) Option {
	return Option{name: "WithMemoryBudget", scope: scopeEngine,
		apply: func(o *options) { o.memBudget = bytes }}
}

// WithQueryTimeout bounds one execution's wall-clock time: Execute derives a
// deadline context, the running morsel loops stop within one morsel when it
// fires, and the returned error matches ErrQueryTimeout. The timeout covers
// the admission wait. 0 means no deadline. Applies to NewEngine (default for
// every execution), Prepare, and Execute.
func WithQueryTimeout(d time.Duration) Option {
	return Option{name: "WithQueryTimeout", scope: scopeEngine | scopePrepare | scopeExec,
		apply: func(o *options) { o.timeout = d }}
}

// WithMemoryEstimateLimit bounds the conservative prepare-time estimate of
// the intermediate bytes one execution can materialize (see
// Prepared.MemoryEstimate). An over-limit plan fails Prepare with an error
// matching ErrMemoryLimit — or, with WithMemoryLimitDegrade, prepares
// degraded instead. 0 means unlimited. Applies to NewEngine and Prepare.
func WithMemoryEstimateLimit(bytes int) Option {
	return Option{name: "WithMemoryEstimateLimit", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.memLimit = bytes }}
}

// WithMemoryLimitDegrade selects graceful degradation for plans over the
// memory-estimate limit: instead of rejecting the plan, Prepare pins its
// executions to sequential operator-at-a-time processing (par=1), the mode
// with the smallest transient footprint — one operator's scratch at a time
// and no concurrent per-worker buffers. Prepared.Degraded reports the
// decision. Applies to NewEngine and Prepare.
func WithMemoryLimitDegrade(on bool) Option {
	return Option{name: "WithMemoryLimitDegrade", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.memDegrade = on }}
}

// WithFormat assigns a compression format to one named plan column
// (an intermediate, or with WithCostBasedFormats/WithUniformFormat an
// override of the automatic choice). Applies to Prepare.
func WithFormat(column string, d columns.FormatDesc) Option {
	return Option{name: "WithFormat", scope: scopePrepare, apply: func(o *options) {
		m := make(map[string]columns.FormatDesc, len(o.explicit)+1)
		for k, v := range o.explicit {
			m[k] = v
		}
		m[column] = d
		o.explicit = m
	}}
}

// WithFormats assigns compression formats to the named plan columns
// (DP2: each intermediate chosen independently; missing entries stay
// uncompressed). Applies to Prepare.
func WithFormats(m map[string]columns.FormatDesc) Option {
	return Option{name: "WithFormats", scope: scopePrepare, apply: func(o *options) {
		merged := make(map[string]columns.FormatDesc, len(o.explicit)+len(m))
		for k, v := range o.explicit {
			merged[k] = v
		}
		for k, v := range m {
			merged[k] = v
		}
		o.explicit = merged
	}}
}

// WithUniformFormat assigns one format to every intermediate of the plan
// (randomly accessed columns fall back to static BP). Applies to Prepare.
func WithUniformFormat(d columns.FormatDesc) Option {
	return Option{name: "WithUniformFormat", scope: scopePrepare, apply: func(o *options) {
		d := d
		o.uniform = &d
		o.costBased = false
	}}
}

// WithCostBasedFormats selects every intermediate's format with the
// gray-box cost model (footprint objective, §5): the plan's data
// characteristics are profiled once at prepare time and each column's
// format chosen from its compact profile. Applies to Prepare.
func WithCostBasedFormats() Option {
	return Option{name: "WithCostBasedFormats", scope: scopePrepare, apply: func(o *options) {
		o.costBased = true
		o.uniform = nil
	}}
}

// WithConfig adopts a legacy Config (formats, style, specialized, AutoMorph,
// Keep; Parallelism is ignored here — set it at NewEngine or Execute).
// Applies to Prepare; it is the bridge the deprecated free functions use.
func WithConfig(cfg *Config) Option {
	return Option{name: "WithConfig", scope: scopePrepare, apply: func(o *options) {
		if cfg == nil {
			return
		}
		m := make(map[string]columns.FormatDesc, len(cfg.Inter))
		for k, v := range cfg.Inter {
			m[k] = v
		}
		o.explicit = m
		o.uniform = nil
		o.costBased = false
		o.style = cfg.Style
		o.specialized = cfg.Specialized
		o.autoMorph = cfg.AutoMorph
		o.keep = cfg.Keep
	}}
}

// WithOutput sets the output format of a one-off operator call (every
// output of dual-output operators). Applies to operator calls.
func WithOutput(d columns.FormatDesc) Option {
	return Option{name: "WithOutput", scope: scopeOp,
		apply: func(o *options) { o.output = []columns.FormatDesc{d} }}
}

// WithOutputs sets the two output formats of a dual-output operator call
// (JoinN1: probe positions, build positions; GroupFirst/GroupNext: group
// ids, extents). Applies to operator calls.
func WithOutputs(first, second columns.FormatDesc) Option {
	return Option{name: "WithOutputs", scope: scopeOp,
		apply: func(o *options) { o.output = []columns.FormatDesc{first, second} }}
}

// outputDesc returns the bound output format of output i of a one-off
// operator call; outputs default to uncompressed.
func (o *options) outputDesc(i int) columns.FormatDesc {
	switch {
	case len(o.output) == 0:
		return columns.UncomprDesc
	case i < len(o.output):
		return o.output[i]
	default:
		return o.output[0]
	}
}

// Engine owns a database, an engine-wide worker budget shared
// deterministically by every concurrently executing query and one-off
// operator call, a bounded admission queue, and an optional runtime memory
// governor. It is safe for concurrent use; all its state is fixed at
// construction except the observability counters behind Stats (atomic) and
// the admission/governor state (internally locked).
type Engine struct {
	db       *DB
	budget   *ops.Budget
	adm      *admission
	gov      *ops.MemGovernor
	killCtx  context.Context    // done when Close gave up on graceful drain
	kill     context.CancelFunc // fires killCtx, cancelling in-flight work
	defs     options
	err      error
	counters engineCounters

	// Writable-table state (writable.go): the per-table delta stores created
	// lazily by Append/Delete, and the background remorph worker's lifecycle.
	wmu          sync.Mutex
	wtabs        map[string]*writableTable
	remorphRatio float64
	remorphEvery time.Duration
	remorphStop  chan struct{} // closed by Close (once) to stop the worker
	remorphDone  chan struct{} // closed by the worker on exit (nil without one)
	stopRemorph  sync.Once
}

// NewEngine returns an engine over db. Options set engine-wide defaults
// (WithStyle, WithSpecialized, WithAutoMorph), the worker budget
// (WithParallelism: 0 = GOMAXPROCS), the admission layer
// (WithMaxConcurrentQueries, WithAdmissionQueue), and the runtime memory
// governor (WithMemoryBudget). A misplaced option is reported by the first
// Prepare/operator call.
func NewEngine(db *DB, o ...Option) *Engine {
	if db == nil {
		db = NewDB()
	}
	defs, err := options{style: vector.Scalar}.merged(scopeEngine, o)
	e := &Engine{db: db, budget: ops.NewBudget(defs.par), defs: defs, err: err}
	e.budget.SetTelemetry(e.counters.budget)
	e.adm = newAdmission(defs.maxQueries, defs.admitDepth, defs.admitWait)
	e.gov = ops.NewMemGovernor(defs.memBudget)
	e.killCtx, e.kill = context.WithCancel(context.Background())
	e.wtabs = make(map[string]*writableTable)
	e.remorphRatio, e.remorphEvery = defs.remorphRatio, defs.remorphEvery
	e.remorphStop = make(chan struct{})
	if err == nil && e.remorphEvery > 0 {
		e.remorphDone = make(chan struct{})
		go e.remorphLoop()
	}
	// Query/operator layers interpret par as their own cap; the engine-level
	// value has been consumed by the budget.
	e.defs.par = 0
	return e
}

// Close shuts the engine down gracefully: admission stops first — queued
// queries are shed and later Execute and operator calls fail fast with an
// error matching ErrEngineClosed — then Close waits for every in-flight
// query and one-off operator call to drain. If ctx expires before the drain
// completes, the stragglers are cancelled (they stop within one morsel and
// return errors matching ErrEngineClosed), the drain finishes, and Close
// returns the context's error; a nil ctx or one without a deadline waits
// indefinitely for the graceful drain. Close is idempotent and safe to call
// concurrently with executions; after it returns, the engine holds no worker
// leases and no memory reservations.
func (e *Engine) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.adm.close()
	e.stopRemorph.Do(func() { close(e.remorphStop) })
	if err := hitGuarded(faultpoint.CloseDrain); err != nil {
		// An injected drain fault leaves the engine closed but possibly
		// undrained; Close remains callable to finish the drain.
		return qerr.Tag(err, qerr.ErrEngineClosed)
	}
	if e.adm.drain(ctx) {
		e.waitRemorphWorker()
		e.releaseDeltaReservations()
		return nil
	}
	e.kill()
	e.adm.drain(context.Background())
	e.waitRemorphWorker()
	e.releaseDeltaReservations()
	return ctx.Err()
}

// waitRemorphWorker blocks until the background remorph worker exited (a
// no-op without one). Admission is closed and drained by the time Close
// calls it, so the worker is either parked on its ticker — it sees the stop
// signal promptly — or already gone.
func (e *Engine) waitRemorphWorker() {
	if e.remorphDone != nil {
		<-e.remorphDone
	}
}

// DB returns the engine's database.
func (e *Engine) DB() *DB { return e.db }

// Budget returns the engine's total worker budget.
func (e *Engine) Budget() int { return e.budget.Total() }

// Prepared is a plan compiled against one engine: formats resolved, every
// node bound to a physical operator. It is immutable and safe for
// concurrent Execute calls from many goroutines.
type Prepared struct {
	e        *Engine
	p        *Plan
	opt      options
	bound    []boundNode
	sinks    map[string]bool
	estimate int
	degraded bool
}

// Prepare compiles the plan once against the engine's database: per-column
// formats are resolved (explicit WithFormat/WithFormats, WithUniformFormat,
// or WithCostBasedFormats; explicit entries win), morph insertions and
// specialized-kernel dispatch are fixed, and configuration errors surface
// here rather than mid-execution.
func (e *Engine) Prepare(p *Plan, o ...Option) (*Prepared, error) {
	if e.err != nil {
		return nil, e.err
	}
	if p == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	opt, err := e.defs.merged(scopePrepare, o)
	if err != nil {
		return nil, err
	}
	if opt.inter, err = e.resolveFormats(p, &opt); err != nil {
		return nil, err
	}
	sinks := p.sinkSet()
	for name := range sinks {
		if d, ok := opt.inter[name]; ok && d.Kind != columns.Uncompressed {
			return nil, fmt.Errorf("core: result column %q must stay uncompressed, configured %v", name, d)
		}
	}
	c := &compiler{p: p, db: e.db, opt: &opt, sinks: sinks}
	bound := make([]boundNode, len(p.nodes))
	for i, n := range p.nodes {
		if bound[i], err = c.compile(n); err != nil {
			return nil, err
		}
	}
	est, err := memoryEstimate(p, e.db)
	if err != nil {
		return nil, err
	}
	pr := &Prepared{e: e, p: p, opt: opt, bound: bound, sinks: sinks, estimate: est}
	if opt.memLimit > 0 && est > opt.memLimit {
		if !opt.memDegrade {
			return nil, qerr.Tag(fmt.Errorf("core: plan memory estimate %d bytes over limit %d", est, opt.memLimit),
				qerr.ErrMemoryLimit)
		}
		pr.degraded = true
	}
	return pr, nil
}

// MemoryEstimate returns the conservative upper bound, in bytes, on the
// intermediate columns one execution of the prepared plan can materialize —
// the quantity WithMemoryEstimateLimit bounds. Base columns are excluded
// (scans hand out the stored columns), and every intermediate element is
// costed at an uncompressed 8-byte word, so compressed plans stay well under
// the estimate.
func (pr *Prepared) MemoryEstimate() int { return pr.estimate }

// Degraded reports whether the plan exceeded the memory-estimate limit and
// was pinned to sequential execution by WithMemoryLimitDegrade.
func (pr *Prepared) Degraded() bool { return pr.degraded }

// resolveFormats materializes the per-column format map of one preparation.
func (e *Engine) resolveFormats(p *Plan, opt *options) (map[string]columns.FormatDesc, error) {
	inter := make(map[string]columns.FormatDesc)
	switch {
	case opt.costBased:
		a, err := CostBasedAssignment(p, e.db)
		if err != nil {
			return nil, err
		}
		for k, v := range a.Inter {
			inter[k] = v
		}
	case opt.uniform != nil:
		for _, name := range p.IntermediateNames() {
			d := *opt.uniform
			if p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) {
				d = columns.StaticBPDesc(0)
			}
			inter[name] = d
		}
	}
	for k, v := range opt.explicit {
		inter[k] = v
	}
	return inter, nil
}

// Plan returns the prepared plan.
func (pr *Prepared) Plan() *Plan { return pr.p }

// Formats returns the formats bound to the plan's intermediates (a copy).
func (pr *Prepared) Formats() map[string]columns.FormatDesc {
	m := make(map[string]columns.FormatDesc, len(pr.opt.inter))
	for k, v := range pr.opt.inter {
		m[k] = v
	}
	return m
}

// Execute runs the prepared plan. The context cancels the execution: the
// DAG scheduler stops dispatching operators and running morsel loops stop
// within one morsel, returning an error matching ErrQueryCanceled (or
// ErrQueryTimeout when a deadline — including WithQueryTimeout — fired).
// Before it starts, the execution passes the engine's admission layer: the
// concurrency gate and queue (WithMaxConcurrentQueries, WithAdmissionQueue)
// and the memory governor (WithMemoryBudget). A query shed there — queue
// overflow, wait expiry, or memory pressure — returns an error matching
// ErrAdmissionRejected and never one of the mid-flight context sentinels:
// it did no work and is safe to retry (see IsRetryable and WithRetry).
// After Engine.Close, Execute fails fast with ErrEngineClosed.
// Concurrent Execute calls from any number of goroutines share the engine's
// worker budget deterministically and produce columns byte-identical to a
// sequential run. A failing execution — cancelled, corrupt data, or a
// recovered operator panic — is isolated to this call: the engine, the
// prepared plan and concurrent queries stay fully usable, and re-executing
// the same Prepared afterwards yields the same columns a fresh execution
// would. Execute options: WithParallelism (this query's cap), WithKeep,
// WithQueryTimeout, WithRetry, WithExecStats, WithTracer.
func (pr *Prepared) Execute(ctx context.Context, o ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt, err := pr.opt.merged(scopeExec, o)
	if err != nil {
		pr.e.counters.query(err)
		return nil, err
	}
	attempts := opt.retry.attempts()
	for attempt := 1; ; attempt++ {
		res, err := pr.execute(ctx, &opt)
		pr.e.counters.query(err)
		if err == nil || attempt >= attempts || !qerr.IsRetryable(err) || ctx.Err() != nil {
			return res, err
		}
		pr.e.counters.retried.Add(1)
		if !sleepCtx(ctx, opt.retry.backoff(attempt)) {
			return nil, qerr.Classify(fmt.Errorf("core: retry backoff interrupted: %w", ctx.Err()))
		}
	}
}

// execute runs one admission + execution attempt of the prepared plan.
func (pr *Prepared) execute(ctx context.Context, opt *options) (*Result, error) {
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	e := pr.e
	// An engine Close that gave up on graceful draining cancels the
	// execution through this derived context.
	ctx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()
	stopKill := context.AfterFunc(e.killCtx, cancelExec)
	defer stopKill()

	// The query id is reserved before admission so shed/wait events trace
	// under the same number as the execution's spans.
	obs := execObs{}
	if opt.stats != nil || opt.tracer != nil {
		obs.query = metrics.ReserveQueryID()
	}

	release, wait, err := e.adm.admit(ctx)
	if err != nil {
		obs.shed(opt, wait)
		return nil, err
	}
	defer release()
	obs.admissionWait = wait

	par := opt.par
	if par <= 0 {
		par = e.budget.Total()
	}
	degraded := pr.degraded

	// Reserve the plan's byte estimate from the memory governor. With no
	// governor this yields a tracking-only reservation: charges still
	// accumulate so QueryStats.MemPeak is reported either way.
	est := int64(pr.estimate)
	if total := e.gov.Total(); total > 0 && est > total {
		if !opt.memDegrade {
			e.counters.memShed.Add(1)
			return nil, qerr.Tag(
				fmt.Errorf("core: plan memory estimate %d bytes exceeds engine budget %d", est, total),
				qerr.ErrMemoryLimit)
		}
		// Sequential operator-at-a-time execution has the smallest transient
		// footprint; run degraded under a reservation clamped to the budget.
		degraded = true
		est = total
	}
	mctx, mcancel := ctx, context.CancelFunc(nil)
	if e.adm.maxWait > 0 {
		mctx, mcancel = context.WithTimeout(ctx, e.adm.maxWait)
	}
	var memWaitNS int64
	mres, err := e.gov.Reserve(mctx, est, &memWaitNS)
	if mcancel != nil {
		mcancel()
	}
	if err != nil {
		obs.shed(opt, wait+time.Duration(memWaitNS))
		return nil, err
	}
	defer mres.Release()
	obs.admissionWait += time.Duration(memWaitNS)
	obs.memEstimate = mres.Reserved()
	obs.memDegraded = degraded && !pr.degraded
	obs.admitted(opt, e.gov)

	if err := ctx.Err(); err != nil {
		return nil, qerr.Classify(err)
	}
	if degraded {
		par = 1
	}
	es := &execState{
		outs: make([][]*columns.Column, len(pr.p.nodes)),
		coll: pr.newCollector(opt, obs.query),
		mres: mres,
		// The snapshot pins every writable table's delta state for the whole
		// execution: all operators read one consistent main+delta view, and a
		// remorph swap completing mid-flight stays invisible. Nil on the
		// read-only fast path.
		snap: e.snapshotOrNil(),
	}
	res := &Result{
		Cols: make(map[string]*columns.Column, len(pr.p.sinks)),
		Meas: Measure{
			PerOp:    make(map[string]time.Duration),
			ColBytes: make(map[string]int),
		},
	}
	if opt.keep {
		res.Inter = make(map[string]*columns.Column)
	}
	if par <= 1 {
		err = pr.runSequential(ctx, es, res, opt.keep)
	} else {
		err = pr.runConcurrent(ctx, es, res, opt.keep, par)
	}
	err = qerr.Classify(err)
	if err != nil && e.killCtx.Err() != nil && errors.Is(err, qerr.ErrQueryCanceled) {
		// The cancellation came from Engine.Close giving up on the graceful
		// drain, not from the caller's context.
		err = qerr.Tag(err, qerr.ErrEngineClosed)
	}
	obs.memPeak = mres.Charged()
	finishCollector(es.coll, opt, err, &obs)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// sleepCtx sleeps d (no-op when d <= 0) unless ctx fires first; it reports
// whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// nodeRuntime leases the node's worker share from the engine budget; the
// returned release must be called when the node completes so the budget
// re-divides among the operators still running. Every operator leases up to
// the full per-query parallelism — with the grouping and sorted-set drivers
// parallelized there are no cap-1 leases left, so the budget re-division
// covers the whole plan. The node's collector (nil when detached) observes
// every re-division of the lease and the morsel loops run through it.
func (e *Engine) nodeRuntime(ctx context.Context, par int, nc *metrics.NodeCollector) (ops.Runtime, func()) {
	var obs func(int)
	if nc != nil {
		obs = nc.LeaseLimit
	}
	lease := e.budget.LeaseObserved(par, obs)
	return ops.RT(ctx, lease, par).WithCollector(nc), lease.Close
}

// runNode executes one bound operator under its budget lease. Scans do no
// kernel work (they hand out the stored column), so they skip the budget
// entirely instead of opening and closing a lease — a lease open/close pair
// would transiently re-divide the allowance of every running operator.
//
// The node runs under a recover guard: a panic on the operator's own
// goroutine — the morsel workers have their own guards — is converted into a
// *QueryError instead of crashing the process, and every QueryError
// surfacing here is tagged with the operator it escaped from. The guard sits
// after the lease's deferred release, so a panicking node cannot leak its
// budget share.
func (pr *Prepared) runNode(ctx context.Context, es *execState, bn *boundNode, par int) (produced []*columns.Column, err error) {
	// The collector's Finish defer is registered before the recover guard so
	// it runs after it and records the final, panic-converted outcome — a
	// panicking node still leaves a coherent partial stats entry.
	nc := es.coll.Node(bn.n.id)
	nc.Begin(inputValues(es, bn.n))
	defer func() { nc.Finish(outputValues(produced), outputFormats(produced), err) }()
	defer func() {
		if v := recover(); v != nil {
			qe := qerr.Recovered(v, -1)
			qe.Op = bn.n.op.String()
			produced, err = nil, qe
			return
		}
		var qe *qerr.QueryError
		if errors.As(err, &qe) && qe.Op == "" {
			qe.Op = bn.n.op.String()
		}
	}()
	if bn.n.op == OpScan {
		// Scans hand out stored columns — no intermediate bytes to charge.
		return bn.run(es, ops.RT(ctx, nil, 1).WithCollector(nc))
	}
	rt, release := pr.e.nodeRuntime(ctx, par, nc)
	defer release()
	produced, err = bn.run(es, rt.WithMemReservation(es.mres))
	if err != nil {
		return nil, fmt.Errorf("core: %v %q: %w", bn.n.op, bn.n.outNames[0], err)
	}
	// Charge the materialized intermediates against the query's memory
	// reservation; the transient section buffers inside the parallel stitch
	// charge themselves through the runtime.
	for _, col := range produced {
		es.mres.Charge(col.PhysicalBytes())
	}
	return produced, nil
}

// runSequential executes the nodes one at a time in topological order — the
// original operator-at-a-time execution — checking the context between
// operators.
func (pr *Prepared) runSequential(ctx context.Context, es *execState, res *Result, keep bool) error {
	for i := range pr.bound {
		if err := ctx.Err(); err != nil {
			return err
		}
		bn := &pr.bound[i]
		start := time.Now()
		produced, err := pr.runNode(ctx, es, bn, 1)
		if err != nil {
			return err
		}
		es.outs[bn.n.id] = produced
		pr.account(res, bn.n, produced, time.Since(start), keep)
	}
	return nil
}

// account books the footprint and runtime of one completed node into the
// result. In the concurrent execution the scheduler serializes calls.
func (pr *Prepared) account(res *Result, n *Node, produced []*columns.Column, elapsed time.Duration, keep bool) {
	if n.op != OpScan {
		res.Meas.Runtime += elapsed
		res.Meas.PerOp[n.op.String()] += elapsed
	}
	for i, col := range produced {
		name := n.outNames[i]
		res.Meas.ColBytes[name] = col.PhysicalBytes()
		if n.op == OpScan {
			res.Meas.BaseBytes += col.PhysicalBytes()
		} else {
			res.Meas.InterBytes += col.PhysicalBytes()
		}
		if keep {
			res.Inter[name] = col
		}
		if pr.sinks[name] {
			res.Cols[name] = col
		}
	}
}
