package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// This file implements the engine API around the holistic processing model:
// an Engine owns the base data, an engine-wide worker budget and an
// admission gate; Prepare compiles a plan once — per-column formats
// resolved explicitly, uniformly, or cost-based, morphs inserted,
// specialized-kernel dispatch fixed (physop.go) — into a Prepared query; and
// Prepared.Execute runs it under a context, with cancellation threaded
// through the DAG scheduler and the morsel loops, and with concurrent
// Execute calls sharing the engine's parallelism budget deterministically.

// scope classifies where a functional option applies.
type scope uint8

const (
	scopeEngine scope = 1 << iota
	scopePrepare
	scopeExec
	scopeOp
)

func (s scope) String() string {
	switch s {
	case scopeEngine:
		return "NewEngine"
	case scopePrepare:
		return "Prepare"
	case scopeExec:
		return "Execute"
	case scopeOp:
		return "operator calls"
	}
	return "option"
}

// options is the resolved option set of one engine, preparation, execution,
// or one-off operator call. Layers merge: engine defaults, then Prepare
// overrides, then Execute overrides.
type options struct {
	style       vector.Style
	specialized bool
	autoMorph   bool
	keep        bool
	par         int           // 0 = engine budget / GOMAXPROCS
	maxQueries  int           // 0 = unlimited
	timeout     time.Duration // 0 = no per-execution deadline
	memLimit    int           // 0 = no prepare-time memory-estimate limit
	memDegrade  bool          // over-limit plans degrade to par=1 instead of failing
	// Format resolution (Prepare): explicit per-column formats, a uniform
	// format for every intermediate, or cost-based selection. Explicit
	// entries take precedence over uniform/cost-based choices.
	inter     map[string]columns.FormatDesc
	explicit  map[string]columns.FormatDesc
	uniform   *columns.FormatDesc
	costBased bool
	// Output formats of one-off operator calls (one entry applies to every
	// output; two entries address dual-output operators positionally).
	output []columns.FormatDesc
	// Observability (observe.go): the WithExecStats destination of one
	// execution and the tracer receiving its span/event stream. Both nil on
	// the common detached path.
	stats  *metrics.QueryStats
	tracer metrics.Tracer
}

// Option is a functional option for NewEngine, Engine.Prepare,
// Prepared.Execute, and the engine's one-off operator methods. Each option
// documents where it applies; passing it elsewhere is reported as an error
// by the receiving call.
type Option struct {
	name  string
	scope scope
	apply func(*options)
}

// apply merges opts into base, rejecting options that do not apply at sc.
func (base options) merged(sc scope, opts []Option) (options, error) {
	o := base
	// The format maps are layered: overrides copy-on-write so a Prepared's
	// resolved options never alias the engine defaults.
	for _, op := range opts {
		if op.scope&sc == 0 {
			return o, fmt.Errorf("core: option %s does not apply to %s", op.name, sc)
		}
		op.apply(&o)
	}
	return o, nil
}

// WithStyle selects the processing-style specialization of all kernels
// (scalar or 8-lane 512-bit vector). Applies to NewEngine (default),
// Prepare, and one-off operator calls.
func WithStyle(s vector.Style) Option {
	return Option{name: "WithStyle", scope: scopeEngine | scopePrepare | scopeOp,
		apply: func(o *options) { o.style = s }}
}

// WithSpecialized enables the specialized-operator integration degree for
// formats that have one (§3.3: employ them selectively). Applies to
// NewEngine, Prepare, and one-off operator calls.
func WithSpecialized(on bool) Option {
	return Option{name: "WithSpecialized", scope: scopeEngine | scopePrepare | scopeOp,
		apply: func(o *options) { o.specialized = on }}
}

// WithAutoMorph permits on-the-fly morphs when an operator needs random
// access to a column whose format does not support it; without it such
// plans fail to prepare (strict consistency, §3.3). Applies to NewEngine
// and Prepare.
func WithAutoMorph(on bool) Option {
	return Option{name: "WithAutoMorph", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.autoMorph = on }}
}

// WithKeep retains all intermediate columns in the result (used by the
// format-search and cost-model tooling). Applies to Prepare and Execute.
func WithKeep(on bool) Option {
	return Option{name: "WithKeep", scope: scopePrepare | scopeExec,
		apply: func(o *options) { o.keep = on }}
}

// WithParallelism sets the worker-goroutine budget: at NewEngine the
// engine-wide budget shared by all concurrent queries, at Prepare/Execute
// and one-off operator calls the cap of that one query or operator.
// 0 means the engine budget (GOMAXPROCS for a fresh engine); 1 reproduces
// the sequential operator-at-a-time execution exactly. Results are
// byte-identical at every level.
func WithParallelism(n int) Option {
	return Option{name: "WithParallelism", scope: scopeEngine | scopePrepare | scopeExec | scopeOp,
		apply: func(o *options) { o.par = n }}
}

// WithMaxConcurrentQueries bounds how many Execute calls run at once; the
// surplus waits (honouring ctx) at the engine's admission gate. 0 means
// unlimited. Applies to NewEngine.
func WithMaxConcurrentQueries(n int) Option {
	return Option{name: "WithMaxConcurrentQueries", scope: scopeEngine,
		apply: func(o *options) { o.maxQueries = n }}
}

// WithQueryTimeout bounds one execution's wall-clock time: Execute derives a
// deadline context, the running morsel loops stop within one morsel when it
// fires, and the returned error matches ErrQueryTimeout. The timeout covers
// the admission wait. 0 means no deadline. Applies to NewEngine (default for
// every execution), Prepare, and Execute.
func WithQueryTimeout(d time.Duration) Option {
	return Option{name: "WithQueryTimeout", scope: scopeEngine | scopePrepare | scopeExec,
		apply: func(o *options) { o.timeout = d }}
}

// WithMemoryEstimateLimit bounds the conservative prepare-time estimate of
// the intermediate bytes one execution can materialize (see
// Prepared.MemoryEstimate). An over-limit plan fails Prepare with an error
// matching ErrMemoryLimit — or, with WithMemoryLimitDegrade, prepares
// degraded instead. 0 means unlimited. Applies to NewEngine and Prepare.
func WithMemoryEstimateLimit(bytes int) Option {
	return Option{name: "WithMemoryEstimateLimit", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.memLimit = bytes }}
}

// WithMemoryLimitDegrade selects graceful degradation for plans over the
// memory-estimate limit: instead of rejecting the plan, Prepare pins its
// executions to sequential operator-at-a-time processing (par=1), the mode
// with the smallest transient footprint — one operator's scratch at a time
// and no concurrent per-worker buffers. Prepared.Degraded reports the
// decision. Applies to NewEngine and Prepare.
func WithMemoryLimitDegrade(on bool) Option {
	return Option{name: "WithMemoryLimitDegrade", scope: scopeEngine | scopePrepare,
		apply: func(o *options) { o.memDegrade = on }}
}

// WithFormat assigns a compression format to one named plan column
// (an intermediate, or with WithCostBasedFormats/WithUniformFormat an
// override of the automatic choice). Applies to Prepare.
func WithFormat(column string, d columns.FormatDesc) Option {
	return Option{name: "WithFormat", scope: scopePrepare, apply: func(o *options) {
		m := make(map[string]columns.FormatDesc, len(o.explicit)+1)
		for k, v := range o.explicit {
			m[k] = v
		}
		m[column] = d
		o.explicit = m
	}}
}

// WithFormats assigns compression formats to the named plan columns
// (DP2: each intermediate chosen independently; missing entries stay
// uncompressed). Applies to Prepare.
func WithFormats(m map[string]columns.FormatDesc) Option {
	return Option{name: "WithFormats", scope: scopePrepare, apply: func(o *options) {
		merged := make(map[string]columns.FormatDesc, len(o.explicit)+len(m))
		for k, v := range o.explicit {
			merged[k] = v
		}
		for k, v := range m {
			merged[k] = v
		}
		o.explicit = merged
	}}
}

// WithUniformFormat assigns one format to every intermediate of the plan
// (randomly accessed columns fall back to static BP). Applies to Prepare.
func WithUniformFormat(d columns.FormatDesc) Option {
	return Option{name: "WithUniformFormat", scope: scopePrepare, apply: func(o *options) {
		d := d
		o.uniform = &d
		o.costBased = false
	}}
}

// WithCostBasedFormats selects every intermediate's format with the
// gray-box cost model (footprint objective, §5): the plan's data
// characteristics are profiled once at prepare time and each column's
// format chosen from its compact profile. Applies to Prepare.
func WithCostBasedFormats() Option {
	return Option{name: "WithCostBasedFormats", scope: scopePrepare, apply: func(o *options) {
		o.costBased = true
		o.uniform = nil
	}}
}

// WithConfig adopts a legacy Config (formats, style, specialized, AutoMorph,
// Keep; Parallelism is ignored here — set it at NewEngine or Execute).
// Applies to Prepare; it is the bridge the deprecated free functions use.
func WithConfig(cfg *Config) Option {
	return Option{name: "WithConfig", scope: scopePrepare, apply: func(o *options) {
		if cfg == nil {
			return
		}
		m := make(map[string]columns.FormatDesc, len(cfg.Inter))
		for k, v := range cfg.Inter {
			m[k] = v
		}
		o.explicit = m
		o.uniform = nil
		o.costBased = false
		o.style = cfg.Style
		o.specialized = cfg.Specialized
		o.autoMorph = cfg.AutoMorph
		o.keep = cfg.Keep
	}}
}

// WithOutput sets the output format of a one-off operator call (every
// output of dual-output operators). Applies to operator calls.
func WithOutput(d columns.FormatDesc) Option {
	return Option{name: "WithOutput", scope: scopeOp,
		apply: func(o *options) { o.output = []columns.FormatDesc{d} }}
}

// WithOutputs sets the two output formats of a dual-output operator call
// (JoinN1: probe positions, build positions; GroupFirst/GroupNext: group
// ids, extents). Applies to operator calls.
func WithOutputs(first, second columns.FormatDesc) Option {
	return Option{name: "WithOutputs", scope: scopeOp,
		apply: func(o *options) { o.output = []columns.FormatDesc{first, second} }}
}

// outputDesc returns the bound output format of output i of a one-off
// operator call; outputs default to uncompressed.
func (o *options) outputDesc(i int) columns.FormatDesc {
	switch {
	case len(o.output) == 0:
		return columns.UncomprDesc
	case i < len(o.output):
		return o.output[i]
	default:
		return o.output[0]
	}
}

// Engine owns a database, an engine-wide worker budget shared
// deterministically by every concurrently executing query and one-off
// operator call, and an optional admission gate. It is safe for concurrent
// use; all its state is fixed at construction except the observability
// counters behind Stats, which are atomic.
type Engine struct {
	db       *DB
	budget   *ops.Budget
	admit    chan struct{}
	defs     options
	err      error
	counters engineCounters
}

// NewEngine returns an engine over db. Options set engine-wide defaults
// (WithStyle, WithSpecialized, WithAutoMorph), the worker budget
// (WithParallelism: 0 = GOMAXPROCS), and the admission gate
// (WithMaxConcurrentQueries). A misplaced option is reported by the first
// Prepare/operator call.
func NewEngine(db *DB, o ...Option) *Engine {
	if db == nil {
		db = NewDB()
	}
	defs, err := options{style: vector.Scalar}.merged(scopeEngine, o)
	e := &Engine{db: db, budget: ops.NewBudget(defs.par), defs: defs, err: err}
	e.budget.SetTelemetry(e.counters.budget)
	if defs.maxQueries > 0 {
		e.admit = make(chan struct{}, defs.maxQueries)
	}
	// Query/operator layers interpret par as their own cap; the engine-level
	// value has been consumed by the budget.
	e.defs.par = 0
	return e
}

// DB returns the engine's database.
func (e *Engine) DB() *DB { return e.db }

// Budget returns the engine's total worker budget.
func (e *Engine) Budget() int { return e.budget.Total() }

// Prepared is a plan compiled against one engine: formats resolved, every
// node bound to a physical operator. It is immutable and safe for
// concurrent Execute calls from many goroutines.
type Prepared struct {
	e        *Engine
	p        *Plan
	opt      options
	bound    []boundNode
	sinks    map[string]bool
	estimate int
	degraded bool
}

// Prepare compiles the plan once against the engine's database: per-column
// formats are resolved (explicit WithFormat/WithFormats, WithUniformFormat,
// or WithCostBasedFormats; explicit entries win), morph insertions and
// specialized-kernel dispatch are fixed, and configuration errors surface
// here rather than mid-execution.
func (e *Engine) Prepare(p *Plan, o ...Option) (*Prepared, error) {
	if e.err != nil {
		return nil, e.err
	}
	if p == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	opt, err := e.defs.merged(scopePrepare, o)
	if err != nil {
		return nil, err
	}
	if opt.inter, err = e.resolveFormats(p, &opt); err != nil {
		return nil, err
	}
	sinks := p.sinkSet()
	for name := range sinks {
		if d, ok := opt.inter[name]; ok && d.Kind != columns.Uncompressed {
			return nil, fmt.Errorf("core: result column %q must stay uncompressed, configured %v", name, d)
		}
	}
	c := &compiler{p: p, db: e.db, opt: &opt, sinks: sinks}
	bound := make([]boundNode, len(p.nodes))
	for i, n := range p.nodes {
		if bound[i], err = c.compile(n); err != nil {
			return nil, err
		}
	}
	est, err := memoryEstimate(p, e.db)
	if err != nil {
		return nil, err
	}
	pr := &Prepared{e: e, p: p, opt: opt, bound: bound, sinks: sinks, estimate: est}
	if opt.memLimit > 0 && est > opt.memLimit {
		if !opt.memDegrade {
			return nil, qerr.Tag(fmt.Errorf("core: plan memory estimate %d bytes over limit %d", est, opt.memLimit),
				qerr.ErrMemoryLimit)
		}
		pr.degraded = true
	}
	return pr, nil
}

// MemoryEstimate returns the conservative upper bound, in bytes, on the
// intermediate columns one execution of the prepared plan can materialize —
// the quantity WithMemoryEstimateLimit bounds. Base columns are excluded
// (scans hand out the stored columns), and every intermediate element is
// costed at an uncompressed 8-byte word, so compressed plans stay well under
// the estimate.
func (pr *Prepared) MemoryEstimate() int { return pr.estimate }

// Degraded reports whether the plan exceeded the memory-estimate limit and
// was pinned to sequential execution by WithMemoryLimitDegrade.
func (pr *Prepared) Degraded() bool { return pr.degraded }

// resolveFormats materializes the per-column format map of one preparation.
func (e *Engine) resolveFormats(p *Plan, opt *options) (map[string]columns.FormatDesc, error) {
	inter := make(map[string]columns.FormatDesc)
	switch {
	case opt.costBased:
		a, err := CostBasedAssignment(p, e.db)
		if err != nil {
			return nil, err
		}
		for k, v := range a.Inter {
			inter[k] = v
		}
	case opt.uniform != nil:
		for _, name := range p.IntermediateNames() {
			d := *opt.uniform
			if p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) {
				d = columns.StaticBPDesc(0)
			}
			inter[name] = d
		}
	}
	for k, v := range opt.explicit {
		inter[k] = v
	}
	return inter, nil
}

// Plan returns the prepared plan.
func (pr *Prepared) Plan() *Plan { return pr.p }

// Formats returns the formats bound to the plan's intermediates (a copy).
func (pr *Prepared) Formats() map[string]columns.FormatDesc {
	m := make(map[string]columns.FormatDesc, len(pr.opt.inter))
	for k, v := range pr.opt.inter {
		m[k] = v
	}
	return m
}

// Execute runs the prepared plan. The context cancels the execution: the
// DAG scheduler stops dispatching operators and running morsel loops stop
// within one morsel, returning an error matching ErrQueryCanceled (or
// ErrQueryTimeout when a deadline — including WithQueryTimeout — fired).
// Concurrent Execute calls from any number of goroutines share the engine's
// worker budget deterministically and produce columns byte-identical to a
// sequential run. A failing execution — cancelled, corrupt data, or a
// recovered operator panic — is isolated to this call: the engine, the
// prepared plan and concurrent queries stay fully usable, and re-executing
// the same Prepared afterwards yields the same columns a fresh execution
// would. Execute options: WithParallelism (this query's cap), WithKeep,
// WithQueryTimeout, WithExecStats, WithTracer.
func (pr *Prepared) Execute(ctx context.Context, o ...Option) (*Result, error) {
	res, err := pr.execute(ctx, o)
	pr.e.counters.query(err)
	return res, err
}

// execute is Execute without the engine-counter bookkeeping.
func (pr *Prepared) execute(ctx context.Context, o []Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt, err := pr.opt.merged(scopeExec, o)
	if err != nil {
		return nil, err
	}
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	e := pr.e
	if e.admit != nil {
		select {
		case e.admit <- struct{}{}:
			defer func() { <-e.admit }()
		case <-ctx.Done():
			// The query never started: tag the context error so callers can
			// tell an admission rejection from a mid-flight cancellation.
			return nil, qerr.Tag(qerr.Classify(ctx.Err()), qerr.ErrAdmissionRejected)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, qerr.Classify(err)
	}
	par := opt.par
	if par <= 0 {
		par = e.budget.Total()
	}
	if pr.degraded {
		par = 1
	}
	es := &execState{
		outs: make([][]*columns.Column, len(pr.p.nodes)),
		coll: pr.newCollector(&opt),
	}
	res := &Result{
		Cols: make(map[string]*columns.Column, len(pr.p.sinks)),
		Meas: Measure{
			PerOp:    make(map[string]time.Duration),
			ColBytes: make(map[string]int),
		},
	}
	if opt.keep {
		res.Inter = make(map[string]*columns.Column)
	}
	if par <= 1 {
		err = pr.runSequential(ctx, es, res, opt.keep)
	} else {
		err = pr.runConcurrent(ctx, es, res, opt.keep, par)
	}
	err = qerr.Classify(err)
	finishCollector(es.coll, &opt, err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// nodeRuntime leases the node's worker share from the engine budget; the
// returned release must be called when the node completes so the budget
// re-divides among the operators still running. Every operator leases up to
// the full per-query parallelism — with the grouping and sorted-set drivers
// parallelized there are no cap-1 leases left, so the budget re-division
// covers the whole plan. The node's collector (nil when detached) observes
// every re-division of the lease and the morsel loops run through it.
func (e *Engine) nodeRuntime(ctx context.Context, par int, nc *metrics.NodeCollector) (ops.Runtime, func()) {
	var obs func(int)
	if nc != nil {
		obs = nc.LeaseLimit
	}
	lease := e.budget.LeaseObserved(par, obs)
	return ops.RT(ctx, lease, par).WithCollector(nc), lease.Close
}

// runNode executes one bound operator under its budget lease. Scans do no
// kernel work (they hand out the stored column), so they skip the budget
// entirely instead of opening and closing a lease — a lease open/close pair
// would transiently re-divide the allowance of every running operator.
//
// The node runs under a recover guard: a panic on the operator's own
// goroutine — the morsel workers have their own guards — is converted into a
// *QueryError instead of crashing the process, and every QueryError
// surfacing here is tagged with the operator it escaped from. The guard sits
// after the lease's deferred release, so a panicking node cannot leak its
// budget share.
func (pr *Prepared) runNode(ctx context.Context, es *execState, bn *boundNode, par int) (produced []*columns.Column, err error) {
	// The collector's Finish defer is registered before the recover guard so
	// it runs after it and records the final, panic-converted outcome — a
	// panicking node still leaves a coherent partial stats entry.
	nc := es.coll.Node(bn.n.id)
	nc.Begin(inputValues(es, bn.n))
	defer func() { nc.Finish(outputValues(produced), outputFormats(produced), err) }()
	defer func() {
		if v := recover(); v != nil {
			qe := qerr.Recovered(v, -1)
			qe.Op = bn.n.op.String()
			produced, err = nil, qe
			return
		}
		var qe *qerr.QueryError
		if errors.As(err, &qe) && qe.Op == "" {
			qe.Op = bn.n.op.String()
		}
	}()
	if bn.n.op == OpScan {
		return bn.run(es, ops.RT(ctx, nil, 1).WithCollector(nc))
	}
	rt, release := pr.e.nodeRuntime(ctx, par, nc)
	defer release()
	produced, err = bn.run(es, rt)
	if err != nil {
		return nil, fmt.Errorf("core: %v %q: %w", bn.n.op, bn.n.outNames[0], err)
	}
	return produced, nil
}

// runSequential executes the nodes one at a time in topological order — the
// original operator-at-a-time execution — checking the context between
// operators.
func (pr *Prepared) runSequential(ctx context.Context, es *execState, res *Result, keep bool) error {
	for i := range pr.bound {
		if err := ctx.Err(); err != nil {
			return err
		}
		bn := &pr.bound[i]
		start := time.Now()
		produced, err := pr.runNode(ctx, es, bn, 1)
		if err != nil {
			return err
		}
		es.outs[bn.n.id] = produced
		pr.account(res, bn.n, produced, time.Since(start), keep)
	}
	return nil
}

// account books the footprint and runtime of one completed node into the
// result. In the concurrent execution the scheduler serializes calls.
func (pr *Prepared) account(res *Result, n *Node, produced []*columns.Column, elapsed time.Duration, keep bool) {
	if n.op != OpScan {
		res.Meas.Runtime += elapsed
		res.Meas.PerOp[n.op.String()] += elapsed
	}
	for i, col := range produced {
		name := n.outNames[i]
		res.Meas.ColBytes[name] = col.PhysicalBytes()
		if n.op == OpScan {
			res.Meas.BaseBytes += col.PhysicalBytes()
		} else {
			res.Meas.InterBytes += col.PhysicalBytes()
		}
		if keep {
			res.Inter[name] = col
		}
		if pr.sinks[name] {
			res.Cols[name] = col
		}
	}
}
