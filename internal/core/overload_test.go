package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/metrics"
	"morphstore/internal/qerr"
)

// This file tests the overload-protection layer: the bounded admission
// queue (shed ordering, overflow, wait bounds, fault injection), the
// runtime memory governor's engine integration, the WithRetry loop, and
// graceful Engine.Close (the racing chaos variant lives in
// closechaos_test.go).

// waitFor polls cond for up to a second; it fails the test when the
// condition never holds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAdmissionQueueFIFOAndOverflow: parked queries are granted in arrival
// order when slots free up, and arrivals beyond the queue depth are shed
// immediately with ErrAdmissionRejected.
func TestAdmissionQueueFIFOAndOverflow(t *testing.T) {
	a := newAdmission(1, 2, 0)
	hold, _, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Park two waiters, strictly ordered.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, wait, err := a.admit(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			if wait <= 0 {
				t.Errorf("waiter %d admitted without a measured wait", i)
			}
			order <- i
			release()
		}()
		waitFor(t, "waiter to park", func() bool { return a.counters().queued == i })
	}

	// Third arrival overflows the depth-2 queue.
	if _, _, err := a.admit(context.Background()); !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("overflow arrival: %v, want ErrAdmissionRejected", err)
	}
	if c := a.counters(); c.shedOverflow != 1 {
		t.Fatalf("shedOverflow = %d, want 1", c.shedOverflow)
	}

	hold()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d, want FIFO 1,2", first, second)
	}
	c := a.counters()
	if c.waits != 2 || c.waitNS <= 0 {
		t.Fatalf("wait accounting: %+v", c)
	}
	if !a.drain(context.Background()) {
		t.Fatal("drain of idle admission failed")
	}
}

// TestAdmissionMaxWaitShed: a query parked past the configured maxWait is
// shed with ErrAdmissionRejected even though its own context never fires.
func TestAdmissionMaxWaitShed(t *testing.T) {
	a := newAdmission(1, 0, 5*time.Millisecond)
	hold, _, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	_, wait, err := a.admit(context.Background())
	if !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("maxWait shed: %v, want ErrAdmissionRejected", err)
	}
	if errors.Is(err, qerr.ErrQueryTimeout) || errors.Is(err, qerr.ErrQueryCanceled) {
		t.Fatalf("maxWait shed classified mid-flight: %v", err)
	}
	if wait < 5*time.Millisecond {
		t.Fatalf("shed after %v, want >= maxWait", wait)
	}
	if c := a.counters(); c.shedExpired != 1 {
		t.Fatalf("shedExpired = %d, want 1", c.shedExpired)
	}
}

// TestAdmissionEnqueueFaultInjection: an injected failure at the
// admission-enqueue site — error or panic — surfaces as a typed
// ErrAdmissionRejected without crashing, for both handler behaviours.
func TestAdmissionEnqueueFaultInjection(t *testing.T) {
	defer faultpoint.DisarmAll()
	a := newAdmission(1, 0, 0)
	hold, _, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	faultpoint.AdmissionEnqueue.Arm(func() error { return fmt.Errorf("injected enqueue failure") })
	if _, _, err := a.admit(context.Background()); !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("injected enqueue error: %v, want ErrAdmissionRejected", err)
	}

	faultpoint.AdmissionEnqueue.Arm(func() error { panic("injected enqueue panic") })
	_, _, err = a.admit(context.Background())
	var qe *qerr.QueryError
	if !errors.Is(err, qerr.ErrAdmissionRejected) || !errors.As(err, &qe) {
		t.Fatalf("injected enqueue panic: %v, want ErrAdmissionRejected wrapping QueryError", err)
	}
	faultpoint.AdmissionEnqueue.Disarm()
	if c := a.counters(); c.queued != 0 {
		t.Fatalf("failed enqueues left %d queued", c.queued)
	}
}

// TestRetryBackoffBounds: the policy's backoff doubles from BaseDelay, caps
// at MaxDelay, and jitters only upward within the configured fraction.
func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: time.Millisecond,
		2: 2 * time.Millisecond,
		3: 4 * time.Millisecond,
		4: 4 * time.Millisecond, // capped
		9: 4 * time.Millisecond,
	} {
		if got := p.backoff(attempt); got != want {
			t.Fatalf("backoff(%d) = %v, want %v (no jitter)", attempt, got, want)
		}
	}
	p.Jitter = 0.5
	for attempt := 1; attempt <= 6; attempt++ {
		base := p.backoffBase(attempt)
		for i := 0; i < 32; i++ {
			d := p.backoff(attempt)
			if d < base || d > base+base/2 {
				t.Fatalf("jittered backoff(%d) = %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
	}
	if (RetryPolicy{}).attempts() != 1 || (RetryPolicy{MaxAttempts: -3}).attempts() != 1 {
		t.Fatal("zero/negative policies must mean a single attempt")
	}
	if (RetryPolicy{BaseDelay: time.Second}).backoff(40) <= 0 {
		t.Fatal("deep attempt backoff must stay positive (overflow)")
	}
}

// TestWithRetryRecoversFromShed: an execution shed by the admission layer
// retries under WithRetry and succeeds once the congestion clears; the
// retries are visible in Engine.Stats.
func TestWithRetryRecoversFromShed(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2), WithMaxConcurrentQueries(1),
		WithAdmissionQueue(1, 2*time.Millisecond))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.UncomprDesc))
	if err != nil {
		t.Fatal(err)
	}
	hold, _, err := e.adm.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	go func() { time.Sleep(8 * time.Millisecond); hold() }()
	res, err := pr.Execute(context.Background(),
		WithRetry(RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatalf("retried execution: %v", err)
	}
	if res == nil || len(res.Cols) == 0 {
		t.Fatal("retried execution returned no columns")
	}
	st := e.Stats()
	if st.QueriesRetried < 1 || st.QueriesRejected < 1 || st.QueriesSucceeded != 1 {
		t.Fatalf("retry accounting: retried=%d rejected=%d succeeded=%d",
			st.QueriesRetried, st.QueriesRejected, st.QueriesSucceeded)
	}
}

// TestWithRetryTransientAndNonRetryable: a transient injected fault is
// retried to success; a corrupt-data failure is not retried at all.
func TestWithRetryTransientAndNonRetryable(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// First execution attempt hits a transient fault; the second runs clean.
	var hits atomic.Int64
	faultpoint.MorselClaim.Arm(func() error {
		if hits.Add(1) == 1 {
			return fmt.Errorf("injected flake: %w", qerr.ErrTransient)
		}
		return nil
	})
	res, err := pr.Execute(context.Background(),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatalf("transient-retried execution: %v", err)
	}
	if err := sameResult(ref, res); err != nil {
		t.Fatalf("retried execution diverged: %v", err)
	}
	if st := e.Stats(); st.QueriesRetried != 1 {
		t.Fatalf("QueriesRetried = %d, want 1", st.QueriesRetried)
	}

	// Corrupt data is never retryable: exactly one attempt.
	faultpoint.MorselClaim.Arm(func() error { return fmt.Errorf("injected: %w", qerr.ErrCorruptData) })
	before := e.Stats().QueriesStarted
	_, err = pr.Execute(context.Background(),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}))
	if !errors.Is(err, qerr.ErrCorruptData) {
		t.Fatalf("corrupt execution: %v", err)
	}
	if got := e.Stats().QueriesStarted - before; got != 1 {
		t.Fatalf("corrupt failure made %d attempts, want 1", got)
	}
}

// TestMemoryBudgetGovernance: executions reserve their estimate from the
// engine's governor, report estimate and measured peak in QueryStats, leave
// the governor empty when done, degrade to sequential under
// WithMemoryLimitDegrade when the estimate exceeds the budget, and fail
// with a non-retryable ErrMemoryLimit without it.
func TestMemoryBudgetGovernance(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	roomy := NewEngine(db, WithParallelism(4), WithMemoryBudget(1<<30))
	pr, err := roomy.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var qs metrics.QueryStats
	if _, err := pr.Execute(context.Background(), WithExecStats(&qs)); err != nil {
		t.Fatal(err)
	}
	if qs.MemEstimate != int64(pr.MemoryEstimate()) || qs.MemEstimate <= 0 {
		t.Fatalf("MemEstimate = %d, want %d", qs.MemEstimate, pr.MemoryEstimate())
	}
	if qs.MemPeak <= 0 || qs.MemDegraded {
		t.Fatalf("MemPeak = %d, MemDegraded = %v, want positive peak, no degrade", qs.MemPeak, qs.MemDegraded)
	}
	st := roomy.Stats()
	if st.MemBudget != 1<<30 || st.MemReserved != 0 || st.MemPeakReserved < qs.MemEstimate {
		t.Fatalf("governor stats after idle: %+v", st)
	}

	// Estimate over the whole budget, degradation on: sequential execution
	// under a clamped reservation, byte-identical result.
	tiny := NewEngine(db, WithParallelism(4),
		WithMemoryBudget(int64(pr.MemoryEstimate()-1)), WithMemoryLimitDegrade(true))
	dpr, err := tiny.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	var dqs metrics.QueryStats
	res, err := dpr.Execute(context.Background(), WithExecStats(&dqs))
	if err != nil {
		t.Fatalf("degraded execution: %v", err)
	}
	if err := sameResult(ref, res); err != nil {
		t.Fatalf("degraded execution diverged: %v", err)
	}
	if !dqs.MemDegraded || dqs.MemEstimate != int64(pr.MemoryEstimate()-1) {
		t.Fatalf("degraded stats: %+v", dqs)
	}

	// Degradation off: typed, non-retryable rejection.
	strict := NewEngine(db, WithParallelism(4), WithMemoryBudget(int64(pr.MemoryEstimate()-1)))
	spr, err := strict.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	_, err = spr.Execute(context.Background())
	if !errors.Is(err, qerr.ErrMemoryLimit) || qerr.IsRetryable(err) {
		t.Fatalf("over-budget execution: %v, want non-retryable ErrMemoryLimit", err)
	}
	if st := strict.Stats(); st.MemOverBudget != 1 {
		t.Fatalf("MemOverBudget = %d, want 1", st.MemOverBudget)
	}
}

// TestEngineCloseGraceful: Close drains an idle engine immediately, later
// Execute and operator calls fail fast with non-retryable ErrEngineClosed,
// and Close is idempotent.
func TestEngineCloseGraceful(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2), WithMaxConcurrentQueries(2))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.UncomprDesc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, err = pr.Execute(context.Background())
	if !errors.Is(err, qerr.ErrEngineClosed) || qerr.IsRetryable(err) {
		t.Fatalf("execute after close: %v, want non-retryable ErrEngineClosed", err)
	}
	in, err := db.Column("fact", "qty")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sum(context.Background(), in); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("operator call after close: %v, want ErrEngineClosed", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
	st := e.Stats()
	if !st.EngineClosed || st.QueriesClosed < 1 {
		t.Fatalf("close accounting: closed=%v queriesClosed=%d", st.EngineClosed, st.QueriesClosed)
	}
}

// TestEngineCloseShedsQueuedWaiters: queries parked in the admission queue
// when Close arrives are shed with ErrEngineClosed, not left hanging.
func TestEngineCloseShedsQueuedWaiters(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2), WithMaxConcurrentQueries(1))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.UncomprDesc))
	if err != nil {
		t.Fatal(err)
	}
	hold, _, err := e.adm.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := pr.Execute(context.Background())
		errCh <- err
	}()
	waitFor(t, "waiter to park", func() bool { return e.adm.counters().queued == 1 })
	// Close sheds the parked waiter immediately, then blocks draining until
	// the held slot is released.
	closeErr := make(chan error, 1)
	go func() { closeErr <- e.Close(context.Background()) }()
	if err := <-errCh; !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("queued waiter after close: %v, want ErrEngineClosed", err)
	}
	hold()
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := e.Stats(); st.AdmissionShedClosed < 1 {
		t.Fatalf("AdmissionShedClosed = %d, want >= 1", st.AdmissionShedClosed)
	}
}

// TestEngineCloseCancelsStragglers: a Close whose context expires before
// the graceful drain completes cancels the in-flight execution, which
// returns an error matching ErrEngineClosed; Close reports the context
// error and still leaves the engine fully drained.
func TestEngineCloseCancelsStragglers(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)
	e := NewEngine(db, WithParallelism(2))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	// Slow every morsel claim so the execution comfortably outlives the
	// close deadline.
	faultpoint.MorselClaim.Arm(func() error { time.Sleep(time.Millisecond); return nil })
	errCh := make(chan error, 1)
	go func() {
		_, err := pr.Execute(context.Background())
		errCh <- err
	}()
	waitFor(t, "execution to start", func() bool { return e.adm.counters().inflight == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close past deadline: %v, want DeadlineExceeded", err)
	}
	execErr := <-errCh
	if !errors.Is(execErr, qerr.ErrEngineClosed) {
		t.Fatalf("straggler: %v, want ErrEngineClosed", execErr)
	}
	if qerr.IsRetryable(execErr) {
		t.Fatalf("straggler cancellation retryable: %v", execErr)
	}
	if c := e.adm.counters(); c.inflight != 0 {
		t.Fatalf("%d executions still in flight after close", c.inflight)
	}
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked through close", n)
	}
}

// TestEngineCloseDrainFaultInjection: an injected failure at the
// close-drain site surfaces typed from Close, leaves the engine closed, and
// a repeated Close finishes the drain.
func TestEngineCloseDrainFaultInjection(t *testing.T) {
	defer faultpoint.DisarmAll()
	e := NewEngine(nil, WithParallelism(2))
	faultpoint.CloseDrain.Arm(func() error { return fmt.Errorf("injected drain failure") })
	if err := e.Close(context.Background()); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("close under injection: %v, want typed error", err)
	}
	if !e.Stats().EngineClosed {
		t.Fatal("engine not closed after failed drain")
	}
	faultpoint.CloseDrain.Disarm()
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close retry after injection: %v", err)
	}

	// The panic flavour is converted by the guard, not propagated.
	e2 := NewEngine(nil, WithParallelism(2))
	faultpoint.CloseDrain.Arm(func() error { panic("injected drain panic") })
	err := e2.Close(context.Background())
	var qe *qerr.QueryError
	if !errors.As(err, &qe) || !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("close under panic injection: %v, want ErrEngineClosed wrapping QueryError", err)
	}
}

// TestOneOffOpsDrainThroughClose: one-off operator calls participate in the
// Close drain — a Close issued mid-call waits for it (or cancels it at the
// deadline with ErrEngineClosed).
func TestOneOffOpsDrainThroughClose(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	e := NewEngine(db, WithParallelism(2))
	in, err := db.Column("fact", "qty")
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.MorselClaim.Arm(func() error { time.Sleep(time.Millisecond); return nil })
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Sum(context.Background(), in)
		errCh <- err
	}()
	waitFor(t, "operator call to start", func() bool { return e.adm.counters().inflight == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_ = e.Close(ctx) // nil if the op finished in time, ctx error otherwise
	if err := <-errCh; err != nil && !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("one-off op through close: %v, want nil or ErrEngineClosed", err)
	}
	if c := e.adm.counters(); c.inflight != 0 {
		t.Fatalf("%d calls still in flight after close", c.inflight)
	}
}
