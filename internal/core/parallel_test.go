package core

import (
	"fmt"
	"math/rand"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/ops"
	"morphstore/internal/vector"
)

// buildParTestDB builds a star-schema-like database: a fact table with
// foreign keys, quantities and prices, and a small dimension table. The fact
// cardinality is deliberately not block-aligned.
func buildParTestDB(t *testing.T) *DB {
	t.Helper()
	const nFact = 10*512 + 300 // > 2 morsels, not block-aligned
	const nDim = 400
	rng := rand.New(rand.NewSource(4))
	fk := make([]uint64, nFact)
	qty := make([]uint64, nFact)
	price := make([]uint64, nFact)
	for i := 0; i < nFact; i++ {
		fk[i] = uint64(rng.Intn(nDim))
		qty[i] = uint64(rng.Intn(50))
		price[i] = uint64(100 + rng.Intn(900))
	}
	id := make([]uint64, nDim)
	attr := make([]uint64, nDim)
	for i := 0; i < nDim; i++ {
		id[i] = uint64(i)
		attr[i] = uint64(rng.Intn(7))
	}
	db := NewDB()
	db.AddTable("fact", map[string][]uint64{"fk": fk, "qty": qty, "price": price})
	db.AddTable("dim", map[string][]uint64{"id": id, "attr": attr})
	return db
}

// buildParTestPlan assembles a plan with two independent filter branches
// (fodder for the concurrent scheduler), a semijoin, an N:1 join with both
// outputs consumed, projects, a calc, a grouped and a whole-column
// aggregation — every morsel-parallel streamed operator appears at least
// once.
func buildParTestPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	attr := b.Scan("dim", "attr")
	dimID := b.Scan("dim", "id")
	dSel := b.Select("d_sel", attr, bitutil.CmpEq, 3)
	dIDs := b.Project("d_ids", dimID, dSel)

	fk := b.Scan("fact", "fk")
	qty := b.Scan("fact", "qty")
	price := b.Scan("fact", "price")
	loPos := b.SemiJoin("lo_pos", fk, dIDs)
	qSel := b.Between("q_sel", qty, 10, 40)
	pos := b.Intersect("pos", loPos, qSel)

	pricePos := b.Project("price_pos", price, pos)
	qtyPos := b.Project("qty_pos", qty, pos)
	rev := b.Calc("rev", ops.CalcMul, pricePos, qtyPos)
	fkPos := b.Project("fk_pos", fk, pos)
	gids, extents := b.GroupFirst("g", fkPos)
	b.Result(b.SumGrouped("rev_g", gids, extents, rev))
	b.Result(b.SumWhole("rev_total", rev))

	// N:1 join branch: both the probe-side and the build-side position
	// outputs feed projects, pinning the dual-output stitch order.
	jp, jb := b.JoinN1("j", fk, dIDs)
	idJ := b.Project("id_j", dimID, jb)
	qtyJ := b.Project("qty_j", qty, jp)
	prod := b.Calc("jprod", ops.CalcMul, qtyJ, idJ)
	b.Result(b.SumWhole("jtotal", prod))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sameColumns(t *testing.T, ctx string, want, got *columns.Column) {
	t.Helper()
	if got.Desc() != want.Desc() || got.N() != want.N() || got.MainElems() != want.MainElems() {
		t.Fatalf("%s: column shape %v/%d/%d, want %v/%d/%d",
			ctx, got.Desc(), got.N(), got.MainElems(), want.Desc(), want.N(), want.MainElems())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("%s: %d words, want %d", ctx, len(gw), len(ww))
	}
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("%s: word %d differs", ctx, i)
		}
	}
}

// TestExecuteParallelismEquivalence runs the same plan at parallelism 1, 2,
// 3, 8 and blocks+1 (more workers than fact-column blocks — degenerate
// partitions) under several format configurations and asserts that the
// result columns and the byte accounting are identical at every level.
func TestExecuteParallelismEquivalence(t *testing.T) {
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)

	base := map[string]columns.FormatDesc{
		"fact.fk":  columns.StaticBPDesc(0), // randomly accessed -> static BP
		"fact.qty": columns.StaticBPDesc(0),
		"dim.id":   columns.StaticBPDesc(0),
		"dim.attr": columns.DynBPDesc,
	}
	enc, err := db.Encode(base)
	if err != nil {
		t.Fatal(err)
	}

	interDescs := []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc, columns.DeltaBPDesc}
	for _, dbCase := range []struct {
		name string
		db   *DB
	}{{"plain", db}, {"encoded", enc}} {
		for _, interDesc := range interDescs {
			for _, style := range vector.Styles {
				name := fmt.Sprintf("%s/%v/%v", dbCase.name, interDesc, style)
				mkCfg := func(par int) *Config {
					cfg := UniformConfig(plan, interDesc, style)
					cfg.Keep = true
					cfg.Parallelism = par
					return cfg
				}
				want, err := Execute(plan, dbCase.db, mkCfg(1))
				if err != nil {
					t.Fatalf("%s: sequential: %v", name, err)
				}
				// 10*512+300 fact elements span 11 blocks; 12 over-subscribes.
				for _, par := range []int{2, 3, 8, 12} {
					got, err := Execute(plan, dbCase.db, mkCfg(par))
					if err != nil {
						t.Fatalf("%s p=%d: %v", name, par, err)
					}
					for cn, wc := range want.Cols {
						gc, ok := got.Cols[cn]
						if !ok {
							t.Fatalf("%s p=%d: missing result column %q", name, par, cn)
						}
						sameColumns(t, fmt.Sprintf("%s p=%d col %s", name, par, cn), wc, gc)
					}
					for cn, wc := range want.Inter {
						gc, ok := got.Inter[cn]
						if !ok {
							t.Fatalf("%s p=%d: missing intermediate %q", name, par, cn)
						}
						sameColumns(t, fmt.Sprintf("%s p=%d inter %s", name, par, cn), wc, gc)
					}
					if got.Meas.BaseBytes != want.Meas.BaseBytes || got.Meas.InterBytes != want.Meas.InterBytes {
						t.Fatalf("%s p=%d: footprint %d/%d, want %d/%d", name, par,
							got.Meas.BaseBytes, got.Meas.InterBytes, want.Meas.BaseBytes, want.Meas.InterBytes)
					}
					if len(got.Meas.ColBytes) != len(want.Meas.ColBytes) {
						t.Fatalf("%s p=%d: ColBytes has %d entries, want %d", name, par,
							len(got.Meas.ColBytes), len(want.Meas.ColBytes))
					}
					for cn, wb := range want.Meas.ColBytes {
						if gb := got.Meas.ColBytes[cn]; gb != wb {
							t.Fatalf("%s p=%d: ColBytes[%s] = %d, want %d", name, par, cn, gb, wb)
						}
					}
				}
			}
		}
	}
}

// TestExecuteParallelErrorPropagation checks that a failing operator aborts
// a concurrent execution with the same error the sequential executor
// reports, and that no result is returned.
func TestExecuteParallelErrorPropagation(t *testing.T) {
	db := buildParTestDB(t)
	b := NewBuilder()
	qty := b.Scan("fact", "qty")
	sel := b.Select("sel", qty, bitutil.CmpLt, 10)
	// DynBP positions are randomly accessed by the project below: illegal
	// without AutoMorph.
	b.Result(b.Project("bad", sel, b.Select("sel2", qty, bitutil.CmpLt, 5)))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		cfg := &Config{
			Inter:       map[string]columns.FormatDesc{"sel": columns.DynBPDesc, "sel2": columns.DynBPDesc},
			Style:       vector.Scalar,
			Parallelism: par,
		}
		res, err := Execute(plan, db, cfg)
		if err == nil {
			t.Fatalf("p=%d: expected random-access error, got result %v", par, res)
		}
	}
}
