package core

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/metrics"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
)

// This file implements the physical-operator compilation step behind
// Engine.Prepare: every plan node is bound once — per-column output formats
// resolved, on-the-fly morph insertions decided, base columns fetched from
// the database, and the kernel dispatch (generic morsel drivers vs
// specialized direct operators) fixed — into one physOp closure with a
// uniform signature. Execution then just walks the bound operators; the
// per-execution runNode type switch of the pre-engine executor is gone.
//
// All decisions that depend only on the plan, the configuration, and the
// database schema happen here, so configuration errors (a compressed result
// column, a random-access consumer of a non-random-access format without
// AutoMorph, an unknown base column) surface at prepare time, before any
// data is touched.

// physOp runs one bound plan operator: it reads the already-complete outputs
// of its inputs from the execution state and returns its own output columns.
// Implementations only read bound data and the runtime, so one physOp can
// run on any goroutine and concurrently across executions of the same
// prepared plan.
type physOp func(es *execState, rt ops.Runtime) ([]*columns.Column, error)

// boundNode pairs a plan node with its compiled physical operator. Every
// operator participates in morsel/range parallelism (since the grouping and
// sorted-set operators gained parallel drivers there are no capped,
// inherently sequential nodes left), so each node leases the full per-query
// share of the engine budget while it runs.
type boundNode struct {
	n   *Node
	run physOp
}

// execState is the mutable state of one plan execution: the per-node output
// slots, the execution's stats collector (nil when detached), its memory
// reservation (nil-safe; tracking-only without a governor), and the snapshot
// pinning the writable tables' delta states (nil for a read-only engine —
// scans then hand out the prepare-bound columns). The scheduler publishes a
// node's outputs before any dependent is popped, which establishes the
// happens-before edge for readers.
type execState struct {
	outs [][]*columns.Column
	coll *metrics.Collector
	mres *ops.MemReservation
	snap *Snapshot
}

// in resolves a bound input reference against the execution state.
func (es *execState) in(ref ColRef) *columns.Column { return es.outs[ref.node.id][ref.out] }

// compiler carries the immutable context of one Prepare call.
type compiler struct {
	p     *Plan
	db    *DB
	opt   *options
	sinks map[string]bool
}

// outDesc resolves the format a node output materializes in, honouring the
// result-column rule (sinks stay uncompressed) and the random-access
// restriction (§4.2).
func (c *compiler) outDesc(name string) (columns.FormatDesc, error) {
	if c.sinks[name] {
		if d, ok := c.opt.inter[name]; ok && d.Kind != columns.Uncompressed {
			return columns.FormatDesc{}, fmt.Errorf("core: result column %q must stay uncompressed, configured %v", name, d)
		}
		return columns.UncomprDesc, nil
	}
	d, ok := c.opt.inter[name]
	if !ok {
		d = columns.UncomprDesc
	}
	if c.p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) && !c.opt.autoMorph {
		return columns.FormatDesc{}, fmt.Errorf("core: column %q needs random access but is configured %v (enable AutoMorph or choose uncompressed/static BP)", name, d)
	}
	return d, nil
}

// inputDesc resolves the format the referenced column materializes in: the
// stored format for base columns, the configured format for intermediates,
// uncompressed for result columns.
func (c *compiler) inputDesc(ref ColRef) (columns.FormatDesc, error) {
	if ref.node.op == OpScan {
		col, err := c.db.Column(ref.node.table, ref.node.column)
		if err != nil {
			return columns.FormatDesc{}, err
		}
		return col.Desc(), nil
	}
	if c.sinks[ref.Name()] {
		return columns.UncomprDesc, nil
	}
	if d, ok := c.opt.inter[ref.Name()]; ok {
		return d, nil
	}
	return columns.UncomprDesc, nil
}

// randomInput binds a project data input: if the column's bound format lacks
// random access, an on-the-fly morph to static BP is compiled in (AutoMorph)
// or the preparation fails (strict consistency, §3.3).
//
// A scanned base column gets the runtime-checked binding instead of a
// prepare-time one: on a writable table the stored format can drift across a
// remorph swap (the cost model re-picks it) and the merged main+delta view
// may gain or lose random access relative to the format seen at prepare —
// the closure re-checks the snapshot-resolved column and morphs only when
// actually needed. The strict-consistency rule still applies to the format
// known at prepare time.
func (c *compiler) randomInput(ref ColRef) (func(es *execState) (*columns.Column, error), error) {
	d, err := c.inputDesc(ref)
	if err != nil {
		return nil, err
	}
	if ref.node.op == OpScan {
		if !formats.HasRandomAccess(d.Kind) && !c.opt.autoMorph {
			return nil, fmt.Errorf("core: column %q needs random access but is %v (enable AutoMorph or choose uncompressed/static BP)", ref.Name(), d)
		}
		return func(es *execState) (*columns.Column, error) {
			col := es.in(ref)
			if formats.HasRandomAccess(col.Desc().Kind) {
				return col, nil
			}
			return morph.Morph(col, columns.StaticBPDesc(0))
		}, nil
	}
	if formats.HasRandomAccess(d.Kind) {
		return func(es *execState) (*columns.Column, error) { return es.in(ref), nil }, nil
	}
	if !c.opt.autoMorph {
		return nil, fmt.Errorf("core: column %q needs random access but is %v (enable AutoMorph or choose uncompressed/static BP)", ref.Name(), d)
	}
	return func(es *execState) (*columns.Column, error) {
		return morph.Morph(es.in(ref), columns.StaticBPDesc(0))
	}, nil
}

// compile binds one plan node into its physical operator.
func (c *compiler) compile(n *Node) (boundNode, error) {
	style, specialized := c.opt.style, c.opt.specialized
	one := func(col *columns.Column, err error) ([]*columns.Column, error) {
		if err != nil {
			return nil, err
		}
		return []*columns.Column{col}, nil
	}
	switch n.op {
	case OpScan:
		col, err := c.db.Column(n.table, n.column)
		if err != nil {
			return boundNode{}, err
		}
		table, column := n.table, n.column
		return boundNode{n: n, run: func(es *execState, _ ops.Runtime) ([]*columns.Column, error) {
			// A writable table is read at the execution's pinned snapshot:
			// the merged main+delta view of that epoch. Read-only tables (and
			// read-only engines, where the snapshot is nil) hand out the
			// prepare-bound column unchanged.
			sc, err := es.snap.columnOr(col, table, column)
			if err != nil {
				return nil, err
			}
			return []*columns.Column{sc}, nil
		}}, nil
	case OpSelect:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		in, cmp, val := n.inputs[0], n.cmp, n.val
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.SelectAuto(es.in(in), cmp, val, d, style, specialized))
		}}, nil
	case OpBetween:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		in, lo, hi := n.inputs[0], n.val, n.val2
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.SelectBetweenAuto(es.in(in), lo, hi, d, style, specialized))
		}}, nil
	case OpProject:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		data, err := c.randomInput(n.inputs[0])
		if err != nil {
			return boundNode{}, err
		}
		pos := n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			dcol, err := data(es)
			if err != nil {
				return nil, err
			}
			return one(rt.Project(dcol, es.in(pos), d, style))
		}}, nil
	case OpIntersect:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		x, y := n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.Intersect(es.in(x), es.in(y), d))
		}}, nil
	case OpMerge:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		x, y := n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.Merge(es.in(x), es.in(y), d))
		}}, nil
	case OpSemiJoin:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		probe, build := n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.SemiJoin(es.in(probe), es.in(build), d, style))
		}}, nil
	case OpJoinN1:
		dp, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		db2, err := c.outDesc(n.outNames[1])
		if err != nil {
			return boundNode{}, err
		}
		probe, build := n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			cp, cb, err := rt.JoinN1(es.in(probe), es.in(build), dp, db2, style)
			if err != nil {
				return nil, err
			}
			return []*columns.Column{cp, cb}, nil
		}}, nil
	case OpGroupFirst:
		dg, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		de, err := c.outDesc(n.outNames[1])
		if err != nil {
			return boundNode{}, err
		}
		keys := n.inputs[0]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			cg, ce, err := rt.GroupFirst(es.in(keys), dg, de, style)
			if err != nil {
				return nil, err
			}
			return []*columns.Column{cg, ce}, nil
		}}, nil
	case OpGroupNext:
		dg, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		de, err := c.outDesc(n.outNames[1])
		if err != nil {
			return boundNode{}, err
		}
		prev, keys := n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			cg, ce, err := rt.GroupNext(es.in(prev), es.in(keys), dg, de, style)
			if err != nil {
				return nil, err
			}
			return []*columns.Column{cg, ce}, nil
		}}, nil
	case OpSumWhole:
		in := n.inputs[0]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			_, col, err := rt.SumAuto(es.in(in), style, specialized)
			return one(col, err)
		}}, nil
	case OpSumGrouped:
		gids, extents, vals := n.inputs[0], n.inputs[1], n.inputs[2]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			nGroups := es.in(extents).N()
			return one(rt.SumGrouped(es.in(gids), es.in(vals), nGroups, style))
		}}, nil
	case OpCalc:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		op, x, y := n.calc, n.inputs[0], n.inputs[1]
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			return one(rt.CalcBinary(op, es.in(x), es.in(y), d, style))
		}}, nil
	case OpSelectStr:
		d, err := c.outDesc(n.outNames[0])
		if err != nil {
			return boundNode{}, err
		}
		in := n.inputs[0]
		if in.node.op != OpScan {
			return boundNode{}, fmt.Errorf("core: string select %q: input %q is not a base-column scan", n.outNames[0], in.Name())
		}
		dd := c.db.Dict(in.node.table, in.node.column)
		if dd == nil {
			return boundNode{}, fmt.Errorf("core: string select %q: %s.%s is not a dictionary-encoded string column",
				n.outNames[0], in.node.table, in.node.column)
		}
		table, column := in.node.table, in.node.column
		kind, sval, svals := n.strKind, n.strVal, n.strVals
		// The predicate is translated to ID space now, against the dictionary
		// snapshot at prepare time; executions whose pinned snapshot carries a
		// different dictionary (new strings appended, or a sorted rebuild
		// renumbered the IDs) re-translate against theirs — a few map lookups,
		// so a prepared plan stays valid across ingest and remorph.
		prepSnap := dd.Snap()
		prep := translateStrPred(prepSnap, kind, sval, svals)
		return boundNode{n: n, run: func(es *execState, rt ops.Runtime) ([]*columns.Column, error) {
			pred := prep
			if ds := es.snap.Dict(table, column); ds != nil && (ds.Gen() != prepSnap.Gen() || ds.Len() != prepSnap.Len()) {
				pred = translateStrPred(ds, kind, sval, svals)
			}
			switch pred.mode {
			case strPredEq:
				return one(rt.SelectAuto(es.in(in), bitutil.CmpEq, pred.id, d, style, specialized))
			case strPredRange:
				return one(rt.SelectBetweenAuto(es.in(in), pred.lo, pred.hi, d, style, specialized))
			default:
				return one(rt.SelectIn(es.in(in), pred.set, d, style))
			}
		}}, nil
	default:
		return boundNode{}, fmt.Errorf("core: unknown operator %v", n.op)
	}
}
