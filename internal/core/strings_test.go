package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
)

// TestAddStringColumnValidation checks the typed schema errors of
// DB.AddStringColumn and that a valid call registers both the ID column and
// the dictionary.
func TestAddStringColumnValidation(t *testing.T) {
	db := NewDB()
	if err := db.AddStringColumn("t", "s", []string{"b", "a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddStringColumn("t", "s", []string{"x", "y", "z"}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("duplicate column: err = %v, want ErrInvalidSchema", err)
	}
	if err := db.AddStringColumn("t", "s2", []string{"only-one"}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("ragged column: err = %v, want ErrInvalidSchema", err)
	}
	col, err := db.Column("t", "s")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := formats.Decompress(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 0 {
		t.Fatalf("ID column = %v, want [0 1 0]", ids)
	}
	d := db.Dict("t", "s")
	if d == nil {
		t.Fatal("Dict returned nil for a string column")
	}
	if id, ok := d.Snap().ID("a"); !ok || id != 1 {
		t.Fatalf("dict ID(a) = %d,%v", id, ok)
	}
	if db.Dict("t", "missing") != nil || db.Dict("nope", "s") != nil {
		t.Fatal("Dict resolved an unknown column")
	}
	// Mixed table: numeric column added next to the string column.
	if err := db.AddTable("u", map[string][]uint64{"n": {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if db.Dict("u", "n") != nil {
		t.Fatal("Dict resolved a plain numeric column")
	}
	if err := db.AddStringColumn("u", "s", []string{"p", "q"}); err != nil {
		t.Fatal(err)
	}
}

// stringSelectPlan selects rows of t where column s equals val and projects
// column v.
func stringSelectPlan(t *testing.T, val string) *Plan {
	t.Helper()
	b := NewBuilder()
	s := b.Scan("t", "s")
	v := b.Scan("t", "v")
	pos := b.SelectStrEq("pos", s, val)
	b.Result(b.Project("vals", v, pos))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStringSelectEndToEnd drives a string-equality predicate through the
// compressed parallel pipeline: prepare once, then keep executing across
// appends of new strings and a remorph that renumbers the dictionary into
// sorted order — every execution must match a plain reference model.
func TestStringSelectEndToEnd(t *testing.T) {
	names := []string{"cherry", "apple", "banana", "apple", "date", "cherry", "apple"}
	vals := []uint64{10, 11, 12, 13, 14, 15, 16}
	db := NewDB()
	if err := db.AddStringColumn("t", "s", names); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable("t", map[string][]uint64{"v": vals}); !errors.Is(err, qerr.ErrInvalidSchema) {
		// AddTable refuses an existing table; add the column directly.
		t.Fatalf("expected duplicate-table error, got %v", err)
	}
	db.Tables["t"].Cols["v"] = columns.FromValues(vals)

	e := NewEngine(db, WithParallelism(4))
	defer e.Close(context.Background())
	ctx := context.Background()
	pr, err := e.Prepare(stringSelectPlan(t, "apple"), WithUniformFormat(columns.DynBPDesc), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}

	model := func(want string) []uint64 {
		var out []uint64
		for i, n := range names {
			if n == want {
				out = append(out, vals[i])
			}
		}
		return out
	}
	check := func(stage string) {
		t.Helper()
		res, err := pr.Execute(ctx)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		got := resultValues(t, res, "vals")
		want := model("apple")
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d (%v vs %v)", stage, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %d, want %d", stage, i, got[i], want[i])
			}
		}
	}
	check("initial")

	// Append rows with both known and fresh strings; the prepared plan must
	// re-translate because the dictionary grew.
	if err := e.AppendStrings(ctx, "t",
		map[string][]uint64{"v": {17, 18, 19}},
		map[string][]string{"s": {"apple", "elderberry", "apple"}}); err != nil {
		t.Fatal(err)
	}
	names = append(names, "apple", "elderberry", "apple")
	vals = append(vals, 17, 18, 19)
	check("after append")

	// Remorph renumbers the dictionary into sorted order; the prepared plan
	// must re-translate because the generation changed.
	if err := e.Remorph(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	ds := snap.Dict("t", "s")
	if ds == nil {
		t.Fatal("Snapshot.Dict returned nil after remorph")
	}
	if !ds.Sorted() {
		t.Fatal("remorph did not sort the dictionary")
	}
	if id, ok := ds.ID("apple"); !ok || id != 0 {
		t.Fatalf("sorted ID(apple) = %d,%v, want 0", id, ok)
	}
	check("after sorted remorph")

	// Appends after the renumbering still line up.
	if err := e.AppendStrings(ctx, "t",
		map[string][]uint64{"v": {20}},
		map[string][]string{"s": {"apple"}}); err != nil {
		t.Fatal(err)
	}
	names = append(names, "apple")
	vals = append(vals, 20)
	check("after post-remorph append")

	// A predicate string the dictionary does not hold selects nothing.
	pr2, err := e.Prepare(stringSelectPlan(t, "zucchini"), WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr2.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultValues(t, res, "vals"); len(got) != 0 {
		t.Fatalf("absent string matched %d rows", len(got))
	}
}

// TestStringSelectInAndPrefix checks the IN and prefix predicate builders
// end to end, on both unsorted (first-occurrence) and sorted (post-remorph)
// dictionaries.
func TestStringSelectInAndPrefix(t *testing.T) {
	names := []string{"cherry", "apple", "apricot", "banana", "avocado", "cherry"}
	vals := []uint64{1, 2, 3, 4, 5, 6}
	mk := func() *DB {
		db := NewDB()
		if err := db.AddStringColumn("t", "s", names); err != nil {
			t.Fatal(err)
		}
		db.Tables["t"].Cols["v"] = columns.FromValues(vals)
		return db
	}
	build := func(f func(b *Builder, s ColRef) ColRef) *Plan {
		b := NewBuilder()
		s := b.Scan("t", "s")
		v := b.Scan("t", "v")
		b.Result(b.Project("vals", v, f(b, s)))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plans := map[string]*Plan{
		"in": build(func(b *Builder, s ColRef) ColRef {
			return b.SelectStrIn("pos", s, "banana", "cherry", "durian", "banana")
		}),
		"prefix": build(func(b *Builder, s ColRef) ColRef {
			return b.SelectStrPrefix("pos", s, "a")
		}),
		"prefix-miss": build(func(b *Builder, s ColRef) ColRef {
			return b.SelectStrPrefix("pos", s, "zz")
		}),
	}
	want := map[string][]uint64{
		"in":          {1, 4, 6},
		"prefix":      {2, 3, 5},
		"prefix-miss": nil,
	}
	for _, remorph := range []bool{false, true} {
		e := NewEngine(mk(), WithParallelism(2))
		ctx := context.Background()
		if remorph {
			if err := e.Remorph(ctx, "t"); err != nil {
				t.Fatal(err)
			}
		}
		for name, p := range plans {
			pr, err := e.Prepare(p, WithAutoMorph(true))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			res, err := pr.Execute(ctx)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := resultValues(t, res, "vals")
			if len(got) != len(want[name]) {
				t.Fatalf("sorted=%v %s: rows = %v, want %v", remorph, name, got, want[name])
			}
			for i := range want[name] {
				if got[i] != want[name][i] {
					t.Fatalf("sorted=%v %s: rows = %v, want %v", remorph, name, got, want[name])
				}
			}
		}
		if err := e.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStringSelectPrepareErrors checks the prepare-time rejections: the
// input must be a base-column scan of a dictionary-encoded column.
func TestStringSelectPrepareErrors(t *testing.T) {
	db := NewDB()
	if err := db.AddStringColumn("t", "s", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	db.Tables["t"].Cols["v"] = columns.FromValues([]uint64{1, 2})
	e := NewEngine(db, WithParallelism(1))
	defer e.Close(context.Background())

	// Non-dictionary column.
	b := NewBuilder()
	v := b.Scan("t", "v")
	b.Result(b.SelectStrEq("pos", v, "a"))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(p); err == nil {
		t.Fatal("string select on a numeric column prepared")
	}

	// Non-scan input.
	b = NewBuilder()
	s := b.Scan("t", "s")
	pos := b.SelectStrEq("p1", s, "a")
	b.Result(b.SelectStrEq("p2", pos, "b"))
	if p, err = b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(p); err == nil {
		t.Fatal("string select on a derived column prepared")
	}
}

// TestAppendStringsValidation checks the typed errors and close semantics of
// Engine.AppendStrings.
func TestAppendStringsValidation(t *testing.T) {
	db := NewDB()
	if err := db.AddStringColumn("t", "s", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	db.Tables["t"].Cols["v"] = columns.FromValues([]uint64{1})
	e := NewEngine(db, WithParallelism(1))
	ctx := context.Background()

	// String data for a column with no dictionary.
	if err := e.AppendStrings(ctx, "t", nil, map[string][]string{"v": {"x"}}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("non-dict string column: err = %v, want ErrInvalidSchema", err)
	}
	// Ragged batch.
	if err := e.AppendStrings(ctx, "t",
		map[string][]uint64{"v": {1, 2}},
		map[string][]string{"s": {"x"}}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("ragged batch: err = %v, want ErrInvalidSchema", err)
	}
	// Unknown table.
	if err := e.AppendStrings(ctx, "nope", nil, map[string][]string{"s": {"x"}}); err == nil {
		t.Fatal("append to unknown table must fail")
	}
	// Empty batch is a no-op.
	if err := e.AppendStrings(ctx, "t", map[string][]uint64{"v": {}}, map[string][]string{"s": {}}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if st := e.Stats(); st.AppendedRows != 0 {
		t.Fatalf("empty batch appended %d rows", st.AppendedRows)
	}
	// Valid append, then close semantics.
	if err := e.AppendStrings(ctx, "t", map[string][]uint64{"v": {2}}, map[string][]string{"s": {"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendStrings(ctx, "t", map[string][]uint64{"v": {3}}, map[string][]string{"s": {"c"}}); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("append after close: err = %v, want ErrEngineClosed", err)
	}
}

// TestSnapshotDictCoherence pins a snapshot and checks its dictionary can
// translate every ID its rows carry, both before and after concurrent
// appends and a renumbering remorph.
func TestSnapshotDictCoherence(t *testing.T) {
	db := NewDB()
	if err := db.AddStringColumn("t", "s", []string{"m", "k", "z"}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, WithParallelism(2))
	defer e.Close(context.Background())
	ctx := context.Background()

	// A snapshot pinned before any write carries no dictionary view (the
	// read-only fast path); Dict is nil-safe there.
	if e.Snapshot().Dict("t", "s") != nil {
		t.Fatal("read-only snapshot carries a dict snap")
	}
	// First write makes the table writable; pin a snapshot, then mutate.
	if err := e.AppendStrings(ctx, "t", nil, map[string][]string{"s": {"q", "m"}}); err != nil {
		t.Fatal(err)
	}
	pinned := e.Snapshot()
	if err := e.Remorph(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still resolves its own (pre-rebuild) IDs.
	ds := pinned.Dict("t", "s")
	if ds == nil {
		t.Fatal("pinned Snapshot.Dict is nil")
	}
	for want, id := range map[string]uint64{"m": 0, "k": 1, "z": 2, "q": 3} {
		if got, ok := ds.String(id); !ok || got != want {
			t.Fatalf("pinned String(%d) = %q,%v want %q", id, got, ok, want)
		}
	}
	// A fresh snapshot sees the sorted dictionary with the appended string.
	cur := e.Snapshot().Dict("t", "s")
	if cur == nil || cur.Len() != 4 {
		t.Fatalf("current dict snap = %+v", cur)
	}
	if id, ok := cur.ID("q"); !ok || id != 2 { // sorted: k m q z
		t.Fatalf("sorted ID(q) = %d,%v, want 2", id, ok)
	}
	if e.Snapshot().Dict("t", "nope") != nil || e.Snapshot().Dict("nope", "s") != nil {
		t.Fatal("Snapshot.Dict resolved an unknown column")
	}

	// translateStrPred unit coverage for the collapse rules on this dict.
	if p := translateStrPred(cur, StrIn, "", []string{"k", "m"}); p.mode != strPredRange || p.lo != 0 || p.hi != 1 {
		t.Fatalf("contiguous IN = %+v", p)
	}
	if p := translateStrPred(cur, StrIn, "", []string{"k", "z"}); p.mode != strPredSet || len(p.set) != 2 {
		t.Fatalf("sparse IN = %+v", p)
	}
	if p := translateStrPred(cur, StrIn, "", []string{"nope"}); p.mode != strPredSet || len(p.set) != 0 {
		t.Fatalf("empty IN = %+v", p)
	}
	if p := translateStrPred(cur, StrEq, "q", nil); p.mode != strPredEq || p.id != 2 {
		t.Fatalf("eq = %+v", p)
	}
	if p := translateStrPred(cur, StrPrefix, "", nil); p.mode != strPredRange || p.lo != 0 || p.hi != 3 {
		t.Fatalf("empty prefix = %+v", p)
	}
}

// TestStringPlanIntrospection checks Nodes() surfaces the string predicate.
func TestStringPlanIntrospection(t *testing.T) {
	b := NewBuilder()
	s := b.Scan("t", "s")
	b.Result(b.SelectStrIn("pos", s, "x", "y"))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, n := range p.Nodes() {
		if n.Op == OpSelectStr {
			found = true
			if n.StrKind != StrIn || len(n.StrVals) != 2 {
				t.Fatalf("introspected node = %+v", n)
			}
		}
	}
	if !found {
		t.Fatal("no OpSelectStr node introspected")
	}
	if StrEq.String() == "" || StrIn.String() == "" || StrPrefix.String() == "" {
		t.Fatal("StrPredKind.String empty")
	}
	if fmt.Sprint(OpSelectStr) != "select_str" {
		t.Fatalf("OpSelectStr name = %q", fmt.Sprint(OpSelectStr))
	}
}
