package core

import (
	"fmt"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/vector"
)

// Assignment is a complete format combination for one plan: formats for the
// encoded base columns and for every intermediate.
type Assignment struct {
	Base  map[string]columns.FormatDesc
	Inter map[string]columns.FormatDesc
}

// NewAssignment returns an empty (all-uncompressed) assignment.
func NewAssignment() *Assignment {
	return &Assignment{
		Base:  make(map[string]columns.FormatDesc),
		Inter: make(map[string]columns.FormatDesc),
	}
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	c := NewAssignment()
	for k, v := range a.Base {
		c.Base[k] = v
	}
	for k, v := range a.Inter {
		c.Inter[k] = v
	}
	return c
}

// Config converts the assignment into an executor config.
func (a *Assignment) Config(style vector.Style, specialized bool) *Config {
	return &Config{Inter: a.Inter, Style: style, Specialized: specialized}
}

// Candidates returns the admissible formats for the named plan column:
// the paper's five formats, or only the random-access formats for columns
// consumed by project (§4.2, footnote 3).
func Candidates(p *Plan, name string) []columns.FormatDesc {
	if p.RandomAccessed(name) {
		return formats.RandomAccessDescs()
	}
	return formats.PaperDescs()
}

// materializedColumns runs the plan once fully uncompressed, returning the
// uncompressed values of every base column and intermediate by name.
func materializedColumns(p *Plan, db *DB) (map[string][]uint64, error) {
	cfg := UncompressedConfig(vector.Scalar)
	cfg.Keep = true
	res, err := Execute(p, db, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]uint64)
	for name, col := range res.Inter {
		vals, ok := col.Values()
		if !ok {
			vals, err = formats.Decompress(col)
			if err != nil {
				return nil, err
			}
		}
		out[name] = vals
	}
	return out, nil
}

// FootprintSearch determines the best and the worst format combination with
// respect to the total memory footprint. Column footprints add up, so each
// column is optimized independently by exhaustively trying every candidate
// format — exactly the search the paper uses for Fig. 7's footprint series.
func FootprintSearch(p *Plan, db *DB) (best, worst *Assignment, err error) {
	cols, err := materializedColumns(p, db)
	if err != nil {
		return nil, nil, err
	}
	best, worst = NewAssignment(), NewAssignment()
	baseSet := make(map[string]bool)
	for _, name := range p.BaseColumns() {
		baseSet[name] = true
	}
	assign := func(a *Assignment, name string, d columns.FormatDesc) {
		if baseSet[name] {
			a.Base[name] = d
		} else {
			a.Inter[name] = d
		}
	}
	names := append(p.BaseColumns(), p.IntermediateNames()...)
	for _, name := range names {
		vals, ok := cols[name]
		if !ok {
			return nil, nil, fmt.Errorf("core: no materialization for column %q", name)
		}
		var bestDesc, worstDesc columns.FormatDesc
		bestSize, worstSize := -1, -1
		for _, d := range Candidates(p, name) {
			c, err := formats.Compress(vals, d)
			if err != nil {
				return nil, nil, err
			}
			size := c.PhysicalBytes()
			if bestSize < 0 || size < bestSize {
				bestSize, bestDesc = size, d
			}
			if worstSize < 0 || size > worstSize {
				worstSize, worstDesc = size, d
			}
		}
		assign(best, name, bestDesc)
		assign(worst, name, worstDesc)
	}
	return best, worst, nil
}

// encCache pre-encodes base columns in every candidate format so the greedy
// runtime search can swap base formats without repeated morphing.
type encCache struct {
	db   *DB
	cols map[string]map[columns.FormatDesc]*columns.Column
}

func newEncCache(db *DB) *encCache {
	return &encCache{db: db, cols: make(map[string]map[columns.FormatDesc]*columns.Column)}
}

// dbFor assembles a database view with the given base formats.
func (e *encCache) dbFor(base map[string]columns.FormatDesc) (*DB, error) {
	out := NewDB()
	for tn, t := range e.db.Tables {
		nt := &Table{Name: tn, Cols: make(map[string]*columns.Column, len(t.Cols))}
		for cn, col := range t.Cols {
			name := tn + "." + cn
			desc, ok := base[name]
			if !ok || desc.Kind == columns.Uncompressed {
				nt.Cols[cn] = col
				continue
			}
			byDesc, ok := e.cols[name]
			if !ok {
				byDesc = make(map[columns.FormatDesc]*columns.Column)
				e.cols[name] = byDesc
			}
			enc, ok := byDesc[desc]
			if !ok {
				vals, vok := col.Values()
				if !vok {
					var err error
					vals, err = formats.Decompress(col)
					if err != nil {
						return nil, err
					}
				}
				var err error
				enc, err = formats.Compress(vals, desc)
				if err != nil {
					return nil, err
				}
				byDesc[desc] = enc
			}
			nt.Cols[cn] = enc
		}
		out.Tables[tn] = nt
	}
	return out, nil
}

// measureRuntime executes the plan under the assignment, returning the
// minimum runtime over `repeats` runs (minimum denoises scheduler jitter).
func measureRuntime(p *Plan, cache *encCache, a *Assignment, style vector.Style, specialized bool, repeats int) (time.Duration, error) {
	dbv, err := cache.dbFor(a.Base)
	if err != nil {
		return 0, err
	}
	bestT := time.Duration(0)
	for i := 0; i < repeats; i++ {
		cfg := a.Config(style, specialized)
		// Runtime-driven format choices compare sequential operator times;
		// concurrent execution would fold scheduler contention into them.
		cfg.Parallelism = 1
		res, err := Execute(p, dbv, cfg)
		if err != nil {
			return 0, err
		}
		if i == 0 || res.Meas.Runtime < bestT {
			bestT = res.Meas.Runtime
		}
	}
	return bestT, nil
}

// RuntimeGreedySearch finds a good (or, with maximize, bad) format
// combination with respect to the query runtime using the paper's greedy
// strategy: starting at the base data, fix one column's format at a time by
// trying every candidate, measuring the full query, and keeping the best.
func RuntimeGreedySearch(p *Plan, db *DB, style vector.Style, specialized, maximize bool, repeats int) (*Assignment, error) {
	if repeats < 1 {
		repeats = 1
	}
	cache := newEncCache(db)
	a := NewAssignment()
	baseSet := make(map[string]bool)
	for _, name := range p.BaseColumns() {
		baseSet[name] = true
	}
	names := append(p.BaseColumns(), p.IntermediateNames()...)
	for _, name := range names {
		var bestDesc columns.FormatDesc
		var bestT time.Duration
		first := true
		for _, d := range Candidates(p, name) {
			if baseSet[name] {
				a.Base[name] = d
			} else {
				a.Inter[name] = d
			}
			t, err := measureRuntime(p, cache, a, style, specialized, repeats)
			if err != nil {
				return nil, err
			}
			better := t < bestT
			if maximize {
				better = t > bestT
			}
			if first || better {
				bestT, bestDesc, first = t, d, false
			}
		}
		if baseSet[name] {
			a.Base[name] = bestDesc
		} else {
			a.Inter[name] = bestDesc
		}
	}
	return a, nil
}
