// Package core implements the holistic compression-enabled processing model
// that is the paper's primary contribution (§3): operator-at-a-time query
// execution plans in which every base column and every materialized
// intermediate carries its own lightweight compression format, chosen
// independently per column (design principles DP1–DP4).
//
// A Plan is a DAG of MonetDB-style operators over named columns, assembled
// with a Builder. An Engine owns the base data (DB), an engine-wide worker
// budget shared by every concurrently executing query, and an optional
// admission gate. Engine.Prepare compiles a plan once — per-column formats
// resolved explicitly, uniformly, or cost-based; morph insertions and
// kernel dispatch bound into one physical operator per node (physop.go) —
// and Prepared.Execute runs it under a context.Context, sequentially or on
// the concurrent DAG scheduler (sched.go), accounting the memory footprint
// and runtime that the paper's experiments report. Results are
// byte-identical at every parallelism level and under any mix of
// concurrent queries.
//
// The pre-engine entry points remain as deprecated wrappers: Execute runs
// a plan under a legacy Config by preparing it on a throwaway engine.
package core

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/ops"
)

// OpKind identifies a physical query operator of the plan DAG.
type OpKind uint8

const (
	// OpScan reads a base column.
	OpScan OpKind = iota
	// OpSelect emits positions matching a comparison predicate.
	OpSelect
	// OpBetween emits positions matching a range predicate.
	OpBetween
	// OpProject gathers data values at a list of positions.
	OpProject
	// OpIntersect intersects two sorted position lists.
	OpIntersect
	// OpMerge unions two sorted position lists.
	OpMerge
	// OpSemiJoin emits probe positions whose key exists on the build side.
	OpSemiJoin
	// OpJoinN1 is an N:1 equi-join emitting probe and build positions.
	OpJoinN1
	// OpGroupFirst groups by one key column (gids + extents).
	OpGroupFirst
	// OpGroupNext refines a grouping with another key column.
	OpGroupNext
	// OpSumWhole sums a whole column into a one-element column.
	OpSumWhole
	// OpSumGrouped sums a value column per group id.
	OpSumGrouped
	// OpCalc combines two columns element-wise.
	OpCalc
	// OpSelectStr emits positions matching a string predicate over a
	// dictionary-encoded column; the predicate is translated to ID space at
	// prepare time and executed by the integer select kernels.
	OpSelectStr
)

var opNames = map[OpKind]string{
	OpScan: "scan", OpSelect: "select", OpBetween: "between",
	OpProject: "project", OpIntersect: "intersect", OpMerge: "merge",
	OpSemiJoin: "semijoin", OpJoinN1: "join", OpGroupFirst: "group",
	OpGroupNext: "group_next", OpSumWhole: "sum", OpSumGrouped: "sum_grouped",
	OpCalc: "calc", OpSelectStr: "select_str",
}

// StrPredKind identifies the string-predicate flavor of an OpSelectStr node.
type StrPredKind uint8

const (
	// StrEq matches rows whose string equals the predicate value.
	StrEq StrPredKind = iota
	// StrIn matches rows whose string is one of the predicate values.
	StrIn
	// StrPrefix matches rows whose string starts with the predicate value.
	StrPrefix
)

var strPredNames = map[StrPredKind]string{StrEq: "eq", StrIn: "in", StrPrefix: "prefix"}

func (k StrPredKind) String() string {
	if s, ok := strPredNames[k]; ok {
		return s
	}
	return fmt.Sprintf("strpred(%d)", uint8(k))
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Node is one operator of a plan DAG.
type Node struct {
	id       int
	op       OpKind
	cmp      bitutil.CmpKind
	calc     ops.CalcKind
	val      uint64
	val2     uint64
	table    string
	column   string
	strKind  StrPredKind
	strVal   string
	strVals  []string
	inputs   []ColRef
	outNames []string // one per output
}

// ColRef identifies one output column of a node.
type ColRef struct {
	node *Node
	out  int
}

// Name returns the unique column name of the referenced output, which is the
// key used by Config to assign formats.
func (r ColRef) Name() string { return r.node.outNames[r.out] }

// valid reports whether the reference points at an actual node output.
func (r ColRef) valid() bool {
	return r.node != nil && r.out >= 0 && r.out < len(r.node.outNames)
}

// Plan is an executable operator DAG. Nodes are stored in topological order
// (the builder only references already-built nodes).
type Plan struct {
	nodes  []*Node
	sinks  []ColRef
	byName map[string]ColRef
	// randomAccessed records column names consumed via random access
	// (project data inputs); their formats are restricted per §4.2.
	randomAccessed map[string]bool
}

// Builder incrementally assembles a plan.
type Builder struct {
	p   *Plan
	err error
}

// NewBuilder returns an empty plan builder.
func NewBuilder() *Builder {
	return &Builder{p: &Plan{
		byName:         make(map[string]ColRef),
		randomAccessed: make(map[string]bool),
	}}
}

func (b *Builder) fail(format string, args ...any) ColRef {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return ColRef{}
}

func (b *Builder) add(n *Node, names ...string) []ColRef {
	if b.err != nil {
		return make([]ColRef, len(names))
	}
	for _, nm := range names {
		if nm == "" {
			b.fail("core: empty column name")
			return make([]ColRef, len(names))
		}
		if _, dup := b.p.byName[nm]; dup {
			b.fail("core: duplicate column name %q", nm)
			return make([]ColRef, len(names))
		}
	}
	for _, in := range n.inputs {
		if !in.valid() {
			b.fail("core: invalid input reference for %q", names[0])
			return make([]ColRef, len(names))
		}
	}
	n.id = len(b.p.nodes)
	n.outNames = names
	b.p.nodes = append(b.p.nodes, n)
	refs := make([]ColRef, len(names))
	for i := range names {
		refs[i] = ColRef{node: n, out: i}
		b.p.byName[names[i]] = refs[i]
	}
	return refs
}

// Scan reads base column table.column; its name is "table.column".
func (b *Builder) Scan(table, column string) ColRef {
	name := table + "." + column
	if ref, ok := b.p.byName[name]; ok {
		return ref // reuse: scanning the same base column twice is one scan
	}
	return b.add(&Node{op: OpScan, table: table, column: column}, name)[0]
}

// Select emits the positions of in matching `element cmp val`.
func (b *Builder) Select(name string, in ColRef, cmp bitutil.CmpKind, val uint64) ColRef {
	return b.add(&Node{op: OpSelect, cmp: cmp, val: val, inputs: []ColRef{in}}, name)[0]
}

// Between emits the positions of in with lo <= element <= hi.
func (b *Builder) Between(name string, in ColRef, lo, hi uint64) ColRef {
	return b.add(&Node{op: OpBetween, val: lo, val2: hi, inputs: []ColRef{in}}, name)[0]
}

// SelectStrEq emits the positions of in — the scan of a dictionary-encoded
// string column — whose string equals val. The predicate is translated to
// dictionary-ID space when the plan is prepared and executed by the integer
// select kernels; preparing fails if in is not the scan of a string column.
func (b *Builder) SelectStrEq(name string, in ColRef, val string) ColRef {
	return b.add(&Node{op: OpSelectStr, strKind: StrEq, strVal: val, inputs: []ColRef{in}}, name)[0]
}

// SelectStrIn emits the positions of in whose string is one of vals, under
// the same dictionary-translation contract as SelectStrEq.
func (b *Builder) SelectStrIn(name string, in ColRef, vals ...string) ColRef {
	return b.add(&Node{op: OpSelectStr, strKind: StrIn, strVals: vals, inputs: []ColRef{in}}, name)[0]
}

// SelectStrPrefix emits the positions of in whose string starts with prefix,
// under the same dictionary-translation contract as SelectStrEq. On a
// sorted dictionary (after a remorph sorted-rebuild) the prefix becomes one
// contiguous ID range executed by the range-select kernel.
func (b *Builder) SelectStrPrefix(name string, in ColRef, prefix string) ColRef {
	return b.add(&Node{op: OpSelectStr, strKind: StrPrefix, strVal: prefix, inputs: []ColRef{in}}, name)[0]
}

// Project gathers data values at the given positions. The data column is
// registered as randomly accessed, restricting its format candidates.
func (b *Builder) Project(name string, data, pos ColRef) ColRef {
	if data.valid() {
		b.p.randomAccessed[data.Name()] = true
	}
	return b.add(&Node{op: OpProject, inputs: []ColRef{data, pos}}, name)[0]
}

// Intersect intersects two sorted position lists.
func (b *Builder) Intersect(name string, x, y ColRef) ColRef {
	return b.add(&Node{op: OpIntersect, inputs: []ColRef{x, y}}, name)[0]
}

// Merge unions two sorted position lists.
func (b *Builder) Merge(name string, x, y ColRef) ColRef {
	return b.add(&Node{op: OpMerge, inputs: []ColRef{x, y}}, name)[0]
}

// SemiJoin emits probe positions whose key occurs in build.
func (b *Builder) SemiJoin(name string, probe, build ColRef) ColRef {
	return b.add(&Node{op: OpSemiJoin, inputs: []ColRef{probe, build}}, name)[0]
}

// JoinN1 equi-joins probe keys against unique build keys, producing the
// matching probe positions (name/probe) and build positions (name/build).
func (b *Builder) JoinN1(name string, probe, build ColRef) (probePos, buildPos ColRef) {
	refs := b.add(&Node{op: OpJoinN1, inputs: []ColRef{probe, build}},
		name+"/probe", name+"/build")
	return refs[0], refs[1]
}

// GroupFirst groups by a key column, producing per-row group ids
// (name/gids) and per-group representative positions (name/extents).
func (b *Builder) GroupFirst(name string, keys ColRef) (gids, extents ColRef) {
	refs := b.add(&Node{op: OpGroupFirst, inputs: []ColRef{keys}},
		name+"/gids", name+"/extents")
	return refs[0], refs[1]
}

// GroupNext refines an existing grouping with an additional key column.
func (b *Builder) GroupNext(name string, prevGids, keys ColRef) (gids, extents ColRef) {
	refs := b.add(&Node{op: OpGroupNext, inputs: []ColRef{prevGids, keys}},
		name+"/gids", name+"/extents")
	return refs[0], refs[1]
}

// SumWhole sums a column into a one-element column.
func (b *Builder) SumWhole(name string, vals ColRef) ColRef {
	return b.add(&Node{op: OpSumWhole, inputs: []ColRef{vals}}, name)[0]
}

// SumGrouped sums vals per group id; extents supplies the group count.
func (b *Builder) SumGrouped(name string, gids, extents, vals ColRef) ColRef {
	return b.add(&Node{op: OpSumGrouped, inputs: []ColRef{gids, extents, vals}}, name)[0]
}

// Calc combines two columns element-wise.
func (b *Builder) Calc(name string, op ops.CalcKind, x, y ColRef) ColRef {
	return b.add(&Node{op: OpCalc, calc: op, inputs: []ColRef{x, y}}, name)[0]
}

// Result marks ref as a query result column. Result columns are always
// materialized uncompressed (§3.3: clients cannot interpret compressed data).
func (b *Builder) Result(ref ColRef) {
	if b.err != nil {
		return
	}
	if !ref.valid() {
		b.fail("core: invalid result reference")
		return
	}
	b.p.sinks = append(b.p.sinks, ref)
}

// Build finalizes the plan.
func (b *Builder) Build() (*Plan, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.p.sinks) == 0 {
		return nil, fmt.Errorf("core: plan has no result columns")
	}
	return b.p, nil
}

// sinkSet returns the names of all result columns.
func (p *Plan) sinkSet() map[string]bool {
	s := make(map[string]bool, len(p.sinks))
	for _, ref := range p.sinks {
		s[ref.Name()] = true
	}
	return s
}

// BaseColumns returns the distinct "table.column" names scanned by the plan.
func (p *Plan) BaseColumns() []string {
	var out []string
	for _, n := range p.nodes {
		if n.op == OpScan {
			out = append(out, n.outNames[0])
		}
	}
	return out
}

// IntermediateNames returns the names of all configurable intermediates:
// every non-scan output that is not a result column.
func (p *Plan) IntermediateNames() []string {
	sinks := p.sinkSet()
	var out []string
	for _, n := range p.nodes {
		if n.op == OpScan {
			continue
		}
		for _, nm := range n.outNames {
			if !sinks[nm] {
				out = append(out, nm)
			}
		}
	}
	return out
}

// RandomAccessed reports whether the named column is consumed via random
// access (as a project data input).
func (p *Plan) RandomAccessed(name string) bool { return p.randomAccessed[name] }

// NumOperators returns the number of non-scan operators.
func (p *Plan) NumOperators() int {
	k := 0
	for _, n := range p.nodes {
		if n.op != OpScan {
			k++
		}
	}
	return k
}
