package core

import (
	"context"
	"fmt"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/dict"
	"morphstore/internal/formats"
	"morphstore/internal/morph"
	"morphstore/internal/qerr"
	"morphstore/internal/vector"
)

// Table is a named collection of equally long columns.
type Table struct {
	Name string
	Cols map[string]*columns.Column
	// Dicts holds the per-column string dictionaries of the table's
	// dictionary-encoded columns (AddStringColumn): for each entry, Cols of
	// the same name is the uint64 ID column the engine compresses and
	// executes, and the dictionary translates between strings and IDs.
	Dicts map[string]*dict.Dict
}

// DB is the base data a plan executes against.
type DB struct {
	Tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{Tables: make(map[string]*Table)} }

// AddTable registers a table built from value slices (uncompressed). All
// columns must be equally long and the table name must be new; a violation
// returns an error matching qerr.ErrInvalidSchema and registers nothing
// (the old silent overwrite/ragged-accept behavior is gone).
func (db *DB) AddTable(name string, cols map[string][]uint64) error {
	if _, ok := db.Tables[name]; ok {
		return qerr.Tag(fmt.Errorf("core: table %q already registered", name), qerr.ErrInvalidSchema)
	}
	t := &Table{Name: name, Cols: make(map[string]*columns.Column, len(cols))}
	n, first := -1, ""
	for cn, vals := range cols {
		if n < 0 {
			n, first = len(vals), cn
		} else if len(vals) != n {
			return qerr.Tag(
				fmt.Errorf("core: table %q: ragged columns: %q has %d values, %q has %d", name, cn, len(vals), first, n),
				qerr.ErrInvalidSchema)
		}
		t.Cols[cn] = columns.FromValues(vals)
	}
	db.Tables[name] = t
	return nil
}

// AddStringColumn adds a dictionary-encoded string column: values are
// translated through a fresh per-column dictionary (IDs in first-occurrence
// order) and stored as an uncompressed uint64 ID column. If the table does
// not exist it is created with this as its first column; otherwise the
// column name must be new and len(values) must match the table's row count.
// Violations return an error matching qerr.ErrInvalidSchema and change
// nothing.
func (db *DB) AddStringColumn(table, column string, values []string) error {
	t, ok := db.Tables[table]
	if !ok {
		t = &Table{Name: table, Cols: make(map[string]*columns.Column)}
	}
	if _, dup := t.Cols[column]; dup {
		return qerr.Tag(fmt.Errorf("core: table %q already has column %q", table, column), qerr.ErrInvalidSchema)
	}
	for cn, col := range t.Cols {
		if col.N() != len(values) {
			return qerr.Tag(
				fmt.Errorf("core: table %q: ragged columns: %q has %d values, %q has %d", table, column, len(values), cn, col.N()),
				qerr.ErrInvalidSchema)
		}
		break
	}
	d := dict.New()
	ids, err := d.Add(values)
	if err != nil {
		return err
	}
	if ids == nil {
		ids = []uint64{}
	}
	if t.Dicts == nil {
		t.Dicts = make(map[string]*dict.Dict)
	}
	t.Cols[column] = columns.FromValues(ids)
	t.Dicts[column] = d
	db.Tables[table] = t
	return nil
}

// Dict returns the dictionary of a dictionary-encoded string column, or nil
// when the table or column is unknown or the column is a plain uint64
// column.
func (db *DB) Dict(table, column string) *dict.Dict {
	t, ok := db.Tables[table]
	if !ok {
		return nil
	}
	return t.Dicts[column]
}

// Column resolves "table"/"column"; it reports an error for unknown names.
func (db *DB) Column(table, column string) (*columns.Column, error) {
	t, ok := db.Tables[table]
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	c, ok := t.Cols[column]
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q.%q", table, column)
	}
	return c, nil
}

// Encode returns a copy of the database with the listed base columns
// morphed into the requested formats (untouched columns are shared). Base
// data encoding is storage preparation and deliberately not part of any
// query runtime measurement.
func (db *DB) Encode(base map[string]columns.FormatDesc) (*DB, error) {
	out := NewDB()
	for tn, t := range db.Tables {
		nt := &Table{Name: tn, Cols: make(map[string]*columns.Column, len(t.Cols)), Dicts: t.Dicts}
		for cn, col := range t.Cols {
			desc, ok := base[tn+"."+cn]
			if !ok {
				nt.Cols[cn] = col
				continue
			}
			m, err := morph.Morph(col, desc)
			if err != nil {
				return nil, fmt.Errorf("core: encode %s.%s: %w", tn, cn, err)
			}
			nt.Cols[cn] = m
		}
		out.Tables[tn] = nt
	}
	return out, nil
}

// Config assigns a compressed format to every column of a query execution
// plan (DP2: each intermediate chosen independently). Missing entries mean
// uncompressed. Result columns are always uncompressed.
//
// Config is the legacy configuration carrier of the deprecated Execute
// wrapper; the engine API expresses the same choices as functional options
// (WithFormats, WithStyle, WithSpecialized, WithAutoMorph, WithKeep,
// WithParallelism).
type Config struct {
	// Inter maps intermediate column names to formats.
	Inter map[string]columns.FormatDesc
	// Style selects the processing-style specialization of all kernels.
	Style vector.Style
	// Specialized enables the specialized-operator integration degree for
	// formats that have one (§3.3: employ them selectively).
	Specialized bool
	// AutoMorph permits the executor to insert on-the-fly morphs when an
	// operator needs random access to a column whose format does not
	// support it. When false such plans fail (strict consistency, §3.3).
	AutoMorph bool
	// Keep retains all intermediate columns in the result (used by the
	// format-search and cost-model tooling).
	Keep bool
	// Parallelism is the worker-goroutine budget: independent plan
	// operators run concurrently on a dependency-counting scheduler, and
	// the partitionable operator kernels (select, between, project,
	// semijoin probe, N:1 join probe, binary calc, whole-column and grouped
	// sum) run morsel-parallel over block-aligned sections of their input.
	// The budget is divided among the operators running at any moment and
	// re-divided whenever one of them finishes, so a finishing branch's
	// workers immediately flow to the survivors. 0 means GOMAXPROCS; 1
	// reproduces the sequential operator-at-a-time execution exactly.
	// Results are byte-identical at every parallelism level.
	Parallelism int
}

// UncompressedConfig returns a config processing everything uncompressed.
func UncompressedConfig(style vector.Style) *Config {
	return &Config{Inter: map[string]columns.FormatDesc{}, Style: style}
}

// UniformConfig returns a config assigning desc to every intermediate of p
// (respecting the random-access restriction, for which static BP is used).
func UniformConfig(p *Plan, desc columns.FormatDesc, style vector.Style) *Config {
	cfg := &Config{Inter: map[string]columns.FormatDesc{}, Style: style}
	for _, name := range p.IntermediateNames() {
		d := desc
		if p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) {
			d = columns.StaticBPDesc(0)
		}
		cfg.Inter[name] = d
	}
	return cfg
}

// Measure aggregates the physical footprint and runtime of one execution,
// mirroring the paper's two evaluation metrics.
type Measure struct {
	// BaseBytes is the physical size of all distinct base columns scanned.
	BaseBytes int
	// InterBytes is the physical size of all materialized intermediates
	// (including result columns).
	InterBytes int
	// Runtime is the total operator time (base encoding excluded). Under a
	// concurrent execution (parallelism > 1) it is the sum of the
	// individual operator times and can exceed the wall-clock time.
	Runtime time.Duration
	// PerOp records the runtime per operator kind.
	PerOp map[string]time.Duration
	// ColBytes records the physical size per column name.
	ColBytes map[string]int
}

// Footprint is the total memory footprint: base data plus intermediates.
func (m *Measure) Footprint() int { return m.BaseBytes + m.InterBytes }

// Result is the outcome of executing a plan.
type Result struct {
	// Cols holds the result columns by name.
	Cols map[string]*columns.Column
	// Inter holds every materialized column by name when keeping
	// intermediates (Config.Keep / WithKeep).
	Inter map[string]*columns.Column
	// Meas carries the footprint/runtime accounting.
	Meas Measure
}

// Execute runs the plan operator-at-a-time against db under cfg by
// preparing it on a throwaway engine. With cfg.Parallelism <= 1 the nodes
// run sequentially in topological order; otherwise independent nodes run
// concurrently and partitionable kernels run morsel-parallel, producing
// byte-identical columns either way.
//
// Deprecated: Use NewEngine(db, ...), Engine.Prepare, and Prepared.Execute:
// they compile the plan once, accept a context for cancellation, and share
// one worker budget across concurrent queries. Execute remains as a thin
// wrapper for existing call sites.
func Execute(p *Plan, db *DB, cfg *Config) (*Result, error) {
	if cfg == nil {
		cfg = UncompressedConfig(vector.Scalar)
	}
	e := NewEngine(db, WithParallelism(cfg.Parallelism))
	pr, err := e.Prepare(p, WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return pr.Execute(context.Background())
}
