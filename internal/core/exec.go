package core

import (
	"fmt"
	"runtime"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/morph"
	"morphstore/internal/ops"
	"morphstore/internal/vector"
)

// Table is a named collection of equally long columns.
type Table struct {
	Name string
	Cols map[string]*columns.Column
}

// DB is the base data a plan executes against.
type DB struct {
	Tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{Tables: make(map[string]*Table)} }

// AddTable registers a table built from value slices (uncompressed).
func (db *DB) AddTable(name string, cols map[string][]uint64) {
	t := &Table{Name: name, Cols: make(map[string]*columns.Column, len(cols))}
	for cn, vals := range cols {
		t.Cols[cn] = columns.FromValues(vals)
	}
	db.Tables[name] = t
}

// Column resolves "table"/"column"; it reports an error for unknown names.
func (db *DB) Column(table, column string) (*columns.Column, error) {
	t, ok := db.Tables[table]
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	c, ok := t.Cols[column]
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q.%q", table, column)
	}
	return c, nil
}

// Encode returns a copy of the database with the listed base columns
// morphed into the requested formats (untouched columns are shared). Base
// data encoding is storage preparation and deliberately not part of any
// query runtime measurement.
func (db *DB) Encode(base map[string]columns.FormatDesc) (*DB, error) {
	out := NewDB()
	for tn, t := range db.Tables {
		nt := &Table{Name: tn, Cols: make(map[string]*columns.Column, len(t.Cols))}
		for cn, col := range t.Cols {
			desc, ok := base[tn+"."+cn]
			if !ok {
				nt.Cols[cn] = col
				continue
			}
			m, err := morph.Morph(col, desc)
			if err != nil {
				return nil, fmt.Errorf("core: encode %s.%s: %w", tn, cn, err)
			}
			nt.Cols[cn] = m
		}
		out.Tables[tn] = nt
	}
	return out, nil
}

// Config assigns a compressed format to every column of a query execution
// plan (DP2: each intermediate chosen independently). Missing entries mean
// uncompressed. Result columns are always uncompressed.
type Config struct {
	// Inter maps intermediate column names to formats.
	Inter map[string]columns.FormatDesc
	// Style selects the processing-style specialization of all kernels.
	Style vector.Style
	// Specialized enables the specialized-operator integration degree for
	// formats that have one (§3.3: employ them selectively).
	Specialized bool
	// AutoMorph permits the executor to insert on-the-fly morphs when an
	// operator needs random access to a column whose format does not
	// support it. When false such plans fail (strict consistency, §3.3).
	AutoMorph bool
	// Keep retains all intermediate columns in the result (used by the
	// format-search and cost-model tooling).
	Keep bool
	// Parallelism is the executor's worker-goroutine budget: independent
	// plan operators run concurrently on a dependency-counting scheduler,
	// and the partitionable operator kernels (select, between, project,
	// semijoin probe, N:1 join probe, binary calc, whole-column and grouped
	// sum) run morsel-parallel over block-aligned sections
	// of their input, with the budget divided among the operators running
	// at any moment (an operator keeps its initial share until it
	// finishes, so brief overshoot is possible when branches join it).
	// 0 means GOMAXPROCS; 1 reproduces the sequential operator-at-a-time
	// execution exactly. Results are byte-identical at every parallelism
	// level.
	Parallelism int
}

// UncompressedConfig returns a config processing everything uncompressed.
func UncompressedConfig(style vector.Style) *Config {
	return &Config{Inter: map[string]columns.FormatDesc{}, Style: style}
}

// UniformConfig returns a config assigning desc to every intermediate of p
// (respecting the random-access restriction, for which static BP is used).
func UniformConfig(p *Plan, desc columns.FormatDesc, style vector.Style) *Config {
	cfg := &Config{Inter: map[string]columns.FormatDesc{}, Style: style}
	for _, name := range p.IntermediateNames() {
		d := desc
		if p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) {
			d = columns.StaticBPDesc(0)
		}
		cfg.Inter[name] = d
	}
	return cfg
}

// interDesc resolves the configured format of an intermediate.
func (c *Config) interDesc(name string) columns.FormatDesc {
	if d, ok := c.Inter[name]; ok {
		return d
	}
	return columns.UncomprDesc
}

// Measure aggregates the physical footprint and runtime of one execution,
// mirroring the paper's two evaluation metrics.
type Measure struct {
	// BaseBytes is the physical size of all distinct base columns scanned.
	BaseBytes int
	// InterBytes is the physical size of all materialized intermediates
	// (including result columns).
	InterBytes int
	// Runtime is the total operator time (base encoding excluded). Under a
	// concurrent execution (Config.Parallelism > 1) it is the sum of the
	// individual operator times and can exceed the wall-clock time.
	Runtime time.Duration
	// PerOp records the runtime per operator kind.
	PerOp map[string]time.Duration
	// ColBytes records the physical size per column name.
	ColBytes map[string]int
}

// Footprint is the total memory footprint: base data plus intermediates.
func (m *Measure) Footprint() int { return m.BaseBytes + m.InterBytes }

// Result is the outcome of executing a plan.
type Result struct {
	// Cols holds the result columns by name.
	Cols map[string]*columns.Column
	// Inter holds every materialized column by name when Config.Keep is set.
	Inter map[string]*columns.Column
	// Meas carries the footprint/runtime accounting.
	Meas Measure
}

// executor carries the shared state of one plan execution: the plan, the
// configuration, the per-node output slots, and the accumulating result.
type executor struct {
	p     *Plan
	db    *DB
	cfg   *Config
	par   int // effective worker budget (>= 1)
	sinks map[string]bool
	outs  [][]*columns.Column
	res   *Result
}

// Execute runs the plan operator-at-a-time against db under cfg. With
// cfg.Parallelism <= 1 the nodes run sequentially in topological order;
// otherwise independent nodes run concurrently and partitionable kernels run
// morsel-parallel, producing byte-identical columns either way.
func Execute(p *Plan, db *DB, cfg *Config) (*Result, error) {
	if cfg == nil {
		cfg = UncompressedConfig(vector.Scalar)
	}
	sinks := p.sinkSet()
	for name := range sinks {
		if d, ok := cfg.Inter[name]; ok && d.Kind != columns.Uncompressed {
			return nil, fmt.Errorf("core: result column %q must stay uncompressed, configured %v", name, d)
		}
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := &executor{
		p:     p,
		db:    db,
		cfg:   cfg,
		par:   par,
		sinks: sinks,
		outs:  make([][]*columns.Column, len(p.nodes)),
		res: &Result{
			Cols: make(map[string]*columns.Column, len(p.sinks)),
			Meas: Measure{
				PerOp:    make(map[string]time.Duration),
				ColBytes: make(map[string]int),
			},
		},
	}
	if cfg.Keep {
		e.res.Inter = make(map[string]*columns.Column)
	}
	var err error
	if par <= 1 {
		err = e.runSequential()
	} else {
		err = e.runConcurrent()
	}
	if err != nil {
		return nil, err
	}
	return e.res, nil
}

// runSequential executes the nodes one at a time in topological order — the
// original operator-at-a-time execution. The single running operator gets
// the whole morsel budget.
func (e *executor) runSequential() error {
	for _, n := range e.p.nodes {
		start := time.Now()
		produced, err := e.runNode(n, e.par)
		if err != nil {
			return err
		}
		e.outs[n.id] = produced
		e.account(n, produced, time.Since(start))
	}
	return nil
}

// outDesc returns the format for a node output, honouring the result-column
// rule and the random-access restriction.
func (e *executor) outDesc(name string) (columns.FormatDesc, error) {
	if e.sinks[name] {
		if d, ok := e.cfg.Inter[name]; ok && d.Kind != columns.Uncompressed {
			return columns.FormatDesc{}, fmt.Errorf("core: result column %q must stay uncompressed, configured %v", name, d)
		}
		return columns.UncomprDesc, nil
	}
	d := e.cfg.interDesc(name)
	if e.p.RandomAccessed(name) && !formats.HasRandomAccess(d.Kind) && !e.cfg.AutoMorph {
		return columns.FormatDesc{}, fmt.Errorf("core: column %q needs random access but is configured %v (enable AutoMorph or choose uncompressed/static BP)", name, d)
	}
	return d, nil
}

// input resolves a node input column. The producing node is always complete
// before its consumers are scheduled.
func (e *executor) input(ref ColRef) *columns.Column { return e.outs[ref.node.id][ref.out] }

// randomInput fetches a project data input, inserting an on-the-fly morph to
// static BP if permitted and needed.
func (e *executor) randomInput(ref ColRef) (*columns.Column, error) {
	col := e.input(ref)
	if formats.HasRandomAccess(col.Desc().Kind) {
		return col, nil
	}
	if !e.cfg.AutoMorph {
		return nil, fmt.Errorf("core: column %q needs random access but is %v", ref.Name(), col.Desc())
	}
	return morph.Morph(col, columns.StaticBPDesc(0))
}

// runNode executes one plan operator with the given morsel-parallelism
// budget and returns its output columns. It only reads the executor state
// and the already-complete outputs of the node's inputs, so distinct nodes
// can run on distinct goroutines.
func (e *executor) runNode(n *Node, par int) ([]*columns.Column, error) {
	cfg := e.cfg
	var produced []*columns.Column
	var err error
	switch n.op {
	case OpScan:
		col, cerr := e.db.Column(n.table, n.column)
		if cerr != nil {
			return nil, cerr
		}
		produced = []*columns.Column{col}
	case OpSelect:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.ParSelectAuto(e.input(n.inputs[0]), n.cmp, n.val, d, cfg.Style, cfg.Specialized, par)
		produced = []*columns.Column{c}
	case OpBetween:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.ParSelectBetweenAuto(e.input(n.inputs[0]), n.val, n.val2, d, cfg.Style, cfg.Specialized, par)
		produced = []*columns.Column{c}
	case OpProject:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		data, rerr := e.randomInput(n.inputs[0])
		if rerr != nil {
			return nil, rerr
		}
		var c *columns.Column
		c, err = ops.ParProject(data, e.input(n.inputs[1]), d, cfg.Style, par)
		produced = []*columns.Column{c}
	case OpIntersect:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.IntersectSorted(e.input(n.inputs[0]), e.input(n.inputs[1]), d)
		produced = []*columns.Column{c}
	case OpMerge:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.MergeSorted(e.input(n.inputs[0]), e.input(n.inputs[1]), d)
		produced = []*columns.Column{c}
	case OpSemiJoin:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.ParSemiJoin(e.input(n.inputs[0]), e.input(n.inputs[1]), d, cfg.Style, par)
		produced = []*columns.Column{c}
	case OpJoinN1:
		dp, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		db2, derr := e.outDesc(n.outNames[1])
		if derr != nil {
			return nil, derr
		}
		var cp, cb *columns.Column
		cp, cb, err = ops.ParJoinN1(e.input(n.inputs[0]), e.input(n.inputs[1]), dp, db2, cfg.Style, par)
		produced = []*columns.Column{cp, cb}
	case OpGroupFirst:
		dg, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		de, derr := e.outDesc(n.outNames[1])
		if derr != nil {
			return nil, derr
		}
		var cg, ce *columns.Column
		cg, ce, err = ops.GroupFirst(e.input(n.inputs[0]), dg, de, cfg.Style)
		produced = []*columns.Column{cg, ce}
	case OpGroupNext:
		dg, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		de, derr := e.outDesc(n.outNames[1])
		if derr != nil {
			return nil, derr
		}
		var cg, ce *columns.Column
		cg, ce, err = ops.GroupNext(e.input(n.inputs[0]), e.input(n.inputs[1]), dg, de, cfg.Style)
		produced = []*columns.Column{cg, ce}
	case OpSumWhole:
		var c *columns.Column
		_, c, err = ops.ParSumAuto(e.input(n.inputs[0]), cfg.Style, cfg.Specialized, par)
		produced = []*columns.Column{c}
	case OpSumGrouped:
		nGroups := e.input(n.inputs[1]).N()
		var c *columns.Column
		c, err = ops.ParSumGrouped(e.input(n.inputs[0]), e.input(n.inputs[2]), nGroups, cfg.Style, par)
		produced = []*columns.Column{c}
	case OpCalc:
		d, derr := e.outDesc(n.outNames[0])
		if derr != nil {
			return nil, derr
		}
		var c *columns.Column
		c, err = ops.ParCalcBinary(n.calc, e.input(n.inputs[0]), e.input(n.inputs[1]), d, cfg.Style, par)
		produced = []*columns.Column{c}
	default:
		return nil, fmt.Errorf("core: unknown operator %v", n.op)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %v %q: %w", n.op, n.outNames[0], err)
	}
	return produced, nil
}

// account books the footprint and runtime of one completed node into the
// result. In the concurrent execution the scheduler serializes calls.
func (e *executor) account(n *Node, produced []*columns.Column, elapsed time.Duration) {
	if n.op != OpScan {
		e.res.Meas.Runtime += elapsed
		e.res.Meas.PerOp[n.op.String()] += elapsed
	}
	for i, col := range produced {
		name := n.outNames[i]
		e.res.Meas.ColBytes[name] = col.PhysicalBytes()
		if n.op == OpScan {
			e.res.Meas.BaseBytes += col.PhysicalBytes()
		} else {
			e.res.Meas.InterBytes += col.PhysicalBytes()
		}
		if e.cfg.Keep {
			e.res.Inter[name] = col
		}
		if e.sinks[name] {
			e.res.Cols[name] = col
		}
	}
}
