package core

import (
	"context"
	"errors"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/ops"
	"morphstore/internal/qerr"
)

// This file implements the engine's one-off operator calls: the
// option-based replacement for the facade's positional free functions
// (Select(in, op, val, out, style) and friends). Each call runs under the
// engine's shared worker budget — a lease is opened for the duration, so
// ad-hoc operators and prepared queries divide the same allowance — and
// honours the context like a prepared execution.

// opRuntime opens a budget lease for one ad-hoc operator call, sized by the
// call's parallelism option (default: the whole engine budget). Every
// operator — including the grouping and sorted-set calls, whose drivers are
// parallel now — leases its full share; there are no cap-1 leases left. The
// call also registers with the engine's admission layer (not slot-bounded,
// but visible to the Engine.Close drain): a closed engine fails the call
// fast with ErrEngineClosed, and a Close that gave up on graceful draining
// cancels it through the derived context.
func (e *Engine) opRuntime(ctx context.Context, o []Option) (options, ops.Runtime, func(), error) {
	if e.err != nil {
		return options{}, ops.Runtime{}, nil, e.err
	}
	opt, err := e.defs.merged(scopeOp, o)
	if err != nil {
		return options{}, ops.Runtime{}, nil, err
	}
	exit, err := e.adm.enter()
	if err != nil {
		return options{}, ops.Runtime{}, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	stopKill := context.AfterFunc(e.killCtx, cancel)
	par := opt.par
	if par <= 0 {
		par = e.budget.Total()
	}
	lease := e.budget.Lease(par)
	done := func() {
		lease.Close()
		stopKill()
		cancel()
		exit()
	}
	return opt, ops.RT(ctx, lease, par), done, nil
}

// opGuard is the deferred failure boundary of every one-off operator call:
// it converts a panic — in the operator's own phase; the morsel workers carry
// their own guards — into a *QueryError tagged with the operator name, and
// classifies context errors onto the taxonomy, mirroring what a prepared
// execution reports for the same failure. A cancellation caused by
// Engine.Close abandoning its graceful drain is additionally tagged with
// ErrEngineClosed.
func (e *Engine) opGuard(op string, errp *error) {
	if v := recover(); v != nil {
		qe := qerr.Recovered(v, -1)
		qe.Op = op
		*errp = qe
		return
	}
	*errp = qerr.Classify(*errp)
	if *errp != nil && e.killCtx.Err() != nil && errors.Is(*errp, qerr.ErrQueryCanceled) {
		*errp = qerr.Tag(*errp, qerr.ErrEngineClosed)
	}
}

// Select returns the sorted positions of elements matching `element op val`.
// Options: WithOutput, WithStyle, WithSpecialized, WithParallelism.
func (e *Engine) Select(ctx context.Context, in *columns.Column, op bitutil.CmpKind, val uint64, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("select", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.SelectAuto(in, op, val, opt.outputDesc(0), opt.style, opt.specialized)
}

// SelectBetween returns the sorted positions of elements in [lo, hi].
func (e *Engine) SelectBetween(ctx context.Context, in *columns.Column, lo, hi uint64, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("between", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.SelectBetweenAuto(in, lo, hi, opt.outputDesc(0), opt.style, opt.specialized)
}

// Project gathers data values at the given positions; the data column must
// support random access (uncompressed or static BP).
func (e *Engine) Project(ctx context.Context, data, pos *columns.Column, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("project", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.Project(data, pos, opt.outputDesc(0), opt.style)
}

// Sum aggregates all elements of a column.
func (e *Engine) Sum(ctx context.Context, in *columns.Column, o ...Option) (sum uint64, err error) {
	defer e.opGuard("sum", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return 0, err
	}
	defer done()
	s, _, err := rt.SumAuto(in, opt.style, opt.specialized)
	return s, err
}

// SumGrouped sums vals per group id, for group ids in [0, nGroups).
func (e *Engine) SumGrouped(ctx context.Context, gids, vals *columns.Column, nGroups int, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("sum_grouped", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.SumGrouped(gids, vals, nGroups, opt.style)
}

// SemiJoin emits probe positions whose key occurs in build.
func (e *Engine) SemiJoin(ctx context.Context, probe, build *columns.Column, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("semijoin", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.SemiJoin(probe, build, opt.outputDesc(0), opt.style)
}

// JoinN1 equi-joins a probe-side key column against a build-side key column
// with unique values, returning the matching probe positions and, aligned
// with them, the joined build positions (WithOutputs sets their formats).
func (e *Engine) JoinN1(ctx context.Context, probe, build *columns.Column, o ...Option) (probePos, buildPos *columns.Column, err error) {
	defer e.opGuard("join", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return rt.JoinN1(probe, build, opt.outputDesc(0), opt.outputDesc(1), opt.style)
}

// Calc combines two equal-length columns element-wise.
func (e *Engine) Calc(ctx context.Context, op ops.CalcKind, a, b *columns.Column, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("calc", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.CalcBinary(op, a, b, opt.outputDesc(0), opt.style)
}

// Intersect intersects two sorted position lists, splitting both inputs at
// shared value-range boundaries for parallel processing.
func (e *Engine) Intersect(ctx context.Context, a, b *columns.Column, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("intersect", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.Intersect(a, b, opt.outputDesc(0))
}

// Union merges two sorted position lists without duplicates, splitting both
// inputs at shared value-range boundaries for parallel processing.
func (e *Engine) Union(ctx context.Context, a, b *columns.Column, o ...Option) (out *columns.Column, err error) {
	defer e.opGuard("merge", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, err
	}
	defer done()
	return rt.Merge(a, b, opt.outputDesc(0))
}

// GroupFirst assigns a dense group id (in order of first occurrence) to
// every element of keys, returning the per-row group ids and, per group, the
// position of its first occurrence (WithOutputs sets their formats).
func (e *Engine) GroupFirst(ctx context.Context, keys *columns.Column, o ...Option) (gids, extents *columns.Column, err error) {
	defer e.opGuard("group", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return rt.GroupFirst(keys, opt.outputDesc(0), opt.outputDesc(1), opt.style)
}

// GroupNext refines an existing grouping with an additional key column: rows
// fall into the same output group iff they had the same previous group id
// and the same new key. Outputs follow the GroupFirst conventions.
func (e *Engine) GroupNext(ctx context.Context, prevGids, keys *columns.Column, o ...Option) (gids, extents *columns.Column, err error) {
	defer e.opGuard("group_next", &err)
	opt, rt, done, err := e.opRuntime(ctx, o)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return rt.GroupNext(prevGids, keys, opt.outputDesc(0), opt.outputDesc(1), opt.style)
}
