package core

import (
	"fmt"
)

// This file implements the prepare-time memory estimate behind
// WithMemoryEstimateLimit. The estimate is a conservative upper bound on the
// bytes of intermediate columns one execution of the plan can materialize:
// per-operator output cardinalities are bounded from the base-column sizes
// (selections and joins emit at most their input's cardinality, a union at
// most the sum, an aggregate at most one row per input row), and every
// intermediate element is costed at a full 8-byte word — the uncompressed
// worst case; every compressed format is at most marginally larger than that
// bound (per-block headers), which the word-rounding absorbs for any column
// beyond a few blocks.
//
// The bound deliberately sums over all intermediates rather than a live-set
// peak: the executor keeps every produced column until Execute returns (the
// DAG scheduler may still have dependents for any of them), so the sum is the
// honest worst case, not a pessimization.

// planCardinality returns, per node and output, an upper bound on the output
// column's element count, derived from the base-column sizes in db.
func planCardinality(p *Plan, db *DB) ([][]int, error) {
	card := make([][]int, len(p.nodes))
	for i, n := range p.nodes {
		in := func(j int) int { return card[n.inputs[j].node.id][n.inputs[j].out] }
		switch n.op {
		case OpScan:
			col, err := db.Column(n.table, n.column)
			if err != nil {
				return nil, err
			}
			card[i] = []int{col.N()}
		case OpSelect, OpBetween, OpSelectStr:
			card[i] = []int{in(0)}
		case OpProject:
			card[i] = []int{in(1)}
		case OpIntersect:
			card[i] = []int{min(in(0), in(1))}
		case OpMerge:
			card[i] = []int{in(0) + in(1)}
		case OpSemiJoin:
			card[i] = []int{in(0)}
		case OpJoinN1:
			card[i] = []int{in(0), in(0)}
		case OpGroupFirst:
			card[i] = []int{in(0), in(0)}
		case OpGroupNext:
			card[i] = []int{in(1), in(1)}
		case OpSumWhole:
			card[i] = []int{1}
		case OpSumGrouped:
			card[i] = []int{in(1)}
		case OpCalc:
			card[i] = []int{in(0)}
		default:
			return nil, fmt.Errorf("core: memory estimate: unhandled operator %v", n.op)
		}
	}
	return card, nil
}

// memoryEstimate returns the conservative upper bound, in bytes, on the
// intermediate columns one execution of p can materialize. Base columns are
// excluded: scans hand out the stored columns without copying.
func memoryEstimate(p *Plan, db *DB) (int, error) {
	card, err := planCardinality(p, db)
	if err != nil {
		return 0, err
	}
	bytes := 0
	for i, n := range p.nodes {
		if n.op == OpScan {
			continue
		}
		for _, c := range card[i] {
			bytes += c * 8
		}
	}
	return bytes, nil
}
