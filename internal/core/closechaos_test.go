package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// TestChaosClose races Engine.Close against a storm of concurrent
// executions while a background goroutine keeps re-arming random fault
// points — including the admission-enqueue and close-drain sites — with
// errors, panics and delays. The contract: every failure is a taxonomy
// error, every success is byte-identical to the reference, Close leaves
// nothing in flight, no goroutine, budget lease, worker slot, or memory
// reservation leaks, and the engine fails fast afterwards.
func TestChaosClose(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := buildParTestDB(t)
	plan := buildParTestPlan(t)

	// Reference result from a quiet engine; the chaos engine is closed
	// mid-test so it cannot produce one afterwards.
	quiet := NewEngine(db, WithParallelism(2))
	qpr, err := quiet.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := qpr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	e := NewEngine(db, WithParallelism(4),
		WithMaxConcurrentQueries(2),
		WithAdmissionQueue(4, 2*time.Millisecond),
		WithMemoryBudget(1<<30))
	pr, err := e.Prepare(plan, WithUniformFormat(columns.DynBPDesc))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(23))
		points := faultpoint.Points()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(4) == 0 {
				faultpoint.DisarmAll()
			} else {
				chaosArm(points[rng.Intn(len(points))], rng.Intn(6))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const goroutines, iters = 8, 16 // 128 executions racing one Close
	var closed atomic.Bool
	var succeeded, failed atomic.Int64
	errCh := make(chan error, goroutines)
	var execWG sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		execWG.Add(1)
		go func(g int) {
			defer execWG.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(8) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(400))*time.Microsecond)
				}
				res, err := pr.Execute(ctx)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					failed.Add(1)
					if !chaosTyped(err) {
						errCh <- fmt.Errorf("goroutine %d iter %d: untyped chaos error: %v", g, i, err)
						return
					}
					if closed.Load() && errors.Is(err, qerr.ErrEngineClosed) {
						return // the engine is gone; nothing left to exercise
					}
					continue
				}
				succeeded.Add(1)
				if err := sameResult(ref, res); err != nil {
					errCh <- fmt.Errorf("goroutine %d iter %d: success under chaos diverged: %v", g, i, err)
					return
				}
			}
		}(g)
	}

	// Close lands mid-storm with a short grace period; the drain either
	// finishes in time or the stragglers are cancelled at the deadline.
	time.Sleep(5 * time.Millisecond)
	closed.Store(true)
	cctx, ccancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := e.Close(cctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && !chaosTyped(err) {
		t.Errorf("close under chaos: %v", err)
	}
	ccancel()

	execWG.Wait()
	close(stop)
	chaosWG.Wait()
	faultpoint.DisarmAll()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	t.Logf("chaos close: %d succeeded, %d failed before/through close", succeeded.Load(), failed.Load())

	// A failed graceful drain still kills and drains fully before Close
	// returns; a repeat Close (the drain fault point is disarmed now) must
	// succeed and the engine must fail fast.
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close after chaos: %v", err)
	}
	if _, err := pr.Execute(context.Background()); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("execute after close: %v, want ErrEngineClosed", err)
	}

	// Leak invariants: admission empty, no budget lease or worker slot held,
	// every memory reservation returned, goroutines back to baseline.
	if c := e.adm.counters(); c.inflight != 0 || c.queued != 0 {
		t.Fatalf("admission not drained: inflight=%d queued=%d", c.inflight, c.queued)
	}
	if n := e.budget.Leases(); n != 0 {
		t.Fatalf("%d budget leases leaked", n)
	}
	if n := e.budget.InUse(); n != 0 {
		t.Fatalf("%d budget worker slots leaked", n)
	}
	if n := e.gov.Reserved(); n != 0 {
		t.Fatalf("%d bytes of memory reservation leaked", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Fatalf("goroutines leaked: %d before chaos, %d after", baseline, now)
	}

	// The quiet engine was never touched by the storm.
	res, err := qpr.Execute(context.Background())
	if err != nil {
		t.Fatalf("quiet engine after chaos: %v", err)
	}
	if err := sameResult(ref, res); err != nil {
		t.Fatalf("quiet engine diverged: %v", err)
	}
}
