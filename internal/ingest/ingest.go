// Package ingest loads external row data into the engine: a Source decodes
// an input stream (CSV, JSON lines) into typed column batches — sniffing
// each column as uint64 or string from the first batch — and Load feeds the
// batches through Engine.AppendStrings, which translates string columns
// through their per-column dictionaries and appends under the engine's
// admission, memory-governor, and Close semantics.
//
// Malformed input fails with the engine's typed error taxonomy: structural
// defects of the byte stream (bad CSV quoting, invalid JSON, oversized
// lines) match qerr.ErrCorruptData, schema defects (ragged rows, duplicate
// or empty headers, a column changing type mid-stream) match
// qerr.ErrInvalidSchema, and sources never panic on hostile input
// (FuzzCSVIngest drives this contract).
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"morphstore/internal/core"
	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// Kind is the sniffed type of one source column.
type Kind uint8

const (
	// KindUint is a numeric column: every value parses as a decimal uint64.
	KindUint Kind = iota
	// KindString is a string column, dictionary-encoded on load.
	KindString
)

// Column describes one sniffed source column.
type Column struct {
	Name string
	Kind Kind
}

// Batch is one decoded batch of rows, split by column type the way
// Engine.AppendStrings consumes them. All slices are equally long.
type Batch struct {
	Nums map[string][]uint64
	Strs map[string][]string
}

// Rows returns the batch's row count.
func (b *Batch) Rows() int {
	for _, v := range b.Nums {
		return len(v)
	}
	for _, v := range b.Strs {
		return len(v)
	}
	return 0
}

// Source decodes an input stream into column batches. Implementations
// type-sniff their columns from the first batch and hold the schema fixed
// from then on.
type Source interface {
	// Next returns the next batch of at most max rows (max <= 0 means an
	// implementation-chosen default), or (nil, io.EOF) when the stream is
	// exhausted. Errors other than io.EOF match qerr.ErrCorruptData or
	// qerr.ErrInvalidSchema.
	Next(max int) (*Batch, error)
	// Schema returns the sniffed columns in stable order; nil before the
	// first Next call decoded any data.
	Schema() []Column
}

// Option configures Load.
type Option func(*config)

type config struct {
	batchRows int
}

// WithBatchRows sets the row count Load requests per source batch (default
// 4096). Each batch is one governor reservation and one delta append.
func WithBatchRows(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.batchRows = n
		}
	}
}

// Load streams src into the named table of e: every batch passes the
// ingest-batch fault point, then appends through Engine.AppendStrings
// (dictionary translation for string columns, governor-reserved, admitted
// and drained like any other engine operation). If the table does not exist
// in the engine's database yet, it is created empty from the source's
// sniffed schema before the first batch — callers creating tables this way
// must not run queries against the table until Load created it. Load
// returns the number of rows appended; on error the rows of already
// appended batches remain (ingest is batch-atomic, not load-atomic).
func Load(ctx context.Context, e *core.Engine, table string, src Source, opts ...Option) (int, error) {
	cfg := config{batchRows: 4096}
	for _, o := range opts {
		o(&cfg)
	}
	total := 0
	created := false
	for {
		b, err := src.Next(cfg.batchRows)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, nil
			}
			return total, err
		}
		if b == nil || b.Rows() == 0 {
			continue
		}
		if !created {
			if err := ensureTable(e.DB(), table, src.Schema()); err != nil {
				return total, err
			}
			created = true
		}
		if err := faultpoint.IngestBatch.Hit(); err != nil {
			return total, fmt.Errorf("ingest: batch into %q: %w", table, err)
		}
		if err := e.AppendStrings(ctx, table, b.Nums, b.Strs); err != nil {
			return total, err
		}
		total += b.Rows()
	}
}

// ensureTable creates an empty table matching the sniffed schema when the
// database has none of that name yet.
func ensureTable(db *core.DB, table string, schema []Column) error {
	if _, ok := db.Tables[table]; ok {
		return nil
	}
	if len(schema) == 0 {
		return qerr.Tag(fmt.Errorf("ingest: source for %q decoded no schema", table), qerr.ErrInvalidSchema)
	}
	nums := make(map[string][]uint64)
	var strCols []string
	for _, c := range schema {
		if c.Kind == KindUint {
			nums[c.Name] = nil
		} else {
			strCols = append(strCols, c.Name)
		}
	}
	if len(nums) > 0 {
		if err := db.AddTable(table, nums); err != nil {
			return err
		}
	}
	sort.Strings(strCols)
	for _, cn := range strCols {
		if err := db.AddStringColumn(table, cn, nil); err != nil {
			return err
		}
	}
	return nil
}

// corrupt tags a structural input defect.
func corrupt(format string, args ...any) error {
	return qerr.Tag(fmt.Errorf("ingest: "+format, args...), qerr.ErrCorruptData)
}

// badSchema tags a schema defect.
func badSchema(format string, args ...any) error {
	return qerr.Tag(fmt.Errorf("ingest: "+format, args...), qerr.ErrInvalidSchema)
}
