package ingest

import (
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/core"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
)

// drain reads every batch of a source.
func drain(t *testing.T, src Source, max int) []*Batch {
	t.Helper()
	var out []*Batch
	for {
		b, err := src.Next(max)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

func TestCSVSourceDecodesAndSniffs(t *testing.T) {
	src := NewCSV(strings.NewReader("city,pop\nparis,100\nlyon,48\nparis,7\n"))
	if src.Schema() != nil {
		t.Fatal("schema known before any decode")
	}
	batches := drain(t, src, 2)
	want := []Column{{Name: "city", Kind: KindString}, {Name: "pop", Kind: KindUint}}
	if got := src.Schema(); !reflect.DeepEqual(got, want) {
		t.Fatalf("schema = %v, want %v", got, want)
	}
	if len(batches) != 2 || batches[0].Rows() != 2 || batches[1].Rows() != 1 {
		t.Fatalf("batch shapes: %d batches", len(batches))
	}
	if !reflect.DeepEqual(batches[0].Strs["city"], []string{"paris", "lyon"}) {
		t.Fatalf("city batch 0 = %v", batches[0].Strs["city"])
	}
	if !reflect.DeepEqual(batches[0].Nums["pop"], []uint64{100, 48}) {
		t.Fatalf("pop batch 0 = %v", batches[0].Nums["pop"])
	}
	if !reflect.DeepEqual(batches[1].Nums["pop"], []uint64{7}) {
		t.Fatalf("pop batch 1 = %v", batches[1].Nums["pop"])
	}
	// A numeric-looking string column: one non-numeric value in the sniff
	// window makes the whole column a string column.
	src = NewCSV(strings.NewReader("id\n1\nx\n2\n"))
	b := drain(t, src, 0)
	if src.Schema()[0].Kind != KindString {
		t.Fatal("mixed column sniffed numeric")
	}
	if !reflect.DeepEqual(b[0].Strs["id"], []string{"1", "x", "2"}) {
		t.Fatalf("mixed column = %v", b[0].Strs["id"])
	}
}

func TestCSVSourceTypedErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		want error
	}{
		"empty input":      {"", qerr.ErrInvalidSchema},
		"empty header":     {"a,,c\n1,2,3\n", qerr.ErrInvalidSchema},
		"duplicate header": {"a,a\n1,2\n", qerr.ErrInvalidSchema},
		"ragged row":       {"a,b\n1,2\n3\n", qerr.ErrInvalidSchema},
		"bare quote":       {"a,b\n1,\"x\"y\n", qerr.ErrCorruptData},
	}
	for name, tc := range cases {
		src := NewCSV(strings.NewReader(tc.in))
		_, err := src.Next(0)
		for err == nil {
			_, err = src.Next(0)
		}
		if errors.Is(err, io.EOF) || !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
		// The failure latches: the source keeps returning it.
		if _, err2 := src.Next(0); !errors.Is(err2, tc.want) {
			t.Errorf("%s: latched err = %v, want %v", name, err2, tc.want)
		}
	}
	// A type flip after the sniff window: the column was fixed numeric by
	// the first batch, a later non-numeric value is a schema error.
	src := NewCSV(strings.NewReader("id\n1\n2\nx\n"))
	if _, err := src.Next(2); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(2); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("type flip: err = %v, want ErrInvalidSchema", err)
	}
}

func TestJSONLinesSourceDecodesAndSniffs(t *testing.T) {
	in := `{"pop": 100, "city": "paris"}

	{"city": "lyon", "pop": 48}
`
	src := NewJSONLines(strings.NewReader(in))
	batches := drain(t, src, 0)
	// Keys are sorted for a stable schema order.
	want := []Column{{Name: "city", Kind: KindString}, {Name: "pop", Kind: KindUint}}
	if got := src.Schema(); !reflect.DeepEqual(got, want) {
		t.Fatalf("schema = %v, want %v", got, want)
	}
	if len(batches) != 1 || batches[0].Rows() != 2 {
		t.Fatalf("batches = %v", batches)
	}
	if !reflect.DeepEqual(batches[0].Strs["city"], []string{"paris", "lyon"}) {
		t.Fatalf("city = %v", batches[0].Strs["city"])
	}
	if !reflect.DeepEqual(batches[0].Nums["pop"], []uint64{100, 48}) {
		t.Fatalf("pop = %v", batches[0].Nums["pop"])
	}
}

func TestJSONLinesSourceTypedErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		want error
	}{
		"invalid json":   {"{\"a\": 1}\n{broken\n", qerr.ErrCorruptData},
		"non-object":     {"[1, 2]\n", qerr.ErrCorruptData},
		"trailing data":  {"{\"a\": 1} {\"a\": 2}\n", qerr.ErrCorruptData},
		"overlong line":  {"{\"a\": \"" + strings.Repeat("x", maxJSONLine) + "\"}\n", qerr.ErrCorruptData},
		"float value":    {"{\"a\": 1.5}\n", qerr.ErrInvalidSchema},
		"negative value": {"{\"a\": -3}\n", qerr.ErrInvalidSchema},
		"bool value":     {"{\"a\": true}\n", qerr.ErrInvalidSchema},
		"nested value":   {"{\"a\": {\"b\": 1}}\n", qerr.ErrInvalidSchema},
		"empty object":   {"{}\n", qerr.ErrInvalidSchema},
		"missing key":    {"{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n", qerr.ErrInvalidSchema},
		"extra key":      {"{\"a\": 1}\n{\"a\": 2, \"b\": 3}\n", qerr.ErrInvalidSchema},
		"type flip":      {"{\"a\": 1}\n{\"a\": \"x\"}\n", qerr.ErrInvalidSchema},
	}
	for name, tc := range cases {
		src := NewJSONLines(strings.NewReader(tc.in))
		_, err := src.Next(0)
		for err == nil {
			_, err = src.Next(0)
		}
		if errors.Is(err, io.EOF) || !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
		if _, err2 := src.Next(0); !errors.Is(err2, tc.want) {
			t.Errorf("%s: latched err = %v, want %v", name, err2, tc.want)
		}
	}
}

// TestLoadCreatesTableAndAppends is the end-to-end happy path of the
// acceptance criterion: a CSV file with a string column loads into a fresh
// engine, and a string-equality query executes through the compressed
// parallel operators byte-identically at parallelism 1 and 4.
func TestLoadCreatesTableAndAppends(t *testing.T) {
	const data = "nation,rev\nFRANCE,10\nGERMANY,20\nFRANCE,30\nJAPAN,40\nGERMANY,50\nFRANCE,60\n"
	run := func(par int) *core.Result {
		db := core.NewDB()
		e := core.NewEngine(db, core.WithParallelism(par))
		defer e.Close(context.Background())
		n, err := Load(context.Background(), e, "sales", NewCSV(strings.NewReader(data)), WithBatchRows(2))
		if err != nil {
			t.Fatal(err)
		}
		if n != 6 {
			t.Fatalf("loaded %d rows, want 6", n)
		}
		b := core.NewBuilder()
		s := b.Scan("sales", "nation")
		v := b.Scan("sales", "rev")
		pos := b.SelectStrEq("pos", s, "FRANCE")
		b.Result(b.Project("vals", v, pos))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := e.Prepare(p, core.WithAutoMorph(true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pr.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)
	vals, err := formats.Decompress(r1.Cols["vals"])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []uint64{10, 30, 60}) {
		t.Fatalf("FRANCE revenues = %v", vals)
	}
	// Byte-identity across parallelism.
	w, g := r1.Cols["vals"], r4.Cols["vals"]
	if w.N() != g.N() || len(w.Words()) != len(g.Words()) {
		t.Fatal("par 1 vs 4 shape mismatch")
	}
	for i, ww := range w.Words() {
		if g.Words()[i] != ww {
			t.Fatalf("par 1 vs 4 word %d differs", i)
		}
	}
}

func TestLoadIntoExistingTable(t *testing.T) {
	db := core.NewDB()
	if err := db.AddStringColumn("t", "s", []string{"seed"}); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(db, core.WithParallelism(1))
	defer e.Close(context.Background())
	n, err := Load(context.Background(), e, "t", NewCSV(strings.NewReader("s\nalpha\nseed\n")))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d rows, want 2", n)
	}
	snap := e.Snapshot()
	if rows, ok := snap.Rows("t"); !ok || rows != 3 {
		t.Fatalf("table has %d rows, want 3", rows)
	}
	ds := snap.Dict("t", "s")
	if ds == nil || ds.Len() != 2 {
		t.Fatalf("dict snap = %+v", ds)
	}
	if id, ok := ds.ID("alpha"); !ok || id != 1 {
		t.Fatalf("ID(alpha) = %d,%v, want 1 (seed holds 0)", id, ok)
	}
}

func TestLoadEmptyAndErrorSemantics(t *testing.T) {
	ctx := context.Background()
	// An empty source creates nothing.
	db := core.NewDB()
	e := core.NewEngine(db, core.WithParallelism(1))
	defer e.Close(ctx)
	if _, err := Load(ctx, e, "t", NewCSV(strings.NewReader(""))); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("empty CSV: err = %v, want ErrInvalidSchema", err)
	}
	if _, ok := db.Tables["t"]; ok {
		t.Fatal("failed load created the table")
	}
	// A header-only CSV decodes no rows: zero appended, no table.
	if n, err := Load(ctx, e, "t", NewCSV(strings.NewReader("a,b\n"))); err != nil || n != 0 {
		t.Fatalf("header-only load = %d, %v", n, err)
	}
	if _, ok := db.Tables["t"]; ok {
		t.Fatal("rowless load created the table")
	}
	// A mid-stream defect keeps the batches appended before it.
	n, err := Load(ctx, e, "t", NewCSV(strings.NewReader("a\nx\ny\nz\n\"w\"q\n")), WithBatchRows(2))
	if !errors.Is(err, qerr.ErrCorruptData) {
		t.Fatalf("mid-stream defect: err = %v, want ErrCorruptData", err)
	}
	if n != 2 {
		t.Fatalf("partial load kept %d rows, want 2", n)
	}
	if rows, ok := e.Snapshot().Rows("t"); !ok || rows != 2 {
		t.Fatalf("table has %d rows after partial load", rows)
	}
	// After Close, Load fails fast with the engine's error.
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(ctx, e, "t", NewCSV(strings.NewReader("a\nq\n"))); !errors.Is(err, qerr.ErrEngineClosed) {
		t.Fatalf("load after close: err = %v, want ErrEngineClosed", err)
	}
}

func TestLoadIngestBatchFaultPoint(t *testing.T) {
	defer faultpoint.DisarmAll()
	boom := qerr.Tag(errors.New("boom"), qerr.ErrCorruptData)
	hits := 0
	faultpoint.IngestBatch.Arm(func() error {
		hits++
		if hits > 1 {
			return boom
		}
		return nil
	})
	db := core.NewDB()
	e := core.NewEngine(db, core.WithParallelism(1))
	defer e.Close(context.Background())
	n, err := Load(context.Background(), e, "t", NewCSV(strings.NewReader("a\np\nq\nr\n")), WithBatchRows(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d rows before the fault, want 1", n)
	}
}

// TestLoadNumericOnly checks a source with no string columns still loads.
func TestLoadNumericOnly(t *testing.T) {
	db := core.NewDB()
	e := core.NewEngine(db, core.WithParallelism(2))
	defer e.Close(context.Background())
	n, err := Load(context.Background(), e, "t", NewJSONLines(strings.NewReader("{\"a\": 1, \"b\": 2}\n{\"a\": 3, \"b\": 4}\n")))
	if err != nil || n != 2 {
		t.Fatalf("load = %d, %v", n, err)
	}
	b := core.NewBuilder()
	a := b.Scan("t", "a")
	pos := b.Select("pos", a, bitutil.CmpGe, 0)
	b.Result(b.Project("vals", a, pos))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := e.Prepare(p, core.WithAutoMorph(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals, err := formats.Decompress(res.Cols["vals"])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []uint64{1, 3}) {
		t.Fatalf("a = %v", vals)
	}
}
