package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"sort"
	"strconv"
)

// maxJSONLine bounds one JSON-lines record; a longer line is corrupt input,
// not an allocation demand.
const maxJSONLine = 1 << 20

// jsonlSource decodes JSON lines: one JSON object per line, empty lines
// skipped. The first object fixes the schema — its sorted key set and, per
// key, the sniffed kind (a JSON string is a string column; a JSON number
// that parses as a uint64 is numeric). Later lines must carry exactly the
// same keys with conforming values.
type jsonlSource struct {
	sc     *bufio.Scanner
	names  []string
	kinds  []Kind
	done   bool
	failed error
}

// NewJSONLines returns a Source reading JSON-lines from r. Invalid JSON,
// a non-object line, or an overlong line is qerr.ErrCorruptData; a value of
// the wrong type (bool, null, nested, float, negative, missing or extra
// keys) is qerr.ErrInvalidSchema.
func NewJSONLines(r io.Reader) Source {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxJSONLine)
	return &jsonlSource{sc: sc}
}

// Schema implements Source.
func (s *jsonlSource) Schema() []Column {
	if s.kinds == nil {
		return nil
	}
	out := make([]Column, len(s.names))
	for i, n := range s.names {
		out[i] = Column{Name: n, Kind: s.kinds[i]}
	}
	return out
}

// readObject decodes the next non-empty line into a flat key→value map.
func (s *jsonlSource) readObject() (map[string]any, error) {
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			return nil, corrupt("jsonl: %v", err)
		}
		if obj == nil {
			return nil, corrupt("jsonl: line is not a JSON object")
		}
		var trailing any
		if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
			return nil, corrupt("jsonl: trailing data after object")
		}
		return obj, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, corrupt("jsonl: %v", err)
	}
	return nil, io.EOF
}

// sniffObject fixes the schema from the first object.
func (s *jsonlSource) sniffObject(obj map[string]any) error {
	names := make([]string, 0, len(obj))
	for k := range obj {
		if k == "" {
			return badSchema("jsonl: empty key")
		}
		names = append(names, k)
	}
	if len(names) == 0 {
		return badSchema("jsonl: first object has no keys")
	}
	sort.Strings(names)
	kinds := make([]Kind, len(names))
	for i, k := range names {
		switch v := obj[k].(type) {
		case string:
			kinds[i] = KindString
		case json.Number:
			if _, err := strconv.ParseUint(v.String(), 10, 64); err != nil {
				return badSchema("jsonl: key %q: number %v is not a uint64", k, v)
			}
			kinds[i] = KindUint
		default:
			return badSchema("jsonl: key %q: unsupported value type %T", k, obj[k])
		}
	}
	s.names, s.kinds = names, kinds
	return nil
}

// Next implements Source.
func (s *jsonlSource) Next(max int) (*Batch, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	fail := func(err error) (*Batch, error) {
		s.failed = err
		return nil, err
	}
	if max <= 0 {
		max = 4096
	}
	if s.done {
		return nil, io.EOF
	}
	var objs []map[string]any
	for len(objs) < max {
		obj, err := s.readObject()
		if errors.Is(err, io.EOF) {
			s.done = true
			break
		}
		if err != nil {
			return fail(err)
		}
		if s.kinds == nil {
			if err := s.sniffObject(obj); err != nil {
				return fail(err)
			}
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		return nil, io.EOF
	}
	b := &Batch{Nums: make(map[string][]uint64), Strs: make(map[string][]string)}
	for i, k := range s.names {
		if s.kinds[i] == KindString {
			b.Strs[k] = make([]string, len(objs))
		} else {
			b.Nums[k] = make([]uint64, len(objs))
		}
	}
	for row, obj := range objs {
		if len(obj) != len(s.names) {
			return fail(badSchema("jsonl: object has %d keys, schema has %d", len(obj), len(s.names)))
		}
		for i, k := range s.names {
			v, ok := obj[k]
			if !ok {
				return fail(badSchema("jsonl: object is missing key %q", k))
			}
			if s.kinds[i] == KindString {
				str, ok := v.(string)
				if !ok {
					return fail(badSchema("jsonl: key %q sniffed string but row has %T", k, v))
				}
				b.Strs[k][row] = str
				continue
			}
			num, ok := v.(json.Number)
			if !ok {
				return fail(badSchema("jsonl: key %q sniffed numeric but row has %T", k, v))
			}
			u, err := strconv.ParseUint(num.String(), 10, 64)
			if err != nil {
				return fail(badSchema("jsonl: key %q: number %v is not a uint64", k, num))
			}
			b.Nums[k][row] = u
		}
	}
	return b, nil
}
