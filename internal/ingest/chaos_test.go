package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphstore/internal/core"
	"morphstore/internal/dict"
	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// chaosIngestTyped reports whether an ingest failure under chaos is one of
// the engine's typed errors (the injected faults are tagged ErrCorruptData).
func chaosIngestTyped(err error) bool {
	var qe *qerr.QueryError
	return errors.Is(err, qerr.ErrCorruptData) ||
		errors.Is(err, qerr.ErrInvalidSchema) ||
		errors.Is(err, qerr.ErrQueryCanceled) ||
		errors.Is(err, qerr.ErrQueryTimeout) ||
		errors.Is(err, qerr.ErrAdmissionRejected) ||
		errors.Is(err, qerr.ErrEngineClosed) ||
		errors.Is(err, qerr.ErrMemoryLimit) ||
		errors.As(err, &qe)
}

// TestChaosIngestClose races CSV and JSON-lines ingest against Engine.Close
// while the three ingest fault points (dict-persist, dict-lookup-miss,
// ingest-batch) are randomly armed with typed errors and delays. The
// contract: every failure is a taxonomy error, the engine's appended-row
// counter agrees exactly with the row totals the Load calls reported, the
// dictionaries stay internally consistent (their journals replay to the
// same mapping), and Close leaves no memory reservation, budget lease,
// worker slot, or goroutine behind.
func TestChaosIngestClose(t *testing.T) {
	defer faultpoint.DisarmAll()
	const rows = 96
	var csvData, jsonlData strings.Builder
	csvData.WriteString("k,s\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csvData, "%d,w%02d\n", i, i%17)
		fmt.Fprintf(&jsonlData, "{\"k\": %d, \"s\": \"w%02d\"}\n", i, i%17)
	}

	db := core.NewDB()
	// Pre-create both tables: concurrent Loads into one table must not race
	// on schema creation.
	for _, tab := range []string{"tc", "tj"} {
		if err := db.AddTable(tab, map[string][]uint64{"k": nil}); err != nil {
			t.Fatal(err)
		}
		if err := db.AddStringColumn(tab, "s", nil); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()
	e := core.NewEngine(db, core.WithParallelism(4),
		core.WithMaxConcurrentQueries(2),
		core.WithAdmissionQueue(8, 2*time.Millisecond),
		core.WithMemoryBudget(1<<30))

	injected := qerr.Tag(errors.New("chaos injected"), qerr.ErrCorruptData)
	points := []*faultpoint.Point{faultpoint.DictPersist, faultpoint.DictLookupMiss, faultpoint.IngestBatch}
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(31))
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := points[rng.Intn(len(points))]
			switch rng.Intn(4) {
			case 0:
				p.Disarm()
			case 1:
				p.Arm(func() error { return injected })
			case 2:
				// Fail roughly one hit in three so some batches get through.
				var n atomic.Int64
				p.Arm(func() error {
					if n.Add(1)%3 == 0 {
						return injected
					}
					return nil
				})
			default:
				p.Arm(func() error { time.Sleep(20 * time.Microsecond); return nil })
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const goroutines, iters = 6, 10
	var loaded atomic.Int64 // sum of row totals reported by Load
	var closed atomic.Bool
	errCh := make(chan error, goroutines)
	var loadWG sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			rng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; i < iters; i++ {
				var src Source
				table := "tc"
				if rng.Intn(2) == 0 {
					src = NewCSV(strings.NewReader(csvData.String()))
				} else {
					table = "tj"
					src = NewJSONLines(strings.NewReader(jsonlData.String()))
				}
				n, err := Load(context.Background(), e, table, src, WithBatchRows(16))
				loaded.Add(int64(n))
				if err != nil {
					if !chaosIngestTyped(err) {
						errCh <- fmt.Errorf("goroutine %d iter %d: untyped chaos error: %v", g, i, err)
						return
					}
					if closed.Load() && errors.Is(err, qerr.ErrEngineClosed) {
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	closed.Store(true)
	cctx, ccancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if err := e.Close(cctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && !chaosIngestTyped(err) {
		t.Errorf("close under chaos: %v", err)
	}
	ccancel()
	loadWG.Wait()
	close(stop)
	chaosWG.Wait()
	faultpoint.DisarmAll()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close after chaos: %v", err)
	}

	// Row accounting: the engine appended exactly the rows the Load calls
	// reported, no more, no fewer.
	st := e.Stats()
	if st.AppendedRows != loaded.Load() {
		t.Fatalf("engine appended %d rows, Load calls reported %d", st.AppendedRows, loaded.Load())
	}
	t.Logf("chaos ingest: %d rows loaded across %d tables", loaded.Load(), 2)

	// Dictionary consistency: every dictionary's journal replays to the same
	// mapping its snapshot holds (failed batches may have grown the dict —
	// harmless — but never out of step with its journal).
	for _, tab := range []string{"tc", "tj"} {
		d := db.Dict(tab, "s")
		rd, err := dict.Replay(d.Journal())
		if err != nil {
			t.Fatalf("%s dict journal does not replay: %v", tab, err)
		}
		s, rs := d.Snap(), rd.Snap()
		if s.Len() != rs.Len() {
			t.Fatalf("%s: replayed dict has %d strings, live has %d", tab, rs.Len(), s.Len())
		}
		for id := uint64(0); id < uint64(s.Len()); id++ {
			a, _ := s.String(id)
			b, _ := rs.String(id)
			if a != b {
				t.Fatalf("%s: ID %d is %q live, %q replayed", tab, id, a, b)
			}
		}
		if s.Len() > 17 {
			t.Fatalf("%s: dict grew to %d strings, data has 17 distinct", tab, s.Len())
		}
	}

	// Leak invariants.
	if st.MemReserved != 0 {
		t.Fatalf("%d bytes of memory reservation leaked", st.MemReserved)
	}
	if st.BudgetLeases != 0 || st.BudgetInUse != 0 {
		t.Fatalf("budget leaked: leases=%d inuse=%d", st.BudgetLeases, st.BudgetInUse)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Fatalf("goroutines leaked: %d before chaos, %d after", baseline, now)
	}
}
