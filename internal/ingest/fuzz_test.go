package ingest

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"morphstore/internal/qerr"
)

// FuzzCSVIngest drives arbitrary bytes through the CSV source: it must never
// panic, every batch must be rectangular under the sniffed schema, and every
// failure must match the typed taxonomy (qerr.ErrCorruptData for broken
// bytes, qerr.ErrInvalidSchema for structural defects).
func FuzzCSVIngest(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"))
	f.Add([]byte("a\n1\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,a\n1,2\n"))
	f.Add([]byte("a,b\n1\n"))
	f.Add([]byte("a\n\"unterminated\n"))
	f.Add([]byte("\xff\xfe,b\n1,2\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		src := NewCSV(bytes.NewReader(b))
		for i := 0; i < 64; i++ {
			batch, err := src.Next(7)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, qerr.ErrCorruptData) && !errors.Is(err, qerr.ErrInvalidSchema) {
					t.Fatalf("non-taxonomy error: %v", err)
				}
				// The failure latches.
				if _, err2 := src.Next(7); !errors.Is(err2, err) {
					t.Fatalf("error did not latch: %v then %v", err, err2)
				}
				return
			}
			schema := src.Schema()
			if len(schema) == 0 {
				t.Fatal("batch decoded without a schema")
			}
			rows := batch.Rows()
			if rows == 0 || rows > 7 {
				t.Fatalf("batch has %d rows, max 7", rows)
			}
			if len(batch.Nums)+len(batch.Strs) != len(schema) {
				t.Fatalf("batch has %d columns, schema %d", len(batch.Nums)+len(batch.Strs), len(schema))
			}
			for _, c := range schema {
				if c.Kind == KindString {
					if len(batch.Strs[c.Name]) != rows {
						t.Fatalf("column %q ragged", c.Name)
					}
				} else if len(batch.Nums[c.Name]) != rows {
					t.Fatalf("column %q ragged", c.Name)
				}
			}
		}
	})
}

// FuzzJSONLinesIngest holds the JSON-lines source to the same contract.
func FuzzJSONLinesIngest(f *testing.F) {
	f.Add([]byte("{\"a\": 1, \"b\": \"x\"}\n{\"a\": 2, \"b\": \"y\"}\n"))
	f.Add([]byte(""))
	f.Add([]byte("{broken\n"))
	f.Add([]byte("{\"a\": -1}\n"))
	f.Add([]byte("[]\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		src := NewJSONLines(bytes.NewReader(b))
		for i := 0; i < 64; i++ {
			batch, err := src.Next(7)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, qerr.ErrCorruptData) && !errors.Is(err, qerr.ErrInvalidSchema) {
					t.Fatalf("non-taxonomy error: %v", err)
				}
				return
			}
			if rows := batch.Rows(); rows == 0 || rows > 7 {
				t.Fatalf("batch has %d rows, max 7", rows)
			}
		}
	})
}
