package ingest

import (
	"encoding/csv"
	"errors"
	"io"
	"strconv"
)

// csvSource decodes RFC-4180 CSV: the first record is the header (column
// names), every later record is one row. Column types are sniffed over the
// first batch: a column whose every value parses as a decimal uint64 is
// numeric, anything else is a string column; the decision is fixed from
// then on, and a later value that no longer fits its column's type is a
// schema error.
type csvSource struct {
	r      *csv.Reader
	names  []string
	kinds  []Kind
	buf    [][]string // rows decoded during the sniff, not yet returned
	done   bool
	failed error
}

// NewCSV returns a Source reading CSV from r. The header row is consumed on
// the first Next call; empty or duplicate header names, ragged records, and
// type flips are qerr.ErrInvalidSchema, CSV syntax defects are
// qerr.ErrCorruptData.
func NewCSV(r io.Reader) Source {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	return &csvSource{r: cr}
}

// Schema implements Source.
func (s *csvSource) Schema() []Column {
	if s.kinds == nil {
		return nil
	}
	out := make([]Column, len(s.names))
	for i, n := range s.names {
		out[i] = Column{Name: n, Kind: s.kinds[i]}
	}
	return out
}

// readRecord pulls one CSV record, mapping the reader's error taxonomy onto
// the engine's: a wrong field count is a schema defect, any other parse
// error is corrupt bytes.
func (s *csvSource) readRecord() ([]string, error) {
	rec, err := s.r.Read()
	if err == nil {
		return rec, nil
	}
	if errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	var perr *csv.ParseError
	if errors.As(err, &perr) && errors.Is(perr.Err, csv.ErrFieldCount) {
		return nil, badSchema("csv: line %d: %v", perr.Line, perr.Err)
	}
	return nil, corrupt("csv: %v", err)
}

// header consumes and validates the header row.
func (s *csvSource) header() error {
	rec, err := s.readRecord()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return badSchema("csv: empty input (no header)")
		}
		return err
	}
	seen := make(map[string]struct{}, len(rec))
	for _, name := range rec {
		if name == "" {
			return badSchema("csv: empty column name in header")
		}
		if _, dup := seen[name]; dup {
			return badSchema("csv: duplicate column %q in header", name)
		}
		seen[name] = struct{}{}
	}
	s.names = rec
	return nil
}

// sniff decodes up to max rows and fixes each column's kind.
func (s *csvSource) sniff(max int) error {
	for len(s.buf) < max {
		rec, err := s.readRecord()
		if errors.Is(err, io.EOF) {
			s.done = true
			break
		}
		if err != nil {
			return err
		}
		s.buf = append(s.buf, rec)
	}
	s.kinds = make([]Kind, len(s.names))
	for c := range s.names {
		kind := KindUint
		for _, rec := range s.buf {
			if _, err := strconv.ParseUint(rec[c], 10, 64); err != nil {
				kind = KindString
				break
			}
		}
		s.kinds[c] = kind
	}
	return nil
}

// Next implements Source.
func (s *csvSource) Next(max int) (*Batch, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	fail := func(err error) (*Batch, error) {
		s.failed = err
		return nil, err
	}
	if max <= 0 {
		max = 4096
	}
	if s.names == nil {
		if err := s.header(); err != nil {
			return fail(err)
		}
	}
	if s.kinds == nil {
		if err := s.sniff(max); err != nil {
			return fail(err)
		}
	}
	rows := s.buf
	s.buf = nil
	for !s.done && len(rows) < max {
		rec, err := s.readRecord()
		if errors.Is(err, io.EOF) {
			s.done = true
			break
		}
		if err != nil {
			return fail(err)
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		return nil, io.EOF
	}
	b := &Batch{Nums: make(map[string][]uint64), Strs: make(map[string][]string)}
	for c, name := range s.names {
		if s.kinds[c] == KindString {
			vals := make([]string, len(rows))
			for i, rec := range rows {
				vals[i] = rec[c]
			}
			b.Strs[name] = vals
			continue
		}
		vals := make([]uint64, len(rows))
		for i, rec := range rows {
			v, err := strconv.ParseUint(rec[c], 10, 64)
			if err != nil {
				return fail(badSchema("csv: column %q sniffed numeric but row has %q", name, rec[c]))
			}
			vals[i] = v
		}
		b.Nums[name] = vals
	}
	return b, nil
}
