package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// forBPCodec implements the cascade of frame-of-reference coding (logical
// level) with block-wise binary packing (physical level): the paper's
// FOR+SIMD-BP512. Each block stores its minimum as the reference and packs
// the offsets, which is the format of choice for narrow ranges of huge
// values (column C3).
//
// Block layout: [ref:1 word][bits:1 word][payload: 8*bits words].
type forBPCodec struct{}

func init() { register(forBPCodec{}) }

func (forBPCodec) Kind() columns.Kind { return columns.ForBP }
func (forBPCodec) BlockLenHint() int  { return BlockLen }

func appendForBPBlock(words []uint64, blk []uint64, scratch []uint64) []uint64 {
	ref := blk[0]
	for _, v := range blk[1:] {
		if v < ref {
			ref = v
		}
	}
	var acc uint64
	for i, v := range blk {
		scratch[i] = v - ref
		acc |= v - ref
	}
	bits := bitutil.EffectiveBits(acc)
	words = append(words, ref, uint64(bits))
	off := len(words)
	words = append(words, make([]uint64, payloadWords(bits))...)
	bitutil.Pack(words[off:], scratch[:len(blk)], bits)
	return words
}

func decodeForBPBlock(words []uint64, w int, dst []uint64) (int, error) {
	if w+2 > len(words) {
		return 0, fmt.Errorf("%w: FOR BP block header beyond buffer", ErrCorrupt)
	}
	ref := words[w]
	bits := uint(words[w+1])
	if bits > 64 {
		return 0, fmt.Errorf("%w: FOR BP block width %d", ErrCorrupt, bits)
	}
	w += 2
	pw := payloadWords(bits)
	if w+pw > len(words) {
		return 0, fmt.Errorf("%w: FOR BP block payload beyond buffer", ErrCorrupt)
	}
	bitutil.Unpack(dst[:BlockLen], words[w:w+pw], bits)
	for i := 0; i < BlockLen; i++ {
		dst[i] += ref
	}
	return w + pw, nil
}

func (forBPCodec) Compress(src []uint64, _ columns.FormatDesc) (*columns.Column, error) {
	nb := len(src) / BlockLen
	mainElems := nb * BlockLen
	words := make([]uint64, 0, 2*nb+len(src)/8)
	scratch := make([]uint64, BlockLen)
	for b := 0; b < nb; b++ {
		words = appendForBPBlock(words, src[b*BlockLen:(b+1)*BlockLen], scratch)
	}
	mainWords := len(words)
	words = append(words, src[mainElems:]...)
	return columns.New(columns.ForBPDesc, len(src), mainElems, mainWords, words)
}

func (forBPCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	if err := validateBlocked(col, "FOR BP"); err != nil {
		return err
	}
	words := col.MainWords()
	w := 0
	var err error
	for e := 0; e < col.MainElems(); e += BlockLen {
		if w, err = decodeForBPBlock(words, w, dst[e:]); err != nil {
			return blockContext(err, e, col.N())
		}
	}
	copy(dst[col.MainElems():], col.Remainder())
	return nil
}

func (forBPCodec) NewReader(col *columns.Column) Reader {
	return &forBPReader{col: col}
}

func (forBPCodec) NewWriter(_ columns.FormatDesc, sizeHint int) Writer {
	return &forBPWriter{
		words:   make([]uint64, 0, sizeHint/8),
		pending: make([]uint64, 0, BlockLen),
		scratch: make([]uint64, BlockLen),
	}
}

type forBPReader struct {
	col  *columns.Column
	w    int
	elem int
}

func (r *forBPReader) Read(dst []uint64) (int, error) {
	if err := validateBlocked(r.col, "FOR BP"); err != nil {
		return 0, err
	}
	k := 0
	words := r.col.MainWords()
	for r.elem < r.col.MainElems() {
		if len(dst)-k < BlockLen {
			if k == 0 {
				return 0, ErrSmallBuffer
			}
			return k, nil
		}
		w, err := decodeForBPBlock(words, r.w, dst[k:])
		if err != nil {
			return k, blockContext(err, r.elem, r.col.N())
		}
		r.w = w
		r.elem += BlockLen
		k += BlockLen
	}
	rem := r.col.Remainder()
	off := r.elem - r.col.MainElems()
	c := copy(dst[k:], rem[off:])
	r.elem += c
	return k + c, nil
}

type forBPWriter struct {
	words   []uint64
	pending []uint64
	scratch []uint64
	n       int
	closed  bool
}

func (w *forBPWriter) Write(vals []uint64) error {
	w.n += len(vals)
	if len(w.pending) == 0 {
		for len(vals) >= BlockLen {
			w.words = appendForBPBlock(w.words, vals[:BlockLen], w.scratch)
			vals = vals[BlockLen:]
		}
	}
	w.pending = append(w.pending, vals...)
	for len(w.pending) >= BlockLen {
		w.words = appendForBPBlock(w.words, w.pending[:BlockLen], w.scratch)
		rest := copy(w.pending, w.pending[BlockLen:])
		w.pending = w.pending[:rest]
	}
	return nil
}

func (w *forBPWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	mainWords := len(w.words)
	words := append(w.words, w.pending...)
	return columns.New(columns.ForBPDesc, w.n, w.n-len(w.pending), mainWords, words)
}
