package formats

import (
	"math/rand"
	"testing"

	"morphstore/internal/columns"
)

// sectionTestValues generates a deterministic value mix that every format
// represents: small values with occasional outliers, plus sorted stretches.
func sectionTestValues(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, n)
	for i := range vals {
		switch {
		case i%97 == 0:
			vals[i] = uint64(rng.Intn(1 << 30))
		case i%5 == 0:
			vals[i] = uint64(i)
		default:
			vals[i] = uint64(rng.Intn(1024))
		}
	}
	return vals
}

func TestSplitColumnCoversColumn(t *testing.T) {
	n := 13*BlockLen + 123 // deliberately not block-aligned
	vals := sectionTestValues(n)
	for _, desc := range AllDescs() {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		for p := 1; p <= 9; p++ {
			parts := SplitColumn(col, p)
			if desc.Kind == columns.RLE {
				if parts != nil {
					t.Fatalf("RLE must not be partitionable, got %v", parts)
				}
				continue
			}
			if p <= 1 {
				if parts != nil {
					t.Fatalf("%v: p=1 must yield nil, got %v", desc, parts)
				}
				continue
			}
			if parts == nil {
				t.Fatalf("%v: p=%d yielded no partitions for n=%d", desc, p, n)
			}
			for _, pt := range parts[:len(parts)-1] {
				if pt.Count < MinMorsel {
					t.Fatalf("%v p=%d: morsel %v below minimum %d", desc, p, pt, MinMorsel)
				}
			}
			align := PartitionAlign(desc.Kind)
			next := 0
			for _, pt := range parts {
				if pt.Start != next {
					t.Fatalf("%v p=%d: gap at %d (partition starts at %d)", desc, p, next, pt.Start)
				}
				if pt.Start%align != 0 {
					t.Fatalf("%v p=%d: start %d not aligned to %d", desc, p, pt.Start, align)
				}
				if pt.Count <= 0 {
					t.Fatalf("%v p=%d: empty partition at %d", desc, p, pt.Start)
				}
				next = pt.Start + pt.Count
			}
			if next != n {
				t.Fatalf("%v p=%d: partitions cover %d of %d elements", desc, p, next, n)
			}
			if len(parts) > p {
				t.Fatalf("%v p=%d: got %d partitions", desc, p, len(parts))
			}
		}
	}
}

// TestSplitColumnsAligned checks that the shared boundaries of a dual split
// respect both formats' alignments, cover the columns exactly, and that
// non-partitionable or mismatched pairs refuse to split.
func TestSplitColumnsAligned(t *testing.T) {
	n := 13*BlockLen + 123
	vals := sectionTestValues(n)
	for _, descA := range AllDescs() {
		a, err := Compress(vals, descA)
		if err != nil {
			t.Fatalf("%v: %v", descA, err)
		}
		for _, descB := range AllDescs() {
			b, err := Compress(vals, descB)
			if err != nil {
				t.Fatalf("%v: %v", descB, err)
			}
			for _, p := range []int{2, 3, 8, n/BlockLen + 2} {
				parts := SplitColumnsAligned(a, b, p)
				if !CanPartition(descA.Kind) || !CanPartition(descB.Kind) {
					if parts != nil {
						t.Fatalf("%v+%v: non-partitionable pair split into %v", descA, descB, parts)
					}
					continue
				}
				if parts == nil {
					t.Fatalf("%v+%v p=%d: no partitions for n=%d", descA, descB, p, n)
				}
				alignA := PartitionAlign(descA.Kind)
				alignB := PartitionAlign(descB.Kind)
				next := 0
				for _, pt := range parts {
					if pt.Start != next {
						t.Fatalf("%v+%v p=%d: gap at %d", descA, descB, p, next)
					}
					if pt.Start%alignA != 0 || pt.Start%alignB != 0 {
						t.Fatalf("%v+%v p=%d: start %d not aligned to %d/%d",
							descA, descB, p, pt.Start, alignA, alignB)
					}
					next = pt.Start + pt.Count
				}
				if next != n {
					t.Fatalf("%v+%v p=%d: partitions cover %d of %d", descA, descB, p, next, n)
				}
			}
		}
	}
	// Length mismatch must refuse to split.
	short, err := Compress(vals[:n-1], columns.UncomprDesc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compress(vals, columns.UncomprDesc)
	if err != nil {
		t.Fatal(err)
	}
	if parts := SplitColumnsAligned(full, short, 4); parts != nil {
		t.Fatalf("mismatched lengths split into %v", parts)
	}
}

func TestSectionReaderMatchesFullDecode(t *testing.T) {
	n := 15*BlockLen + 301
	vals := sectionTestValues(n)
	for _, desc := range AllDescs() {
		if !CanPartition(desc.Kind) {
			continue
		}
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		for _, p := range []int{2, 3, 8} {
			parts := SplitColumn(col, p)
			for _, pt := range parts {
				r, err := NewSectionReader(col, pt.Start, pt.Count)
				if err != nil {
					t.Fatalf("%v p=%d section %v: %v", desc, p, pt, err)
				}
				got := make([]uint64, 0, pt.Count)
				buf := make([]uint64, BufferLen)
				for {
					k, err := r.Read(buf)
					if err != nil {
						t.Fatalf("%v p=%d section %v: %v", desc, p, pt, err)
					}
					if k == 0 {
						break
					}
					got = append(got, buf[:k]...)
				}
				want := vals[pt.Start : pt.Start+pt.Count]
				if len(got) != len(want) {
					t.Fatalf("%v p=%d section %v: got %d elements, want %d", desc, p, pt, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v p=%d section %v: element %d = %d, want %d", desc, p, pt, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSectionReaderRejectsMisuse(t *testing.T) {
	vals := sectionTestValues(3 * BlockLen)
	dyn, err := Compress(vals, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSectionReader(dyn, 5, 100); err == nil {
		t.Fatal("unaligned start must be rejected")
	}
	if _, err := NewSectionReader(dyn, 0, len(vals)+1); err == nil {
		t.Fatal("out-of-range section must be rejected")
	}
	rle, err := Compress(vals, columns.RLEDesc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSectionReader(rle, 0, len(vals)); err == nil {
		t.Fatal("RLE section read must be rejected")
	}
}
