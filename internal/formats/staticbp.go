package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// staticBPCodec implements static bit packing: every element of the column
// is stored with one fixed bit width, tightly packed across word boundaries.
// This is the paper's "static BP" — the format family that also covers the
// classic byte-aligned SQL integer types (widths 8/16/32/64) and the only
// compressed format with random read access (§4.2).
//
// Layout: PackedWords(n, bits) words of LSB-first packed values. The whole
// column is the main part; there is never a remainder.
type staticBPCodec struct{}

func init() { register(staticBPCodec{}) }

func (staticBPCodec) Kind() columns.Kind { return columns.StaticBP }
func (staticBPCodec) BlockLenHint() int  { return 1 }

func (staticBPCodec) Compress(src []uint64, desc columns.FormatDesc) (*columns.Column, error) {
	bits := uint(desc.Bits)
	if bits == 0 {
		bits = bitutil.MaxBits(src)
	} else if b := bitutil.MaxBits(src); b > bits {
		return nil, fmt.Errorf("formats: static BP width %d cannot hold %d-bit values", bits, b)
	}
	words := make([]uint64, bitutil.PackedWords(len(src), bits))
	bitutil.Pack(words, src, bits)
	return columns.New(columns.FormatDesc{Kind: columns.StaticBP, Bits: uint8(bits)},
		len(src), len(src), len(words), words)
}

// validateStaticBP bounds-checks a static BP column before any packed read:
// the width must be a representable bit count and the word buffer must cover
// every packed element, so a truncated or mislabeled column surfaces as
// ErrCorrupt instead of an out-of-bounds slice access.
func validateStaticBP(col *columns.Column) error {
	bits := uint(col.Desc().Bits)
	if bits > 64 {
		return fmt.Errorf("%w: static BP width %d (column of %d elements)", ErrCorrupt, bits, col.N())
	}
	if want := bitutil.PackedWords(col.N(), bits); len(col.MainWords()) < want {
		return fmt.Errorf("%w: static BP column of %d elements at width %d has %d words, want %d",
			ErrCorrupt, col.N(), bits, len(col.MainWords()), want)
	}
	return nil
}

func (staticBPCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	if err := validateStaticBP(col); err != nil {
		return err
	}
	bitutil.Unpack(dst, col.MainWords(), uint(col.Desc().Bits))
	return nil
}

func (staticBPCodec) NewReader(col *columns.Column) Reader {
	return &staticBPReader{
		words: col.MainWords(),
		n:     col.N(),
		bits:  uint(col.Desc().Bits),
		err:   validateStaticBP(col),
	}
}

func (staticBPCodec) NewWriter(desc columns.FormatDesc, sizeHint int) Writer {
	w := &staticBPWriter{bits: uint(desc.Bits)}
	if w.bits == 0 {
		// Auto width: static BP needs the global maximum before packing, so
		// the writer recompresses at column granularity (buffers all input).
		w.pending = make([]uint64, 0, sizeHint)
	} else {
		w.words = make([]uint64, 0, bitutil.PackedWords(sizeHint, w.bits))
	}
	return w
}

// staticBPReader decompresses sequentially, keeping its bit cursor
// word-aligned by always consuming multiples of 64 elements except at the
// very end (64 values of width b occupy exactly b words).
type staticBPReader struct {
	words []uint64
	n     int
	bits  uint
	pos   int   // elements consumed
	err   error // validation failure, reported on first Read
}

func (r *staticBPReader) Read(dst []uint64) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	remain := r.n - r.pos
	if remain <= 0 {
		return 0, nil
	}
	k := len(dst)
	if k > remain {
		k = remain
	}
	if k >= 64 && k < remain {
		k &^= 63 // stay word-aligned while more full groups follow
	}
	if r.bits == 0 {
		for i := 0; i < k; i++ {
			dst[i] = 0
		}
		r.pos += k
		return k, nil
	}
	startBit := uint64(r.pos) * uint64(r.bits)
	if startBit%64 == 0 {
		bitutil.Unpack(dst[:k], r.words[startBit>>6:], r.bits)
	} else {
		for i := 0; i < k; i++ {
			dst[i] = bitutil.Get(r.words, r.pos+i, r.bits)
		}
	}
	r.pos += k
	return k, nil
}

// staticBPWriter packs incrementally when the width is preset (group-wise
// through the unrolled kernels, staging 64 values at a time), or buffers the
// whole column and packs on Close when the width must be derived.
type staticBPWriter struct {
	bits    uint
	pending []uint64 // auto-width mode: all values so far
	words   []uint64 // preset-width mode: packed output
	group   [64]uint64
	inGroup int
	n       int
	closed  bool
}

func (w *staticBPWriter) Write(vals []uint64) error {
	if w.bits == 0 {
		w.pending = append(w.pending, vals...)
		w.n += len(vals)
		return nil
	}
	w.n += len(vals)
	var acc uint64
	for len(vals) > 0 {
		c := copy(w.group[w.inGroup:], vals)
		for _, v := range vals[:c] {
			acc |= v
		}
		w.inGroup += c
		vals = vals[c:]
		if w.inGroup == 64 {
			off := len(w.words)
			w.words = append(w.words, make([]uint64, w.bits)...)
			bitutil.Pack(w.words[off:], w.group[:], w.bits)
			w.inGroup = 0
		}
	}
	if acc&^bitutil.Mask(w.bits) != 0 {
		return fmt.Errorf("formats: value exceeds static BP width %d", w.bits)
	}
	return nil
}

func (w *staticBPWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	if w.bits == 0 {
		c, err := staticBPCodec{}.Compress(w.pending, columns.StaticBPDesc(0))
		w.pending = nil
		return c, err
	}
	if w.inGroup > 0 {
		// Pack the final partial group at the exact tail length.
		off := len(w.words)
		w.words = append(w.words, make([]uint64, bitutil.PackedWords(w.inGroup, w.bits))...)
		bitutil.Pack(w.words[off:], w.group[:w.inGroup], w.bits)
	}
	if want := bitutil.PackedWords(w.n, w.bits); len(w.words) != want {
		return nil, fmt.Errorf("formats: static BP writer produced %d words, want %d", len(w.words), want)
	}
	return columns.New(columns.FormatDesc{Kind: columns.StaticBP, Bits: uint8(w.bits)},
		w.n, w.n, len(w.words), w.words)
}

// StaticBPRandomGet returns element i of a static-BP column. It is the
// random-read-access primitive of §4.2 and panics only on out-of-range i
// (like slice indexing).
func StaticBPRandomGet(col *columns.Column, i int) uint64 {
	return bitutil.Get(col.MainWords(), i, uint(col.Desc().Bits))
}
