package formats

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"morphstore/internal/columns"
)

// testData returns labelled value sequences covering the data shapes the
// formats are sensitive to.
func testData(n int, seed int64) map[string][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	d := make(map[string][]uint64)

	small := make([]uint64, n)
	for i := range small {
		small[i] = uint64(rng.Intn(64))
	}
	d["small_uniform"] = small

	outliers := make([]uint64, n)
	for i := range outliers {
		if i%1997 == 1000 { // deterministic rare huge outliers, ~0.05%
			outliers[i] = 1<<63 - 1
		} else {
			outliers[i] = uint64(rng.Intn(64))
		}
	}
	d["outliers"] = outliers

	huge := make([]uint64, n)
	for i := range huge {
		huge[i] = 1<<62 + uint64(rng.Intn(64))
	}
	d["huge_narrow"] = huge

	sorted := make([]uint64, n)
	acc := uint64(1) << 47
	for i := range sorted {
		acc += uint64(rng.Intn(220))
		sorted[i] = acc
	}
	d["sorted"] = sorted

	runs := make([]uint64, n)
	v := uint64(5)
	for i := range runs {
		if rng.Float64() < 0.02 {
			v = uint64(rng.Intn(100))
		}
		runs[i] = v
	}
	d["runs"] = runs

	zero := make([]uint64, n)
	d["zeros"] = zero

	full := make([]uint64, n)
	for i := range full {
		full[i] = rng.Uint64()
	}
	d["full_width"] = full

	desc := make([]uint64, n)
	for i := range desc {
		desc[i] = uint64(n-i) * 1000
	}
	d["descending"] = desc

	return d
}

func allDescsWithParams() []columns.FormatDesc {
	return append(AllDescs(), columns.StaticBPDesc(64))
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 511, 512, 513, 1024, 2048, 5000} {
		for name, vals := range testData(n, int64(n)+1) {
			for _, desc := range AllDescs() {
				col, err := Compress(vals, desc)
				if err != nil {
					t.Fatalf("n=%d %s %v: compress: %v", n, name, desc, err)
				}
				if err := col.Validate(); err != nil {
					t.Fatalf("n=%d %s %v: %v", n, name, desc, err)
				}
				if col.N() != n {
					t.Fatalf("n=%d %s %v: col.N=%d", n, name, desc, col.N())
				}
				got, err := Decompress(col)
				if err != nil {
					t.Fatalf("n=%d %s %v: decompress: %v", n, name, desc, err)
				}
				for i := range vals {
					if got[i] != vals[i] {
						t.Fatalf("n=%d %s %v: elem %d = %d, want %d", n, name, desc, i, got[i], vals[i])
					}
				}
			}
		}
	}
}

func TestReaderMatchesDecompress(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 1000, 4096, 10000} {
		for name, vals := range testData(n, int64(n)+2) {
			for _, desc := range AllDescs() {
				col, err := Compress(vals, desc)
				if err != nil {
					t.Fatalf("%s %v: %v", name, desc, err)
				}
				r, err := NewReader(col)
				if err != nil {
					t.Fatalf("%s %v: %v", name, desc, err)
				}
				buf := make([]uint64, BufferLen)
				var got []uint64
				for {
					k, err := r.Read(buf)
					if err != nil {
						t.Fatalf("%s %v: read: %v", name, desc, err)
					}
					if k == 0 {
						break
					}
					got = append(got, buf[:k]...)
				}
				if len(got) != n {
					t.Fatalf("%s %v: reader produced %d elems, want %d", name, desc, len(got), n)
				}
				for i := range vals {
					if got[i] != vals[i] {
						t.Fatalf("%s %v: elem %d = %d, want %d", name, desc, i, got[i], vals[i])
					}
				}
			}
		}
	}
}

func TestWriterMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{0, 1, 512, 777, 4096, 9999} {
		for name, vals := range testData(n, int64(n)+3) {
			for _, desc := range AllDescs() {
				w, err := NewWriter(desc, n)
				if err != nil {
					t.Fatalf("%s %v: %v", name, desc, err)
				}
				// Feed in randomly sized chunks to exercise buffering.
				i := 0
				for i < n {
					c := 1 + rng.Intn(700)
					if i+c > n {
						c = n - i
					}
					if err := w.Write(vals[i : i+c]); err != nil {
						t.Fatalf("%s %v: write: %v", name, desc, err)
					}
					i += c
				}
				col, err := w.Close()
				if err != nil {
					t.Fatalf("%s %v: close: %v", name, desc, err)
				}
				if err := col.Validate(); err != nil {
					t.Fatalf("%s %v: %v", name, desc, err)
				}
				got, err := Decompress(col)
				if err != nil {
					t.Fatalf("%s %v: decompress: %v", name, desc, err)
				}
				for j := range vals {
					if got[j] != vals[j] {
						t.Fatalf("%s %v: elem %d = %d, want %d", name, desc, j, got[j], vals[j])
					}
				}
				// Writer output must match whole-column compression size.
				ref, err := Compress(vals, desc)
				if err != nil {
					t.Fatal(err)
				}
				if col.PhysicalBytes() != ref.PhysicalBytes() {
					t.Errorf("%s %v: writer size %d != compress size %d",
						name, desc, col.PhysicalBytes(), ref.PhysicalBytes())
				}
			}
		}
	}
}

func TestDoubleCloseFails(t *testing.T) {
	for _, desc := range AllDescs() {
		w, err := NewWriter(desc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write([]uint64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Close(); err != nil {
			t.Fatalf("%v: first close: %v", desc, err)
		}
		if _, err := w.Close(); err == nil {
			t.Errorf("%v: second close should fail", desc)
		}
	}
}

func TestRemainderSplit(t *testing.T) {
	vals := make([]uint64, 1200) // 2 full blocks + 176 remainder
	for i := range vals {
		vals[i] = uint64(i % 50)
	}
	for _, desc := range []columns.FormatDesc{columns.DynBPDesc, columns.DeltaBPDesc, columns.ForBPDesc} {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		if col.MainElems() != 1024 {
			t.Errorf("%v: mainElems = %d, want 1024", desc, col.MainElems())
		}
		if got := len(col.Remainder()); got != 176 {
			t.Errorf("%v: remainder = %d, want 176", desc, got)
		}
		for i, v := range col.Remainder() {
			if v != vals[1024+i] {
				t.Errorf("%v: remainder elem %d = %d, want %d", desc, i, v, vals[1024+i])
			}
		}
	}
	// Formats that can represent any n must not produce a remainder.
	for _, desc := range []columns.FormatDesc{columns.UncomprDesc, columns.StaticBPDesc(0), columns.RLEDesc} {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		if col.MainElems() != len(vals) {
			t.Errorf("%v: mainElems = %d, want %d", desc, col.MainElems(), len(vals))
		}
	}
}

func TestCompressionEffectiveness(t *testing.T) {
	n := 8192
	data := testData(n, 77)

	// Small uniform values: static BP must compress to ~6/64 ≈ 10%.
	col, _ := Compress(data["small_uniform"], columns.StaticBPDesc(0))
	if r := col.CompressionRate(); r > 0.12 {
		t.Errorf("static BP on small uniform: rate %.3f, want <= 0.12", r)
	}

	// Outliers kill static BP but not DynBP.
	colS, _ := Compress(data["outliers"], columns.StaticBPDesc(0))
	colD, _ := Compress(data["outliers"], columns.DynBPDesc)
	if colD.PhysicalBytes() >= colS.PhysicalBytes() {
		t.Errorf("DynBP (%d B) should beat static BP (%d B) on outlier data",
			colD.PhysicalBytes(), colS.PhysicalBytes())
	}

	// Huge narrow range: FOR+BP must beat DynBP.
	colF, _ := Compress(data["huge_narrow"], columns.ForBPDesc)
	colD2, _ := Compress(data["huge_narrow"], columns.DynBPDesc)
	if colF.PhysicalBytes() >= colD2.PhysicalBytes() {
		t.Errorf("FOR+BP (%d B) should beat DynBP (%d B) on huge narrow data",
			colF.PhysicalBytes(), colD2.PhysicalBytes())
	}

	// Sorted: DELTA+BP must beat FOR+BP and static BP.
	colDe, _ := Compress(data["sorted"], columns.DeltaBPDesc)
	colF2, _ := Compress(data["sorted"], columns.ForBPDesc)
	if colDe.PhysicalBytes() >= colF2.PhysicalBytes() {
		t.Errorf("DELTA+BP (%d B) should beat FOR+BP (%d B) on sorted data",
			colDe.PhysicalBytes(), colF2.PhysicalBytes())
	}

	// Long runs: RLE must dominate everything.
	colR, _ := Compress(data["runs"], columns.RLEDesc)
	for _, desc := range PaperDescs() {
		other, _ := Compress(data["runs"], desc)
		if colR.PhysicalBytes() >= other.PhysicalBytes() {
			t.Errorf("RLE (%d B) should beat %v (%d B) on run data",
				colR.PhysicalBytes(), desc, other.PhysicalBytes())
		}
	}
}

func TestStaticBPPresetWidthRejectsWideValues(t *testing.T) {
	if _, err := Compress([]uint64{1, 2, 1 << 40}, columns.StaticBPDesc(8)); err == nil {
		t.Error("compress should reject values wider than preset width")
	}
	w, _ := NewWriter(columns.StaticBPDesc(8), 0)
	if err := w.Write([]uint64{300}); err == nil {
		t.Error("writer should reject values wider than preset width")
	}
}

func TestRandomAccess(t *testing.T) {
	vals := make([]uint64, 3000)
	rng := rand.New(rand.NewSource(21))
	for i := range vals {
		vals[i] = uint64(rng.Intn(100000))
	}
	for _, desc := range RandomAccessDescs() {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RandomAccess(col)
		if err != nil {
			t.Fatalf("%v: %v", desc, err)
		}
		for trial := 0; trial < 200; trial++ {
			i := rng.Intn(len(vals))
			if got := ra.Get(i); got != vals[i] {
				t.Fatalf("%v: Get(%d) = %d, want %d", desc, i, got, vals[i])
			}
		}
		idx := []uint64{0, 17, 2999, 512, 7}
		dst := make([]uint64, len(idx))
		ra.Gather(dst, idx)
		for j, ix := range idx {
			if dst[j] != vals[ix] {
				t.Fatalf("%v: Gather[%d] = %d, want %d", desc, j, dst[j], vals[ix])
			}
		}
	}
	// Other formats must refuse.
	for _, desc := range []columns.FormatDesc{columns.DynBPDesc, columns.DeltaBPDesc, columns.ForBPDesc, columns.RLEDesc} {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RandomAccess(col); !errors.Is(err, ErrNoRandomAccess) {
			t.Errorf("%v: want ErrNoRandomAccess, got %v", desc, err)
		}
	}
}

func TestSmallBufferError(t *testing.T) {
	vals := make([]uint64, 2048)
	for _, desc := range []columns.FormatDesc{columns.DynBPDesc, columns.DeltaBPDesc, columns.ForBPDesc} {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(col)
		buf := make([]uint64, 100)
		if _, err := r.Read(buf); !errors.Is(err, ErrSmallBuffer) {
			t.Errorf("%v: want ErrSmallBuffer, got %v", desc, err)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(i)
	}
	for _, desc := range []columns.FormatDesc{columns.DynBPDesc, columns.DeltaBPDesc, columns.ForBPDesc} {
		col, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		// Smash the first block header's bit width.
		col.Words()[headerBitsOffset(desc)] = 9999
		if _, err := Decompress(col); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%v: want ErrCorrupt, got %v", desc, err)
		}
		r, _ := NewReader(col)
		buf := make([]uint64, BufferLen)
		if _, err := r.Read(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%v reader: want ErrCorrupt, got %v", desc, err)
		}
	}
	// RLE with a zero-length run.
	col, err := Compress(vals[:4], columns.RLEDesc)
	if err != nil {
		t.Fatal(err)
	}
	col.Words()[1] = 0
	if _, err := Decompress(col); !errors.Is(err, ErrCorrupt) {
		t.Errorf("rle: want ErrCorrupt, got %v", err)
	}
}

func headerBitsOffset(desc columns.FormatDesc) int {
	if desc.Kind == columns.DynBP {
		return 0
	}
	return 1 // DeltaBP and ForBP: [base/ref][bits]
}

func TestRLERuns(t *testing.T) {
	vals := []uint64{7, 7, 7, 3, 3, 9}
	col, err := Compress(vals, columns.RLEDesc)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := RLERuns(col)
	if err != nil {
		t.Fatal(err)
	}
	want := []Run{{7, 3}, {3, 2}, {9, 1}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
	u, _ := Compress(vals, columns.UncomprDesc)
	if _, err := RLERuns(u); err == nil {
		t.Error("RLERuns on non-RLE column should fail")
	}
}

func TestUncompressedView(t *testing.T) {
	vals := []uint64{1, 2, 3, 4}
	col, _ := Compress(vals, columns.UncomprDesc)
	r, _ := NewReader(col)
	vv, ok := r.(ValueViewer)
	if !ok {
		t.Fatal("uncompressed reader must implement ValueViewer")
	}
	view, ok := vv.View()
	if !ok || len(view) != 4 {
		t.Fatalf("View = %v, %v", view, ok)
	}
	// After viewing, the reader is exhausted.
	buf := make([]uint64, 8)
	if k, _ := r.Read(buf); k != 0 {
		t.Errorf("reader should be exhausted after View, got %d", k)
	}
}

// Property: every format round-trips arbitrary data, via both the whole
// column path and the reader path.
func TestRoundTripProperty(t *testing.T) {
	for _, desc := range AllDescs() {
		desc := desc
		f := func(vals []uint64) bool {
			col, err := Compress(vals, desc)
			if err != nil {
				return false
			}
			got, err := Decompress(col)
			if err != nil {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", desc, err)
		}
	}
}

// Property: writer and whole-column compressor agree byte for byte.
func TestWriterCompressAgreementProperty(t *testing.T) {
	for _, desc := range AllDescs() {
		desc := desc
		f := func(vals []uint64, chunk8 uint8) bool {
			chunk := int(chunk8)%600 + 1
			w, err := NewWriter(desc, len(vals))
			if err != nil {
				return false
			}
			for i := 0; i < len(vals); i += chunk {
				end := i + chunk
				if end > len(vals) {
					end = len(vals)
				}
				if err := w.Write(vals[i:end]); err != nil {
					return false
				}
			}
			got, err := w.Close()
			if err != nil {
				return false
			}
			want, err := Compress(vals, desc)
			if err != nil {
				return false
			}
			if got.N() != want.N() || len(got.Words()) != len(want.Words()) {
				return false
			}
			for i, wd := range want.Words() {
				if got.Words()[i] != wd {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v: %v", desc, err)
		}
	}
}

func TestGetUnknownKind(t *testing.T) {
	if _, err := Get(columns.Kind(200)); err == nil {
		t.Error("unknown kind should fail")
	}
}
