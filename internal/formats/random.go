package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// RandomAccessor provides random read access to a column's elements.
// Following the paper (§4.2), random access is deliberately restricted to
// the uncompressed format and static BP, where a logical position maps to a
// physical bit address in a straightforward way; plans that need random
// access to other formats must morph first (the on-the-fly-morphing degree).
type RandomAccessor interface {
	// Get returns the element at logical position i.
	Get(i int) uint64
	// Gather fills dst[j] with the element at position idx[j] for all j.
	Gather(dst []uint64, idx []uint64)
}

// ErrNoRandomAccess reports a random-access request on a format without
// random-access support.
var ErrNoRandomAccess = fmt.Errorf("formats: format supports no random access")

// RandomAccess returns a random accessor for col, or ErrNoRandomAccess for
// formats other than Uncompressed and StaticBP.
func RandomAccess(col *columns.Column) (RandomAccessor, error) {
	switch col.Desc().Kind {
	case columns.Uncompressed:
		return uncomprAccessor(col.Words()), nil
	case columns.StaticBP:
		if err := validateStaticBP(col); err != nil {
			return nil, err
		}
		return &staticBPAccessor{
			words: col.MainWords(),
			bits:  uint(col.Desc().Bits),
			n:     col.N(),
			gid:   -1,
		}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrNoRandomAccess, col.Desc())
	}
}

// HasRandomAccess reports whether the format kind supports random access.
func HasRandomAccess(kind columns.Kind) bool {
	return kind == columns.Uncompressed || kind == columns.StaticBP
}

type uncomprAccessor []uint64

func (a uncomprAccessor) Get(i int) uint64 { return a[i] }

func (a uncomprAccessor) Gather(dst []uint64, idx []uint64) {
	for j, ix := range idx {
		dst[j] = a[ix]
	}
}

// staticBPAccessor provides random access into packed words. Gather caches
// the most recently decoded 64-value group: position lists produced by
// selections are sorted, so consecutive accesses overwhelmingly hit the
// cached group and gathering approaches sequential decode speed, while
// arbitrary access orders remain correct (each miss decodes one group).
type staticBPAccessor struct {
	words []uint64
	bits  uint
	n     int
	group [64]uint64
	gid   int
}

func (a *staticBPAccessor) Get(i int) uint64 {
	return bitutil.Get(a.words, i, a.bits)
}

func (a *staticBPAccessor) Gather(dst []uint64, idx []uint64) {
	if a.bits == 0 {
		for j := range idx {
			dst[j] = 0
		}
		return
	}
	fullGroups := a.n >> 6
	for j, ix := range idx {
		g := int(ix >> 6)
		if g != a.gid {
			if g >= fullGroups {
				// Partial tail group: decode element-wise.
				dst[j] = bitutil.Get(a.words, int(ix), a.bits)
				continue
			}
			bitutil.UnpackGroup(&a.group, a.words, g, a.bits)
			a.gid = g
		}
		dst[j] = a.group[ix&63]
	}
}
