package formats

import (
	"fmt"

	"morphstore/internal/columns"
)

// This file implements the column-slicing half of MorphStore-Go's
// morsel-parallel processing: a column is split into contiguous,
// independently decodable element ranges ("morsels"), and a section reader
// decompresses exactly one such range. The block-based formats make this
// natural — every DynBP/DeltaBP/ForBP block decodes on its own (DeltaBP
// blocks carry their own base value), static BP maps positions to bit
// addresses directly, and the uncompressed format is a plain slice. RLE is
// the exception: a run boundary is only discoverable by scanning every
// preceding run, so RLE columns report themselves non-partitionable and the
// parallel operator drivers fall back to sequential execution.

// ErrNoPartition reports a partitioned-read request on a format that cannot
// be sliced into independently decodable sections.
var ErrNoPartition = fmt.Errorf("formats: format cannot be partitioned")

// Partition is one contiguous element range of a column: the half-open
// logical range [Start, Start+Count).
type Partition struct {
	Start int
	Count int
}

// PartitionAlign returns the element alignment that partition boundaries
// must respect for the format, or 0 if the format cannot be partitioned.
// Block-based formats align to their 512-element block; static BP aligns to
// the 64-value packing group so section readers keep word-aligned cursors.
func PartitionAlign(kind columns.Kind) int {
	switch kind {
	case columns.Uncompressed:
		return 1
	case columns.StaticBP:
		return 64
	case columns.DynBP, columns.DeltaBP, columns.ForBP:
		return BlockLen
	default:
		return 0
	}
}

// CanPartition reports whether columns of this format can be split into
// independently decodable contiguous sections.
func CanPartition(kind columns.Kind) bool { return PartitionAlign(kind) > 0 }

// MinMorsel is the smallest partition worth a worker goroutine: one
// cache-resident buffer of elements. Columns shorter than two morsels are
// not split — goroutine spawn, per-worker staging and stitching would cost
// more than the kernel work they parallelize.
const MinMorsel = BufferLen

// SplitColumn splits col into at most p contiguous partitions whose
// boundaries respect PartitionAlign; every partition except the tail holds
// at least MinMorsel elements (the tail takes whatever remains). It returns
// nil when the format cannot be partitioned or when the column is too small
// to yield more than one aligned morsel — callers treat nil as "process
// sequentially".
func SplitColumn(col *columns.Column, p int) []Partition {
	return splitAligned(col.N(), p, PartitionAlign(col.Desc().Kind))
}

// SplitColumnsAligned splits two equally long columns at one set of shared
// boundaries that respect both formats' partition alignments (the operator
// pairs streamed in lockstep — calc inputs, group-id/value pairs — must cut
// both inputs at identical element offsets). Every alignment is a power of
// two dividing the 512-element block, so the shared alignment is simply the
// larger of the two. It returns nil when either format cannot be partitioned,
// when the lengths differ, or when the columns are too small to split.
func SplitColumnsAligned(a, b *columns.Column, p int) []Partition {
	if a.N() != b.N() {
		return nil
	}
	alignA := PartitionAlign(a.Desc().Kind)
	alignB := PartitionAlign(b.Desc().Kind)
	if alignA == 0 || alignB == 0 {
		return nil
	}
	align := alignA
	if alignB > align {
		align = alignB
	}
	return splitAligned(a.N(), p, align)
}

// morselsPerWorker is the work-queue over-decomposition factor: the morsel
// splits cut a column into up to this many partitions per requested worker,
// so workers claiming morsels dynamically (in chunk-index order) rebalance
// when selectivity skew makes some morsels much cheaper than others, while
// the stitch overhead stays bounded by a small constant per worker.
const morselsPerWorker = 8

// SplitColumnMorsels splits col into work-queue morsels: up to
// morselsPerWorker*p contiguous partitions whose boundaries respect
// PartitionAlign, each at least MinMorsel elements except the tail. Like
// SplitColumn it returns nil when the column cannot or need not be split;
// unlike SplitColumn the partition count intentionally exceeds the worker
// count so a dynamic work queue can rebalance skewed morsel costs.
func SplitColumnMorsels(col *columns.Column, p int) []Partition {
	if p <= 1 {
		return nil
	}
	return SplitColumn(col, p*morselsPerWorker)
}

// SplitColumnsAlignedMorsels is the dual-input form of SplitColumnMorsels:
// one shared set of work-queue morsel boundaries respecting both formats'
// partition alignments (see SplitColumnsAligned).
func SplitColumnsAlignedMorsels(a, b *columns.Column, p int) []Partition {
	if p <= 1 {
		return nil
	}
	return SplitColumnsAligned(a, b, p*morselsPerWorker)
}

// SplitRange cuts the element range [0, n) into at most p contiguous
// partitions on boundaries that are multiples of align, each at least
// MinMorsel elements except the tail; nil when the range is too small to
// split or p <= 1. It is the partitioning primitive behind SplitColumn,
// exported for callers partitioning a logical stream that is not (yet) a
// column — notably the parallel compressed stitch over operator output.
func SplitRange(n, p, align int) []Partition { return splitAligned(n, p, align) }

// splitAligned cuts the element range [0, n) into at most p contiguous
// partitions on boundaries that are multiples of align, each at least
// MinMorsel elements except the tail.
func splitAligned(n, p, align int) []Partition {
	if align == 0 || p <= 1 || n < 2*MinMorsel {
		return nil
	}
	// Evenly sized chunks, rounded up to the alignment granularity and the
	// minimum morsel size.
	chunk := (n + p - 1) / p
	if chunk < MinMorsel {
		chunk = MinMorsel
	}
	chunk = (chunk + align - 1) / align * align
	parts := make([]Partition, 0, p)
	for start := 0; start < n; start += chunk {
		count := chunk
		if start+count > n {
			count = n - start
		}
		parts = append(parts, Partition{Start: start, Count: count})
	}
	if len(parts) <= 1 {
		return nil
	}
	return parts
}

// NewSectionReader returns a sequential Reader over the logical element
// range [start, start+count) of col. start must be a multiple of
// PartitionAlign for the column's format, and for the block-based formats
// start+count must either be block-aligned too or reach the end of the
// column — exactly the boundaries SplitColumn produces.
func NewSectionReader(col *columns.Column, start, count int) (Reader, error) {
	kind := col.Desc().Kind
	align := PartitionAlign(kind)
	if align == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoPartition, col.Desc())
	}
	if start < 0 || count < 0 || start+count > col.N() {
		return nil, fmt.Errorf("formats: section [%d,%d) out of range [0,%d)", start, start+count, col.N())
	}
	if start%align != 0 {
		return nil, fmt.Errorf("formats: section start %d not aligned to %d", start, align)
	}
	switch kind {
	case columns.Uncompressed:
		return &uncomprReader{vals: col.Words()[start : start+count]}, nil
	case columns.StaticBP:
		return &staticBPReader{
			words: col.MainWords(),
			n:     start + count,
			bits:  uint(col.Desc().Bits),
			pos:   start,
		}, nil
	case columns.DynBP:
		w, err := skipBlocks(col, start, dynBPBlockWords)
		if err != nil {
			return nil, err
		}
		return &limitReader{r: &dynBPReader{col: col, w: w, elem: start}, remaining: count}, nil
	case columns.DeltaBP:
		w, err := skipBlocks(col, start, deltaForBPBlockWords)
		if err != nil {
			return nil, err
		}
		return &limitReader{r: &deltaBPReader{col: col, scratch: make([]uint64, BlockLen), w: w, elem: start}, remaining: count}, nil
	case columns.ForBP:
		w, err := skipBlocks(col, start, deltaForBPBlockWords)
		if err != nil {
			return nil, err
		}
		return &limitReader{r: &forBPReader{col: col, w: w, elem: start}, remaining: count}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrNoPartition, col.Desc())
	}
}

// dynBPBlockWords returns the total word count of the DynBP block starting
// at words[w]: a one-word width header plus the packed payload.
func dynBPBlockWords(words []uint64, w int) (int, error) {
	if w >= len(words) {
		return 0, fmt.Errorf("%w: block header beyond buffer", ErrCorrupt)
	}
	bits := uint(words[w])
	if bits > 64 {
		return 0, fmt.Errorf("%w: block width %d", ErrCorrupt, bits)
	}
	return 1 + payloadWords(bits), nil
}

// deltaForBPBlockWords returns the total word count of a DeltaBP/ForBP block
// starting at words[w]: a two-word header (base/ref + width) plus payload.
func deltaForBPBlockWords(words []uint64, w int) (int, error) {
	if w+2 > len(words) {
		return 0, fmt.Errorf("%w: block header beyond buffer", ErrCorrupt)
	}
	bits := uint(words[w+1])
	if bits > 64 {
		return 0, fmt.Errorf("%w: block width %d", ErrCorrupt, bits)
	}
	return 2 + payloadWords(bits), nil
}

// skipBlocks walks the block headers of the compressed main part up to the
// block containing element start and returns its word offset. Only headers
// are touched — no payload is decompressed — so positioning a section reader
// costs O(start/BlockLen) word reads.
func skipBlocks(col *columns.Column, start int, blockWords func([]uint64, int) (int, error)) (int, error) {
	words := col.MainWords()
	w := 0
	limit := start
	if limit > col.MainElems() {
		limit = col.MainElems()
	}
	for e := 0; e < limit; e += BlockLen {
		bw, err := blockWords(words, w)
		if err != nil {
			return 0, err
		}
		w += bw
	}
	return w, nil
}

// limitReader caps an underlying reader at a fixed number of elements. For
// the block-based formats the cap stays a multiple of BlockLen while the
// compressed main part is being consumed (section boundaries are
// block-aligned), so clamping the destination never starves a block decode.
type limitReader struct {
	r         Reader
	remaining int
}

func (l *limitReader) Read(dst []uint64) (int, error) {
	if l.remaining <= 0 {
		return 0, nil
	}
	if len(dst) > l.remaining {
		dst = dst[:l.remaining]
	}
	k, err := l.r.Read(dst)
	l.remaining -= k
	return k, err
}
