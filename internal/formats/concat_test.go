package formats

import (
	"math/rand"
	"testing"

	"morphstore/internal/columns"
)

// concatTestValues mixes narrow values, outliers and runs so every format's
// interesting cases appear: varying DynBP block widths, long and short RLE
// runs, non-monotonic data for the modular delta coding.
func concatTestValues(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	i := 0
	for i < n {
		switch rng.Intn(4) {
		case 0: // run
			v := uint64(rng.Intn(64))
			l := 1 + rng.Intn(300)
			for ; l > 0 && i < n; l-- {
				vals[i] = v
				i++
			}
		case 1: // outlier
			vals[i] = rng.Uint64() >> uint(rng.Intn(40))
			i++
		default: // small value
			vals[i] = uint64(rng.Intn(900))
			i++
		}
	}
	return vals
}

// randomCuts returns sorted split points of [0, n] (possibly producing empty
// parts), aligned to align when align > 1.
func randomCuts(rng *rand.Rand, n, parts, align int) []int {
	cuts := []int{0}
	for i := 1; i < parts; i++ {
		c := rng.Intn(n + 1)
		if align > 1 {
			c = c / align * align
		}
		cuts = append(cuts, c)
	}
	cuts = append(cuts, n)
	for i := 1; i < len(cuts); i++ { // insertion sort, tiny slice
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return cuts
}

func assertColsEqual(t *testing.T, ctx string, want, got *columns.Column) {
	t.Helper()
	if got.Desc() != want.Desc() {
		t.Fatalf("%s: desc %v, want %v", ctx, got.Desc(), want.Desc())
	}
	if got.N() != want.N() || got.MainElems() != want.MainElems() {
		t.Fatalf("%s: extents n=%d/main=%d, want n=%d/main=%d",
			ctx, got.N(), got.MainElems(), want.N(), want.MainElems())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("%s: %d words, want %d", ctx, len(gw), len(ww))
	}
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("%s: word %d = %#x, want %#x", ctx, i, gw[i], ww[i])
		}
	}
}

// concatCase compresses the value segments of one split independently in two
// modes and asserts that ConcatCompressed reassembles the monolithic column
// bit for bit.
func concatCase(t *testing.T, ctx string, desc columns.FormatDesc, vals []uint64, cuts []int) {
	t.Helper()
	whole, err := Compress(vals, desc)
	if err != nil {
		t.Fatalf("%s: compress whole: %v", ctx, err)
	}

	// Mode 1 — independent parts: each segment compressed on its own, as if
	// by workers ignorant of their stream position. Misaligned seams and
	// DeltaBP base-0 first blocks must be fixed up by the concatenation.
	indep := make([]*columns.Column, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		p, err := Compress(vals[cuts[i-1]:cuts[i]], desc)
		if err != nil {
			t.Fatalf("%s: compress part %d: %v", ctx, i, err)
		}
		indep = append(indep, p)
	}
	got, err := ConcatCompressed(desc, indep)
	if err != nil {
		t.Fatalf("%s: concat independent: %v", ctx, err)
	}
	assertColsEqual(t, ctx+"/independent", whole, got)

	// Mode 2 — sectioned parts: each segment written through a section
	// writer seeded with its preceding stream element, the parallel stitch's
	// configuration. Aligned seams then concatenate by pure block copies.
	sect := make([]*columns.Column, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		start := cuts[i-1]
		var prev uint64
		if start > 0 {
			prev = vals[start-1]
		}
		w, err := NewSectionWriter(desc, cuts[i]-start, prev, start > 0)
		if err != nil {
			t.Fatalf("%s: section writer %d: %v", ctx, i, err)
		}
		if err := w.Write(vals[start:cuts[i]]); err != nil {
			t.Fatalf("%s: section write %d: %v", ctx, i, err)
		}
		p, err := w.Close()
		if err != nil {
			t.Fatalf("%s: section close %d: %v", ctx, i, err)
		}
		sect = append(sect, p)
	}
	got, err = ConcatCompressed(desc, sect)
	if err != nil {
		t.Fatalf("%s: concat sectioned: %v", ctx, err)
	}
	assertColsEqual(t, ctx+"/sectioned", whole, got)
}

// TestConcatCompressedMatchesMonolithic is the property test of the
// compressed concatenation: for every format, over random split points —
// block-aligned and arbitrary, including empty and sub-block parts —
// reassembling independently compressed segments must reproduce the
// monolithic compression bit for bit.
func TestConcatCompressedMatchesMonolithic(t *testing.T) {
	descs := append(AllDescs(), columns.StaticBPDesc(17), columns.StaticBPDesc(64))
	sizes := []int{0, 1, 63, 64, BlockLen - 1, BlockLen, BlockLen + 1,
		4*BlockLen + 437, 11*BlockLen + 64}
	rng := rand.New(rand.NewSource(7))
	for _, desc := range descs {
		for _, n := range sizes {
			vals := concatTestValues(n, int64(n)+1)
			if desc.Kind == columns.StaticBP && desc.Bits > 0 {
				for i := range vals { // preset width: clamp to representable
					vals[i] &= 1<<desc.Bits - 1
				}
			}
			for trial := 0; trial < 6; trial++ {
				parts := 1 + rng.Intn(5)
				align := 1
				if trial%2 == 0 {
					align = ConcatAlign(desc.Kind)
				}
				cuts := randomCuts(rng, n, parts, align)
				ctx := desc.String() + "/n=" + itoa(n) + "/trial=" + itoa(trial)
				concatCase(t, ctx, desc, vals, cuts)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestConcatCompressedDegenerate pins the edge cases: no parts, all parts
// empty, and the all-zero static BP column whose derived width is zero.
func TestConcatCompressedDegenerate(t *testing.T) {
	for _, desc := range AllDescs() {
		got, err := ConcatCompressed(desc, nil)
		if err != nil {
			t.Fatalf("%v: concat nil: %v", desc, err)
		}
		want, err := Compress(nil, desc)
		if err != nil {
			t.Fatal(err)
		}
		assertColsEqual(t, desc.String()+"/nil", want, got)

		empty, err := Compress(nil, desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err = ConcatCompressed(desc, []*columns.Column{empty, empty})
		if err != nil {
			t.Fatalf("%v: concat empties: %v", desc, err)
		}
		assertColsEqual(t, desc.String()+"/empties", want, got)
	}

	zeros := make([]uint64, 3*BlockLen+5)
	whole, err := Compress(zeros, columns.StaticBPDesc(0))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Compress(zeros[:BlockLen], columns.StaticBPDesc(0))
	b, _ := Compress(zeros[BlockLen:], columns.StaticBPDesc(0))
	got, err := ConcatCompressed(columns.StaticBPDesc(0), []*columns.Column{a, b})
	if err != nil {
		t.Fatal(err)
	}
	assertColsEqual(t, "static_bp/all-zero", whole, got)
}

// TestConcatCompressedRejectsMismatches checks the input validation: nil
// parts, format mismatches, and preset static BP widths too narrow for a
// part must fail like the monolithic compressor would.
func TestConcatCompressedRejectsMismatches(t *testing.T) {
	dyn, err := Compress([]uint64{1, 2, 3}, columns.DynBPDesc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConcatCompressed(columns.RLEDesc, []*columns.Column{dyn}); err == nil {
		t.Fatal("format mismatch must fail")
	}
	if _, err := ConcatCompressed(columns.DynBPDesc, []*columns.Column{nil}); err == nil {
		t.Fatal("nil part must fail")
	}
	wide, err := Compress([]uint64{1 << 20}, columns.StaticBPDesc(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConcatCompressed(columns.StaticBPDesc(4), []*columns.Column{wide}); err == nil {
		t.Fatal("narrow preset width must fail")
	}
}

// TestConcatCompressedAllocsFullBlocks asserts the zero-allocation property
// of the fast path: when every seam falls on a block boundary, the stitch is
// a constant number of buffer allocations plus block-granular copies — no
// per-block or per-element work — regardless of how much data flows through.
func TestConcatCompressedAllocsFullBlocks(t *testing.T) {
	const allocBound = 8 // result buffer + column + fixed per-format scratch
	for _, desc := range AllDescs() {
		// Part sizes are multiples of every format's concat alignment, so
		// all seams are aligned; the tail part carries the ragged end.
		vals := concatTestValues(16*BlockLen+437, 3)
		cuts := []int{0, 4 * BlockLen, 10 * BlockLen, 16 * BlockLen, len(vals)}
		parts := make([]*columns.Column, 0, len(cuts)-1)
		for i := 1; i < len(cuts); i++ {
			start := cuts[i-1]
			var prev uint64
			if start > 0 {
				prev = vals[start-1]
			}
			w, err := NewSectionWriter(desc, cuts[i]-start, prev, start > 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(vals[start:cuts[i]]); err != nil {
				t.Fatal(err)
			}
			p, err := w.Close()
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, p)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := ConcatCompressed(parts[0].Desc(), parts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > allocBound {
			t.Errorf("%v: block-aligned concat did %.0f allocations, want <= %d",
				desc, allocs, allocBound)
		}
	}
}

// FuzzConcatCompressed drives the concatenation property through the fuzzer:
// any kind, any sizes, any two split points must reassemble to the
// monolithic compression.
func FuzzConcatCompressed(f *testing.F) {
	f.Add(int64(1), uint8(2), uint16(1200), uint16(300), uint16(700))
	f.Add(int64(2), uint8(3), uint16(5*BlockLen), uint16(BlockLen), uint16(2*BlockLen))
	f.Add(int64(3), uint8(4), uint16(513), uint16(0), uint16(512))
	f.Add(int64(4), uint8(5), uint16(2000), uint16(2000), uint16(2000))
	f.Add(int64(5), uint8(1), uint16(64), uint16(1), uint16(63))
	f.Fuzz(func(t *testing.T, seed int64, kind uint8, n, c1, c2 uint16) {
		descs := AllDescs()
		desc := descs[int(kind)%len(descs)]
		nn := int(n) % (8 * BlockLen)
		vals := concatTestValues(nn, seed)
		cuts := []int{0, int(c1) % (nn + 1), int(c2) % (nn + 1), nn}
		if cuts[1] > cuts[2] {
			cuts[1], cuts[2] = cuts[2], cuts[1]
		}
		whole, err := Compress(vals, desc)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*columns.Column, 0, 3)
		for i := 1; i < len(cuts); i++ {
			p, err := Compress(vals[cuts[i-1]:cuts[i]], desc)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, p)
		}
		got, err := ConcatCompressed(desc, parts)
		if err != nil {
			t.Fatal(err)
		}
		assertColsEqual(t, desc.String(), whole, got)
	})
}
