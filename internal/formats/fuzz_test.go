package formats

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"morphstore/internal/columns"
)

// The fuzz targets drive the decompression and concatenation entry points
// with structurally arbitrary columns: any bit pattern a corrupted file or a
// buggy writer could produce. The contract under test is the robustness
// guarantee of the codec layer — no panic, no out-of-range access, every
// rejection a typed ErrCorrupt — plus, when a column does decode, agreement
// between the one-shot and the streaming decoder.

// fuzzDescs are the format candidates a fuzz input selects from; the static
// BP width comes from the input too (including out-of-range values).
func fuzzDesc(kindSel, bits uint8) columns.FormatDesc {
	switch kindSel % 5 {
	case 0:
		return columns.DynBPDesc
	case 1:
		return columns.DeltaBPDesc
	case 2:
		return columns.ForBPDesc
	case 3:
		return columns.RLEDesc
	default:
		return columns.StaticBPDesc(uint(bits))
	}
}

// fuzzColumn assembles a column of the selected format from raw fuzzed words,
// or nil when the extents cannot form a column at all (columns.New rejects
// them before any codec sees the buffer).
func fuzzColumn(kindSel, bits uint8, n, mainElems uint16, data []byte) *columns.Column {
	nn, me := int(n), int(mainElems)
	if me > nn {
		me = nn
	}
	if len(data) > 1<<19 { // bound memory, not coverage: ~64K words suffice
		data = data[:1<<19]
	}
	words := make([]uint64, len(data)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	mainWords := len(words) - (nn - me)
	if mainWords < 0 {
		return nil
	}
	col, err := columns.New(fuzzDesc(kindSel, bits), nn, me, mainWords, words)
	if err != nil {
		return nil
	}
	return col
}

// seedColumn compresses vals into desc and registers the resulting valid
// column as a fuzz seed, so mutation starts from well-formed inputs.
func seedColumn(f *testing.F, vals []uint64, kindSel uint8) {
	col, err := Compress(vals, fuzzDesc(kindSel, 0))
	if err != nil {
		f.Fatal(err)
	}
	data := make([]byte, 8*len(col.Words()))
	for i, w := range col.Words() {
		binary.LittleEndian.PutUint64(data[i*8:], w)
	}
	f.Add(kindSel, col.Desc().Bits, uint16(col.N()), uint16(col.MainElems()), data)
}

func fuzzSeedValues() [][]uint64 {
	sorted := make([]uint64, 1500)
	for i := range sorted {
		sorted[i] = uint64(3 * i)
	}
	runs := make([]uint64, 1300)
	for i := range runs {
		runs[i] = uint64(i / 97)
	}
	return [][]uint64{sorted, runs, {7}, {}}
}

func FuzzDecompress(f *testing.F) {
	for _, vals := range fuzzSeedValues() {
		for kindSel := uint8(0); kindSel < 5; kindSel++ {
			seedColumn(f, vals, kindSel)
		}
	}
	f.Fuzz(func(t *testing.T, kindSel, bits uint8, n, mainElems uint16, data []byte) {
		col := fuzzColumn(kindSel, bits, n, mainElems, data)
		if col == nil {
			return
		}
		dec, err := Decompress(col)
		if err != nil {
			return // a rejection is fine; a panic would have failed the run
		}
		// The streaming reader must agree with the one-shot decoder on any
		// column the one-shot decoder accepts.
		r, err := NewReader(col)
		if err != nil {
			t.Fatalf("NewReader after successful Decompress: %v", err)
		}
		got := make([]uint64, 0, col.N())
		buf := make([]uint64, BlockLen)
		for len(got) < col.N() {
			k, err := r.Read(buf)
			if err != nil {
				t.Fatalf("Read after successful Decompress: %v", err)
			}
			if k == 0 {
				break
			}
			got = append(got, buf[:k]...)
		}
		if len(got) != len(dec) {
			t.Fatalf("reader yielded %d elements, Decompress %d", len(got), len(dec))
		}
		for i := range got {
			if got[i] != dec[i] {
				t.Fatalf("reader disagrees with Decompress at element %d: %d != %d", i, got[i], dec[i])
			}
		}
	})
}

// FuzzConcatCorrupt complements concat_test.go's FuzzConcatCompressed (valid
// parts, arbitrary split points) with structurally arbitrary parts: the
// concatenation must reject or survive corrupt inputs, never panic.
func FuzzConcatCorrupt(f *testing.F) {
	for _, vals := range fuzzSeedValues() {
		for kindSel := uint8(0); kindSel < 5; kindSel++ {
			col, err := Compress(vals, fuzzDesc(kindSel, 0))
			if err != nil {
				f.Fatal(err)
			}
			data := make([]byte, 8*len(col.Words()))
			for i, w := range col.Words() {
				binary.LittleEndian.PutUint64(data[i*8:], w)
			}
			f.Add(kindSel, col.Desc().Bits,
				uint16(col.N()), uint16(col.MainElems()), data,
				uint16(col.N()), uint16(col.MainElems()), data)
		}
	}
	f.Fuzz(func(t *testing.T, kindSel, bits uint8, n1, m1 uint16, data1 []byte, n2, m2 uint16, data2 []byte) {
		a := fuzzColumn(kindSel, bits, n1, m1, data1)
		b := fuzzColumn(kindSel, bits, n2, m2, data2)
		if a == nil || b == nil {
			return
		}
		da, errA := Decompress(a)
		db, errB := Decompress(b)
		cat, err := ConcatCompressed(a.Desc(), []*columns.Column{a, b})
		if err != nil {
			if errA == nil && errB == nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("concat of two valid parts failed non-corrupt: %v", err)
			}
			return
		}
		if errA != nil || errB != nil {
			return // garbage in, unspecified out — only panics are failures
		}
		dc, err := Decompress(cat)
		if err != nil {
			t.Fatalf("decompress of concat result: %v", err)
		}
		want := append(append([]uint64{}, da...), db...)
		if len(dc) != len(want) {
			t.Fatalf("concat of %d and %d elements yielded %d", len(da), len(db), len(dc))
		}
		for i := range want {
			if dc[i] != want[i] {
				t.Fatalf("concat disagrees at element %d: %d != %d", i, dc[i], want[i])
			}
		}
	})
}

// TestFuzzSeedsRoundTrip runs every fuzz seed through the FuzzDecompress body
// deterministically, so `go test` exercises the harness without -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for _, vals := range fuzzSeedValues() {
		for kindSel := uint8(0); kindSel < 5; kindSel++ {
			col, err := Compress(vals, fuzzDesc(kindSel, 0))
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Decompress(col)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != len(vals) || (len(vals) > 0 && !bytes.Equal(u64bytes(dec), u64bytes(vals))) {
				t.Fatalf("round trip of %d elements via %v failed", len(vals), col.Desc())
			}
		}
	}
}

func u64bytes(vals []uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out
}
