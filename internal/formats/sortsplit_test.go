package formats

import (
	"math/rand"
	"sort"
	"testing"
)

// checkPairsTile verifies the structural invariants of a SplitSortedAligned
// result: the A partitions tile a exactly, the B partitions tile b exactly,
// and every cut is value-disjoint in both inputs — each element before the
// cut (in a AND b) is strictly below each element at or after it, which also
// means no duplicate run is ever split across a boundary.
func checkPairsTile(t *testing.T, a, b []uint64, pairs []RangePair) {
	t.Helper()
	offA, offB := 0, 0
	for k, p := range pairs {
		if p.A.Start != offA || p.B.Start != offB {
			t.Fatalf("pair %d: starts (%d,%d), want (%d,%d)", k, p.A.Start, p.B.Start, offA, offB)
		}
		if p.A.Count < 0 || p.B.Count < 0 {
			t.Fatalf("pair %d: negative count", k)
		}
		offA += p.A.Count
		offB += p.B.Count
		if k == 0 {
			continue
		}
		// Largest value before the cut vs smallest value at/after it, over
		// both inputs; empty sides impose no constraint.
		hasLeft, hasRight := false, false
		var left, right uint64
		if p.A.Start > 0 {
			hasLeft, left = true, a[p.A.Start-1]
		}
		if p.B.Start > 0 && (!hasLeft || b[p.B.Start-1] > left) {
			hasLeft, left = true, b[p.B.Start-1]
		}
		if p.A.Count > 0 {
			hasRight, right = true, a[p.A.Start]
		}
		if p.B.Count > 0 && (!hasRight || b[p.B.Start] < right) {
			hasRight, right = true, b[p.B.Start]
		}
		if hasLeft && hasRight && left >= right {
			t.Fatalf("pair %d: cut not value-disjoint (%d before >= %d after)", k, left, right)
		}
	}
	if offA != len(a) || offB != len(b) {
		t.Fatalf("pairs tile (%d,%d), want (%d,%d)", offA, offB, len(a), len(b))
	}
}

func TestSplitSortedAlignedShapes(t *testing.T) {
	n := 6 * MinMorsel
	asc := make([]uint64, n)
	for i := range asc {
		asc[i] = uint64(2 * i)
	}
	rng := rand.New(rand.NewSource(3))
	jitter := make([]uint64, n)
	for i := range jitter {
		jitter[i] = uint64(rng.Intn(n / 2))
	}
	sort.Slice(jitter, func(i, j int) bool { return jitter[i] < jitter[j] })
	dupes := make([]uint64, n)
	for i := range dupes {
		dupes[i] = uint64(i / 701) // runs longer than a minimum morsel fraction
	}
	one := make([]uint64, n)
	for i := range one {
		one[i] = 42
	}
	cases := []struct {
		name string
		a, b []uint64
	}{
		{"asc_vs_jitter", asc, jitter},
		{"jitter_vs_asc", jitter, asc},
		{"duplicate_runs", dupes, jitter},
		{"dup_vs_dup", dupes, dupes},
		{"empty_b", asc, nil},
		{"b_above_a", asc, []uint64{1 << 40}},
		{"b_below_a", jitter[:n], []uint64{0, 0, 0}},
	}
	for _, tc := range cases {
		for _, p := range []int{2, 3, 8} {
			pairs := SplitSortedAligned(tc.a, tc.b, p)
			if pairs == nil {
				t.Fatalf("%s p=%d: expected a split", tc.name, p)
			}
			checkPairsTile(t, tc.a, tc.b, pairs)
		}
	}
	// A constant a still splits when b offers boundaries (the b-side
	// refinement samples them), but two constant inputs admit no value
	// boundary at all.
	if pairs := SplitSortedAligned(one, asc, 4); pairs != nil {
		checkPairsTile(t, one, asc, pairs)
	}
	if pairs := SplitSortedAligned(one, one, 4); pairs != nil {
		t.Fatalf("two constant inputs must not split, got %d pairs", len(pairs))
	}
}

// TestSplitSortedAlignedBSkew pins the b-side refinement: when the second
// input concentrates its bulk between two of a's sampled boundaries (here:
// everything in b sits below a's first value), the oversized b range must be
// subdivided with boundaries sampled from b instead of collapsing the whole
// workload into one pair.
func TestSplitSortedAlignedBSkew(t *testing.T) {
	n := 8 * MinMorsel
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(1<<30 + i) // all of a far above all of b
	}
	b := make([]uint64, 8*n)
	for i := range b {
		b[i] = uint64(i)
	}
	pairs := SplitSortedAligned(a, b, 4)
	if pairs == nil {
		t.Fatal("expected a split")
	}
	checkPairsTile(t, a, b, pairs)
	maxB := 0
	for _, p := range pairs {
		if p.B.Count > maxB {
			maxB = p.B.Count
		}
	}
	// Without the refinement, all of b lands in the first pair (a's sampled
	// boundaries are all above b); with it, no range may hold more than an
	// even share plus the morsel-granularity slack.
	nRanges := 4 * morselsPerWorker
	if cap := len(a) / MinMorsel; nRanges > cap {
		nRanges = cap
	}
	if limit := len(b)/nRanges + 2*MinMorsel; maxB > limit {
		t.Errorf("largest b range holds %d of %d elements (limit ~%d) — skewed b not subdivided", maxB, len(b), limit)
	}
}

func TestSplitSortedAlignedDegenerate(t *testing.T) {
	small := make([]uint64, 2*MinMorsel-1)
	for i := range small {
		small[i] = uint64(i)
	}
	if SplitSortedAligned(small, small, 8) != nil {
		t.Error("input below the split threshold must not split")
	}
	if SplitSortedAligned(nil, small, 8) != nil {
		t.Error("empty first input must not split")
	}
	big := make([]uint64, 4*MinMorsel)
	for i := range big {
		big[i] = uint64(i)
	}
	if SplitSortedAligned(big, big, 1) != nil {
		t.Error("p=1 must not split")
	}
	if SplitSortedAligned(big, big, 0) != nil {
		t.Error("p=0 must not split")
	}
}

// TestSplitSortedAlignedSingleElementRanges drives the range count to the
// cap so individual ranges shrink to the minimum; with a heavily duplicated
// tail most candidate boundaries collapse and some surviving ranges hold a
// single distinct value.
func TestSplitSortedAlignedSingleElementRanges(t *testing.T) {
	n := 2 * MinMorsel
	vals := make([]uint64, n)
	for i := range vals {
		if i < 4 {
			vals[i] = uint64(i) // a few distinct singletons up front
		} else {
			vals[i] = 1 << 20 // one giant duplicate run
		}
	}
	pairs := SplitSortedAligned(vals, vals[:1], 8)
	if pairs == nil {
		t.Skip("range cap collapsed the split entirely (acceptable)")
	}
	checkPairsTile(t, vals, vals[:1], pairs)
}

func TestGallopLower(t *testing.T) {
	vals := []uint64{1, 3, 3, 3, 7, 9, 9, 120, 4000}
	cases := []struct {
		from int
		v    uint64
		want int
	}{
		{0, 0, 0}, {0, 1, 0}, {0, 2, 1}, {0, 3, 1}, {0, 4, 4},
		{2, 3, 2}, {2, 8, 5}, {0, 9, 5}, {0, 10, 7}, {0, 121, 8},
		{0, 5000, 9}, {9, 1, 9}, {8, 4000, 8},
	}
	for _, tc := range cases {
		if got := gallopLower(vals, tc.from, tc.v); got != tc.want {
			t.Errorf("gallopLower(from=%d, v=%d) = %d, want %d", tc.from, tc.v, got, tc.want)
		}
	}
	// Cross-check against sort.Search on random sorted data.
	rng := rand.New(rand.NewSource(8))
	big := make([]uint64, 5000)
	for i := range big {
		big[i] = uint64(rng.Intn(2000))
	}
	sort.Slice(big, func(i, j int) bool { return big[i] < big[j] })
	for trial := 0; trial < 500; trial++ {
		from := rng.Intn(len(big) + 1)
		v := uint64(rng.Intn(2100))
		want := from + sort.Search(len(big)-from, func(i int) bool { return big[from+i] >= v })
		if got := gallopLower(big, from, v); got != want {
			t.Fatalf("gallopLower(from=%d, v=%d) = %d, want %d", from, v, got, want)
		}
	}
}
