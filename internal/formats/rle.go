package formats

import (
	"fmt"

	"morphstore/internal/columns"
)

// rleCodec implements run-length encoding: the column is a sequence of
// (run value, run length) word pairs. RLE is one of the five basic
// lightweight techniques of §2.1; the paper's engine does not yet ship it,
// so in MorphStore-Go it is an extension format that plugs into the same
// codec, morph and operator machinery (and powers the specialized
// sum-on-RLE operator sketched by Abadi et al. [2]).
//
// The whole column is the main part (any n is representable); run lengths
// are never zero.
type rleCodec struct{}

func init() { register(rleCodec{}) }

func (rleCodec) Kind() columns.Kind { return columns.RLE }
func (rleCodec) BlockLenHint() int  { return 1 }

func (rleCodec) Compress(src []uint64, _ columns.FormatDesc) (*columns.Column, error) {
	words := make([]uint64, 0, 64)
	i := 0
	for i < len(src) {
		v := src[i]
		j := i + 1
		for j < len(src) && src[j] == v {
			j++
		}
		words = append(words, v, uint64(j-i))
		i = j
	}
	return columns.New(columns.RLEDesc, len(src), len(src), len(words), words)
}

func (rleCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	words := col.MainWords()
	if len(words)%2 != 0 {
		return fmt.Errorf("%w: RLE buffer has odd word count", ErrCorrupt)
	}
	k := 0
	for w := 0; w < len(words); w += 2 {
		// Compare against the remaining space rather than k+l, which a run
		// length near the int range would overflow past the bounds check.
		v, l := words[w], int(words[w+1])
		if l <= 0 || l > len(dst)-k {
			return fmt.Errorf("%w: RLE run length %d at element %d of %d", ErrCorrupt, l, k, len(dst))
		}
		for i := 0; i < l; i++ {
			dst[k+i] = v
		}
		k += l
	}
	if k != len(dst) {
		return fmt.Errorf("%w: RLE runs cover %d of %d elements", ErrCorrupt, k, len(dst))
	}
	return nil
}

func (rleCodec) NewReader(col *columns.Column) Reader {
	return &rleReader{words: col.MainWords(), n: col.N()}
}

func (rleCodec) NewWriter(_ columns.FormatDesc, _ int) Writer {
	return &rleWriter{words: make([]uint64, 0, 64)}
}

// Run is one (value, length) pair of an RLE column.
type Run struct {
	Value  uint64
	Length uint64
}

// RLERuns exposes the runs of an RLE column without decompression; it is the
// direct-access primitive of the specialized RLE operators.
func RLERuns(col *columns.Column) ([]Run, error) {
	if col.Desc().Kind != columns.RLE {
		return nil, fmt.Errorf("formats: RLERuns on %v column", col.Desc())
	}
	words := col.MainWords()
	if len(words)%2 != 0 {
		return nil, fmt.Errorf("%w: RLE buffer has odd word count", ErrCorrupt)
	}
	runs := make([]Run, len(words)/2)
	var total uint64
	for i := range runs {
		runs[i] = Run{Value: words[2*i], Length: words[2*i+1]}
		l := runs[i].Length
		if l == 0 || l > uint64(col.N())-total {
			// Zero-length and overflowing runs alike make the runs
			// inconsistent with the column's element count.
			return nil, fmt.Errorf("%w: RLE run of length %d at element %d of column of %d",
				ErrCorrupt, l, total, col.N())
		}
		total += l
	}
	if total != uint64(col.N()) {
		return nil, fmt.Errorf("%w: RLE runs cover %d of %d elements", ErrCorrupt, total, col.N())
	}
	return runs, nil
}

type rleReader struct {
	words  []uint64
	n      int
	w      int // current run pair offset
	within int // elements of current run already emitted
	emit   int // total elements emitted
}

func (r *rleReader) Read(dst []uint64) (int, error) {
	k := 0
	for k < len(dst) && r.emit < r.n {
		if r.w+2 > len(r.words) {
			return k, fmt.Errorf("%w: RLE runs exhausted at element %d of %d", ErrCorrupt, r.emit, r.n)
		}
		v, l := r.words[r.w], int(r.words[r.w+1])
		if l <= 0 || l-r.within > r.n-r.emit {
			// Zero-length runs, lengths past the int range (stored as a raw
			// word) and runs overflowing the column's element count are all
			// corrupt; clamping the overflow instead would silently decode a
			// different column than Decompress rejects.
			return k, fmt.Errorf("%w: RLE run of length %d at element %d of column of %d",
				ErrCorrupt, r.words[r.w+1], r.emit, r.n)
		}
		take := l - r.within
		if rem := len(dst) - k; take > rem {
			take = rem
		}
		for i := 0; i < take; i++ {
			dst[k+i] = v
		}
		k += take
		r.within += take
		r.emit += take
		if r.within >= l {
			r.w += 2
			r.within = 0
		}
	}
	return k, nil
}

type rleWriter struct {
	words  []uint64
	cur    uint64
	curLen uint64
	n      int
	closed bool
}

func (w *rleWriter) Write(vals []uint64) error {
	w.n += len(vals)
	for _, v := range vals {
		if w.curLen > 0 && v == w.cur {
			w.curLen++
			continue
		}
		if w.curLen > 0 {
			w.words = append(w.words, w.cur, w.curLen)
		}
		w.cur, w.curLen = v, 1
	}
	return nil
}

func (w *rleWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	if w.curLen > 0 {
		w.words = append(w.words, w.cur, w.curLen)
	}
	return columns.New(columns.RLEDesc, w.n, w.n, len(w.words), w.words)
}
