// Package formats implements MorphStore-Go's corpus of lightweight integer
// compression formats on unsigned 64-bit data elements (paper §4.1):
//
//   - Uncompressed: one word per element,
//   - StaticBP: bit packing with one fixed bit width for the whole column,
//   - DynBP: block-wise binary packing with a per-block width over
//     512-element blocks (the 64-bit port of SIMD-BP128/512),
//   - DeltaBP: DELTA cascaded with DynBP ("DELTA + SIMD-BP512"),
//   - ForBP: frame-of-reference cascaded with DynBP ("FOR + SIMD-BP512"),
//   - RLE: run-length encoding (extension beyond the paper's five formats).
//
// Besides whole-column compression and decompression, every format provides
// the two halves of the paper's buffer layer (Fig. 4): a sequential Reader
// that decompresses into a caller-supplied cache-resident block, and a Writer
// that accepts uncompressed elements and compresses them block-wise. These
// are what the on-the-fly de/re-compression operators in internal/ops wrap
// around their format-oblivious kernels.
package formats

import (
	"errors"
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/qerr"
)

// BlockLen is the number of data elements per compressed block of the
// block-based formats (DynBP, DeltaBP, ForBP): the SIMD-BP512 block size.
const BlockLen = 512

// BufferLen is the default element capacity of the cache-resident buffers
// used between operators and codecs: 2048 elements = 16 KiB, half the size
// of a typical L1 data cache, exactly as in the paper's evaluation setup.
const BufferLen = 2048

// ErrSmallBuffer reports a Read destination smaller than one format block.
var ErrSmallBuffer = errors.New("formats: read buffer smaller than one block")

// ErrCorrupt reports structurally invalid compressed data. It wraps the
// engine taxonomy's qerr.ErrCorruptData, so every corruption error produced
// anywhere in the codec layer — all of them wrap ErrCorrupt with %w —
// matches both sentinels under errors.Is.
var ErrCorrupt = fmt.Errorf("formats: %w", qerr.ErrCorruptData)

// validateBlocked checks the main-part extent of a block-based column
// (DynBP, DeltaBP, ForBP): the compressed main part always covers a whole
// number of blocks, so a misaligned extent means the metadata is corrupt and
// block decoding would write past the destination.
func validateBlocked(col *columns.Column, format string) error {
	if col.MainElems()%BlockLen != 0 {
		return fmt.Errorf("%w: %s main part of %d elements is not block-aligned (column of %d elements)",
			ErrCorrupt, format, col.MainElems(), col.N())
	}
	return nil
}

// blockContext annotates a block-decode error with the element offset of the
// failing block and the column length, so corruption reports are actionable.
func blockContext(err error, elem, n int) error {
	return fmt.Errorf("%w (block at element %d of column of %d)", err, elem, n)
}

// Reader sequentially decompresses a column into caller-supplied buffers,
// materializing uncompressed data only at cache-resident-block granularity.
type Reader interface {
	// Read decompresses up to len(dst) next elements into dst and returns
	// how many were produced. It returns (0, nil) once the column is
	// exhausted. For block-based formats len(dst) must be at least BlockLen
	// while the compressed main part is being consumed.
	Read(dst []uint64) (int, error)
}

// ValueViewer is implemented by readers that can expose the entire column as
// a zero-copy value slice (the uncompressed format). Operators use it as the
// "direct data access" fast path of the purely-uncompressed degree.
type ValueViewer interface {
	// View returns the whole remaining data without copying, or false.
	View() ([]uint64, bool)
}

// Writer accepts uncompressed elements and produces a compressed column.
// It is the output side of the paper's buffer layer: elements accumulate in
// an internal cache-resident buffer and are compressed block-wise; on Close
// whatever cannot fill a block becomes the column's uncompressed remainder.
type Writer interface {
	// Write appends the given uncompressed elements to the column.
	Write(vals []uint64) error
	// Close flushes all pending data and returns the finished column.
	Close() (*columns.Column, error)
}

// Codec bundles the operations of one compressed format.
type Codec interface {
	// Kind returns the format kind the codec implements.
	Kind() columns.Kind
	// BlockLenHint returns the block granularity in elements (1 if the
	// format can represent any number of elements).
	BlockLenHint() int
	// Compress materializes all of src as a new column. For formats with a
	// derivable parameter (StaticBP width) the descriptor may leave it 0.
	Compress(src []uint64, desc columns.FormatDesc) (*columns.Column, error)
	// Decompress expands the whole column into dst, which must have
	// col.N() elements.
	Decompress(dst []uint64, col *columns.Column) error
	// NewReader returns a sequential reader over col.
	NewReader(col *columns.Column) Reader
	// NewWriter returns a writer producing a column in this format.
	// sizeHint is the expected number of elements (0 if unknown).
	NewWriter(desc columns.FormatDesc, sizeHint int) Writer
}

var registry [columns.NumKinds]Codec

func register(c Codec) { registry[c.Kind()] = c }

// Get returns the codec for the given kind.
func Get(kind columns.Kind) (Codec, error) {
	if int(kind) >= len(registry) || registry[kind] == nil {
		return nil, fmt.Errorf("formats: no codec for kind %v", kind)
	}
	return registry[kind], nil
}

// Compress materializes src as a new column in the requested format.
func Compress(src []uint64, desc columns.FormatDesc) (*columns.Column, error) {
	c, err := Get(desc.Kind)
	if err != nil {
		return nil, err
	}
	return c.Compress(src, desc)
}

// Decompress expands col into a freshly allocated slice.
func Decompress(col *columns.Column) ([]uint64, error) {
	c, err := Get(col.Desc().Kind)
	if err != nil {
		return nil, err
	}
	dst := make([]uint64, col.N())
	if err := c.Decompress(dst, col); err != nil {
		return nil, err
	}
	return dst, nil
}

// NewReader returns a sequential reader over col in its own format.
func NewReader(col *columns.Column) (Reader, error) {
	c, err := Get(col.Desc().Kind)
	if err != nil {
		return nil, err
	}
	return c.NewReader(col), nil
}

// NewWriter returns a writer producing a column in the requested format.
func NewWriter(desc columns.FormatDesc, sizeHint int) (Writer, error) {
	c, err := Get(desc.Kind)
	if err != nil {
		return nil, err
	}
	return c.NewWriter(desc, sizeHint), nil
}

// PaperDescs returns the five formats implemented by the paper's MorphStore
// (§4.1): uncompressed, static BP, SIMD-BP512, DELTA+SIMD-BP512, and
// FOR+SIMD-BP512. These are the candidates of all reproduced experiments.
func PaperDescs() []columns.FormatDesc {
	return []columns.FormatDesc{
		columns.UncomprDesc,
		columns.StaticBPDesc(0),
		columns.DynBPDesc,
		columns.DeltaBPDesc,
		columns.ForBPDesc,
	}
}

// AllDescs returns every supported format, including extensions (RLE).
func AllDescs() []columns.FormatDesc {
	return append(PaperDescs(), columns.RLEDesc)
}

// RandomAccessDescs returns the formats supporting random read access
// (paper §4.2: uncompressed and static BP only).
func RandomAccessDescs() []columns.FormatDesc {
	return []columns.FormatDesc{columns.UncomprDesc, columns.StaticBPDesc(0)}
}
