package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
)

// This file implements the output half of MorphStore-Go's compressed
// stitching: concatenating several compressed columns of one format into a
// single column that is byte-identical to compressing the concatenated
// element streams monolithically. Together with NewSectionWriter (a Writer
// primed with its stream context) it lets the morsel-parallel operator
// drivers compress block-aligned sections of their output stream on worker
// goroutines and then stitch the partial columns by block-granular copies
// instead of re-encoding the whole output through one sequential writer.
//
// All block-structured formats concatenate by whole-block copies as long as
// every seam falls on a block boundary of the logical stream; the remaining
// fixups are format-specific:
//
//	Uncompressed  plain word copy, any seam.
//	StaticBP      packed bit-stream append; word-copy at 64-element seams,
//	              shift-merge otherwise, width-repack when parts disagree.
//	DynBP         whole blocks copied verbatim (headers untouched); a
//	              misaligned seam re-blocks the following part.
//	DeltaBP       whole blocks copied; the first block of each part is
//	              rebased onto the preceding stream element when its stored
//	              base disagrees (parts compressed independently start at
//	              base 0); a misaligned seam re-blocks the following part.
//	ForBP         whole blocks copied (references are per-block minima and
//	              self-contained); a misaligned seam re-blocks.
//	RLE           run lists appended with an adjacent-run merge at each seam,
//	              which restores the canonical maximal-run encoding.

// ConcatAlign returns the element alignment at which a seam between two
// concatenated parts of this format is a pure block copy (no re-encoding),
// or 0 if the format does not support compressed concatenation. RLE
// concatenates at any seam (runs merge, they never re-encode), so its
// alignment is 1 like the uncompressed format's.
func ConcatAlign(kind columns.Kind) int {
	switch kind {
	case columns.Uncompressed, columns.RLE:
		return 1
	case columns.StaticBP:
		return 64
	case columns.DynBP, columns.DeltaBP, columns.ForBP:
		return BlockLen
	default:
		return 0
	}
}

// CanConcat reports whether ConcatCompressed supports the format natively
// (without the decompress-and-recompress fallback).
func CanConcat(kind columns.Kind) bool { return ConcatAlign(kind) > 0 }

// prevSeeder is implemented by writers whose encoding depends on the element
// preceding the written stream (delta coding).
type prevSeeder interface{ seedPrev(prev uint64) }

// NewSectionWriter returns a Writer producing a compressed column for one
// section of a larger logical stream: prev is the element at the position
// just before the section (hasPrev is false for the stream head). Formats
// whose encoding is position-independent ignore it; DeltaBP seeds its block
// base with it, so a section starting on a block boundary compresses to the
// very bytes the monolithic writer would produce for that range.
func NewSectionWriter(desc columns.FormatDesc, sizeHint int, prev uint64, hasPrev bool) (Writer, error) {
	w, err := NewWriter(desc, sizeHint)
	if err != nil {
		return nil, err
	}
	if hasPrev {
		if s, ok := w.(prevSeeder); ok {
			s.seedPrev(prev)
		}
	}
	return w, nil
}

// ConcatCompressed concatenates parts — all columns in desc's format — into
// one column holding their element streams back to back, byte-identical to
// compressing the whole concatenated stream monolithically with desc. Whole
// compressed blocks are copied; only seams that do not fall on a block
// boundary force the following part through a re-encoding path, and the
// format-specific head fixups (DeltaBP rebase, RLE run merge) touch O(1)
// blocks or runs per seam.
//
// For an auto-width static BP request (desc.Bits == 0) the target width is
// the maximum of the parts' widths, which equals the monolithic derived
// width whenever every part was itself compressed at its tight (derived)
// width.
func ConcatCompressed(desc columns.FormatDesc, parts []*columns.Column) (*columns.Column, error) {
	if err := faultpoint.ConcatFixup.Hit(); err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("formats: concat: nil part")
		}
		if p.Desc().Kind != desc.Kind {
			return nil, fmt.Errorf("formats: concat: part is %v, want %v", p.Desc(), desc)
		}
	}
	switch desc.Kind {
	case columns.Uncompressed:
		return concatUncompr(parts)
	case columns.StaticBP:
		return concatStaticBP(desc, parts)
	case columns.DynBP:
		return concatDynBP(parts)
	case columns.DeltaBP:
		return concatDeltaBP(parts)
	case columns.ForBP:
		return concatForBP(parts)
	case columns.RLE:
		return concatRLE(parts)
	default:
		return concatGeneric(desc, parts)
	}
}

// concatGeneric is the correctness fallback for formats without a native
// concatenation: decompress everything and recompress monolithically.
func concatGeneric(desc columns.FormatDesc, parts []*columns.Column) (*columns.Column, error) {
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	vals := make([]uint64, 0, total)
	for _, p := range parts {
		v, err := Decompress(p)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v...)
	}
	return Compress(vals, desc)
}

func concatUncompr(parts []*columns.Column) (*columns.Column, error) {
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	words := make([]uint64, 0, total)
	for _, p := range parts {
		words = append(words, p.Words()...)
	}
	return columns.FromValues(words), nil
}

// appendPackedBits ORs the first nbits bits of the packed source stream into
// dst starting at bit position bitPos. dst must be zero beyond bitPos and the
// source padding bits beyond nbits must be zero (both hold for freshly packed
// buffers), so a word-aligned bitPos degrades to a plain copy and a
// misaligned one to a two-target shift-merge per word.
func appendPackedBits(dst []uint64, bitPos uint64, src []uint64, nbits uint64) {
	if nbits == 0 {
		return
	}
	srcWords := int((nbits + 63) / 64)
	w := int(bitPos >> 6)
	off := uint(bitPos & 63)
	if off == 0 {
		copy(dst[w:], src[:srcWords])
		return
	}
	endWord := int((bitPos + nbits - 1) >> 6)
	for i := 0; i < srcWords; i++ {
		v := src[i]
		dst[w+i] |= v << off
		if w+i+1 <= endWord {
			dst[w+i+1] |= v >> (64 - off)
		}
	}
}

func concatStaticBP(desc columns.FormatDesc, parts []*columns.Column) (*columns.Column, error) {
	bits := uint(desc.Bits)
	total := 0
	for _, p := range parts {
		if err := validateStaticBP(p); err != nil {
			return nil, err
		}
		total += p.N()
		pb := uint(p.Desc().Bits)
		if desc.Bits == 0 {
			// Auto width: the widest part decides (tight part widths make
			// this the monolithic derived width).
			bits = max(bits, pb)
		} else if pb > bits {
			return nil, fmt.Errorf("formats: concat: static BP width %d cannot hold %d-bit part", bits, pb)
		}
	}
	if bits == 0 { // every element of every part is zero
		return columns.New(columns.FormatDesc{Kind: columns.StaticBP}, total, total, 0, nil)
	}
	words := make([]uint64, bitutil.PackedWords(total, bits))
	var vbuf, tmp []uint64 // width-repack scratch, allocated on demand
	bitPos := uint64(0)
	for _, p := range parts {
		n := p.N()
		if n == 0 {
			continue
		}
		pb := uint(p.Desc().Bits)
		switch {
		case pb == 0:
			// All-zero part: the target bits are already zero.
		case pb == bits:
			appendPackedBits(words, bitPos, p.MainWords(), uint64(n)*uint64(bits))
		default:
			// Width mismatch: unpack and repack chunk-wise at the target
			// width. Chunks are multiples of 64 elements, so both the source
			// read and the scratch pack stay word-aligned.
			const repackChunk = 4 * 1024
			if vbuf == nil {
				vbuf = make([]uint64, repackChunk)
				tmp = make([]uint64, bitutil.PackedWords(repackChunk, 64))
			}
			pw := p.MainWords()
			for off := 0; off < n; off += repackChunk {
				k := min(repackChunk, n-off)
				bitutil.Unpack(vbuf[:k], pw[off*int(pb)/64:], pb)
				tw := bitutil.PackedWords(k, bits)
				clear(tmp[:tw])
				bitutil.Pack(tmp[:tw], vbuf[:k], bits)
				appendPackedBits(words, bitPos+uint64(off)*uint64(bits), tmp[:tw], uint64(k)*uint64(bits))
			}
		}
		bitPos += uint64(n) * uint64(bits)
	}
	return columns.New(columns.FormatDesc{Kind: columns.StaticBP, Bits: uint8(bits)},
		total, total, len(words), words)
}

// reblock appends vals to pending, emitting every filled BlockLen-element
// block through emit; it returns the remaining pending tail.
func reblock(pending, vals []uint64, emit func(blk []uint64)) []uint64 {
	for len(vals) > 0 {
		if len(pending) == 0 {
			for len(vals) >= BlockLen {
				emit(vals[:BlockLen])
				vals = vals[BlockLen:]
			}
			if len(vals) == 0 {
				break
			}
		}
		c := min(BlockLen-len(pending), len(vals))
		pending = append(pending, vals[:c]...)
		vals = vals[c:]
		if len(pending) == BlockLen {
			emit(pending)
			pending = pending[:0]
		}
	}
	return pending
}

// drainReader feeds every element of r through reblock.
func drainReader(r Reader, buf, pending []uint64, emit func(blk []uint64)) ([]uint64, error) {
	for {
		k, err := r.Read(buf)
		if err != nil {
			return pending, err
		}
		if k == 0 {
			return pending, nil
		}
		pending = reblock(pending, buf[:k], emit)
	}
}

func concatDynBP(parts []*columns.Column) (*columns.Column, error) {
	total, capWords := 0, 0
	for _, p := range parts {
		total += p.N()
		capWords += len(p.Words())
	}
	words := make([]uint64, 0, capWords)
	pending := make([]uint64, 0, BlockLen)
	var buf []uint64 // decode scratch, misaligned-seam path only
	emit := func(blk []uint64) { words = appendDynBPBlock(words, blk) }
	for _, p := range parts {
		if p.N() == 0 {
			continue
		}
		if len(pending) == 0 {
			// Block-aligned seam: every whole block passes through verbatim,
			// headers untouched.
			words = append(words, p.MainWords()...)
			pending = reblock(pending, p.Remainder(), emit)
			continue
		}
		// Misaligned seam: the carried tail shifts every block boundary of
		// this part, so its elements re-block through the decoder.
		if buf == nil {
			buf = make([]uint64, BufferLen)
		}
		var err error
		pending, err = drainReader(dynBPCodec{}.NewReader(p), buf, pending, emit)
		if err != nil {
			return nil, err
		}
	}
	mainWords := len(words)
	words = append(words, pending...)
	return columns.New(columns.DynBPDesc, total, total-len(pending), mainWords, words)
}

func concatForBP(parts []*columns.Column) (*columns.Column, error) {
	total, capWords := 0, 0
	for _, p := range parts {
		total += p.N()
		capWords += len(p.Words())
	}
	words := make([]uint64, 0, capWords)
	pending := make([]uint64, 0, BlockLen)
	scratch := make([]uint64, BlockLen)
	var buf []uint64
	emit := func(blk []uint64) { words = appendForBPBlock(words, blk, scratch) }
	for _, p := range parts {
		if p.N() == 0 {
			continue
		}
		if len(pending) == 0 {
			// FOR references are per-block minima, so aligned blocks carry
			// over without any rebase.
			words = append(words, p.MainWords()...)
			pending = reblock(pending, p.Remainder(), emit)
			continue
		}
		if buf == nil {
			buf = make([]uint64, BufferLen)
		}
		var err error
		pending, err = drainReader(forBPCodec{}.NewReader(p), buf, pending, emit)
		if err != nil {
			return nil, err
		}
	}
	mainWords := len(words)
	words = append(words, pending...)
	return columns.New(columns.ForBPDesc, total, total-len(pending), mainWords, words)
}

// lastBlockWordOffset walks the block headers of a compressed main part and
// returns the word offset of the final block. mainElems must be positive.
func lastBlockWordOffset(pw []uint64, mainElems int, blockWords func([]uint64, int) (int, error)) (int, error) {
	w, last := 0, 0
	for e := 0; e < mainElems; e += BlockLen {
		last = w
		bw, err := blockWords(pw, w)
		if err != nil {
			return 0, err
		}
		w += bw
	}
	return last, nil
}

func concatDeltaBP(parts []*columns.Column) (*columns.Column, error) {
	total, capWords := 0, 0
	for _, p := range parts {
		total += p.N()
		capWords += len(p.Words())
	}
	words := make([]uint64, 0, capWords)
	pending := make([]uint64, 0, BlockLen)
	scratch := make([]uint64, BlockLen)
	blk := make([]uint64, BlockLen)
	var buf []uint64
	// prev is the stream element just before the first pending element (the
	// base of the next block to be encoded), maintained across parts.
	prev := uint64(0)
	emit := func(b []uint64) {
		words = appendDeltaBPBlock(words, b, prev, scratch)
		prev = b[BlockLen-1]
	}
	for _, p := range parts {
		if p.N() == 0 {
			continue
		}
		if len(pending) == 0 && p.MainElems() > 0 {
			pw := p.MainWords()
			if len(pw) == 0 {
				return nil, fmt.Errorf("%w: delta BP main part of %d elements without words", ErrCorrupt, p.MainElems())
			}
			w := 0
			if pw[0] != prev {
				// The part was compressed against a different preceding
				// element (independent parts start at base 0): rebase its
				// first block; deeper blocks reference intra-part elements
				// and pass through untouched.
				var err error
				w, err = decodeDeltaBPBlock(pw, 0, blk, scratch)
				if err != nil {
					return nil, err
				}
				words = appendDeltaBPBlock(words, blk[:BlockLen], prev, scratch)
			}
			words = append(words, pw[w:]...)
			// The next block's base is the part's last main element.
			lw, err := lastBlockWordOffset(pw, p.MainElems(), deltaForBPBlockWords)
			if err != nil {
				return nil, err
			}
			if _, err := decodeDeltaBPBlock(pw, lw, blk, scratch); err != nil {
				return nil, err
			}
			prev = blk[BlockLen-1]
			pending = reblock(pending, p.Remainder(), emit)
			continue
		}
		if len(pending) == 0 {
			// Remainder-only part at an aligned seam.
			pending = reblock(pending, p.Remainder(), emit)
			continue
		}
		if buf == nil {
			buf = make([]uint64, BufferLen)
		}
		var err error
		pending, err = drainReader(deltaBPCodec{}.NewReader(p), buf, pending, emit)
		if err != nil {
			return nil, err
		}
	}
	mainWords := len(words)
	words = append(words, pending...)
	return columns.New(columns.DeltaBPDesc, total, total-len(pending), mainWords, words)
}

func concatRLE(parts []*columns.Column) (*columns.Column, error) {
	total, capWords := 0, 0
	for _, p := range parts {
		total += p.N()
		capWords += len(p.MainWords())
	}
	words := make([]uint64, 0, capWords)
	for _, p := range parts {
		pw := p.MainWords()
		if len(pw)%2 != 0 {
			return nil, fmt.Errorf("%w: RLE buffer has odd word count", ErrCorrupt)
		}
		// The concatenation reuses the parts' run words verbatim, so their
		// lengths must be validated here: a corrupt run total would become an
		// undetectable lie about the combined column's element count.
		var sum uint64
		for i := 1; i < len(pw); i += 2 {
			l := pw[i]
			if l == 0 || l > uint64(p.N())-sum {
				return nil, fmt.Errorf("%w: RLE run of length %d at element %d of part of %d elements",
					ErrCorrupt, l, sum, p.N())
			}
			sum += l
		}
		if sum != uint64(p.N()) {
			return nil, fmt.Errorf("%w: RLE runs cover %d of %d elements", ErrCorrupt, sum, p.N())
		}
		// Seam fixup: a run continuing across the part boundary merges into
		// the preceding run, restoring maximal (canonical) runs. One merge
		// suffices — runs within a part already alternate values.
		if len(words) >= 2 && len(pw) >= 2 && words[len(words)-2] == pw[0] {
			words[len(words)-1] += pw[1]
			pw = pw[2:]
		}
		words = append(words, pw...)
	}
	return columns.New(columns.RLEDesc, total, total, len(words), words)
}
