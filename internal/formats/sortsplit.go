package formats

// This file implements value-range partitioning of sorted element streams,
// the slicing half of the parallel sorted-set operators (intersect/merge):
// two sorted inputs are cut at one shared set of boundary VALUES, so the
// resulting range pairs are value-disjoint and can be processed independently
// — concatenating the per-range results in range order reproduces the
// sequential two-pointer merge exactly, duplicates included, because every
// cut places all elements < v on its left and all elements >= v on its right
// in BOTH inputs.

// RangePair pairs one section of each of two sorted inputs covering the same
// half-open value range: every element of A and B in the pair is >= the
// pair's lower boundary value and < the next pair's. Pairs tile both inputs
// completely and in value order.
type RangePair struct {
	A Partition
	B Partition
}

// SplitSortedAligned cuts two sorted value slices at shared value boundaries
// into work-queue range pairs for up to p workers (over-decomposed like
// SplitColumnMorsels, so a dynamic work queue rebalances skew between the
// ranges). Boundary values are sampled at evenly spaced positions of a, and
// any pair whose b side comes out oversized — skew concentrated between two
// of a's samples — is subdivided again with boundary values sampled from b,
// so neither input can concentrate the work into one task. All cut points
// are located by galloping lower-bound searches, so a boundary never splits
// a run of duplicates — the whole run lands in the right-hand range of both
// inputs. It returns nil when a is too small to be worth splitting or
// p <= 1 — callers treat nil as "process sequentially". Both inputs must be
// sorted ascending; b may be empty or arbitrarily longer than a.
func SplitSortedAligned(a, b []uint64, p int) []RangePair {
	if p <= 1 || len(a) < 2*MinMorsel {
		return nil
	}
	nRanges := p * morselsPerWorker
	if max := len(a) / MinMorsel; nRanges > max {
		nRanges = max
	}
	if nRanges <= 1 {
		return nil
	}
	// A b range is oversized when it exceeds its even share by more than a
	// morsel; MinMorsel keeps the refinement from shredding small inputs.
	maxB := len(b)/nRanges + MinMorsel
	pairs := make([]RangePair, 0, nRanges)
	prevA, prevB := 0, 0
	emit := func(ca, cb int) {
		pair := RangePair{
			A: Partition{Start: prevA, Count: ca - prevA},
			B: Partition{Start: prevB, Count: cb - prevB},
		}
		if pair.B.Count > maxB {
			pairs = splitByB(a, b, pair, maxB, pairs)
		} else {
			pairs = append(pairs, pair)
		}
		prevA, prevB = ca, cb
	}
	for k := 1; k < nRanges; k++ {
		target := len(a) * k / nRanges
		if target <= prevA {
			continue
		}
		v := a[target]
		ca := gallopLower(a, prevA, v)
		if ca <= prevA {
			// The duplicate run holding v spans the whole candidate range;
			// cutting here would create an empty range, so skip the boundary.
			continue
		}
		emit(ca, gallopLower(b, prevB, v))
	}
	emit(len(a), len(b))
	if len(pairs) <= 1 {
		return nil
	}
	return pairs
}

// splitByB subdivides one value-disjoint range pair whose b side is
// oversized, sampling the extra boundary values from b (the same lower-bound
// cut rule, so the subranges stay value-disjoint and duplicate runs intact)
// and appending the subpairs to dst in value order.
func splitByB(a, b []uint64, pair RangePair, maxB int, dst []RangePair) []RangePair {
	subs := (pair.B.Count + maxB - 1) / maxB
	aEnd, bEnd := pair.A.Start+pair.A.Count, pair.B.Start+pair.B.Count
	prevA, prevB := pair.A.Start, pair.B.Start
	for k := 1; k < subs; k++ {
		target := pair.B.Start + pair.B.Count*k/subs
		if target <= prevB {
			continue
		}
		v := b[target]
		cb := gallopLower(b[:bEnd], prevB, v)
		if cb <= prevB {
			continue // duplicate run spans the candidate subrange
		}
		ca := gallopLower(a[:aEnd], prevA, v)
		dst = append(dst, RangePair{
			A: Partition{Start: prevA, Count: ca - prevA},
			B: Partition{Start: prevB, Count: cb - prevB},
		})
		prevA, prevB = ca, cb
	}
	return append(dst, RangePair{
		A: Partition{Start: prevA, Count: aEnd - prevA},
		B: Partition{Start: prevB, Count: bEnd - prevB},
	})
}

// gallopLower returns the first index i in [from, len(vals)) with
// vals[i] >= v, assuming vals is sorted ascending from `from` on. It gallops
// (doubling steps) before the binary search, so successive searches with
// increasing `from` cost O(log distance) rather than O(log n) each.
func gallopLower(vals []uint64, from int, v uint64) int {
	if from >= len(vals) || vals[from] >= v {
		return from
	}
	// Invariant: vals[lo] < v. Double the step until the probe reaches >= v
	// or the end of the slice.
	lo, step := from, 1
	for lo+step < len(vals) && vals[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(vals) {
		hi = len(vals)
	}
	// Binary search in (lo, hi]: vals[lo] < v, vals[hi] >= v (or hi == len).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
