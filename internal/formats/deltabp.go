package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// deltaBPCodec implements the cascade of delta coding (logical level) with
// block-wise binary packing (physical level): the paper's DELTA+SIMD-BP512.
// Differences are taken modulo 2^64, so the format is lossless for arbitrary
// data; it only *compresses* well when the data is (nearly) sorted — which
// is exactly the case for the position lists produced by selections, the
// paper's running example of a beneficial intermediate format.
//
// Block layout: [base:1 word][bits:1 word][payload: 8*bits words], where
// base is the value preceding the block (0 for the first block) and the
// payload packs the 512 wrap-around deltas. Each block decodes independently.
type deltaBPCodec struct{}

func init() { register(deltaBPCodec{}) }

func (deltaBPCodec) Kind() columns.Kind { return columns.DeltaBP }
func (deltaBPCodec) BlockLenHint() int  { return BlockLen }

func appendDeltaBPBlock(words []uint64, blk []uint64, base uint64, scratch []uint64) []uint64 {
	prev := base
	for i, v := range blk {
		scratch[i] = v - prev
		prev = v
	}
	bits := bitutil.MaxBits(scratch[:len(blk)])
	words = append(words, base, uint64(bits))
	off := len(words)
	words = append(words, make([]uint64, payloadWords(bits))...)
	bitutil.Pack(words[off:], scratch[:len(blk)], bits)
	return words
}

func decodeDeltaBPBlock(words []uint64, w int, dst []uint64, scratch []uint64) (int, error) {
	if w+2 > len(words) {
		return 0, fmt.Errorf("%w: delta BP block header beyond buffer", ErrCorrupt)
	}
	base := words[w]
	bits := uint(words[w+1])
	if bits > 64 {
		return 0, fmt.Errorf("%w: delta BP block width %d", ErrCorrupt, bits)
	}
	w += 2
	pw := payloadWords(bits)
	if w+pw > len(words) {
		return 0, fmt.Errorf("%w: delta BP block payload beyond buffer", ErrCorrupt)
	}
	bitutil.Unpack(scratch[:BlockLen], words[w:w+pw], bits)
	v := base
	for i := 0; i < BlockLen; i++ {
		v += scratch[i]
		dst[i] = v
	}
	return w + pw, nil
}

func (deltaBPCodec) Compress(src []uint64, _ columns.FormatDesc) (*columns.Column, error) {
	nb := len(src) / BlockLen
	mainElems := nb * BlockLen
	words := make([]uint64, 0, 2*nb+len(src)/8)
	scratch := make([]uint64, BlockLen)
	base := uint64(0)
	for b := 0; b < nb; b++ {
		blk := src[b*BlockLen : (b+1)*BlockLen]
		words = appendDeltaBPBlock(words, blk, base, scratch)
		base = blk[BlockLen-1]
	}
	mainWords := len(words)
	words = append(words, src[mainElems:]...)
	return columns.New(columns.DeltaBPDesc, len(src), mainElems, mainWords, words)
}

func (deltaBPCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	if err := validateBlocked(col, "delta BP"); err != nil {
		return err
	}
	words := col.MainWords()
	scratch := make([]uint64, BlockLen)
	w := 0
	var err error
	for e := 0; e < col.MainElems(); e += BlockLen {
		if w, err = decodeDeltaBPBlock(words, w, dst[e:], scratch); err != nil {
			return blockContext(err, e, col.N())
		}
	}
	copy(dst[col.MainElems():], col.Remainder())
	return nil
}

func (deltaBPCodec) NewReader(col *columns.Column) Reader {
	return &deltaBPReader{col: col, scratch: make([]uint64, BlockLen)}
}

func (deltaBPCodec) NewWriter(_ columns.FormatDesc, sizeHint int) Writer {
	return &deltaBPWriter{
		words:   make([]uint64, 0, sizeHint/8),
		pending: make([]uint64, 0, BlockLen),
		scratch: make([]uint64, BlockLen),
	}
}

type deltaBPReader struct {
	col     *columns.Column
	scratch []uint64
	w       int
	elem    int
}

func (r *deltaBPReader) Read(dst []uint64) (int, error) {
	if err := validateBlocked(r.col, "delta BP"); err != nil {
		return 0, err
	}
	k := 0
	words := r.col.MainWords()
	for r.elem < r.col.MainElems() {
		if len(dst)-k < BlockLen {
			if k == 0 {
				return 0, ErrSmallBuffer
			}
			return k, nil
		}
		w, err := decodeDeltaBPBlock(words, r.w, dst[k:], r.scratch)
		if err != nil {
			return k, blockContext(err, r.elem, r.col.N())
		}
		r.w = w
		r.elem += BlockLen
		k += BlockLen
	}
	rem := r.col.Remainder()
	off := r.elem - r.col.MainElems()
	c := copy(dst[k:], rem[off:])
	r.elem += c
	return k + c, nil
}

type deltaBPWriter struct {
	words   []uint64
	pending []uint64
	scratch []uint64
	base    uint64
	n       int
	closed  bool
}

// seedPrev primes the writer as if prev had been the last element written:
// the first block's delta base becomes prev instead of 0, which is what lets
// a section writer over a block-aligned suffix of a larger stream produce
// bytes identical to the monolithic writer's (see NewSectionWriter).
func (w *deltaBPWriter) seedPrev(prev uint64) { w.base = prev }

func (w *deltaBPWriter) Write(vals []uint64) error {
	w.n += len(vals)
	if len(w.pending) == 0 {
		for len(vals) >= BlockLen {
			w.words = appendDeltaBPBlock(w.words, vals[:BlockLen], w.base, w.scratch)
			w.base = vals[BlockLen-1]
			vals = vals[BlockLen:]
		}
	}
	w.pending = append(w.pending, vals...)
	for len(w.pending) >= BlockLen {
		w.words = appendDeltaBPBlock(w.words, w.pending[:BlockLen], w.base, w.scratch)
		w.base = w.pending[BlockLen-1]
		rest := copy(w.pending, w.pending[BlockLen:])
		w.pending = w.pending[:rest]
	}
	return nil
}

func (w *deltaBPWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	mainWords := len(w.words)
	words := append(w.words, w.pending...)
	return columns.New(columns.DeltaBPDesc, w.n, w.n-len(w.pending), mainWords, words)
}
