package formats

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// dynBPCodec implements block-wise binary packing over 512-element blocks
// with a per-block bit width: the 64-bit port of SIMD-BP128 [Lemire/Boytsov]
// that the paper calls SIMD-BP512. Each block adapts to its local maximum,
// which is what makes the format robust against outliers (column C2).
//
// Block layout (word-aligned): [bits:1 word][payload: 8*bits words].
// 512 values of width b occupy exactly 8*b words.
type dynBPCodec struct{}

func init() { register(dynBPCodec{}) }

func (dynBPCodec) Kind() columns.Kind { return columns.DynBP }
func (dynBPCodec) BlockLenHint() int  { return BlockLen }

// payloadWords is the number of packed words of one block at width bits.
func payloadWords(bits uint) int { return int(bits) * (BlockLen / 64) }

func (dynBPCodec) Compress(src []uint64, _ columns.FormatDesc) (*columns.Column, error) {
	nb := len(src) / BlockLen
	mainElems := nb * BlockLen
	words := make([]uint64, 0, nb+len(src)/4)
	for b := 0; b < nb; b++ {
		words = appendDynBPBlock(words, src[b*BlockLen:(b+1)*BlockLen])
	}
	mainWords := len(words)
	words = append(words, src[mainElems:]...)
	return columns.New(columns.DynBPDesc, len(src), mainElems, mainWords, words)
}

// appendDynBPBlock encodes one full block of BlockLen values.
func appendDynBPBlock(words []uint64, blk []uint64) []uint64 {
	bits := bitutil.MaxBits(blk)
	words = append(words, uint64(bits))
	off := len(words)
	words = append(words, make([]uint64, payloadWords(bits))...)
	bitutil.Pack(words[off:], blk, bits)
	return words
}

// decodeDynBPBlock decodes one block starting at words[w] into dst[:BlockLen]
// and returns the next word offset.
func decodeDynBPBlock(words []uint64, w int, dst []uint64) (int, error) {
	if w >= len(words) {
		return 0, fmt.Errorf("%w: dyn BP block header beyond buffer", ErrCorrupt)
	}
	bits := uint(words[w])
	if bits > 64 {
		return 0, fmt.Errorf("%w: dyn BP block width %d", ErrCorrupt, bits)
	}
	w++
	pw := payloadWords(bits)
	if w+pw > len(words) {
		return 0, fmt.Errorf("%w: dyn BP block payload beyond buffer", ErrCorrupt)
	}
	bitutil.Unpack(dst[:BlockLen], words[w:w+pw], bits)
	return w + pw, nil
}

func (dynBPCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	if err := validateBlocked(col, "dyn BP"); err != nil {
		return err
	}
	words := col.MainWords()
	w := 0
	var err error
	for e := 0; e < col.MainElems(); e += BlockLen {
		if w, err = decodeDynBPBlock(words, w, dst[e:]); err != nil {
			return blockContext(err, e, col.N())
		}
	}
	copy(dst[col.MainElems():], col.Remainder())
	return nil
}

func (dynBPCodec) NewReader(col *columns.Column) Reader {
	return &dynBPReader{col: col}
}

func (dynBPCodec) NewWriter(_ columns.FormatDesc, sizeHint int) Writer {
	return &dynBPWriter{
		words:   make([]uint64, 0, sizeHint/4),
		pending: make([]uint64, 0, BlockLen),
	}
}

type dynBPReader struct {
	col  *columns.Column
	w    int // word cursor in main part
	elem int // elements produced so far
}

func (r *dynBPReader) Read(dst []uint64) (int, error) {
	if err := validateBlocked(r.col, "dyn BP"); err != nil {
		return 0, err
	}
	k := 0
	words := r.col.MainWords()
	for r.elem < r.col.MainElems() {
		if len(dst)-k < BlockLen {
			if k == 0 {
				return 0, ErrSmallBuffer
			}
			return k, nil
		}
		w, err := decodeDynBPBlock(words, r.w, dst[k:])
		if err != nil {
			return k, blockContext(err, r.elem, r.col.N())
		}
		r.w = w
		r.elem += BlockLen
		k += BlockLen
	}
	// Uncompressed remainder.
	rem := r.col.Remainder()
	off := r.elem - r.col.MainElems()
	c := copy(dst[k:], rem[off:])
	r.elem += c
	return k + c, nil
}

type dynBPWriter struct {
	words   []uint64
	pending []uint64
	n       int
	closed  bool
}

func (w *dynBPWriter) Write(vals []uint64) error {
	w.n += len(vals)
	// Fast path: consume full blocks directly from the input.
	if len(w.pending) == 0 {
		for len(vals) >= BlockLen {
			w.words = appendDynBPBlock(w.words, vals[:BlockLen])
			vals = vals[BlockLen:]
		}
	}
	w.pending = append(w.pending, vals...)
	for len(w.pending) >= BlockLen {
		w.words = appendDynBPBlock(w.words, w.pending[:BlockLen])
		rest := copy(w.pending, w.pending[BlockLen:])
		w.pending = w.pending[:rest]
	}
	return nil
}

func (w *dynBPWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	mainWords := len(w.words)
	words := append(w.words, w.pending...)
	return columns.New(columns.DynBPDesc, w.n, w.n-len(w.pending), mainWords, words)
}
