package formats

import (
	"fmt"

	"morphstore/internal/columns"
)

// uncomprCodec implements the trivial uncompressed format: one 64-bit word
// per data element, main part only, no remainder.
type uncomprCodec struct{}

func init() { register(uncomprCodec{}) }

func (uncomprCodec) Kind() columns.Kind { return columns.Uncompressed }
func (uncomprCodec) BlockLenHint() int  { return 1 }

func (uncomprCodec) Compress(src []uint64, _ columns.FormatDesc) (*columns.Column, error) {
	buf := make([]uint64, len(src))
	copy(buf, src)
	return columns.FromValues(buf), nil
}

func (uncomprCodec) Decompress(dst []uint64, col *columns.Column) error {
	if len(dst) != col.N() {
		return fmt.Errorf("formats: decompress destination has %d elements, want %d", len(dst), col.N())
	}
	copy(dst, col.Words())
	return nil
}

func (uncomprCodec) NewReader(col *columns.Column) Reader {
	return &uncomprReader{vals: col.Words()}
}

func (uncomprCodec) NewWriter(_ columns.FormatDesc, sizeHint int) Writer {
	return &uncomprWriter{vals: make([]uint64, 0, sizeHint)}
}

type uncomprReader struct {
	vals []uint64
	pos  int
}

func (r *uncomprReader) Read(dst []uint64) (int, error) {
	n := copy(dst, r.vals[r.pos:])
	r.pos += n
	return n, nil
}

// View exposes the remaining values without copying: the direct-data-access
// fast path of the purely-uncompressed integration degree.
func (r *uncomprReader) View() ([]uint64, bool) {
	v := r.vals[r.pos:]
	r.pos = len(r.vals)
	return v, true
}

type uncomprWriter struct {
	vals   []uint64
	closed bool
}

func (w *uncomprWriter) Write(vals []uint64) error {
	w.vals = append(w.vals, vals...)
	return nil
}

func (w *uncomprWriter) Close() (*columns.Column, error) {
	if w.closed {
		return nil, fmt.Errorf("formats: writer already closed")
	}
	w.closed = true
	return columns.FromValues(w.vals), nil
}
