package formats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
)

// TestStaticBPGatherOrders verifies the group-cached gather on every access
// pattern: sorted (the common case for position lists), reverse, random,
// repeated, and straddling the partial tail group.
func TestStaticBPGatherOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1000 // not a multiple of 64: exercises the partial tail group
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100000))
	}
	col, err := Compress(vals, columns.StaticBPDesc(0))
	if err != nil {
		t.Fatal(err)
	}

	patterns := map[string][]uint64{}
	sorted := make([]uint64, 0, n)
	for i := 0; i < n; i += 3 {
		sorted = append(sorted, uint64(i))
	}
	patterns["sorted"] = sorted
	rev := make([]uint64, len(sorted))
	for i, v := range sorted {
		rev[len(sorted)-1-i] = v
	}
	patterns["reverse"] = rev
	rnd := make([]uint64, 500)
	for i := range rnd {
		rnd[i] = uint64(rng.Intn(n))
	}
	patterns["random"] = rnd
	patterns["repeated"] = []uint64{5, 5, 5, 999, 999, 5, 0, 999}
	patterns["tail_only"] = []uint64{960, 970, 980, 999, 961}

	for name, idx := range patterns {
		ra, err := RandomAccess(col)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, len(idx))
		ra.Gather(dst, idx)
		for j, ix := range idx {
			if dst[j] != vals[ix] {
				t.Fatalf("%s: Gather[%d] (pos %d) = %d, want %d", name, j, ix, dst[j], vals[ix])
			}
		}
	}
}

// TestStaticBPGatherZeroWidth covers the all-zero column accessor.
func TestStaticBPGatherZeroWidth(t *testing.T) {
	col, err := Compress(make([]uint64, 200), columns.StaticBPDesc(0))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RandomAccess(col)
	if err != nil {
		t.Fatal(err)
	}
	dst := []uint64{7, 7, 7}
	ra.Gather(dst, []uint64{0, 100, 199})
	for i, v := range dst {
		if v != 0 {
			t.Errorf("elem %d = %d, want 0", i, v)
		}
	}
}

// Property: Gather agrees with Get for arbitrary widths and index sets.
func TestGatherEqualsGetProperty(t *testing.T) {
	f := func(raw []uint64, idxRaw []uint16, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		width := uint(w8%63) + 1
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = v & bitutil.Mask(width)
		}
		col, err := Compress(vals, columns.StaticBPDesc(0))
		if err != nil {
			return false
		}
		ra, err := RandomAccess(col)
		if err != nil {
			return false
		}
		idx := make([]uint64, len(idxRaw))
		for i, v := range idxRaw {
			idx[i] = uint64(int(v) % len(vals))
		}
		dst := make([]uint64, len(idx))
		ra.Gather(dst, idx)
		for j, ix := range idx {
			if dst[j] != vals[ix] || ra.Get(int(ix)) != vals[ix] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
