package dict

import (
	"errors"
	"testing"

	"morphstore/internal/qerr"
)

// FuzzDictJournal drives arbitrary bytes through the journal replayer: it
// must never panic, and must either succeed (for byte streams that happen to
// be valid journals) or fail with an error matching qerr.ErrCorruptData.
// Valid journals must round-trip byte-identically through the replayed
// dictionary.
func FuzzDictJournal(f *testing.F) {
	f.Add([]byte{})
	d := New()
	if _, err := d.Add([]string{"alpha", "beta"}); err != nil {
		f.Fatal(err)
	}
	if _, err := d.Add([]string{"gamma", ""}); err != nil {
		f.Fatal(err)
	}
	j := d.Journal()
	f.Add(j)
	f.Add(j[:len(j)-1])
	f.Add(append(append([]byte(nil), j...), j...))
	f.Add(encodeAdd(nil, []string{"x"}))
	f.Fuzz(func(t *testing.T, b []byte) {
		rd, err := Replay(b)
		if err != nil {
			if !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("non-taxonomy error: %v", err)
			}
			return
		}
		// A valid journal replays deterministically: the rebuilt journal
		// replays to the same dictionary again.
		rd2, err := Replay(rd.Journal())
		if err != nil {
			t.Fatalf("replayed journal does not replay: %v", err)
		}
		if rd2.Snap().Len() != rd.Snap().Len() {
			t.Fatalf("re-replay has %d strings, want %d", rd2.Snap().Len(), rd.Snap().Len())
		}
	})
}
