package dict

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

func TestDictAddAssignsFirstOccurrenceIDs(t *testing.T) {
	d := New()
	ids, err := d.Add([]string{"cherry", "apple", "cherry", "banana", "apple"})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	s := d.Snap()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Sorted() {
		t.Fatal("unsorted additions reported sorted")
	}
	if id, ok := s.ID("banana"); !ok || id != 2 {
		t.Fatalf("ID(banana) = %d,%v", id, ok)
	}
	if _, ok := s.ID("durian"); ok {
		t.Fatal("unknown string resolved")
	}
	if str, ok := s.String(1); !ok || str != "apple" {
		t.Fatalf("String(1) = %q,%v", str, ok)
	}
	if _, ok := s.String(3); ok {
		t.Fatal("out-of-range ID resolved")
	}
	got, err := s.Strings([]uint64{2, 0})
	if err != nil || !reflect.DeepEqual(got, []string{"banana", "cherry"}) {
		t.Fatalf("Strings = %v, %v", got, err)
	}
	if _, err := s.Strings([]uint64{9}); err == nil {
		t.Fatal("out-of-range Strings succeeded")
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
}

func TestDictSnapshotsAreImmutable(t *testing.T) {
	d := New()
	if _, err := d.Add([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	s1 := d.Snap()
	if _, err := d.Add([]string{"c", "d"}); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 2 {
		t.Fatalf("pinned snapshot grew to %d", s1.Len())
	}
	if _, ok := s1.ID("c"); ok {
		t.Fatal("pinned snapshot sees later string")
	}
	if d.Snap().Len() != 4 {
		t.Fatalf("current snapshot has %d strings", d.Snap().Len())
	}
	if d.Snap().Gen() != s1.Gen() {
		t.Fatal("append bumped the generation")
	}
}

func TestDictSortedMaintenance(t *testing.T) {
	d := New()
	if !d.Snap().Sorted() {
		t.Fatal("empty dict not sorted")
	}
	if _, err := d.Add([]string{"apple", "banana"}); err != nil {
		t.Fatal(err)
	}
	if !d.Snap().Sorted() {
		t.Fatal("ascending appends lost sortedness")
	}
	if _, err := d.Add([]string{"cherry", "aardvark"}); err != nil {
		t.Fatal(err)
	}
	if d.Snap().Sorted() {
		t.Fatal("out-of-order append kept sortedness")
	}
}

func TestDictPrefix(t *testing.T) {
	d := New()
	if _, err := d.Add([]string{"app", "apple", "apricot", "banana", "bar"}); err != nil {
		t.Fatal(err)
	}
	s := d.Snap()
	lo, hi, ok := s.PrefixRange("ap")
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("PrefixRange(ap) = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := s.PrefixRange("zz"); ok {
		t.Fatal("absent prefix matched")
	}
	if lo, hi, ok := s.PrefixRange(""); !ok || lo != 0 || hi != 4 {
		t.Fatalf("PrefixRange(empty) = %d,%d,%v", lo, hi, ok)
	}
	if ids := s.PrefixIDs("ba"); !reflect.DeepEqual(ids, []uint64{3, 4}) {
		t.Fatalf("PrefixIDs(ba) = %v", ids)
	}

	// Unsorted dictionary: PrefixRange declines, PrefixIDs scans.
	d2 := New()
	if _, err := d2.Add([]string{"beta", "alpha", "beak"}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d2.Snap().PrefixRange("be"); ok {
		t.Fatal("PrefixRange on unsorted snapshot")
	}
	if ids := d2.Snap().PrefixIDs("be"); !reflect.DeepEqual(ids, []uint64{0, 2}) {
		t.Fatalf("PrefixIDs(be) = %v", ids)
	}
}

func TestDictSortedRebuild(t *testing.T) {
	d := New()
	if _, err := d.Add([]string{"cherry", "apple", "banana"}); err != nil {
		t.Fatal(err)
	}
	r := d.BeginSorted()
	if r == nil {
		t.Fatal("BeginSorted returned nil on unsorted dict")
	}
	// cherry=0 apple=1 banana=2 → apple=0 banana=1 cherry=2.
	if got := r.Remap(0); got != 2 {
		t.Fatalf("Remap(cherry) = %d", got)
	}
	vals := []uint64{0, 1, 2, 0}
	r.RemapAll(vals)
	if !reflect.DeepEqual(vals, []uint64{2, 0, 1, 2}) {
		t.Fatalf("RemapAll = %v", vals)
	}
	if len(r.RemapTable()) != 3 {
		t.Fatalf("RemapTable len = %d", len(r.RemapTable()))
	}
	// Strings added between Begin and Complete keep their IDs.
	if _, err := d.Add([]string{"aaa"}); err != nil {
		t.Fatal(err)
	}
	gen0 := d.Snap().Gen()
	d.CompleteSorted(r)
	s := d.Snap()
	if s.Gen() != gen0+1 {
		t.Fatalf("gen = %d, want %d", s.Gen(), gen0+1)
	}
	if s.Sorted() {
		t.Fatal("snapshot with late adds reported sorted")
	}
	for want, str := range []string{"apple", "banana", "cherry", "aaa"} {
		if id, ok := s.ID(str); !ok || id != uint64(want) {
			t.Fatalf("ID(%s) = %d,%v want %d", str, id, ok, want)
		}
	}
	if r.Remap(3) != 3 {
		t.Fatal("late ID remapped")
	}

	// A second rebuild sorts the stragglers; no further adds → sorted.
	r2 := d.BeginSorted()
	if r2 == nil {
		t.Fatal("second BeginSorted nil")
	}
	d.CompleteSorted(r2)
	if s := d.Snap(); !s.Sorted() || s.Len() != 4 {
		t.Fatalf("after second rebuild: sorted=%v len=%d", s.Sorted(), s.Len())
	}
	if d.BeginSorted() != nil {
		t.Fatal("BeginSorted on sorted dict not nil")
	}
	// Journal of the rebuilt dict replays to the same mapping.
	rd, err := Replay(d.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd.Snap().strs, d.Snap().strs) {
		t.Fatalf("replayed strings %v != %v", rd.Snap().strs, d.Snap().strs)
	}
}

func TestDictJournalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := New()
	var all []string
	for batch := 0; batch < 20; batch++ {
		n := rng.Intn(8)
		strs := make([]string, n)
		for i := range strs {
			strs[i] = fmt.Sprintf("s%03d", rng.Intn(60))
		}
		if _, err := d.Add(strs); err != nil {
			t.Fatal(err)
		}
		all = append(all, strs...)
	}
	rd, err := Replay(d.Journal())
	if err != nil {
		t.Fatal(err)
	}
	if rd.Snap().Len() != d.Snap().Len() {
		t.Fatalf("replayed %d strings, want %d", rd.Snap().Len(), d.Snap().Len())
	}
	for _, s := range all {
		a, aok := d.Snap().ID(s)
		b, bok := rd.Snap().ID(s)
		if !aok || !bok || a != b {
			t.Fatalf("ID(%q): %d,%v vs replayed %d,%v", s, a, aok, b, bok)
		}
	}
	// Replayed journal bytes are identical.
	if !reflect.DeepEqual(rd.Journal(), d.Journal()) {
		t.Fatal("replayed journal differs")
	}
}

func TestDictJournalCorruption(t *testing.T) {
	d := New()
	if _, err := d.Add([]string{"alpha", "beta", "gamma"}); err != nil {
		t.Fatal(err)
	}
	j := d.Journal()
	cases := map[string][]byte{
		"truncated header":  j[:3],
		"truncated payload": j[:len(j)-9],
		"bit flip":          flip(j, len(j)/2),
		"bad kind":          flip(j, 0),
		"trailing garbage":  append(append([]byte(nil), j...), 0xFF),
	}
	for name, b := range cases {
		if _, err := Replay(b); !errors.Is(err, qerr.ErrCorruptData) {
			t.Errorf("%s: err = %v, want ErrCorruptData", name, err)
		}
	}
	// Duplicate string across records.
	dup := append(append([]byte(nil), j...), encodeAdd(nil, []string{"beta"})...)
	if _, err := Replay(dup); !errors.Is(err, qerr.ErrCorruptData) {
		t.Errorf("duplicate: err = %v, want ErrCorruptData", err)
	}
	// Empty journal replays to an empty dict.
	if rd, err := Replay(nil); err != nil || rd.Snap().Len() != 0 {
		t.Errorf("empty replay: %v", err)
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

func TestDictOversizedString(t *testing.T) {
	d := New()
	if _, err := d.Add([]string{strings.Repeat("x", maxStrLen+1)}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("err = %v, want ErrInvalidSchema", err)
	}
	if d.Snap().Len() != 0 {
		t.Fatal("failed add mutated dict")
	}
}

func TestDictFaultPoints(t *testing.T) {
	defer faultpoint.DisarmAll()
	d := New()
	if _, err := d.Add([]string{"keep"}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")

	faultpoint.DictLookupMiss.Arm(func() error { return boom })
	if _, err := d.Add([]string{"fresh"}); !errors.Is(err, boom) {
		t.Fatalf("lookup-miss err = %v", err)
	}
	// Known strings do not take the miss path.
	if _, err := d.Add([]string{"keep"}); err != nil {
		t.Fatalf("known string hit the miss path: %v", err)
	}
	faultpoint.DictLookupMiss.Disarm()

	faultpoint.DictPersist.Arm(func() error { return boom })
	if _, err := d.Add([]string{"fresh"}); !errors.Is(err, boom) {
		t.Fatalf("persist err = %v", err)
	}
	faultpoint.DictPersist.Disarm()

	if d.Snap().Len() != 1 {
		t.Fatalf("failed adds mutated dict: %d strings", d.Snap().Len())
	}
	if _, err := d.Add([]string{"fresh"}); err != nil {
		t.Fatal(err)
	}
	if d.Snap().Len() != 2 {
		t.Fatal("add after disarm failed")
	}
}

func TestDictConcurrentAddAndSnap(t *testing.T) {
	d := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := d.Add([]string{fmt.Sprintf("w%d", i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s := d.Snap()
		for id := 0; id < s.Len(); id++ {
			str, ok := s.String(uint64(id))
			if !ok {
				t.Fatalf("id %d missing", id)
			}
			if got, ok := s.ID(str); !ok || got != uint64(id) {
				t.Fatalf("ID(%q) = %d,%v want %d", str, got, ok, id)
			}
		}
	}
	<-done
}
