// Package dict implements per-column string dictionaries: append-only
// string→ID translators behind an atomic snapshot, so a string column
// becomes a dictionary plus a plain uint64 ID column that the existing
// formats compress and the existing morsel-parallel operators execute.
//
// IDs are assigned in first-occurrence order, so appends never renumber
// existing rows; a snapshot taken at any moment stays valid forever for the
// rows written under it. Renumbering happens only through the explicit
// sorted-rebuild protocol (BeginSorted/CompleteSorted) the engine drives
// during remorph, which rewrites the ID column and the dictionary together
// under the engine's coherence locks — after it, IDs are in lexicographic
// order and prefix predicates become contiguous ID ranges.
//
// Every mutation is journaled with the same FNV-checksummed record framing
// as the delta journal (see internal/delta/log.go), so a dictionary persists
// and replays alongside its table's delta journal with the same corruption
// taxonomy: Replay never panics and classifies every structural defect as
// qerr.ErrCorruptData (FuzzDictJournal drives this contract).
package dict

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// Snap is an immutable dictionary snapshot: a bidirectional string↔ID
// mapping frozen at one publish. Readers translate predicates and results
// against a Snap without locks; a Snap taken after a table state was read is
// always a superset of the IDs that state contains.
type Snap struct {
	strs   []string
	ids    map[string]uint64
	gen    uint64
	sorted bool
}

// Len returns the number of distinct strings in the snapshot. IDs are dense:
// every ID in [0, Len()) is valid.
func (s *Snap) Len() int { return len(s.strs) }

// Gen returns the snapshot's renumbering generation. Appending new strings
// keeps the generation (existing IDs are unchanged, so a translation cached
// at (gen, len) stays valid); only a sorted rebuild, which renumbers, bumps
// it.
func (s *Snap) Gen() uint64 { return s.gen }

// Sorted reports whether the snapshot's strings are in ascending
// lexicographic ID order, making prefix predicates contiguous ID ranges.
func (s *Snap) Sorted() bool { return s.sorted }

// ID returns the ID of str and whether it is in the dictionary.
func (s *Snap) ID(str string) (uint64, bool) {
	id, ok := s.ids[str]
	return id, ok
}

// String returns the string with the given ID and whether the ID is in
// range.
func (s *Snap) String(id uint64) (string, bool) {
	if id >= uint64(len(s.strs)) {
		return "", false
	}
	return s.strs[id], true
}

// Strings translates a column of IDs back to strings, erroring on any ID
// outside the dictionary.
func (s *Snap) Strings(ids []uint64) ([]string, error) {
	out := make([]string, len(ids))
	for i, id := range ids {
		if id >= uint64(len(s.strs)) {
			return nil, fmt.Errorf("dict: id %d out of range (%d strings)", id, len(s.strs))
		}
		out[i] = s.strs[id]
	}
	return out, nil
}

// PrefixRange returns the inclusive ID range [lo, hi] of the strings with
// the given prefix. It requires a sorted snapshot (the run is contiguous
// only then); ok is false on an unsorted snapshot or when no string matches.
func (s *Snap) PrefixRange(prefix string) (lo, hi uint64, ok bool) {
	if !s.sorted {
		return 0, 0, false
	}
	first := sort.Search(len(s.strs), func(i int) bool { return s.strs[i] >= prefix })
	// Strings sort before all their extensions, so the prefixed run starts at
	// first and the predicate below is monotone across the sorted order.
	end := sort.Search(len(s.strs), func(i int) bool {
		return s.strs[i] > prefix && !strings.HasPrefix(s.strs[i], prefix)
	})
	if first >= end {
		return 0, 0, false
	}
	return uint64(first), uint64(end - 1), true
}

// PrefixIDs returns the ascending IDs of every string with the given prefix,
// on any snapshot (a linear scan when unsorted).
func (s *Snap) PrefixIDs(prefix string) []uint64 {
	if s.sorted {
		lo, hi, ok := s.PrefixRange(prefix)
		if !ok {
			return nil
		}
		out := make([]uint64, 0, hi-lo+1)
		for id := lo; id <= hi; id++ {
			out = append(out, id)
		}
		return out
	}
	var out []uint64
	for id, str := range s.strs {
		if strings.HasPrefix(str, prefix) {
			out = append(out, uint64(id))
		}
	}
	return out
}

// Bytes returns the approximate heap footprint of the snapshot: string
// payloads plus per-entry slice and map overhead.
func (s *Snap) Bytes() int64 {
	var b int64
	for _, str := range s.strs {
		// Each string is held twice (slice and map key): payload ×2, a string
		// header in the slice, and ~48 bytes of map bucket amortized.
		b += 2*int64(len(str)) + 16 + 48
	}
	return b
}

// Dict is one column's dictionary: a mutable translator publishing immutable
// snapshots. All methods are safe for concurrent use; readers are lock-free.
type Dict struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Snap]
	strs    []string // append-only backing of every snapshot's strs
	journal []byte
}

// New returns an empty dictionary. An empty dictionary is vacuously sorted.
func New() *Dict {
	d := &Dict{}
	d.cur.Store(&Snap{ids: map[string]uint64{}, sorted: true})
	return d
}

// Snap returns the current snapshot.
func (d *Dict) Snap() *Snap { return d.cur.Load() }

// Add translates strs to IDs, assigning fresh IDs in first-occurrence order
// to strings not yet in the dictionary and publishing a new snapshot if any
// were added. On error (injected at the dict-lookup-miss and dict-persist
// fault points) the dictionary is unchanged — the journal record and the
// snapshot publish happen only after every hit passed.
func (d *Dict) Add(strs []string) ([]uint64, error) {
	if len(strs) == 0 {
		return nil, nil
	}
	for _, str := range strs {
		if len(str) > maxStrLen {
			return nil, qerr.Tag(fmt.Errorf("dict: string of %d bytes exceeds the %d-byte limit", len(str), maxStrLen), qerr.ErrInvalidSchema)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	ids := make([]uint64, len(strs))
	var fresh []string
	var pending map[string]uint64
	for i, str := range strs {
		if id, ok := s.ids[str]; ok {
			ids[i] = id
			continue
		}
		if id, ok := pending[str]; ok {
			ids[i] = id
			continue
		}
		if err := faultpoint.DictLookupMiss.Hit(); err != nil {
			return nil, fmt.Errorf("dict: translate %q: %w", str, err)
		}
		id := uint64(len(s.strs) + len(fresh))
		if pending == nil {
			pending = make(map[string]uint64)
		}
		pending[str] = id
		fresh = append(fresh, str)
		ids[i] = id
	}
	if len(fresh) == 0 {
		return ids, nil
	}
	if err := faultpoint.DictPersist.Hit(); err != nil {
		return nil, fmt.Errorf("dict: persist: %w", err)
	}
	d.journal = encodeAdd(d.journal, fresh)
	d.publish(s, fresh)
	return ids, nil
}

// publish extends the backing array with fresh strings and stores the next
// snapshot; the caller holds d.mu and has journaled fresh.
func (d *Dict) publish(s *Snap, fresh []string) {
	d.strs = append(d.strs, fresh...)
	ids := make(map[string]uint64, len(s.ids)+len(fresh))
	for str, id := range s.ids {
		ids[str] = id
	}
	sorted := s.sorted
	last := ""
	havePrev := len(s.strs) > 0
	if havePrev {
		last = s.strs[len(s.strs)-1]
	}
	for i, str := range fresh {
		ids[str] = uint64(len(s.strs) + i)
		if havePrev && str <= last {
			sorted = false
		}
		last, havePrev = str, true
	}
	ns := &Snap{strs: d.strs[:len(d.strs):len(d.strs)], ids: ids, gen: s.gen, sorted: sorted}
	d.cur.Store(ns)
}

// Journal returns the dictionary's journal: replaying it with Replay
// reproduces the dictionary's current snapshot. The returned slice aliases
// the live journal and must not be modified; it is only appended to.
func (d *Dict) Journal() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.journal[:len(d.journal):len(d.journal)]
}

// Rebuild is an in-progress sorted renumbering pinned against one snapshot.
// The engine computes it off-line during remorph (Remap rewrites the ID
// column being rebuilt), then publishes it with CompleteSorted under the
// same locks that swap the rebuilt column in.
type Rebuild struct {
	base  *Snap
	strs  []string // base's strings in sorted order
	remap []uint64 // remap[oldID] = newID, len == base.Len()
}

// BeginSorted pins the current snapshot and computes its sorted
// renumbering. It returns nil when the snapshot is already sorted (nothing
// to do). Concurrent Adds remain allowed; strings added after the pin keep
// their IDs through CompleteSorted (they renumber on the next rebuild).
func (d *Dict) BeginSorted() *Rebuild {
	base := d.cur.Load()
	if base.sorted {
		return nil
	}
	order := make([]int, len(base.strs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return base.strs[order[a]] < base.strs[order[b]] })
	strs := make([]string, len(order))
	remap := make([]uint64, len(order))
	for newID, oldID := range order {
		strs[newID] = base.strs[oldID]
		remap[oldID] = uint64(newID)
	}
	return &Rebuild{base: base, strs: strs, remap: remap}
}

// Remap translates one old ID to its post-rebuild ID. IDs at or beyond the
// pinned snapshot (strings added after BeginSorted) are unchanged.
func (r *Rebuild) Remap(id uint64) uint64 {
	if id < uint64(len(r.remap)) {
		return r.remap[id]
	}
	return id
}

// RemapTable returns the renumbering table itself: remap[oldID] = newID for
// every ID of the pinned snapshot. The delta store applies it to tail rows
// that survive the swap.
func (r *Rebuild) RemapTable() []uint64 { return r.remap }

// RemapAll rewrites a value slice in place through Remap.
func (r *Rebuild) RemapAll(vals []uint64) {
	for i, v := range vals {
		if v < uint64(len(r.remap)) {
			vals[i] = r.remap[v]
		}
	}
}

// CompleteSorted publishes the renumbering: the pinned strings in sorted
// order, followed by any strings added since BeginSorted at their unchanged
// IDs. The journal is rewritten to a single record in the new order and the
// generation is bumped (cached translations invalidate). The caller must
// hold whatever locks make the renumbered ID column and this publish atomic
// to readers — the engine calls this from the delta store's swap callback.
func (d *Dict) CompleteSorted(r *Rebuild) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	n0 := len(r.base.strs)
	strs := make([]string, 0, len(s.strs))
	strs = append(strs, r.strs...)
	strs = append(strs, s.strs[n0:]...)
	ids := make(map[string]uint64, len(strs))
	for id, str := range strs {
		ids[str] = uint64(id)
	}
	d.strs = strs
	d.journal = nil
	if len(strs) > 0 {
		d.journal = encodeAdd(nil, strs)
	}
	ns := &Snap{
		strs:   d.strs[:len(d.strs):len(d.strs)],
		ids:    ids,
		gen:    s.gen + 1,
		sorted: len(s.strs) == n0, // concurrent adds land unsorted at the end
	}
	d.cur.Store(ns)
}
