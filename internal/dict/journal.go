package dict

import (
	"encoding/binary"
	"fmt"

	"morphstore/internal/qerr"
)

// This file implements the dictionary journal wire codec, sharing the delta
// journal's record framing (internal/delta/log.go) so a dictionary persists
// alongside its table's journal under one corruption taxonomy: every record
// is length-prefixed and FNV-1a checksummed, the decoder never panics, never
// allocates proportionally to an unvalidated length, and classifies every
// structural defect as qerr.ErrCorruptData (FuzzDictJournal drives this).
//
// Record layout (little-endian):
//
//	u8  kind        recAdd
//	u32 payloadLen  bytes of payload
//	[]  payload
//	u64 checksum    FNV-1a over kind, payloadLen, payload
//
// Add payload: u32 count, then count strings as u16 length + bytes. IDs are
// implicit: the i-th string of the journal (across records) has ID i, the
// same first-occurrence order Add assigns. A sorted rebuild rewrites the
// whole journal to one record in the new ID order, mirroring the delta
// journal rewrite at remorph swap.
const (
	recAdd = 1

	recHeaderLen   = 5 // kind + payload length
	recChecksumLen = 8
	maxStrLen      = 1<<16 - 1
)

// corrupt wraps a journal decoding defect with the corruption sentinel.
func corrupt(format string, args ...any) error {
	return qerr.Tag(fmt.Errorf("dict: journal: "+format, args...), qerr.ErrCorruptData)
}

// fnv1a is the 64-bit FNV-1a hash the record checksums use (identical to the
// delta journal's).
func fnv1a(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// appendRecord frames one record: header, payload, checksum.
func appendRecord(dst []byte, kind byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	sum := fnv1a(fnv1a(fnvOffset, hdr[:]), payload)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint64(dst, sum)
}

// encodeAdd appends an add record for the fresh strings, in ID order.
func encodeAdd(dst []byte, strs []string) []byte {
	payload := binary.LittleEndian.AppendUint32(nil, uint32(len(strs)))
	for _, s := range strs {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(s)))
		payload = append(payload, s...)
	}
	return appendRecord(dst, recAdd, payload)
}

// readRecord decodes the first record of b into strs (in ID order) and
// returns the remaining bytes. Every defect — truncation, a bad checksum, an
// unknown kind, an oversized string, trailing bytes — is an error matching
// qerr.ErrCorruptData.
func readRecord(b []byte) ([]string, []byte, error) {
	if len(b) < recHeaderLen+recChecksumLen {
		return nil, nil, corrupt("truncated record header (%d bytes)", len(b))
	}
	kind := b[0]
	plen := int(binary.LittleEndian.Uint32(b[1:recHeaderLen]))
	if plen > len(b)-recHeaderLen-recChecksumLen {
		return nil, nil, corrupt("truncated record payload (%d of %d bytes)", len(b)-recHeaderLen-recChecksumLen, plen)
	}
	payload := b[recHeaderLen : recHeaderLen+plen]
	sum := binary.LittleEndian.Uint64(b[recHeaderLen+plen:])
	if want := fnv1a(fnv1a(fnvOffset, b[:recHeaderLen]), payload); sum != want {
		return nil, nil, corrupt("checksum mismatch")
	}
	rest := b[recHeaderLen+plen+recChecksumLen:]
	if kind != recAdd {
		return nil, nil, corrupt("unknown record kind %d", kind)
	}
	strs, err := decodeAdd(payload)
	return strs, rest, err
}

// decodeAdd parses an add payload.
func decodeAdd(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, corrupt("add record: truncated count")
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if count == 0 {
		return nil, corrupt("add record: zero strings")
	}
	// The count is unvalidated input: cap the allocation hint, the loop is
	// bounded by the payload length checks.
	strs := make([]string, 0, min(count, 64))
	for i := 0; i < count; i++ {
		if len(p) < 2 {
			return nil, corrupt("add record: truncated string length")
		}
		slen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < slen {
			return nil, corrupt("add record: truncated string (%d of %d bytes)", len(p), slen)
		}
		strs = append(strs, string(p[:slen]))
		p = p[slen:]
	}
	if len(p) != 0 {
		return nil, corrupt("add record: %d trailing payload bytes", len(p))
	}
	return strs, nil
}

// Replay rebuilds a dictionary from a journal previously returned by
// Dict.Journal: the result holds the same string→ID mapping. A journal that
// is truncated, bit-flipped, or contains duplicate strings returns an error
// matching qerr.ErrCorruptData; Replay never panics on hostile input.
func Replay(journal []byte) (*Dict, error) {
	d := New()
	for len(journal) > 0 {
		strs, rest, err := readRecord(journal)
		if err != nil {
			return nil, err
		}
		journal = rest
		s := d.cur.Load()
		seen := make(map[string]struct{}, len(strs))
		for _, str := range strs {
			if _, ok := s.ids[str]; ok {
				return nil, corrupt("duplicate string %q", str)
			}
			if _, ok := seen[str]; ok {
				return nil, corrupt("duplicate string %q", str)
			}
			seen[str] = struct{}{}
		}
		d.journal = encodeAdd(d.journal, strs)
		d.publish(s, strs)
	}
	return d, nil
}
