// Package bitutil provides the bit-level kernels underlying every
// null-suppression (NS) compression format in MorphStore-Go: tight bit
// packing of 64-bit integers at arbitrary widths, random access into packed
// words, and SWAR (SIMD-within-a-register) primitives that process several
// packed fields per 64-bit word in parallel.
//
// Packing layout: values are stored LSB-first in a contiguous stream of
// 64-bit words. Value i occupies bit positions [i*bits, (i+1)*bits) of the
// stream; fields may straddle word boundaries. A convenient consequence is
// that 64 values of width b occupy exactly b words.
//go:generate go run ./gen

package bitutil

import "math/bits"

// Mask returns a mask with the low b bits set. b must be in [0, 64].
func Mask(b uint) uint64 {
	if b >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << b) - 1
}

// MaxBits returns the effective bit width of the largest value in vals,
// i.e. the smallest b such that every value fits in b bits. The width of an
// empty or all-zero slice is 0.
func MaxBits(vals []uint64) uint {
	var acc uint64
	for _, v := range vals {
		acc |= v
	}
	return uint(bits.Len64(acc))
}

// EffectiveBits returns the effective bit width of a single value.
func EffectiveBits(v uint64) uint { return uint(bits.Len64(v)) }

// PackedWords returns the number of 64-bit words required to store n values
// at the given width.
func PackedWords(n int, width uint) int {
	if width == 0 || n <= 0 {
		return 0
	}
	return int((uint64(n)*uint64(width) + 63) / 64)
}

// PackedBytes returns the number of bytes required to store n values at the
// given width, rounded up to whole 64-bit words.
func PackedBytes(n int, width uint) int { return PackedWords(n, width) * 8 }

// Pack packs all values of src at the given width into dst, LSB-first.
// dst must have at least PackedWords(len(src), width) entries and is not
// zeroed beyond the words written. Values wider than width are truncated to
// their low width bits. width must be in [0, 64].
func Pack(dst []uint64, src []uint64, width uint) {
	if width == 0 {
		return
	}
	if width == 64 {
		copy(dst, src)
		return
	}
	// Unrolled per-width kernels handle whole groups of 64 values.
	if f := pack64[width]; f != nil {
		i, w := 0, 0
		for ; i+64 <= len(src); i, w = i+64, w+int(width) {
			f(src[i:i+64], dst[w:])
		}
		src = src[i:]
		dst = dst[w:]
		if len(src) == 0 {
			return
		}
	}
	m := Mask(width)
	var acc uint64
	var used uint
	w := 0
	for _, v := range src {
		v &= m
		acc |= v << used
		used += width
		if used >= 64 {
			dst[w] = acc
			w++
			used -= 64
			if used > 0 {
				acc = v >> (width - used)
			} else {
				acc = 0
			}
		}
	}
	if used > 0 {
		dst[w] = acc
	}
}

// Unpack unpacks len(dst) values of the given width from src into dst.
// src must contain at least PackedWords(len(dst), width) words.
func Unpack(dst []uint64, src []uint64, width uint) {
	if width == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if width == 64 {
		copy(dst, src)
		return
	}
	// Unrolled per-width kernels handle whole groups of 64 values.
	if f := unpack64[width]; f != nil {
		i, w := 0, 0
		for ; i+64 <= len(dst); i, w = i+64, w+int(width) {
			f(src[w:], dst[i:i+64])
		}
		dst = dst[i:]
		src = src[w:]
		if len(dst) == 0 {
			return
		}
	}
	if 64%width == 0 {
		unpackAligned(dst, src, width)
		return
	}
	m := Mask(width)
	var bitpos uint
	w := 0
	for i := range dst {
		v := src[w] >> bitpos
		if rem := 64 - bitpos; rem < width {
			v |= src[w+1] << rem
		}
		dst[i] = v & m
		bitpos += width
		if bitpos >= 64 {
			bitpos -= 64
			w++
		}
	}
}

// unpackAligned handles widths that divide 64: fields never straddle words,
// which permits a branch-free inner loop over whole words.
func unpackAligned(dst []uint64, src []uint64, width uint) {
	m := Mask(width)
	per := int(64 / width)
	i := 0
	n := len(dst)
	for w := 0; i+per <= n; w++ {
		v := src[w]
		for l := 0; l < per; l++ {
			dst[i+l] = v & m
			v >>= width
		}
		i += per
	}
	if i < n {
		v := src[(i*int(width))/64]
		for ; i < n; i++ {
			dst[i] = v & m
			v >>= width
		}
	}
}

// UnpackGroup decodes the g-th group of 64 consecutive values from the
// packed word stream into dst. Groups are the natural decode unit of the
// packing layout (64 values of width w occupy exactly w words), which makes
// group-cached access to sorted position sequences nearly sequential-speed.
// The stream must contain all 64 values of the group.
func UnpackGroup(dst *[64]uint64, words []uint64, g int, width uint) {
	switch {
	case width == 0:
		*dst = [64]uint64{}
	case width == 64:
		copy(dst[:], words[g*64:])
	default:
		if f := unpack64[width]; f != nil {
			f(words[g*int(width):], dst[:])
			return
		}
		Unpack(dst[:], words[g*int(width):], width)
	}
}

// Get returns the i-th value of width bits from the packed word stream.
// This is the random-access primitive used by the static bit-packing format.
func Get(words []uint64, i int, width uint) uint64 {
	if width == 0 {
		return 0
	}
	if width == 64 {
		return words[i]
	}
	bitpos := uint64(i) * uint64(width)
	w := bitpos >> 6
	off := uint(bitpos & 63)
	v := words[w] >> off
	if rem := 64 - off; rem < width {
		v |= words[w+1] << rem
	}
	return v & Mask(width)
}

// Set writes value v at position i of the packed word stream. The target
// field must currently be zero (Set is append-oriented; it ORs bits in).
func Set(words []uint64, i int, width uint, v uint64) {
	if width == 0 {
		return
	}
	if width == 64 {
		words[i] = v
		return
	}
	v &= Mask(width)
	bitpos := uint64(i) * uint64(width)
	w := bitpos >> 6
	off := uint(bitpos & 63)
	words[w] |= v << off
	if rem := 64 - off; rem < width {
		words[w+1] |= v >> rem
	}
}

// ZigZag encodes a signed delta as an unsigned integer with small magnitude
// for small absolute deltas: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ...
func ZigZag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// UnZigZag reverses ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
