package bitutil

import (
	"math/rand"
	"testing"
)

// TestUnpackGroup verifies group decoding against Get for every width.
func TestUnpackGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 64 * 7
	for width := uint(0); width <= 64; width++ {
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64() & Mask(width)
		}
		words := make([]uint64, PackedWords(n, width))
		Pack(words, src, width)
		var group [64]uint64
		for g := 0; g < n/64; g++ {
			UnpackGroup(&group, words, g, width)
			for j := 0; j < 64; j++ {
				if group[j] != src[g*64+j] {
					t.Fatalf("width %d group %d elem %d: %x want %x",
						width, g, j, group[j], src[g*64+j])
				}
			}
		}
	}
}

// TestPackUnpackKernelsMatchGeneric pins the generated kernels against the
// generic cursor implementation on group-aligned data.
func TestPackUnpackKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for width := uint(1); width <= 63; width++ {
		src := make([]uint64, 128)
		for i := range src {
			src[i] = rng.Uint64() & Mask(width)
		}
		// Kernel path (whole groups).
		fast := make([]uint64, PackedWords(len(src), width))
		Pack(fast, src, width)
		// Generic path, forced by packing value-at-a-time with Set.
		slow := make([]uint64, PackedWords(len(src), width))
		for i, v := range src {
			Set(slow, i, width, v)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("width %d: word %d differs: %x vs %x", width, i, fast[i], slow[i])
			}
		}
	}
}

func BenchmarkUnpackGroup(b *testing.B) {
	n := 1 << 16
	src := make([]uint64, n)
	for i := range src {
		src[i] = uint64(i) & Mask(13)
	}
	words := make([]uint64, PackedWords(n, 13))
	Pack(words, src, 13)
	var group [64]uint64
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < n/64; g++ {
			UnpackGroup(&group, words, g, 13)
		}
	}
}
