package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Errorf("Mask(0) = %x, want 0", Mask(0))
	}
	if Mask(1) != 1 {
		t.Errorf("Mask(1) = %x, want 1", Mask(1))
	}
	if Mask(64) != ^uint64(0) {
		t.Errorf("Mask(64) = %x, want all ones", Mask(64))
	}
	if Mask(63) != ^uint64(0)>>1 {
		t.Errorf("Mask(63) = %x", Mask(63))
	}
}

func TestMaxBits(t *testing.T) {
	cases := []struct {
		vals []uint64
		want uint
	}{
		{nil, 0},
		{[]uint64{0, 0, 0}, 0},
		{[]uint64{1}, 1},
		{[]uint64{63}, 6},
		{[]uint64{64}, 7},
		{[]uint64{1 << 62}, 63},
		{[]uint64{^uint64(0)}, 64},
		{[]uint64{5, 9, 2}, 4},
	}
	for _, c := range cases {
		if got := MaxBits(c.vals); got != c.want {
			t.Errorf("MaxBits(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestPackedWords(t *testing.T) {
	cases := []struct {
		n     int
		width uint
		want  int
	}{
		{0, 13, 0},
		{10, 0, 0},
		{64, 1, 1},
		{65, 1, 2},
		{64, 13, 13},
		{512, 6, 48},
		{1, 64, 1},
		{3, 63, 3},
	}
	for _, c := range cases {
		if got := PackedWords(c.n, c.width); got != c.want {
			t.Errorf("PackedWords(%d,%d) = %d, want %d", c.n, c.width, got, c.want)
		}
	}
}

func roundTrip(t *testing.T, src []uint64, width uint) {
	t.Helper()
	dst := make([]uint64, PackedWords(len(src), width))
	Pack(dst, src, width)
	got := make([]uint64, len(src))
	Unpack(got, dst, width)
	m := Mask(width)
	for i := range src {
		if got[i] != src[i]&m {
			t.Fatalf("width %d: elem %d = %x, want %x", width, i, got[i], src[i]&m)
		}
	}
	// Random access must agree as well.
	for _, i := range []int{0, len(src) / 3, len(src) - 1} {
		if len(src) == 0 {
			break
		}
		if g := Get(dst, i, width); g != src[i]&m {
			t.Fatalf("width %d: Get(%d) = %x, want %x", width, i, g, src[i]&m)
		}
	}
}

func TestPackUnpackAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(1); width <= 64; width++ {
		for _, n := range []int{1, 7, 63, 64, 65, 512, 1000} {
			src := make([]uint64, n)
			for i := range src {
				src[i] = rng.Uint64() & Mask(width)
			}
			roundTrip(t, src, width)
		}
	}
}

func TestPackUnpackZeroWidth(t *testing.T) {
	dst := []uint64{123, 456}
	Unpack(dst, nil, 0)
	for i, v := range dst {
		if v != 0 {
			t.Errorf("elem %d = %d, want 0", i, v)
		}
	}
}

func TestSetGet(t *testing.T) {
	for _, width := range []uint{3, 8, 13, 21, 33, 64} {
		n := 200
		words := make([]uint64, PackedWords(n, width))
		rng := rand.New(rand.NewSource(int64(width)))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & Mask(width)
			Set(words, i, width, vals[i])
		}
		for i := range vals {
			if g := Get(words, i, width); g != vals[i] {
				t.Fatalf("width %d: Get(%d) = %x, want %x", width, i, g, vals[i])
			}
		}
	}
}

func TestZigZag(t *testing.T) {
	cases := []struct {
		d int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {1 << 40, 1 << 41},
	}
	for _, c := range cases {
		if got := ZigZag(c.d); got != c.u {
			t.Errorf("ZigZag(%d) = %d, want %d", c.d, got, c.u)
		}
		if got := UnZigZag(c.u); got != c.d {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.u, got, c.d)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(d int64) bool { return UnZigZag(ZigZag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: packing then unpacking preserves values at any width.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(raw []uint64, w8 uint8) bool {
		width := uint(w8%64) + 1
		src := make([]uint64, len(raw))
		m := Mask(width)
		for i, v := range raw {
			src[i] = v & m
		}
		dst := make([]uint64, PackedWords(len(src), width))
		Pack(dst, src, width)
		got := make([]uint64, len(src))
		Unpack(got, dst, width)
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBroadcast(t *testing.T) {
	if got := Broadcast(0x3, 2); got != ^uint64(0)&0xFFFFFFFFFFFFFFFF {
		// 0b11 replicated 32 times = all ones
		if got != ^uint64(0) {
			t.Errorf("Broadcast(3,2) = %x", got)
		}
	}
	if got := Broadcast(1, 8); got != 0x0101010101010101 {
		t.Errorf("Broadcast(1,8) = %x", got)
	}
	if got := Broadcast(0xAB, 16); got != 0x00AB00AB00AB00AB {
		t.Errorf("Broadcast(0xAB,16) = %x", got)
	}
}

func TestCmpPackedWordExhaustiveSmallWidths(t *testing.T) {
	ops := []CmpKind{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	rng := rand.New(rand.NewSource(7))
	for _, b := range []uint{1, 2, 4, 8, 16, 32} {
		per := int(64 / b)
		for trial := 0; trial < 200; trial++ {
			fields := make([]uint64, per)
			var word uint64
			for i := range fields {
				fields[i] = rng.Uint64() & Mask(b)
				word |= fields[i] << (uint(i) * b)
			}
			pred := rng.Uint64() & Mask(b)
			yb := Broadcast(pred, b)
			for _, op := range ops {
				got := CmpPackedWord(word, yb, b, op)
				var want uint64
				for i, f := range fields {
					if op.Eval(f, pred) {
						want |= 1 << uint(i)
					}
				}
				if got != want {
					t.Fatalf("b=%d op=%v word=%x pred=%x: got mask %b, want %b",
						b, op, word, pred, got, want)
				}
			}
		}
	}
}

func TestCmpPackedWordBoundaryValues(t *testing.T) {
	// All-zero, all-max and predicate at extremes.
	for _, b := range []uint{1, 2, 4, 8, 16, 32} {
		per := int(64 / b)
		maxv := Mask(b)
		for _, fv := range []uint64{0, maxv} {
			var word uint64
			for i := 0; i < per; i++ {
				word |= fv << (uint(i) * b)
			}
			for _, pred := range []uint64{0, maxv} {
				yb := Broadcast(pred, b)
				for _, op := range []CmpKind{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe} {
					got := CmpPackedWord(word, yb, b, op)
					var want uint64
					for i := 0; i < per; i++ {
						if op.Eval(fv, pred) {
							want |= 1 << uint(i)
						}
					}
					if got != want {
						t.Fatalf("b=%d op=%v f=%x pred=%x: got %b want %b", b, op, fv, pred, got, want)
					}
				}
			}
		}
	}
}

func TestSumPackedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, b := range []uint{1, 2, 4, 8, 16, 32, 6, 13, 40} {
		for _, n := range []int{0, 1, 64, 100, 4096} {
			src := make([]uint64, n)
			var want uint64
			for i := range src {
				src[i] = rng.Uint64() & Mask(b)
				want += src[i]
			}
			words := make([]uint64, PackedWords(n, b))
			Pack(words, src, b)
			if got := SumPackedWords(words, n, b); got != want {
				t.Fatalf("b=%d n=%d: sum = %d, want %d", b, n, got, want)
			}
		}
	}
}

func BenchmarkUnpackWidth6(b *testing.B) {
	benchUnpack(b, 6)
}

func BenchmarkUnpackWidth13(b *testing.B) {
	benchUnpack(b, 13)
}

func BenchmarkUnpackWidth32(b *testing.B) {
	benchUnpack(b, 32)
}

func benchUnpack(b *testing.B, width uint) {
	n := 1 << 16
	src := make([]uint64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Uint64() & Mask(width)
	}
	packed := make([]uint64, PackedWords(n, width))
	Pack(packed, src, width)
	dst := make([]uint64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unpack(dst, packed, width)
	}
}

func BenchmarkSwarSumWidth8(b *testing.B) {
	n := 1 << 16
	src := make([]uint64, n)
	for i := range src {
		src[i] = uint64(i) & 0xFF
	}
	words := make([]uint64, PackedWords(n, 8))
	Pack(words, src, 8)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumPackedWords(words, n, 8)
	}
}
