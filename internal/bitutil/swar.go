// SWAR (SIMD within a register) primitives: exact field-parallel comparison
// and summation over bit-packed 64-bit words, for field widths that divide 64.
//
// These kernels are the pure-Go substitute for the AVX-512 bit-parallel scan
// instructions the original C++ MorphStore uses (cf. BitWeaving, SIMD-Scan):
// several packed fields are compared against a predicate constant with a
// handful of word-level instructions instead of one comparison per field.
//
// Exactness is obtained with the even/odd split: fields are isolated into
// windows of width 2*b (the neighbour field zeroed), so carries and borrows
// of the window-local arithmetic can never cross into the next field:
//
//   - non-zero test: f + (2^(2b-1)-1) sets the window's top bit iff f != 0,
//     because f < 2^b <= 2^(2b-1).
//   - x >= y test: (x | 2^(2b-1)) - y keeps the window's top bit iff x >= y.
package bitutil

import "math/bits"

// SwarWidthOK reports whether the SWAR kernels support field width b.
// Supported widths divide 64 and leave at least two fields per word.
func SwarWidthOK(b uint) bool {
	return b > 0 && b <= 32 && 64%b == 0
}

// swarMasks returns (evenMask, testMask) for width b: evenMask selects
// fields 0,2,4,... (each field viewed in a 2b-wide window), testMask has the
// top bit of every 2b window set.
func swarMasks(b uint) (even uint64, test uint64) {
	w := 2 * b
	for off := uint(0); off < 64; off += w {
		even |= Mask(b) << off
		test |= uint64(1) << (off + w - 1)
	}
	return even, test
}

// Broadcast replicates the low b bits of v into every b-wide field of a word.
func Broadcast(v uint64, b uint) uint64 {
	v &= Mask(b)
	if b == 0 {
		return 0
	}
	var out uint64
	for off := uint(0); off < 64; off += b {
		out |= v << off
	}
	return out
}

// CmpKind enumerates the comparison operators shared by the scan kernels.
type CmpKind uint8

const (
	CmpEq CmpKind = iota // field == constant
	CmpNe                // field != constant
	CmpLt                // field <  constant
	CmpLe                // field <= constant
	CmpGt                // field >  constant
	CmpGe                // field >= constant
)

func (c CmpKind) String() string {
	switch c {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the comparison to a pair of scalars.
func (c CmpKind) Eval(x, y uint64) bool {
	switch c {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpLt:
		return x < y
	case CmpLe:
		return x <= y
	case CmpGt:
		return x > y
	case CmpGe:
		return x >= y
	default:
		return false
	}
}

// nonZeroHalf returns, for fields isolated in 2b windows (top half of each
// window zero), the window-top bits set iff the window's field is non-zero.
func nonZeroHalf(x, test uint64, w uint) uint64 {
	addend := test - (test >> (w - 1)) // 2^(w-1)-1 in every window
	return (x + addend) & test
}

// geHalf returns, for x and y fields isolated in 2b windows, window-top bits
// set iff x >= y in that window.
func geHalf(x, y, test uint64) uint64 {
	return ((x | test) - y) & test
}

// compactTestBits maps window-top bits (positions w-1, 2w-1, ...) to even
// field indices: window i becomes bit 2i of the result.
func compactTestBits(t uint64, w uint) uint64 {
	var out uint64
	for ; t != 0; t &= t - 1 {
		win := uint(bits.TrailingZeros64(t)) / w
		out |= uint64(1) << (2 * win)
	}
	return out
}

// CmpPackedWord compares every b-wide field of word x against the broadcast
// predicate pattern yb (built with Broadcast(v, b)) and returns a bitmask
// with bit i set iff field i satisfies the comparison. b must satisfy
// SwarWidthOK. The result has 64/b meaningful bits.
func CmpPackedWord(x uint64, yb uint64, b uint, op CmpKind) uint64 {
	even, test := swarMasks(b)
	odd := even << b
	w := 2 * b

	xe, ye := x&even, yb&even
	xo, yo := (x&odd)>>b, (yb&odd)>>b

	var te, to uint64
	switch op {
	case CmpEq:
		te = ^nonZeroHalf(xe^ye, test, w) & test
		to = ^nonZeroHalf(xo^yo, test, w) & test
	case CmpNe:
		te = nonZeroHalf(xe^ye, test, w)
		to = nonZeroHalf(xo^yo, test, w)
	case CmpGe:
		te = geHalf(xe, ye, test)
		to = geHalf(xo, yo, test)
	case CmpLt:
		te = ^geHalf(xe, ye, test) & test
		to = ^geHalf(xo, yo, test) & test
	case CmpGt: // x > y  <=>  !(y >= x)
		te = ^geHalf(ye, xe, test) & test
		to = ^geHalf(yo, xo, test) & test
	case CmpLe: // x <= y  <=>  y >= x
		te = geHalf(ye, xe, test)
		to = geHalf(yo, xo, test)
	}

	return compactTestBits(te, w) | compactTestBits(to, w)<<1
}

// SumPackedWords sums every b-wide field across the packed words using
// window-parallel accumulation. n is the total number of fields represented;
// unused fields of the final partial word must be zero (true for all
// MorphStore packed buffers, which zero-initialize their words).
func SumPackedWords(words []uint64, n int, b uint) uint64 {
	if b == 0 || n == 0 {
		return 0
	}
	if !SwarWidthOK(b) {
		var s uint64
		for i := 0; i < n; i++ {
			s += Get(words, i, b)
		}
		return s
	}
	even, _ := swarMasks(b)
	odd := even << b
	w := 2 * b

	// Each 2b window accumulates values < 2^b; capacity 2^(2b)-1 allows at
	// least 2^b safe additions before a fold is required.
	safe := 1 << b
	if safe > 1<<20 {
		safe = 1 << 20
	}

	var total uint64
	var accE, accO uint64
	pending := 0
	m := Mask(w)
	fold := func() {
		for off := uint(0); off < 64; off += w {
			total += (accE >> off) & m
			total += (accO >> off) & m
		}
		accE, accO = 0, 0
		pending = 0
	}
	for _, x := range words {
		accE += x & even
		accO += (x & odd) >> b
		pending++
		if pending >= safe {
			fold()
		}
	}
	fold()
	return total
}
