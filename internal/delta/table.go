package delta

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/qerr"
)

// Table is one writable table: an immutable compressed main plus the mutable
// delta (append-only column tails, deletion set, journal). Mutations are
// serialized by the table mutex and publish new immutable States through an
// atomic pointer; State loads are lock-free, so readers never contend with
// writers. At most one remorph rebuild runs at a time (BeginRebuild /
// CompleteRebuild / EndRebuild); the swap runs under the table mutex and
// in-flight readers finish on the State they pinned.
type Table struct {
	name string
	cols []string // sorted column names

	mu      sync.Mutex
	cur     atomic.Pointer[State]
	tails   map[string][]uint64 // append-only backing arrays
	journal []byte              // wire-format mutation log since the last swap

	rebuild sync.Mutex // serializes remorph rebuilds
}

// NewTable wraps main (the stored columns of one table) as a writable table
// with an empty delta. All columns must be equally long and at least one is
// required; violations return an error matching qerr.ErrInvalidSchema. The
// main columns are shared, not copied — the caller must not mutate them.
func NewTable(name string, main map[string]*columns.Column) (*Table, error) {
	if len(main) == 0 {
		return nil, qerr.Tag(fmt.Errorf("delta: table %q has no columns", name), qerr.ErrInvalidSchema)
	}
	cols := make([]string, 0, len(main))
	for cn := range main {
		cols = append(cols, cn)
	}
	sort.Strings(cols)
	rows := main[cols[0]].N()
	mcopy := make(map[string]*columns.Column, len(main))
	tails := make(map[string][]uint64, len(main))
	for _, cn := range cols {
		if main[cn].N() != rows {
			return nil, qerr.Tag(
				fmt.Errorf("delta: table %q: ragged columns: %q has %d rows, %q has %d",
					name, cn, main[cn].N(), cols[0], rows),
				qerr.ErrInvalidSchema)
		}
		mcopy[cn] = main[cn]
		tails[cn] = nil
	}
	t := &Table{name: name, cols: cols, tails: tails}
	t.cur.Store(newState(0, mcopy, rows, cols, t.tailViews(0), 0, nil))
	return t, nil
}

// newState assembles an immutable State with a fresh merge cache.
func newState(epoch uint64, main map[string]*columns.Column, mainRows int, cols []string,
	tail map[string][]uint64, tailRows int, deleted []uint64) *State {
	return &State{
		epoch: epoch, main: main, mainRows: mainRows, cols: cols,
		tail: tail, tailRows: tailRows, deleted: deleted,
		merged: &mergeCache{cols: make(map[string]*columns.Column)},
	}
}

// tailViews builds fixed-length views of the tail backing at n rows; callers
// hold t.mu. Appends past n go to indices a view never covers, so published
// views are safe for concurrent reads.
func (t *Table) tailViews(n int) map[string][]uint64 {
	m := make(map[string][]uint64, len(t.cols))
	for _, cn := range t.cols {
		m[cn] = t.tails[cn][:n:n]
	}
	return m
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the table's column names in sorted order.
func (t *Table) Columns() []string { return t.cols }

// State returns the table's current state (lock-free). The returned State is
// a pinned snapshot: it never changes, no matter what mutations or swaps
// follow.
func (t *Table) State() *State { return t.cur.Load() }

// Append adds rows to the table's delta tail: rows must hold exactly the
// table's columns, all equally long (an error matching qerr.ErrInvalidSchema
// otherwise, with the table unchanged). It returns the published state and
// the appended row count; appending zero rows is a no-op.
func (t *Table) Append(rows map[string][]uint64) (*State, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	if len(rows) != len(t.cols) {
		return nil, 0, qerr.Tag(
			fmt.Errorf("delta: append to %q: got %d columns, table has %d", t.name, len(rows), len(t.cols)),
			qerr.ErrInvalidSchema)
	}
	n := -1
	for _, cn := range t.cols {
		vals, ok := rows[cn]
		if !ok {
			return nil, 0, qerr.Tag(
				fmt.Errorf("delta: append to %q: missing column %q", t.name, cn), qerr.ErrInvalidSchema)
		}
		if n < 0 {
			n = len(vals)
		} else if len(vals) != n {
			return nil, 0, qerr.Tag(
				fmt.Errorf("delta: append to %q: ragged rows: %q has %d values, %q has %d",
					t.name, cn, len(vals), t.cols[0], n),
				qerr.ErrInvalidSchema)
		}
	}
	if n == 0 {
		return s, 0, nil
	}
	if err := faultpoint.AppendLog.Hit(); err != nil {
		return nil, 0, fmt.Errorf("delta: append log %q: %w", t.name, err)
	}
	t.journal = encodeAppend(t.journal, t.cols, rows, n)
	for _, cn := range t.cols {
		t.tails[cn] = append(t.tails[cn], rows[cn]...)
	}
	ns := newState(s.epoch+1, s.main, s.mainRows, t.cols, t.tailViews(s.tailRows+n), s.tailRows+n, s.deleted)
	t.cur.Store(ns)
	return ns, n, nil
}

// Delete removes rows by their current live position (0-based row numbers of
// the table as a reader sees it right now: main+tail order with earlier
// deletions already skipped). Duplicates are deleted once; a position at or
// beyond the live row count is an error and nothing is deleted. It returns
// the published state and the number of rows deleted.
func (t *Table) Delete(positions []uint64) (*State, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	live := uint64(s.Rows())
	abs := make([]uint64, 0, len(positions))
	for _, p := range positions {
		if p >= live {
			return nil, 0, fmt.Errorf("delta: delete from %q: position %d out of range (%d live rows)", t.name, p, live)
		}
		abs = append(abs, liveToAbs(p, s.deleted))
	}
	abs = sortedUnique(abs)
	if len(abs) == 0 {
		return s, 0, nil
	}
	if err := faultpoint.AppendLog.Hit(); err != nil {
		return nil, 0, fmt.Errorf("delta: append log %q: %w", t.name, err)
	}
	t.journal = encodeDelete(t.journal, abs)
	nd := mergeSorted(s.deleted, abs)
	ns := newState(s.epoch+1, s.main, s.mainRows, t.cols, s.tail, s.tailRows, nd)
	t.cur.Store(ns)
	return ns, len(abs), nil
}

// Journal returns a copy of the table's mutation log since the last remorph
// swap: the wire-format records that, replayed onto the current main with
// Replay, reproduce the current delta.
func (t *Table) Journal() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.journal...)
}

// DeltaBytes returns the table's current delta footprint: tail backing,
// deletion set, and journal bytes.
func (t *Table) DeltaBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b int64
	for _, cn := range t.cols {
		b += int64(len(t.tails[cn])) * 8
	}
	s := t.cur.Load()
	return b + int64(len(s.deleted))*8 + int64(len(t.journal))
}

// BeginRebuild claims the table's single rebuild slot and pins the state the
// rebuild will fold. It reports false — with no state — when a rebuild is
// already running or the delta is empty (nothing to fold). On true the
// caller must eventually call EndRebuild, normally after CompleteRebuild.
func (t *Table) BeginRebuild() (*State, bool) {
	if !t.rebuild.TryLock() {
		return nil, false
	}
	s := t.cur.Load()
	if s.tailRows == 0 && len(s.deleted) == 0 {
		t.rebuild.Unlock()
		return nil, false
	}
	return s, true
}

// EndRebuild releases the rebuild slot claimed by BeginRebuild (whether the
// rebuild completed or was abandoned).
func (t *Table) EndRebuild() { t.rebuild.Unlock() }

// SwapResult describes one completed remorph swap.
type SwapResult struct {
	// State is the published post-swap state.
	State *State
	// FoldedTail is the number of tail rows folded into the new main.
	FoldedTail int
	// FoldedDeletes is the number of deletions folded into the new main.
	FoldedDeletes int
}

// CompleteRebuild atomically swaps in the new main the caller rebuilt from
// the state s0 pinned by BeginRebuild: main must hold one column per table
// column with exactly s0.Rows() rows (the live rows of s0, in order).
// Mutations that arrived during the rebuild survive the swap — tail rows past
// s0 become the new delta tail and deletions not folded are remapped onto the
// new row numbering — and the journal is rewritten to the surviving delta.
// In-flight readers keep the states they pinned; only new State loads see the
// swap. The caller still holds the rebuild slot and must EndRebuild after.
func (t *Table) CompleteRebuild(s0 *State, main map[string]*columns.Column) (SwapResult, error) {
	return t.CompleteRebuildRemap(s0, main, nil, nil)
}

// CompleteRebuildRemap is CompleteRebuild for rebuilds that also renumbered
// values (a dictionary sorted-rebuild): remaps holds, per renumbered column,
// remap[oldValue] = newValue — surviving tail values below the remap length
// are rewritten to the new numbering (values at or beyond it were assigned
// after the renumbering was pinned and keep their meaning). onSwap, if
// non-nil, runs under the table mutex immediately before the new state is
// published, so the caller can publish the renumbered side tables (the
// dictionaries) atomically with the swap as seen by anyone who serializes
// state+side-table reads against this call.
func (t *Table) CompleteRebuildRemap(s0 *State, main map[string]*columns.Column, remaps map[string][]uint64, onSwap func()) (SwapResult, error) {
	newMainRows := s0.Rows()
	mcopy := make(map[string]*columns.Column, len(t.cols))
	for _, cn := range t.cols {
		col, ok := main[cn]
		if !ok {
			return SwapResult{}, fmt.Errorf("delta: swap %q: rebuilt main is missing column %q", t.name, cn)
		}
		if col.N() != newMainRows {
			return SwapResult{}, fmt.Errorf("delta: swap %q: rebuilt column %q has %d rows, want %d",
				t.name, cn, col.N(), newMainRows)
		}
		mcopy[cn] = col
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s1 := t.cur.Load()
	total0 := uint64(s0.mainRows + s0.tailRows)
	// Keep only the tail rows appended after s0, on fresh backing so the
	// folded prefix can be collected; renumbered columns rewrite the
	// surviving values into the new numbering as they are copied.
	for _, cn := range t.cols {
		surv := append([]uint64(nil), t.tails[cn][s0.tailRows:s1.tailRows]...)
		if remap := remaps[cn]; remap != nil {
			for i, v := range surv {
				if v < uint64(len(remap)) {
					surv[i] = remap[v]
				}
			}
		}
		t.tails[cn] = surv
	}
	newTailRows := s1.tailRows - s0.tailRows
	// Remap the deletions that arrived during the rebuild: s1's set is a
	// superset of s0's (deletes only add). Folded entries vanish; survivors
	// below total0 shift down by the folded deletions before them; survivors
	// in the new tail shift by the folded prefix.
	var nd []uint64
	i := 0
	for _, d := range s1.deleted {
		for i < len(s0.deleted) && s0.deleted[i] < d {
			i++
		}
		if i < len(s0.deleted) && s0.deleted[i] == d {
			i++ // folded into the new main
			continue
		}
		if d < total0 {
			nd = append(nd, d-uint64(i))
		} else {
			nd = append(nd, uint64(newMainRows)+(d-total0))
		}
	}
	// Rewrite the journal to the surviving delta: one append record for the
	// remaining tail, one delete record for the remapped set.
	var j []byte
	if newTailRows > 0 {
		rows := make(map[string][]uint64, len(t.cols))
		for _, cn := range t.cols {
			rows[cn] = t.tails[cn]
		}
		j = encodeAppend(j, t.cols, rows, newTailRows)
	}
	if len(nd) > 0 {
		j = encodeDelete(j, nd)
	}
	t.journal = j
	ns := newState(s1.epoch+1, mcopy, newMainRows, t.cols, t.tailViews(newTailRows), newTailRows, nd)
	if onSwap != nil {
		onSwap()
	}
	t.cur.Store(ns)
	return SwapResult{State: ns, FoldedTail: s0.tailRows, FoldedDeletes: len(s0.deleted)}, nil
}
