package delta

import (
	"encoding/binary"
	"fmt"

	"morphstore/internal/columns"
	"morphstore/internal/qerr"
)

// This file implements the delta append-log wire codec: the journal a Table
// keeps of every mutation since its last remorph swap. Each record is
// length-prefixed and checksummed, so a truncated or bit-flipped journal is
// detected deterministically — the decoder never panics and classifies every
// structural defect as qerr.ErrCorruptData (FuzzDeltaLog drives this
// contract). Replay applies a journal onto a table's main columns,
// reproducing the delta it recorded.
//
// Record layout (little-endian):
//
//	u8  kind        recAppend | recDelete
//	u32 payloadLen  bytes of payload
//	[]  payload
//	u64 checksum    FNV-1a over kind, payloadLen, payload
//
// Append payload: u32 ncols, u32 nrows, then per column (sorted by name):
// u16 name length, name bytes, nrows u64 values. Delete payload: u32 count,
// then count u64 absolute positions (strictly ascending).
const (
	recAppend = 1
	recDelete = 2

	recHeaderLen   = 5 // kind + payload length
	recChecksumLen = 8
)

// corrupt wraps a journal decoding defect with the corruption sentinel.
func corrupt(format string, args ...any) error {
	return qerr.Tag(fmt.Errorf("delta: journal: "+format, args...), qerr.ErrCorruptData)
}

// fnv1a is the 64-bit FNV-1a hash the record checksums use.
func fnv1a(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// appendRecord frames one record: header, payload, checksum.
func appendRecord(dst []byte, kind byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	sum := fnv1a(fnv1a(fnvOffset, hdr[:]), payload)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint64(dst, sum)
}

// encodeAppend appends an append record for n rows of the given columns.
func encodeAppend(dst []byte, cols []string, rows map[string][]uint64, n int) []byte {
	payload := binary.LittleEndian.AppendUint32(nil, uint32(len(cols)))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(n))
	for _, cn := range cols {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(cn)))
		payload = append(payload, cn...)
		for _, v := range rows[cn][:n] {
			payload = binary.LittleEndian.AppendUint64(payload, v)
		}
	}
	return appendRecord(dst, recAppend, payload)
}

// encodeDelete appends a delete record for the sorted absolute positions.
func encodeDelete(dst []byte, abs []uint64) []byte {
	payload := binary.LittleEndian.AppendUint32(nil, uint32(len(abs)))
	for _, p := range abs {
		payload = binary.LittleEndian.AppendUint64(payload, p)
	}
	return appendRecord(dst, recDelete, payload)
}

// record is one decoded journal record: an append batch (Rows) or a delete
// set (Deleted).
type record struct {
	kind    byte
	rows    map[string][]uint64 // recAppend: per-column values
	n       int                 // recAppend: row count
	deleted []uint64            // recDelete: absolute positions, ascending
}

// readRecord decodes the first record of b and returns the remaining bytes.
// Every defect — truncation, a bad checksum, an unknown kind, inconsistent
// counts — is an error matching qerr.ErrCorruptData; readRecord never
// panics and never allocates proportionally to an unvalidated length field.
func readRecord(b []byte) (record, []byte, error) {
	if len(b) < recHeaderLen+recChecksumLen {
		return record{}, nil, corrupt("truncated record header (%d bytes)", len(b))
	}
	kind := b[0]
	plen := int(binary.LittleEndian.Uint32(b[1:recHeaderLen]))
	if plen > len(b)-recHeaderLen-recChecksumLen {
		return record{}, nil, corrupt("truncated record payload (%d of %d bytes)", len(b)-recHeaderLen-recChecksumLen, plen)
	}
	payload := b[recHeaderLen : recHeaderLen+plen]
	sum := binary.LittleEndian.Uint64(b[recHeaderLen+plen:])
	if want := fnv1a(fnv1a(fnvOffset, b[:recHeaderLen]), payload); sum != want {
		return record{}, nil, corrupt("checksum mismatch")
	}
	rest := b[recHeaderLen+plen+recChecksumLen:]
	switch kind {
	case recAppend:
		rec, err := decodeAppend(payload)
		return rec, rest, err
	case recDelete:
		rec, err := decodeDelete(payload)
		return rec, rest, err
	}
	return record{}, nil, corrupt("unknown record kind %d", kind)
}

// decodeAppend parses an append payload.
func decodeAppend(p []byte) (record, error) {
	if len(p) < 8 {
		return record{}, corrupt("append record: truncated counts")
	}
	ncols := int(binary.LittleEndian.Uint32(p))
	n := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]
	// The column count is unvalidated input: cap the map size hint, the loop
	// itself is bounded by the payload length checks.
	rows := make(map[string][]uint64, min(ncols, 64))
	for c := 0; c < ncols; c++ {
		if len(p) < 2 {
			return record{}, corrupt("append record: truncated column name length")
		}
		nameLen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < nameLen {
			return record{}, corrupt("append record: truncated column name")
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		if len(p) < n*8 {
			return record{}, corrupt("append record: column %q has %d bytes of values, want %d", name, len(p), n*8)
		}
		if _, ok := rows[name]; ok {
			return record{}, corrupt("append record: duplicate column %q", name)
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(p[i*8:])
		}
		rows[name] = vals
		p = p[n*8:]
	}
	if len(p) != 0 {
		return record{}, corrupt("append record: %d trailing payload bytes", len(p))
	}
	if n == 0 {
		return record{}, corrupt("append record: zero rows")
	}
	return record{kind: recAppend, rows: rows, n: n}, nil
}

// decodeDelete parses a delete payload.
func decodeDelete(p []byte) (record, error) {
	if len(p) < 4 {
		return record{}, corrupt("delete record: truncated count")
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != count*8 {
		return record{}, corrupt("delete record: %d bytes of positions, want %d", len(p), count*8)
	}
	if count == 0 {
		return record{}, corrupt("delete record: zero positions")
	}
	abs := make([]uint64, count)
	for i := range abs {
		abs[i] = binary.LittleEndian.Uint64(p[i*8:])
		if i > 0 && abs[i] <= abs[i-1] {
			return record{}, corrupt("delete record: positions not strictly ascending")
		}
	}
	return record{kind: recDelete, deleted: abs}, nil
}

// Replay rebuilds a writable table from its main columns and a journal
// previously returned by Table.Journal: the returned table holds the same
// delta (tail, deletions, journal) the source table had. A journal that is
// truncated, bit-flipped, or inconsistent with main returns an error
// matching qerr.ErrCorruptData; Replay never panics on hostile input.
func Replay(name string, main map[string]*columns.Column, journal []byte) (*Table, error) {
	t, err := NewTable(name, main)
	if err != nil {
		return nil, err
	}
	for len(journal) > 0 {
		rec, rest, err := readRecord(journal)
		if err != nil {
			return nil, err
		}
		journal = rest
		if err := t.replay(rec); err != nil {
			return nil, qerr.Tag(err, qerr.ErrCorruptData)
		}
	}
	return t, nil
}

// replay applies one decoded record to the table. Append records reuse the
// validated Append path; delete records carry absolute positions and splice
// directly into the deletion set.
func (t *Table) replay(rec record) error {
	if rec.kind == recAppend {
		_, _, err := t.Append(rec.rows)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	total := uint64(s.mainRows + s.tailRows)
	di := 0
	for _, d := range rec.deleted {
		if d >= total {
			return fmt.Errorf("delta: journal: delete position %d out of range (%d rows)", d, total)
		}
		for di < len(s.deleted) && s.deleted[di] < d {
			di++
		}
		if di < len(s.deleted) && s.deleted[di] == d {
			return fmt.Errorf("delta: journal: position %d deleted twice", d)
		}
	}
	t.journal = encodeDelete(t.journal, rec.deleted)
	nd := mergeSorted(s.deleted, rec.deleted)
	ns := newState(s.epoch+1, s.main, s.mainRows, t.cols, s.tail, s.tailRows, nd)
	t.cur.Store(ns)
	return nil
}
