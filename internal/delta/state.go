// Package delta implements the writable-table layer of the engine: a
// per-table delta store in the hot/cold style of hybrid OLTP/OLAP systems
// (Funke et al.) and of MorphStore's own main/remainder column split.
//
// Each writable table is a Table: an immutable compressed main part (the
// columns the read-only engine already serves) plus a delta — an append-only
// uncompressed tail per column and a sorted set of deleted absolute
// positions. Mutations (Append, Delete) are serialized per table and publish
// a new immutable State through an atomic pointer; readers load a State once
// (a snapshot) and see a frozen main+delta view forever after, regardless of
// concurrent mutations or remorph swaps. Every mutation is also journaled in
// a checksummed wire format (log.go) so a table's delta can be replayed onto
// its main.
//
// Reads go through State.Column, which merges main and delta into a single
// ordinary column: with no deletions, blocked formats (DynBP, DeltaBP,
// ForBP) and uncompressed mains take the extended-remainder fast path — the
// tail is appended to the column's uncompressed remainder, so the compressed
// main words are reused byte-for-byte — while whole-column formats
// (StaticBP, RLE) and any state with deletions materialize a compacted
// uncompressed column. Merged views are cached per State, so concurrent
// queries at one epoch share them. A State with an empty delta hands out the
// main column itself: the writable path then costs one nil check per scan.
//
// A background remorph (driven by the engine) folds the delta back into a
// freshly compressed main: BeginRebuild pins the current State, the caller
// rebuilds each column off the hot path from State.LiveValues, and
// CompleteRebuild atomically swaps the new main in — remapping the tail rows
// and deletions that arrived during the rebuild — while in-flight readers
// finish on the State they pinned.
package delta

import (
	"fmt"
	"sort"
	"sync"

	"morphstore/internal/columns"
	"morphstore/internal/faultpoint"
	"morphstore/internal/formats"
)

// State is one immutable snapshot of a writable table: the compressed main
// columns, the uncompressed delta tail, and the deletion set at one epoch.
// Loading a State pins the view — later mutations and remorph swaps publish
// new States and never touch an old one — so any number of readers can share
// a State concurrently. Merged main+delta views are built lazily and cached
// per column.
type State struct {
	epoch    uint64
	main     map[string]*columns.Column
	mainRows int
	cols     []string            // sorted column names
	tail     map[string][]uint64 // fixed-length views over the append-only backing
	tailRows int
	deleted  []uint64 // sorted absolute positions in [0, mainRows+tailRows)

	merged *mergeCache
}

// Epoch returns the state's version number; every Append, Delete, and
// completed remorph swap increments it.
func (s *State) Epoch() uint64 { return s.epoch }

// Rows returns the live row count: main plus tail minus deletions.
func (s *State) Rows() int { return s.mainRows + s.tailRows - len(s.deleted) }

// MainRows returns the row count of the compressed main part.
func (s *State) MainRows() int { return s.mainRows }

// TailRows returns the row count of the uncompressed delta tail.
func (s *State) TailRows() int { return s.tailRows }

// DeletedRows returns the number of pending deletions (positions deleted
// since the last remorph fold).
func (s *State) DeletedRows() int { return len(s.deleted) }

// Columns returns the table's column names in sorted order.
func (s *State) Columns() []string { return s.cols }

// DeltaBytes returns the delta's data footprint at this state: tail words
// plus the deletion set (8 bytes per entry).
func (s *State) DeltaBytes() int64 {
	return int64(s.tailRows)*8*int64(len(s.cols)) + int64(len(s.deleted))*8
}

// Column returns the merged main+delta view of one column as an ordinary
// column. With an empty delta it is the stored main column itself (no copy,
// no allocation); otherwise the merged view is built on first access at this
// state and cached, so concurrent readers at one epoch share it.
func (s *State) Column(name string) (*columns.Column, error) {
	main, ok := s.main[name]
	if !ok {
		return nil, fmt.Errorf("delta: unknown column %q", name)
	}
	if s.tailRows == 0 && len(s.deleted) == 0 {
		return main, nil
	}
	s.merged.mu.Lock()
	defer s.merged.mu.Unlock()
	if c, ok := s.merged.cols[name]; ok {
		return c, nil
	}
	if err := faultpoint.DeltaMerge.Hit(); err != nil {
		return nil, fmt.Errorf("delta: merge %q: %w", name, err)
	}
	c, err := s.merge(name, main)
	if err != nil {
		return nil, err
	}
	s.merged.cols[name] = c
	return c, nil
}

// LiveValues returns the column's live values at this state in row order:
// main then tail, with deleted positions dropped. The slice is freshly
// allocated; callers own it (the remorph rebuild compresses it in place).
func (s *State) LiveValues(name string) ([]uint64, error) {
	main, ok := s.main[name]
	if !ok {
		return nil, fmt.Errorf("delta: unknown column %q", name)
	}
	return s.liveValues(name, main)
}

// mergeCache holds a state's lazily built merged views. It lives behind a
// pointer so State itself stays immutable and copyable.
type mergeCache struct {
	mu   sync.Mutex
	cols map[string]*columns.Column
}

// merge builds the merged main+delta view of one column. With no deletions,
// formats whose readers accept an arbitrary-length uncompressed remainder
// (uncompressed itself and the 512-block formats) reuse the compressed main
// words and extend the remainder with the tail; whole-column formats
// (StaticBP packs every element, RLE has no remainder) and any state with
// deletions compact into a fresh uncompressed column.
func (s *State) merge(name string, main *columns.Column) (*columns.Column, error) {
	if len(s.deleted) == 0 {
		tail := s.tail[name]
		switch main.Desc().Kind {
		case columns.Uncompressed:
			buf := make([]uint64, 0, main.N()+len(tail))
			buf = append(append(buf, main.Words()...), tail...)
			return columns.FromValues(buf), nil
		case columns.DynBP, columns.DeltaBP, columns.ForBP:
			// The blocked readers treat everything past the main part as raw
			// words (DeltaBP/ForBP remainders store absolute values), so the
			// tail rides as an extended remainder on the unchanged main.
			w := main.Words()
			buf := make([]uint64, 0, len(w)+len(tail))
			buf = append(append(buf, w...), tail...)
			return columns.New(main.Desc(), main.N()+len(tail), main.MainElems(), len(main.MainWords()), buf)
		}
	}
	vals, err := s.liveValues(name, main)
	if err != nil {
		return nil, err
	}
	return columns.FromValues(vals), nil
}

// liveValues gathers the column's live values: main then tail, deletions
// dropped.
func (s *State) liveValues(name string, main *columns.Column) ([]uint64, error) {
	base, ok := main.Values()
	if !ok {
		var err error
		if base, err = formats.Decompress(main); err != nil {
			return nil, fmt.Errorf("delta: %q: %w", name, err)
		}
	}
	tail := s.tail[name]
	total := s.mainRows + s.tailRows
	out := make([]uint64, 0, total-len(s.deleted))
	di := 0
	for i := 0; i < total; i++ {
		if di < len(s.deleted) && s.deleted[di] == uint64(i) {
			di++
			continue
		}
		if i < s.mainRows {
			out = append(out, base[i])
		} else {
			out = append(out, tail[i-s.mainRows])
		}
	}
	return out, nil
}

// liveToAbs maps a live row number to its absolute position under the sorted
// deletion set: each deletion at or before the running position shifts it up.
func liveToAbs(p uint64, deleted []uint64) uint64 {
	for _, d := range deleted {
		if d <= p {
			p++
		} else {
			break
		}
	}
	return p
}

// mergeSorted unions two sorted uint64 slices (both duplicate-free, disjoint
// by construction) into a fresh sorted slice.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// sortedUnique sorts vals ascending and drops duplicates in place.
func sortedUnique(vals []uint64) []uint64 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}
