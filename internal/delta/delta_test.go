package delta

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/qerr"
)

// compress builds a main column in the given format.
func compress(t *testing.T, vals []uint64, d columns.FormatDesc) *columns.Column {
	t.Helper()
	col, err := formats.Compress(vals, d)
	if err != nil {
		t.Fatalf("Compress(%v): %v", d, err)
	}
	return col
}

// decompress reads any column back to values.
func decompress(t *testing.T, col *columns.Column) []uint64 {
	t.Helper()
	vals, err := formats.Decompress(col)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	return vals
}

func seq(lo, n int) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(lo + i)
	}
	return vals
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// model is a reference implementation of a single-column writable table: a
// plain slice of live values mutated with the same live-position semantics.
type model struct{ vals []uint64 }

func (m *model) append(vals []uint64) { m.vals = append(m.vals, vals...) }

func (m *model) delete(positions []uint64) {
	dead := make(map[uint64]bool, len(positions))
	for _, p := range positions {
		dead[p] = true
	}
	out := m.vals[:0]
	for i, v := range m.vals {
		if !dead[uint64(i)] {
			out = append(out, v)
		}
	}
	m.vals = out
}

// TestMergePerFormat checks the merged main+delta view for every paper
// format, with a main long enough to have both full blocks and a remainder.
func TestMergePerFormat(t *testing.T) {
	base := seq(0, 1300) // 2 full 512-blocks + 276 remainder elements
	tail := seq(1300, 77)
	want := append(append([]uint64(nil), base...), tail...)
	for _, d := range formats.PaperDescs() {
		t.Run(d.String(), func(t *testing.T) {
			main := compress(t, base, d)
			tab, err := NewTable("t", map[string]*columns.Column{"v": main})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := tab.Append(map[string][]uint64{"v": tail}); err != nil {
				t.Fatal(err)
			}
			col, err := tab.State().Column("v")
			if err != nil {
				t.Fatal(err)
			}
			if col.N() != len(want) {
				t.Fatalf("merged N = %d, want %d", col.N(), len(want))
			}
			if got := decompress(t, col); !eq(got, want) {
				t.Fatalf("merged values differ from main+tail")
			}
			// The extended-remainder formats must reuse the compressed main
			// unchanged; whole-column formats materialize uncompressed.
			switch d.Kind {
			case columns.Uncompressed, columns.DynBP, columns.DeltaBP, columns.ForBP:
				if col.Desc().Kind != d.Kind {
					t.Fatalf("merged kind = %v, want %v (extended remainder)", col.Desc().Kind, d.Kind)
				}
			default:
				if col.Desc().Kind != columns.Uncompressed {
					t.Fatalf("merged kind = %v, want uncompr (materialized)", col.Desc().Kind)
				}
			}
		})
	}
}

// TestEmptyDeltaIsMainColumn checks the empty-delta fast path: the state
// hands out the stored column itself.
func TestEmptyDeltaIsMainColumn(t *testing.T) {
	main := compress(t, seq(0, 600), columns.DynBPDesc)
	tab, err := NewTable("t", map[string]*columns.Column{"v": main})
	if err != nil {
		t.Fatal(err)
	}
	col, err := tab.State().Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if col != main {
		t.Fatal("empty delta should return the main column itself")
	}
}

// TestMergedViewCached checks merged views are built once per state.
func TestMergedViewCached(t *testing.T) {
	tab, err := NewTable("t", map[string]*columns.Column{"v": columns.FromValues(seq(0, 10))})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(10, 5)}); err != nil {
		t.Fatal(err)
	}
	s := tab.State()
	c1, err := s.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("merged view not cached per state")
	}
}

// TestDeleteSemantics checks live-position deletes across main and tail,
// duplicate collapsing, and the deletion mask in merged reads.
func TestDeleteSemantics(t *testing.T) {
	m := &model{}
	m.append(seq(0, 100))
	tab, err := NewTable("t", map[string]*columns.Column{"v": compress(t, seq(0, 100), columns.DeltaBPDesc)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(100, 50)}); err != nil {
		t.Fatal(err)
	}
	m.append(seq(100, 50))

	// Two rounds of deletes: the second round's live positions land on rows
	// shifted by the first, exercising liveToAbs.
	for _, round := range [][]uint64{{3, 3, 97, 120}, {0, 95, 140}} {
		if _, n, err := tab.Delete(round); err != nil {
			t.Fatal(err)
		} else if want := len(sortedUnique(append([]uint64(nil), round...))); n != want {
			t.Fatalf("Delete(%v) deleted %d rows, want %d", round, n, want)
		}
		m.delete(round)
	}

	s := tab.State()
	if s.Rows() != len(m.vals) {
		t.Fatalf("Rows = %d, want %d", s.Rows(), len(m.vals))
	}
	col, err := s.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if got := decompress(t, col); !eq(got, m.vals) {
		t.Fatalf("merged values differ from model after deletes")
	}
	lv, err := s.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(lv, m.vals) {
		t.Fatalf("LiveValues differ from model")
	}
}

// TestValidation checks the typed schema errors of NewTable, Append, and the
// out-of-range Delete error.
func TestValidation(t *testing.T) {
	if _, err := NewTable("t", nil); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("NewTable with no columns: err = %v, want ErrInvalidSchema", err)
	}
	if _, err := NewTable("t", map[string]*columns.Column{
		"a": columns.FromValues(seq(0, 4)), "b": columns.FromValues(seq(0, 5)),
	}); !errors.Is(err, qerr.ErrInvalidSchema) {
		t.Fatalf("NewTable ragged: err = %v, want ErrInvalidSchema", err)
	}

	tab, err := NewTable("t", map[string]*columns.Column{
		"a": columns.FromValues(seq(0, 4)), "b": columns.FromValues(seq(10, 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string]map[string][]uint64{
		"missing column": {"a": seq(0, 2)},
		"unknown column": {"a": seq(0, 2), "c": seq(0, 2)},
		"ragged rows":    {"a": seq(0, 2), "b": seq(0, 3)},
	} {
		if _, _, err := tab.Append(rows); !errors.Is(err, qerr.ErrInvalidSchema) {
			t.Fatalf("Append %s: err = %v, want ErrInvalidSchema", name, err)
		}
	}
	if s := tab.State(); s.Epoch() != 0 || s.TailRows() != 0 {
		t.Fatal("failed appends must not change the table")
	}
	if _, n, err := tab.Append(map[string][]uint64{"a": nil, "b": nil}); err != nil || n != 0 {
		t.Fatalf("zero-row append: n=%d err=%v, want no-op", n, err)
	}
	if _, _, err := tab.Delete([]uint64{4}); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if s := tab.State(); s.DeletedRows() != 0 {
		t.Fatal("failed delete must not change the table")
	}
}

// TestSnapshotImmutable checks a pinned state never changes: mutations after
// the pin are invisible, and epochs increase monotonically.
func TestSnapshotImmutable(t *testing.T) {
	tab, err := NewTable("t", map[string]*columns.Column{"v": columns.FromValues(seq(0, 8))})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(8, 4)}); err != nil {
		t.Fatal(err)
	}
	pinned := tab.State()
	pv, err := pinned.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	last := pinned.Epoch()
	for i := 0; i < 5; i++ {
		if _, _, err := tab.Append(map[string][]uint64{"v": seq(100*i, 3)}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.Delete([]uint64{0}); err != nil {
			t.Fatal(err)
		}
		if e := tab.State().Epoch(); e <= last {
			t.Fatalf("epoch not monotone: %d after %d", e, last)
		} else {
			last = e
		}
	}
	now, err := pinned.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(now, pv) {
		t.Fatal("pinned state changed under mutations")
	}
}

// TestJournalReplay checks the journal reproduces the delta: random
// mutations, then Replay onto the same main yields the same live values.
func TestJournalReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := seq(0, 200)
	main := map[string]*columns.Column{
		"a": compress(t, base, columns.ForBPDesc),
		"b": columns.FromValues(seq(1000, 200)),
	}
	tab, err := NewTable("t", main)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if rng.Intn(3) < 2 {
			n := 1 + rng.Intn(20)
			if _, _, err := tab.Append(map[string][]uint64{
				"a": seq(rng.Intn(1<<20), n), "b": seq(rng.Intn(1<<20), n),
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			live := tab.State().Rows()
			pos := []uint64{uint64(rng.Intn(live)), uint64(rng.Intn(live))}
			if _, _, err := tab.Delete(pos); err != nil {
				t.Fatal(err)
			}
		}
	}
	replayed, err := Replay("t", main, tab.Journal())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	s, rs := tab.State(), replayed.State()
	if s.Rows() != rs.Rows() || s.TailRows() != rs.TailRows() || s.DeletedRows() != rs.DeletedRows() {
		t.Fatalf("replayed shape %d/%d/%d, want %d/%d/%d",
			rs.Rows(), rs.TailRows(), rs.DeletedRows(), s.Rows(), s.TailRows(), s.DeletedRows())
	}
	for _, cn := range s.Columns() {
		want, err := s.LiveValues(cn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rs.LiveValues(cn)
		if err != nil {
			t.Fatal(err)
		}
		if !eq(got, want) {
			t.Fatalf("replayed column %q differs", cn)
		}
	}
}

// TestCompleteRebuildRemap is the swap-protocol test: mutations that arrive
// between BeginRebuild and CompleteRebuild survive the swap, with deletions
// remapped onto the new row numbering, and the rewritten journal still
// replays onto the new main.
func TestCompleteRebuildRemap(t *testing.T) {
	m := &model{}
	m.append(seq(0, 600))
	tab, err := NewTable("t", map[string]*columns.Column{"v": compress(t, seq(0, 600), columns.DynBPDesc)})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-rebuild delta: an append and deletes in both main and tail.
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(600, 100)}); err != nil {
		t.Fatal(err)
	}
	m.append(seq(600, 100))
	if _, _, err := tab.Delete([]uint64{10, 20, 650}); err != nil {
		t.Fatal(err)
	}
	m.delete([]uint64{10, 20, 650})

	s0, ok := tab.BeginRebuild()
	if !ok {
		t.Fatal("BeginRebuild refused with a non-empty delta")
	}
	if _, ok := tab.BeginRebuild(); ok {
		t.Fatal("second BeginRebuild must refuse while one is running")
	}
	s0Live := append([]uint64(nil), m.vals...)

	// Mutations during the rebuild.
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(9000, 30)}); err != nil {
		t.Fatal(err)
	}
	m.append(seq(9000, 30))
	during := []uint64{0, 5, 300, uint64(len(m.vals) - 2)}
	if _, _, err := tab.Delete(during); err != nil {
		t.Fatal(err)
	}
	m.delete(during)

	vals, err := s0.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(vals, s0Live) {
		t.Fatal("pinned rebuild state drifted")
	}
	res, err := tab.CompleteRebuild(s0, map[string]*columns.Column{"v": compress(t, vals, columns.RLEDesc)})
	tab.EndRebuild()
	if err != nil {
		t.Fatalf("CompleteRebuild: %v", err)
	}
	if res.FoldedTail != 100 || res.FoldedDeletes != 3 {
		t.Fatalf("folded %d tail / %d deletes, want 100 / 3", res.FoldedTail, res.FoldedDeletes)
	}

	s := tab.State()
	if s.MainRows() != len(s0Live) {
		t.Fatalf("new main has %d rows, want %d", s.MainRows(), len(s0Live))
	}
	if s.TailRows() != 30 {
		t.Fatalf("surviving tail %d rows, want 30", s.TailRows())
	}
	got, err := s.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(got, m.vals) {
		t.Fatal("post-swap live values differ from model")
	}
	col, err := s.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if gm := decompress(t, col); !eq(gm, m.vals) {
		t.Fatal("post-swap merged view differs from model")
	}

	// The rewritten journal must replay the surviving delta onto the new main.
	replayed, err := Replay("t", map[string]*columns.Column{"v": compress(t, vals, columns.RLEDesc)}, tab.Journal())
	if err != nil {
		t.Fatalf("Replay after swap: %v", err)
	}
	rv, err := replayed.State().LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(rv, m.vals) {
		t.Fatal("journal replay after swap differs from model")
	}

	// Another rebuild folds the surviving delta too.
	s1, ok := tab.BeginRebuild()
	if !ok {
		t.Fatal("BeginRebuild refused after swap with surviving delta")
	}
	vals1, err := s1.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CompleteRebuild(s1, map[string]*columns.Column{"v": columns.FromValues(vals1)}); err != nil {
		t.Fatal(err)
	}
	tab.EndRebuild()
	if _, ok := tab.BeginRebuild(); ok {
		t.Fatal("BeginRebuild must refuse with an empty delta")
	}
	if s := tab.State(); s.TailRows() != 0 || s.DeletedRows() != 0 || len(tab.Journal()) != 0 {
		t.Fatal("second fold left delta state behind")
	}
}

// TestCompleteRebuildValidation checks the swap rejects a rebuilt main that
// does not match the pinned state.
func TestCompleteRebuildValidation(t *testing.T) {
	tab, err := NewTable("t", map[string]*columns.Column{"v": columns.FromValues(seq(0, 10))})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Append(map[string][]uint64{"v": seq(10, 2)}); err != nil {
		t.Fatal(err)
	}
	s0, ok := tab.BeginRebuild()
	if !ok {
		t.Fatal("BeginRebuild refused")
	}
	defer tab.EndRebuild()
	if _, err := tab.CompleteRebuild(s0, map[string]*columns.Column{}); err == nil {
		t.Fatal("missing column must fail the swap")
	}
	if _, err := tab.CompleteRebuild(s0, map[string]*columns.Column{"v": columns.FromValues(seq(0, 3))}); err == nil {
		t.Fatal("wrong row count must fail the swap")
	}
	if s := tab.State(); s.TailRows() != 2 {
		t.Fatal("failed swap must leave the table unchanged")
	}
}

// TestConcurrentReadersAndWriters hammers a table with concurrent appends,
// deletes, reads, and rebuilds; correctness is checked by the race detector
// plus basic invariants.
func TestConcurrentReadersAndWriters(t *testing.T) {
	tab, err := NewTable("t", map[string]*columns.Column{"v": compress(t, seq(0, 1024), columns.DynBPDesc)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	go func() { // appender
		for i := 0; i < 200; i++ {
			if _, _, err := tab.Append(map[string][]uint64{"v": seq(i, 8)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() { // deleter
		for i := 0; i < 100; i++ {
			if _, _, err := tab.Delete([]uint64{uint64(i % 512)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() { // reader
		for i := 0; i < 200; i++ {
			s := tab.State()
			col, err := s.Column("v")
			if err != nil {
				done <- err
				return
			}
			if col.N() != s.Rows() {
				done <- fmt.Errorf("merged N %d != live rows %d at epoch %d", col.N(), s.Rows(), s.Epoch())
				return
			}
		}
		done <- nil
	}()
	go func() { // remorpher
		for i := 0; i < 20; i++ {
			s0, ok := tab.BeginRebuild()
			if !ok {
				continue
			}
			vals, err := s0.LiveValues("v")
			if err == nil {
				_, err = tab.CompleteRebuild(s0, map[string]*columns.Column{"v": columns.FromValues(vals)})
			}
			tab.EndRebuild()
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Final invariant: the merged view matches the live values exactly.
	s := tab.State()
	want, err := s.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if got := decompress(t, col); !eq(got, want) {
		t.Fatal("merged view differs from live values after concurrent storm")
	}
}

// TestCompleteRebuildValueRemap checks the dictionary-renumbering arm of the
// swap: surviving tail values are rewritten through the per-column remap
// table (values beyond its length pass through unchanged), and the onSwap
// callback fires under the table lock before the new state publishes.
func TestCompleteRebuildValueRemap(t *testing.T) {
	// Main holds dictionary IDs 0..2 in first-occurrence order.
	base := []uint64{2, 0, 1, 2, 0}
	tab, err := NewTable("t", map[string]*columns.Column{"v": columns.FromValues(base)})
	if err != nil {
		t.Fatal(err)
	}
	// A pre-rebuild append gives BeginRebuild a delta to fold.
	if _, _, err := tab.Append(map[string][]uint64{"v": {0}}); err != nil {
		t.Fatal(err)
	}
	s0, ok := tab.BeginRebuild()
	if !ok {
		t.Fatal("BeginRebuild refused")
	}
	// Tail arriving during the rebuild: IDs 1 and 2 predate the remap, 3 and
	// 100 were assigned after it was computed and must pass through.
	if _, _, err := tab.Append(map[string][]uint64{"v": {1, 2, 3, 100}}); err != nil {
		t.Fatal(err)
	}
	// Delete one during-rebuild tail row; only survivors are remapped.
	if _, _, err := tab.Delete([]uint64{uint64(len(base)) + 1}); err != nil { // kills tail value 1
		t.Fatal(err)
	}

	// Sorted renumbering of 3 IDs: old 0->2, 1->0, 2->1.
	remap := []uint64{2, 0, 1}
	pinned, err := s0.LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	newMain := make([]uint64, len(pinned))
	for i, v := range pinned {
		newMain[i] = remap[v]
	}

	oldState := tab.State()
	swaps := 0
	res, err := tab.CompleteRebuildRemap(s0,
		map[string]*columns.Column{"v": columns.FromValues(newMain)},
		map[string][]uint64{"v": remap},
		func() {
			swaps++
			if tab.State() != oldState {
				t.Error("onSwap ran after the new state published")
			}
		})
	tab.EndRebuild()
	if err != nil {
		t.Fatalf("CompleteRebuildRemap: %v", err)
	}
	if swaps != 1 {
		t.Fatalf("onSwap fired %d times, want 1", swaps)
	}
	if res.FoldedTail != 1 || res.FoldedDeletes != 0 {
		t.Fatalf("folded %d tail / %d deletes, want 1 / 0", res.FoldedTail, res.FoldedDeletes)
	}

	got, err := tab.State().LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint64{1, 2, 0, 1, 2, 2}, 1, 3, 100) // remapped main (incl. folded tail) + remapped surviving tail
	if !eq(got, want) {
		t.Fatalf("live values = %v, want %v", got, want)
	}

	// The rewritten journal replays the remapped tail onto the new main.
	replayed, err := Replay("t", map[string]*columns.Column{"v": columns.FromValues(newMain)}, tab.Journal())
	if err != nil {
		t.Fatalf("Replay after swap: %v", err)
	}
	rv, err := replayed.State().LiveValues("v")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(rv, want) {
		t.Fatalf("replayed live values = %v, want %v", rv, want)
	}
}
