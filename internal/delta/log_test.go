package delta

import (
	"errors"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/qerr"
)

// fuzzMain is the fixed main the fuzz target replays journals onto.
func fuzzMain() map[string]*columns.Column {
	return map[string]*columns.Column{
		"a": columns.FromValues([]uint64{1, 2, 3, 4, 5, 6, 7, 8}),
		"b": columns.FromValues([]uint64{10, 20, 30, 40, 50, 60, 70, 80}),
	}
}

// fuzzJournal builds a valid journal to seed the corpus.
func fuzzJournal(tb testing.TB) []byte {
	tab, err := NewTable("t", fuzzMain())
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := tab.Append(map[string][]uint64{"a": {100, 101}, "b": {200, 201}}); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := tab.Delete([]uint64{0, 9}); err != nil {
		tb.Fatal(err)
	}
	return tab.Journal()
}

// TestReplayRejectsCorruption checks the decoder classifies structural
// defects as ErrCorruptData: truncation at every length and a bit flip at
// every offset.
func TestReplayRejectsCorruption(t *testing.T) {
	good := fuzzJournal(t)
	if _, err := Replay("t", fuzzMain(), good); err != nil {
		t.Fatalf("valid journal rejected: %v", err)
	}
	// Truncation at an exact record boundary is a valid shorter journal;
	// anywhere else the decoder must flag corruption.
	boundary := map[int]bool{0: true}
	for rest := good; len(rest) > 0; {
		_, r, err := readRecord(rest)
		if err != nil {
			t.Fatal(err)
		}
		boundary[len(good)-len(r)] = true
		rest = r
	}
	for n := 1; n < len(good); n++ {
		_, err := Replay("t", fuzzMain(), good[:n])
		if boundary[n] {
			if err != nil {
				t.Fatalf("record-boundary truncation at %d rejected: %v", n, err)
			}
			continue
		}
		if !errors.Is(err, qerr.ErrCorruptData) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptData", n, err)
		}
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := Replay("t", fuzzMain(), bad); err == nil {
			// A flip inside u64 values can survive the checksum only if it
			// also fixed the checksum — impossible for a single flip.
			t.Fatalf("bit flip at %d went undetected", i)
		} else if !errors.Is(err, qerr.ErrCorruptData) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorruptData", i, err)
		}
	}
}

// FuzzDeltaLog feeds arbitrary bytes to the journal decoder: Replay must
// never panic, and every failure must match qerr.ErrCorruptData.
func FuzzDeltaLog(f *testing.F) {
	good := fuzzJournal(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte{recAppend, 0, 0, 0, 0})
	f.Add([]byte{recDelete, 4, 0, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Replay("t", fuzzMain(), data)
		if err != nil {
			if !errors.Is(err, qerr.ErrCorruptData) {
				t.Fatalf("Replay error not classified as ErrCorruptData: %v", err)
			}
			return
		}
		// A journal that replays must produce a readable table.
		s := tab.State()
		for _, cn := range s.Columns() {
			col, err := s.Column(cn)
			if err != nil {
				t.Fatalf("replayed table unreadable: %v", err)
			}
			if col.N() != s.Rows() {
				t.Fatalf("replayed column %q has %d rows, state says %d", cn, col.N(), s.Rows())
			}
		}
	})
}
