package monetsim

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/ops"
)

// The scalar BAT operators. Kernels are generic over the byte-aligned
// element types so the narrow-types mode runs genuinely narrow inner loops
// (smaller memory traffic), exactly like MonetDB's type-specialized
// operator implementations.

type unsigned interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

// dispatch1 runs the width-specialized kernel for b.
func selectCmp(b *BAT, cmp bitutil.CmpKind, val uint64) *BAT {
	switch b.w {
	case W8:
		return selectCmpT(b.u8, cmp, val)
	case W16:
		return selectCmpT(b.u16, cmp, val)
	case W32:
		return selectCmpT(b.u32, cmp, val)
	default:
		return selectCmpT(b.u64, cmp, val)
	}
}

func selectCmpT[T unsigned](vals []T, cmp bitutil.CmpKind, val uint64) *BAT {
	out := make([]uint64, 0, len(vals)/4)
	switch cmp {
	case bitutil.CmpEq:
		for i, v := range vals {
			if uint64(v) == val {
				out = append(out, uint64(i))
			}
		}
	case bitutil.CmpNe:
		for i, v := range vals {
			if uint64(v) != val {
				out = append(out, uint64(i))
			}
		}
	case bitutil.CmpLt:
		for i, v := range vals {
			if uint64(v) < val {
				out = append(out, uint64(i))
			}
		}
	case bitutil.CmpLe:
		for i, v := range vals {
			if uint64(v) <= val {
				out = append(out, uint64(i))
			}
		}
	case bitutil.CmpGt:
		for i, v := range vals {
			if uint64(v) > val {
				out = append(out, uint64(i))
			}
		}
	case bitutil.CmpGe:
		for i, v := range vals {
			if uint64(v) >= val {
				out = append(out, uint64(i))
			}
		}
	}
	return FromValues(out)
}

func selectBetween(b *BAT, lo, hi uint64) *BAT {
	switch b.w {
	case W8:
		return selectBetweenT(b.u8, lo, hi)
	case W16:
		return selectBetweenT(b.u16, lo, hi)
	case W32:
		return selectBetweenT(b.u32, lo, hi)
	default:
		return selectBetweenT(b.u64, lo, hi)
	}
}

func selectBetweenT[T unsigned](vals []T, lo, hi uint64) *BAT {
	out := make([]uint64, 0, len(vals)/4)
	for i, v := range vals {
		if uint64(v) >= lo && uint64(v) <= hi {
			out = append(out, uint64(i))
		}
	}
	return FromValues(out)
}

// project preserves the data BAT's width, like MonetDB's type-retaining
// fetch-join.
func project(data, pos *BAT) (*BAT, error) {
	n := data.Len()
	for i := 0; i < pos.Len(); i++ {
		if p := pos.Get(i); p >= uint64(n) {
			return nil, fmt.Errorf("monetsim: position %d out of range [0,%d)", p, n)
		}
	}
	switch data.w {
	case W8:
		return &BAT{w: W8, u8: projectT(data.u8, pos)}, nil
	case W16:
		return &BAT{w: W16, u16: projectT(data.u16, pos)}, nil
	case W32:
		return &BAT{w: W32, u32: projectT(data.u32, pos)}, nil
	default:
		return &BAT{w: W64, u64: projectT(data.u64, pos)}, nil
	}
}

func projectT[T unsigned](data []T, pos *BAT) []T {
	out := make([]T, pos.Len())
	if pos.w == W64 { // the common case: positions are 64-bit oids
		for i, p := range pos.u64 {
			out[i] = data[p]
		}
		return out
	}
	for i := range out {
		out[i] = data[pos.Get(i)]
	}
	return out
}

func intersect(a, b *BAT) *BAT {
	av, bv := a.Values(), b.Values()
	out := make([]uint64, 0, min(len(av), len(bv)))
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] < bv[j]:
			i++
		case bv[j] < av[i]:
			j++
		default:
			out = append(out, av[i])
			i++
			j++
		}
	}
	return FromValues(out)
}

func mergeUnion(a, b *BAT) *BAT {
	av, bv := a.Values(), b.Values()
	out := make([]uint64, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(av) || j < len(bv) {
		switch {
		case i < len(av) && (j >= len(bv) || av[i] < bv[j]):
			out = append(out, av[i])
			i++
		case j < len(bv) && (i >= len(av) || bv[j] < av[i]):
			out = append(out, bv[j])
			j++
		default:
			out = append(out, av[i])
			i++
			j++
		}
	}
	return FromValues(out)
}

func buildHash(keys *BAT) map[uint64]uint64 {
	ht := make(map[uint64]uint64, keys.Len())
	for i := 0; i < keys.Len(); i++ {
		ht[keys.Get(i)] = uint64(i)
	}
	return ht
}

func semiJoin(probe, build *BAT) *BAT {
	ht := buildHash(build)
	out := make([]uint64, 0, probe.Len()/4)
	switch probe.w {
	case W8:
		for i, v := range probe.u8 {
			if _, ok := ht[uint64(v)]; ok {
				out = append(out, uint64(i))
			}
		}
	case W16:
		for i, v := range probe.u16 {
			if _, ok := ht[uint64(v)]; ok {
				out = append(out, uint64(i))
			}
		}
	case W32:
		for i, v := range probe.u32 {
			if _, ok := ht[uint64(v)]; ok {
				out = append(out, uint64(i))
			}
		}
	default:
		for i, v := range probe.u64 {
			if _, ok := ht[v]; ok {
				out = append(out, uint64(i))
			}
		}
	}
	return FromValues(out)
}

func joinN1(probe, build *BAT) (probePos, buildPos *BAT) {
	ht := buildHash(build)
	outP := make([]uint64, 0, probe.Len()/4)
	outB := make([]uint64, 0, probe.Len()/4)
	for i := 0; i < probe.Len(); i++ {
		if bp, ok := ht[probe.Get(i)]; ok {
			outP = append(outP, uint64(i))
			outB = append(outB, bp)
		}
	}
	return FromValues(outP), FromValues(outB)
}

func groupFirst(keys *BAT) (gids, extents *BAT) {
	ht := make(map[uint64]uint64, 1024)
	g := make([]uint64, keys.Len())
	var ext []uint64
	next := uint64(0)
	for i := 0; i < keys.Len(); i++ {
		k := keys.Get(i)
		gid, ok := ht[k]
		if !ok {
			gid = next
			ht[k] = gid
			ext = append(ext, uint64(i))
			next++
		}
		g[i] = gid
	}
	return FromValues(g), FromValues(ext)
}

func groupNext(prev, keys *BAT) (gids, extents *BAT, err error) {
	if prev.Len() != keys.Len() {
		return nil, nil, fmt.Errorf("monetsim: group inputs have %d and %d elements", prev.Len(), keys.Len())
	}
	ht := make(map[[2]uint64]uint64, 1024)
	g := make([]uint64, keys.Len())
	var ext []uint64
	next := uint64(0)
	for i := 0; i < keys.Len(); i++ {
		pk := [2]uint64{prev.Get(i), keys.Get(i)}
		gid, ok := ht[pk]
		if !ok {
			gid = next
			ht[pk] = gid
			ext = append(ext, uint64(i))
			next++
		}
		g[i] = gid
	}
	return FromValues(g), FromValues(ext), nil
}

func sumWhole(vals *BAT) *BAT {
	var total uint64
	switch vals.w {
	case W8:
		for _, v := range vals.u8 {
			total += uint64(v)
		}
	case W16:
		for _, v := range vals.u16 {
			total += uint64(v)
		}
	case W32:
		for _, v := range vals.u32 {
			total += uint64(v)
		}
	default:
		for _, v := range vals.u64 {
			total += v
		}
	}
	return FromValues([]uint64{total})
}

func sumGrouped(gids, vals *BAT, nGroups int) (*BAT, error) {
	if gids.Len() != vals.Len() {
		return nil, fmt.Errorf("monetsim: grouped sum inputs have %d and %d elements", gids.Len(), vals.Len())
	}
	sums := make([]uint64, nGroups)
	for i := 0; i < gids.Len(); i++ {
		g := gids.Get(i)
		if g >= uint64(nGroups) {
			return nil, fmt.Errorf("monetsim: group id %d out of range [0,%d)", g, nGroups)
		}
		sums[g] += vals.Get(i)
	}
	return FromValues(sums), nil
}

func calc(op ops.CalcKind, a, b *BAT) (*BAT, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("monetsim: calc inputs have %d and %d elements", a.Len(), b.Len())
	}
	out := make([]uint64, a.Len())
	for i := range out {
		out[i] = op.Eval(a.Get(i), b.Get(i))
	}
	return FromValues(out), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
