package monetsim

import (
	"math/rand"
	"testing"

	"morphstore/internal/bitutil"
	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/ops"
	"morphstore/internal/vector"
)

func TestBATWidths(t *testing.T) {
	cases := []struct {
		vals []uint64
		want Width
	}{
		{[]uint64{0, 255}, W8},
		{[]uint64{256}, W16},
		{[]uint64{1 << 16}, W32},
		{[]uint64{1 << 32}, W64},
		{nil, W8},
	}
	for _, c := range cases {
		b := FromValuesNarrow(c.vals)
		if b.w != c.want {
			t.Errorf("FromValuesNarrow(%v) width %d, want %d", c.vals, b.w, c.want)
		}
		for i, v := range c.vals {
			if b.Get(i) != v {
				t.Errorf("Get(%d) = %d, want %d", i, b.Get(i), v)
			}
		}
	}
	wide := FromValues([]uint64{1, 2, 3})
	if wide.PhysicalBytes() != 24 {
		t.Errorf("wide bytes = %d", wide.PhysicalBytes())
	}
	narrow := FromValuesNarrow([]uint64{1, 2, 3})
	if narrow.PhysicalBytes() != 3 {
		t.Errorf("narrow bytes = %d", narrow.PhysicalBytes())
	}
}

// buildTestPlan constructs the engine-shared test query:
// SELECT attr, SUM(val*wgt) FROM fact JOIN dim ON fk=pk
// WHERE sel BETWEEN 2 AND 7 GROUP BY attr.
func buildTestPlan(t *testing.T) *core.Plan {
	t.Helper()
	b := core.NewBuilder()
	fk := b.Scan("fact", "fk")
	sel := b.Scan("fact", "sel")
	val := b.Scan("fact", "val")
	wgt := b.Scan("fact", "wgt")
	pk := b.Scan("dim", "pk")
	attr := b.Scan("dim", "attr")

	pos := b.Between("pos", sel, 2, 7)
	fkP := b.Project("fk_p", fk, pos)
	pp, bp := b.JoinN1("j", fkP, pk)
	posJ := b.Project("pos_j", pos, pp)
	attrRow := b.Project("attr_row", attr, bp)
	valRow := b.Project("val_row", val, posJ)
	wgtRow := b.Project("wgt_row", wgt, posJ)
	prod := b.Calc("prod", ops.CalcMul, valRow, wgtRow)
	gids, ext := b.GroupFirst("g", attrRow)
	sums := b.SumGrouped("sums", gids, ext, prod)
	keys := b.Project("keys", attr, b.Project("ext_b", bp, ext))
	b.Result(sums)
	b.Result(keys)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildTestDB(t *testing.T, n int, seed int64) *core.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fk := make([]uint64, n)
	sel := make([]uint64, n)
	val := make([]uint64, n)
	wgt := make([]uint64, n)
	for i := 0; i < n; i++ {
		fk[i] = uint64(rng.Intn(40))
		sel[i] = uint64(rng.Intn(10))
		val[i] = uint64(rng.Intn(1000))
		wgt[i] = uint64(rng.Intn(10))
	}
	pk := make([]uint64, 30) // only 30 of 40 fks match: real join selectivity
	attr := make([]uint64, 30)
	for i := range pk {
		pk[i] = uint64(i)
		attr[i] = uint64(i % 5)
	}
	db := core.NewDB()
	db.AddTable("fact", map[string][]uint64{"fk": fk, "sel": sel, "val": val, "wgt": wgt})
	db.AddTable("dim", map[string][]uint64{"pk": pk, "attr": attr})
	return db
}

// TestMatchesMorphStoreEngine is the cross-engine equivalence test: the
// baseline must produce exactly the same query results as the MorphStore
// engine on the same plan, in both storage modes.
func TestMatchesMorphStoreEngine(t *testing.T) {
	p := buildTestPlan(t)
	db := buildTestDB(t, 20000, 3)

	want, err := core.Execute(p, db, core.UncompressedConfig(vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	wantSums, _ := want.Cols["sums"].Values()
	wantKeys, _ := want.Cols["keys"].Values()

	for _, narrow := range []bool{false, true} {
		mdb, err := NewDB(db, narrow)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Execute(p, mdb)
		if err != nil {
			t.Fatalf("narrow=%v: %v", narrow, err)
		}
		if len(got.Cols["sums"]) != len(wantSums) {
			t.Fatalf("narrow=%v: %d groups, want %d", narrow, len(got.Cols["sums"]), len(wantSums))
		}
		for i := range wantSums {
			if got.Cols["sums"][i] != wantSums[i] || got.Cols["keys"][i] != wantKeys[i] {
				t.Fatalf("narrow=%v: group %d = (%d,%d), want (%d,%d)", narrow, i,
					got.Cols["keys"][i], got.Cols["sums"][i], wantKeys[i], wantSums[i])
			}
		}
		if got.Runtime <= 0 || got.Footprint <= 0 {
			t.Errorf("narrow=%v: missing measurements", narrow)
		}
	}
}

// TestNarrowFootprintSmaller verifies the narrow-types mode actually shrinks
// the base data footprint (the effect the paper simulates in MonetDB).
func TestNarrowFootprintSmaller(t *testing.T) {
	p := buildTestPlan(t)
	db := buildTestDB(t, 50000, 4)
	wide, err := NewDB(db, false)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewDB(db, true)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Execute(p, wide)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Execute(p, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Footprint >= rw.Footprint {
		t.Errorf("narrow footprint %d >= wide %d", rn.Footprint, rw.Footprint)
	}
}

func TestScalarKernels(t *testing.T) {
	vals := []uint64{5, 300, 70000, 1 << 40, 5}
	b := FromValues(vals)
	sel := selectCmp(b, bitutil.CmpEq, 5)
	if got := sel.Values(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("selectCmp = %v", got)
	}
	bet := selectBetween(b, 100, 100000)
	if got := bet.Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("selectBetween = %v", got)
	}
	proj, err := project(b, FromValues([]uint64{4, 0}))
	if err != nil || proj.Get(0) != 5 || proj.Get(1) != 5 {
		t.Errorf("project = %v (%v)", proj.Values(), err)
	}
	if _, err := project(b, FromValues([]uint64{99})); err == nil {
		t.Error("out-of-range project must fail")
	}
	s := sumWhole(FromValuesNarrow([]uint64{1, 2, 3}))
	if s.Get(0) != 6 {
		t.Errorf("sum = %d", s.Get(0))
	}
}

func TestNewDBRejectsCompressedBase(t *testing.T) {
	db := buildTestDB(t, 100, 5)
	enc, err := db.Encode(map[string]columns.FormatDesc{"fact.fk": columns.DynBPDesc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDB(enc, false); err == nil {
		t.Error("compressed base data must be rejected")
	}
}
