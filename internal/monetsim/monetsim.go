// Package monetsim is a from-scratch MonetDB-style analytical engine: the
// baseline system of the paper's comparison (Fig. 1, Fig. 9). It follows
// MonetDB's operator-at-a-time model over headless BATs — every operator
// runs to completion over plain uncompressed arrays, scalar code only, no
// SIMD — and interprets the very same query execution plans as the
// MorphStore engine (same operators, same join order).
//
// Two storage modes reproduce the paper's two MonetDB series:
//
//   - Wide: every column is a []uint64 ("MonetDB scalar, 64-bit"),
//   - Narrow: every base column uses the narrowest byte-aligned integer
//     type that fits its values, 8/16/32/64 bits ("MonetDB, narrow types"),
//     the paper's §5.2 simulation of compressed base data in MonetDB.
package monetsim

import (
	"fmt"
	"math/bits"
	"time"

	"morphstore/internal/core"
)

// Width is a byte-aligned SQL-style integer width.
type Width uint8

// The four byte-aligned widths (TINYINT..BIGINT).
const (
	W8 Width = iota
	W16
	W32
	W64
)

// BAT is one column in MonetDB's headless-BAT sense: a value sequence in one
// of the byte-aligned integer types.
type BAT struct {
	w   Width
	u8  []uint8
	u16 []uint16
	u32 []uint32
	u64 []uint64
}

// FromValues stores vals as a 64-bit BAT (the wide storage mode).
func FromValues(vals []uint64) *BAT { return &BAT{w: W64, u64: vals} }

// FromValuesNarrow stores vals using the narrowest byte-aligned type.
func FromValuesNarrow(vals []uint64) *BAT {
	var acc uint64
	for _, v := range vals {
		acc |= v
	}
	switch {
	case bits.Len64(acc) <= 8:
		out := make([]uint8, len(vals))
		for i, v := range vals {
			out[i] = uint8(v)
		}
		return &BAT{w: W8, u8: out}
	case bits.Len64(acc) <= 16:
		out := make([]uint16, len(vals))
		for i, v := range vals {
			out[i] = uint16(v)
		}
		return &BAT{w: W16, u16: out}
	case bits.Len64(acc) <= 32:
		out := make([]uint32, len(vals))
		for i, v := range vals {
			out[i] = uint32(v)
		}
		return &BAT{w: W32, u32: out}
	default:
		return &BAT{w: W64, u64: vals}
	}
}

// Len returns the number of elements.
func (b *BAT) Len() int {
	switch b.w {
	case W8:
		return len(b.u8)
	case W16:
		return len(b.u16)
	case W32:
		return len(b.u32)
	default:
		return len(b.u64)
	}
}

// Get returns element i widened to uint64.
func (b *BAT) Get(i int) uint64 {
	switch b.w {
	case W8:
		return uint64(b.u8[i])
	case W16:
		return uint64(b.u16[i])
	case W32:
		return uint64(b.u32[i])
	default:
		return b.u64[i]
	}
}

// Values returns all elements widened to uint64.
func (b *BAT) Values() []uint64 {
	if b.w == W64 {
		return b.u64
	}
	out := make([]uint64, b.Len())
	for i := range out {
		out[i] = b.Get(i)
	}
	return out
}

// PhysicalBytes returns the heap size of the BAT's payload.
func (b *BAT) PhysicalBytes() int {
	switch b.w {
	case W8:
		return len(b.u8)
	case W16:
		return 2 * len(b.u16)
	case W32:
		return 4 * len(b.u32)
	default:
		return 8 * len(b.u64)
	}
}

// DB is the base data of the baseline engine.
type DB struct {
	Tables map[string]map[string]*BAT
}

// NewDB converts a core database into baseline storage; narrow selects the
// narrow-types mode.
func NewDB(src *core.DB, narrow bool) (*DB, error) {
	out := &DB{Tables: make(map[string]map[string]*BAT)}
	for tn, t := range src.Tables {
		cols := make(map[string]*BAT, len(t.Cols))
		for cn, col := range t.Cols {
			vals, ok := col.Values()
			if !ok {
				return nil, fmt.Errorf("monetsim: base column %s.%s is compressed; the baseline stores plain arrays", tn, cn)
			}
			if narrow {
				cols[cn] = FromValuesNarrow(vals)
			} else {
				cols[cn] = FromValues(vals)
			}
		}
		out.Tables[tn] = cols
	}
	return out, nil
}

// Result is the outcome of a baseline execution.
type Result struct {
	// Cols holds the result columns by name.
	Cols map[string][]uint64
	// Runtime is the total operator time.
	Runtime time.Duration
	// Footprint is the physical size of scanned base columns plus all
	// materialized intermediates.
	Footprint int
}

// Execute interprets the plan with scalar operator-at-a-time processing.
// The storage mode (wide or narrow) was fixed when the DB was built.
func Execute(p *core.Plan, db *DB) (*Result, error) {
	nodes := p.Nodes()
	outs := make([][]*BAT, len(nodes))
	res := &Result{Cols: make(map[string][]uint64)}

	in := func(r core.InputRef) *BAT { return outs[r.Node][r.Out] }

	start := time.Now()
	for _, n := range nodes {
		var produced []*BAT
		switch n.Op {
		case core.OpScan:
			t, ok := db.Tables[n.Table]
			if !ok {
				return nil, fmt.Errorf("monetsim: unknown table %q", n.Table)
			}
			c, ok := t[n.Column]
			if !ok {
				return nil, fmt.Errorf("monetsim: unknown column %s.%s", n.Table, n.Column)
			}
			produced = []*BAT{c}
		case core.OpSelect:
			produced = []*BAT{selectCmp(in(n.Inputs[0]), n.Cmp, n.Val)}
		case core.OpBetween:
			produced = []*BAT{selectBetween(in(n.Inputs[0]), n.Val, n.Val2)}
		case core.OpProject:
			b, err := project(in(n.Inputs[0]), in(n.Inputs[1]))
			if err != nil {
				return nil, err
			}
			produced = []*BAT{b}
		case core.OpIntersect:
			produced = []*BAT{intersect(in(n.Inputs[0]), in(n.Inputs[1]))}
		case core.OpMerge:
			produced = []*BAT{mergeUnion(in(n.Inputs[0]), in(n.Inputs[1]))}
		case core.OpSemiJoin:
			produced = []*BAT{semiJoin(in(n.Inputs[0]), in(n.Inputs[1]))}
		case core.OpJoinN1:
			pp, bp := joinN1(in(n.Inputs[0]), in(n.Inputs[1]))
			produced = []*BAT{pp, bp}
		case core.OpGroupFirst:
			g, e := groupFirst(in(n.Inputs[0]))
			produced = []*BAT{g, e}
		case core.OpGroupNext:
			g, e, err := groupNext(in(n.Inputs[0]), in(n.Inputs[1]))
			if err != nil {
				return nil, err
			}
			produced = []*BAT{g, e}
		case core.OpSumWhole:
			produced = []*BAT{sumWhole(in(n.Inputs[0]))}
		case core.OpSumGrouped:
			b, err := sumGrouped(in(n.Inputs[0]), in(n.Inputs[2]), in(n.Inputs[1]).Len())
			if err != nil {
				return nil, err
			}
			produced = []*BAT{b}
		case core.OpCalc:
			b, err := calc(n.Calc, in(n.Inputs[0]), in(n.Inputs[1]))
			if err != nil {
				return nil, err
			}
			produced = []*BAT{b}
		default:
			return nil, fmt.Errorf("monetsim: unknown operator %v", n.Op)
		}
		outs[n.ID] = produced
		for _, b := range produced {
			res.Footprint += b.PhysicalBytes()
		}
	}
	res.Runtime = time.Since(start)

	sinks := p.Sinks()
	names := p.SinkNames()
	for i, r := range sinks {
		res.Cols[names[i]] = outs[r.Node][r.Out].Values()
	}
	return res, nil
}
