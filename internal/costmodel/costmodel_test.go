package costmodel

import (
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/datagen"
	"morphstore/internal/formats"
	"morphstore/internal/stats"
)

// TestEstimateAccuracy verifies the analytic size estimates stay within a
// reasonable band of the actual compressed sizes on the Table 1 columns.
func TestEstimateAccuracy(t *testing.T) {
	n := 1 << 17
	for _, id := range datagen.All {
		vals := datagen.Generate(id, n, 3)
		prof := stats.Collect(vals)
		for _, desc := range formats.AllDescs() {
			col, err := formats.Compress(vals, desc)
			if err != nil {
				t.Fatal(err)
			}
			actual := col.PhysicalBytes()
			est, err := EstimateBytes(prof, desc)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(est) / float64(actual)
			// The gray-box model works from compact histograms; allow a
			// factor-2 band (the selection only needs correct ordering).
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%v/%v: estimate %d vs actual %d (ratio %.2f)",
					id, desc, est, actual, ratio)
			}
		}
	}
}

// TestChooseBySizePicksPaperWinners checks the model reproduces the format
// preferences the paper reports for the Table 1 columns (§5.1): C1 likes
// small fixed widths, C2 needs block adaptivity, C3 frame-of-reference,
// C4 delta coding.
func TestChooseBySizePicksPaperWinners(t *testing.T) {
	n := 1 << 17
	expect := map[datagen.ColumnID][]columns.Kind{
		datagen.C1: {columns.StaticBP, columns.DynBP}, // 6-bit everywhere: either is fine
		datagen.C2: {columns.DynBP},
		datagen.C3: {columns.ForBP},
		datagen.C4: {columns.DeltaBP},
	}
	for _, id := range datagen.All {
		vals := datagen.Generate(id, n, 4)
		prof := stats.Collect(vals)
		got, err := ChooseBySize(prof, formats.PaperDescs())
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, want := range expect[id] {
			if got.Kind == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%v: chose %v, want one of %v", id, got, expect[id])
		}
		// The chosen format must actually be within 15% of the true best.
		bestSize := -1
		chosenSize := 0
		for _, d := range formats.PaperDescs() {
			col, err := formats.Compress(vals, d)
			if err != nil {
				t.Fatal(err)
			}
			s := col.PhysicalBytes()
			if bestSize < 0 || s < bestSize {
				bestSize = s
			}
			if d.Kind == got.Kind {
				chosenSize = s
			}
		}
		if float64(chosenSize) > 1.15*float64(bestSize) {
			t.Errorf("%v: chosen format %v is %d B, optimum %d B",
				id, got, chosenSize, bestSize)
		}
	}
}

func TestChooseBySizeSortedPositions(t *testing.T) {
	// A 90%-selectivity sorted position list: DELTA+BP must win, as the
	// paper observes for all select outputs.
	pos := make([]uint64, 0, 90000)
	for i := uint64(0); i < 100000; i++ {
		if i%10 != 0 {
			pos = append(pos, i)
		}
	}
	prof := stats.Collect(pos)
	got, err := ChooseBySize(prof, formats.PaperDescs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != columns.DeltaBP {
		t.Errorf("sorted positions: chose %v, want delta+bp", got)
	}
}

func TestChooseBySizeRLEWhenRuns(t *testing.T) {
	vals := make([]uint64, 100000)
	for i := range vals {
		vals[i] = uint64(i / 5000) // 20 long runs
	}
	prof := stats.Collect(vals)
	got, err := ChooseBySize(prof, formats.AllDescs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != columns.RLE {
		t.Errorf("run data: chose %v, want rle", got)
	}
}

func TestEstimateEmptyAndErrors(t *testing.T) {
	prof := stats.Collect(nil)
	for _, desc := range formats.AllDescs() {
		est, err := EstimateBytes(prof, desc)
		if err != nil {
			t.Fatal(err)
		}
		if est != columns.MetadataBytes {
			t.Errorf("%v: empty estimate %d", desc, est)
		}
	}
	if _, err := EstimateBytes(prof, columns.FormatDesc{Kind: columns.Kind(99)}); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := ChooseBySize(prof, nil); err == nil {
		t.Error("empty candidates must fail")
	}
}

func TestCalibrate(t *testing.T) {
	cal, err := Calibrate(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, desc := range formats.AllDescs() {
		if cal.CompressNs[desc.Kind] <= 0 {
			t.Errorf("%v: no compression cost", desc)
		}
		if cal.DecompressNs[desc.Kind] <= 0 {
			t.Errorf("%v: no decompression cost", desc)
		}
	}
	prof := stats.Collect(datagen.Generate(datagen.C1, 10000, 1))
	if cal.EstimateAccessNs(prof, columns.DynBPDesc) <= 0 {
		t.Error("access estimate must be positive")
	}
	if _, err := cal.ChooseByAccessTime(prof, formats.PaperDescs()); err != nil {
		t.Error(err)
	}
	if _, err := cal.ChooseByAccessTime(prof, nil); err == nil {
		t.Error("empty candidates must fail")
	}
}

func TestDefaultCalibrationComplete(t *testing.T) {
	cal := DefaultCalibration()
	for _, desc := range formats.AllDescs() {
		if _, ok := cal.CompressNs[desc.Kind]; !ok {
			t.Errorf("%v missing from default calibration", desc)
		}
	}
}
