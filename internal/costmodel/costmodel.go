// Package costmodel implements the gray-box cost model for lightweight
// integer compression that MorphStore-Go's compression-aware optimization
// builds on (paper §5, "Determining a good format combination"; Damme et
// al., ACM TODS 44(3), 2019): analytic per-format size estimates driven by
// compact data characteristics (bit-width histograms, sortedness, run
// structure), plus calibrated per-element speed estimates capturing
// hardware-dependent behaviour.
//
// The model never inspects the full data; it consumes a stats.Profile, the
// per-intermediate characteristics the paper assumes known during planning.
package costmodel

import (
	"fmt"
	"math/bits"
	"time"

	"morphstore/internal/columns"
	"morphstore/internal/formats"
	"morphstore/internal/stats"
)

// blockHeaderBytes is the per-block header size of DynBP (bits word).
const blockHeaderBytes = 8

// cascadeHeaderBytes is the per-block header size of DeltaBP/ForBP
// (base/ref word + bits word).
const cascadeHeaderBytes = 16

// EstimateBytes returns the estimated physical size of a column with the
// given data characteristics when stored in the given format.
func EstimateBytes(p *stats.Profile, desc columns.FormatDesc) (int, error) {
	n := p.N
	meta := columns.MetadataBytes
	if int(desc.Kind) >= columns.NumKinds {
		return 0, fmt.Errorf("costmodel: no size model for %v", desc)
	}
	if n == 0 {
		return meta, nil
	}
	switch desc.Kind {
	case columns.Uncompressed:
		return meta + 8*n, nil

	case columns.StaticBP:
		b := p.MaxBits
		if desc.Bits != 0 {
			b = uint(desc.Bits)
		}
		return meta + packedBytes(n, float64(b)), nil

	case columns.DynBP:
		nb := n / formats.BlockLen
		rem := n % formats.BlockLen
		e := stats.ExpectedBlockMaxBits(&p.BitHist, n, formats.BlockLen)
		perBlock := blockHeaderBytes + packedBytes(formats.BlockLen, e)
		return meta + nb*perBlock + 8*rem, nil

	case columns.DeltaBP:
		nb := n / formats.BlockLen
		rem := n % formats.BlockLen
		// The first element has no predecessor; its "delta" is the value
		// itself, a negligible contribution the histogram model ignores.
		e := stats.ExpectedBlockMaxBits(&p.DeltaBitHist, n-1, formats.BlockLen)
		perBlock := cascadeHeaderBytes + packedBytes(formats.BlockLen, e)
		return meta + nb*perBlock + 8*rem, nil

	case columns.ForBP:
		nb := n / formats.BlockLen
		rem := n % formats.BlockLen
		var e float64
		if p.Sorted && n > formats.BlockLen {
			// Sorted data: a block spans ~1/nb of the value range, so the
			// per-block offsets need bits(range * blockLen / n).
			span := float64(p.Max-p.Min) * float64(formats.BlockLen) / float64(n)
			e = float64(bits.Len64(uint64(span)))
		} else {
			// Unsorted: assume the global minimum approximates each block's
			// reference and model the block maximum of the shifted widths.
			e = stats.ExpectedBlockMaxBits(&p.ForBitHist, n, formats.BlockLen)
		}
		perBlock := cascadeHeaderBytes + packedBytes(formats.BlockLen, e)
		return meta + nb*perBlock + 8*rem, nil

	case columns.RLE:
		return meta + 16*p.Runs, nil

	default:
		return 0, fmt.Errorf("costmodel: no size model for %v", desc)
	}
}

// packedBytes is the expected packed payload size of n values at a
// (possibly fractional, expected) bit width.
func packedBytes(n int, bits float64) int {
	words := float64(n) * bits / 64
	return int(words+0.999) * 8
}

// ChooseBySize returns the candidate format with the smallest estimated
// physical size — the compression-rate objective of the selection strategy,
// the one evaluated in Fig. 10.
func ChooseBySize(p *stats.Profile, candidates []columns.FormatDesc) (columns.FormatDesc, error) {
	if len(candidates) == 0 {
		return columns.FormatDesc{}, fmt.Errorf("costmodel: no candidate formats")
	}
	best := candidates[0]
	bestSize := -1
	for _, d := range candidates {
		s, err := EstimateBytes(p, d)
		if err != nil {
			return columns.FormatDesc{}, err
		}
		if bestSize < 0 || s < bestSize {
			best, bestSize = d, s
		}
	}
	return best, nil
}

// Calibration captures hardware-dependent per-element costs of each format,
// the calibrated half of the gray-box model.
type Calibration struct {
	// CompressNs and DecompressNs map format kinds to nanoseconds per
	// element.
	CompressNs   map[columns.Kind]float64
	DecompressNs map[columns.Kind]float64
}

// DefaultCalibration returns canned per-element costs representative of a
// commodity x86-64 core; use Calibrate for machine-specific numbers.
func DefaultCalibration() *Calibration {
	return &Calibration{
		CompressNs: map[columns.Kind]float64{
			columns.Uncompressed: 0.3, columns.StaticBP: 1.2, columns.DynBP: 1.4,
			columns.DeltaBP: 1.8, columns.ForBP: 1.8, columns.RLE: 1.0,
		},
		DecompressNs: map[columns.Kind]float64{
			columns.Uncompressed: 0.3, columns.StaticBP: 1.0, columns.DynBP: 1.1,
			columns.DeltaBP: 1.5, columns.ForBP: 1.4, columns.RLE: 0.8,
		},
	}
}

// Calibrate measures per-element compression and decompression costs of
// every format on synthetic data of the given size and returns them as a
// calibration (the offline calibration run of the gray-box approach).
func Calibrate(n int) (*Calibration, error) {
	if n < formats.BlockLen {
		n = 1 << 16
	}
	vals := make([]uint64, n)
	seed := uint64(0x2545F4914F6CDD1D)
	for i := range vals {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		vals[i] = seed % 4096
	}
	cal := &Calibration{
		CompressNs:   make(map[columns.Kind]float64),
		DecompressNs: make(map[columns.Kind]float64),
	}
	dst := make([]uint64, n)
	for _, desc := range formats.AllDescs() {
		start := time.Now()
		col, err := formats.Compress(vals, desc)
		if err != nil {
			return nil, err
		}
		cal.CompressNs[desc.Kind] = float64(time.Since(start).Nanoseconds()) / float64(n)
		codec, err := formats.Get(desc.Kind)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if err := codec.Decompress(dst, col); err != nil {
			return nil, err
		}
		cal.DecompressNs[desc.Kind] = float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	return cal, nil
}

// EstimateAccessNs estimates the time to write a column once and read it
// once in the given format: the processing-cost objective that trades off
// against the compression rate (§2.1: the best-rate algorithm is not
// necessarily the fastest).
func (c *Calibration) EstimateAccessNs(p *stats.Profile, desc columns.FormatDesc) float64 {
	return float64(p.N) * (c.CompressNs[desc.Kind] + c.DecompressNs[desc.Kind])
}

// ChooseByAccessTime returns the candidate with the lowest estimated
// write+read time.
func (c *Calibration) ChooseByAccessTime(p *stats.Profile, candidates []columns.FormatDesc) (columns.FormatDesc, error) {
	if len(candidates) == 0 {
		return columns.FormatDesc{}, fmt.Errorf("costmodel: no candidate formats")
	}
	best := candidates[0]
	bestT := -1.0
	for _, d := range candidates {
		t := c.EstimateAccessNs(p, d)
		if bestT < 0 || t < bestT {
			best, bestT = d, t
		}
	}
	return best, nil
}
