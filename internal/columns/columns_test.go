package columns

import (
	"strings"
	"testing"
)

func TestFromValues(t *testing.T) {
	vals := []uint64{1, 2, 3}
	c := FromValues(vals)
	if c.N() != 3 || c.MainElems() != 3 {
		t.Fatalf("extents: %v", c)
	}
	if got, ok := c.Values(); !ok || len(got) != 3 {
		t.Fatalf("Values = %v, %v", got, ok)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.PhysicalBytes() != 3*8+MetadataBytes {
		t.Errorf("PhysicalBytes = %d", c.PhysicalBytes())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(UncomprDesc, 4, 4, 4, make([]uint64, 3)); err == nil {
		t.Error("short buffer must fail")
	}
	if _, err := New(UncomprDesc, 4, 5, 4, make([]uint64, 3)); err == nil {
		t.Error("mainElems > n must fail")
	}
	if _, err := New(UncomprDesc, -1, 0, 0, nil); err == nil {
		t.Error("negative n must fail")
	}
	c, err := New(DynBPDesc, 600, 512, 10, make([]uint64, 98))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Remainder()) != 88 || len(c.MainWords()) != 10 {
		t.Errorf("split: main %d rem %d", len(c.MainWords()), len(c.Remainder()))
	}
}

func TestValuesOnCompressed(t *testing.T) {
	c, err := New(DynBPDesc, 512, 512, 8, make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Values(); ok {
		t.Error("Values must refuse on compressed column")
	}
}

func TestCompressionRate(t *testing.T) {
	c, err := New(StaticBPDesc(8), 64, 64, 8, make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r := c.CompressionRate(); r >= 1 {
		t.Errorf("rate = %f, want < 1", r)
	}
	empty := FromValues(nil)
	if r := empty.CompressionRate(); r != 1 {
		t.Errorf("empty rate = %f, want 1", r)
	}
}

func TestDescString(t *testing.T) {
	for _, d := range []FormatDesc{UncomprDesc, StaticBPDesc(13), DynBPDesc, DeltaBPDesc, ForBPDesc, RLEDesc} {
		if d.String() == "" {
			t.Errorf("empty string for %v", d.Kind)
		}
	}
	if !strings.Contains(StaticBPDesc(13).String(), "13") {
		t.Error("static BP string should carry the width")
	}
	if UncomprDesc.IsCompressed() {
		t.Error("uncompressed must not report compressed")
	}
	if !DynBPDesc.IsCompressed() {
		t.Error("dyn BP must report compressed")
	}
}

func TestValidateBadKind(t *testing.T) {
	c := FromValues([]uint64{1})
	c.desc.Kind = Kind(99)
	if err := c.Validate(); err == nil {
		t.Error("unknown kind must fail validation")
	}
}

func TestColumnString(t *testing.T) {
	c := FromValues([]uint64{1, 2})
	if s := c.String(); !strings.Contains(s, "n=2") {
		t.Errorf("String = %q", s)
	}
}
