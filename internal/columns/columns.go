// Package columns implements MorphStore-Go's storage layer: the column data
// structure shared by base data, intermediate results, and query results.
//
// Exactly as in the paper (§4.1, Fig. 3), a column is a contiguous buffer
// holding the entire data either uncompressed or compressed in exactly one
// format. Because some formats can only represent multiples of their block
// size, every column is subdivided into a compressed main part (the first
// ⌊n/bs⌋·bs elements) and an uncompressed remainder (the trailing n mod bs
// elements, stored as raw 64-bit words directly behind the main part).
// Separate metadata records the sizes of both parts.
//
// All buffers are word-aligned: the unit of storage is the 64-bit word, which
// every format in internal/formats lays out explicitly.
package columns

import "fmt"

// Kind identifies a lightweight integer compression format.
type Kind uint8

const (
	// Uncompressed stores one 64-bit word per element.
	Uncompressed Kind = iota
	// StaticBP is bit packing with one fixed bit width for the whole column
	// (the paper's "static BP"; supports random access).
	StaticBP
	// DynBP is block-wise binary packing with a per-block bit width over
	// 512-element blocks: the 64-bit port of SIMD-BP128/SIMD-BP512.
	DynBP
	// DeltaBP cascades delta coding (logical level) with DynBP (physical
	// level) over 512-element blocks: the paper's "DELTA + SIMD-BP512".
	DeltaBP
	// ForBP cascades frame-of-reference coding with DynBP over 512-element
	// blocks: the paper's "FOR + SIMD-BP512".
	ForBP
	// RLE is run-length encoding as (value, run length) word pairs. It is an
	// extension beyond the paper's five implemented formats (§2.1 names it a
	// basic technique; §4.2's concepts apply unchanged).
	RLE
	numKinds
)

// NumKinds is the number of distinct format kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case Uncompressed:
		return "uncompr"
	case StaticBP:
		return "static_bp"
	case DynBP:
		return "dyn_bp"
	case DeltaBP:
		return "delta+bp"
	case ForBP:
		return "for+bp"
	case RLE:
		return "rle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FormatDesc describes the concrete compressed format of a column: the kind
// plus any format parameter. For StaticBP, Bits is the fixed bit width; a
// zero Bits in a *requested* format means "derive from the data".
type FormatDesc struct {
	Kind Kind
	Bits uint8
}

// Format constructors for the supported formats.
var (
	// UncomprDesc requests the uncompressed format.
	UncomprDesc = FormatDesc{Kind: Uncompressed}
	// DynBPDesc requests block-wise binary packing.
	DynBPDesc = FormatDesc{Kind: DynBP}
	// DeltaBPDesc requests DELTA + DynBP.
	DeltaBPDesc = FormatDesc{Kind: DeltaBP}
	// ForBPDesc requests FOR + DynBP.
	ForBPDesc = FormatDesc{Kind: ForBP}
	// RLEDesc requests run-length encoding.
	RLEDesc = FormatDesc{Kind: RLE}
)

// StaticBPDesc requests static bit packing with the given width; width 0
// derives the width from the data at compression time.
func StaticBPDesc(bits uint) FormatDesc {
	return FormatDesc{Kind: StaticBP, Bits: uint8(bits)}
}

func (d FormatDesc) String() string {
	if d.Kind == StaticBP && d.Bits != 0 {
		return fmt.Sprintf("static_bp(%d)", d.Bits)
	}
	return d.Kind.String()
}

// IsCompressed reports whether the format is an actual compressed format.
func (d FormatDesc) IsCompressed() bool { return d.Kind != Uncompressed }

// MetadataBytes is the accounted physical size of a column's metadata
// structure (format descriptor plus the main/remainder extents of Fig. 3).
const MetadataBytes = 48

// Column is a sequence of unsigned 64-bit integers materialized in exactly
// one format: a compressed main part followed by an uncompressed remainder
// in a single word buffer.
type Column struct {
	desc      FormatDesc
	n         int      // total logical number of data elements
	mainElems int      // elements represented by the compressed main part
	mainWords int      // words occupied by the compressed main part
	words     []uint64 // mainWords words, then (n-mainElems) raw words
}

// New assembles a column from its parts. The words slice must hold exactly
// mainWords + (n - mainElems) words; New reports an error otherwise.
func New(desc FormatDesc, n, mainElems, mainWords int, words []uint64) (*Column, error) {
	rem := n - mainElems
	if n < 0 || mainElems < 0 || rem < 0 || mainWords < 0 {
		return nil, fmt.Errorf("columns: inconsistent extents n=%d mainElems=%d mainWords=%d", n, mainElems, mainWords)
	}
	if want := mainWords + rem; len(words) != want {
		return nil, fmt.Errorf("columns: buffer has %d words, want %d (main %d + remainder %d)",
			len(words), want, mainWords, rem)
	}
	return &Column{desc: desc, n: n, mainElems: mainElems, mainWords: mainWords, words: words}, nil
}

// FromValues wraps vals as an uncompressed column, taking ownership of the
// slice (no copy).
func FromValues(vals []uint64) *Column {
	return &Column{desc: UncomprDesc, n: len(vals), mainElems: len(vals), mainWords: len(vals), words: vals}
}

// Desc returns the column's format descriptor.
func (c *Column) Desc() FormatDesc { return c.desc }

// N returns the logical number of data elements.
func (c *Column) N() int { return c.n }

// MainElems returns the number of elements in the compressed main part.
func (c *Column) MainElems() int { return c.mainElems }

// MainWords returns the word slice of the compressed main part.
func (c *Column) MainWords() []uint64 { return c.words[:c.mainWords] }

// Remainder returns the uncompressed trailing elements (one word each).
func (c *Column) Remainder() []uint64 { return c.words[c.mainWords:] }

// Words returns the whole underlying buffer: main part then remainder.
func (c *Column) Words() []uint64 { return c.words }

// PhysicalBytes returns the accounted physical size: data buffer plus
// metadata. This is the footprint measure used by all experiments.
func (c *Column) PhysicalBytes() int { return len(c.words)*8 + MetadataBytes }

// Values returns the column's elements as a plain slice. For uncompressed
// columns this is a zero-copy view of the buffer; callers must not modify it.
// For compressed columns it returns (nil, false): use the owning format's
// decompressor.
func (c *Column) Values() ([]uint64, bool) {
	if c.desc.Kind != Uncompressed {
		return nil, false
	}
	return c.words, true
}

// CompressionRate returns physical size relative to the uncompressed size
// (lower is better; 1.0 means no saving).
func (c *Column) CompressionRate() float64 {
	if c.n == 0 {
		return 1
	}
	return float64(c.PhysicalBytes()) / float64(c.n*8+MetadataBytes)
}

// Validate checks the structural invariants of the column.
func (c *Column) Validate() error {
	if c.n < 0 || c.mainElems < 0 || c.mainElems > c.n {
		return fmt.Errorf("columns: bad extents n=%d mainElems=%d", c.n, c.mainElems)
	}
	if want := c.mainWords + (c.n - c.mainElems); len(c.words) != want {
		return fmt.Errorf("columns: buffer has %d words, want %d", len(c.words), want)
	}
	if c.desc.Kind >= numKinds {
		return fmt.Errorf("columns: unknown format kind %d", c.desc.Kind)
	}
	if c.desc.Kind == Uncompressed && c.mainWords != c.mainElems {
		return fmt.Errorf("columns: uncompressed main part has %d words for %d elements", c.mainWords, c.mainElems)
	}
	return nil
}

func (c *Column) String() string {
	return fmt.Sprintf("Column{%s, n=%d, main=%d elems/%d words, rem=%d, %d B}",
		c.desc, c.n, c.mainElems, c.mainWords, c.n-c.mainElems, c.PhysicalBytes())
}
