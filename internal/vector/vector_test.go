package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand) Vec {
	var v Vec
	for i := range v {
		v[i] = rng.Uint64()
	}
	return v
}

func TestLoadStore(t *testing.T) {
	s := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	v := Load(s)
	out := make([]uint64, Lanes)
	v.Store(out)
	for i := 0; i < Lanes; i++ {
		if out[i] != s[i] {
			t.Errorf("lane %d = %d, want %d", i, out[i], s[i])
		}
	}
}

func TestSet1AndSeq(t *testing.T) {
	v := Set1(42)
	for i, x := range v {
		if x != 42 {
			t.Errorf("Set1 lane %d = %d", i, x)
		}
	}
	s := SeqFrom(10)
	for i, x := range s {
		if x != uint64(10+i) {
			t.Errorf("SeqFrom lane %d = %d", i, x)
		}
	}
}

func TestArithmeticAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b := randVec(rng), randVec(rng)
		add, sub, mul := Add(a, b), Sub(a, b), Mul(a, b)
		and, or := And(a, b), Or(a, b)
		for i := 0; i < Lanes; i++ {
			if add[i] != a[i]+b[i] {
				t.Fatalf("Add lane %d", i)
			}
			if sub[i] != a[i]-b[i] {
				t.Fatalf("Sub lane %d", i)
			}
			if mul[i] != a[i]*b[i] {
				t.Fatalf("Mul lane %d", i)
			}
			if and[i] != a[i]&b[i] {
				t.Fatalf("And lane %d", i)
			}
			if or[i] != a[i]|b[i] {
				t.Fatalf("Or lane %d", i)
			}
		}
	}
}

func TestShifts(t *testing.T) {
	v := Set1(0xF0)
	if got := Shr(v, 4); got != Set1(0xF) {
		t.Errorf("Shr = %v", got)
	}
	if got := Shl(v, 4); got != Set1(0xF00) {
		t.Errorf("Shl = %v", got)
	}
	if got := Shr(v, 64); got != (Vec{}) {
		t.Errorf("Shr 64 = %v", got)
	}
	if got := Shl(v, 64); got != (Vec{}) {
		t.Errorf("Shl 64 = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(rng), randVec(rng)
		if trial%3 == 0 { // force some equal lanes
			b[trial%Lanes] = a[trial%Lanes]
		}
		checks := []struct {
			name string
			m    Mask
			f    func(x, y uint64) bool
		}{
			{"eq", CmpEq(a, b), func(x, y uint64) bool { return x == y }},
			{"ne", CmpNe(a, b), func(x, y uint64) bool { return x != y }},
			{"lt", CmpLt(a, b), func(x, y uint64) bool { return x < y }},
			{"le", CmpLe(a, b), func(x, y uint64) bool { return x <= y }},
			{"gt", CmpGt(a, b), func(x, y uint64) bool { return x > y }},
			{"ge", CmpGe(a, b), func(x, y uint64) bool { return x >= y }},
		}
		for _, c := range checks {
			for i := 0; i < Lanes; i++ {
				want := c.f(a[i], b[i])
				got := c.m&(1<<i) != 0
				if got != want {
					t.Fatalf("%s lane %d: got %v want %v (a=%d b=%d)", c.name, i, got, want, a[i], b[i])
				}
			}
		}
	}
}

func TestCompressStore(t *testing.T) {
	v := SeqFrom(100)
	dst := make([]uint64, Lanes)
	n := CompressStore(dst, 0b10100101, v)
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	want := []uint64{100, 102, 105, 107}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], w)
		}
	}
	if CompressStore(dst, 0, v) != 0 {
		t.Error("empty mask should store nothing")
	}
	if CompressStore(dst, FullMask, v) != Lanes {
		t.Error("full mask should store all lanes")
	}
}

func TestGather(t *testing.T) {
	base := make([]uint64, 64)
	for i := range base {
		base[i] = uint64(i * 10)
	}
	idx := Vec{3, 1, 4, 1, 5, 9, 2, 6}
	got := Gather(base, idx)
	for i, ix := range idx {
		if got[i] != base[ix] {
			t.Errorf("lane %d = %d, want %d", i, got[i], base[ix])
		}
	}
}

func TestHSumProperty(t *testing.T) {
	f := func(a, b, c, d, e, ff, g, h uint64) bool {
		v := Vec{a, b, c, d, e, ff, g, h}
		return v.HSum() == a+b+c+d+e+ff+g+h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskCount(t *testing.T) {
	if FullMask.Count() != Lanes {
		t.Error("FullMask count")
	}
	if Mask(0).Count() != 0 {
		t.Error("zero mask count")
	}
	if Mask(0b1010).Count() != 2 {
		t.Error("0b1010 count")
	}
}

func TestStyleString(t *testing.T) {
	if Scalar.String() != "scalar" || Vec512.String() != "vec512" {
		t.Error("style names")
	}
	if Style(99).String() == "" {
		t.Error("unknown style should still format")
	}
}
