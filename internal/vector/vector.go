// Package vector is MorphStore-Go's stand-in for the Template Vector Library
// (TVL) of the original C++ system: a hardware-oblivious vector-processing
// abstraction that lets operator kernels be written once against a small set
// of primitives and instantiated either as scalar code or as 8-lane 512-bit
// "vector register" code (the AVX-512 analog).
//
// Go has no SIMD intrinsics, so the Vec512 primitives compile to straight-line
// unrolled word operations. What the abstraction preserves from the paper is
// the processing model: kernels consume and produce whole vector registers,
// selective kernels communicate validity through lane bitmasks, and the
// choice of Style is a template-like parameter threaded through every
// operator and codec.
package vector

import (
	"fmt"
	"math/bits"
)

// Lanes is the number of 64-bit lanes in a Vec512 register.
const Lanes = 8

// Vec is a 512-bit vector register of eight 64-bit unsigned lanes.
type Vec [Lanes]uint64

// Mask is a per-lane validity bitmask; bit i corresponds to lane i.
type Mask uint8

// FullMask has all eight lane bits set.
const FullMask Mask = (1 << Lanes) - 1

// Style selects the processing-style specialization of kernels, mirroring the
// TVL template parameter that picks a SIMD extension.
type Style uint8

const (
	// Scalar processes one data element at a time.
	Scalar Style = iota
	// Vec512 processes eight 64-bit elements at a time.
	Vec512
)

func (s Style) String() string {
	switch s {
	case Scalar:
		return "scalar"
	case Vec512:
		return "vec512"
	default:
		return fmt.Sprintf("style(%d)", uint8(s))
	}
}

// Styles lists all supported processing styles.
var Styles = []Style{Scalar, Vec512}

// Load fills a vector register from the first Lanes elements of s.
func Load(s []uint64) Vec {
	_ = s[Lanes-1]
	return Vec{s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]}
}

// Store writes the register to the first Lanes elements of s.
func (v Vec) Store(s []uint64) {
	_ = s[Lanes-1]
	s[0], s[1], s[2], s[3] = v[0], v[1], v[2], v[3]
	s[4], s[5], s[6], s[7] = v[4], v[5], v[6], v[7]
}

// Set1 broadcasts x into all lanes (the _mm512_set1_epi64 analog).
func Set1(x uint64) Vec {
	return Vec{x, x, x, x, x, x, x, x}
}

// SeqFrom returns {x, x+1, ..., x+7}: the index vector used by selective
// kernels to materialize positions.
func SeqFrom(x uint64) Vec {
	return Vec{x, x + 1, x + 2, x + 3, x + 4, x + 5, x + 6, x + 7}
}

// Add returns the lane-wise sum a+b.
func Add(a, b Vec) Vec {
	return Vec{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3],
		a[4] + b[4], a[5] + b[5], a[6] + b[6], a[7] + b[7]}
}

// Sub returns the lane-wise difference a-b.
func Sub(a, b Vec) Vec {
	return Vec{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3],
		a[4] - b[4], a[5] - b[5], a[6] - b[6], a[7] - b[7]}
}

// Mul returns the lane-wise product a*b (low 64 bits).
func Mul(a, b Vec) Vec {
	return Vec{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3],
		a[4] * b[4], a[5] * b[5], a[6] * b[6], a[7] * b[7]}
}

// And returns the lane-wise bitwise conjunction.
func And(a, b Vec) Vec {
	return Vec{a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3],
		a[4] & b[4], a[5] & b[5], a[6] & b[6], a[7] & b[7]}
}

// Or returns the lane-wise bitwise disjunction.
func Or(a, b Vec) Vec {
	return Vec{a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3],
		a[4] | b[4], a[5] | b[5], a[6] | b[6], a[7] | b[7]}
}

// Shr returns the lane-wise logical right shift by k bits.
func Shr(a Vec, k uint) Vec {
	if k >= 64 {
		return Vec{}
	}
	return Vec{a[0] >> k, a[1] >> k, a[2] >> k, a[3] >> k,
		a[4] >> k, a[5] >> k, a[6] >> k, a[7] >> k}
}

// Shl returns the lane-wise logical left shift by k bits.
func Shl(a Vec, k uint) Vec {
	if k >= 64 {
		return Vec{}
	}
	return Vec{a[0] << k, a[1] << k, a[2] << k, a[3] << k,
		a[4] << k, a[5] << k, a[6] << k, a[7] << k}
}

// CmpEq returns the lane mask of a == b (the _mm512_cmpeq_epu64_mask
// analog). All comparison kernels are branchless, like their hardware
// counterparts: lane predicates become carries/borrows, never branches.
func CmpEq(a, b Vec) Mask {
	var m Mask
	for i := 0; i < Lanes; i++ {
		v := a[i] ^ b[i]
		m |= Mask(1^((v|-v)>>63)) << i
	}
	return m
}

// CmpNe returns the lane mask of a != b.
func CmpNe(a, b Vec) Mask { return ^CmpEq(a, b) & FullMask }

// CmpLt returns the lane mask of a < b (unsigned).
func CmpLt(a, b Vec) Mask {
	var m Mask
	for i := 0; i < Lanes; i++ {
		_, borrow := bits.Sub64(a[i], b[i], 0)
		m |= Mask(borrow) << i
	}
	return m
}

// CmpLe returns the lane mask of a <= b (unsigned).
func CmpLe(a, b Vec) Mask {
	var m Mask
	for i := 0; i < Lanes; i++ {
		_, borrow := bits.Sub64(b[i], a[i], 0) // borrow <=> b < a <=> !(a <= b)
		m |= Mask(1-borrow) << i
	}
	return m
}

// CmpGt returns the lane mask of a > b (unsigned).
func CmpGt(a, b Vec) Mask { return CmpLt(b, a) }

// CmpGe returns the lane mask of a >= b (unsigned).
func CmpGe(a, b Vec) Mask { return CmpLe(b, a) }

// CompressStore writes the lanes of v selected by m compactly to dst and
// returns the number of lanes written (the _mm512_mask_compressstoreu
// analog). dst must have room for up to Lanes elements regardless of the
// mask. Dense masks take a branchless store-all path; sparse masks iterate
// only the set lane bits.
func CompressStore(dst []uint64, m Mask, v Vec) int {
	switch m {
	case 0:
		return 0
	case FullMask:
		v.Store(dst)
		return Lanes
	}
	_ = dst[Lanes-1]
	n := 0
	for x := uint(m); x != 0; x &= x - 1 {
		dst[n] = v[bits.TrailingZeros(x)]
		n++
	}
	return n
}

// Gather loads dst lanes from base at the eight indices of idx
// (the _mm512_i64gather analog).
func Gather(base []uint64, idx Vec) Vec {
	return Vec{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]],
		base[idx[4]], base[idx[5]], base[idx[6]], base[idx[7]]}
}

// HSum returns the horizontal sum of all lanes.
func (v Vec) HSum() uint64 {
	return v[0] + v[1] + v[2] + v[3] + v[4] + v[5] + v[6] + v[7]
}

// Count returns the number of set lane bits in the mask.
func (m Mask) Count() int { return bits.OnesCount8(uint8(m)) }
