package ssb

import (
	"fmt"
	"math/rand"
	"time"

	"morphstore/internal/core"
)

// Scale factors: at SF 1 the SSB specification generates 6,000,000 lineorder
// rows, 30,000 customers, 2,000 suppliers, 200,000 parts and 7 years of
// dates. Fractional scale factors shrink the row counts proportionally
// (with sane floors), which the paper's SF-10 setup does not need but our
// laptop-scale reproduction does.
const (
	lineorderPerSF = 6000000
	customerPerSF  = 30000
	supplierPerSF  = 2000
	partAtSF1      = 200000
)

// Data is a generated SSB instance: the dictionary-encoded integer columns
// (as a core database), the dictionaries, and the raw per-table row counts.
type Data struct {
	DB    *core.DB
	Dicts *Dicts

	Lineorder int
	Customers int
	Suppliers int
	Parts     int
	Dates     int
}

// Generate produces a deterministic SSB instance at the given scale factor.
// All string attributes are dictionary-encoded order-preservingly, exactly
// as the paper prepares its SSB data (§5.2), so every query runs on integer
// codes without string lookups.
func Generate(sf float64, seed int64) (*Data, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("ssb: scale factor must be positive, got %f", sf)
	}
	d := &Data{Dicts: buildDicts(), DB: core.NewDB()}
	d.Lineorder = atLeast(int(lineorderPerSF*sf), 1000)
	d.Customers = atLeast(int(customerPerSF*sf), 150)
	d.Suppliers = atLeast(int(supplierPerSF*sf), 50)
	d.Parts = atLeast(int(partAtSF1*sf), 200)

	rng := rand.New(rand.NewSource(seed))
	d.genDate()
	d.genCustomer(rng)
	d.genSupplier(rng)
	d.genPart(rng)
	d.genLineorder(rng)
	return d, nil
}

func atLeast(n, floor int) int {
	if n < floor {
		return floor
	}
	return n
}

// genDate builds the date dimension: one row per day of 1992-01-01 through
// 1998-12-31.
func (d *Data) genDate() {
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1998, 12, 31, 0, 0, 0, 0, time.UTC)
	var datekey, year, yearmonthnum, yearmonth, weeknum, month, dayofweek []uint64
	for t := start; !t.After(end); t = t.AddDate(0, 0, 1) {
		y, m, day := t.Date()
		datekey = append(datekey, uint64(y*10000+int(m)*100+day))
		year = append(year, uint64(y))
		yearmonthnum = append(yearmonthnum, uint64(y*100+int(m)))
		ym := fmt.Sprintf("%s%d", monthNames[int(m)-1], y)
		yearmonth = append(yearmonth, d.Dicts.YearMonth.MustCode(ym))
		weeknum = append(weeknum, uint64((t.YearDay()-1)/7+1))
		month = append(month, uint64(m))
		dayofweek = append(dayofweek, uint64(t.Weekday()))
	}
	d.Dates = len(datekey)
	d.DB.AddTable("date", map[string][]uint64{
		"d_datekey":       datekey,
		"d_year":          year,
		"d_yearmonthnum":  yearmonthnum,
		"d_yearmonth":     yearmonth,
		"d_weeknuminyear": weeknum,
		"d_month":         month,
		"d_dayofweek":     dayofweek,
	})
}

// pickNation draws a nation code and returns it with its region code.
func (d *Data) pickNation(rng *rand.Rand) (nation, region uint64) {
	nation = uint64(rng.Intn(d.Dicts.Nation.Len()))
	return nation, d.Dicts.nationRegion[nation]
}

// pickCity draws one of the ten cities of the given nation.
func (d *Data) pickCity(rng *rand.Rand, nation uint64) uint64 {
	return d.Dicts.CityCode(d.Dicts.Nation.String(nation), rng.Intn(10))
}

func (d *Data) genCustomer(rng *rand.Rand) {
	n := d.Customers
	custkey := make([]uint64, n)
	city := make([]uint64, n)
	nationC := make([]uint64, n)
	region := make([]uint64, n)
	mktsegment := make([]uint64, n)
	for i := 0; i < n; i++ {
		custkey[i] = uint64(i)
		nat, reg := d.pickNation(rng)
		nationC[i], region[i] = nat, reg
		city[i] = d.pickCity(rng, nat)
		mktsegment[i] = uint64(rng.Intn(5))
	}
	d.DB.AddTable("customer", map[string][]uint64{
		"c_custkey": custkey, "c_city": city, "c_nation": nationC,
		"c_region": region, "c_mktsegment": mktsegment,
	})
}

func (d *Data) genSupplier(rng *rand.Rand) {
	n := d.Suppliers
	suppkey := make([]uint64, n)
	city := make([]uint64, n)
	nationC := make([]uint64, n)
	region := make([]uint64, n)
	for i := 0; i < n; i++ {
		suppkey[i] = uint64(i)
		nat, reg := d.pickNation(rng)
		nationC[i], region[i] = nat, reg
		city[i] = d.pickCity(rng, nat)
	}
	d.DB.AddTable("supplier", map[string][]uint64{
		"s_suppkey": suppkey, "s_city": city, "s_nation": nationC, "s_region": region,
	})
}

func (d *Data) genPart(rng *rand.Rand) {
	n := d.Parts
	partkey := make([]uint64, n)
	mfgr := make([]uint64, n)
	category := make([]uint64, n)
	brand := make([]uint64, n)
	size := make([]uint64, n)
	for i := 0; i < n; i++ {
		partkey[i] = uint64(i)
		m := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		b := 1 + rng.Intn(40)
		mfgr[i] = d.Dicts.Mfgr.MustCode(fmt.Sprintf("MFGR#%d", m))
		category[i] = d.Dicts.Category.MustCode(fmt.Sprintf("MFGR#%d%d", m, c))
		brand[i] = d.Dicts.Brand.MustCode(fmt.Sprintf("MFGR#%d%d%02d", m, c, b))
		size[i] = uint64(1 + rng.Intn(50))
	}
	d.DB.AddTable("part", map[string][]uint64{
		"p_partkey": partkey, "p_mfgr": mfgr, "p_category": category,
		"p_brand1": brand, "p_size": size,
	})
}

func (d *Data) genLineorder(rng *rand.Rand) {
	n := d.Lineorder
	datekeys, _ := d.DB.Tables["date"].Cols["d_datekey"].Values()

	orderkey := make([]uint64, n)
	linenumber := make([]uint64, n)
	custkey := make([]uint64, n)
	partkey := make([]uint64, n)
	suppkey := make([]uint64, n)
	orderdate := make([]uint64, n)
	quantity := make([]uint64, n)
	extendedprice := make([]uint64, n)
	discount := make([]uint64, n)
	revenue := make([]uint64, n)
	supplycost := make([]uint64, n)
	tax := make([]uint64, n)
	commitdate := make([]uint64, n)
	shipmode := make([]uint64, n)

	line := 1
	order := uint64(1)
	for i := 0; i < n; i++ {
		orderkey[i] = order
		linenumber[i] = uint64(line)
		if line >= 1+rng.Intn(7) {
			line = 1
			order++
		} else {
			line++
		}
		custkey[i] = uint64(rng.Intn(d.Customers))
		partkey[i] = uint64(rng.Intn(d.Parts))
		suppkey[i] = uint64(rng.Intn(d.Suppliers))
		di := rng.Intn(len(datekeys))
		orderdate[i] = datekeys[di]
		quantity[i] = uint64(1 + rng.Intn(50))
		extendedprice[i] = uint64(90000 + rng.Intn(10000000-90000))
		discount[i] = uint64(rng.Intn(11))
		revenue[i] = extendedprice[i] * (100 - discount[i]) / 100
		supplycost[i] = extendedprice[i] * uint64(50+rng.Intn(20)) / 100
		tax[i] = uint64(rng.Intn(9))
		commitdate[i] = datekeys[rng.Intn(len(datekeys))]
		shipmode[i] = uint64(rng.Intn(7))
	}
	d.DB.AddTable("lineorder", map[string][]uint64{
		"lo_orderkey": orderkey, "lo_linenumber": linenumber,
		"lo_custkey": custkey, "lo_partkey": partkey, "lo_suppkey": suppkey,
		"lo_orderdate": orderdate, "lo_quantity": quantity,
		"lo_extendedprice": extendedprice, "lo_discount": discount,
		"lo_revenue": revenue, "lo_supplycost": supplycost,
		"lo_tax": tax, "lo_commitdate": commitdate, "lo_shipmode": shipmode,
	})
}
