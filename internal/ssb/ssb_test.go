package ssb

import (
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/monetsim"
	"morphstore/internal/vector"
)

// testData caches a small SSB instance across tests.
var testData *Data

func getData(t *testing.T) *Data {
	t.Helper()
	if testData == nil {
		d, err := Generate(0.002, 7)
		if err != nil {
			t.Fatal(err)
		}
		plantSelective(d)
		testData = d
	}
	return testData
}

// plantSelective rewrites a fraction of the dimension rows to the very
// selective predicate values of Q2.3/Q3.3/Q3.4 (keeping the hierarchies
// consistent), so that these queries have non-empty results at the tiny
// test scale factor. At SF >= 1 the natural distributions suffice; this is
// purely a test-scale device.
func plantSelective(d *Data) {
	dc := d.Dicts
	uk := dc.Nation.MustCode("UNITED KINGDOM")
	eur := dc.Region.MustCode("EUROPE")
	ki1, ki5 := dc.CityCode("UNITED KINGDOM", 1), dc.CityCode("UNITED KINGDOM", 5)

	cc, _ := d.DB.Tables["customer"].Cols["c_city"].Values()
	cn, _ := d.DB.Tables["customer"].Cols["c_nation"].Values()
	cr, _ := d.DB.Tables["customer"].Cols["c_region"].Values()
	for i := range cc {
		if i%7 == 0 {
			cc[i], cn[i], cr[i] = ki1, uk, eur
		} else if i%9 == 0 {
			cc[i], cn[i], cr[i] = ki5, uk, eur
		}
	}
	sc, _ := d.DB.Tables["supplier"].Cols["s_city"].Values()
	sn, _ := d.DB.Tables["supplier"].Cols["s_nation"].Values()
	sr, _ := d.DB.Tables["supplier"].Cols["s_region"].Values()
	for i := range sc {
		if i%5 == 0 {
			sc[i], sn[i], sr[i] = ki1, uk, eur
		} else if i%6 == 0 {
			sc[i], sn[i], sr[i] = ki5, uk, eur
		}
	}
	pb, _ := d.DB.Tables["part"].Cols["p_brand1"].Values()
	pc, _ := d.DB.Tables["part"].Cols["p_category"].Values()
	pm, _ := d.DB.Tables["part"].Cols["p_mfgr"].Values()
	b2221 := dc.Brand.MustCode("MFGR#2221")
	c22 := dc.Category.MustCode("MFGR#22")
	m2 := dc.Mfgr.MustCode("MFGR#2")
	for i := range pb {
		if i%11 == 0 {
			pb[i], pc[i], pm[i] = b2221, c22, m2
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	d := getData(t)
	if d.Lineorder < 1000 {
		t.Errorf("lineorder rows = %d", d.Lineorder)
	}
	if d.Dates != 2557 { // 1992-1998 includes two leap years
		t.Errorf("dates = %d, want 2557", d.Dates)
	}
	lo := d.DB.Tables["lineorder"]
	for name, col := range lo.Cols {
		if col.N() != d.Lineorder {
			t.Errorf("%s has %d rows, want %d", name, col.N(), d.Lineorder)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	av, _ := a.DB.Tables["lineorder"].Cols["lo_revenue"].Values()
	bv, _ := b.DB.Tables["lineorder"].Cols["lo_revenue"].Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("not deterministic at row %d", i)
		}
	}
}

func TestGenerateBadSF(t *testing.T) {
	if _, err := Generate(0, 1); err == nil {
		t.Error("sf=0 must fail")
	}
	if _, err := Generate(-1, 1); err == nil {
		t.Error("negative sf must fail")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := getData(t)
	lo := d.DB.Tables["lineorder"]
	ck, _ := lo.Cols["lo_custkey"].Values()
	sk, _ := lo.Cols["lo_suppkey"].Values()
	pk, _ := lo.Cols["lo_partkey"].Values()
	od, _ := lo.Cols["lo_orderdate"].Values()
	dk, _ := d.DB.Tables["date"].Cols["d_datekey"].Values()
	dkSet := make(map[uint64]bool, len(dk))
	for _, k := range dk {
		dkSet[k] = true
	}
	for i := range ck {
		if ck[i] >= uint64(d.Customers) {
			t.Fatalf("row %d: custkey %d out of range", i, ck[i])
		}
		if sk[i] >= uint64(d.Suppliers) {
			t.Fatalf("row %d: suppkey %d out of range", i, sk[i])
		}
		if pk[i] >= uint64(d.Parts) {
			t.Fatalf("row %d: partkey %d out of range", i, pk[i])
		}
		if !dkSet[od[i]] {
			t.Fatalf("row %d: orderdate %d not in date dimension", i, od[i])
		}
	}
}

func TestDictionaryOrderPreserving(t *testing.T) {
	d := getData(t)
	// Lexicographic order of brands equals code order.
	b1 := d.Dicts.Brand.MustCode("MFGR#2221")
	b2 := d.Dicts.Brand.MustCode("MFGR#2228")
	if b2 != b1+7 {
		t.Errorf("brand codes not dense/ordered: %d, %d", b1, b2)
	}
	if d.Dicts.Brand.String(b1) != "MFGR#2221" {
		t.Errorf("decode = %q", d.Dicts.Brand.String(b1))
	}
	// Mfgr codes MFGR#1..MFGR#5 must be 0..4.
	if d.Dicts.Mfgr.MustCode("MFGR#1") != 0 || d.Dicts.Mfgr.MustCode("MFGR#5") != 4 {
		t.Error("mfgr codes not ordered")
	}
	// Unknown lookups.
	if _, ok := d.Dicts.Region.Code("ATLANTIS"); ok {
		t.Error("unknown region found")
	}
}

func TestHierarchyConsistency(t *testing.T) {
	d := getData(t)
	cn, _ := d.DB.Tables["customer"].Cols["c_nation"].Values()
	cr, _ := d.DB.Tables["customer"].Cols["c_region"].Values()
	for i := range cn {
		if want := d.Dicts.nationRegion[cn[i]]; cr[i] != want {
			t.Fatalf("customer %d: region %d, want %d for nation %d", i, cr[i], want, cn[i])
		}
	}
	// City belongs to its nation: city code / 10 is not guaranteed to equal
	// nation code (dictionaries sort independently), but the decoded city
	// string must carry the nation's 9-char prefix.
	cc, _ := d.DB.Tables["customer"].Cols["c_city"].Values()
	for i := range cc {
		city := d.Dicts.City.String(cc[i])
		nation := d.Dicts.Nation.String(cn[i])
		prefix := nation
		for len(prefix) < 9 {
			prefix += " "
		}
		if city[:9] != prefix[:9] {
			t.Fatalf("customer %d: city %q does not match nation %q", i, city, nation)
		}
	}
}

// TestAllQueriesAllEnginesAgree is the central SSB correctness test: every
// query must produce identical results in the row-wise reference, the
// MorphStore engine (scalar, vectorized, and two compressed configurations),
// and the MonetDB-style baseline (wide and narrow).
func TestAllQueriesAllEnginesAgree(t *testing.T) {
	d := getData(t)
	for _, q := range Queries {
		q := q
		t.Run(string(q), func(t *testing.T) {
			want, err := Reference(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("reference produced no rows; workload too small to be meaningful")
			}
			plan, err := BuildPlan(q, d.Dicts)
			if err != nil {
				t.Fatal(err)
			}

			cfgs := map[string]*core.Config{
				"scalar-uncompr": core.UncompressedConfig(vector.Scalar),
				"vec-uncompr":    core.UncompressedConfig(vector.Vec512),
				"vec-staticbp":   core.UniformConfig(plan, columns.StaticBPDesc(0), vector.Vec512),
				"vec-dynbp":      core.UniformConfig(plan, columns.DynBPDesc, vector.Vec512),
				"vec-delta":      core.UniformConfig(plan, columns.DeltaBPDesc, vector.Vec512),
			}
			for name, cfg := range cfgs {
				res, err := core.Execute(plan, d.DB, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got, err := ExtractResult(q, res)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !RowsEqual(got, want) {
					t.Fatalf("%s: %d rows vs reference %d rows (or values differ)",
						name, len(got), len(want))
				}
			}

			// Specialized operators enabled, on compressed base data.
			enc, err := d.DB.Encode(allStaticBase(d.DB))
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.UniformConfig(plan, columns.DynBPDesc, vector.Vec512)
			cfg.Specialized = true
			res, err := core.Execute(plan, enc, cfg)
			if err != nil {
				t.Fatalf("specialized: %v", err)
			}
			got, err := ExtractResult(q, res)
			if err != nil {
				t.Fatal(err)
			}
			if !RowsEqual(got, want) {
				t.Fatal("specialized: results differ from reference")
			}

			// The MonetDB-style baseline on the same plan.
			for _, narrow := range []bool{false, true} {
				mdb, err := monetsim.NewDB(d.DB, narrow)
				if err != nil {
					t.Fatal(err)
				}
				mres, err := monetsim.Execute(plan, mdb)
				if err != nil {
					t.Fatalf("monetsim narrow=%v: %v", narrow, err)
				}
				got, err := ExtractRows(q, mres.Cols)
				if err != nil {
					t.Fatal(err)
				}
				if !RowsEqual(got, want) {
					t.Fatalf("monetsim narrow=%v: results differ from reference", narrow)
				}
			}
		})
	}
}

// allStaticBase assigns static BP to every base column of the database.
func allStaticBase(db *core.DB) map[string]columns.FormatDesc {
	m := make(map[string]columns.FormatDesc)
	for tn, t := range db.Tables {
		for cn := range t.Cols {
			m[tn+"."+cn] = columns.StaticBPDesc(0)
		}
	}
	return m
}

// TestPlanShapes verifies the QEPs have the base-column and intermediate
// counts the paper reports (6-16 base columns, 15-56 intermediates).
func TestPlanShapes(t *testing.T) {
	d := getData(t)
	for _, q := range Queries {
		plan, err := BuildPlan(q, d.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		nb := len(plan.BaseColumns())
		ni := len(plan.IntermediateNames())
		if nb < 5 || nb > 16 {
			t.Errorf("%s: %d base columns, expected 5-16", q, nb)
		}
		if ni < 10 || ni > 60 {
			t.Errorf("%s: %d intermediates, expected 10-60", q, ni)
		}
	}
}

func TestCompressedConfigShrinksFootprint(t *testing.T) {
	d := getData(t)
	plan, err := BuildPlan(Q11, d.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := core.Execute(plan, d.DB, core.UncompressedConfig(vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := d.DB.Encode(allStaticBase(d.DB))
	if err != nil {
		t.Fatal(err)
	}
	resC, err := core.Execute(plan, enc, core.UniformConfig(plan, columns.StaticBPDesc(0), vector.Vec512))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(resC.Meas.Footprint()) / float64(resU.Meas.Footprint())
	// Paper Fig. 7: static BP everywhere reaches ~30-55% of uncompressed.
	if ratio > 0.7 {
		t.Errorf("static BP footprint ratio %.2f, want <= 0.7", ratio)
	}
}

func TestUnknownQuery(t *testing.T) {
	d := getData(t)
	if _, err := BuildPlan(Query("9.9"), d.Dicts); err == nil {
		t.Error("unknown query must fail")
	}
	if _, err := Reference(Query("9.9"), d); err == nil {
		t.Error("unknown query must fail")
	}
}

func TestExtractRowsErrors(t *testing.T) {
	if _, err := ExtractRows(Q21, map[string][]uint64{}); err == nil {
		t.Error("missing aggregate must fail")
	}
	if _, err := ExtractRows(Q21, map[string][]uint64{
		"res_sum": {1, 2}, "res_d_year": {1992}, "res_p_brand1": {1, 2},
	}); err == nil {
		t.Error("ragged result must fail")
	}
}
