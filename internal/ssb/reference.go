package ssb

import (
	"fmt"
	"sort"

	"morphstore/internal/core"
)

// Row is one canonicalized result row: the group-key values (empty for the
// ungrouped Q1.x) and the aggregate.
type Row struct {
	Keys []uint64
	Sum  uint64
}

// SortRows orders rows by their key tuples, the canonical comparison order.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Keys, rows[j].Keys
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// RowsEqual compares two canonicalized (sorted) result sets.
func RowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sum != b[i].Sum || len(a[i].Keys) != len(b[i].Keys) {
			return false
		}
		for k := range a[i].Keys {
			if a[i].Keys[k] != b[i].Keys[k] {
				return false
			}
		}
	}
	return true
}

// ExtractRows canonicalizes an engine result into sorted rows.
func ExtractRows(q Query, cols map[string][]uint64) ([]Row, error) {
	keyNames, sumName := ResultKeyNames(q)
	sum, ok := cols[sumName]
	if !ok {
		return nil, fmt.Errorf("ssb: result misses %q", sumName)
	}
	rows := make([]Row, len(sum))
	for i := range sum {
		rows[i] = Row{Sum: sum[i]}
	}
	for _, kn := range keyNames {
		kc, ok := cols[kn]
		if !ok {
			return nil, fmt.Errorf("ssb: result misses key column %q", kn)
		}
		if len(kc) != len(sum) {
			return nil, fmt.Errorf("ssb: key column %q has %d rows, aggregate %d", kn, len(kc), len(sum))
		}
		for i := range rows {
			rows[i].Keys = append(rows[i].Keys, kc[i])
		}
	}
	SortRows(rows)
	return rows, nil
}

// ExtractResult canonicalizes a core engine result.
func ExtractResult(q Query, res *core.Result) ([]Row, error) {
	cols := make(map[string][]uint64, len(res.Cols))
	for name, c := range res.Cols {
		vals, ok := c.Values()
		if !ok {
			return nil, fmt.Errorf("ssb: result column %q is compressed", name)
		}
		cols[name] = vals
	}
	return ExtractRows(q, cols)
}

// refTables bundles decoded raw columns for the reference executor.
type refTables struct {
	lo   map[string][]uint64
	cust map[string][]uint64
	supp map[string][]uint64
	part map[string][]uint64
	date map[string][]uint64
	// datekey -> date row index
	dateByKey map[uint64]int
}

func newRefTables(d *Data) (*refTables, error) {
	get := func(table string) (map[string][]uint64, error) {
		t, ok := d.DB.Tables[table]
		if !ok {
			return nil, fmt.Errorf("ssb: missing table %q", table)
		}
		out := make(map[string][]uint64, len(t.Cols))
		for cn, col := range t.Cols {
			vals, ok := col.Values()
			if !ok {
				return nil, fmt.Errorf("ssb: %s.%s not uncompressed", table, cn)
			}
			out[cn] = vals
		}
		return out, nil
	}
	r := &refTables{}
	var err error
	if r.lo, err = get("lineorder"); err != nil {
		return nil, err
	}
	if r.cust, err = get("customer"); err != nil {
		return nil, err
	}
	if r.supp, err = get("supplier"); err != nil {
		return nil, err
	}
	if r.part, err = get("part"); err != nil {
		return nil, err
	}
	if r.date, err = get("date"); err != nil {
		return nil, err
	}
	r.dateByKey = make(map[uint64]int, len(r.date["d_datekey"]))
	for i, k := range r.date["d_datekey"] {
		r.dateByKey[k] = i
	}
	return r, nil
}

// Reference computes the result of query q with an independent row-wise
// executor over the raw generated data: the ground truth every engine and
// every format configuration is validated against.
func Reference(q Query, d *Data) ([]Row, error) {
	r, err := newRefTables(d)
	if err != nil {
		return nil, err
	}
	dc := d.Dicts
	switch q {
	case Q11:
		return r.q1(func(di int) bool { return r.date["d_year"][di] == 1993 }, 1, 3, 1, 24), nil
	case Q12:
		return r.q1(func(di int) bool { return r.date["d_yearmonthnum"][di] == 199401 }, 4, 6, 26, 35), nil
	case Q13:
		return r.q1(func(di int) bool {
			return r.date["d_weeknuminyear"][di] == 6 && r.date["d_year"][di] == 1994
		}, 5, 7, 26, 35), nil
	case Q21:
		cat := dc.Category.MustCode("MFGR#12")
		amer := dc.Region.MustCode("AMERICA")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				return r.part["p_category"][pi] == cat && r.supp["s_region"][si] == amer
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.part["p_brand1"][pi]}
			}, r.revenueAgg()), nil
	case Q22:
		lo, hi := dc.Brand.MustCode("MFGR#2221"), dc.Brand.MustCode("MFGR#2228")
		asia := dc.Region.MustCode("ASIA")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				b := r.part["p_brand1"][pi]
				return b >= lo && b <= hi && r.supp["s_region"][si] == asia
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.part["p_brand1"][pi]}
			}, r.revenueAgg()), nil
	case Q23:
		brand := dc.Brand.MustCode("MFGR#2221")
		eur := dc.Region.MustCode("EUROPE")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				return r.part["p_brand1"][pi] == brand && r.supp["s_region"][si] == eur
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.part["p_brand1"][pi]}
			}, r.revenueAgg()), nil
	case Q31:
		asia := dc.Region.MustCode("ASIA")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				y := r.date["d_year"][di]
				return r.cust["c_region"][ci] == asia && r.supp["s_region"][si] == asia &&
					y >= 1992 && y <= 1997
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.cust["c_nation"][ci], r.supp["s_nation"][si], r.date["d_year"][di]}
			}, r.revenueAgg()), nil
	case Q32:
		us := dc.Nation.MustCode("UNITED STATES")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				y := r.date["d_year"][di]
				return r.cust["c_nation"][ci] == us && r.supp["s_nation"][si] == us &&
					y >= 1992 && y <= 1997
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.cust["c_city"][ci], r.supp["s_city"][si], r.date["d_year"][di]}
			}, r.revenueAgg()), nil
	case Q33, Q34:
		k1, k5 := dc.CityCode("UNITED KINGDOM", 1), dc.CityCode("UNITED KINGDOM", 5)
		dec97 := dc.YearMonth.MustCode("Dec1997")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				cc, sc := r.cust["c_city"][ci], r.supp["s_city"][si]
				if !((cc == k1 || cc == k5) && (sc == k1 || sc == k5)) {
					return false
				}
				if q == Q33 {
					y := r.date["d_year"][di]
					return y >= 1992 && y <= 1997
				}
				return r.date["d_yearmonth"][di] == dec97
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.cust["c_city"][ci], r.supp["s_city"][si], r.date["d_year"][di]}
			}, r.revenueAgg()), nil
	case Q41:
		amer := dc.Region.MustCode("AMERICA")
		m1, m2 := dc.Mfgr.MustCode("MFGR#1"), dc.Mfgr.MustCode("MFGR#2")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				m := r.part["p_mfgr"][pi]
				return r.cust["c_region"][ci] == amer && r.supp["s_region"][si] == amer &&
					m >= m1 && m <= m2
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.cust["c_nation"][ci]}
			}, r.profitAgg()), nil
	case Q42:
		amer := dc.Region.MustCode("AMERICA")
		m1, m2 := dc.Mfgr.MustCode("MFGR#1"), dc.Mfgr.MustCode("MFGR#2")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				m := r.part["p_mfgr"][pi]
				y := r.date["d_year"][di]
				return r.cust["c_region"][ci] == amer && r.supp["s_region"][si] == amer &&
					m >= m1 && m <= m2 && y >= 1997 && y <= 1998
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.supp["s_nation"][si], r.part["p_category"][pi]}
			}, r.profitAgg()), nil
	case Q43:
		amer := dc.Region.MustCode("AMERICA")
		us := dc.Nation.MustCode("UNITED STATES")
		cat := dc.Category.MustCode("MFGR#14")
		return r.grouped(
			func(ci, si, pi, di int) bool {
				y := r.date["d_year"][di]
				return r.cust["c_region"][ci] == amer && r.supp["s_nation"][si] == us &&
					r.part["p_category"][pi] == cat && y >= 1997 && y <= 1998
			},
			func(ci, si, pi, di int) []uint64 {
				return []uint64{r.date["d_year"][di], r.supp["s_city"][si], r.part["p_brand1"][pi]}
			}, r.profitAgg()), nil
	default:
		return nil, fmt.Errorf("ssb: unknown query %q", q)
	}
}

// q1 computes the Q1.x family: SUM(extendedprice*discount) under fact-local
// range predicates and a date filter.
func (r *refTables) q1(dateOK func(di int) bool, dLo, dHi, qLo, qHi uint64) []Row {
	okDate := make(map[uint64]bool, len(r.dateByKey))
	for k, di := range r.dateByKey {
		okDate[k] = dateOK(di)
	}
	var total uint64
	disc := r.lo["lo_discount"]
	qty := r.lo["lo_quantity"]
	od := r.lo["lo_orderdate"]
	ep := r.lo["lo_extendedprice"]
	for i := range disc {
		if disc[i] >= dLo && disc[i] <= dHi && qty[i] >= qLo && qty[i] <= qHi && okDate[od[i]] {
			total += ep[i] * disc[i]
		}
	}
	return []Row{{Sum: total}}
}

func (r *refTables) revenueAgg() func(i int) uint64 {
	rev := r.lo["lo_revenue"]
	return func(i int) uint64 { return rev[i] }
}

func (r *refTables) profitAgg() func(i int) uint64 {
	rev := r.lo["lo_revenue"]
	cost := r.lo["lo_supplycost"]
	return func(i int) uint64 { return rev[i] - cost[i] }
}

// grouped computes a grouped aggregate over the joined star: pred and key
// receive the dimension row indices of each fact row.
func (r *refTables) grouped(pred func(ci, si, pi, di int) bool,
	key func(ci, si, pi, di int) []uint64, agg func(i int) uint64) []Row {

	ck := r.lo["lo_custkey"]
	sk := r.lo["lo_suppkey"]
	pk := r.lo["lo_partkey"]
	od := r.lo["lo_orderdate"]

	type group struct {
		keys []uint64
		sum  uint64
	}
	groups := make(map[string]*group)
	var kb []byte
	for i := range ck {
		ci, si, pi := int(ck[i]), int(sk[i]), int(pk[i])
		di, ok := r.dateByKey[od[i]]
		if !ok {
			continue
		}
		if !pred(ci, si, pi, di) {
			continue
		}
		keys := key(ci, si, pi, di)
		kb = kb[:0]
		for _, k := range keys {
			for s := 0; s < 64; s += 8 {
				kb = append(kb, byte(k>>s))
			}
		}
		g, ok := groups[string(kb)]
		if !ok {
			g = &group{keys: keys}
			groups[string(kb)] = g
		}
		g.sum += agg(i)
	}
	rows := make([]Row, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, Row{Keys: g.keys, Sum: g.sum})
	}
	SortRows(rows)
	return rows
}
