package ssb

import (
	"fmt"

	"morphstore/internal/bitutil"
	"morphstore/internal/core"
	"morphstore/internal/ops"
)

// Query identifies one of the 13 SSB queries.
type Query string

// The 13 queries of the Star Schema Benchmark.
const (
	Q11 Query = "1.1"
	Q12 Query = "1.2"
	Q13 Query = "1.3"
	Q21 Query = "2.1"
	Q22 Query = "2.2"
	Q23 Query = "2.3"
	Q31 Query = "3.1"
	Q32 Query = "3.2"
	Q33 Query = "3.3"
	Q34 Query = "3.4"
	Q41 Query = "4.1"
	Q42 Query = "4.2"
	Q43 Query = "4.3"
)

// Queries lists all 13 SSB queries in benchmark order.
var Queries = []Query{Q11, Q12, Q13, Q21, Q22, Q23, Q31, Q32, Q33, Q34, Q41, Q42, Q43}

// BuildPlan constructs the operator-at-a-time QEP of query q, imitating the
// MonetDB plans as the paper does (§5.2): selections produce position lists,
// conjunctions intersect them, dimension filters become projected key lists
// joined N:1 against the fact foreign keys, and groupings refine iteratively.
func BuildPlan(q Query, dicts *Dicts) (*core.Plan, error) {
	b := core.NewBuilder()
	switch q {
	case Q11:
		q1x(b, datePredicate{col: "d_year", eq: 1993}, 1, 3, 1, 24)
	case Q12:
		q1x(b, datePredicate{col: "d_yearmonthnum", eq: 199401}, 4, 6, 26, 35)
	case Q13:
		q1x(b, datePredicate{col: "d_weeknuminyear", eq: 6, col2: "d_year", eq2: 1994}, 5, 7, 26, 35)
	case Q21:
		q2x(b, dicts, dimPred{col: "p_category", lo: dicts.Category.MustCode("MFGR#12")})
	case Q22:
		q2x(b, dicts, dimPred{col: "p_brand1",
			lo: dicts.Brand.MustCode("MFGR#2221"), hi: dicts.Brand.MustCode("MFGR#2228"), ranged: true})
	case Q23:
		q2x(b, dicts, dimPred{col: "p_brand1", lo: dicts.Brand.MustCode("MFGR#2221")})
	case Q31:
		q3x(b, dicts,
			dimPred{col: "c_region", lo: dicts.Region.MustCode("ASIA")},
			dimPred{col: "s_region", lo: dicts.Region.MustCode("ASIA")},
			datePredicate{col: "d_year", lo: 1992, hi: 1997, ranged: true},
			"c_nation", "s_nation")
	case Q32:
		q3x(b, dicts,
			dimPred{col: "c_nation", lo: dicts.Nation.MustCode("UNITED STATES")},
			dimPred{col: "s_nation", lo: dicts.Nation.MustCode("UNITED STATES")},
			datePredicate{col: "d_year", lo: 1992, hi: 1997, ranged: true},
			"c_city", "s_city")
	case Q33:
		q3x(b, dicts,
			dimPred{col: "c_city", lo: dicts.CityCode("UNITED KINGDOM", 1), lo2: dicts.CityCode("UNITED KINGDOM", 5), twoEq: true},
			dimPred{col: "s_city", lo: dicts.CityCode("UNITED KINGDOM", 1), lo2: dicts.CityCode("UNITED KINGDOM", 5), twoEq: true},
			datePredicate{col: "d_year", lo: 1992, hi: 1997, ranged: true},
			"c_city", "s_city")
	case Q34:
		q3x(b, dicts,
			dimPred{col: "c_city", lo: dicts.CityCode("UNITED KINGDOM", 1), lo2: dicts.CityCode("UNITED KINGDOM", 5), twoEq: true},
			dimPred{col: "s_city", lo: dicts.CityCode("UNITED KINGDOM", 1), lo2: dicts.CityCode("UNITED KINGDOM", 5), twoEq: true},
			datePredicate{col: "d_yearmonth", eq: dicts.YearMonth.MustCode("Dec1997")},
			"c_city", "s_city")
	case Q41:
		q4x(b, dicts,
			dimPred{col: "c_region", lo: dicts.Region.MustCode("AMERICA")},
			dimPred{col: "s_region", lo: dicts.Region.MustCode("AMERICA")},
			dimPred{col: "p_mfgr", lo: dicts.Mfgr.MustCode("MFGR#1"), hi: dicts.Mfgr.MustCode("MFGR#2"), ranged: true},
			datePredicate{all: true},
			[]groupKey{{"date", "d_year"}, {"customer", "c_nation"}})
	case Q42:
		q4x(b, dicts,
			dimPred{col: "c_region", lo: dicts.Region.MustCode("AMERICA")},
			dimPred{col: "s_region", lo: dicts.Region.MustCode("AMERICA")},
			dimPred{col: "p_mfgr", lo: dicts.Mfgr.MustCode("MFGR#1"), hi: dicts.Mfgr.MustCode("MFGR#2"), ranged: true},
			datePredicate{col: "d_year", lo: 1997, hi: 1998, ranged: true},
			[]groupKey{{"date", "d_year"}, {"supplier", "s_nation"}, {"part", "p_category"}})
	case Q43:
		q4x(b, dicts,
			dimPred{col: "c_region", lo: dicts.Region.MustCode("AMERICA")},
			dimPred{col: "s_nation", lo: dicts.Nation.MustCode("UNITED STATES")},
			dimPred{col: "p_category", lo: dicts.Category.MustCode("MFGR#14")},
			datePredicate{col: "d_year", lo: 1997, hi: 1998, ranged: true},
			[]groupKey{{"date", "d_year"}, {"supplier", "s_city"}, {"part", "p_brand1"}})
	default:
		return nil, fmt.Errorf("ssb: unknown query %q", q)
	}
	return b.Build()
}

// datePredicate describes the date-dimension filter of a query.
type datePredicate struct {
	all    bool // no date filter (Q4.1)
	col    string
	eq     uint64
	col2   string // optional second equality (Q1.3)
	eq2    uint64
	lo, hi uint64
	ranged bool
}

// dimPred describes a customer/supplier/part filter: an equality on lo, a
// range [lo, hi] when ranged, or a two-value IN (lo, lo2) when twoEq.
type dimPred struct {
	col    string
	lo     uint64
	hi     uint64
	lo2    uint64
	ranged bool
	twoEq  bool
}

// groupKey names a dimension column used as a grouping key.
type groupKey struct {
	dim string // joined dimension name
	col string
}

// dimTable maps a column prefix to its table name.
func dimTable(col string) string {
	switch col[0] {
	case 'c':
		return "customer"
	case 's':
		return "supplier"
	case 'p':
		return "part"
	default:
		return "date"
	}
}

// dimKeyCol returns the primary-key column of a dimension table.
func dimKeyCol(table string) string {
	switch table {
	case "customer":
		return "c_custkey"
	case "supplier":
		return "s_suppkey"
	case "part":
		return "p_partkey"
	default:
		return "d_datekey"
	}
}

// dimFK returns the lineorder foreign-key column referencing the table.
func dimFK(table string) string {
	switch table {
	case "customer":
		return "lo_custkey"
	case "supplier":
		return "lo_suppkey"
	case "part":
		return "lo_partkey"
	default:
		return "lo_orderdate"
	}
}

// filterDim builds the selection for a dimension predicate and returns the
// positions of qualifying dimension rows.
func filterDim(b *core.Builder, p dimPred) core.ColRef {
	table := dimTable(p.col)
	scan := b.Scan(table, p.col)
	switch {
	case p.ranged:
		return b.Between(p.col+"_sel", scan, p.lo, p.hi)
	case p.twoEq:
		s1 := b.Select(p.col+"_sel_a", scan, bitutil.CmpEq, p.lo)
		s2 := b.Select(p.col+"_sel_b", scan, bitutil.CmpEq, p.lo2)
		return b.Merge(p.col+"_sel", s1, s2)
	default:
		return b.Select(p.col+"_sel", scan, bitutil.CmpEq, p.lo)
	}
}

// filterDate builds the date-dimension selection; ok is false when the
// query has no date filter.
func filterDate(b *core.Builder, p datePredicate) (core.ColRef, bool) {
	if p.all {
		return core.ColRef{}, false
	}
	if p.ranged {
		return b.Between("d_sel", b.Scan("date", p.col), p.lo, p.hi), true
	}
	sel := b.Select("d_sel_a", b.Scan("date", p.col), bitutil.CmpEq, p.eq)
	if p.col2 == "" {
		return sel, true
	}
	sel2 := b.Select("d_sel_b", b.Scan("date", p.col2), bitutil.CmpEq, p.eq2)
	return b.Intersect("d_sel", sel, sel2), true
}

// q1x builds the Q1.x shape: fact-local predicates on discount and quantity,
// a date semi-join, and SUM(lo_extendedprice * lo_discount).
func q1x(b *core.Builder, dp datePredicate, discLo, discHi, qtyLo, qtyHi uint64) {
	dsel, _ := filterDate(b, dp)
	dkeys := b.Project("d_keys", b.Scan("date", "d_datekey"), dsel)

	s1 := b.Between("disc_sel", b.Scan("lineorder", "lo_discount"), discLo, discHi)
	s2 := b.Between("qty_sel", b.Scan("lineorder", "lo_quantity"), qtyLo, qtyHi)
	pos := b.Intersect("pos", s1, s2)

	od := b.Project("od_p", b.Scan("lineorder", "lo_orderdate"), pos)
	sj := b.SemiJoin("sj", od, dkeys)
	pos2 := b.Project("pos2", pos, sj)

	ep := b.Project("ep_p", b.Scan("lineorder", "lo_extendedprice"), pos2)
	di := b.Project("di_p", b.Scan("lineorder", "lo_discount"), pos2)
	rev := b.Calc("rev", ops.CalcMul, ep, di)
	b.Result(b.SumWhole("revenue", rev))
}

// cascade threads a sequence of N:1 joins against filtered dimensions,
// keeping for every joined dimension the per-row index into its filtered key
// list, exactly like MonetDB's fetch-join chains.
type cascade struct {
	b      *core.Builder
	pos    core.ColRef
	hasPos bool
	dims   map[string]*dimJoin
	order  []string
}

type dimJoin struct {
	buildIdx  core.ColRef // per surviving fact row: index into the filtered key list
	dimPos    core.ColRef // positions of the filtered dimension rows
	hasDimPos bool
}

func newCascade(b *core.Builder) *cascade {
	return &cascade{b: b, dims: make(map[string]*dimJoin)}
}

// joinFiltered joins the fact table against a filtered dimension.
func (c *cascade) joinFiltered(dim string, sel core.ColRef) {
	keys := c.b.Project(dim+"_keys", c.b.Scan(dim, dimKeyCol(dim)), sel)
	c.join(dim, keys, sel, true)
}

// joinFull joins the fact table against an unfiltered dimension.
func (c *cascade) joinFull(dim string) {
	c.join(dim, c.b.Scan(dim, dimKeyCol(dim)), core.ColRef{}, false)
}

func (c *cascade) join(dim string, keys, dimPos core.ColRef, hasDimPos bool) {
	fk := c.b.Scan("lineorder", dimFK(dim))
	probe := fk
	if c.hasPos {
		probe = c.b.Project(dim+"_fkp", fk, c.pos)
	}
	pp, bp := c.b.JoinN1("j_"+dim, probe, keys)
	for _, name := range c.order {
		dj := c.dims[name]
		dj.buildIdx = c.b.Project(dim+"_"+name+"_sub", dj.buildIdx, pp)
	}
	if c.hasPos {
		c.pos = c.b.Project(dim+"_pos", c.pos, pp)
	} else {
		c.pos, c.hasPos = pp, true
	}
	c.dims[dim] = &dimJoin{buildIdx: bp, dimPos: dimPos, hasDimPos: hasDimPos}
	c.order = append(c.order, dim)
}

// dimValue materializes a dimension column per surviving fact row.
func (c *cascade) dimValue(dim, col string) core.ColRef {
	dj := c.dims[dim]
	idx := dj.buildIdx
	if dj.hasDimPos {
		idx = c.b.Project(col+"_dpos", dj.dimPos, dj.buildIdx)
	}
	return c.b.Project(col+"_row", c.b.Scan(dim, col), idx)
}

// factValue materializes a fact column per surviving fact row.
func (c *cascade) factValue(col string) core.ColRef {
	scan := c.b.Scan("lineorder", col)
	if !c.hasPos {
		return scan
	}
	return c.b.Project(col+"_row", scan, c.pos)
}

// groupAndSum groups the per-row key columns iteratively, sums val per
// group, and registers the result columns (key columns + sum).
func groupAndSum(b *core.Builder, keys []core.ColRef, keyNames []string, val core.ColRef) {
	gids, extents := b.GroupFirst("g0", keys[0])
	for i := 1; i < len(keys); i++ {
		gids, extents = b.GroupNext(fmt.Sprintf("g%d", i), gids, keys[i])
	}
	for i, k := range keys {
		b.Result(b.Project("res_"+keyNames[i], k, extents))
	}
	b.Result(b.SumGrouped("res_sum", gids, extents, val))
}

// q2x builds the Q2.x shape: part and supplier filters, full date join,
// GROUP BY d_year, p_brand1 over SUM(lo_revenue).
func q2x(b *core.Builder, dicts *Dicts, partPred dimPred) {
	c := newCascade(b)
	c.joinFiltered("part", filterDim(b, partPred))
	c.joinFiltered("supplier", filterDim(b, dimPred{col: "s_region", lo: q2SupplierRegion(dicts, partPred)}))
	c.joinFull("date")
	year := c.dimValue("date", "d_year")
	brand := c.dimValue("part", "p_brand1")
	rev := c.factValue("lo_revenue")
	groupAndSum(b, []core.ColRef{year, brand}, []string{"d_year", "p_brand1"}, rev)
}

// q2SupplierRegion returns the supplier region of the Q2.x variants
// (AMERICA for Q2.1, ASIA for Q2.2, EUROPE for Q2.3 — distinguished by the
// part predicate shape, mirroring the benchmark definition).
func q2SupplierRegion(dicts *Dicts, partPred dimPred) uint64 {
	switch {
	case partPred.col == "p_category":
		return dicts.Region.MustCode("AMERICA") // Q2.1
	case partPred.ranged:
		return dicts.Region.MustCode("ASIA") // Q2.2
	default:
		return dicts.Region.MustCode("EUROPE") // Q2.3
	}
}

// q3x builds the Q3.x shape: customer and supplier filters, a date filter,
// GROUP BY (ckey, skey, d_year) over SUM(lo_revenue).
func q3x(b *core.Builder, dicts *Dicts, custPred, suppPred dimPred, dp datePredicate, cKey, sKey string) {
	_ = dicts
	c := newCascade(b)
	c.joinFiltered("customer", filterDim(b, custPred))
	c.joinFiltered("supplier", filterDim(b, suppPred))
	dsel, _ := filterDate(b, dp)
	c.joinFiltered("date", dsel)
	ck := c.dimValue("customer", cKey)
	sk := c.dimValue("supplier", sKey)
	year := c.dimValue("date", "d_year")
	rev := c.factValue("lo_revenue")
	groupAndSum(b, []core.ColRef{ck, sk, year}, []string{cKey, sKey, "d_year"}, rev)
}

// q4x builds the Q4.x shape: customer, supplier and part filters, an
// optional date filter, and SUM(lo_revenue - lo_supplycost) grouped by the
// query-specific keys.
func q4x(b *core.Builder, dicts *Dicts, custPred, suppPred, partPred dimPred, dp datePredicate, gks []groupKey) {
	_ = dicts
	c := newCascade(b)
	c.joinFiltered("customer", filterDim(b, custPred))
	c.joinFiltered("supplier", filterDim(b, suppPred))
	c.joinFiltered("part", filterDim(b, partPred))
	if dsel, ok := filterDate(b, dp); ok {
		c.joinFiltered("date", dsel)
	} else {
		c.joinFull("date")
	}
	rev := c.factValue("lo_revenue")
	cost := c.factValue("lo_supplycost")
	profit := b.Calc("profit", ops.CalcSub, rev, cost)
	keys := make([]core.ColRef, len(gks))
	names := make([]string, len(gks))
	for i, gk := range gks {
		keys[i] = c.dimValue(gk.dim, gk.col)
		names[i] = gk.col
	}
	groupAndSum(b, keys, names, profit)
}

// ResultKeyNames returns the names of the result columns of query q in
// canonical order: group keys first, then the aggregate.
func ResultKeyNames(q Query) (keys []string, sum string) {
	switch q {
	case Q11, Q12, Q13:
		return nil, "revenue"
	case Q21, Q22, Q23:
		return []string{"res_d_year", "res_p_brand1"}, "res_sum"
	case Q31:
		return []string{"res_c_nation", "res_s_nation", "res_d_year"}, "res_sum"
	case Q32, Q33, Q34:
		return []string{"res_c_city", "res_s_city", "res_d_year"}, "res_sum"
	case Q41:
		return []string{"res_d_year", "res_c_nation"}, "res_sum"
	case Q42:
		return []string{"res_d_year", "res_s_nation", "res_p_category"}, "res_sum"
	case Q43:
		return []string{"res_d_year", "res_s_city", "res_p_brand1"}, "res_sum"
	default:
		return nil, ""
	}
}
