package ssb

import (
	"context"
	"fmt"
	"testing"

	"morphstore/internal/columns"
	"morphstore/internal/core"
	"morphstore/internal/vector"
)

// TestGroupedQueriesParallelEquivalence is the cross-product equivalence
// check for the group-by-tailed SSB queries: Q3.x (iterative three-key
// grouping, two-city Merge predicates in Q3.3/Q3.4) and Q4.x (join-heavy
// plans with grouped profit sums) are prepared once per format x style and
// executed at parallelism 1, 2, 3, and 8 from the same Prepared — with the
// grouping and sorted-set operators running their parallel drivers under the
// engine budget — and every result column must be byte-identical to the
// sequential execution.
func TestGroupedQueriesParallelEquivalence(t *testing.T) {
	d := getData(t)
	queries := []Query{Q31, Q32, Q33, Q34, Q41, Q42, Q43}
	interDescs := []columns.FormatDesc{columns.UncomprDesc, columns.DynBPDesc, columns.DeltaBPDesc}
	parLevels := []int{1, 2, 3, 8}
	ctx := context.Background()

	for _, q := range queries {
		q := q
		t.Run(string(q), func(t *testing.T) {
			want, err := Reference(q, d)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := BuildPlan(q, d.Dicts)
			if err != nil {
				t.Fatal(err)
			}
			eng := core.NewEngine(d.DB, core.WithParallelism(8))
			for _, interDesc := range interDescs {
				for _, style := range vector.Styles {
					name := fmt.Sprintf("%v/%v", interDesc, style)
					pq, err := eng.Prepare(plan,
						core.WithUniformFormat(interDesc), core.WithStyle(style))
					if err != nil {
						t.Fatalf("%s: prepare: %v", name, err)
					}
					var ref *core.Result
					for _, par := range parLevels {
						res, err := pq.Execute(ctx, core.WithParallelism(par))
						if err != nil {
							t.Fatalf("%s p=%d: %v", name, par, err)
						}
						if par == 1 {
							ref = res
							// The sequential run must also agree with the
							// row-wise ground truth.
							got, err := ExtractResult(q, res)
							if err != nil {
								t.Fatal(err)
							}
							if !RowsEqual(got, want) {
								t.Fatalf("%s: sequential result differs from reference", name)
							}
							continue
						}
						for cn, wc := range ref.Cols {
							gc, ok := res.Cols[cn]
							if !ok {
								t.Fatalf("%s p=%d: missing result column %q", name, par, cn)
							}
							if gc.Desc() != wc.Desc() || gc.N() != wc.N() {
								t.Fatalf("%s p=%d col %s: shape %v/%d, want %v/%d",
									name, par, cn, gc.Desc(), gc.N(), wc.Desc(), wc.N())
							}
							gw, ww := gc.Words(), wc.Words()
							if len(gw) != len(ww) {
								t.Fatalf("%s p=%d col %s: %d words, want %d", name, par, cn, len(gw), len(ww))
							}
							for i := range ww {
								if gw[i] != ww[i] {
									t.Fatalf("%s p=%d col %s: word %d differs", name, par, cn, i)
								}
							}
						}
					}
				}
			}
		})
	}
}
