// Package ssb implements the Star Schema Benchmark substrate of the
// evaluation (§5.2): a deterministic data generator for the SSB schema with
// order-preserving dictionary encoding of all string attributes, plan
// builders for the 13 SSB queries (Q1.1–Q4.3) in the MonetDB-imitating
// operator-at-a-time style the paper uses, and an independent row-wise
// reference executor for correctness validation.
package ssb

import (
	"fmt"
	"sort"
)

// Dictionary is an order-preserving string dictionary: codes are the ranks
// of the sorted distinct values, so code order equals lexicographic value
// order and range predicates translate directly to code ranges (§3.1).
type Dictionary struct {
	strs []string
	idx  map[string]uint64
}

// NewDictionary builds an order-preserving dictionary over values
// (duplicates are ignored).
func NewDictionary(values []string) *Dictionary {
	uniq := make(map[string]struct{}, len(values))
	for _, v := range values {
		uniq[v] = struct{}{}
	}
	strs := make([]string, 0, len(uniq))
	for v := range uniq {
		strs = append(strs, v)
	}
	sort.Strings(strs)
	idx := make(map[string]uint64, len(strs))
	for i, s := range strs {
		idx[s] = uint64(i)
	}
	return &Dictionary{strs: strs, idx: idx}
}

// Code returns the code of value s.
func (d *Dictionary) Code(s string) (uint64, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// MustCode returns the code of s and panics if s is not in the dictionary;
// it is used for the fixed predicate constants of the SSB queries.
func (d *Dictionary) MustCode(s string) uint64 {
	c, ok := d.idx[s]
	if !ok {
		panic(fmt.Sprintf("ssb: %q not in dictionary", s))
	}
	return c
}

// String returns the value of a code.
func (d *Dictionary) String(code uint64) string {
	if int(code) >= len(d.strs) {
		return fmt.Sprintf("code(%d)", code)
	}
	return d.strs[code]
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.strs) }

// The 25 TPC-H/SSB nations with their region assignment.
var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

// cityName forms SSB city names: the nation name padded/truncated to nine
// characters plus a digit 0-9 ("UNITED KI1" is city 1 of UNITED KINGDOM).
func cityName(nation string, k int) string {
	prefix := nation
	for len(prefix) < 9 {
		prefix += " "
	}
	return prefix[:9] + fmt.Sprintf("%d", k)
}

// Dicts bundles the order-preserving dictionaries of all string attributes.
type Dicts struct {
	Region    *Dictionary
	Nation    *Dictionary
	City      *Dictionary
	Mfgr      *Dictionary
	Category  *Dictionary
	Brand     *Dictionary
	YearMonth *Dictionary // "Jan1992" ... "Dec1998" (equality predicates only)
	// nationRegion maps a nation code to its region code.
	nationRegion map[uint64]uint64
}

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// buildDicts constructs all dictionaries; they are schema constants
// independent of the scale factor.
func buildDicts() *Dicts {
	var regions, nations, cities []string
	for r := range nationsByRegion {
		regions = append(regions, r)
	}
	for _, ns := range nationsByRegion {
		for _, n := range ns {
			nations = append(nations, n)
			for k := 0; k < 10; k++ {
				cities = append(cities, cityName(n, k))
			}
		}
	}
	var mfgrs, cats, brands []string
	for m := 1; m <= 5; m++ {
		mfgrs = append(mfgrs, fmt.Sprintf("MFGR#%d", m))
		for c := 1; c <= 5; c++ {
			cats = append(cats, fmt.Sprintf("MFGR#%d%d", m, c))
			for b := 1; b <= 40; b++ {
				brands = append(brands, fmt.Sprintf("MFGR#%d%d%02d", m, c, b))
			}
		}
	}
	var yms []string
	for y := 1992; y <= 1998; y++ {
		for _, m := range monthNames {
			yms = append(yms, fmt.Sprintf("%s%d", m, y))
		}
	}
	d := &Dicts{
		Region:    NewDictionary(regions),
		Nation:    NewDictionary(nations),
		City:      NewDictionary(cities),
		Mfgr:      NewDictionary(mfgrs),
		Category:  NewDictionary(cats),
		Brand:     NewDictionary(brands),
		YearMonth: NewDictionary(yms),
	}
	d.nationRegion = make(map[uint64]uint64, 25)
	for r, ns := range nationsByRegion {
		rc := d.Region.MustCode(r)
		for _, n := range ns {
			d.nationRegion[d.Nation.MustCode(n)] = rc
		}
	}
	return d
}

// CityCode returns the code of city k of the given nation.
func (d *Dicts) CityCode(nation string, k int) uint64 {
	return d.City.MustCode(cityName(nation, k))
}
