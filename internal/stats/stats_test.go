package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCollectBasics(t *testing.T) {
	p := Collect([]uint64{5, 5, 7, 7, 7, 3})
	if p.N != 6 {
		t.Errorf("N = %d", p.N)
	}
	if p.Min != 3 || p.Max != 7 {
		t.Errorf("min/max = %d/%d", p.Min, p.Max)
	}
	if p.MaxBits != 3 {
		t.Errorf("MaxBits = %d", p.MaxBits)
	}
	if p.Sorted {
		t.Error("not sorted")
	}
	if p.Runs != 3 {
		t.Errorf("Runs = %d, want 3", p.Runs)
	}
	if p.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", p.Distinct)
	}
	if got := p.AvgRunLength(); got != 2 {
		t.Errorf("AvgRunLength = %f", got)
	}
}

func TestCollectEmpty(t *testing.T) {
	p := Collect(nil)
	if p.N != 0 || p.Runs != 0 || !p.Sorted {
		t.Errorf("empty profile: %+v", p)
	}
	if p.AvgRunLength() != 0 {
		t.Error("empty avg run length")
	}
}

func TestCollectSorted(t *testing.T) {
	p := Collect([]uint64{1, 2, 2, 3, 10})
	if !p.Sorted {
		t.Error("sorted input not detected")
	}
	// Deltas: 1,0,1,7 -> widths 1,0,1,3
	if p.DeltaBitHist[1] != 2 || p.DeltaBitHist[0] != 1 || p.DeltaBitHist[3] != 1 {
		t.Errorf("delta hist: %v", p.DeltaBitHist[:5])
	}
}

func TestBitHist(t *testing.T) {
	p := Collect([]uint64{0, 1, 2, 3, 255})
	if p.BitHist[0] != 1 || p.BitHist[1] != 1 || p.BitHist[2] != 2 || p.BitHist[8] != 1 {
		t.Errorf("bit hist: %v", p.BitHist[:10])
	}
}

func TestDistinctSaturation(t *testing.T) {
	vals := make([]uint64, DistinctCap+100)
	for i := range vals {
		vals[i] = uint64(i)
	}
	p := Collect(vals)
	if !p.DistinctSaturated {
		t.Error("distinct counter should saturate")
	}
	if p.Distinct < DistinctCap {
		t.Errorf("Distinct = %d, want >= %d", p.Distinct, DistinctCap)
	}
}

func TestExpectedBlockMaxBits(t *testing.T) {
	// Constant-width data: expectation equals that width exactly.
	var h [65]int
	h[6] = 1000
	if got := ExpectedBlockMaxBits(&h, 1000, 512); math.Abs(got-6) > 1e-9 {
		t.Errorf("constant width: %f", got)
	}
	// Rare outliers: expected block max must sit between the two widths and
	// approach the outlier width as block length grows.
	var h2 [65]int
	h2[6] = 9990
	h2[63] = 10
	small := ExpectedBlockMaxBits(&h2, 10000, 8)
	big := ExpectedBlockMaxBits(&h2, 10000, 4096)
	if small < 6 || small > 10 {
		t.Errorf("small block expectation = %f", small)
	}
	if big < 55 {
		t.Errorf("big block expectation = %f, want near 63", big)
	}
	if ExpectedBlockMaxBits(&h2, 0, 512) != 0 {
		t.Error("zero n must yield 0")
	}
}

func TestCollectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	p := Collect(vals)
	// Brute force runs.
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	if p.Runs != runs {
		t.Errorf("Runs = %d, want %d", p.Runs, runs)
	}
	set := map[uint64]struct{}{}
	for _, v := range vals {
		set[v] = struct{}{}
	}
	if p.Distinct != len(set) {
		t.Errorf("Distinct = %d, want %d", p.Distinct, len(set))
	}
	total := 0
	for _, c := range p.BitHist {
		total += c
	}
	if total != len(vals) {
		t.Errorf("bit hist total = %d", total)
	}
	totalD := 0
	for _, c := range p.DeltaBitHist {
		totalD += c
	}
	if totalD != len(vals)-1 {
		t.Errorf("delta hist total = %d", totalD)
	}
}
