// Package stats collects the basic data characteristics MorphStore-Go's
// cost-based format selection relies on (paper §5, "Determining a good format
// combination"): number of data elements, bit-width histogram, delta
// bit-width histogram, sort order, run structure, and a distinct estimate.
//
// The paper assumes these characteristics are known for all intermediates;
// here they are gathered in a single pass over the data.
package stats

import (
	"math/bits"
)

// DistinctCap bounds the exact distinct counting; beyond it the profile
// reports DistinctCap as a lower bound and sets DistinctSaturated.
const DistinctCap = 1 << 16

// Profile summarizes the data characteristics of one integer sequence.
type Profile struct {
	N       int    // number of data elements
	Min     uint64 // minimum value (0 if N == 0)
	Max     uint64 // maximum value
	MaxBits uint   // effective bit width of Max

	Sorted bool // non-decreasing order
	Runs   int  // number of maximal runs of equal values

	// BitHist[b] counts values with effective bit width b (0..64).
	BitHist [65]int
	// DeltaBitHist[b] counts wrap-around deltas v[i]-v[i-1] (mod 2^64, i>0)
	// with effective bit width b. For sorted data these are the small
	// positive gaps that make DELTA+BP effective.
	DeltaBitHist [65]int
	// ForBitHist[b] counts offsets v-Min with effective bit width b: the
	// frame-of-reference view of the data under a global reference.
	ForBitHist [65]int

	Distinct          int  // exact distinct count up to DistinctCap
	DistinctSaturated bool // true if the distinct counter hit its cap
}

// Collect computes the profile of vals in one pass.
func Collect(vals []uint64) *Profile {
	p := &Profile{N: len(vals), Sorted: true}
	if len(vals) == 0 {
		return p
	}
	distinct := make(map[uint64]struct{}, 1024)
	p.Min, p.Max = vals[0], vals[0]
	p.Runs = 1
	prev := vals[0]
	p.BitHist[bits.Len64(vals[0])]++
	distinct[vals[0]] = struct{}{}
	for _, v := range vals[1:] {
		p.BitHist[bits.Len64(v)]++
		d := v - prev // wrap-around delta
		p.DeltaBitHist[bits.Len64(d)]++
		if v < prev {
			p.Sorted = false
		}
		if v != prev {
			p.Runs++
		}
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
		if !p.DistinctSaturated {
			distinct[v] = struct{}{}
			if len(distinct) >= DistinctCap {
				p.DistinctSaturated = true
			}
		}
		prev = v
	}
	p.Distinct = len(distinct)
	p.MaxBits = uint(bits.Len64(p.Max))
	// Second cheap pass: offsets relative to the global minimum.
	for _, v := range vals {
		p.ForBitHist[bits.Len64(v-p.Min)]++
	}
	return p
}

// AvgRunLength returns the mean run length (N/Runs); 0 for empty input.
func (p *Profile) AvgRunLength() float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(p.N) / float64(p.Runs)
}

// BitCDF returns the cumulative distribution F(b) = P(effective bit width
// of a value <= b) over the bit-width histogram h.
func BitCDF(h *[65]int, n int) [65]float64 {
	var cdf [65]float64
	if n == 0 {
		return cdf
	}
	acc := 0
	for b := 0; b <= 64; b++ {
		acc += h[b]
		cdf[b] = float64(acc) / float64(n)
	}
	return cdf
}

// ExpectedBlockMaxBits estimates, under an independence assumption, the
// expected maximum effective bit width within a block of blockLen values
// drawn from the distribution described by histogram h over n values.
// This is the gray-box size estimator for block-adaptive formats (DynBP):
// E[max] = sum_b b * (F(b)^L - F(b-1)^L).
func ExpectedBlockMaxBits(h *[65]int, n, blockLen int) float64 {
	if n == 0 || blockLen <= 0 {
		return 0
	}
	cdf := BitCDF(h, n)
	var e float64
	prev := 0.0
	for b := 0; b <= 64; b++ {
		cur := pow(cdf[b], blockLen)
		e += float64(b) * (cur - prev)
		prev = cur
	}
	return e
}

// pow computes x^k for non-negative integer k without importing math.
func pow(x float64, k int) float64 {
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
		k >>= 1
	}
	return r
}
