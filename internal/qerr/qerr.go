// Package qerr defines the engine's typed error taxonomy and the conversion
// of recovered panics into errors.
//
// Every failure mode of a query execution maps onto exactly one sentinel of
// this package, so callers can dispatch with errors.Is regardless of which
// layer produced the failure:
//
//   - ErrCorruptData: structurally invalid compressed data (the codec layer
//     wraps formats.ErrCorrupt around this sentinel, so every corruption
//     error anywhere in the engine matches it through the wrap chain),
//   - ErrInvalidSchema: malformed base data handed to the engine — ragged
//     column lengths, a duplicate table registration, or an append whose
//     rows do not match the table's column set,
//   - ErrQueryCanceled / ErrQueryTimeout: the execution context was
//     cancelled or hit its deadline,
//   - ErrMemoryLimit: the prepare-time memory estimate exceeded the
//     configured limit,
//   - ErrAdmissionRejected: the query never started — shed by the bounded
//     admission queue, a queue-wait expiry, or memory-governor pressure,
//   - ErrEngineClosed: the engine was shut down with Engine.Close,
//   - ErrTransient: a failure expected to clear on retry (see IsRetryable),
//   - *QueryError: a panic in an operator kernel or worker goroutine,
//     recovered and isolated to the failing query.
//
// The package sits below internal/formats, internal/ops, and internal/core
// and imports none of them (only the leaf internal/metrics, for the stats
// tree a failed execution carries), so every layer can tag errors without
// cycles. The root morphstore package re-exports the sentinels and the
// QueryError type as its public error API.
package qerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"morphstore/internal/metrics"
)

// The sentinel errors of the taxonomy. They are compared with errors.Is;
// concrete failures wrap them with contextual detail.
var (
	// ErrCorruptData reports structurally invalid compressed data: an
	// out-of-range bit width, a truncated block, an overflowing run length.
	ErrCorruptData = errors.New("corrupt compressed data")
	// ErrInvalidSchema reports malformed base data handed to the engine:
	// ragged column lengths, a duplicate table registration, or an append
	// whose rows do not match the table's column set. The call changed
	// nothing; fix the data and retry.
	ErrInvalidSchema = errors.New("invalid table schema")
	// ErrQueryCanceled reports an execution stopped by context cancellation.
	ErrQueryCanceled = errors.New("query canceled")
	// ErrQueryTimeout reports an execution stopped by a context deadline
	// (including WithQueryTimeout).
	ErrQueryTimeout = errors.New("query timeout")
	// ErrMemoryLimit reports a query whose prepare-time memory estimate
	// exceeds the configured WithMemoryEstimateLimit.
	ErrMemoryLimit = errors.New("memory estimate over limit")
	// ErrAdmissionRejected reports a query that never started: it was shed at
	// the engine's admission layer — the bounded queue overflowed, the queue
	// wait exceeded its deadline, or the memory governor could not reserve the
	// query's estimate in time. Shed queries did no work and are retryable.
	ErrAdmissionRejected = errors.New("query rejected at admission gate")
	// ErrEngineClosed reports a call against an engine that has been shut
	// down with Engine.Close: later Execute and one-off operator calls fail
	// fast with it, queued waiters are shed with it, and in-flight queries
	// cancelled by the close deadline carry it alongside ErrQueryCanceled.
	ErrEngineClosed = errors.New("engine closed")
	// ErrTransient tags failures whose cause is expected to clear on its own
	// (an injected transient fault, a momentary resource blip): retrying the
	// same query against the same engine may succeed. It is the extension
	// point IsRetryable honours beyond the admission sheds.
	ErrTransient = errors.New("transient failure")
)

// IsRetryable reports whether retrying the failed call against the same
// engine can plausibly succeed. Admission sheds (queue overflow, queue-wait
// expiry, memory-governor pressure) and transient-tagged failures are
// retryable: the query never ran, or failed for a reason expected to clear.
// A closed engine, corrupt data, a caller-cancelled context, and recovered
// panics are not — retrying replays the same outcome or overrides the
// caller's intent. WithRetry consults exactly this predicate.
func IsRetryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrEngineClosed):
		return false
	case errors.Is(err, ErrCorruptData):
		return false
	case errors.Is(err, ErrAdmissionRejected):
		return true
	case errors.Is(err, ErrTransient):
		return true
	}
	return false
}

// QueryError is a panic recovered inside a query execution, converted into
// an error so one failing operator cannot take down the process or its
// sibling queries. It records where the panic happened: the operator (filled
// in by the execution layer when known), the morsel or task index inside the
// operator (-1 when the panic was not morsel-scoped), the original panic
// value, and the goroutine stack at recovery time.
type QueryError struct {
	// Op names the operator that panicked ("" until the executor tags it).
	Op string
	// Morsel is the morsel/task index the panicking worker was processing,
	// or -1 when the panic happened outside the morsel loop.
	Morsel int
	// Panic is the original value passed to panic.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// Stats is the failed execution's partial stats tree, attached by the
	// execution layer when a collector was attached (nil otherwise). Nodes
	// that never ran have Started == false; the panicking node carries Err.
	Stats *metrics.QueryStats
}

// Error formats the failure with its operator and morsel context.
func (e *QueryError) Error() string {
	where := "query"
	if e.Op != "" {
		where = "operator " + e.Op
	}
	if e.Morsel >= 0 {
		return fmt.Sprintf("morphstore: panic in %s (morsel %d): %v", where, e.Morsel, e.Panic)
	}
	return fmt.Sprintf("morphstore: panic in %s: %v", where, e.Panic)
}

// Unwrap exposes an error panic value to errors.Is/As, so a kernel that
// panics with (or wrapping) a taxonomy sentinel still matches it.
func (e *QueryError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// Recovered converts a recover() value into a *QueryError carrying the
// current stack. morsel is the morsel/task index being processed, or -1.
func Recovered(v any, morsel int) *QueryError {
	return &QueryError{Morsel: morsel, Panic: v, Stack: debug.Stack()}
}

// tagged pairs a concrete error with a taxonomy sentinel: errors.Is matches
// both chains, errors.As and the message follow the concrete error.
type tagged struct {
	err error
	tag error
}

func (t *tagged) Error() string { return t.err.Error() }

// Unwrap exposes both the concrete error and the sentinel.
func (t *tagged) Unwrap() []error { return []error{t.err, t.tag} }

// Tag attaches a taxonomy sentinel to err without changing its message:
// the result matches both err's chain and tag under errors.Is. A nil err
// returns nil; an err already matching tag is returned unchanged.
func Tag(err, tag error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, tag) {
		return err
	}
	return &tagged{err: err, tag: tag}
}

// Classify maps an execution error onto the taxonomy: context.Canceled is
// tagged ErrQueryCanceled and context.DeadlineExceeded ErrQueryTimeout.
// Corruption needs no mapping here — formats.ErrCorrupt wraps
// ErrCorruptData, so those errors already match. Other errors pass through
// unchanged; nil stays nil.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return Tag(err, ErrQueryTimeout)
	case errors.Is(err, context.Canceled):
		return Tag(err, ErrQueryCanceled)
	}
	return err
}
