package qerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestQueryErrorMessage(t *testing.T) {
	qe := Recovered("boom", 3)
	if got := qe.Error(); got != "morphstore: panic in query (morsel 3): boom" {
		t.Fatalf("message: %q", got)
	}
	qe.Op = "select"
	if got := qe.Error(); got != "morphstore: panic in operator select (morsel 3): boom" {
		t.Fatalf("message with op: %q", got)
	}
	qe.Morsel = -1
	if got := qe.Error(); got != "morphstore: panic in operator select: boom" {
		t.Fatalf("message without morsel: %q", got)
	}
	if len(qe.Stack) == 0 {
		t.Fatal("Recovered did not capture a stack")
	}
}

func TestQueryErrorUnwrapsErrorPanics(t *testing.T) {
	inner := fmt.Errorf("wrapped: %w", ErrCorruptData)
	var err error = Recovered(inner, 0)
	if !errors.Is(err, ErrCorruptData) {
		t.Fatal("panic with a taxonomy error does not match the sentinel")
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Morsel != 0 {
		t.Fatalf("errors.As: %v", err)
	}
	if err := Recovered("not an error", 0); errors.Unwrap(err) != nil {
		t.Fatal("non-error panic value must not unwrap")
	}
}

func TestTag(t *testing.T) {
	if Tag(nil, ErrMemoryLimit) != nil {
		t.Fatal("Tag(nil) != nil")
	}
	base := errors.New("estimate 100 over limit 10")
	tagged := Tag(base, ErrMemoryLimit)
	if !errors.Is(tagged, ErrMemoryLimit) || !errors.Is(tagged, base) {
		t.Fatal("tagged error must match both chains")
	}
	if tagged.Error() != base.Error() {
		t.Fatalf("Tag changed the message: %q", tagged.Error())
	}
	if again := Tag(tagged, ErrMemoryLimit); again != tagged {
		t.Fatal("re-tagging must be a no-op")
	}
}

func TestClassify(t *testing.T) {
	if Classify(nil) != nil {
		t.Fatal("Classify(nil) != nil")
	}
	plain := errors.New("plain")
	if Classify(plain) != plain {
		t.Fatal("Classify must pass unrelated errors through")
	}

	canceled := fmt.Errorf("op: %w", context.Canceled)
	if !errors.Is(Classify(canceled), ErrQueryCanceled) {
		t.Fatal("canceled not classified")
	}
	deadline := fmt.Errorf("op: %w", context.DeadlineExceeded)
	if !errors.Is(Classify(deadline), ErrQueryTimeout) {
		t.Fatal("deadline not classified")
	}

	// A context that both timed out and was cancelled reports the deadline;
	// the timeout classification must win.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	got := Classify(ctx.Err())
	if !errors.Is(got, ErrQueryTimeout) || errors.Is(got, ErrQueryCanceled) {
		t.Fatalf("timed-out context classified as %v", got)
	}
}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("plain"), false},
		{"shed", Tag(errors.New("queue full"), ErrAdmissionRejected), true},
		{"queue timeout", Tag(fmt.Errorf("wait: %w", context.DeadlineExceeded), ErrAdmissionRejected), true},
		{"transient", Tag(errors.New("blip"), ErrTransient), true},
		{"corrupt", fmt.Errorf("block: %w", ErrCorruptData), false},
		{"closed", Tag(errors.New("shutting down"), ErrEngineClosed), false},
		{"canceled", Tag(context.Canceled, ErrQueryCanceled), false},
		{"panic", error(Recovered("boom", 1)), false},
		// A transient-tagged corruption stays non-retryable: replaying the
		// same corrupt column replays the same failure.
		{"transient corrupt", Tag(fmt.Errorf("x: %w", ErrCorruptData), ErrTransient), false},
		// A closed engine wins over every retryable tag.
		{"closed shed", Tag(Tag(errors.New("drain"), ErrAdmissionRejected), ErrEngineClosed), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyKeepsMessage(t *testing.T) {
	err := fmt.Errorf("core: select %q: %w", "pos", context.Canceled)
	got := Classify(err)
	if !strings.Contains(got.Error(), `select "pos"`) {
		t.Fatalf("classification lost context: %q", got.Error())
	}
}
